package soteria_test

// The benchmark harness: one testing.B benchmark per paper table and
// figure (run with `go test -bench=. -benchmem`). All experiment
// benches share one trained environment (built once); each iteration
// re-runs the experiment's computation — AE analysis, classification,
// PCA, threshold sweeps — against it.
//
// Substrate micro-benchmarks (disassembly, labeling, walks, GEA merge,
// detector and classifier inference) quantify the pipeline stages the
// paper's Fig. 3 describes.

import (
	"os"
	"sync"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/dynamic"
	"soteria/internal/experiments"
	"soteria/internal/features"
	"soteria/internal/gea"
	"soteria/internal/labeling"
	"soteria/internal/lint"
	"soteria/internal/malgen"
	"soteria/internal/ngram"
	"soteria/internal/walk"

	mrand "math/rand"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.Setup(experiments.QuickConfig())
	})
	if benchErr != nil {
		b.Fatalf("setup: %v", benchErr)
	}
	return benchEnv
}

func benchExperiment(b *testing.B, id string) {
	env := benchEnvironment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table --------------------------------------

func BenchmarkTable2Dataset(b *testing.B)       { benchExperiment(b, "tab2") }
func BenchmarkTable3GEATargets(b *testing.B)    { benchExperiment(b, "tab3") }
func BenchmarkTable4DetectorAEs(b *testing.B)   { benchExperiment(b, "tab4") }
func BenchmarkTable5Features(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkTable6DetectorClean(b *testing.B) { benchExperiment(b, "tab6") }
func BenchmarkTable7Classifiers(b *testing.B)   { benchExperiment(b, "tab7") }
func BenchmarkTable8Evaders(b *testing.B)       { benchExperiment(b, "tab8") }

// --- One benchmark per paper figure --------------------------------------

func BenchmarkFig8PCABaseline(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9PCADBL(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10PCALBL(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11PCACombined(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12REDistribution(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13AlphaSweep(b *testing.B)     { benchExperiment(b, "fig13") }

// --- Pipeline-stage micro-benchmarks --------------------------------------

func benchSample(b *testing.B, nodes int) *malgen.Sample {
	b.Helper()
	gen := malgen.NewGenerator(malgen.Config{Seed: 42})
	s, err := gen.SampleSized(malgen.Gafgyt, nodes)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkDisassemble64(b *testing.B) {
	s := benchSample(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disasm.Disassemble(s.Binary); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabelingDBL64(b *testing.B) {
	s := benchSample(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labeling.DensityBased(s.CFG.G, s.CFG.EntryNode())
	}
}

func BenchmarkLabelingLBL64(b *testing.B) {
	s := benchSample(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labeling.LevelBased(s.CFG.G, s.CFG.EntryNode())
	}
}

func BenchmarkRandomWalks64(b *testing.B) {
	s := benchSample(b, 64)
	perm := labeling.DensityBased(s.CFG.G, s.CFG.EntryNode()).Perm
	rng := mrand.New(mrand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walk.Walks(s.CFG.G, s.CFG.EntryNode(), perm, walk.DefaultCount, walk.DefaultLengthFactor, rng)
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	env := benchEnvironment(b)
	s := env.TestSamples()[0]
	ext := env.Pipeline.Extractor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ext.Extract(s.CFG, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGramCounting64 isolates the packed n-gram counting stage on
// one walk-length trace (the innermost extraction loop).
func BenchmarkGramCounting64(b *testing.B) {
	s := benchSample(b, 64)
	perm := labeling.DensityBased(s.CFG.G, s.CFG.EntryNode()).Perm
	rng := mrand.New(mrand.NewSource(1))
	trace := walk.Random(s.CFG.G, s.CFG.EntryNode(), perm, walk.DefaultLengthFactor*s.CFG.G.NumNodes(), rng)
	c := ngram.NewGramCounter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.AddTrace(trace, ngram.DefaultNs)
	}
}

// BenchmarkExtractBatch measures steady-state batch throughput: the
// pooled scratch buffers and labeling memo make repeat extraction of a
// corpus near allocation-free.
func BenchmarkExtractBatch(b *testing.B) {
	env := benchEnvironment(b)
	samples := env.TestSamples()
	ext := env.Pipeline.Extractor
	cfgs := make([]*disasm.CFG, len(samples))
	salts := make([]int64, len(samples))
	for i, s := range samples {
		cfgs[i] = s.CFG
		salts[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ext.ExtractBatch(cfgs, salts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGEAMerge(b *testing.B) {
	gen := malgen.NewGenerator(malgen.Config{Seed: 7})
	victim, err := gen.SampleSized(malgen.Mirai, 48)
	if err != nil {
		b.Fatal(err)
	}
	target, err := gen.SampleSized(malgen.Benign, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gea.MergeToCFG(victim.Program, target.Program); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectorInference(b *testing.B) {
	env := benchEnvironment(b)
	s := env.TestSamples()[0]
	v, err := env.Pipeline.Extractor.Extract(s.CFG, 1)
	if err != nil {
		b.Fatal(err)
	}
	det := env.Pipeline.Detector
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.ReconstructionError(v.Combined)
	}
}

func BenchmarkEnsembleVote(b *testing.B) {
	env := benchEnvironment(b)
	s := env.TestSamples()[0]
	v, err := env.Pipeline.Extractor.Extract(s.CFG, 1)
	if err != nil {
		b.Fatal(err)
	}
	ens := env.Pipeline.Ensemble
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ens.Vote(v.DBL, v.LBL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndAnalyze(b *testing.B) {
	env := benchEnvironment(b)
	s := env.TestSamples()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Pipeline.Analyze(s.CFG, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicVsStatic quantifies the paper's scalability argument
// for static analysis: extracting behavioural features requires a full
// sandboxed execution, while CFG recovery is a linear disassembly pass.
func BenchmarkDynamicTraceExtraction(b *testing.B) {
	s := benchSample(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamic.Trace(s.Binary, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticCFGExtraction(b *testing.B) {
	s := benchSample(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disasm.Disassemble(s.Binary); err != nil {
			b.Fatal(err)
		}
	}
}

// --- soterialint engine benchmarks ----------------------------------------

// lintBenchOptions mirrors the driver's defaults over the real tree.
func lintBenchOptions(b *testing.B) lint.RunOptions {
	b.Helper()
	root, module, err := lint.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	return lint.RunOptions{Root: root, Module: module, Tests: true, Patterns: []string{"./..."}}
}

func lintBenchIteration(b *testing.B, opts lint.RunOptions) *lint.RunResult {
	b.Helper()
	res, err := lint.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Broken) > 0 {
		b.Fatalf("repo does not type-check: %v", res.Broken[0].Err)
	}
	return res
}

// BenchmarkSoterialintCold measures a full load + type-check + fact
// propagation + ten-analyzer pass over the whole module, cache bypassed.
func BenchmarkSoterialintCold(b *testing.B) {
	opts := lintBenchOptions(b)
	opts.NoCache = true
	lintBenchIteration(b, opts) // untimed: warm the OS file caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lintBenchIteration(b, opts)
	}
}

// BenchmarkSoterialintWarm measures the steady-state re-lint an unchanged
// tree pays: a snapshot check plus a cached-diagnostic replay. Setting
// SOTERIALINT_BENCH_NOCACHE forces every iteration through the full
// analysis instead, which is what the tool cost before the fact cache
// existed — that mode records the baseline the warm numbers diff against.
func BenchmarkSoterialintWarm(b *testing.B) {
	opts := lintBenchOptions(b)
	if os.Getenv("SOTERIALINT_BENCH_NOCACHE") != "" {
		opts.NoCache = true
	} else {
		opts.CacheDir = b.TempDir()
		lintBenchIteration(b, opts) // prime the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := lintBenchIteration(b, opts)
		if !opts.NoCache && !res.FromCache {
			b.Fatal("warm iteration missed the cache")
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	gen := malgen.NewGenerator(malgen.Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Sample(malgen.Gafgyt); err != nil {
			b.Fatal(err)
		}
	}
}

// featuresConfigForBench keeps the name referenced in docs stable.
var _ = features.DefaultConfig
