package main

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// BenchDiff compares one benchmark between a baseline report and the
// current run. Ratios are current/baseline, so values above 1 are
// slowdowns.
type BenchDiff struct {
	Name        string       `json:"name"`
	BaseNsPerOp float64      `json:"baseNsPerOp"`
	NsPerOp     float64      `json:"nsPerOp"`
	NsRatio     float64      `json:"nsRatio"`
	BaseAllocs  int64        `json:"baseAllocsPerOp"`
	Allocs      int64        `json:"allocsPerOp"`
	Regressed   bool         `json:"regressed"`
	Metrics     []MetricDiff `json:"metrics,omitempty"`
}

// MetricDiff compares one custom b.ReportMetric unit between the two
// runs. Custom metrics are informational: a direction-aware gate would
// need to know whether the unit is higher-better (samples/s) or
// lower-better, so they never flip Regressed. Base is 0 and Ratio is 0
// when the baseline predates metric capture.
type MetricDiff struct {
	Unit  string  `json:"unit"`
	Base  float64 `json:"base,omitempty"`
	Cur   float64 `json:"cur"`
	Ratio float64 `json:"ratio,omitempty"`
}

// allocNoise is the absolute allocs/op slack allowed on top of the
// ratio gate for nonzero-alloc baselines. Benchmarks whose per-op alloc
// count is tiny but not pinned to zero wobble by an allocation or two
// when the GC clears a sync.Pool between iterations; a ±2 jitter on a
// 3-alloc baseline is noise, not a leak. Zero-alloc baselines get no
// slack — those are all-or-nothing guarantees.
const allocNoise = 2

// Diff aligns the two reports' benchmarks by name and computes per-name
// deltas. A benchmark regresses when its ns/op ratio exceeds maxRegress,
// or when its allocs/op grew beyond the same ratio plus an absolute
// slack of allocNoise (with any growth from a zero-alloc baseline
// counting as a regression — zero-alloc guarantees are all-or-nothing).
// Names present in only one report are returned separately and never
// regress: a renamed or added benchmark should be reviewed, not fail
// the gate.
func Diff(base, cur *Report, maxRegress float64) (diffs []BenchDiff, onlyBase, onlyCur []string) {
	baseByName := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}
	matched := make(map[string]bool)
	for _, c := range cur.Benchmarks {
		b, ok := baseByName[c.Name]
		if !ok {
			onlyCur = append(onlyCur, c.Name)
			continue
		}
		matched[c.Name] = true
		d := BenchDiff{
			Name:        c.Name,
			BaseNsPerOp: b.NsPerOp,
			NsPerOp:     c.NsPerOp,
			BaseAllocs:  b.AllocsPerOp,
			Allocs:      c.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.NsRatio = c.NsPerOp / b.NsPerOp
			if d.NsRatio > maxRegress {
				d.Regressed = true
			}
		}
		switch {
		case b.AllocsPerOp == 0:
			if c.AllocsPerOp > 0 {
				d.Regressed = true
			}
		case float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*maxRegress+allocNoise:
			d.Regressed = true
		}
		d.Metrics = diffMetrics(b.Metrics, c.Metrics)
		diffs = append(diffs, d)
	}
	for name := range baseByName {
		if !matched[name] {
			onlyBase = append(onlyBase, name)
		}
	}
	sort.Strings(onlyBase)
	return diffs, onlyBase, onlyCur
}

// diffMetrics pairs the current run's custom metrics with the
// baseline's, sorted by unit for stable output. Units present only in
// the baseline are dropped (the current run no longer reports them);
// units new in the current run carry a zero Base/Ratio.
func diffMetrics(base, cur map[string]float64) []MetricDiff {
	if len(cur) == 0 {
		return nil
	}
	out := make([]MetricDiff, 0, len(cur))
	for unit, v := range cur {
		md := MetricDiff{Unit: unit, Cur: v}
		if bv, ok := base[unit]; ok {
			md.Base = bv
			if bv != 0 {
				md.Ratio = v / bv
			}
		}
		out = append(out, md)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Unit < out[j].Unit })
	return out
}

// writeDiffContext prints a header identifying both sides of a baseline
// diff — where the baseline came from, when each report was generated,
// and on what CPU — so a pasted diff is self-describing and
// cross-machine comparisons announce themselves instead of masquerading
// as regressions. Fields a report predates (old baselines had no cpu
// line) are simply omitted.
func writeDiffContext(w io.Writer, baselinePath string, base, cur *Report) {
	fmt.Fprintf(w, "baseline: %s%s\n", baselinePath, reportContext(base))
	fmt.Fprintf(w, "current:  this run%s\n", reportContext(cur))
	if base.CPU != "" && cur.CPU != "" && base.CPU != cur.CPU {
		fmt.Fprintln(w, "note: reports come from different CPUs; ns/op deltas reflect hardware as well as code")
	}
}

// reportContext formats a report's generatedAt/platform/cpu fields as a
// parenthesized suffix, empty when the report carries none of them.
func reportContext(r *Report) string {
	var parts []string
	if r.GeneratedAt != "" {
		parts = append(parts, r.GeneratedAt)
	}
	if r.GOOS != "" || r.GOARCH != "" {
		parts = append(parts, r.GOOS+"/"+r.GOARCH)
	}
	if r.CPU != "" {
		parts = append(parts, r.CPU)
	}
	if len(parts) == 0 {
		return ""
	}
	out := " ("
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out + ")"
}

// writeDiffs renders the comparison as an aligned table plus notes on
// unmatched names, and reports whether any benchmark regressed. Custom
// metrics follow the table as informational per-benchmark lines.
func writeDiffs(w io.Writer, diffs []BenchDiff, onlyBase, onlyCur []string) bool {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\t")
	regressed := false
	for _, d := range diffs {
		delta := "n/a"
		if d.BaseNsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (d.NsRatio-1)*100)
		}
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
			regressed = true
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%d\t%d\t%s\n",
			d.Name, d.BaseNsPerOp, d.NsPerOp, delta, d.BaseAllocs, d.Allocs, mark)
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintf(w, "benchreport: render diff table: %v\n", err)
	}
	for _, d := range diffs {
		for _, m := range d.Metrics {
			if m.Base != 0 {
				fmt.Fprintf(w, "%s %s: %.4g -> %.4g (%+.1f%%)\n",
					d.Name, m.Unit, m.Base, m.Cur, (m.Ratio-1)*100)
			} else {
				fmt.Fprintf(w, "%s %s: %.4g (new metric)\n", d.Name, m.Unit, m.Cur)
			}
		}
	}
	for _, name := range onlyBase {
		fmt.Fprintf(w, "only in baseline: %s\n", name)
	}
	for _, name := range onlyCur {
		fmt.Fprintf(w, "only in current run: %s\n", name)
	}
	return regressed
}
