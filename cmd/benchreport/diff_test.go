package main

import (
	"strings"
	"testing"
)

func report(results ...Result) *Report {
	return &Report{Benchmarks: results}
}

func TestDiffImprovementAndRegression(t *testing.T) {
	base := report(
		Result{Name: "BenchmarkFit", NsPerOp: 1000, AllocsPerOp: 100},
		Result{Name: "BenchmarkScore", NsPerOp: 200, AllocsPerOp: 10},
	)
	cur := report(
		Result{Name: "BenchmarkFit", NsPerOp: 400, AllocsPerOp: 5},
		Result{Name: "BenchmarkScore", NsPerOp: 300, AllocsPerOp: 10},
	)
	diffs, onlyBase, onlyCur := Diff(base, cur, 1.10)
	if len(diffs) != 2 || len(onlyBase) != 0 || len(onlyCur) != 0 {
		t.Fatalf("diffs=%d onlyBase=%v onlyCur=%v", len(diffs), onlyBase, onlyCur)
	}
	fit := diffs[0]
	if fit.Name != "BenchmarkFit" || fit.Regressed || fit.NsRatio != 0.4 {
		t.Fatalf("fit = %+v", fit)
	}
	score := diffs[1]
	if !score.Regressed || score.NsRatio != 1.5 {
		t.Fatalf("score should regress at 1.5x: %+v", score)
	}
}

func TestDiffAllocRegression(t *testing.T) {
	base := report(Result{Name: "BenchmarkScore", NsPerOp: 100, AllocsPerOp: 10})
	cur := report(Result{Name: "BenchmarkScore", NsPerOp: 100, AllocsPerOp: 20})
	diffs, _, _ := Diff(base, cur, 1.10)
	if !diffs[0].Regressed {
		t.Fatal("doubling allocs/op at equal speed should regress")
	}
}

func TestDiffAllocNoiseSlack(t *testing.T) {
	// Tiny nonzero baselines wobble by an alloc or two when the GC
	// clears a sync.Pool mid-benchmark; the absolute slack absorbs
	// that without opening the gate to real growth.
	base := report(Result{Name: "BenchmarkGrad", NsPerOp: 100, AllocsPerOp: 3})
	cur := report(Result{Name: "BenchmarkGrad", NsPerOp: 100, AllocsPerOp: 4})
	diffs, _, _ := Diff(base, cur, 1.10)
	if diffs[0].Regressed {
		t.Fatalf("3 -> 4 allocs/op is pool jitter, not a regression: %+v", diffs[0])
	}
	cur.Benchmarks[0].AllocsPerOp = 6
	diffs, _, _ = Diff(base, cur, 1.10)
	if !diffs[0].Regressed {
		t.Fatal("3 -> 6 allocs/op exceeds the noise slack and should regress")
	}
}

func TestDiffZeroAllocBaselineIsAllOrNothing(t *testing.T) {
	base := report(Result{Name: "BenchmarkInfer", NsPerOp: 100, AllocsPerOp: 0})
	cur := report(Result{Name: "BenchmarkInfer", NsPerOp: 100, AllocsPerOp: 1})
	diffs, _, _ := Diff(base, cur, 2.0)
	if !diffs[0].Regressed {
		t.Fatal("any allocation against a zero-alloc baseline should regress")
	}
	cur.Benchmarks[0].AllocsPerOp = 0
	diffs, _, _ = Diff(base, cur, 2.0)
	if diffs[0].Regressed {
		t.Fatalf("unchanged zero-alloc benchmark regressed: %+v", diffs[0])
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	base := report(Result{Name: "BenchmarkFit", NsPerOp: 1000, AllocsPerOp: 100})
	cur := report(Result{Name: "BenchmarkFit", NsPerOp: 1090, AllocsPerOp: 105})
	diffs, _, _ := Diff(base, cur, 1.10)
	if diffs[0].Regressed {
		t.Fatalf("9%% slowdown under a 1.10 threshold regressed: %+v", diffs[0])
	}
}

func TestDiffUnmatchedNamesNeverRegress(t *testing.T) {
	base := report(
		Result{Name: "BenchmarkOld", NsPerOp: 100},
		Result{Name: "BenchmarkShared", NsPerOp: 100},
	)
	cur := report(
		Result{Name: "BenchmarkShared", NsPerOp: 100},
		Result{Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 1 << 20},
	)
	diffs, onlyBase, onlyCur := Diff(base, cur, 1.10)
	if len(diffs) != 1 || diffs[0].Name != "BenchmarkShared" {
		t.Fatalf("diffs = %+v", diffs)
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchmarkOld" {
		t.Fatalf("onlyBase = %v", onlyBase)
	}
	if len(onlyCur) != 1 || onlyCur[0] != "BenchmarkNew" {
		t.Fatalf("onlyCur = %v", onlyCur)
	}
}

func TestDiffCarriesCustomMetrics(t *testing.T) {
	base := report(Result{Name: "BenchmarkAnalyze", NsPerOp: 200,
		Metrics: map[string]float64{"samples/s": 3000}})
	cur := report(Result{Name: "BenchmarkAnalyze", NsPerOp: 190,
		Metrics: map[string]float64{"samples/s": 4500, "walks/s": 12}})
	diffs, _, _ := Diff(base, cur, 1.10)
	d := diffs[0]
	if len(d.Metrics) != 2 {
		t.Fatalf("metrics = %+v, want 2 entries", d.Metrics)
	}
	// Sorted by unit: samples/s before walks/s.
	s := d.Metrics[0]
	if s.Unit != "samples/s" || s.Base != 3000 || s.Cur != 4500 || s.Ratio != 1.5 {
		t.Fatalf("samples/s diff = %+v", s)
	}
	w := d.Metrics[1]
	if w.Unit != "walks/s" || w.Base != 0 || w.Cur != 12 || w.Ratio != 0 {
		t.Fatalf("new-unit diff = %+v", w)
	}
	if d.Regressed {
		t.Fatal("custom metrics must never gate regression")
	}
}

func TestDiffToleratesMetriclessBaseline(t *testing.T) {
	// Reports written before metric capture have no metrics maps at all;
	// diffing against them must still surface the current run's values.
	base := report(Result{Name: "BenchmarkAnalyze", NsPerOp: 200})
	cur := report(Result{Name: "BenchmarkAnalyze", NsPerOp: 200,
		Metrics: map[string]float64{"samples/s": 4500}})
	diffs, _, _ := Diff(base, cur, 1.10)
	if len(diffs[0].Metrics) != 1 || diffs[0].Metrics[0].Cur != 4500 {
		t.Fatalf("metrics vs metricless baseline = %+v", diffs[0].Metrics)
	}
	// And a metric that drops (e.g. samples/s falling) stays informational.
	base.Benchmarks[0].Metrics = map[string]float64{"samples/s": 9000}
	diffs, _, _ = Diff(base, cur, 1.10)
	if diffs[0].Regressed {
		t.Fatal("falling custom metric must not trip the gate")
	}
}

func TestWriteDiffContext(t *testing.T) {
	base := &Report{GeneratedAt: "2026-01-02T03:04:05Z", GOOS: "linux",
		GOARCH: "amd64", CPU: "Old CPU @ 2.0GHz"}
	cur := &Report{GeneratedAt: "2026-08-07T00:00:00Z", GOOS: "linux",
		GOARCH: "amd64", CPU: "New CPU @ 3.0GHz"}
	var sb strings.Builder
	writeDiffContext(&sb, "BENCH_3.json", base, cur)
	out := sb.String()
	for _, want := range []string{
		"baseline: BENCH_3.json (2026-01-02T03:04:05Z, linux/amd64, Old CPU @ 2.0GHz)",
		"current:  this run (2026-08-07T00:00:00Z, linux/amd64, New CPU @ 3.0GHz)",
		"different CPUs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Same CPU: no cross-machine warning.
	cur.CPU = base.CPU
	sb.Reset()
	writeDiffContext(&sb, "BENCH_3.json", base, cur)
	if strings.Contains(sb.String(), "different CPUs") {
		t.Fatalf("same-CPU diff warned about hardware:\n%s", sb.String())
	}

	// A baseline predating cpu/platform capture omits the suffix rather
	// than printing empty parentheses, and cannot trigger the warning.
	sb.Reset()
	writeDiffContext(&sb, "BENCH_1.json", &Report{}, cur)
	out = sb.String()
	if !strings.Contains(out, "baseline: BENCH_1.json\n") {
		t.Errorf("field-less baseline should print bare path:\n%s", out)
	}
	if strings.Contains(out, "different CPUs") {
		t.Errorf("missing baseline CPU must not warn:\n%s", out)
	}
}

func TestWriteDiffs(t *testing.T) {
	diffs := []BenchDiff{
		{Name: "BenchmarkFit", BaseNsPerOp: 1000, NsPerOp: 400, NsRatio: 0.4, BaseAllocs: 100, Allocs: 5},
		{Name: "BenchmarkScore", BaseNsPerOp: 200, NsPerOp: 300, NsRatio: 1.5, BaseAllocs: 10, Allocs: 10, Regressed: true,
			Metrics: []MetricDiff{
				{Unit: "samples/s", Base: 3000, Cur: 4500, Ratio: 1.5},
				{Unit: "walks/s", Cur: 12},
			}},
	}
	var sb strings.Builder
	regressed := writeDiffs(&sb, diffs, []string{"BenchmarkOld"}, []string{"BenchmarkNew"})
	if !regressed {
		t.Fatal("writeDiffs should report the regression")
	}
	out := sb.String()
	for _, want := range []string{"-60.0%", "+50.0%", "REGRESSED",
		"BenchmarkScore samples/s: 3000 -> 4500 (+50.0%)",
		"BenchmarkScore walks/s: 12 (new metric)",
		"only in baseline: BenchmarkOld", "only in current run: BenchmarkNew"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
