// Command benchreport runs `go test -bench` and distills the output
// into a machine-readable JSON report, so the performance trajectory of
// the extraction pipeline stays comparable across PRs (BENCH_<n>.json
// at the repo root records each PR's numbers).
//
// Usage:
//
//	benchreport -bench 'Extract|Walk|Gram|Table5' -pkg . -out BENCH_1.json
//	go test -bench=. -benchmem | benchreport -input - -out BENCH_1.json
//
// Custom b.ReportMetric units ("samples/s" and friends) are captured
// into each benchmark's "metrics" map rather than dropped, so
// throughput records survive alongside ns/op.
//
// With -baseline the run is also diffed against a previous report:
// per-benchmark ns/op and allocs/op deltas go to stdout (custom-metric
// deltas are listed informationally below the table), and the exit
// status is nonzero when any shared benchmark slowed down (or grew its
// allocation count) by more than -max-regress allows:
//
//	benchreport -bench 'Fit|Epoch|MatMul' -pkg ./internal/... \
//	    -baseline BENCH_2.json -max-regress 1.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line. Metrics carries every custom
// b.ReportMetric unit (e.g. "samples/s") keyed by unit string, so
// throughput numbers survive into the JSON record alongside the three
// standard units.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64              `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt string   `json:"generatedAt"`
	Command     string   `json:"command,omitempty"`
	GOOS        string   `json:"goos,omitempty"`
	GOARCH      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Pkg         string   `json:"pkg,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	var (
		bench      = flag.String("bench", "Extract|Walk|Gram|Table5", "go test -bench regexp")
		pkg        = flag.String("pkg", ".", "package pattern to benchmark")
		count      = flag.Int("count", 1, "benchmark repetition count")
		out        = flag.String("out", "", "output JSON path (default stdout)")
		input      = flag.String("input", "", "parse an existing `go test -bench` output file instead of running ('-' for stdin)")
		baseline   = flag.String("baseline", "", "previous report (BENCH_<n>.json) to diff against")
		maxRegress = flag.Float64("max-regress", 1.10, "max allowed current/baseline ratio before a benchmark counts as regressed")
	)
	flag.Parse()

	var (
		raw     io.Reader
		command string
	)
	switch *input {
	case "":
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-count", strconv.Itoa(*count), *pkg}
		command = "go " + strings.Join(args, " ")
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", command, err)
			os.Exit(1)
		}
		raw = strings.NewReader(string(outBytes))
	case "-":
		raw = os.Stdin
	default:
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		raw = f
	}

	rep, err := Parse(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Command = command

	w := io.Writer(os.Stdout)
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		outFile, w = f, f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: write: %v\n", err)
		os.Exit(1)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: close %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *out != "" {
		fmt.Printf("benchreport: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		writeDiffContext(os.Stdout, *baseline, base, rep)
		diffs, onlyBase, onlyCur := Diff(base, rep, *maxRegress)
		if writeDiffs(os.Stdout, diffs, onlyBase, onlyCur) {
			fmt.Fprintf(os.Stderr, "benchreport: regression beyond %.2fx vs %s\n", *maxRegress, *baseline)
			os.Exit(1)
		}
	}
}

// readReport loads a previously emitted BENCH_<n>.json.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s contains no benchmarks", path)
	}
	return &rep, nil
}

// Parse reads `go test -bench -benchmem` output and extracts every
// benchmark line plus the environment header.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rep, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFeatureExtraction-8   920   1396385 ns/op   544020 B/op   17092 allocs/op
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line: %q", line)
	}
	res := Result{Name: fields[0]}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
		default:
			// Custom b.ReportMetric unit (e.g. "samples/s").
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, fmt.Errorf("bad %s in %q: %w", unit, line, err)
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, nil
}
