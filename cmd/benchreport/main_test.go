package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: soteria
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable5Features         	       3	 374048166 ns/op	180626053 B/op	 5367817 allocs/op
BenchmarkRandomWalks64-8        	    7425	    195067 ns/op	  112961 B/op	    3211 allocs/op
BenchmarkFeatureExtraction      	     920	   1396385.5 ns/op
BenchmarkAnalyzeBatch           	     400	  13390000 ns/op	      4780.2 samples/s	    1564 B/op	      64 allocs/op
PASS
ok  	soteria	24.312s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "soteria" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkTable5Features" || b0.Iterations != 3 ||
		b0.NsPerOp != 374048166 || b0.BytesPerOp != 180626053 || b0.AllocsPerOp != 5367817 {
		t.Fatalf("b0 = %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Name != "BenchmarkRandomWalks64" || b1.Procs != 8 || b1.AllocsPerOp != 3211 {
		t.Fatalf("b1 = %+v", b1)
	}
	b2 := rep.Benchmarks[2]
	if b2.NsPerOp != 1396385.5 || b2.BytesPerOp != 0 {
		t.Fatalf("b2 = %+v", b2)
	}
	if b2.Metrics != nil {
		t.Fatalf("b2 has no custom metrics, got %v", b2.Metrics)
	}
	b3 := rep.Benchmarks[3]
	if b3.Name != "BenchmarkAnalyzeBatch" || b3.NsPerOp != 13390000 ||
		b3.BytesPerOp != 1564 || b3.AllocsPerOp != 64 {
		t.Fatalf("b3 = %+v", b3)
	}
	if got := b3.Metrics["samples/s"]; got != 4780.2 {
		t.Fatalf("b3 samples/s = %v, want 4780.2", got)
	}
}

// TestMetricsRoundTripJSON pins the schema: custom b.ReportMetric units
// survive encode -> decode, and results without them omit the field.
func TestMetricsRoundTripJSON(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"metrics":{"samples/s":4780.2}`) {
		t.Fatalf("encoded report missing metrics map:\n%s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Benchmarks[3].Metrics["samples/s"]; got != 4780.2 {
		t.Fatalf("round-tripped samples/s = %v, want 4780.2", got)
	}
}

func TestParseBadMetricErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 5 100 ns/op abc samples/s\n")); err == nil {
		t.Fatal("malformed custom metric value should error")
	}
}

func TestParseEmptyErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("no benchmark lines should error")
	}
}

func TestParseBadLineErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX abc 5 ns/op\n")); err == nil {
		t.Fatal("bad iteration count should error")
	}
}
