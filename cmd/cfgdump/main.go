// Command cfgdump disassembles an SOTB binary and prints its control
// flow graph — the inspection companion to gendataset and geattack.
//
// Usage:
//
//	cfgdump -format text|dot|json file.sotb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"soteria/internal/disasm"
	"soteria/internal/isa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cfgdump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cfgdump", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, dot, or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cfgdump [-format text|dot|json] file.sotb")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bin, err := isa.DecodeBinary(raw)
	if err != nil {
		return err
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		return err
	}
	switch *format {
	case "text":
		fmt.Fprintf(out, "%d blocks, %d edges, entry 0x%x\n\n",
			cfg.NumNodes(), cfg.G.NumEdges(), cfg.Entry)
		fmt.Fprint(out, cfg.Text())
	case "dot":
		fmt.Fprint(out, cfg.DOT(fs.Arg(0)))
	case "json":
		data, err := cfg.MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := out.Write(data); err != nil {
			return err
		}
		fmt.Fprintln(out)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}
