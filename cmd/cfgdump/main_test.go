package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"soteria/internal/malgen"
)

func writeSample(t *testing.T) string {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: 2})
	s, err := g.SampleSized(malgen.Tsunami, 25)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "s.sotb")
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunFormats(t *testing.T) {
	p := writeSample(t)
	for _, format := range []string{"text", "dot", "json"} {
		if err := run([]string{"-format", format, p}, io.Discard); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("missing file should error")
	}
	if err := run([]string{"/nonexistent.sotb"}, io.Discard); err == nil {
		t.Fatal("unreadable file should error")
	}
	p := writeSample(t)
	if err := run([]string{"-format", "xml", p}, io.Discard); err == nil {
		t.Fatal("bad format should error")
	}
}
