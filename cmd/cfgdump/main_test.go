package main

import (
	"os"
	"path/filepath"
	"testing"

	"soteria/internal/malgen"
)

func writeSample(t *testing.T) string {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: 2})
	s, err := g.SampleSized(malgen.Tsunami, 25)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "s.sotb")
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunFormats(t *testing.T) {
	p := writeSample(t)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, format := range []string{"text", "dot", "json"} {
		if err := run([]string{"-format", format, p}, null); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run(nil, null); err == nil {
		t.Fatal("missing file should error")
	}
	if err := run([]string{"/nonexistent.sotb"}, null); err == nil {
		t.Fatal("unreadable file should error")
	}
	p := writeSample(t)
	if err := run([]string{"-format", "xml", p}, null); err == nil {
		t.Fatal("bad format should error")
	}
}
