// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run tab4,fig13|all] [-scale quick|default|paper] [-seed N]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"soteria/internal/core"
	"soteria/internal/experiments"
	"soteria/internal/malgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment IDs ("+strings.Join(experiments.IDs, ",")+
		"), ablations ("+strings.Join(experiments.Ablations, ",")+"), 'all', or 'ablations'")
	scale := fs.String("scale", "default", "experiment scale: quick, default, or paper")
	seed := fs.Int64("seed", 1, "corpus and training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "default":
		cfg = experiments.DefaultConfig()
	case "paper":
		cfg = experiments.DefaultConfig()
		cfg.Counts = map[malgen.Class]int{
			malgen.Benign:  malgen.PaperCounts[malgen.Benign],
			malgen.Gafgyt:  malgen.PaperCounts[malgen.Gafgyt],
			malgen.Mirai:   malgen.PaperCounts[malgen.Mirai],
			malgen.Tsunami: malgen.PaperCounts[malgen.Tsunami],
		}
		cfg.Opts = core.PaperOptions()
		cfg.PCAPerClass = 200
		fmt.Fprintln(os.Stderr, "warning: paper scale trains for hours in pure Go")
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	ids := experiments.IDs
	switch *runList {
	case "all":
	case "ablations":
		ids = experiments.Ablations
	default:
		ids = strings.Split(*runList, ",")
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "setting up environment (scale=%s, seed=%d)...\n", *scale, *seed)
	env, err := experiments.Setup(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "setup done in %v\n", time.Since(start).Round(time.Second))

	for _, id := range ids {
		id = strings.TrimSpace(id)
		var rep *experiments.Report
		if strings.HasPrefix(id, "abl-") {
			rep, err = experiments.RunAblation(id, env)
		} else {
			rep, err = experiments.Run(id, env)
		}
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
	}
	return nil
}
