package main

import (
	"os"
	"path/filepath"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/isa"
)

func TestRunGEAMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ae.sotb")
	err := run([]string{"-mode", "gea", "-victim-class", "mirai", "-target-class", "benign",
		"-victim-nodes", "20", "-target-nodes", "15", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := isa.DecodeBinary(raw)
	if err != nil {
		t.Fatalf("output is not a valid SOTB binary: %v", err)
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumNodes() != 20+15+2 {
		t.Fatalf("AE CFG nodes = %d, want 37", cfg.NumNodes())
	}
}

func TestRunBytesMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ae.sotb")
	err := run([]string{"-mode", "bytes", "-victim-nodes", "20", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := isa.DecodeBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumNodes() != 20 {
		t.Fatalf("bytes-mode CFG nodes = %d, want unchanged 20", cfg.NumNodes())
	}
}

func TestRunSplitMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ae.sotb")
	err := run([]string{"-mode", "split", "-victim-nodes", "25", "-splits", "3", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := isa.DecodeBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumNodes() != 28 {
		t.Fatalf("split CFG nodes = %d, want 28", cfg.NumNodes())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-mode", "gea"}); err == nil {
		t.Fatal("missing -out should error")
	}
	if err := run([]string{"-mode", "nope", "-out", "/tmp/x"}); err == nil {
		t.Fatal("bad mode should error")
	}
	if err := run([]string{"-victim-class", "zombie", "-out", "/tmp/x"}); err == nil {
		t.Fatal("bad class should error")
	}
}
