// Command gendataset generates a synthetic IoT corpus as SOTB binaries
// on disk, one file per sample plus a labels.csv manifest — the
// stand-in for downloading the paper's CyberIOC + GitHub collection.
//
// Usage:
//
//	gendataset -out dir [-benign N -gafgyt N -mirai N -tsunami N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"soteria/internal/malgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendataset:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendataset", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (required)")
	seed := fs.Int64("seed", 1, "generator seed")
	dedup := fs.Bool("dedup", false, "drop samples whose CFG is structurally identical (WL hash) to an earlier one")
	nBenign := fs.Int("benign", 60, "number of benign samples")
	nGafgyt := fs.Int("gafgyt", 110, "number of Gafgyt samples")
	nMirai := fs.Int("mirai", 50, "number of Mirai samples")
	nTsunami := fs.Int("tsunami", 25, "number of Tsunami samples")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	gen := malgen.NewGenerator(malgen.Config{Seed: *seed})
	corpus, err := gen.Corpus(map[malgen.Class]int{
		malgen.Benign:  *nBenign,
		malgen.Gafgyt:  *nGafgyt,
		malgen.Mirai:   *nMirai,
		malgen.Tsunami: *nTsunami,
	})
	if err != nil {
		return err
	}

	var manifest strings.Builder
	manifest.WriteString("file,class,nodes\n")
	seen := make(map[[32]byte]bool)
	written, dropped := 0, 0
	for _, s := range corpus {
		if *dedup {
			h := s.CFG.G.WLHash(3)
			if seen[h] {
				dropped++
				continue
			}
			seen[h] = true
		}
		raw, err := s.Binary.Encode()
		if err != nil {
			return fmt.Errorf("encode %s: %w", s.ID, err)
		}
		name := s.ID + ".sotb"
		if err := os.WriteFile(filepath.Join(*out, name), raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%s,%s,%d\n", name, s.Class, s.Nodes())
		written++
	}
	if err := os.WriteFile(filepath.Join(*out, "labels.csv"), []byte(manifest.String()), 0o644); err != nil {
		return err
	}
	if dropped > 0 {
		fmt.Printf("dropped %d structural duplicates\n", dropped)
	}
	fmt.Printf("wrote %d samples and labels.csv to %s\n", written, *out)
	return nil
}
