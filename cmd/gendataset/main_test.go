package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCorpus(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-benign", "2", "-gafgyt", "2", "-mirai", "1", "-tsunami", "1", "-seed", "3"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 6 samples + labels.csv.
	if len(entries) != 7 {
		t.Fatalf("wrote %d files, want 7", len(entries))
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "labels.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(manifest)), "\n")
	if len(lines) != 7 || lines[0] != "file,class,nodes" {
		t.Fatalf("manifest = %q", string(manifest))
	}
}

func TestRunRequiresOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out should error")
	}
}
