// Command loadgen is an open-loop load generator for the Soteria
// serving tier: it offers POST /analyze traffic (raw SOTB binaries
// from a deterministic synthetic corpus) to a -serve replica or a
// -fleet front door at a fixed arrival rate and reports what came
// back.
//
// Open loop means arrivals are scheduled on the clock — request i
// departs at start + i/rate whether or not earlier requests have
// completed. That is the property that makes overload visible: a
// closed-loop driver (fixed worker pool) slows its own offered load
// down to whatever the server sustains, hiding saturation behind
// coordinated omission, while an open-loop driver keeps the pressure
// on and forces the server to shed. Use it to measure the fleet's
// shedding behavior honestly, not just its happy-path throughput.
//
// The traffic mix is tunable: -corpus distinct binaries, and each
// arrival either repeats an already-offered (binary, salt) pair with
// probability -repeat (cache-warm traffic that exercises the replicas'
// content-addressed caches and the front door's routing affinity) or
// carries a fresh salt (a guaranteed cache miss). The schedule — every
// arrival's offset, body, and salt — is precomputed from -seed before
// the first request leaves, so two runs against the same server offer
// byte-identical traffic.
//
// The report gives offered/served/shed/error counts, sustained
// throughput, and served-latency quantiles (p50/p99/p999) estimated
// from an internal/obs histogram. -bench NAME additionally emits a
// `go test -bench`-formatted line that cmd/benchreport ingests
// (`loadgen ... | benchreport -input -`).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soteria/internal/malgen"
	"soteria/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// genConfig is the parsed flag set.
type genConfig struct {
	target     string
	rate       float64
	duration   time.Duration
	corpusN    int
	size       int
	repeat     float64
	seed       int64
	timeout    time.Duration
	deadlineMS int64
	benchName  string
}

// arrival is one precomputed schedule entry: when the request departs
// (offset from the run start) and what it carries.
type arrival struct {
	at   time.Duration
	body int   // corpus index
	salt int64 // salt query parameter
}

// summary is one run's outcome.
type summary struct {
	offered, served, shed, errors int64
	wall                          time.Duration
	meanNs                        float64
	p50, p99, p999                float64 // served latency, ns
}

func (s summary) rps() float64 {
	if s.wall <= 0 {
		return 0
	}
	return float64(s.served) / s.wall.Seconds()
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	cfg := genConfig{}
	fs.StringVar(&cfg.target, "target", "http://127.0.0.1:8080", "base URL of the /analyze endpoint (a -serve replica or -fleet front door)")
	fs.Float64Var(&cfg.rate, "rate", 50, "offered arrival rate in requests/second")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to offer load")
	fs.IntVar(&cfg.corpusN, "corpus", 16, "distinct binaries in the traffic pool")
	fs.IntVar(&cfg.size, "size", 40, "functions per generated binary")
	fs.Float64Var(&cfg.repeat, "repeat", 0.75, "fraction of arrivals that repeat an already-offered (binary, salt) pair; the rest carry fresh salts")
	fs.Int64Var(&cfg.seed, "seed", 1, "corpus and schedule seed")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request client timeout")
	fs.Int64Var(&cfg.deadlineMS, "deadline-ms", 0, "declare this Soteria-Deadline-Ms budget on every request (0: none)")
	fs.StringVar(&cfg.benchName, "bench", "", "also print a go-bench formatted `name` line for cmd/benchreport")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.rate <= 0 || cfg.duration <= 0 {
		return fmt.Errorf("-rate and -duration must be positive")
	}
	if cfg.corpusN < 1 {
		return fmt.Errorf("-corpus must be at least 1")
	}
	if cfg.repeat < 0 || cfg.repeat > 1 {
		return fmt.Errorf("-repeat must be in [0, 1]")
	}

	corpus, err := buildCorpus(cfg.seed, cfg.corpusN, cfg.size)
	if err != nil {
		return err
	}
	schedule := buildSchedule(cfg.seed, cfg.rate, cfg.duration, cfg.corpusN, cfg.repeat)
	fmt.Fprintf(stdout, "loadgen: %s <- %d arrivals at %.1f req/s over %v (%d distinct binaries, repeat %.0f%%)\n",
		cfg.target, len(schedule), cfg.rate, cfg.duration, cfg.corpusN, cfg.repeat*100)

	sum := execute(cfg, corpus, schedule)
	report(stdout, cfg, sum)
	return nil
}

// buildCorpus generates the pool of distinct SOTB binaries, classes
// round-robined so the traffic exercises every decision path.
func buildCorpus(seed int64, n, size int) ([][]byte, error) {
	gen := malgen.NewGenerator(malgen.Config{Seed: seed})
	corpus := make([][]byte, n)
	for i := range corpus {
		s, err := gen.SampleSized(malgen.Classes[i%len(malgen.Classes)], size)
		if err != nil {
			return nil, fmt.Errorf("corpus sample %d: %w", i, err)
		}
		raw, err := s.Binary.Encode()
		if err != nil {
			return nil, fmt.Errorf("corpus sample %d: %w", i, err)
		}
		corpus[i] = raw
	}
	return corpus, nil
}

// buildSchedule precomputes every arrival: fixed-rate offsets (the
// open-loop clock) and a deterministic repeat/fresh traffic mix. A
// repeated arrival reuses its binary's stable salt — the same
// (content, salt) cache key every time — while a fresh one gets a salt
// no other arrival shares.
func buildSchedule(seed int64, rate float64, d time.Duration, corpusN int, repeat float64) []arrival {
	rng := rand.New(rand.NewSource(seed))
	n := int(rate * d.Seconds())
	if n < 1 {
		n = 1
	}
	schedule := make([]arrival, n)
	for i := range schedule {
		a := arrival{
			at:   time.Duration(float64(i) / rate * float64(time.Second)),
			body: rng.Intn(corpusN),
		}
		if rng.Float64() < repeat {
			a.salt = int64(a.body) // stable pair: repeat traffic
		} else {
			a.salt = int64(corpusN + i) // unique: guaranteed cache miss
		}
		schedule[i] = a
	}
	return schedule
}

// execute offers the schedule to the target. Arrivals depart on the
// precomputed clock: the dispatcher sleeps until each arrival's offset
// and fires it in its own goroutine, never waiting for completions —
// if the server falls behind, concurrency grows and the server must
// shed, which is the behavior under test.
func execute(cfg genConfig, corpus [][]byte, schedule []arrival) summary {
	reg := obs.NewRegistry()
	lat := reg.Histogram("loadgen.latency_ns", obs.DurationBuckets())
	var served, shed, errs atomic.Int64

	client := &http.Client{
		Timeout:   cfg.timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: 512},
	}
	base := strings.TrimRight(cfg.target, "/")

	start := time.Now()
	var wg sync.WaitGroup
	for i := range schedule {
		a := schedule[i]
		if d := time.Until(start.Add(a.at)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(client, base, corpus[a.body], a.salt, cfg.deadlineMS, lat, &served, &shed, &errs)
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	return summary{
		offered: int64(len(schedule)),
		served:  served.Load(),
		shed:    shed.Load(),
		errors:  errs.Load(),
		wall:    wall,
		meanNs:  lat.Mean(),
		p50:     lat.Quantile(0.50),
		p99:     lat.Quantile(0.99),
		p999:    lat.Quantile(0.999),
	}
}

// fire sends one request and classifies the outcome: 200 served (and
// its latency observed), 503 shed, everything else — transport errors
// included — an error.
func fire(client *http.Client, base string, body []byte, salt, deadlineMS int64, lat *obs.Histogram, served, shed, errs *atomic.Int64) {
	req, err := http.NewRequest(http.MethodPost, fmt.Sprintf("%s/analyze?salt=%d", base, salt), bytes.NewReader(body))
	if err != nil {
		errs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if deadlineMS > 0 {
		req.Header.Set("Soteria-Deadline-Ms", fmt.Sprint(deadlineMS))
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		errs.Add(1)
		return
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	closeErr := resp.Body.Close()
	switch {
	case copyErr != nil || closeErr != nil:
		errs.Add(1)
	case resp.StatusCode == http.StatusOK:
		lat.Observe(float64(time.Since(t0).Nanoseconds()))
		served.Add(1)
	case resp.StatusCode == http.StatusServiceUnavailable:
		shed.Add(1)
	default:
		errs.Add(1)
	}
}

// report prints the human summary and, when -bench is set, the
// go-bench formatted line benchreport parses: iteration count is
// served requests, ns/op the mean served latency, and the custom
// units carry throughput, quantiles, and loss counts.
func report(w io.Writer, cfg genConfig, s summary) {
	fmt.Fprintf(w, "loadgen: served=%d shed=%d errors=%d of %d offered in %v\n",
		s.served, s.shed, s.errors, s.offered, s.wall.Round(time.Millisecond))
	fmt.Fprintf(w, "loadgen: sustained %.1f req/s; served latency p50=%v p99=%v p999=%v\n",
		s.rps(),
		time.Duration(s.p50).Round(time.Microsecond),
		time.Duration(s.p99).Round(time.Microsecond),
		time.Duration(s.p999).Round(time.Microsecond))
	if cfg.benchName != "" {
		fmt.Fprintf(w, "Benchmark%s 	 %d 	 %.0f ns/op 	 %.2f req/s 	 %.0f p50-ns 	 %.0f p99-ns 	 %.0f p999-ns 	 %d shed 	 %d errors\n",
			cfg.benchName, s.served, s.meanNs, s.rps(), s.p50, s.p99, s.p999, s.shed, s.errors)
	}
}
