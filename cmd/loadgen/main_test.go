package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-rate", "0"},
		{"-rate", "-5"},
		{"-duration", "0s"},
		{"-corpus", "0"},
		{"-repeat", "1.5"},
		{"stray-arg"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v): want usage error, got nil", args)
		}
	}
}

// TestScheduleDeterministic pins the schedule contract: the same seed
// yields byte-identical traffic, and the repeat knob controls the
// salt mix exactly — repeated arrivals reuse their binary's stable
// salt, fresh arrivals carry salts no other arrival shares.
func TestScheduleDeterministic(t *testing.T) {
	a := buildSchedule(7, 100, time.Second, 8, 0.5)
	b := buildSchedule(7, 100, time.Second, 8, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 100 {
		t.Fatalf("schedule length %d, want 100", len(a))
	}

	allRepeat := buildSchedule(7, 50, time.Second, 8, 1.0)
	for _, ar := range allRepeat {
		if ar.salt != int64(ar.body) {
			t.Fatalf("repeat=1 arrival has fresh salt %d (body %d)", ar.salt, ar.body)
		}
	}
	allFresh := buildSchedule(7, 50, time.Second, 8, 0.0)
	seen := map[int64]bool{}
	for _, ar := range allFresh {
		if ar.salt < 8 {
			t.Fatalf("repeat=0 arrival has stable salt %d", ar.salt)
		}
		if seen[ar.salt] {
			t.Fatalf("fresh salt %d reused", ar.salt)
		}
		seen[ar.salt] = true
	}

	// Arrivals sit on the open-loop clock: offset i/rate exactly.
	for i, ar := range allFresh[:5] {
		want := time.Duration(float64(i) / 50 * float64(time.Second))
		if ar.at != want {
			t.Fatalf("arrival %d at %v, want %v", i, ar.at, want)
		}
	}
}

// TestOpenLoopOffersFullSchedule is the open-loop pin: a server much
// slower than the arrival interval must not slow the offered load
// down. A closed-loop driver with one worker would complete ~4
// requests in this configuration; the open-loop driver offers all 20
// on schedule and finishes in about duration + one service time.
func TestOpenLoopOffersFullSchedule(t *testing.T) {
	const delay = 150 * time.Millisecond
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		time.Sleep(delay)
		fmt.Fprintln(w, `{"adversarial":false,"re":0,"class":"Benign"}`)
	}))
	defer srv.Close()

	cfg := genConfig{target: srv.URL, rate: 40, duration: 500 * time.Millisecond, timeout: 10 * time.Second}
	schedule := buildSchedule(1, cfg.rate, cfg.duration, 1, 1.0)
	if len(schedule) != 20 {
		t.Fatalf("schedule length %d, want 20", len(schedule))
	}
	start := time.Now()
	sum := execute(cfg, [][]byte{[]byte("stub")}, schedule)
	wall := time.Since(start)

	if sum.offered != 20 || sum.served != 20 {
		t.Fatalf("offered=%d served=%d, want 20/20", sum.offered, sum.served)
	}
	if hits.Load() != 20 {
		t.Fatalf("server saw %d requests, want 20", hits.Load())
	}
	// Open loop: ~625ms (last arrival at 475ms + 150ms service), far
	// below the 3s a serialized closed loop would need. Generous bound
	// for slow CI machines.
	if wall > 2*time.Second {
		t.Fatalf("run took %v; arrivals appear to wait for completions", wall)
	}
	if sum.p50 <= 0 {
		t.Fatal("no served-latency quantiles recorded")
	}
}

// TestOutcomeClassification: 200 is served, 503 is shed, anything else
// is an error — straight from the response the server actually sent.
func TestOutcomeClassification(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		salt, _ := strconv.Atoi(r.URL.Query().Get("salt"))
		switch salt % 3 {
		case 0:
			fmt.Fprintln(w, `{}`)
		case 1:
			http.Error(w, "saturated", http.StatusServiceUnavailable)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	schedule := make([]arrival, 9)
	for i := range schedule {
		schedule[i] = arrival{salt: int64(i)}
	}
	cfg := genConfig{target: srv.URL, rate: 1000, timeout: 5 * time.Second}
	sum := execute(cfg, [][]byte{[]byte("stub")}, schedule)
	if sum.served != 3 || sum.shed != 3 || sum.errors != 3 {
		t.Fatalf("served=%d shed=%d errors=%d, want 3/3/3", sum.served, sum.shed, sum.errors)
	}
}

// TestBenchLineFormat: the -bench line must parse as a `go test
// -bench` result — name, iteration count, then value/unit pairs —
// because cmd/benchreport ingests it verbatim.
func TestBenchLineFormat(t *testing.T) {
	var out bytes.Buffer
	report(&out, genConfig{benchName: "Loadgen/fleet=4"}, summary{
		offered: 100, served: 90, shed: 8, errors: 2,
		wall: time.Second, meanNs: 1.5e6, p50: 1e6, p99: 3e6, p999: 9e6,
	})
	var benchLine string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "Benchmark") {
			benchLine = line
		}
	}
	if benchLine == "" {
		t.Fatalf("no Benchmark line in report output:\n%s", out.String())
	}
	fields := strings.Fields(benchLine)
	if fields[0] != "BenchmarkLoadgen/fleet=4" {
		t.Fatalf("bench name %q", fields[0])
	}
	if n, err := strconv.ParseInt(fields[1], 10, 64); err != nil || n != 90 {
		t.Fatalf("iterations field %q, want 90", fields[1])
	}
	if len(fields)%2 != 0 {
		t.Fatalf("value/unit pairs unbalanced: %q", benchLine)
	}
	units := map[string]bool{}
	for i := 2; i+1 < len(fields); i += 2 {
		if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
			t.Fatalf("non-numeric value %q in %q", fields[i], benchLine)
		}
		units[fields[i+1]] = true
	}
	for _, u := range []string{"ns/op", "req/s", "p50-ns", "p99-ns", "p999-ns", "shed", "errors"} {
		if !units[u] {
			t.Fatalf("bench line missing unit %q: %q", u, benchLine)
		}
	}
}

// TestCorpusDeterministic: the binary pool is a pure function of the
// seed, so two loadgen runs offer identical bytes.
func TestCorpusDeterministic(t *testing.T) {
	a, err := buildCorpus(3, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildCorpus(3, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("corpus binary %d differs between same-seed builds", i)
		}
	}
	if bytes.Equal(a[0], a[1]) {
		t.Fatal("corpus binaries are not distinct")
	}
}
