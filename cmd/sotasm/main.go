// Command sotasm assembles SOT-32 assembly text into an SOTB binary —
// the hand-authoring path of the toolchain (gendataset generates,
// sotasm assembles, cfgdump inspects, soteria analyzes).
//
// Usage:
//
//	sotasm -out prog.sotb prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"soteria/internal/isa"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sotasm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sotasm", flag.ContinueOnError)
	out := fs.String("out", "", "output .sotb path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: sotasm -out prog.sotb prog.s")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := isa.ParseAsm(string(src))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	bin, _, err := isa.Assemble(prog, isa.AsmOptions{})
	if err != nil {
		return err
	}
	raw, err := bin.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("assembled %d blocks -> %s (%d bytes)\n", prog.NumBlocks(), *out, len(raw))
	return nil
}
