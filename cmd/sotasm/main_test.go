package main

import (
	"os"
	"path/filepath"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/isa"
)

func TestRunAssembles(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	out := filepath.Join(dir, "p.sotb")
	asm := ".func main\nentry:\n movi r0, 7\n sys 1\n halt\n"
	if err := os.WriteFile(src, []byte(asm), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", out, src}); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := isa.DecodeBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disasm.Disassemble(bin); err != nil {
		t.Fatal(err)
	}
	vm := isa.NewVM(bin)
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(vm.Syscalls) != 1 || vm.Syscalls[0][1] != 7 {
		t.Fatalf("syscalls = %v", vm.Syscalls)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing args should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.s")
	if err := os.WriteFile(bad, []byte(".func m\nentry:\n explode\n halt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", filepath.Join(dir, "x.sotb"), bad}); err == nil {
		t.Fatal("parse error should propagate")
	}
}
