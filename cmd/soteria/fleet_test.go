package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"soteria"
	"soteria/internal/fleet"
	"soteria/internal/malgen"
)

// trainTinySystem builds a small trained System plus its corpus, shared
// shape with TestServeHandler but without a registry (fleet replicas
// carry their own).
func trainTinySystem(t *testing.T, seed int64) (*soteria.System, []*malgen.Sample) {
	t.Helper()
	gen := malgen.NewGenerator(malgen.Config{Seed: seed})
	var corpus []*malgen.Sample
	for _, c := range malgen.Classes {
		for i := 0; i < 3; i++ {
			s, err := gen.Sample(c)
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, s)
		}
	}
	opts := soteria.DefaultOptions()
	opts.Features.WalkCount = 3
	opts.DetectorEpochs = 6
	opts.ClassifierEpochs = 6
	opts.Filters = 4
	opts.DenseUnits = 16
	sys, err := soteria.Train(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, corpus
}

// TestFleetProxyMatchesDirect is the serving-tier equivalence pin:
// decisions served through the front door — spawned replicas, routing,
// the whole proxy path — are byte-identical to the JSON a direct
// Analyze call on the source model would produce.
func TestFleetProxyMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	sys, corpus := trainTinySystem(t, 11)

	var model bytes.Buffer
	if err := sys.Save(&model); err != nil {
		t.Fatal(err)
	}
	var urls []string
	for i := 0; i < 2; i++ {
		r, err := spawnReplica(model.Bytes(), false, false, soteria.DefaultCacheMaxBytes)
		if err != nil {
			t.Fatalf("spawnReplica %d: %v", i, err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := r.drain(ctx); err != nil {
				t.Errorf("replica drain: %v", err)
			}
		})
		urls = append(urls, r.url)
	}

	reg := soteria.NewRegistry()
	door, err := fleet.New(fleet.Config{Backends: urls, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(door.Close)
	front := httptest.NewServer(frontdoorHandler(door, reg, urls))
	t.Cleanup(front.Close)

	for i, s := range corpus[:4] {
		raw, err := s.Binary.Encode()
		if err != nil {
			t.Fatal(err)
		}
		salt := int64(7*i + 1)
		res, err := http.Post(fmt.Sprintf("%s/analyze?salt=%d", front.URL, salt),
			"application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(res.Body)
		bodyClose(t, res)
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("sample %d: status %d: %s", i, res.StatusCode, got)
		}

		dec, err := sys.Analyze(s.CFG, salt)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(analyzeResponse{
			Adversarial: dec.Adversarial,
			RE:          dec.RE,
			Class:       dec.Class.String(),
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("sample %d: proxy response %q diverges from direct %q", i, got, want.Bytes())
		}
	}

	// The front door's own surface: /healthz answers, /metrics carries
	// the fleet.* counters for the traffic just served.
	res, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("front /healthz status %d", res.StatusCode)
	}
	res, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	err = json.NewDecoder(res.Body).Decode(&snap)
	bodyClose(t, res)
	if err != nil {
		t.Fatalf("front /metrics: %v", err)
	}
	var served float64
	if err := json.Unmarshal(snap["fleet.requests"], &served); err != nil || served < 4 {
		t.Fatalf("fleet.requests = %s (err %v), want >= 4", snap["fleet.requests"], err)
	}
}
