// Command soteria trains the full Soteria system on a synthetic corpus
// and analyzes SOTB binaries: adversarial-example detection first, then
// family classification — the paper's Fig. 2 deployment.
//
// Usage:
//
//	soteria [-load model.json | -train-per-class N] [-save model.json] \
//	        file.sotb [file2.sotb ...]
//
// Training data is generated on the fly (the corpus generator is the
// dataset substitute; see DESIGN.md); -save persists the trained system
// and -load skips training entirely. Analysis prints one line per
// input: verdict, reconstruction error, and class.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"soteria"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "soteria:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("soteria", flag.ContinueOnError)
	perClass := fs.Int("train-per-class", 40, "training samples generated per class")
	seed := fs.Int64("seed", 1, "generator and training seed")
	loadPath := fs.String("load", "", "load a trained model instead of training")
	savePath := fs.String("save", "", "save the trained model to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 && *savePath == "" {
		return fmt.Errorf("usage: soteria [flags] file.sotb [file2.sotb ...]")
	}

	var sys *soteria.System
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = soteria.Load(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded model from %s\n", *loadPath)
	} else {
		gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: *seed})
		counts := map[soteria.Class]int{}
		for _, c := range soteria.Classes {
			counts[c] = *perClass
		}
		fmt.Fprintf(os.Stderr, "generating %d training samples...\n", *perClass*len(soteria.Classes))
		corpus, err := gen.Corpus(counts)
		if err != nil {
			return err
		}
		opts := soteria.DefaultOptions()
		opts.Seed = *seed
		start := time.Now()
		fmt.Fprintln(os.Stderr, "training detector and classifier...")
		sys, err = soteria.Train(corpus, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trained in %v\n", time.Since(start).Round(time.Second))
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := sys.Save(f); err != nil {
			// Save already failed; its error outranks the close result.
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", *savePath)
	}

	// Parse and disassemble per file (so an unreadable file is named
	// precisely), then score the whole set in one batched pass — the
	// salt stays the file's position, so decisions match the former
	// one-at-a-time loop exactly.
	cfgs := make([]*soteria.CFG, len(files))
	salts := make([]int64, len(files))
	for i, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		bin, err := soteria.ParseBinary(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		cfgs[i], err = soteria.Disassemble(bin)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		salts[i] = int64(i)
	}
	if len(files) == 0 {
		return nil
	}
	decs, err := sys.AnalyzeBatch(cfgs, salts)
	if err != nil {
		return err
	}
	for i, f := range files {
		dec := decs[i]
		verdict := "clean"
		if dec.Adversarial {
			verdict = "ADVERSARIAL"
		}
		fmt.Printf("%s: %s (RE=%.6f) class=%s\n", f, verdict, dec.RE, dec.Class)
	}
	return nil
}
