// Command soteria trains the full Soteria system on a synthetic corpus
// and analyzes SOTB binaries: adversarial-example detection first, then
// family classification — the paper's Fig. 2 deployment.
//
// Usage:
//
//	soteria [-load model.json | -train-per-class N] [-save model.json] \
//	        [-serve addr | -fleet addr -replicas N|url,...] [-fast] \
//	        [-cache-dir DIR | -no-cache] [-cache-max-bytes N] [-salt N] \
//	        file.sotb [file2.sotb ...]
//
// Training data is generated on the fly (the corpus generator is the
// dataset substitute; see DESIGN.md); -save persists the trained system
// and -load skips training entirely. Analysis prints one line per
// input: verdict, reconstruction error, and class.
//
// Repeat submissions are served from a content-addressed feature/
// verdict cache (in-memory by default; -cache-dir persists it across
// restarts, -cache-max-bytes bounds it, -no-cache disables it). Cache
// keys include the model fingerprint, so swapping models never serves
// stale verdicts.
//
// -serve starts an HTTP server instead of analyzing files: POST raw
// SOTB bytes to /analyze (optional ?salt=N) for a JSON decision served
// through a micro-batching Batcher, GET /metrics for the observability
// registry's JSON snapshot (training and serving metrics; see DESIGN.md
// §9), GET /healthz for liveness, and /debug/pprof/ for the standard
// profiles. The server shuts down gracefully on SIGINT/SIGTERM: the
// listener stops, in-flight requests finish, and the Batcher drains.
//
// Serve mode runs behind a versioned model registry (DESIGN.md §12):
// the startup model is version one, and the /models admin API hot-swaps
// later versions with zero downtime — POST a saved model to /models,
// shadow-score it against live traffic (POST /models/{id}/shadow, gate
// on the registry.shadow_* metrics), then POST /models/{id}/activate to
// cut over. -fast applies to the startup model; admin-loaded versions
// always serve the default bit-exact kernels.
//
// -fleet starts the scale-out serving tier (DESIGN.md §11) instead: a
// front door on addr that routes /analyze across replicas with
// least-loaded routing, health-gated membership, and deadline-aware
// load shedding. -replicas N spawns N in-process replicas (each an
// independent model copy with its own Batcher and in-memory cache);
// -replicas url1,url2 fronts already-running -serve processes and
// needs no model at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"soteria"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "soteria:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("soteria", flag.ContinueOnError)
	perClass := fs.Int("train-per-class", 40, "training samples generated per class")
	seed := fs.Int64("seed", 1, "generator and training seed")
	loadPath := fs.String("load", "", "load a trained model instead of training")
	savePath := fs.String("save", "", "save the trained model to this path")
	serveAddr := fs.String("serve", "", "serve /analyze, /metrics, /healthz, /debug/pprof on this address instead of analyzing files")
	fleetAddr := fs.String("fleet", "", "serve a fleet front door on this address (requires -replicas)")
	replicasSpec := fs.String("replicas", "", "fleet replicas: an integer N to spawn in-process, or comma-separated base URLs of running -serve processes")
	fast := fs.Bool("fast", false, "relaxed-precision scoring (FMA kernels, fused softmax); scores within documented tolerance of the default bit-exact mode")
	salt := fs.Int64("salt", 0, "walk-randomness salt applied to every analyzed file (content-stable, so repeat inputs share cache entries)")
	cacheDir := fs.String("cache-dir", "", "persist the feature/verdict cache in this directory (default: in-memory only)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", soteria.DefaultCacheMaxBytes, "byte budget for the feature/verdict cache (LRU-evicted past it)")
	noCache := fs.Bool("no-cache", false, "disable the feature/verdict cache entirely")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *noCache && *cacheDir != "" {
		return fmt.Errorf("-no-cache and -cache-dir conflict: pick one")
	}
	// A loaded model is already trained, so training flags given next to
	// -load would be silently ignored; diagnose the conflict instead.
	if *loadPath != "" {
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "train-per-class" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-load and -%s conflict: a loaded model is already trained", conflict)
		}
	}
	files := fs.Args()
	if len(files) > 0 && *serveAddr != "" {
		return fmt.Errorf("-serve and file arguments conflict: serve mode analyzes via POST /analyze")
	}
	if len(files) > 0 && *fleetAddr != "" {
		return fmt.Errorf("-fleet and file arguments conflict: fleet mode analyzes via POST /analyze")
	}
	if *fleetAddr != "" && *serveAddr != "" {
		return fmt.Errorf("-fleet and -serve conflict: pick one serving mode")
	}
	if *replicasSpec != "" && *fleetAddr == "" {
		return fmt.Errorf("-replicas requires -fleet: replicas only exist behind a front door")
	}
	// Resolve the replica spec: an integer spawns in-process replicas
	// (needs a model), URLs front already-running servers (needs none).
	var fleetN int
	var fleetURLs []string
	if *fleetAddr != "" {
		switch n, err := strconv.Atoi(*replicasSpec); {
		case *replicasSpec == "":
			return fmt.Errorf("-fleet requires -replicas (an integer count or comma-separated URLs)")
		case err == nil && n < 1:
			return fmt.Errorf("-replicas %d: need at least one replica", n)
		case err == nil:
			fleetN = n
		default:
			fleetURLs = strings.Split(*replicasSpec, ",")
		}
	}
	if fleetN > 0 && *cacheDir != "" {
		return fmt.Errorf("-cache-dir and -replicas %d conflict: spawned replicas use independent in-memory caches", fleetN)
	}
	if len(fleetURLs) > 0 && (*loadPath != "" || *savePath != "") {
		return fmt.Errorf("-fleet over replica URLs proxies to running servers and loads no model; drop -load/-save")
	}
	if len(files) == 0 && *savePath == "" && *serveAddr == "" && *fleetAddr == "" {
		return fmt.Errorf("usage: soteria [flags] file.sotb [file2.sotb ...]")
	}

	// URL-mode fleet needs no model: go straight to the front door.
	if len(fleetURLs) > 0 {
		return serveFleetFront(*fleetAddr, fleetURLs, nil)
	}

	// In serve mode the registry is live from the start, so training
	// metrics (train.detector.*, train.classifier.*) appear alongside
	// the serving ones.
	var reg *soteria.Registry
	if *serveAddr != "" {
		reg = soteria.NewRegistry()
	}

	var sys *soteria.System
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = soteria.Load(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded model from %s\n", *loadPath)
	} else {
		gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: *seed})
		counts := map[soteria.Class]int{}
		for _, c := range soteria.Classes {
			counts[c] = *perClass
		}
		fmt.Fprintf(os.Stderr, "generating %d training samples...\n", *perClass*len(soteria.Classes))
		corpus, err := gen.Corpus(counts)
		if err != nil {
			return err
		}
		opts := soteria.DefaultOptions()
		opts.Seed = *seed
		opts.Obs = reg
		start := time.Now()
		fmt.Fprintln(os.Stderr, "training detector and classifier...")
		sys, err = soteria.Train(corpus, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trained in %v\n", time.Since(start).Round(time.Second))
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := sys.Save(f); err != nil {
			// Save already failed; its error outranks the close result.
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", *savePath)
	}

	// Fast mode is a scoring-only knob: it engages after training and
	// persistence, so saved models and trained weights are always
	// produced by the bit-exact kernels.
	if *fast {
		sys.SetFastScoring(true)
		fmt.Fprintln(os.Stderr, "fast scoring enabled (relaxed-precision kernels)")
	}

	// The result cache attaches after persistence and the fast toggle:
	// keys pin the final model fingerprint, and cached entries always
	// come from whichever scoring mode is serving. Close flushes the
	// record log; a degraded cache (I/O error mid-run) surfaces here
	// rather than being lost.
	// Spawned fleet replicas attach their own per-replica caches, so the
	// base system stays cacheless in that mode.
	var cache *soteria.Cache
	if !*noCache && fleetN == 0 {
		var err error
		cache, err = soteria.OpenCache(soteria.CacheConfig{
			Dir:      *cacheDir,
			MaxBytes: *cacheMaxBytes,
			Obs:      reg,
		})
		if err != nil {
			return err
		}
		closeCache := func() {
			if cerr := cache.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "soteria: cache: %v\n", cerr)
			}
		}
		defer closeCache()
		if err := sys.AttachCache(cache); err != nil {
			return err
		}
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "cache: %s (%d entries replayed)\n", *cacheDir, cache.Len())
		}
	}

	if *serveAddr != "" {
		// Serve through the versioned model registry: the trained/loaded
		// system becomes version one, and the /models admin API can load,
		// shadow, and hot-swap later versions without dropping requests.
		// Activation instruments the pipeline against reg and starts its
		// batcher; the shared cache keyspace is fingerprint-disjoint per
		// version.
		mr := soteria.NewModelRegistry(soteria.ModelRegistryConfig{Obs: reg, Cache: cache})
		// serveSingle closes the registry (draining every version's
		// batcher) once the listener stops; this deferred Close is the
		// idempotent backstop for listener errors.
		defer mr.Close()
		id, err := soteria.AddModel(mr, sys)
		if err != nil {
			return err
		}
		if err := mr.Activate(id); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving model version %s\n", id)
		return serveSingle(*serveAddr, reg, mr)
	}
	if fleetN > 0 {
		return serveFleetSpawn(*fleetAddr, fleetN, sys, *fast, *noCache, *cacheMaxBytes)
	}

	// Validate each file up front (so an unreadable or malformed file is
	// named precisely), then score the whole set from raw bytes in one
	// batched pass — the binary path consults the content-addressed
	// cache. Every file shares the -salt value (default 0): cache keys
	// are (content, salt, model), so a content-stable salt lets duplicate
	// inputs — in one run or across runs at different argv positions —
	// share one key instead of defeating the cache positionally.
	raws := make([][]byte, len(files))
	salts := make([]int64, len(files))
	for i, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		bin, err := soteria.ParseBinary(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if _, err := soteria.Disassemble(bin); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		raws[i] = raw
		salts[i] = *salt
	}
	if len(files) == 0 {
		return nil
	}
	decs, err := sys.AnalyzeBinaryBatch(raws, salts)
	if err != nil {
		return err
	}
	for i, f := range files {
		dec := decs[i]
		verdict := "clean"
		if dec.Adversarial {
			verdict = "ADVERSARIAL"
		}
		fmt.Printf("%s: %s (RE=%.6f) class=%s\n", f, verdict, dec.RE, dec.Class)
	}
	return nil
}

// analyzeResponse is /analyze's JSON decision.
type analyzeResponse struct {
	Adversarial bool    `json:"adversarial"`
	RE          float64 `json:"re"`
	Class       string  `json:"class"`
}

// maxAnalyzeBody bounds an /analyze request's binary.
const maxAnalyzeBody = 16 << 20

// serveHandler builds the serve-mode HTTP handler: /analyze (POST raw
// SOTB bytes, decisions via the active model version's micro-batching
// Batcher), /models (the model registry's load/activate/shadow admin
// API), /metrics (the registry's JSON snapshot), /healthz, and the
// standard pprof endpoints on an explicit mux (nothing else leaks in
// from http.DefaultServeMux).
func serveHandler(reg *soteria.Registry, mr *soteria.ModelRegistry) http.Handler {
	mux := http.NewServeMux()
	admin := mr.AdminHandler()
	mux.Handle("/models", admin)
	mux.Handle("/models/", admin)
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a raw SOTB binary", http.StatusMethodNotAllowed)
			return
		}
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxAnalyzeBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var salt int64
		if q := r.URL.Query().Get("salt"); q != "" {
			if salt, err = strconv.ParseInt(q, 10, 64); err != nil {
				http.Error(w, "salt must be an integer", http.StatusBadRequest)
				return
			}
		}
		bin, err := soteria.ParseBinary(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg, err := soteria.Disassemble(bin)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		dec, err := mr.SubmitCtx(r.Context(), cfg, salt)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(analyzeResponse{
			Adversarial: dec.Adversarial,
			RE:          dec.RE,
			Class:       dec.Class.String(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
