package main

import (
	"os"
	"path/filepath"
	"testing"

	"soteria/internal/malgen"
)

func TestRunTrainSaveLoadAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	sample := filepath.Join(dir, "sample.sotb")

	// A binary to analyze.
	gen := malgen.NewGenerator(malgen.Config{Seed: 5})
	s, err := gen.SampleSized(malgen.Mirai, 30)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sample, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Train tiny, save, analyze.
	if err := run([]string{"-train-per-class", "6", "-save", model, sample}); err != nil {
		t.Fatalf("train+save run: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	// Load and analyze without training.
	if err := run([]string{"-load", model, sample}); err != nil {
		t.Fatalf("load run: %v", err)
	}
}

func TestRunNoFiles(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no files should error")
	}
}
