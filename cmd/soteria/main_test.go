package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soteria"
	"soteria/internal/malgen"
)

func TestRunTrainSaveLoadAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	sample := filepath.Join(dir, "sample.sotb")

	// A binary to analyze.
	gen := malgen.NewGenerator(malgen.Config{Seed: 5})
	s, err := gen.SampleSized(malgen.Mirai, 30)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sample, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Train tiny, save, analyze.
	if err := run([]string{"-train-per-class", "6", "-save", model, sample}); err != nil {
		t.Fatalf("train+save run: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	// Load and analyze without training.
	if err := run([]string{"-load", model, sample}); err != nil {
		t.Fatalf("load run: %v", err)
	}
}

func TestRunNoFiles(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no files should error")
	}
}

// TestRunConflictingFlags pins the flag diagnosis: -load with
// -train-per-class used to silently ignore the training flag; now the
// conflict is a usage error, reported before any file is touched.
func TestRunConflictingFlags(t *testing.T) {
	err := run([]string{"-load", "does-not-exist.json", "-train-per-class", "5", "x.sotb"})
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("err = %v, want conflict diagnosis", err)
	}
	if strings.Contains(err.Error(), "does-not-exist") {
		t.Fatalf("conflict must be diagnosed before opening the model: %v", err)
	}
	// -serve and file arguments are mutually exclusive too.
	if err := run([]string{"-serve", "127.0.0.1:0", "x.sotb"}); err == nil ||
		!strings.Contains(err.Error(), "conflict") {
		t.Fatalf("serve+files err = %v, want conflict diagnosis", err)
	}
	// -load alone (default train-per-class untouched) must not trip it.
	if err := run([]string{"-load", "does-not-exist.json", "x.sotb"}); err == nil ||
		strings.Contains(err.Error(), "conflict") {
		t.Fatalf("plain -load err = %v, want file-open error", err)
	}
	// -no-cache with -cache-dir is contradictory.
	if err := run([]string{"-no-cache", "-cache-dir", "/tmp/x", "x.sotb"}); err == nil ||
		!strings.Contains(err.Error(), "conflict") {
		t.Fatalf("no-cache+cache-dir err = %v, want conflict diagnosis", err)
	}
}

// TestRunFleetFlagConflicts pins the -fleet/-replicas usage surface:
// every contradictory combination is diagnosed before any model or
// network work happens.
func TestRunFleetFlagConflicts(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"fleet without replicas", []string{"-fleet", "127.0.0.1:0"}},
		{"replicas without fleet", []string{"-replicas", "2", "-save", "x.json"}},
		{"fleet with serve", []string{"-fleet", "127.0.0.1:0", "-replicas", "2", "-serve", "127.0.0.1:0"}},
		{"fleet with files", []string{"-fleet", "127.0.0.1:0", "-replicas", "2", "x.sotb"}},
		{"zero replicas", []string{"-fleet", "127.0.0.1:0", "-replicas", "0"}},
		{"spawn with cache-dir", []string{"-fleet", "127.0.0.1:0", "-replicas", "2", "-cache-dir", "/tmp/x"}},
		{"url replicas with load", []string{"-fleet", "127.0.0.1:0", "-replicas", "http://a,http://b", "-load", "m.json"}},
	}
	for _, tc := range cases {
		if err := run(tc.args); err == nil {
			t.Errorf("%s: want usage error, got nil", tc.name)
		}
	}
}

// TestRunCacheDir pins the persistent-cache CLI path: a second run over
// the same file with the same model must replay the first run's entries
// from -cache-dir, and -no-cache must run clean end to end.
func TestRunCacheDir(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	cacheDir := filepath.Join(dir, "cache")
	sample := filepath.Join(dir, "sample.sotb")

	gen := malgen.NewGenerator(malgen.Config{Seed: 6})
	s, err := gen.SampleSized(malgen.Gafgyt, 30)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sample, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-train-per-class", "3", "-save", model, "-cache-dir", cacheDir, sample}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	log := filepath.Join(cacheDir, "cache.log")
	fi, err := os.Stat(log)
	if err != nil {
		t.Fatalf("cache log not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("cache log is empty after an analyzing run")
	}
	// Second run loads the same model, so the fingerprint matches and
	// the analysis is served from the replayed cache (same output either
	// way — this guards that the replay path runs end to end).
	if err := run([]string{"-load", model, "-cache-dir", cacheDir, sample}); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if err := run([]string{"-load", model, "-no-cache", sample}); err != nil {
		t.Fatalf("no-cache run: %v", err)
	}
}

// TestRunDuplicateFilesShareCacheKey pins the content-stable salt fix:
// file-mode salts used to be the argv position (salts[i] = int64(i)),
// so the same binary listed twice — or listed at a different position
// in a later run — got distinct cache keys and defeated the cache.
// With a constant salt, any number of appearances of one binary, in
// any order, produce exactly one (verdict, features) key pair.
func TestRunDuplicateFilesShareCacheKey(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	cacheDir := filepath.Join(dir, "cache")
	fileA := filepath.Join(dir, "a.sotb")
	fileB := filepath.Join(dir, "b.sotb") // byte-identical copy of A

	gen := malgen.NewGenerator(malgen.Config{Seed: 8})
	s, err := gen.SampleSized(malgen.Mirai, 30)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := s.Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{fileA, fileB} {
		if err := os.WriteFile(f, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Run 1: the duplicate listed twice. Run 2: same content at a
	// different argv position. Under position salts the four appearances
	// spanned three distinct keys; under the content-stable salt they
	// share one.
	if err := run([]string{"-train-per-class", "3", "-save", model, "-cache-dir", cacheDir, fileA, fileB}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run([]string{"-load", model, "-cache-dir", cacheDir, fileB, fileA}); err != nil {
		t.Fatalf("second run: %v", err)
	}
	cache, err := soteria.OpenCache(soteria.CacheConfig{Dir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cache.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	// One key pair: the verdict entry plus the feature blob.
	if n := cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries after duplicate runs, want 2 (one verdict + one feature blob)", n)
	}
}

// TestRunSaveOnly pins the train-and-save path with no analysis files:
// it must train, write the model, and exit cleanly.
func TestRunSaveOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := run([]string{"-train-per-class", "3", "-save", model}); err != nil {
		t.Fatalf("save-only run: %v", err)
	}
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model not written: %v", err)
	}
}

// bodyClose closes a response body, failing the test on error so the
// persistence-error discipline holds in tests too.
func bodyClose(t *testing.T, res *http.Response) {
	t.Helper()
	if err := res.Body.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeHandler covers the -serve surface with httptest: /healthz,
// /metrics (JSON snapshot with training and serving metrics), /analyze
// (batched decisions matching a direct Analyze call), and the pprof
// endpoints.
func TestServeHandler(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	gen := malgen.NewGenerator(malgen.Config{Seed: 9})
	var corpus []*malgen.Sample
	for _, c := range malgen.Classes {
		for i := 0; i < 3; i++ {
			s, err := gen.Sample(c)
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, s)
		}
	}
	opts := soteria.DefaultOptions()
	opts.Features.WalkCount = 3
	opts.DetectorEpochs = 6
	opts.ClassifierEpochs = 6
	opts.Filters = 4
	opts.DenseUnits = 16
	reg := soteria.NewRegistry()
	opts.Obs = reg
	sys, err := soteria.Train(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	mr := soteria.NewModelRegistry(soteria.ModelRegistryConfig{Obs: reg})
	defer mr.Close()
	id, err := soteria.AddModel(mr, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Activate(id); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serveHandler(reg, mr))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", res.StatusCode)
	}

	// Analyze one binary through the server and require the decision to
	// match a direct Analyze call with the same salt.
	raw, err := corpus[0].Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err = http.Post(srv.URL+"/analyze?salt=42", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var got analyzeResponse
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatalf("/analyze response: %v", err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/analyze status %d", res.StatusCode)
	}
	want, err := sys.Analyze(corpus[0].CFG, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got.RE != want.RE || got.Adversarial != want.Adversarial || got.Class != want.Class.String() {
		t.Fatalf("/analyze decision %+v diverges from Analyze {%v %v %v}",
			got, want.Adversarial, want.RE, want.Class)
	}

	// /metrics must be valid JSON and include training and serving
	// metrics now that one request went through.
	res, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	bodyClose(t, res)
	for _, name := range []string{
		"train.detector.epochs", "train.classifier.epochs",
		"pipeline.samples", "batcher.wait_ns", "detector.re",
		"registry.active_version",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("/metrics missing %q", name)
		}
	}

	// Error paths: wrong method, junk body.
	res, err = http.Get(srv.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /analyze status %d, want 405", res.StatusCode)
	}
	res, err = http.Post(srv.URL+"/analyze", "application/octet-stream", strings.NewReader("not a binary"))
	if err != nil {
		t.Fatal(err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk /analyze status %d, want 400", res.StatusCode)
	}

	// pprof endpoints are mounted.
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		res, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		bodyClose(t, res)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", p, res.StatusCode)
		}
	}
}
