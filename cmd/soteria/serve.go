package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soteria"
	"soteria/internal/fleet"
)

// shutdownGrace bounds how long a stopping server waits for in-flight
// work before giving up the drain.
const shutdownGrace = 10 * time.Second

// newHTTPServer wraps a handler with the serving tier's protective
// timeouts: ReadHeaderTimeout stops slow-loris header dribble from
// pinning goroutines, IdleTimeout reaps abandoned keep-alive
// connections. Body reads stay unbounded-in-time because /analyze
// accepts multi-megabyte uploads from slow links; MaxBytesReader
// bounds their size instead.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// serveGracefully serves srv on ln until SIGINT/SIGTERM (or a listener
// failure), then shuts down in order: stop the listener and wait for
// in-flight HTTP requests (srv.Shutdown), then run each drain hook —
// front doors drain before their replicas, batchers close after their
// servers stop feeding them. It owns the process lifecycle, so the
// root context is minted here and every drain hook receives the
// grace-bounded child.
func serveGracefully(srv *http.Server, ln net.Listener, drains ...func(context.Context) error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-queueing
	fmt.Fprintln(os.Stderr, "shutting down...")
	gctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := srv.Shutdown(gctx)
	for _, drain := range drains {
		if derr := drain(gctx); derr != nil && err == nil {
			err = derr
		}
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// serveSingle runs one-replica serve mode: the existing handler
// surface behind a hardened http.Server, with the model registry
// closed (draining every version's batcher) only after the listener
// has stopped accepting work.
func serveSingle(addr string, reg *soteria.Registry, mr *soteria.ModelRegistry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving on %s (/analyze, /models, /metrics, /healthz, /debug/pprof/)\n", ln.Addr())
	return serveGracefully(newHTTPServer(serveHandler(reg, mr)), ln,
		func(context.Context) error { mr.Close(); return nil })
}

// replicaServer is one in-process serving replica: an independent
// System copy behind its own model registry, metric registry, cache,
// and loopback listener — the same isolation as N separate -serve
// processes, without the process management.
type replicaServer struct {
	url        string
	srv        *http.Server
	ln         net.Listener
	mr         *soteria.ModelRegistry
	closeCache func()
}

// spawnReplica builds and starts one replica from the saved model
// image. Each replica carries a full model registry, so fleet-wide
// hot swaps are per-replica swaps fanned out by the front door.
func spawnReplica(model []byte, fast, noCache bool, cacheMaxBytes int64) (*replicaServer, error) {
	reg := soteria.NewRegistry()
	sys, err := soteria.Load(bytes.NewReader(model))
	if err != nil {
		return nil, fmt.Errorf("replica model: %w", err)
	}
	if fast {
		sys.SetFastScoring(true)
	}
	var cache *soteria.Cache
	closeCache := func() {}
	if !noCache {
		cache, err = soteria.OpenCache(soteria.CacheConfig{MaxBytes: cacheMaxBytes, Obs: reg})
		if err != nil {
			return nil, err
		}
		closeCache = func() {
			if cerr := cache.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "soteria: replica cache: %v\n", cerr)
			}
		}
	}
	mr := soteria.NewModelRegistry(soteria.ModelRegistryConfig{Obs: reg, Cache: cache})
	id, err := soteria.AddModel(mr, sys)
	if err == nil {
		err = mr.Activate(id)
	}
	if err != nil {
		mr.Close()
		closeCache()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mr.Close()
		closeCache()
		return nil, err
	}
	r := &replicaServer{
		url:        "http://" + ln.Addr().String(),
		srv:        newHTTPServer(serveHandler(reg, mr)),
		ln:         ln,
		mr:         mr,
		closeCache: closeCache,
	}
	go func() {
		if serr := r.srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "soteria: replica %s: %v\n", r.url, serr)
		}
	}()
	return r, nil
}

// drain stops the replica: listener first, then the model registry
// (every version's batcher serves its queued tail), then the cache
// log.
func (r *replicaServer) drain(ctx context.Context) error {
	err := r.srv.Shutdown(ctx)
	r.mr.Close()
	r.closeCache()
	return err
}

// frontdoorHandler mounts the fleet surface: /analyze routed by the
// front door, /models broadcast to every replica's model registry,
// /metrics for the fleet.* registry, /healthz for the door itself.
func frontdoorHandler(door *fleet.Frontdoor, reg *soteria.Registry, urls []string) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/analyze", door)
	admin := adminBroadcastHandler(urls)
	mux.Handle("/models", admin)
	mux.Handle("/models/", admin)
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// adminBroadcastClient carries fleet admin fan-out requests. Loading a
// model into a replica can take a while (the body is the whole saved
// model), so the timeout is generous; it exists to bound a hung
// replica, not a slow one.
var adminBroadcastClient = &http.Client{Timeout: 2 * time.Minute}

// replicaAdminResult is one replica's answer to a broadcast admin call.
type replicaAdminResult struct {
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// adminBroadcastHandler fans a /models admin request out to every
// replica's own registry and aggregates the answers keyed by replica
// URL. A fleet hot swap is therefore N independent per-replica swaps:
// each replica keeps serving through the whole sequence, so the fleet
// never loses capacity, and the front door's health/affinity state
// never notices. The response is 200 only when every replica accepted;
// one failure turns it into a 502 with the per-replica detail, and the
// operator retries (registry operations are idempotent) or rolls back.
func adminBroadcastHandler(urls []string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body []byte
		if r.Method != http.MethodGet {
			var err error
			body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxModelUpload))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		results := make(map[string]replicaAdminResult, len(urls))
		allOK := true
		for _, u := range urls {
			res := broadcastOne(r, u, body)
			if res.Error != "" || res.Status < 200 || res.Status > 299 {
				allOK = false
			}
			results[u] = res
		}
		status := http.StatusOK
		if !allOK {
			status = http.StatusBadGateway
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(results)
	})
}

// broadcastOne replays one admin request against a single replica,
// preserving method, path, and query. The caller's request context
// bounds the call, so an operator abandoning the broadcast stops the
// remaining fan-out.
func broadcastOne(r *http.Request, base string, body []byte) replicaAdminResult {
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		base+r.URL.Path+querySuffix(r), bytes.NewReader(body))
	if err != nil {
		return replicaAdminResult{Error: err.Error()}
	}
	res, err := adminBroadcastClient.Do(req)
	if err != nil {
		return replicaAdminResult{Error: err.Error()}
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return replicaAdminResult{Status: res.StatusCode, Error: err.Error()}
	}
	out := replicaAdminResult{Status: res.StatusCode}
	if json.Valid(raw) {
		out.Body = raw
	} else if len(raw) > 0 {
		// Replica error bodies are plain text; carry them in Error so
		// the aggregate stays one JSON document.
		out.Error = strings.TrimSpace(string(raw))
	}
	return out
}

func querySuffix(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

// maxModelUpload bounds a broadcast POST /models body, matching the
// registry admin API's own bound.
const maxModelUpload = 256 << 20

// serveFleetSpawn runs the scale-out tier in one process: n in-process
// replicas (each a full System copy with its own Batcher and cache) on
// loopback listeners, fronted by a fleet.Frontdoor on addr. Shutdown
// order on signal: front listener, door drain (in-flight proxied
// requests finish), prober stop, then each replica.
func serveFleetSpawn(addr string, n int, sys *soteria.System, fast, noCache bool, cacheMaxBytes int64) error {
	var model bytes.Buffer
	if err := sys.Save(&model); err != nil {
		return fmt.Errorf("snapshot model for replicas: %w", err)
	}
	replicas := make([]*replicaServer, 0, n)
	stopAll := func() {
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		for _, r := range replicas {
			if err := r.drain(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "soteria: replica %s drain: %v\n", r.url, err)
			}
		}
	}
	for i := 0; i < n; i++ {
		r, err := spawnReplica(model.Bytes(), fast, noCache, cacheMaxBytes)
		if err != nil {
			stopAll()
			return fmt.Errorf("replica %d: %w", i, err)
		}
		replicas = append(replicas, r)
	}
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.url
	}
	fmt.Fprintf(os.Stderr, "spawned %d replicas: %s\n", n, strings.Join(urls, " "))
	// The front door tears the replicas down as its last drain step; if
	// it fails before serving (bad address, bad config), do it here.
	drained := false
	err := serveFleetFront(addr, urls, func() { drained = true; stopAll() })
	if !drained {
		stopAll()
	}
	return err
}

// serveFleetFront serves a fleet front door on addr over the given
// replica base URLs. afterDrain (optional) runs last in the shutdown
// sequence, after the door has drained — the spawn path hands its
// replica teardown in through it.
func serveFleetFront(addr string, urls []string, afterDrain func()) error {
	reg := soteria.NewRegistry()
	door, err := fleet.New(fleet.Config{Backends: urls, Obs: reg})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		door.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet front door on %s over %d replicas (/analyze, /models, /metrics, /healthz)\n",
		ln.Addr(), len(urls))
	return serveGracefully(newHTTPServer(frontdoorHandler(door, reg, urls)), ln,
		func(ctx context.Context) error { return door.Shutdown(ctx) },
		func(context.Context) error {
			door.Close()
			if afterDrain != nil {
				afterDrain()
			}
			return nil
		})
}
