package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"soteria"
	"soteria/internal/fleet"
)

// shutdownGrace bounds how long a stopping server waits for in-flight
// work before giving up the drain.
const shutdownGrace = 10 * time.Second

// newHTTPServer wraps a handler with the serving tier's protective
// timeouts: ReadHeaderTimeout stops slow-loris header dribble from
// pinning goroutines, IdleTimeout reaps abandoned keep-alive
// connections. Body reads stay unbounded-in-time because /analyze
// accepts multi-megabyte uploads from slow links; MaxBytesReader
// bounds their size instead.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// serveGracefully serves srv on ln until SIGINT/SIGTERM (or a listener
// failure), then shuts down in order: stop the listener and wait for
// in-flight HTTP requests (srv.Shutdown), then run each drain hook —
// front doors drain before their replicas, batchers close after their
// servers stop feeding them. It owns the process lifecycle, so the
// root context is minted here and every drain hook receives the
// grace-bounded child.
func serveGracefully(srv *http.Server, ln net.Listener, drains ...func(context.Context) error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-queueing
	fmt.Fprintln(os.Stderr, "shutting down...")
	gctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := srv.Shutdown(gctx)
	for _, drain := range drains {
		if derr := drain(gctx); derr != nil && err == nil {
			err = derr
		}
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// serveSingle runs one-replica serve mode: the existing handler
// surface behind a hardened http.Server, with the Batcher drained
// (Close serves whatever is still queued) only after the listener has
// stopped accepting work.
func serveSingle(addr string, reg *soteria.Registry, bat *soteria.Batcher) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving on %s (/analyze, /metrics, /healthz, /debug/pprof/)\n", ln.Addr())
	return serveGracefully(newHTTPServer(serveHandler(reg, bat)), ln,
		func(context.Context) error { bat.Close(); return nil })
}

// replicaServer is one in-process serving replica: an independent
// System copy with its own registry, cache, Batcher, and loopback
// listener — the same isolation as N separate -serve processes,
// without the process management.
type replicaServer struct {
	url        string
	srv        *http.Server
	ln         net.Listener
	bat        *soteria.Batcher
	closeCache func()
}

// spawnReplica builds and starts one replica from the saved model
// image.
func spawnReplica(model []byte, fast, noCache bool, cacheMaxBytes int64) (*replicaServer, error) {
	reg := soteria.NewRegistry()
	sys, err := soteria.Load(bytes.NewReader(model))
	if err != nil {
		return nil, fmt.Errorf("replica model: %w", err)
	}
	sys.Instrument(reg)
	if fast {
		sys.SetFastScoring(true)
	}
	closeCache := func() {}
	if !noCache {
		cache, err := soteria.OpenCache(soteria.CacheConfig{MaxBytes: cacheMaxBytes, Obs: reg})
		if err != nil {
			return nil, err
		}
		if err := sys.AttachCache(cache); err != nil {
			return nil, err
		}
		closeCache = func() {
			if cerr := cache.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "soteria: replica cache: %v\n", cerr)
			}
		}
	}
	bat := sys.NewBatcher(soteria.BatcherConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		bat.Close()
		closeCache()
		return nil, err
	}
	r := &replicaServer{
		url:        "http://" + ln.Addr().String(),
		srv:        newHTTPServer(serveHandler(reg, bat)),
		ln:         ln,
		bat:        bat,
		closeCache: closeCache,
	}
	go func() {
		if serr := r.srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "soteria: replica %s: %v\n", r.url, serr)
		}
	}()
	return r, nil
}

// drain stops the replica: listener first, then the Batcher (serving
// its queued tail), then the cache log.
func (r *replicaServer) drain(ctx context.Context) error {
	err := r.srv.Shutdown(ctx)
	r.bat.Close()
	r.closeCache()
	return err
}

// frontdoorHandler mounts the fleet surface: /analyze routed by the
// front door, /metrics for the fleet.* registry, /healthz for the door
// itself.
func frontdoorHandler(door *fleet.Frontdoor, reg *soteria.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/analyze", door)
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// serveFleetSpawn runs the scale-out tier in one process: n in-process
// replicas (each a full System copy with its own Batcher and cache) on
// loopback listeners, fronted by a fleet.Frontdoor on addr. Shutdown
// order on signal: front listener, door drain (in-flight proxied
// requests finish), prober stop, then each replica.
func serveFleetSpawn(addr string, n int, sys *soteria.System, fast, noCache bool, cacheMaxBytes int64) error {
	var model bytes.Buffer
	if err := sys.Save(&model); err != nil {
		return fmt.Errorf("snapshot model for replicas: %w", err)
	}
	replicas := make([]*replicaServer, 0, n)
	stopAll := func() {
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		for _, r := range replicas {
			if err := r.drain(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "soteria: replica %s drain: %v\n", r.url, err)
			}
		}
	}
	for i := 0; i < n; i++ {
		r, err := spawnReplica(model.Bytes(), fast, noCache, cacheMaxBytes)
		if err != nil {
			stopAll()
			return fmt.Errorf("replica %d: %w", i, err)
		}
		replicas = append(replicas, r)
	}
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.url
	}
	fmt.Fprintf(os.Stderr, "spawned %d replicas: %s\n", n, strings.Join(urls, " "))
	// The front door tears the replicas down as its last drain step; if
	// it fails before serving (bad address, bad config), do it here.
	drained := false
	err := serveFleetFront(addr, urls, func() { drained = true; stopAll() })
	if !drained {
		stopAll()
	}
	return err
}

// serveFleetFront serves a fleet front door on addr over the given
// replica base URLs. afterDrain (optional) runs last in the shutdown
// sequence, after the door has drained — the spawn path hands its
// replica teardown in through it.
func serveFleetFront(addr string, urls []string, afterDrain func()) error {
	reg := soteria.NewRegistry()
	door, err := fleet.New(fleet.Config{Backends: urls, Obs: reg})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		door.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet front door on %s over %d replicas (/analyze, /metrics, /healthz)\n",
		ln.Addr(), len(urls))
	return serveGracefully(newHTTPServer(frontdoorHandler(door, reg)), ln,
		func(ctx context.Context) error { return door.Shutdown(ctx) },
		func(context.Context) error {
			door.Close()
			if afterDrain != nil {
				afterDrain()
			}
			return nil
		})
}
