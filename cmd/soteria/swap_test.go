package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"soteria"
)

// TestServeHotSwap is the zero-downtime cutover pin, end to end over
// the HTTP surface: live /analyze traffic runs without interruption
// while a second model is POSTed to /models, shadow-scored against the
// active version (shadow metrics must reach /metrics before cutover),
// and then activated. Every response during the entire sequence must
// be 200 with a decision bit-identical to one of the two versions'
// direct Analyze output, and after the swap new requests must come
// from the new version.
func TestServeHotSwap(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	sys1, corpus := trainTinySystem(t, 21)
	sys2, _ := trainTinySystem(t, 22)

	reg := soteria.NewRegistry()
	mr := soteria.NewModelRegistry(soteria.ModelRegistryConfig{Obs: reg})
	defer mr.Close()
	id1, err := soteria.AddModel(mr, sys1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Activate(id1); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serveHandler(reg, mr))
	defer srv.Close()

	// Per-version ground truth over the traffic set, as the JSON the
	// server would encode.
	const nSamples = 6
	raws := make([][]byte, nSamples)
	want1 := make([]analyzeResponse, nSamples)
	want2 := make([]analyzeResponse, nSamples)
	for i := 0; i < nSamples; i++ {
		raw, err := corpus[i].Binary.Encode()
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
		d1, err := sys1.Analyze(corpus[i].CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		d2, err := sys2.Analyze(corpus[i].CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		want1[i] = analyzeResponse{Adversarial: d1.Adversarial, RE: d1.RE, Class: d1.Class.String()}
		want2[i] = analyzeResponse{Adversarial: d2.Adversarial, RE: d2.RE, Class: d2.Class.String()}
	}

	analyzeOnce := func(i int) (analyzeResponse, error) {
		res, err := http.Post(fmt.Sprintf("%s/analyze?salt=%d", srv.URL, i),
			"application/octet-stream", bytes.NewReader(raws[i]))
		if err != nil {
			return analyzeResponse{}, err
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			return analyzeResponse{}, fmt.Errorf("/analyze status %d", res.StatusCode)
		}
		var got analyzeResponse
		if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
			return analyzeResponse{}, err
		}
		return got, nil
	}

	// Open-loop background traffic for the whole swap sequence.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := i % nSamples
				got, err := analyzeOnce(n)
				if err != nil {
					errc <- fmt.Errorf("request during swap failed: %w", err)
					return
				}
				if got != want1[n] && got != want2[n] {
					errc <- fmt.Errorf("sample %d: decision %+v matches neither version (%+v / %+v)",
						n, got, want1[n], want2[n])
					return
				}
			}
		}(w)
	}
	defer func() {
		close(stop)
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Error(err)
		}
	}()

	// Load the candidate over the admin API.
	var model2 bytes.Buffer
	if err := sys2.Save(&model2); err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(srv.URL+"/models", "application/json", bytes.NewReader(model2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var loaded map[string]string
	if err := json.NewDecoder(res.Body).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("POST /models status %d", res.StatusCode)
	}
	id2 := loaded["id"]
	if id2 == "" || id2 == id1 {
		t.Fatalf("candidate id %q (active %q)", id2, id1)
	}

	// Shadow every request; shadow metrics must populate in /metrics
	// before we cut over.
	res, err = http.Post(srv.URL+"/models/"+id2+"/shadow?every=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST shadow status %d", res.StatusCode)
	}
	metrics := func() map[string]json.RawMessage {
		t.Helper()
		res, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]json.RawMessage
		if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		bodyClose(t, res)
		return snap
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		snap := metrics()
		var compared uint64
		if raw, ok := snap["registry.shadow_compared"]; ok {
			if err := json.Unmarshal(raw, &compared); err != nil {
				t.Fatal(err)
			}
		}
		if compared > 0 {
			for _, name := range []string{"registry.shadow_agreement", "registry.shadow_drift_sigma"} {
				if _, ok := snap[name]; !ok {
					t.Fatalf("/metrics missing %q with shadow traffic flowing", name)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shadow metrics never populated in /metrics")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Cut over mid-traffic.
	res, err = http.Post(srv.URL+"/models/"+id2+"/activate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	bodyClose(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST activate status %d", res.StatusCode)
	}

	snap := metrics()
	var active string
	if err := json.Unmarshal(snap["registry.active_version"], &active); err != nil {
		t.Fatal(err)
	}
	if active != id2 {
		t.Fatalf("registry.active_version = %q after cutover, want %q", active, id2)
	}
	var swaps uint64
	if err := json.Unmarshal(snap["registry.swaps"], &swaps); err != nil {
		t.Fatal(err)
	}
	if swaps < 1 {
		t.Fatalf("registry.swaps = %d after cutover, want >= 1", swaps)
	}

	// New requests are served entirely by the new version.
	got, err := analyzeOnce(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want2[0] {
		t.Fatalf("post-cutover decision %+v, want new version's %+v", got, want2[0])
	}
}
