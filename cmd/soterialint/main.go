// Command soterialint runs the repository's invariant analyzers
// (internal/lint) over module packages: determinism of model-affecting
// code, internal/par pool discipline, checked errors on persistence
// paths, gram-key construction kept behind the ngram API,
// relaxed-precision fast mode contained to serving paths, sync-value
// copy safety, and context propagation through the serving tier. It is
// part of the full verify pipeline (see ROADMAP.md) and backs
// lint_repo_test.go, which fails `go test ./...` on any new violation.
//
// Usage:
//
//	soterialint [-json] [-tests=true] [-analyzers a,b] [-facts]
//	            [-no-cache] [-cache dir] [pattern ...]
//
// Patterns are module-relative directories (./internal/core), trees
// (./internal/...), or the whole module (./..., the default). Exit
// status: 0 clean, 1 findings, 2 load or usage errors.
//
// Analysis is interprocedural: a whole-repo call graph with
// per-function summaries lets the analyzers follow wall-clock reads,
// fast-mode toggles, discarded persistence errors, and dropped
// contexts through wrapper functions. Results are memoized in an
// on-disk fact cache (default <root>/.soterialint.cache) keyed by the
// content hash of every analyzed directory, so an unchanged tree
// re-lints without re-parsing anything; -no-cache bypasses it, -cache
// relocates it, and -facts dumps the computed function summaries
// instead of findings.
//
// Intentional exceptions are suppressed in place with
// `//lint:ignore <analyzer> <reason>` on the offending line or the
// line above it; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"soteria/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonSchemaVersion identifies the -json document shape; it bumps on
// any field or ordering change so downstream consumers can pin it.
const jsonSchemaVersion = 2

// jsonDiag is one finding in -json output, with the file path relative
// to the module root.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document, shaped like cmd/benchreport's
// output: a self-describing object a CI step can consume directly.
// Diagnostics are sorted by (file, line, col, analyzer), so the same
// tree always serializes to the same bytes.
type jsonReport struct {
	SchemaVersion int        `json:"schemaVersion"`
	Module        string     `json:"module"`
	Count         int        `json:"count"`
	Diagnostics   []jsonDiag `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soterialint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON report")
		tests     = fs.Bool("tests", true, "analyze _test.go files too")
		list      = fs.Bool("list", false, "list analyzers and exit")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		rootFlag  = fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
		modFlag   = fs.String("module", "", "module path (default: read from go.mod)")
		facts     = fs.Bool("facts", false, "dump per-function summaries instead of findings")
		noCache   = fs.Bool("no-cache", false, "skip the fact cache entirely (no read, no write)")
		cacheDir  = fs.String("cache", "", "fact cache directory (default: <root>/.soterialint.cache)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := lint.All()
	if *analyzers != "" {
		var err error
		if suite, err = lint.ByName(*analyzers); err != nil {
			fmt.Fprintln(stderr, "soterialint:", err)
			return 2
		}
	}

	root, module := *rootFlag, *modFlag
	if root == "" || module == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "soterialint:", err)
			return 2
		}
		foundRoot, foundMod, err := lint.FindModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "soterialint:", err)
			return 2
		}
		if root == "" {
			root = foundRoot
		}
		if module == "" {
			module = foundMod
		}
	}
	cache := *cacheDir
	if cache == "" {
		cache = filepath.Join(root, ".soterialint.cache")
	}

	res, err := lint.Run(lint.RunOptions{
		Root:      root,
		Module:    module,
		Tests:     *tests,
		Patterns:  fs.Args(),
		Analyzers: suite,
		CacheDir:  cache,
		NoCache:   *noCache,
		WantFacts: *facts,
	})
	if err != nil {
		fmt.Fprintln(stderr, "soterialint:", err)
		return 2
	}
	if len(res.Broken) > 0 {
		// Findings over a package that does not type-check are
		// unreliable; refuse rather than under-report.
		for _, b := range res.Broken {
			fmt.Fprintf(stderr, "soterialint: %s: %v\n", b.Path, b.Err)
		}
		return 2
	}
	if *facts {
		for _, id := range res.Facts.FuncIDs() {
			fmt.Fprintf(stdout, "%s: %s\n", id, res.Facts.TaintedBy(id))
		}
		return 0
	}

	rel := func(file string) string {
		if r, err := filepath.Rel(root, file); err == nil {
			return filepath.ToSlash(r)
		}
		return file
	}
	if *jsonOut {
		rep := jsonReport{SchemaVersion: jsonSchemaVersion, Module: module, Count: len(res.Diags), Diagnostics: []jsonDiag{}}
		for _, d := range res.Diags {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "soterialint: write:", err)
			return 2
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}
