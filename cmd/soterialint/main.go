// Command soterialint runs the repository's invariant analyzers
// (internal/lint) over module packages: determinism of model-affecting
// code, internal/par pool discipline, checked errors on persistence
// paths, gram-key construction kept behind the ngram API, and
// relaxed-precision fast mode contained to serving paths. It is
// part of the full verify pipeline (see ROADMAP.md) and backs
// lint_repo_test.go, which fails `go test ./...` on any new violation.
//
// Usage:
//
//	soterialint [-json] [-tests=true] [-analyzers a,b] [pattern ...]
//
// Patterns are module-relative directories (./internal/core), trees
// (./internal/...), or the whole module (./..., the default). Exit
// status: 0 clean, 1 findings, 2 load or usage errors.
//
// Intentional exceptions are suppressed in place with
// `//lint:ignore <analyzer> <reason>` on the offending line or the
// line above it; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"soteria/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is one finding in -json output, with the file path relative
// to the module root.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document, shaped like cmd/benchreport's
// output: a self-describing object a CI step can consume directly.
type jsonReport struct {
	Module      string     `json:"module"`
	Count       int        `json:"count"`
	Diagnostics []jsonDiag `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soterialint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON report")
		tests     = fs.Bool("tests", true, "analyze _test.go files too")
		list      = fs.Bool("list", false, "list analyzers and exit")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		rootFlag  = fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
		modFlag   = fs.String("module", "", "module path (default: read from go.mod)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := lint.All()
	if *analyzers != "" {
		var err error
		if suite, err = lint.ByName(*analyzers); err != nil {
			fmt.Fprintln(stderr, "soterialint:", err)
			return 2
		}
	}

	root, module := *rootFlag, *modFlag
	if root == "" || module == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "soterialint:", err)
			return 2
		}
		foundRoot, foundMod, err := lint.FindModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "soterialint:", err)
			return 2
		}
		if root == "" {
			root = foundRoot
		}
		if module == "" {
			module = foundMod
		}
	}

	loader := lint.NewLoader(root, module, *tests)
	pkgs, err := loader.LoadPatterns(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "soterialint:", err)
		return 2
	}

	broken := false
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			// Findings over a package that does not type-check are
			// unreliable; refuse rather than under-report.
			broken = true
			for _, e := range pkg.Errors {
				fmt.Fprintf(stderr, "soterialint: %s: %v\n", pkg.Path, e)
			}
			continue
		}
		diags = append(diags, lint.RunPackage(pkg, suite)...)
	}
	if broken {
		return 2
	}

	rel := func(file string) string {
		if r, err := filepath.Rel(root, file); err == nil {
			return filepath.ToSlash(r)
		}
		return file
	}
	if *jsonOut {
		rep := jsonReport{Module: module, Count: len(diags), Diagnostics: []jsonDiag{}}
		for _, d := range diags {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "soterialint: write:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
