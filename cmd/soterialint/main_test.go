package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soteria/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func repoRoot(t *testing.T) string {
	t.Helper()
	root, module, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "soteria" {
		t.Fatalf("unexpected module %q", module)
	}
	return root
}

// The committed tree must be clean: text mode, one package pattern.
func TestRunCleanPackage(t *testing.T) {
	root := repoRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "-module", "soteria", "./internal/evalx"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	for _, name := range []string{"determinism", "parmisuse", "persisterr", "packedkey"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// -json over a module seeded with a violation: exit 1 and a parseable
// report naming the finding.
func TestRunJSONOnSeededViolation(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "features")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package features

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-root", root, "-module", "soteria", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	var rep struct {
		Module      string `json:"module"`
		Count       int    `json:"count"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if rep.Module != "soteria" || rep.Count != 1 || len(rep.Diagnostics) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	d := rep.Diagnostics[0]
	if d.File != "internal/features/bad.go" || d.Analyzer != "determinism" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}

// goldenModule seeds a fixed multi-package module whose findings span
// several analyzers and files, exercising the report's sort order.
func goldenModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("internal/core/save.go", `package core

import (
	"os"
	"time"
)

func save(path string, data []byte) {
	_ = time.Now()
	f, _ := os.Create(path)
	f.Write(data)
	f.Close()
}
`)
	write("internal/features/feat.go", `package features

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	return root
}

// The -json report must be byte-stable: same tree, same bytes, across
// runs and cache states, pinned by a golden file. Regenerate with
// `go test ./cmd/soterialint -run TestRunJSONGolden -update`.
func TestRunJSONGolden(t *testing.T) {
	root := goldenModule(t)
	jsonRun := func(extra ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		args := append([]string{"-json", "-root", root, "-module", "soteria"}, extra...)
		args = append(args, "./...")
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
		}
		return stdout.String()
	}
	cacheDir := filepath.Join(root, ".cache")
	first := jsonRun("-cache", cacheDir)  // cold: full analysis
	second := jsonRun("-cache", cacheDir) // warm: replayed from cache
	third := jsonRun("-no-cache")         // bypassed: full analysis again
	if first != second {
		t.Errorf("cold and warm-cache reports differ:\ncold:\n%s\nwarm:\n%s", first, second)
	}
	if first != third {
		t.Errorf("cached and uncached reports differ:\ncached:\n%s\nuncached:\n%s", first, third)
	}

	golden := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if first != string(want) {
		t.Errorf("report drifted from golden file:\ngot:\n%s\nwant:\n%s", first, want)
	}
}

// -facts dumps sorted per-function summaries instead of findings.
func TestRunFactsDump(t *testing.T) {
	root := goldenModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-facts", "-root", root, "-module", "soteria", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "soteria/internal/features.stamp: reads-clock") {
		t.Errorf("-facts output missing stamp's clock fact:\n%s", out)
	}
	if !strings.Contains(out, "soteria/internal/core.save:") {
		t.Errorf("-facts output missing save's summary:\n%s", out)
	}
}

// A module that does not type-check must refuse with exit 2, not
// under-report with exit 0.
func TestRunBrokenPackage(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package pkg\n\nfunc f() { undefined() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-module", "soteria", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr:\n%s", code, stderr.String())
	}
}
