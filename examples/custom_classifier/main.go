// Custom classifier: the paper notes Soteria's detector and classifier
// operate independently — a user can keep the AE detector and swap in
// any classifier. This example reuses the detector's feature space but
// classifies with the graph-theoretic baseline instead of the CNN
// ensemble, and contrasts both under GEA.
package main

import (
	"fmt"
	"log"

	"soteria"
	"soteria/internal/baselines"
	"soteria/internal/gea"
	"soteria/internal/nn"
)

func main() {
	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 21})
	corpus, err := gen.Corpus(map[soteria.Class]int{
		soteria.Benign:  30,
		soteria.Gafgyt:  50,
		soteria.Mirai:   25,
		soteria.Tsunami: 15,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Soteria's own pipeline (detector + CNN ensemble).
	opts := soteria.DefaultOptions()
	opts.DetectorEpochs = 35
	opts.ClassifierEpochs = 35
	sys, err := soteria.Train(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The replacement classifier: graph-theoretic features + dense net.
	rows := make([][]float64, len(corpus))
	labels := make([]int, len(corpus))
	for i, s := range corpus {
		rows[i] = baselines.GraphFeatures(s.CFG)
		labels[i] = int(s.Class)
	}
	gc, err := baselines.TrainGraph(nn.FromRows(rows), labels, baselines.GraphConfig{
		Classes: soteria.NumClasses, Epochs: 120, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Compare on fresh clean samples and on GEA AEs that slip past the
	// detector, showing why the detector must sit in front of ANY
	// classifier.
	donor, err := gen.SampleSized(soteria.Benign, 45)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %-12s %-14s %s\n", "sample", "detector", "Soteria CNN", "custom graph clf")
	for i := 0; i < 8; i++ {
		victim, err := gen.SampleSized(soteria.Mirai, 40+i)
		if err != nil {
			log.Fatal(err)
		}
		// Clean.
		dec, err := sys.Analyze(victim.CFG, int64(i))
		if err != nil {
			log.Fatal(err)
		}
		custom := soteria.Class(gc.PredictOne(baselines.GraphFeatures(victim.CFG)))
		fmt.Printf("%-22s %-12s %-14s %s\n", victim.ID+" (clean)", verdict(dec.Adversarial), dec.Class, custom)

		// GEA AE from the same victim.
		_, aeCFG, err := gea.MergeToCFG(victim.Program, donor.Program)
		if err != nil {
			log.Fatal(err)
		}
		aeDec, err := sys.Analyze(aeCFG, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		aeCustom := soteria.Class(gc.PredictOne(baselines.GraphFeatures(aeCFG)))
		fmt.Printf("%-22s %-12s %-14s %s\n", victim.ID+" (GEA AE)", verdict(aeDec.Adversarial), aeDec.Class, aeCustom)
	}
	fmt.Println("\nAEs flagged by the detector never reach either classifier in deployment.")
}

func verdict(adv bool) string {
	if adv {
		return "ADVERSARIAL"
	}
	return "clean"
}
