// Dynamic vs static: each analysis has a blind spot. A GEA graft never
// executes, so behavioural (sandbox) analysis cannot see it — but it
// rewrites the CFG, so Soteria's static features flag it. Conversely,
// appended bytes never enter the CFG, but they change the raw binary
// that byte-level analyses consume. This example demonstrates both
// blind spots on live binaries and times the two extraction paths.
package main

import (
	"fmt"
	"log"
	"time"

	"soteria"
	"soteria/internal/dynamic"
	"soteria/internal/gea"
)

func main() {
	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 17})
	victim, err := gen.SampleSized(soteria.Mirai, 48)
	if err != nil {
		log.Fatal(err)
	}
	donor, err := gen.SampleSized(soteria.Benign, 60)
	if err != nil {
		log.Fatal(err)
	}

	// The GEA adversarial example.
	aeBin, aeCFG, err := soteria.GEAMerge(victim.Program, donor.Program)
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic view: traces are identical — the graft is dead code.
	origTrace, err := dynamic.Trace(victim.Binary, 0)
	if err != nil {
		log.Fatal(err)
	}
	aeTrace, err := dynamic.Trace(aeBin, 0)
	if err != nil {
		log.Fatal(err)
	}
	same := len(origTrace) == len(aeTrace)
	for i := 0; same && i < len(origTrace); i++ {
		same = origTrace[i] == aeTrace[i]
	}
	fmt.Printf("dynamic view:  victim trace %d syscalls, AE trace %d syscalls, identical=%v\n",
		len(origTrace), len(aeTrace), same)

	// Static view: the CFG doubled.
	fmt.Printf("static view:   victim CFG %d nodes, AE CFG %d nodes\n",
		victim.Nodes(), aeCFG.NumNodes())

	// And the impractical AE flips the blind spots: appended bytes are
	// invisible statically but change the raw binary.
	byteAE := gea.AppendBytesAE(victim.Binary, donor.Binary)
	byteCFG, err := soteria.Disassemble(byteAE)
	if err != nil {
		log.Fatal(err)
	}
	origRaw, _ := victim.Binary.Encode()
	aeRaw, _ := byteAE.Encode()
	fmt.Printf("byte append:   CFG unchanged (%d nodes) while binary grew %d -> %d bytes\n\n",
		byteCFG.NumNodes(), len(origRaw), len(aeRaw))

	// Extraction timings on the toy substrate. Note the caveat: SOT-32
	// programs halt in microseconds, so the sandbox looks cheap here; a
	// real dynamic sandbox runs each sample for seconds to minutes
	// (network timeouts, anti-analysis stalling), which is the
	// scalability weakness the paper cites. The structural blind spots
	// above are the substrate-independent lesson.
	const reps = 200
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := dynamic.Trace(victim.Binary, 0); err != nil {
			log.Fatal(err)
		}
	}
	dynCost := time.Since(start) / reps
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := soteria.Disassemble(victim.Binary); err != nil {
			log.Fatal(err)
		}
	}
	statCost := time.Since(start) / reps
	fmt.Printf("toy-substrate extraction cost: dynamic %v, static %v\n", dynCost, statCost)
	fmt.Println("(real sandboxes run samples for seconds-to-minutes; SOT-32 programs halt instantly)")
}
