// GEA attack walkthrough: shows why code-level grafting is a practical
// adversarial example while byte appending is not, reproducing the
// paper's section II taxonomy on live binaries.
//
// The example crafts both AE kinds from the same victim, verifies with
// the bundled VM that the GEA AE still runs the victim's exact
// behaviour, and shows what each manipulation does to the CFG and to a
// byte-level (image) view.
package main

import (
	"fmt"
	"log"
	"reflect"

	"soteria"
	"soteria/internal/baselines"
	"soteria/internal/gea"
	"soteria/internal/isa"
)

func main() {
	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 7})
	victim, err := gen.SampleSized(soteria.Gafgyt, 64)
	if err != nil {
		log.Fatal(err)
	}
	donor, err := gen.SampleSized(soteria.Benign, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim: %s, %d CFG nodes\n", victim.ID, victim.Nodes())
	fmt.Printf("donor:  %s, %d CFG nodes\n\n", donor.ID, donor.Nodes())

	// --- Code-level (practical): GEA merge. -------------------------
	aeBin, aeCFG, err := soteria.GEAMerge(victim.Program, donor.Program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GEA merge: CFG %d -> %d nodes (features change)\n",
		victim.Nodes(), aeCFG.NumNodes())

	// Practicality check: the AE must execute the victim's behaviour.
	vmV := isa.NewVM(victim.Binary)
	if err := vmV.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	vmA := isa.NewVM(aeBin)
	if err := vmA.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("behaviour preserved: %v (%d syscalls each)\n\n",
		reflect.DeepEqual(vmV.Syscalls, vmA.Syscalls), len(vmV.Syscalls))

	// --- Binary-level (impractical for CFG classifiers). ------------
	byteAE := gea.AppendBytesAE(victim.Binary, donor.Binary)
	byteCFG, err := soteria.Disassemble(byteAE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("byte append: CFG %d -> %d nodes (CFG features unchanged)\n",
		victim.Nodes(), byteCFG.NumNodes())

	// But a byte-level classifier sees a different sample.
	imgBefore, err := baselines.BinaryImage(victim.Binary, 24)
	if err != nil {
		log.Fatal(err)
	}
	imgAfter, err := baselines.BinaryImage(byteAE, 24)
	if err != nil {
		log.Fatal(err)
	}
	diff := 0.0
	for i := range imgBefore {
		if d := imgBefore[i] - imgAfter[i]; d > 0 {
			diff += d
		} else {
			diff -= d
		}
	}
	fmt.Printf("grayscale image L1 change from byte append: %.3f "+
		"(image-based classifiers are affected, CFG-based are not)\n", diff)
}
