// Quickstart: generate a corpus, train Soteria, and analyze clean and
// adversarial samples through the public API.
package main

import (
	"fmt"
	"log"

	"soteria"
)

func main() {
	// 1. A synthetic IoT corpus (the dataset substitute; see DESIGN.md).
	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 1})
	corpus, err := gen.Corpus(map[soteria.Class]int{
		soteria.Benign:  30,
		soteria.Gafgyt:  50,
		soteria.Mirai:   25,
		soteria.Tsunami: 15,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the detector + classifier on clean samples only.
	opts := soteria.DefaultOptions()
	opts.DetectorEpochs = 30
	opts.ClassifierEpochs = 30
	sys, err := soteria.Train(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Analyze a clean Mirai sample.
	victim, err := gen.SampleSized(soteria.Mirai, 48)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := sys.Analyze(victim.CFG, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean sample:  adversarial=%v  RE=%.6f  class=%s\n",
		dec.Adversarial, dec.RE, dec.Class)

	// 4. Craft a GEA adversarial example (graft a benign program into
	// the Mirai sample) and analyze it.
	donor, err := gen.SampleSized(soteria.Benign, 50)
	if err != nil {
		log.Fatal(err)
	}
	_, aeCFG, err := soteria.GEAMerge(victim.Program, donor.Program)
	if err != nil {
		log.Fatal(err)
	}
	dec2, err := sys.Analyze(aeCFG, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GEA AE:        adversarial=%v  RE=%.6f  (threshold %.6f)\n",
		dec2.Adversarial, dec2.RE, sys.Pipeline().Detector.Threshold())
}
