// Threshold sweep: reproduces the paper's Fig. 13 analysis on a small
// corpus — how the detector's alpha multiplier trades clean false
// positives against missed adversarial examples — and prints the curve
// plus the crossover.
package main

import (
	"fmt"
	"log"

	"soteria"
	"soteria/internal/evalx"
	"soteria/internal/gea"
)

func main() {
	gen := soteria.NewGenerator(soteria.GeneratorConfig{Seed: 11})
	corpus, err := gen.Corpus(map[soteria.Class]int{
		soteria.Benign:  30,
		soteria.Gafgyt:  50,
		soteria.Mirai:   25,
		soteria.Tsunami: 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := soteria.DefaultOptions()
	opts.DetectorEpochs = 40
	opts.ClassifierEpochs = 15 // the classifier is not exercised here
	sys, err := soteria.Train(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}
	det := sys.Pipeline().Detector
	ext := sys.Pipeline().Extractor

	// Fresh clean samples and GEA AEs.
	var cleanRE, advRE []float64
	donor, err := gen.SampleSized(soteria.Benign, 40)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		c := soteria.Classes[i%len(soteria.Classes)]
		s, err := gen.Sample(c)
		if err != nil {
			log.Fatal(err)
		}
		v, err := ext.Extract(s.CFG, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		cleanRE = append(cleanRE, det.ReconstructionError(v.Combined))

		if c == soteria.Benign {
			continue
		}
		_, aeCFG, err := gea.MergeToCFG(s.Program, donor.Program)
		if err != nil {
			log.Fatal(err)
		}
		av, err := ext.Extract(aeCFG, int64(500+i))
		if err != nil {
			log.Fatal(err)
		}
		advRE = append(advRE, det.ReconstructionError(av.Combined))
	}

	curve := evalx.DetectionErrorCurve(0, 2, 11, func(alpha float64) ([]bool, []bool) {
		th := det.ThresholdAt(alpha)
		cf := make([]bool, len(cleanRE))
		for i, v := range cleanRE {
			cf[i] = v > th
		}
		af := make([]bool, len(advRE))
		for i, v := range advRE {
			af[i] = v > th
		}
		return cf, af
	})

	fmt.Printf("%6s %13s %13s\n", "alpha", "clean error", "missed AEs")
	for _, pt := range curve {
		fmt.Printf("%6.2f %12.1f%% %12.1f%%\n", pt.Alpha, 100*pt.CleanError, 100*pt.AdvError)
	}
	fmt.Printf("\nSoteria picks alpha=1 (mu+sigma) without ever seeing AEs: T=%.6f\n",
		det.ThresholdAt(1))
}
