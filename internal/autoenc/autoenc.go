// Package autoenc implements Soteria's adversarial-example detector
// (paper section III-B.3): a five-layer fully connected autoencoder
// trained exclusively on clean samples to reconstruct the combined
// DBL+LBL feature vector. At inference, the root-mean-square
// reconstruction error (RE) of a sample is compared against a threshold
// derived from the training distribution, T = mu(RE) + alpha*sigma(RE);
// samples above the threshold are flagged adversarial.
//
// The paper's layer widths are 1000 -> 2000 -> 3000 -> 2000 -> 1000,
// i.e. hidden widths of 2x, 3x and 2x the input dimension; Config keeps
// that ratio for any input size so CI-scale feature dimensions train in
// seconds while paper-scale dimensions remain available.
package autoenc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"soteria/internal/nn"
	"soteria/internal/obs"
)

// Config parameterizes the detector.
type Config struct {
	// InputDim is the combined feature dimension (paper: 1000).
	InputDim int `json:"inputDim"`
	// Hidden are the encoder/decoder widths (paper: 2000, 3000, 2000).
	// Empty means 2x/3x/2x of InputDim.
	Hidden []int `json:"hidden"`
	// Alpha is the threshold multiplier in T = mu + alpha*sigma
	// (paper: 1.0, chosen without access to the test set).
	Alpha float64 `json:"alpha"`
	// Epochs and BatchSize follow the paper (100, 128) by default.
	Epochs    int `json:"epochs"`
	BatchSize int `json:"batchSize"`
	// LR is the Adam learning rate.
	LR float64 `json:"lr"`
	// ValFraction is the share of the clean training set held out for
	// the validation unit that calibrates mu and sigma. Calibrating on
	// unseen clean data keeps the threshold honest when the autoencoder
	// memorizes its training rows. Default 0.15.
	ValFraction float64 `json:"valFraction"`
	// NoiseStd adds Gaussian input noise during training (denoising
	// autoencoder): each training row also appears as Augment noisy
	// replicas whose reconstruction target is the clean row. The noise
	// scale is relative — each feature's noise is NoiseStd times that
	// feature's standard deviation over the training set — so it adapts
	// to the feature magnitude. This keeps held-out clean samples
	// reconstructible when the training corpus is small. Default 0.25;
	// set negative to disable.
	NoiseStd float64 `json:"noiseStd"`
	// Augment is the number of noisy replicas per row (default 3).
	Augment int `json:"augment"`
	// NoStandardize disables the z-score feature standardization in
	// front of the autoencoder (enabled by default).
	NoStandardize bool `json:"noStandardize"`
	// Seed makes weight init and batching deterministic.
	Seed int64 `json:"seed"`
	// Hooks observes per-epoch training loss and wall time (nil = off).
	// Write-only: fitted weights are bit-identical with hooks on or off.
	Hooks *obs.TrainHooks `json:"-"`
}

// DefaultConfig returns the paper's training parameters for the given
// input dimension.
func DefaultConfig(inputDim int) Config {
	return Config{
		InputDim:  inputDim,
		Alpha:     1.0,
		Epochs:    100,
		BatchSize: 128,
		LR:        1e-3,
		Seed:      1,
	}
}

func (c *Config) fill() error {
	if c.InputDim <= 0 {
		return fmt.Errorf("autoenc: invalid input dim %d", c.InputDim)
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{2 * c.InputDim, 3 * c.InputDim, 2 * c.InputDim}
	}
	if c.Alpha == 0 {
		c.Alpha = 1.0
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.ValFraction <= 0 || c.ValFraction >= 0.9 {
		c.ValFraction = 0.15
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.25
	}
	if c.NoiseStd < 0 {
		c.NoiseStd = 0
	}
	if c.Augment <= 0 {
		c.Augment = 3
	}
	return nil
}

// Detector is a trained adversarial-example detector.
type Detector struct {
	cfg       Config
	net       *nn.Network
	mu, sigma float64
	// Feature standardization (z-score) fitted on the training set.
	// Standardizing before the autoencoder equalizes feature scales —
	// raw TF-IDF values are tiny and sparse — and turns the depressed
	// in-vocabulary mass of a GEA sample into large negative z-scores
	// across many features, which reconstruct poorly.
	featMean, featStd []float64

	// scratch recycles per-call scoring buffers; each concurrent scorer
	// borrows its own set, so scoring a shared detector is race-free
	// and, at steady state, allocation-free.
	scratch sync.Pool

	// met holds the detector's drift metrics; all fields are nil until
	// Instrument, so an uninstrumented detector pays one pointer check
	// per scored sample.
	met detObs
}

// detObs tracks the deployed RE distribution against the trained
// calibration: a histogram of sample-level detection statistics, their
// exponentially weighted rolling mean, and that mean's distance from
// the trained mu in units of sigma — the drift signal an operator
// watches to notice the clean-traffic distribution sliding toward (or
// away from) the fixed threshold.
type detObs struct {
	re     *obs.Histogram
	reMean *obs.EWMA
	drift  *obs.Gauge
}

// reDecay is the rolling-mean decay: each sample moves the mean 1% of
// the way to its RE, i.e. a ~100-sample memory — long enough to smooth
// walk noise, short enough to show drift within one dashboard refresh.
const reDecay = 0.01

// Instrument registers the detector's drift metrics ("detector.re",
// "detector.re_mean", "detector.re_drift_sigma") in r and starts
// observing every sample-level detection statistic. A nil registry is
// a no-op. Call before serving; observations are write-only and never
// affect scores or the threshold.
func (d *Detector) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	// Bucket the RE axis around the calibration: 32 linear buckets
	// spanning [0, mu+8*sigma] put the threshold (mu + alpha*sigma)
	// well inside the resolved range, with drift past it landing in the
	// upper buckets and overflow.
	hi := d.mu + 8*d.sigma
	if hi <= 0 {
		hi = 1
	}
	d.met = detObs{
		re:     r.Histogram("detector.re", obs.LinearBuckets(hi/32, hi/32, 32)),
		reMean: r.EWMA("detector.re_mean", reDecay),
		drift:  r.Gauge("detector.re_drift_sigma"),
	}
}

// observeRE folds one sample-level detection statistic into the drift
// metrics. One pointer check when uninstrumented; allocation-free and
// race-safe when instrumented.
func (d *Detector) observeRE(re float64) {
	if d.met.re == nil {
		return
	}
	d.met.re.Observe(re)
	d.met.reMean.Observe(re)
	if d.sigma > 0 {
		d.met.drift.Set((d.met.reMean.Value() - d.mu) / d.sigma)
	} else {
		d.met.drift.Set(d.met.reMean.Value() - d.mu)
	}
}

// observeREs is observeRE over a batch of statistics.
func (d *Detector) observeREs(res []float64) {
	if d.met.re == nil {
		return
	}
	for _, re := range res {
		d.observeRE(re)
	}
}

// scoreScratch is one scorer's working set: the standardized input,
// the per-row error vector, and the per-group row counts of the
// batched sample statistic. (The reconstruction itself needs no
// buffer — it is read straight from the network's inference arena.)
type scoreScratch struct {
	z      *nn.Matrix
	res    []float64
	counts []int
}

func (d *Detector) getScratch() *scoreScratch {
	if s, ok := d.scratch.Get().(*scoreScratch); ok {
		return s
	}
	return new(scoreScratch)
}

// ensureF64 resizes a float64 slice, reusing capacity. Contents are
// unspecified.
func ensureF64(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// ensureInts resizes an int slice, reusing capacity. Contents are
// unspecified.
func ensureInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

// ensureMat resizes *m to rows x cols, reusing the backing storage
// when possible. Contents are unspecified.
func ensureMat(m **nn.Matrix, rows, cols int) *nn.Matrix {
	if *m == nil || cap((*m).Data) < rows*cols {
		*m = nn.NewMatrix(rows, cols)
		return *m
	}
	(*m).Rows, (*m).Cols, (*m).Data = rows, cols, (*m).Data[:rows*cols]
	return *m
}

// standardize maps raw feature rows into z-score space.
func (d *Detector) standardize(x *nn.Matrix) *nn.Matrix {
	out := x.Clone()
	d.standardizeInPlace(out)
	return out
}

func (d *Detector) standardizeInPlace(x *nn.Matrix) {
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = (row[j] - d.featMean[j]) / d.featStd[j]
		}
	}
}

// standardizeRowsInto writes the z-scored rows into the scratch matrix
// s.z and returns it.
func (d *Detector) standardizeRowsInto(s *scoreScratch, rows [][]float64) *nn.Matrix {
	z := ensureMat(&s.z, len(rows), d.cfg.InputDim)
	for i, r := range rows {
		if len(r) != z.Cols {
			panic(fmt.Sprintf("autoenc: feature vector %d has %d entries, want %d", i, len(r), z.Cols))
		}
		dst := z.Row(i)
		for j, v := range r {
			dst[j] = (v - d.featMean[j]) / d.featStd[j]
		}
	}
	return z
}

// scoreInto reconstructs the already-standardized rows of z and writes
// each row's RMSE into dst (length z.Rows). The reconstruction is read
// straight from the network's inference arena, so the pass makes no
// output copy and no allocation.
func (d *Detector) scoreInto(dst []float64, z *nn.Matrix) {
	d.net.PredictApply(z, func(rec *nn.Matrix) {
		nn.RMSEInto(dst, rec, z)
	})
}

// standardizeCopy copies x into the scratch matrix s.z and z-scores it,
// leaving the caller's input untouched.
func (d *Detector) standardizeCopy(s *scoreScratch, x *nn.Matrix) *nn.Matrix {
	if x.Cols != d.cfg.InputDim {
		panic(fmt.Sprintf("autoenc: input has %d features, want %d", x.Cols, d.cfg.InputDim))
	}
	z := ensureMat(&s.z, x.Rows, x.Cols)
	copy(z.Data, x.Data)
	d.standardizeInPlace(z)
	return z
}

// ErrNoTrainingData is returned when Train receives an empty matrix.
var ErrNoTrainingData = errors.New("autoenc: no training data")

// Train fits the autoencoder on clean feature vectors (rows of x) and
// calibrates the detection threshold from the training reconstruction
// errors. The detector never sees adversarial data, per the paper's
// operation mode.
func Train(x *nn.Matrix, cfg Config) (*Detector, error) {
	groups := make([]int, x.Rows)
	for i := range groups {
		groups[i] = i
	}
	return TrainGrouped(x, groups, cfg)
}

// TrainGrouped fits the autoencoder on per-walk feature rows, where
// groups[i] identifies the sample row i belongs to. The validation
// split and the mu/sigma calibration operate on *sample-level* mean
// reconstruction errors, matching deployment: a sample's detection
// statistic is the mean RE over its walk vectors (see SampleError),
// which averages walk randomness away and tightens the clean RE
// distribution.
func TrainGrouped(x *nn.Matrix, groups []int, cfg Config) (*Detector, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if x.Rows == 0 {
		return nil, ErrNoTrainingData
	}
	if x.Rows != len(groups) {
		return nil, fmt.Errorf("autoenc: %d rows but %d group labels", x.Rows, len(groups))
	}
	if x.Cols != cfg.InputDim {
		return nil, fmt.Errorf("autoenc: data has %d features, config says %d", x.Cols, cfg.InputDim)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := buildNet(cfg, rng)

	d := &Detector{cfg: cfg, net: net}
	if cfg.NoStandardize {
		d.featMean = make([]float64, x.Cols)
		d.featStd = make([]float64, x.Cols)
		for j := range d.featStd {
			d.featStd[j] = 1
		}
	} else {
		d.featMean, d.featStd = columnMeanStd(x)
	}
	z := d.standardize(x)

	// Split off the validation unit's calibration samples — whole
	// groups, so calibration statistics match deployment.
	groupIDs := make([]int, 0, len(groups))
	seen := make(map[int]bool, len(groups))
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			groupIDs = append(groupIDs, g)
		}
	}
	rng.Shuffle(len(groupIDs), func(i, j int) { groupIDs[i], groupIDs[j] = groupIDs[j], groupIDs[i] })
	nValGroups := int(float64(len(groupIDs)) * cfg.ValFraction)
	if nValGroups < 1 && len(groupIDs) > 1 {
		nValGroups = 1
	}
	valSet := make(map[int]bool, nValGroups)
	for _, g := range groupIDs[:nValGroups] {
		valSet[g] = true
	}
	var trainRows, valRows []int
	for i, g := range groups {
		if valSet[g] {
			valRows = append(valRows, i)
		} else {
			trainRows = append(trainRows, i)
		}
	}
	if len(trainRows) == 0 {
		trainRows = valRows
	}
	trainX := nn.NewMatrix(len(trainRows), z.Cols)
	for i, r := range trainRows {
		copy(trainX.Row(i), z.Row(r))
	}

	// Denoising augmentation: clean rows plus noisy replicas targeting
	// the clean row (features are standardized, so NoiseStd is already
	// relative to feature scale).
	inX, tgtX := trainX, trainX
	if cfg.NoiseStd > 0 && cfg.Augment > 0 {
		rows := trainX.Rows * (1 + cfg.Augment)
		in := nn.NewMatrix(rows, trainX.Cols)
		tgt := nn.NewMatrix(rows, trainX.Cols)
		for i := 0; i < trainX.Rows; i++ {
			copy(in.Row(i), trainX.Row(i))
			copy(tgt.Row(i), trainX.Row(i))
		}
		for a := 0; a < cfg.Augment; a++ {
			for i := 0; i < trainX.Rows; i++ {
				r := (1+a)*trainX.Rows + i
				src := trainX.Row(i)
				dst := in.Row(r)
				for j, v := range src {
					dst[j] = v + cfg.NoiseStd*rng.NormFloat64()
				}
				copy(tgt.Row(r), src)
			}
		}
		inX, tgtX = in, tgt
	}

	tr := nn.Trainer{Net: net, Loss: nn.MSE{}, Opt: nn.NewAdam(cfg.LR)}
	if _, err := tr.Fit(inX, tgtX, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed,
		Hooks:     cfg.Hooks,
	}); err != nil {
		return nil, fmt.Errorf("autoenc: train: %w", err)
	}

	// Calibrate on sample-level (group-mean) reconstruction errors of
	// the validation unit.
	calibRows := valRows
	if len(calibRows) == 0 {
		calibRows = trainRows
	}
	calibX := nn.NewMatrix(len(calibRows), z.Cols)
	for i, r := range calibRows {
		copy(calibX.Row(i), z.Row(r))
	}
	rowRE := nn.RMSE(net.PredictExact(calibX), calibX)
	sums := make(map[int]float64)
	counts := make(map[int]int)
	var order []int
	for i, r := range calibRows {
		g := groups[r]
		if counts[g] == 0 {
			order = append(order, g)
		}
		sums[g] += rowRE[i]
		counts[g]++
	}
	sampleRE := make([]float64, 0, len(order))
	for _, g := range order {
		sampleRE = append(sampleRE, sums[g]/float64(counts[g]))
	}
	d.mu, d.sigma = meanStd(sampleRE)
	return d, nil
}

func buildNet(cfg Config, rng *rand.Rand) *nn.Network {
	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	dims = append(dims, cfg.InputDim)
	layers := make([]nn.Layer, 0, 2*len(dims))
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, nn.NewDense(dims[i], dims[i+1], rng))
		if i+2 < len(dims) { // no activation on the reconstruction layer
			layers = append(layers, nn.NewReLU())
		}
	}
	return nn.NewNetwork(layers...)
}

// ReconstructionErrors returns the per-row RMSE between the
// standardized input and its reconstruction. Safe for concurrent use
// on a shared trained detector; the returned slice is the call's only
// allocation.
func (d *Detector) ReconstructionErrors(x *nn.Matrix) []float64 {
	return d.ReconstructionErrorsInto(make([]float64, x.Rows), x)
}

// ReconstructionErrorsInto is ReconstructionErrors written into a
// caller-provided slice of length x.Rows: one batched
// standardize+forward+RMSE pass, allocation-free at steady state and
// safe for concurrent use.
func (d *Detector) ReconstructionErrorsInto(dst []float64, x *nn.Matrix) []float64 {
	if len(dst) != x.Rows {
		panic(fmt.Sprintf("autoenc: ReconstructionErrorsInto dst has len %d, want %d", len(dst), x.Rows))
	}
	if x.Rows == 0 {
		return dst
	}
	s := d.getScratch()
	z := d.standardizeCopy(s, x)
	d.scoreInto(dst, z)
	d.scratch.Put(s)
	d.observeREs(dst)
	return dst
}

// ReconstructionError returns the RMSE of one feature vector. The call
// is allocation-free at steady state and safe for concurrent use.
func (d *Detector) ReconstructionError(vec []float64) float64 {
	s := d.getScratch()
	z := ensureMat(&s.z, 1, d.cfg.InputDim)
	if len(vec) != z.Cols {
		panic(fmt.Sprintf("autoenc: feature vector has %d entries, want %d", len(vec), z.Cols))
	}
	row := z.Row(0)
	for j, v := range vec {
		row[j] = (v - d.featMean[j]) / d.featStd[j]
	}
	res := ensureF64(&s.res, 1)
	d.scoreInto(res, z)
	re := res[0]
	d.scratch.Put(s)
	d.observeRE(re)
	return re
}

// Threshold returns the calibrated detection threshold
// mu + Alpha*sigma.
func (d *Detector) Threshold() float64 { return d.ThresholdAt(d.cfg.Alpha) }

// ThresholdAt returns the threshold for an arbitrary alpha, supporting
// the paper's Fig. 13 sensitivity sweep.
func (d *Detector) ThresholdAt(alpha float64) float64 { return d.mu + alpha*d.sigma }

// Mu returns the mean training reconstruction error.
func (d *Detector) Mu() float64 { return d.mu }

// Sigma returns the standard deviation of training reconstruction error.
func (d *Detector) Sigma() float64 { return d.sigma }

// Alpha returns the configured threshold multiplier.
func (d *Detector) Alpha() float64 { return d.cfg.Alpha }

// SetAlpha changes the threshold multiplier (recalibration is free; mu
// and sigma are retained from training).
func (d *Detector) SetAlpha(alpha float64) { d.cfg.Alpha = alpha }

// IsAdversarial reports whether one feature vector exceeds the
// detection threshold.
func (d *Detector) IsAdversarial(vec []float64) bool {
	return d.ReconstructionError(vec) > d.Threshold()
}

// SampleError returns the sample-level detection statistic: the mean
// reconstruction error over the sample's per-walk feature vectors. The
// call is allocation-free at steady state and safe for concurrent use.
func (d *Detector) SampleError(walks [][]float64) float64 {
	if len(walks) == 0 {
		return 0
	}
	s := d.getScratch()
	z := d.standardizeRowsInto(s, walks)
	res := ensureF64(&s.res, z.Rows)
	d.scoreInto(res, z)
	var sum float64
	for _, r := range res {
		sum += r
	}
	d.scratch.Put(s)
	mean := sum / float64(len(res))
	d.observeRE(mean)
	return mean
}

// SampleErrors computes the sample-level detection statistic for a
// whole batch of per-walk feature rows in a single
// standardize+forward+RMSE pass: groups[i] assigns row i of x to a
// sample, and entry g of the result (length max(groups)+1) holds that
// sample's mean reconstruction error. Equivalent to one SampleError
// call per sample over that sample's rows — each group's mean
// accumulates its rows in ascending row order, so results are
// bit-identical.
func (d *Detector) SampleErrors(x *nn.Matrix, groups []int) []float64 {
	n := 0
	for _, g := range groups {
		if g >= n {
			n = g + 1
		}
	}
	return d.SampleErrorsInto(make([]float64, n), x, groups)
}

// SampleErrorsInto is SampleErrors with caller-provided storage:
// dst[g] receives group g's mean reconstruction error (0 for groups
// with no rows). Allocation-free at steady state and safe for
// concurrent use.
func (d *Detector) SampleErrorsInto(dst []float64, x *nn.Matrix, groups []int) []float64 {
	if x.Rows != len(groups) {
		panic(fmt.Sprintf("autoenc: %d rows but %d group labels", x.Rows, len(groups)))
	}
	for g := range dst {
		dst[g] = 0
	}
	if x.Rows == 0 {
		return dst
	}
	s := d.getScratch()
	z := d.standardizeCopy(s, x)
	res := ensureF64(&s.res, x.Rows)
	d.scoreInto(res, z)
	counts := ensureInts(&s.counts, len(dst))
	for g := range counts {
		counts[g] = 0
	}
	for i, g := range groups {
		dst[g] += res[i]
		counts[g]++
	}
	for g, c := range counts {
		if c > 0 {
			dst[g] /= float64(c)
		}
	}
	if d.met.re != nil {
		for g, c := range counts {
			if c > 0 {
				d.observeRE(dst[g])
			}
		}
	}
	d.scratch.Put(s)
	return dst
}

// IsAdversarialSample applies the threshold to the sample-level
// statistic over per-walk vectors.
func (d *Detector) IsAdversarialSample(walks [][]float64) bool {
	return d.SampleError(walks) > d.Threshold()
}

// DetectBatch flags every row of x whose RE exceeds the threshold. The
// returned slice is the call's only allocation.
func (d *Detector) DetectBatch(x *nn.Matrix) []bool {
	out := make([]bool, x.Rows)
	if x.Rows == 0 {
		return out
	}
	s := d.getScratch()
	z := d.standardizeCopy(s, x)
	res := ensureF64(&s.res, x.Rows)
	d.scoreInto(res, z)
	th := d.Threshold()
	for i, r := range res {
		out[i] = r > th
	}
	d.scratch.Put(s)
	return out
}

// Network exposes the underlying autoencoder (for persistence).
func (d *Detector) Network() *nn.Network { return d.net }

// SetFastInference toggles the relaxed-precision scoring kernels for
// this detector's reconstruction passes. A runtime-only knob: it is
// never part of State, so a persisted detector always restores with
// fast mode off, and training is unaffected (the trainer's forward
// pass ignores the flag).
func (d *Detector) SetFastInference(on bool) { d.net.SetFastInference(on) }

// FastInference reports whether relaxed-precision scoring is enabled.
func (d *Detector) FastInference() bool { return d.net.FastInference() }

// Config returns the detector's effective (filled) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Calibration exposes mu and sigma for persistence.
func (d *Detector) Calibration() (mu, sigma float64) { return d.mu, d.sigma }

// State is everything needed to rebuild a trained detector.
type State struct {
	Weights   []float64 `json:"weights"`
	Mu, Sigma float64
	FeatMean  []float64 `json:"featMean"`
	FeatStd   []float64 `json:"featStd"`
}

// State exports the detector's trained state.
func (d *Detector) State() State {
	return State{
		Weights:  d.net.SaveWeights(),
		Mu:       d.mu,
		Sigma:    d.sigma,
		FeatMean: append([]float64(nil), d.featMean...),
		FeatStd:  append([]float64(nil), d.featStd...),
	}
}

// Restore rebuilds a detector from persisted state.
func Restore(cfg Config, st State) (*Detector, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(st.FeatMean) != cfg.InputDim || len(st.FeatStd) != cfg.InputDim {
		return nil, fmt.Errorf("autoenc: standardization stats have %d/%d entries, want %d",
			len(st.FeatMean), len(st.FeatStd), cfg.InputDim)
	}
	net := buildNet(cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err := net.LoadWeights(st.Weights); err != nil {
		return nil, err
	}
	return &Detector{
		cfg: cfg, net: net,
		mu: st.Mu, sigma: st.Sigma,
		featMean: st.FeatMean, featStd: st.FeatStd,
	}, nil
}

// columnMeanStd returns per-column mean and standard deviation, with
// zero-variance columns getting std 1 so standardization stays finite.
func columnMeanStd(x *nn.Matrix) (mean, std []float64) {
	mean = make([]float64, x.Cols)
	std = make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(x.Rows))
		if std[j] < 1e-12 {
			std[j] = 1
		}
	}
	return mean, std
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
