package autoenc

import (
	"math"
	"math/rand"
	"testing"

	"soteria/internal/nn"
)

// cleanVectors samples vectors near two prototype patterns (sparse
// positive bumps), mimicking normalized TF-IDF features.
func cleanVectors(rng *rand.Rand, n, dim int) *nn.Matrix {
	x := nn.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		proto := i % 2
		for j := 0; j < dim; j++ {
			v := 0.02 * rng.Float64()
			if (proto == 0 && j < dim/3) || (proto == 1 && j >= 2*dim/3) {
				v = 0.5 + 0.1*rng.NormFloat64()
			}
			x.Set(i, j, math.Max(v, 0))
		}
	}
	return x
}

// shiftedVectors puts mass where clean vectors never have it.
func shiftedVectors(rng *rand.Rand, n, dim int) *nn.Matrix {
	x := nn.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := dim / 3; j < 2*dim/3; j++ {
			x.Set(i, j, 0.6+0.1*rng.NormFloat64())
		}
	}
	return x
}

func testConfig(dim int) Config {
	cfg := DefaultConfig(dim)
	cfg.Hidden = []int{2 * dim, 3 * dim, 2 * dim}
	cfg.Epochs = 60
	cfg.BatchSize = 16
	cfg.Seed = 7
	return cfg
}

func TestTrainSeparatesShiftedVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 24
	train := cleanVectors(rng, 160, dim)
	d, err := Train(train, testConfig(dim))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	cleanTest := cleanVectors(rng, 20, dim)
	adv := shiftedVectors(rng, 20, dim)

	cleanFlags := d.DetectBatch(cleanTest)
	advFlags := d.DetectBatch(adv)
	cleanFP, advTP := 0, 0
	for _, f := range cleanFlags {
		if f {
			cleanFP++
		}
	}
	for _, f := range advFlags {
		if f {
			advTP++
		}
	}
	if advTP < 18 {
		t.Fatalf("detected %d/20 shifted vectors, want >= 18", advTP)
	}
	if cleanFP > 8 {
		t.Fatalf("flagged %d/20 clean vectors at alpha=1, want <= 8", cleanFP)
	}

	// The paper's Fig. 13 shape: at alpha=2 nearly all clean samples
	// pass while far-out-of-distribution vectors are still caught.
	d.SetAlpha(2.0)
	cleanFP2, advTP2 := 0, 0
	for _, f := range d.DetectBatch(cleanTest) {
		if f {
			cleanFP2++
		}
	}
	for _, f := range d.DetectBatch(adv) {
		if f {
			advTP2++
		}
	}
	if cleanFP2 > 3 {
		t.Fatalf("flagged %d/20 clean vectors at alpha=2, want <= 3", cleanFP2)
	}
	if cleanFP2 > cleanFP {
		t.Fatalf("clean FPs rose from %d to %d when alpha went 1 -> 2", cleanFP, cleanFP2)
	}
	if advTP2 < 15 {
		t.Fatalf("detected %d/20 shifted vectors at alpha=2, want >= 15", advTP2)
	}
}

func TestThresholdFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 16
	cfg := testConfig(dim)
	cfg.Epochs = 10
	d, err := Train(cleanVectors(rng, 30, dim), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	mu, sigma := d.Calibration()
	if got, want := d.Threshold(), mu+1.0*sigma; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Threshold = %v, want %v", got, want)
	}
	if got, want := d.ThresholdAt(2.0), mu+2*sigma; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ThresholdAt(2) = %v, want %v", got, want)
	}
	d.SetAlpha(0.5)
	if got, want := d.Threshold(), mu+0.5*sigma; math.Abs(got-want) > 1e-12 {
		t.Fatalf("after SetAlpha: Threshold = %v, want %v", got, want)
	}
	if d.Alpha() != 0.5 {
		t.Fatalf("Alpha = %v", d.Alpha())
	}
	if d.Mu() != mu || d.Sigma() != sigma {
		t.Fatal("Mu/Sigma accessors disagree with Calibration")
	}
}

func TestAlphaMonotonicity(t *testing.T) {
	// Raising alpha can only reduce the number of detections.
	rng := rand.New(rand.NewSource(3))
	dim := 16
	cfg := testConfig(dim)
	cfg.Epochs = 20
	d, err := Train(cleanVectors(rng, 30, dim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed := shiftedVectors(rng, 30, dim)
	count := func(alpha float64) int {
		d.SetAlpha(alpha)
		n := 0
		for _, f := range d.DetectBatch(mixed) {
			if f {
				n++
			}
		}
		return n
	}
	prev := count(0)
	for _, a := range []float64{0.5, 1.0, 1.5, 2.0} {
		cur := count(a)
		if cur > prev {
			t.Fatalf("detections increased from %d to %d when alpha rose to %v", prev, cur, a)
		}
		prev = cur
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nn.NewMatrix(0, 8), DefaultConfig(8)); err != ErrNoTrainingData {
		t.Fatalf("empty data err = %v", err)
	}
	if _, err := Train(nn.NewMatrix(4, 8), DefaultConfig(9)); err == nil {
		t.Fatal("dim mismatch should error")
	}
	if _, err := Train(nn.NewMatrix(4, 8), Config{}); err == nil {
		t.Fatal("zero config should error")
	}
}

func TestDefaultConfigRatios(t *testing.T) {
	cfg := DefaultConfig(1000)
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	want := []int{2000, 3000, 2000}
	for i, w := range want {
		if cfg.Hidden[i] != w {
			t.Fatalf("Hidden = %v, want %v", cfg.Hidden, want)
		}
	}
	if cfg.Epochs != 100 || cfg.BatchSize != 128 || cfg.Alpha != 1.0 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestReconstructionErrorSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 12
	cfg := testConfig(dim)
	cfg.Epochs = 10
	d, err := Train(cleanVectors(rng, 20, dim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := cleanVectors(rng, 3, dim)
	batch := d.ReconstructionErrors(x)
	for i := 0; i < 3; i++ {
		single := d.ReconstructionError(x.Row(i))
		if math.Abs(single-batch[i]) > 1e-12 {
			t.Fatalf("row %d: single %v vs batch %v", i, single, batch[i])
		}
	}
	flag := d.IsAdversarial(x.Row(0))
	if flag != (batch[0] > d.Threshold()) {
		t.Fatal("IsAdversarial inconsistent with threshold")
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dim := 12
	cfg := testConfig(dim)
	cfg.Epochs = 10
	d, err := Train(cleanVectors(rng, 20, dim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(d.cfg, d.State())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	x := cleanVectors(rng, 5, dim)
	a := d.ReconstructionErrors(x)
	b := r.ReconstructionErrors(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored detector differs")
		}
	}
	if r.Threshold() != d.Threshold() {
		t.Fatal("restored threshold differs")
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(6))
	rng2 := rand.New(rand.NewSource(6))
	dim := 12
	cfg := testConfig(dim)
	cfg.Epochs = 5
	d1, err := Train(cleanVectors(rng1, 16, dim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Train(cleanVectors(rng2, 16, dim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Mu() != d2.Mu() || d1.Sigma() != d2.Sigma() {
		t.Fatal("training not deterministic")
	}
}
