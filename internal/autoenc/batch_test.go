package autoenc

import (
	"testing"

	"soteria/internal/nn"
)

// TestBatchedScoringMatchesPerSample pins the cross-sample batched
// entry points bit-identical to their per-sample counterparts: one
// standardize+forward+RMSE pass over all rows must reproduce every
// per-row ReconstructionError and every per-group SampleError exactly,
// across walk counts and batch sizes.
func TestBatchedScoringMatchesPerSample(t *testing.T) {
	d, x := smallDetector(t)
	dim := x.Cols
	for _, walks := range []int{1, 3, 5} {
		for _, samples := range []int{1, 2, 7} {
			rows := samples * walks
			if rows > x.Rows {
				continue
			}
			sub := &nn.Matrix{Rows: rows, Cols: dim, Data: x.Data[:rows*dim]}
			groups := make([]int, rows)
			for r := range groups {
				groups[r] = r / walks
			}

			res := d.ReconstructionErrors(sub)
			for r := 0; r < rows; r++ {
				if got := d.ReconstructionError(sub.Row(r)); got != res[r] {
					t.Fatalf("walks=%d samples=%d row %d: batched RE %v != per-row %v",
						walks, samples, r, res[r], got)
				}
			}
			into := make([]float64, rows)
			d.ReconstructionErrorsInto(into, sub)
			for r := range into {
				if into[r] != res[r] {
					t.Fatalf("ReconstructionErrorsInto[%d] = %v, want %v", r, into[r], res[r])
				}
			}

			se := d.SampleErrors(sub, groups)
			if len(se) != samples {
				t.Fatalf("SampleErrors returned %d groups, want %d", len(se), samples)
			}
			for s := 0; s < samples; s++ {
				walkRows := make([][]float64, walks)
				for w := range walkRows {
					walkRows[w] = sub.Row(s*walks + w)
				}
				if got := d.SampleError(walkRows); got != se[s] {
					t.Fatalf("walks=%d samples=%d group %d: batched sample error %v != per-sample %v",
						walks, samples, s, se[s], got)
				}
			}
		}
	}
}

// TestSampleErrorsIntoShapes pins the Into variant's contract: dst is
// fully zeroed, ragged group ids accumulate into their own slots, and
// shape mismatches panic.
func TestSampleErrorsIntoShapes(t *testing.T) {
	d, x := smallDetector(t)
	rows := 6
	sub := &nn.Matrix{Rows: rows, Cols: x.Cols, Data: x.Data[:rows*x.Cols]}
	groups := []int{0, 0, 1, 1, 1, 3} // group 2 empty, group 3 singleton
	dst := []float64{99, 99, 99, 99}
	d.SampleErrorsInto(dst, sub, groups)
	if dst[2] != 0 {
		t.Fatalf("empty group slot = %v, want 0", dst[2])
	}
	if got := d.ReconstructionError(sub.Row(5)); dst[3] != got {
		t.Fatalf("singleton group error %v != per-row %v", dst[3], got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("rows/groups mismatch did not panic")
		}
	}()
	d.SampleErrorsInto(dst, sub, groups[:rows-1])
}

// TestBatchedScoringZeroAllocSteadyState guards the batched entry
// points: once scratch and dst are warm, scoring a multi-row batch
// allocates nothing, and DetectBatch allocates only its verdict slice.
func TestBatchedScoringZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	d, x := smallDetector(t)
	rows := 12
	sub := &nn.Matrix{Rows: rows, Cols: x.Cols, Data: x.Data[:rows*x.Cols]}
	groups := make([]int, rows)
	for r := range groups {
		groups[r] = r / 3
	}
	res := make([]float64, rows)
	se := make([]float64, rows/3)
	for i := 0; i < 3; i++ { // warm scratch pools
		d.ReconstructionErrorsInto(res, sub)
		d.SampleErrorsInto(se, sub, groups)
	}
	if avg := testing.AllocsPerRun(100, func() { d.ReconstructionErrorsInto(res, sub) }); avg != 0 {
		t.Errorf("ReconstructionErrorsInto allocates %v objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { d.SampleErrorsInto(se, sub, groups) }); avg != 0 {
		t.Errorf("SampleErrorsInto allocates %v objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { d.DetectBatch(sub) }); avg > 1 {
		t.Errorf("DetectBatch allocates %v objects per call, want <= 1 (the verdict slice)", avg)
	}
}
