package autoenc

import (
	"math/rand"
	"testing"

	"soteria/internal/nn"
)

// BenchmarkAutoencFit measures one full detector training run at a
// reduced scale that keeps the paper's 1x/2x/3x/2x/1x layer geometry:
// the per-op cost is dominated by the dense forward/backward GEMMs,
// so it tracks the nn compute-kernel trajectory across PRs.
func BenchmarkAutoencFit(b *testing.B) {
	const (
		dim  = 96
		rows = 64
	)
	rng := rand.New(rand.NewSource(7))
	x := nn.NewMatrix(rows, dim)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	cfg := DefaultConfig(dim)
	cfg.Epochs = 2
	cfg.BatchSize = 32
	cfg.Seed = 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorScore measures steady-state inference on a fitted
// detector: one combined feature vector through standardization, the
// five dense layers, and the RMSE reduction.
func BenchmarkDetectorScore(b *testing.B) {
	const (
		dim  = 96
		rows = 48
	)
	rng := rand.New(rand.NewSource(11))
	x := nn.NewMatrix(rows, dim)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	cfg := DefaultConfig(dim)
	cfg.Epochs = 2
	cfg.BatchSize = 32
	cfg.Seed = 11
	d, err := Train(x, cfg)
	if err != nil {
		b.Fatal(err)
	}
	vec := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ReconstructionError(vec)
	}
}
