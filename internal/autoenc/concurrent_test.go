package autoenc

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"soteria/internal/nn"
)

// smallDetector trains a quick detector for scoring tests.
func smallDetector(t testing.TB) (*Detector, *nn.Matrix) {
	t.Helper()
	const (
		dim  = 24
		rows = 40
	)
	rng := rand.New(rand.NewSource(31))
	x := nn.NewMatrix(rows, dim)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	cfg := DefaultConfig(dim)
	cfg.Epochs = 2
	cfg.BatchSize = 16
	cfg.Seed = 31
	d, err := Train(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, x
}

// TestConcurrentScoringSharedDetector hammers one trained detector
// from many goroutines; with -race this pins the scoring path's
// freedom from shared mutable state, and every score must equal the
// serial reference bit for bit.
func TestConcurrentScoringSharedDetector(t *testing.T) {
	d, x := smallDetector(t)
	walks := [][]float64{x.Row(0), x.Row(1), x.Row(2)}
	wantVec := d.ReconstructionError(x.Row(0))
	wantSample := d.SampleError(walks)
	wantBatch := d.ReconstructionErrors(x)

	var wg sync.WaitGroup
	errc := make(chan string, 64)
	fail := func(msg string) {
		select {
		case errc <- msg:
		default:
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				switch (g + iter) % 3 {
				case 0:
					if d.ReconstructionError(x.Row(0)) != wantVec {
						fail("ReconstructionError diverged under concurrency")
					}
				case 1:
					if d.SampleError(walks) != wantSample {
						fail("SampleError diverged under concurrency")
					}
				case 2:
					got := d.ReconstructionErrors(x)
					for i := range got {
						if got[i] != wantBatch[i] {
							fail("ReconstructionErrors diverged under concurrency")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}

// TestScoringMatchesUnpooledReference pins the scratch-pooled scoring
// path to a from-scratch computation through the public network.
func TestScoringMatchesUnpooledReference(t *testing.T) {
	d, x := smallDetector(t)
	z := d.standardize(x)
	ref := nn.RMSE(d.Network().Predict(z), z)
	got := d.ReconstructionErrors(x)
	for i := range ref {
		if math.Abs(got[i]-ref[i]) != 0 {
			t.Fatalf("row %d: pooled score %v vs reference %v", i, got[i], ref[i])
		}
	}
	if re := d.ReconstructionError(x.Row(5)); re != ref[5] {
		t.Fatalf("single-vector score %v vs reference %v", re, ref[5])
	}
}

// TestDetectorScoringZeroAllocSteadyState is the satellite guard:
// scoring a fitted detector allocates nothing once its scratch pool is
// warm.
func TestDetectorScoringZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	d, x := smallDetector(t)
	vec := x.Row(0)
	walks := [][]float64{x.Row(1), x.Row(2)}
	for i := 0; i < 3; i++ {
		d.ReconstructionError(vec)
		d.SampleError(walks)
	}
	if avg := testing.AllocsPerRun(100, func() { d.ReconstructionError(vec) }); avg != 0 {
		t.Fatalf("ReconstructionError allocates %v per call at steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { d.SampleError(walks) }); avg != 0 {
		t.Fatalf("SampleError allocates %v per call at steady state, want 0", avg)
	}
}
