package autoenc

import (
	"math"
	"math/rand"
	"testing"

	"soteria/internal/nn"
)

// walkVectors builds per-walk rows: each sample contributes `walks`
// noisy variants of its prototype.
func walkVectors(rng *rand.Rand, samples, walks, dim int) (*nn.Matrix, []int) {
	x := nn.NewMatrix(samples*walks, dim)
	groups := make([]int, samples*walks)
	for s := 0; s < samples; s++ {
		proto := s % 2
		for w := 0; w < walks; w++ {
			r := s*walks + w
			groups[r] = s
			row := x.Row(r)
			for j := 0; j < dim; j++ {
				v := 0.02 * rng.Float64()
				if (proto == 0 && j < dim/3) || (proto == 1 && j >= 2*dim/3) {
					v = 0.5 + 0.1*rng.NormFloat64()
				}
				row[j] = math.Max(v, 0)
			}
		}
	}
	return x, groups
}

func TestTrainGroupedBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 18
	x, groups := walkVectors(rng, 40, 4, dim)
	cfg := testConfig(dim)
	cfg.Epochs = 30
	d, err := TrainGrouped(x, groups, cfg)
	if err != nil {
		t.Fatalf("TrainGrouped: %v", err)
	}
	if d.Sigma() < 0 || math.IsNaN(d.Mu()) {
		t.Fatalf("calibration invalid: mu=%v sigma=%v", d.Mu(), d.Sigma())
	}

	// Sample-level statistic: mean of per-walk REs.
	testX, _ := walkVectors(rng, 1, 4, dim)
	walks := make([][]float64, 4)
	for w := range walks {
		walks[w] = testX.Row(w)
	}
	got := d.SampleError(walks)
	res := d.ReconstructionErrors(testX)
	want := (res[0] + res[1] + res[2] + res[3]) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SampleError = %v, want %v", got, want)
	}
	if d.IsAdversarialSample(walks) != (got > d.Threshold()) {
		t.Fatal("IsAdversarialSample inconsistent with threshold")
	}
}

func TestTrainGroupedSeparatesShiftedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 18
	x, groups := walkVectors(rng, 60, 4, dim)
	cfg := testConfig(dim)
	cfg.Epochs = 50
	cfg.NoiseStd = -1 // walk variety replaces synthetic noise
	d, err := TrainGrouped(x, groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shifted samples (mass in the untouched middle third).
	flagged := 0
	for s := 0; s < 10; s++ {
		walks := make([][]float64, 4)
		for w := range walks {
			vec := make([]float64, dim)
			for j := dim / 3; j < 2*dim/3; j++ {
				vec[j] = 0.6 + 0.1*rng.NormFloat64()
			}
			walks[w] = vec
		}
		if d.IsAdversarialSample(walks) {
			flagged++
		}
	}
	if flagged < 8 {
		t.Fatalf("flagged %d/10 shifted samples, want >= 8", flagged)
	}
}

func TestTrainGroupedErrors(t *testing.T) {
	if _, err := TrainGrouped(nn.NewMatrix(4, 8), []int{0, 1}, DefaultConfig(8)); err == nil {
		t.Fatal("group count mismatch should error")
	}
}

func TestSampleErrorEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 12
	cfg := testConfig(dim)
	cfg.Epochs = 5
	d, err := Train(cleanVectors(rng, 10, dim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.SampleError(nil); got != 0 {
		t.Fatalf("SampleError(nil) = %v, want 0", got)
	}
}
