//go:build !race

package autoenc

const raceEnabled = false
