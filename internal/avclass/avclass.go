// Package avclass simulates the paper's family-labeling pipeline:
// samples are scanned by multiple antivirus engines (VirusTotal) and the
// per-engine labels are resolved to a single family name by plurality
// voting with alias normalization (AVClass).
//
// Real engines disagree: they use vendor-specific aliases (Gafgyt is
// also "bashlite" and "qbot"), emit generic labels ("trojan.generic"),
// and sometimes misattribute the family. The simulation reproduces all
// three behaviours with a seeded RNG so corpus labeling is deterministic.
package avclass

import (
	"math/rand"
	"sort"
	"strings"

	"soteria/internal/malgen"
)

// aliases maps every vendor alias to its canonical family name,
// mirroring AVClass's alias table.
var aliases = map[string]string{
	"gafgyt":   "gafgyt",
	"bashlite": "gafgyt",
	"qbot":     "gafgyt",
	"lizkebab": "gafgyt",
	"mirai":    "mirai",
	"sora":     "mirai",
	"owari":    "mirai",
	"tsunami":  "tsunami",
	"kaiten":   "tsunami",
	"amnesia":  "tsunami",
}

// vendor alias pools per true family.
var vendorLabels = map[malgen.Class][]string{
	malgen.Gafgyt:  {"gafgyt", "bashlite", "qbot", "lizkebab"},
	malgen.Mirai:   {"mirai", "sora", "owari"},
	malgen.Tsunami: {"tsunami", "kaiten", "amnesia"},
}

var genericLabels = []string{"trojan.generic", "linux.agent", "malware", "elf.heur"}

// ScanResult is one engine's verdict for one sample.
type ScanResult struct {
	Engine string
	Label  string // "" means the engine found nothing
}

// Scanner simulates a VirusTotal multi-engine scan.
type Scanner struct {
	rng     *rand.Rand
	engines []string
	// GenericRate is the probability an engine emits a generic label.
	GenericRate float64
	// ConfuseRate is the probability an engine names a wrong family.
	ConfuseRate float64
	// MissRate is the probability an engine detects nothing.
	MissRate float64
}

// NewScanner returns a scanner with n engines and default noise rates.
func NewScanner(seed int64, n int) *Scanner {
	engines := make([]string, n)
	for i := range engines {
		engines[i] = "engine" + string(rune('A'+i%26))
	}
	return &Scanner{
		rng:         rand.New(rand.NewSource(seed)),
		engines:     engines,
		GenericRate: 0.25,
		ConfuseRate: 0.05,
		MissRate:    0.10,
	}
}

// Scan produces per-engine verdicts for a sample of the given true
// class. Benign samples receive empty verdicts from every engine.
func (s *Scanner) Scan(trueClass malgen.Class) []ScanResult {
	out := make([]ScanResult, 0, len(s.engines))
	for _, eng := range s.engines {
		out = append(out, ScanResult{Engine: eng, Label: s.verdict(trueClass)})
	}
	return out
}

func (s *Scanner) verdict(trueClass malgen.Class) string {
	if trueClass == malgen.Benign {
		return ""
	}
	r := s.rng.Float64()
	switch {
	case r < s.MissRate:
		return ""
	case r < s.MissRate+s.GenericRate:
		return genericLabels[s.rng.Intn(len(genericLabels))]
	case r < s.MissRate+s.GenericRate+s.ConfuseRate:
		// Wrong family.
		others := make([]malgen.Class, 0, 2)
		for _, c := range []malgen.Class{malgen.Gafgyt, malgen.Mirai, malgen.Tsunami} {
			if c != trueClass {
				others = append(others, c)
			}
		}
		pool := vendorLabels[others[s.rng.Intn(len(others))]]
		return pool[s.rng.Intn(len(pool))]
	default:
		pool := vendorLabels[trueClass]
		return pool[s.rng.Intn(len(pool))]
	}
}

// Resolve implements AVClass's plurality vote: normalize every verdict
// through the alias table, drop generic labels, and return the family
// with the most votes. Ties break lexicographically (deterministic).
// Samples with fewer than MinVotes family votes are singletons and
// return ok=false — the paper excludes those from the labeled corpus.
func Resolve(results []ScanResult, minVotes int) (family string, ok bool) {
	votes := make(map[string]int)
	for _, r := range results {
		token := strings.ToLower(strings.TrimSpace(r.Label))
		if fam, known := aliases[token]; known {
			votes[fam]++
		}
	}
	best, bestN := "", 0
	fams := make([]string, 0, len(votes))
	for f := range votes {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		if votes[f] > bestN {
			best, bestN = f, votes[f]
		}
	}
	if bestN < minVotes {
		return "", false
	}
	return best, true
}

// FamilyClass maps a resolved family name back to the corpus class.
func FamilyClass(family string) (malgen.Class, bool) {
	switch family {
	case "gafgyt":
		return malgen.Gafgyt, true
	case "mirai":
		return malgen.Mirai, true
	case "tsunami":
		return malgen.Tsunami, true
	}
	return 0, false
}

// LabelCorpus runs the full VirusTotal + AVClass pipeline over true
// classes: it returns the resolved class for each sample and whether it
// could be labeled. Benign samples (no detections) resolve as Benign.
func (s *Scanner) LabelCorpus(trueClasses []malgen.Class, minVotes int) ([]malgen.Class, []bool) {
	classes := make([]malgen.Class, len(trueClasses))
	labeled := make([]bool, len(trueClasses))
	for i, tc := range trueClasses {
		results := s.Scan(tc)
		detections := 0
		for _, r := range results {
			if r.Label != "" {
				detections++
			}
		}
		if detections == 0 {
			classes[i], labeled[i] = malgen.Benign, true
			continue
		}
		fam, ok := Resolve(results, minVotes)
		if !ok {
			labeled[i] = false
			continue
		}
		c, ok := FamilyClass(fam)
		classes[i], labeled[i] = c, ok
	}
	return classes, labeled
}
