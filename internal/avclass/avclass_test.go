package avclass

import (
	"testing"

	"soteria/internal/malgen"
)

func TestResolvePluralityWithAliases(t *testing.T) {
	results := []ScanResult{
		{Engine: "a", Label: "gafgyt"},
		{Engine: "b", Label: "bashlite"}, // alias of gafgyt
		{Engine: "c", Label: "mirai"},
		{Engine: "d", Label: "trojan.generic"}, // ignored
		{Engine: "e", Label: ""},               // ignored
	}
	fam, ok := Resolve(results, 2)
	if !ok || fam != "gafgyt" {
		t.Fatalf("Resolve = %q, %v; want gafgyt, true", fam, ok)
	}
}

func TestResolveSingleton(t *testing.T) {
	results := []ScanResult{
		{Engine: "a", Label: "mirai"},
		{Engine: "b", Label: "trojan.generic"},
	}
	if _, ok := Resolve(results, 2); ok {
		t.Fatal("one family vote should be a singleton with minVotes=2")
	}
}

func TestResolveTieDeterministic(t *testing.T) {
	results := []ScanResult{
		{Engine: "a", Label: "mirai"},
		{Engine: "b", Label: "gafgyt"},
	}
	fam, ok := Resolve(results, 1)
	if !ok || fam != "gafgyt" {
		t.Fatalf("tie should break lexicographically to gafgyt, got %q", fam)
	}
}

func TestResolveCaseInsensitive(t *testing.T) {
	results := []ScanResult{
		{Engine: "a", Label: "  Mirai "},
		{Engine: "b", Label: "SORA"},
	}
	fam, ok := Resolve(results, 2)
	if !ok || fam != "mirai" {
		t.Fatalf("Resolve = %q, %v; want mirai, true", fam, ok)
	}
}

func TestFamilyClass(t *testing.T) {
	tests := []struct {
		fam  string
		want malgen.Class
		ok   bool
	}{
		{"gafgyt", malgen.Gafgyt, true},
		{"mirai", malgen.Mirai, true},
		{"tsunami", malgen.Tsunami, true},
		{"unknown", 0, false},
	}
	for _, tt := range tests {
		got, ok := FamilyClass(tt.fam)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("FamilyClass(%q) = %v, %v", tt.fam, got, ok)
		}
	}
}

func TestScanBenignAllClean(t *testing.T) {
	s := NewScanner(1, 10)
	for _, r := range s.Scan(malgen.Benign) {
		if r.Label != "" {
			t.Fatalf("benign scan produced verdict %q", r.Label)
		}
	}
}

func TestScanMalwareMostlyCorrect(t *testing.T) {
	s := NewScanner(2, 20)
	results := s.Scan(malgen.Mirai)
	if len(results) != 20 {
		t.Fatalf("results = %d, want 20", len(results))
	}
	fam, ok := Resolve(results, 2)
	if !ok || fam != "mirai" {
		t.Fatalf("20-engine scan of Mirai resolved to %q, %v", fam, ok)
	}
}

func TestLabelCorpusAccuracy(t *testing.T) {
	s := NewScanner(3, 15)
	trueClasses := make([]malgen.Class, 0, 400)
	for i := 0; i < 100; i++ {
		trueClasses = append(trueClasses, malgen.Benign, malgen.Gafgyt, malgen.Mirai, malgen.Tsunami)
	}
	got, labeled := s.LabelCorpus(trueClasses, 2)
	correct, total := 0, 0
	for i := range trueClasses {
		if !labeled[i] {
			continue
		}
		total++
		if got[i] == trueClasses[i] {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no samples labeled")
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("labeling accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestLabelCorpusProducesSomeSingletons(t *testing.T) {
	// With very few engines, singletons must occur at realistic rates.
	s := NewScanner(4, 3)
	trueClasses := make([]malgen.Class, 500)
	for i := range trueClasses {
		trueClasses[i] = malgen.Gafgyt
	}
	_, labeled := s.LabelCorpus(trueClasses, 2)
	singletons := 0
	for _, ok := range labeled {
		if !ok {
			singletons++
		}
	}
	if singletons == 0 {
		t.Fatal("expected some singleton (unlabelable) samples with 3 engines")
	}
	if singletons > 250 {
		t.Fatalf("too many singletons: %d/500", singletons)
	}
}

func TestLabelCorpusDeterministic(t *testing.T) {
	mk := func() ([]malgen.Class, []bool) {
		s := NewScanner(7, 10)
		tc := []malgen.Class{malgen.Gafgyt, malgen.Mirai, malgen.Tsunami, malgen.Benign}
		return s.LabelCorpus(tc, 2)
	}
	c1, l1 := mk()
	c2, l2 := mk()
	for i := range c1 {
		if c1[i] != c2[i] || l1[i] != l2[i] {
			t.Fatal("LabelCorpus not deterministic for fixed seed")
		}
	}
}
