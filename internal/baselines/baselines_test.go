package baselines

import (
	"math"
	"testing"

	"soteria/internal/gea"
	"soteria/internal/malgen"
	"soteria/internal/nn"
)

func corpus(t *testing.T, seed int64, perClass int) ([]*malgen.Sample, []int) {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: seed})
	var samples []*malgen.Sample
	var labels []int
	for ci, c := range malgen.Classes {
		for i := 0; i < perClass; i++ {
			s, err := g.Sample(c)
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, s)
			labels = append(labels, ci)
		}
	}
	return samples, labels
}

func TestGraphFeaturesShapeAndSanity(t *testing.T) {
	samples, _ := corpus(t, 1, 1)
	for _, s := range samples {
		f := GraphFeatures(s.CFG)
		if len(f) != GraphFeatureDim {
			t.Fatalf("feature dim = %d, want %d", len(f), GraphFeatureDim)
		}
		if f[0] != float64(s.Nodes()) {
			t.Fatalf("node count feature = %v, want %d", f[0], s.Nodes())
		}
		if f[1] != float64(s.CFG.G.NumEdges()) {
			t.Fatalf("edge count feature = %v", f[1])
		}
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d invalid: %v", i, v)
			}
		}
	}
}

func TestGraphFeaturesEmptyCFG(t *testing.T) {
	g := malgen.NewGenerator(malgen.Config{Seed: 2})
	s, err := g.SampleSized(malgen.Benign, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := GraphFeatures(s.CFG)
	if f[0] != 5 {
		t.Fatalf("node count = %v", f[0])
	}
}

func TestTrainGraphClassifier(t *testing.T) {
	samples, labels := corpus(t, 3, 25)
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		rows[i] = GraphFeatures(s.CFG)
	}
	x := nn.FromRows(rows)
	cfg := GraphConfig{Classes: 4, Epochs: 120, Seed: 1}
	gc, err := TrainGraph(x, labels, cfg)
	if err != nil {
		t.Fatalf("TrainGraph: %v", err)
	}
	testSamples, testLabels := corpus(t, 4, 10)
	testRows := make([][]float64, len(testSamples))
	for i, s := range testSamples {
		testRows[i] = GraphFeatures(s.CFG)
	}
	pred := gc.Predict(nn.FromRows(testRows))
	correct := 0
	for i := range pred {
		if pred[i] == testLabels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(pred)); acc < 0.6 {
		t.Fatalf("graph baseline accuracy = %.2f, want >= 0.6", acc)
	}
	if one := gc.PredictOne(testRows[0]); one != pred[0] {
		t.Fatal("PredictOne disagrees with batch")
	}
}

func TestTrainGraphErrors(t *testing.T) {
	if _, err := TrainGraph(nn.NewMatrix(0, 16), nil, GraphConfig{Classes: 4}); err != ErrNoTrainingData {
		t.Fatalf("err = %v", err)
	}
	if _, err := TrainGraph(nn.NewMatrix(2, 16), []int{0}, GraphConfig{Classes: 4}); err == nil {
		t.Fatal("label mismatch should error")
	}
	if _, err := TrainGraph(nn.NewMatrix(2, 16), []int{0, 1}, GraphConfig{Classes: 1}); err == nil {
		t.Fatal("single class should error")
	}
}

func TestBytesImageDownsample(t *testing.T) {
	raw := make([]byte, 1000)
	for i := range raw {
		raw[i] = byte(i % 256)
	}
	img := BytesImage(raw, 8)
	if len(img) != 64 {
		t.Fatalf("image length = %d, want 64", len(img))
	}
	for i, p := range img {
		if p < 0 || p > 1 {
			t.Fatalf("pixel %d = %v outside [0,1]", i, p)
		}
	}
}

func TestBytesImageShortStream(t *testing.T) {
	img := BytesImage([]byte{255}, 4)
	for _, p := range img {
		if p != 1.0 {
			t.Fatalf("expected all pixels 1.0, got %v", img)
		}
	}
	empty := BytesImage(nil, 4)
	for _, p := range empty {
		if p != 0 {
			t.Fatal("empty stream should give zero image")
		}
	}
}

func TestBinaryImageSensitiveToAppendedBytes(t *testing.T) {
	// The contrast with CFG features: appending bytes changes the image.
	g := malgen.NewGenerator(malgen.Config{Seed: 5})
	s, err := g.SampleSized(malgen.Gafgyt, 30)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := g.SampleSized(malgen.Benign, 30)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BinaryImage(s.Binary, 16)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := BinaryImage(gea.AppendBytesAE(s.Binary, donor.Binary), 16)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range base {
		diff += math.Abs(base[i] - perturbed[i])
	}
	if diff < 1e-6 {
		t.Fatal("appended bytes did not change the image")
	}
}

func TestTrainImageClassifier(t *testing.T) {
	samples, labels := corpus(t, 6, 15)
	size := 16
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		img, err := BinaryImage(s.Binary, size)
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = img
	}
	cfg := ImageConfig{Size: size, Classes: 4, Epochs: 40, Seed: 1}
	ic, err := TrainImage(nn.FromRows(rows), labels, cfg)
	if err != nil {
		t.Fatalf("TrainImage: %v", err)
	}
	pred := ic.Predict(nn.FromRows(rows))
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	// Training accuracy only: the image baseline just has to learn
	// something beyond chance on its own training data.
	if acc := float64(correct) / float64(len(pred)); acc < 0.5 {
		t.Fatalf("image baseline train accuracy = %.2f, want >= 0.5", acc)
	}
	if one := ic.PredictOne(rows[0]); one != pred[0] {
		t.Fatal("PredictOne disagrees with batch")
	}
}

func TestTrainImageErrors(t *testing.T) {
	if _, err := TrainImage(nn.NewMatrix(0, 256), nil, ImageConfig{Size: 16, Classes: 4}); err != ErrNoTrainingData {
		t.Fatalf("err = %v", err)
	}
	if _, err := TrainImage(nn.NewMatrix(2, 100), []int{0, 1}, ImageConfig{Size: 16, Classes: 4}); err == nil {
		t.Fatal("pixel count mismatch should error")
	}
	if _, err := TrainImage(nn.NewMatrix(2, 16), []int{0, 1}, ImageConfig{Size: 4, Classes: 4}); err == nil {
		t.Fatal("too-small image should error")
	}
	if _, err := BinaryImage(nil, 0); err == nil {
		t.Fatal("zero size should error")
	}
}
