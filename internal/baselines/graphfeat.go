// Package baselines implements the two systems the paper compares
// Soteria against:
//
//   - the graph-theoretic CFG classifier of Alasmary et al. [3], which
//     feeds summary statistics of the CFG's general structure (node and
//     edge counts, density, degrees, shortest paths, centralities,
//     levels) into a deep classifier, and
//   - the image-based classifier of Cui et al. [5], which renders the
//     raw binary as a fixed-size grayscale image and classifies it with
//     a 2-D CNN.
//
// Both consume the same synthetic corpus as Soteria, so the Table VII
// comparison and the PCA contrast of Fig. 8 run end to end.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"soteria/internal/disasm"
	"soteria/internal/nn"
)

// GraphFeatureDim is the size of the graph-theoretic feature vector.
const GraphFeatureDim = 16

// GraphFeatures extracts Alasmary-style summary features from a CFG's
// general structure. The vector layout is fixed:
//
//	0 node count          8 mean betweenness
//	1 edge count          9 max betweenness
//	2 graph density      10 mean closeness
//	3 mean degree        11 max closeness
//	4 max degree         12 BFS depth (max level)
//	5 mean out-degree    13 mean level
//	6 diameter           14 leaf count (no successors)
//	7 avg shortest path  15 back-edge count (level-non-increasing)
func GraphFeatures(c *disasm.CFG) []float64 {
	g := c.G
	n := g.NumNodes()
	out := make([]float64, GraphFeatureDim)
	if n == 0 {
		return out
	}
	out[0] = float64(n)
	out[1] = float64(g.NumEdges())
	out[2] = g.GraphDensity()

	var degSum, outSum float64
	maxDeg := 0
	leaves := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		degSum += float64(d)
		outSum += float64(g.OutDegree(v))
		if d > maxDeg {
			maxDeg = d
		}
		if g.OutDegree(v) == 0 {
			leaves++
		}
	}
	out[3] = degSum / float64(n)
	out[4] = float64(maxDeg)
	out[5] = outSum / float64(n)
	out[6] = float64(g.Diameter())
	out[7] = g.AverageShortestPath()

	bc := g.Betweenness()
	cc := g.Closeness()
	out[8], out[9] = meanMax(bc)
	out[10], out[11] = meanMax(cc)

	levels := g.BFSLevels(c.EntryNode())
	maxLevel, levelSum, reach := 0, 0, 0
	for _, l := range levels {
		if l < 0 {
			continue
		}
		reach++
		levelSum += l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out[12] = float64(maxLevel)
	if reach > 0 {
		out[13] = float64(levelSum) / float64(reach)
	}
	out[14] = float64(leaves)

	backEdges := 0
	for _, e := range g.Edges() {
		if levels[e[0]] >= 0 && levels[e[1]] >= 0 && levels[e[1]] <= levels[e[0]] {
			backEdges++
		}
	}
	out[15] = float64(backEdges)
	return out
}

func meanMax(xs []float64) (mean, maxV float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
		if x > maxV {
			maxV = x
		}
	}
	return mean / float64(len(xs)), maxV
}

// GraphConfig parameterizes the graph-feature classifier.
type GraphConfig struct {
	Classes   int
	Hidden    []int // default {64, 32}
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

func (c *GraphConfig) fill() error {
	if c.Classes <= 1 {
		return fmt.Errorf("baselines: invalid class count %d", c.Classes)
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 32}
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	return nil
}

// GraphClassifier is the trained Alasmary-style baseline. Features are
// z-score standardized with statistics from the training set.
type GraphClassifier struct {
	cfg       GraphConfig
	net       *nn.Network
	mean, std []float64
}

// ErrNoTrainingData is returned for empty training sets.
var ErrNoTrainingData = errors.New("baselines: no training data")

// TrainGraph fits the baseline on raw graph-feature rows.
func TrainGraph(x *nn.Matrix, labels []int, cfg GraphConfig) (*GraphClassifier, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if x.Rows == 0 {
		return nil, ErrNoTrainingData
	}
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("baselines: %d rows but %d labels", x.Rows, len(labels))
	}
	mean, std := columnStats(x)
	xs := standardize(x, mean, std)

	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{x.Cols}, cfg.Hidden...)
	layers := make([]nn.Layer, 0, 2*len(dims))
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, nn.NewDense(dims[i], dims[i+1], rng), nn.NewReLU())
	}
	layers = append(layers, nn.NewDense(dims[len(dims)-1], cfg.Classes, rng))
	net := nn.NewNetwork(layers...)
	tr := nn.Trainer{Net: net, Loss: nn.SoftmaxCrossEntropy{}, Opt: nn.NewAdam(cfg.LR)}
	if _, err := tr.Fit(xs, nn.OneHot(labels, cfg.Classes), nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Seed: cfg.Seed,
	}); err != nil {
		return nil, fmt.Errorf("baselines: train graph: %w", err)
	}
	return &GraphClassifier{cfg: cfg, net: net, mean: mean, std: std}, nil
}

// Predict classifies raw (unstandardized) graph-feature rows.
func (g *GraphClassifier) Predict(x *nn.Matrix) []int {
	return nn.Argmax(g.net.Predict(standardize(x, g.mean, g.std)))
}

// PredictOne classifies one raw feature vector.
func (g *GraphClassifier) PredictOne(vec []float64) int {
	return g.Predict(nn.FromRows([][]float64{vec}))[0]
}

func columnStats(x *nn.Matrix) (mean, std []float64) {
	mean = make([]float64, x.Cols)
	std = make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(x.Rows))
		if std[j] < 1e-12 {
			std[j] = 1
		}
	}
	return mean, std
}

func standardize(x *nn.Matrix, mean, std []float64) *nn.Matrix {
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - mean[j]) / std[j]
		}
	}
	return out
}
