package baselines

import (
	"errors"
	"fmt"
	"math/rand"

	"soteria/internal/isa"
	"soteria/internal/nn"
)

// BinaryImage renders a binary's encoded bytes as a size x size
// grayscale image in [0, 1], Cui-et-al. style: the byte stream is
// divided into size*size equal buckets and each pixel is the bucket's
// mean byte value. Appended bytes and new sections change the image —
// the byte-level sensitivity that makes image classifiers vulnerable to
// the manipulations CFG features ignore.
func BinaryImage(bin *isa.Binary, size int) ([]float64, error) {
	if size <= 0 {
		return nil, errors.New("baselines: image size must be positive")
	}
	raw, err := bin.Encode()
	if err != nil {
		return nil, fmt.Errorf("baselines: encode binary: %w", err)
	}
	return BytesImage(raw, size), nil
}

// BytesImage converts a raw byte stream into a size x size grayscale
// image by bucket-mean downsampling (or nearest-neighbor upsampling for
// streams shorter than the pixel count).
func BytesImage(raw []byte, size int) []float64 {
	pixels := size * size
	out := make([]float64, pixels)
	if len(raw) == 0 {
		return out
	}
	for p := 0; p < pixels; p++ {
		lo := p * len(raw) / pixels
		hi := (p + 1) * len(raw) / pixels
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(raw) {
			hi = len(raw)
		}
		var sum float64
		for _, b := range raw[lo:hi] {
			sum += float64(b)
		}
		out[p] = sum / float64(hi-lo) / 255.0
	}
	return out
}

// ImageConfig parameterizes the image-based classifier.
type ImageConfig struct {
	// Size is the square image edge (the paper evaluates 24, 48, 96,
	// and 192; 96 and 192 performed poorly and were dropped).
	Size    int
	Classes int
	// Filters in the two conv blocks (defaults 8 and 16).
	Filters1, Filters2 int
	Epochs             int
	BatchSize          int
	LR                 float64
	Seed               int64
}

func (c *ImageConfig) fill() error {
	if c.Size < 12 {
		return fmt.Errorf("baselines: image size %d too small", c.Size)
	}
	if c.Classes <= 1 {
		return fmt.Errorf("baselines: invalid class count %d", c.Classes)
	}
	if c.Filters1 <= 0 {
		c.Filters1 = 8
	}
	if c.Filters2 <= 0 {
		c.Filters2 = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	return nil
}

// ImageClassifier is the trained Cui-style baseline.
type ImageClassifier struct {
	cfg ImageConfig
	net *nn.Network
}

// TrainImage fits the image CNN on rows of flattened size x size
// images.
func TrainImage(x *nn.Matrix, labels []int, cfg ImageConfig) (*ImageClassifier, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if x.Rows == 0 {
		return nil, ErrNoTrainingData
	}
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("baselines: %d rows but %d labels", x.Rows, len(labels))
	}
	if x.Cols != cfg.Size*cfg.Size {
		return nil, fmt.Errorf("baselines: rows have %d pixels, config wants %d", x.Cols, cfg.Size*cfg.Size)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	conv1 := nn.NewConv2D(cfg.Size, cfg.Size, 1, cfg.Filters1, 3, 1, rng)
	pool1 := nn.NewMaxPool2D(conv1.OutH(), conv1.OutW(), cfg.Filters1, 2, 2)
	conv2 := nn.NewConv2D(pool1.OutH(), pool1.OutW(), cfg.Filters1, cfg.Filters2, 3, 1, rng)
	pool2 := nn.NewMaxPool2D(conv2.OutH(), conv2.OutW(), cfg.Filters2, 2, 2)
	flat := pool2.OutH() * pool2.OutW() * cfg.Filters2
	net := nn.NewNetwork(
		conv1, nn.NewReLU(), pool1,
		conv2, nn.NewReLU(), pool2,
		nn.NewDense(flat, 64, rng), nn.NewReLU(),
		nn.NewDropout(0.5, rng),
		nn.NewDense(64, cfg.Classes, rng),
	)
	tr := nn.Trainer{Net: net, Loss: nn.SoftmaxCrossEntropy{}, Opt: nn.NewAdam(cfg.LR)}
	if _, err := tr.Fit(x, nn.OneHot(labels, cfg.Classes), nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Seed: cfg.Seed,
	}); err != nil {
		return nil, fmt.Errorf("baselines: train image: %w", err)
	}
	return &ImageClassifier{cfg: cfg, net: net}, nil
}

// Predict classifies rows of flattened images.
func (ic *ImageClassifier) Predict(x *nn.Matrix) []int {
	return nn.Argmax(ic.net.Predict(x))
}

// PredictOne classifies one flattened image.
func (ic *ImageClassifier) PredictOne(img []float64) int {
	return ic.Predict(nn.FromRows([][]float64{img}))[0]
}
