package cnn

import (
	"math/rand"
	"testing"

	"soteria/internal/nn"
)

// voteWalkMatrices builds paired walk-row matrices for batch voting
// tests: samples x wps rows per labeling, varied enough that different
// samples land on different classes.
func voteWalkMatrices(rng *rand.Rand, samples, wps, dim int) (dblX, lblX *nn.Matrix) {
	dblX = nn.NewMatrix(samples*wps, dim)
	lblX = nn.NewMatrix(samples*wps, dim)
	for i := range dblX.Data {
		dblX.Data[i] = rng.Float64() + float64((i/dim/wps)%3)
		lblX.Data[i] = rng.Float64() - float64((i/dim/wps)%3)
	}
	return dblX, lblX
}

// TestVoteBatchMatchesVote pins the tentpole equivalence: one forward
// per labeling over all samples' walk rows must reproduce every
// per-sample Vote decision exactly, across walk counts and batch
// sizes.
func TestVoteBatchMatchesVote(t *testing.T) {
	ens, _, _ := smallEnsemble(t)
	const dim = 24
	rng := rand.New(rand.NewSource(77))
	for _, wps := range []int{1, 2, 5} {
		for _, samples := range []int{1, 3, 8} {
			dblX, lblX := voteWalkMatrices(rng, samples, wps, dim)
			got := ens.VoteBatch(dblX, lblX, wps)
			if len(got) != samples {
				t.Fatalf("wps=%d samples=%d: VoteBatch returned %d decisions", wps, samples, len(got))
			}
			dw := make([][]float64, wps)
			lw := make([][]float64, wps)
			for s := 0; s < samples; s++ {
				for w := 0; w < wps; w++ {
					dw[w] = dblX.Row(s*wps + w)
					lw[w] = lblX.Row(s*wps + w)
				}
				want, err := ens.Vote(dw, lw)
				if err != nil {
					t.Fatal(err)
				}
				if got[s] != want {
					t.Fatalf("wps=%d samples=%d sample %d: VoteBatch = %d, Vote = %d",
						wps, samples, s, got[s], want)
				}
			}
		}
	}
}

// TestVoteBatchShapePanics pins the contract violations that indicate
// programming errors rather than input errors.
func TestVoteBatchShapePanics(t *testing.T) {
	ens, _, _ := smallEnsemble(t)
	rng := rand.New(rand.NewSource(78))
	dblX, lblX := voteWalkMatrices(rng, 2, 2, 24)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("non-positive walks", func() { ens.VoteBatch(dblX, lblX, 0) })
	mustPanic("ragged row counts", func() {
		short := &nn.Matrix{Rows: 2, Cols: 24, Data: lblX.Data[:48]}
		ens.VoteBatch(dblX, short, 2)
	})
	mustPanic("indivisible rows", func() { ens.VoteBatch(dblX, lblX, 3) })
	mustPanic("wrong dst length", func() { ens.VoteBatchInto(make([]int, 3), dblX, lblX, 2) })
	mustPanic("incomplete ensemble", func() {
		half := &Ensemble{DBL: ens.DBL}
		half.VoteBatchInto(make([]int, 2), dblX, lblX, 2)
	})
}

// TestVotingZeroAllocSteadyState guards both voting entry points: with
// warm scratch, per-sample Vote and batched VoteBatchInto allocate
// nothing.
func TestVotingZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ens, dblWalks, lblWalks := smallEnsemble(t)
	rng := rand.New(rand.NewSource(79))
	dblX, lblX := voteWalkMatrices(rng, 4, 2, 24)
	dst := make([]int, 4)
	for i := 0; i < 3; i++ { // warm scratch pools
		if _, err := ens.Vote(dblWalks, lblWalks); err != nil {
			t.Fatal(err)
		}
		ens.VoteBatchInto(dst, dblX, lblX, 2)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := ens.Vote(dblWalks, lblWalks); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Vote allocates %v objects per call at steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { ens.VoteBatchInto(dst, dblX, lblX, 2) }); avg != 0 {
		t.Errorf("VoteBatchInto allocates %v objects per call at steady state, want 0", avg)
	}
}
