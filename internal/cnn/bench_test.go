package cnn

import (
	"math/rand"
	"testing"

	"soteria/internal/nn"
)

// benchTrainingSet builds a small separable per-walk dataset: each
// class gets a distinct frequency bump so the classifier has signal,
// matching the shape (not the scale) of the paper's walk vectors.
func benchTrainingSet(rows, dim, classes int, seed int64) (*nn.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := nn.NewMatrix(rows, dim)
	labels := make([]int, rows)
	for i := 0; i < rows; i++ {
		c := i % classes
		labels[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = 0.1 * rng.NormFloat64()
			if (j+c)%classes == 0 {
				row[j] += 1.0
			}
		}
	}
	return x, labels
}

// BenchmarkCNNEpoch measures one training epoch of the paper's ConvB1/
// ConvB2 architecture at CI scale: im2col, the conv GEMMs, pooling,
// dropout, and the dense classification block, forward and backward.
func BenchmarkCNNEpoch(b *testing.B) {
	x, labels := benchTrainingSet(128, 64, 4, 3)
	cfg := DefaultConfig(64, 4)
	cfg.Filters = 16
	cfg.DenseUnits = 64
	cfg.Epochs = 1
	cfg.BatchSize = 32
	cfg.Seed = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, labels, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
