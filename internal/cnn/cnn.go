// Package cnn implements Soteria's malware classifier (paper section
// III-C): a 1-D CNN per labeling scheme — two convolutional blocks
// (each two conv layers of 46 filters of size 1x3 with stride 1,
// followed by 2x max-pooling and dropout 0.25) and a classification
// block (dense 512, dropout 0.5, softmax) — plus the majority-voting
// ensemble that combines the per-walk predictions of both CNNs.
package cnn

import (
	"errors"
	"fmt"
	"math/rand"

	"soteria/internal/nn"
	"soteria/internal/obs"
)

// Config parameterizes one CNN classifier.
type Config struct {
	// InputDim is the per-walk feature dimension (paper: 500).
	InputDim int `json:"inputDim"`
	// Classes is the number of output classes (paper: 4).
	Classes int `json:"classes"`
	// Filters per convolutional layer (paper: 46).
	Filters int `json:"filters"`
	// Kernel size (paper: 3).
	Kernel int `json:"kernel"`
	// DenseUnits in the classification block (paper: 512).
	DenseUnits int `json:"denseUnits"`
	// DropoutConv after each conv block (paper: 0.25).
	DropoutConv float64 `json:"dropoutConv"`
	// DropoutFC in the classification block (paper: 0.5).
	DropoutFC float64 `json:"dropoutFC"`
	// Epochs and BatchSize follow the paper (100, 128) by default.
	Epochs    int `json:"epochs"`
	BatchSize int `json:"batchSize"`
	// LR is the Adam learning rate.
	LR float64 `json:"lr"`
	// Seed drives weight init, dropout, and batching.
	Seed int64 `json:"seed"`
	// Hooks observes per-epoch training loss and wall time (nil = off).
	// Write-only: fitted weights are bit-identical with hooks on or off.
	Hooks *obs.TrainHooks `json:"-"`
}

// DefaultConfig returns the paper's classifier parameters for a given
// per-walk feature dimension and class count.
func DefaultConfig(inputDim, classes int) Config {
	return Config{
		InputDim:    inputDim,
		Classes:     classes,
		Filters:     46,
		Kernel:      3,
		DenseUnits:  512,
		DropoutConv: 0.25,
		DropoutFC:   0.5,
		Epochs:      100,
		BatchSize:   128,
		LR:          1e-3,
		Seed:        1,
	}
}

func (c *Config) fill() error {
	if c.InputDim <= 0 || c.Classes <= 1 {
		return fmt.Errorf("cnn: invalid dims: input=%d classes=%d", c.InputDim, c.Classes)
	}
	if c.Filters <= 0 {
		c.Filters = 46
	}
	if c.Kernel <= 0 {
		c.Kernel = 3
	}
	if c.DenseUnits <= 0 {
		c.DenseUnits = 512
	}
	if c.DropoutConv == 0 {
		c.DropoutConv = 0.25
	}
	if c.DropoutFC == 0 {
		c.DropoutFC = 0.5
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	// The two conv blocks need enough sequence length to survive four
	// valid convolutions and two poolings.
	if c.InputDim < 4*c.Kernel+8 {
		return fmt.Errorf("cnn: input dim %d too small for two conv blocks", c.InputDim)
	}
	return nil
}

// Classifier is one trained CNN.
type Classifier struct {
	cfg Config
	net *nn.Network
}

// ErrNoTrainingData is returned when Train receives an empty dataset.
var ErrNoTrainingData = errors.New("cnn: no training data")

// build constructs the paper's network for the config.
func build(cfg Config, rng *rand.Rand) *nn.Network {
	f, k := cfg.Filters, cfg.Kernel
	// ConvB1.
	c1a := nn.NewConv1D(cfg.InputDim, 1, f, k, 1, rng)
	c1b := nn.NewConv1D(c1a.OutLen(), f, f, k, 1, rng)
	p1 := nn.NewMaxPool1D(c1b.OutLen(), f, 2, 2)
	// ConvB2.
	c2a := nn.NewConv1D(p1.OutLen(), f, f, k, 1, rng)
	c2b := nn.NewConv1D(c2a.OutLen(), f, f, k, 1, rng)
	p2 := nn.NewMaxPool1D(c2b.OutLen(), f, 2, 2)
	flat := p2.OutLen() * f
	return nn.NewNetwork(
		c1a, nn.NewReLU(),
		c1b, nn.NewReLU(),
		p1, nn.NewDropout(cfg.DropoutConv, rng),
		c2a, nn.NewReLU(),
		c2b, nn.NewReLU(),
		p2, nn.NewDropout(cfg.DropoutConv, rng),
		nn.NewDense(flat, cfg.DenseUnits, rng), nn.NewReLU(),
		nn.NewDropout(cfg.DropoutFC, rng),
		nn.NewDense(cfg.DenseUnits, cfg.Classes, rng),
	)
}

// Train fits one CNN on per-walk vectors x (rows) with integer class
// labels.
func Train(x *nn.Matrix, labels []int, cfg Config) (*Classifier, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if x.Rows == 0 {
		return nil, ErrNoTrainingData
	}
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("cnn: %d rows but %d labels", x.Rows, len(labels))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := build(cfg, rng)
	tr := nn.Trainer{Net: net, Loss: nn.SoftmaxCrossEntropy{}, Opt: nn.NewAdam(cfg.LR)}
	y := nn.OneHot(labels, cfg.Classes)
	if _, err := tr.Fit(x, y, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed,
		Hooks:     cfg.Hooks,
	}); err != nil {
		return nil, fmt.Errorf("cnn: train: %w", err)
	}
	return &Classifier{cfg: cfg, net: net}, nil
}

// Probs returns class probabilities for each row of x.
func (c *Classifier) Probs(x *nn.Matrix) *nn.Matrix {
	probs := c.net.Predict(x)
	nn.SoftmaxInPlace(probs)
	return probs
}

// Predict returns the argmax class of each row of x.
func (c *Classifier) Predict(x *nn.Matrix) []int {
	return nn.Argmax(c.net.Predict(x))
}

// PredictOne classifies a single vector.
func (c *Classifier) PredictOne(vec []float64) int {
	return c.Predict(nn.FromRows([][]float64{vec}))[0]
}

// Config returns the effective configuration.
func (c *Classifier) Config() Config { return c.cfg }

// Network exposes the underlying network (for persistence).
func (c *Classifier) Network() *nn.Network { return c.net }

// SetFastInference toggles the relaxed-precision inference kernels for
// this classifier's forward passes. Runtime-only: Config carries no
// fast field, so persisted classifiers always restore with fast mode
// off, and training never consults the flag.
func (c *Classifier) SetFastInference(on bool) { c.net.SetFastInference(on) }

// FastInference reports whether relaxed-precision inference is enabled.
func (c *Classifier) FastInference() bool { return c.net.FastInference() }

// Restore rebuilds a classifier from persisted weights.
func Restore(cfg Config, weights []float64) (*Classifier, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	net := build(cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err := net.LoadWeights(weights); err != nil {
		return nil, err
	}
	return &Classifier{cfg: cfg, net: net}, nil
}
