package cnn

import (
	"math/rand"
	"testing"

	"soteria/internal/nn"
)

// classVectors builds separable per-walk vectors: class c carries a bump
// in its own third of the vector plus noise.
func classVectors(rng *rand.Rand, perClass, dim, classes int) (*nn.Matrix, []int) {
	x := nn.NewMatrix(perClass*classes, dim)
	labels := make([]int, perClass*classes)
	seg := dim / classes
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			row := x.Row(c*perClass + i)
			for j := range row {
				row[j] = 0.02 * rng.Float64()
			}
			for j := c * seg; j < (c+1)*seg; j++ {
				row[j] = 0.4 + 0.1*rng.NormFloat64()
			}
			labels[c*perClass+i] = c
		}
	}
	return x, labels
}

func testConfig(dim, classes int) Config {
	cfg := DefaultConfig(dim, classes)
	cfg.Filters = 8
	cfg.DenseUnits = 32
	cfg.Epochs = 40
	cfg.BatchSize = 16
	cfg.Seed = 3
	return cfg
}

func TestTrainAndPredictSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := classVectors(rng, 30, 24, 3)
	c, err := Train(x, labels, testConfig(24, 3))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	testX, testLabels := classVectors(rng, 10, 24, 3)
	pred := c.Predict(testX)
	correct := 0
	for i := range pred {
		if pred[i] == testLabels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(pred)); acc < 0.9 {
		t.Fatalf("accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestPredictOneMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := classVectors(rng, 10, 24, 2)
	cfg := testConfig(24, 2)
	cfg.Epochs = 10
	c, err := Train(x, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := c.Predict(x)
	for i := 0; i < 5; i++ {
		if got := c.PredictOne(x.Row(i)); got != batch[i] {
			t.Fatalf("row %d: PredictOne %d vs batch %d", i, got, batch[i])
		}
	}
}

func TestProbsRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := classVectors(rng, 8, 24, 2)
	cfg := testConfig(24, 2)
	cfg.Epochs = 5
	c, err := Train(x, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probs := c.Probs(x)
	for i := 0; i < probs.Rows; i++ {
		var sum float64
		for _, p := range probs.Row(i) {
			sum += p
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("row %d prob sum = %v", i, sum)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nn.NewMatrix(0, 24), nil, testConfig(24, 2)); err != ErrNoTrainingData {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := Train(nn.NewMatrix(2, 24), []int{0}, testConfig(24, 2)); err == nil {
		t.Fatal("label count mismatch should error")
	}
	if _, err := Train(nn.NewMatrix(2, 10), []int{0, 1}, testConfig(10, 2)); err == nil {
		t.Fatal("too-small input dim should error")
	}
	if _, err := Train(nn.NewMatrix(2, 24), []int{0, 1}, Config{}); err == nil {
		t.Fatal("zero config should error")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(500, 4)
	if cfg.Filters != 46 || cfg.Kernel != 3 || cfg.DenseUnits != 512 {
		t.Fatalf("conv params = %+v", cfg)
	}
	if cfg.DropoutConv != 0.25 || cfg.DropoutFC != 0.5 {
		t.Fatalf("dropout params = %+v", cfg)
	}
	if cfg.Epochs != 100 || cfg.BatchSize != 128 {
		t.Fatalf("training params = %+v", cfg)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := classVectors(rng, 8, 24, 2)
	cfg := testConfig(24, 2)
	cfg.Epochs = 5
	c, err := Train(x, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(c.Config(), c.Network().SaveWeights())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	a, b := c.Predict(x), r.Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored classifier differs")
		}
	}
}

func TestEnsembleVoting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dim, classes, walks := 24, 3, 4
	// Per-walk training rows for both "labelings" (distinct noise).
	dblX, labels := classVectors(rng, 30, dim, classes)
	lblX, _ := classVectors(rng, 30, dim, classes)
	cfg := testConfig(dim, classes)
	e, err := TrainEnsemble(dblX, lblX, labels, cfg)
	if err != nil {
		t.Fatalf("TrainEnsemble: %v", err)
	}
	// Build one test sample per class with `walks` walk vectors each.
	correct := 0
	for c := 0; c < classes; c++ {
		mk := func() [][]float64 {
			m, _ := classVectors(rng, 1, dim, classes)
			out := make([][]float64, walks)
			for w := range out {
				out[w] = append([]float64(nil), m.Row(c)...)
			}
			return out
		}
		got, err := e.Vote(mk(), mk())
		if err != nil {
			t.Fatal(err)
		}
		if got == c {
			correct++
		}
	}
	if correct < classes-1 {
		t.Fatalf("ensemble classified %d/%d classes", correct, classes)
	}
}

func TestEnsembleVoteErrors(t *testing.T) {
	e := &Ensemble{}
	if _, err := e.Vote(nil, nil); err != ErrEmptyEnsemble {
		t.Fatalf("err = %v, want ErrEmptyEnsemble", err)
	}
}

func TestEnsembleMajorityOverridesMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dim, classes := 24, 2
	dblX, labels := classVectors(rng, 25, dim, classes)
	lblX, _ := classVectors(rng, 25, dim, classes)
	cfg := testConfig(dim, classes)
	cfg.Epochs = 30
	e, err := TrainEnsemble(dblX, lblX, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 class-0 walks vs 1 class-1 walk per model: majority must be 0.
	m0, _ := classVectors(rng, 1, dim, classes)
	m1, _ := classVectors(rng, 1, dim, classes)
	walks := [][]float64{m0.Row(0), m0.Row(0), m0.Row(0), m1.Row(1)}
	got, err := e.Vote(walks, walks)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("majority vote = %d, want 0", got)
	}
}
