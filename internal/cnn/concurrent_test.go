package cnn

import (
	"math/rand"
	"sync"
	"testing"

	"soteria/internal/nn"
)

// smallEnsemble trains a tiny two-model ensemble for concurrency tests.
func smallEnsemble(t testing.TB) (*Ensemble, [][]float64, [][]float64) {
	t.Helper()
	const (
		dim     = 24
		classes = 3
		rows    = 36
	)
	rng := rand.New(rand.NewSource(51))
	dblX := nn.NewMatrix(rows, dim)
	lblX := nn.NewMatrix(rows, dim)
	labels := make([]int, rows)
	for i := 0; i < rows; i++ {
		labels[i] = i % classes
		for j := 0; j < dim; j++ {
			dblX.Set(i, j, rng.Float64()+float64(labels[i]))
			lblX.Set(i, j, rng.Float64()-float64(labels[i]))
		}
	}
	cfg := DefaultConfig(dim, classes)
	cfg.Filters = 4
	cfg.DenseUnits = 16
	cfg.Epochs = 1
	cfg.BatchSize = 12
	cfg.Seed = 51
	ens, err := TrainEnsemble(dblX, lblX, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dblWalks := [][]float64{dblX.Row(0), dblX.Row(1)}
	lblWalks := [][]float64{lblX.Row(0), lblX.Row(1)}
	return ens, dblWalks, lblWalks
}

// TestConcurrentEnsembleVote runs ensemble voting from many goroutines
// over the same two trained models; with -race this pins the whole
// conv/pool/dense inference path's freedom from shared mutable state,
// and every vote must match the serial reference.
func TestConcurrentEnsembleVote(t *testing.T) {
	ens, dblWalks, lblWalks := smallEnsemble(t)
	want, err := ens.Vote(dblWalks, lblWalks)
	if err != nil {
		t.Fatal(err)
	}
	wantProbs := ens.DBL.Probs(nn.FromRows(dblWalks))

	var wg sync.WaitGroup
	errc := make(chan string, 64)
	fail := func(msg string) {
		select {
		case errc <- msg:
		default:
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				if g%2 == 0 {
					got, err := ens.Vote(dblWalks, lblWalks)
					if err != nil || got != want {
						fail("ensemble vote diverged under concurrency")
						return
					}
				} else {
					probs := ens.DBL.Probs(nn.FromRows(dblWalks))
					for i := range probs.Data {
						if probs.Data[i] != wantProbs.Data[i] {
							fail("classifier probs diverged under concurrency")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}
