package cnn

import (
	"errors"

	"soteria/internal/nn"
)

// Ensemble is the paper's voting classifier (Fig. 6: "the majority
// vote of the CNN classifiers output probabilities over the feature
// vectors"): one CNN consumes the ten density-based walk vectors of a
// sample, a second consumes the ten level-based vectors, and the
// sample's class maximizes the summed softmax probability over all 20
// per-walk predictions (soft voting, which lets a confident model
// outvote an uncertain one vector-for-vector).
type Ensemble struct {
	DBL *Classifier
	LBL *Classifier
}

// ErrEmptyEnsemble is returned when an ensemble member is missing.
var ErrEmptyEnsemble = errors.New("cnn: ensemble requires both DBL and LBL classifiers")

// TrainEnsemble fits the two CNNs. dblX and lblX hold one row per walk
// (so a sample with ten walks contributes ten rows), with walkLabels
// giving each row's sample class.
func TrainEnsemble(dblX, lblX *nn.Matrix, walkLabels []int, cfg Config) (*Ensemble, error) {
	dbl, err := Train(dblX, walkLabels, cfg)
	if err != nil {
		return nil, err
	}
	lblCfg := cfg
	lblCfg.Seed = cfg.Seed + 1 // independent init for the second model
	lbl, err := Train(lblX, walkLabels, lblCfg)
	if err != nil {
		return nil, err
	}
	return &Ensemble{DBL: dbl, LBL: lbl}, nil
}

// Vote soft-votes over both models' per-walk class probabilities: the
// winning class maximizes total probability mass across all walk
// vectors, with hard-vote count as the tiebreak.
func (e *Ensemble) Vote(dblWalks, lblWalks [][]float64) (int, error) {
	if e.DBL == nil || e.LBL == nil {
		return 0, ErrEmptyEnsemble
	}
	classes := e.DBL.cfg.Classes
	votes := make([]int, classes)
	mass := make([]float64, classes)
	tally := func(m *Classifier, walks [][]float64) {
		if len(walks) == 0 {
			return
		}
		probs := m.Probs(nn.FromRows(walks))
		for i := 0; i < probs.Rows; i++ {
			row := probs.Row(i)
			best := 0
			for j, p := range row {
				mass[j] += p
				if p > row[best] {
					best = j
				}
			}
			votes[best]++
		}
	}
	tally(e.DBL, dblWalks)
	tally(e.LBL, lblWalks)

	best := 0
	for c := 1; c < classes; c++ {
		if mass[c] > mass[best] || (mass[c] == mass[best] && votes[c] > votes[best]) {
			best = c
		}
	}
	return best, nil
}
