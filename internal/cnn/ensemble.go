package cnn

import (
	"errors"
	"fmt"
	"sync"

	"soteria/internal/nn"
)

// Ensemble is the paper's voting classifier (Fig. 6: "the majority
// vote of the CNN classifiers output probabilities over the feature
// vectors"): one CNN consumes the ten density-based walk vectors of a
// sample, a second consumes the ten level-based vectors, and the
// sample's class maximizes the summed softmax probability over all 20
// per-walk predictions (soft voting, which lets a confident model
// outvote an uncertain one vector-for-vector).
type Ensemble struct {
	DBL *Classifier
	LBL *Classifier

	// scratch recycles per-call voting buffers (the walk-row gather
	// matrix and the per-class tallies); each concurrent voter borrows
	// its own set, so voting on a shared ensemble is race-free and, at
	// steady state, allocation-free.
	scratch sync.Pool
}

// voteScratch is one voter's working set.
type voteScratch struct {
	x     *nn.Matrix
	votes []int
	mass  []float64
}

func (e *Ensemble) getScratch() *voteScratch {
	if s, ok := e.scratch.Get().(*voteScratch); ok {
		return s
	}
	return new(voteScratch)
}

// SetFastInference toggles the relaxed-precision inference kernels for
// both member classifiers and switches voting to the fast softmax
// (one division per row instead of one per probability). Runtime-only
// and never persisted; call before serving, not concurrently with
// Vote/VoteBatch.
func (e *Ensemble) SetFastInference(on bool) {
	if e.DBL != nil {
		e.DBL.SetFastInference(on)
	}
	if e.LBL != nil {
		e.LBL.SetFastInference(on)
	}
}

// FastInference reports whether relaxed-precision voting is enabled.
func (e *Ensemble) FastInference() bool {
	return e.DBL != nil && e.DBL.FastInference()
}

// softmax applies the ensemble's current softmax variant: the exact
// per-element-division form by default, the reciprocal-multiply form
// when fast inference is on (m is the member whose logits y holds).
func softmax(m *Classifier, y *nn.Matrix) {
	if m.FastInference() {
		nn.SoftmaxInPlaceFast(y)
	} else {
		nn.SoftmaxInPlace(y)
	}
}

// ensureMat resizes *m to rows x cols, reusing the backing storage
// when possible. Contents are unspecified.
func ensureMat(m **nn.Matrix, rows, cols int) *nn.Matrix {
	if *m == nil || cap((*m).Data) < rows*cols {
		*m = nn.NewMatrix(rows, cols)
		return *m
	}
	(*m).Rows, (*m).Cols, (*m).Data = rows, cols, (*m).Data[:rows*cols]
	return *m
}

// ensureInts resizes an int slice, reusing capacity. Contents are
// unspecified.
func ensureInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

// ensureF64 resizes a float64 slice, reusing capacity. Contents are
// unspecified.
func ensureF64(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// ErrEmptyEnsemble is returned when an ensemble member is missing.
var ErrEmptyEnsemble = errors.New("cnn: ensemble requires both DBL and LBL classifiers")

// TrainEnsemble fits the two CNNs. dblX and lblX hold one row per walk
// (so a sample with ten walks contributes ten rows), with walkLabels
// giving each row's sample class.
func TrainEnsemble(dblX, lblX *nn.Matrix, walkLabels []int, cfg Config) (*Ensemble, error) {
	dbl, err := Train(dblX, walkLabels, cfg)
	if err != nil {
		return nil, err
	}
	lblCfg := cfg
	lblCfg.Seed = cfg.Seed + 1 // independent init for the second model
	lbl, err := Train(lblX, walkLabels, lblCfg)
	if err != nil {
		return nil, err
	}
	return &Ensemble{DBL: dbl, LBL: lbl}, nil
}

// Vote soft-votes over both models' per-walk class probabilities: the
// winning class maximizes total probability mass across all walk
// vectors, with hard-vote count as the tiebreak. Allocation-free at
// steady state and safe for concurrent use on a shared ensemble.
func (e *Ensemble) Vote(dblWalks, lblWalks [][]float64) (int, error) {
	if e.DBL == nil || e.LBL == nil {
		return 0, ErrEmptyEnsemble
	}
	classes := e.DBL.cfg.Classes
	s := e.getScratch()
	votes := ensureInts(&s.votes, classes)
	mass := ensureF64(&s.mass, classes)
	for c := 0; c < classes; c++ {
		votes[c], mass[c] = 0, 0
	}
	e.tallyRows(s, e.DBL, dblWalks, votes, mass)
	e.tallyRows(s, e.LBL, lblWalks, votes, mass)
	best := winner(votes, mass)
	e.scratch.Put(s)
	return best, nil
}

// tallyRows scores one model's walk rows and accumulates their
// soft-vote mass and hard-vote counts, reading the probabilities
// straight from the network's inference arena.
func (e *Ensemble) tallyRows(s *voteScratch, m *Classifier, walks [][]float64, votes []int, mass []float64) {
	if len(walks) == 0 {
		return
	}
	x := ensureMat(&s.x, len(walks), len(walks[0]))
	for i, r := range walks {
		if len(r) != x.Cols {
			panic(fmt.Sprintf("cnn: walk %d has %d features, want %d", i, len(r), x.Cols))
		}
		copy(x.Row(i), r)
	}
	m.net.PredictApply(x, func(y *nn.Matrix) {
		softmax(m, y)
		tallyProbs(y, 0, y.Rows, votes, mass)
	})
}

// tallyProbs accumulates rows [lo, hi) of a probability matrix into the
// per-class tallies. Mass accumulates in ascending class order within
// each row and ascending row order across rows, so any grouping of the
// same rows sums identically.
func tallyProbs(probs *nn.Matrix, lo, hi int, votes []int, mass []float64) {
	for i := lo; i < hi; i++ {
		row := probs.Row(i)
		best := 0
		for j, p := range row {
			mass[j] += p
			if p > row[best] {
				best = j
			}
		}
		votes[best]++
	}
}

// winner applies the soft-vote decision rule: maximum total probability
// mass, hard-vote count as tiebreak, lowest class index on a full tie.
func winner(votes []int, mass []float64) int {
	best := 0
	for c := 1; c < len(mass); c++ {
		if mass[c] > mass[best] || (mass[c] == mass[best] && votes[c] > votes[best]) {
			best = c
		}
	}
	return best
}

// VoteBatch soft-votes a whole batch of samples in one forward per
// labeling: dblX and lblX hold walksPerSample consecutive rows per
// sample (sample i owns rows [i*walksPerSample, (i+1)*walksPerSample)
// of both matrices), and entry i of the result is sample i's winning
// class. Decisions are bit-identical to per-sample Vote calls over the
// same rows: GEMM rows are independent, each sample's probabilities
// accumulate in the same order (its DBL rows ascending, then its LBL
// rows), and the tiebreak rule is shared. Panics on an incomplete
// ensemble or mismatched shapes — a served ensemble always has both
// members, so this is a programming error rather than an input error.
func (e *Ensemble) VoteBatch(dblX, lblX *nn.Matrix, walksPerSample int) []int {
	if walksPerSample <= 0 {
		panic(fmt.Sprintf("cnn: VoteBatch with %d walks per sample", walksPerSample))
	}
	return e.VoteBatchInto(make([]int, dblX.Rows/walksPerSample), dblX, lblX, walksPerSample)
}

// VoteBatchInto is VoteBatch with caller-provided storage (length
// rows/walksPerSample) — allocation-free at steady state and safe for
// concurrent use.
func (e *Ensemble) VoteBatchInto(dst []int, dblX, lblX *nn.Matrix, walksPerSample int) []int {
	if e.DBL == nil || e.LBL == nil {
		panic(ErrEmptyEnsemble)
	}
	wps := walksPerSample
	if wps <= 0 || lblX.Rows != dblX.Rows || dblX.Rows%wps != 0 {
		panic(fmt.Sprintf("cnn: VoteBatch over %dx%d / %dx%d rows with %d walks per sample",
			dblX.Rows, dblX.Cols, lblX.Rows, lblX.Cols, wps))
	}
	n := dblX.Rows / wps
	if len(dst) != n {
		panic(fmt.Sprintf("cnn: VoteBatchInto dst has len %d, want %d", len(dst), n))
	}
	classes := e.DBL.cfg.Classes
	s := e.getScratch()
	votes := ensureInts(&s.votes, n*classes)
	mass := ensureF64(&s.mass, n*classes)
	for i := range votes {
		votes[i], mass[i] = 0, 0
	}
	e.tallyBatch(e.DBL, dblX, wps, classes, votes, mass)
	e.tallyBatch(e.LBL, lblX, wps, classes, votes, mass)
	for i := range dst {
		dst[i] = winner(votes[i*classes:(i+1)*classes], mass[i*classes:(i+1)*classes])
	}
	e.scratch.Put(s)
	return dst
}

// tallyBatch runs one model over every sample's walk rows at once and
// scatters the per-row tallies into each sample's slice of the batch
// tallies.
func (e *Ensemble) tallyBatch(m *Classifier, x *nn.Matrix, wps, classes int, votes []int, mass []float64) {
	if x.Rows == 0 {
		return
	}
	m.net.PredictApply(x, func(y *nn.Matrix) {
		softmax(m, y)
		for smp := 0; smp*wps < y.Rows; smp++ {
			lo := smp * wps
			tallyProbs(y, lo, lo+wps,
				votes[smp*classes:(smp+1)*classes], mass[smp*classes:(smp+1)*classes])
		}
	})
}
