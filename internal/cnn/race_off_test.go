//go:build !race

package cnn

const raceEnabled = false
