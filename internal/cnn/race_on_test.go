//go:build race

package cnn

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count guards skip under it.
const raceEnabled = true
