package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"soteria/internal/disasm"
	"soteria/internal/features"
	"soteria/internal/malgen"
)

var (
	batchOnce     sync.Once
	batchTrainErr error
	batchPipes    map[bool]*Pipeline // keyed by PerWalkDetector
	batchCorpus   []*malgen.Sample
)

// batchEnv trains two tiny pipelines (per-walk detector off and on)
// once for every batched-equivalence test in the package.
func batchEnv(t *testing.T) (map[bool]*Pipeline, []*malgen.Sample) {
	t.Helper()
	batchOnce.Do(func() {
		g := malgen.NewGenerator(malgen.Config{Seed: 13})
		for _, c := range malgen.Classes {
			for i := 0; i < 3; i++ {
				s, err := g.Sample(c)
				if err != nil {
					batchTrainErr = err
					return
				}
				batchCorpus = append(batchCorpus, s)
			}
		}
		batchPipes = make(map[bool]*Pipeline)
		for _, perWalk := range []bool{false, true} {
			opts := testOptions()
			opts.Features.WalkCount = 3
			opts.DetectorEpochs = 8
			opts.ClassifierEpochs = 8
			opts.Filters = 4
			opts.DenseUnits = 16
			opts.PerWalkDetector = perWalk
			p, err := Train(batchCorpus, opts)
			if err != nil {
				batchTrainErr = err
				return
			}
			batchPipes[perWalk] = p
		}
	})
	if batchTrainErr != nil {
		t.Fatal(batchTrainErr)
	}
	return batchPipes, batchCorpus
}

// TestAnalyzeBatchMatchesAnalyze pins the tentpole equivalence: the
// chunked two-stage batch path must reproduce every per-sample Analyze
// decision bit for bit — RE included — with the per-walk detector both
// off and on, across batch sizes.
func TestAnalyzeBatchMatchesAnalyze(t *testing.T) {
	pipes, corpus := batchEnv(t)
	for _, perWalk := range []bool{false, true} {
		p := pipes[perWalk]
		for _, n := range []int{1, 5, len(corpus)} {
			cfgs := make([]*disasm.CFG, n)
			salts := make([]int64, n)
			for i := 0; i < n; i++ {
				cfgs[i] = corpus[i].CFG
				salts[i] = int64(3000 + i)
			}
			decs, err := p.AnalyzeBatch(cfgs, salts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				want, err := p.Analyze(cfgs[i], salts[i])
				if err != nil {
					t.Fatal(err)
				}
				got := decs[i]
				if got.RE != want.RE || got.Adversarial != want.Adversarial || got.Class != want.Class {
					t.Fatalf("perWalk=%v n=%d sample %d: batch {%v %v %v} != analyze {%v %v %v}",
						perWalk, n, i, got.Adversarial, got.RE, got.Class,
						want.Adversarial, want.RE, want.Class)
				}
			}
		}
	}
}

// TestAnalyzeBatchErrors pins input validation and per-sample error
// indexing: mismatched lengths fail up front, and an extraction
// failure names the offending sample. An unfitted pipeline with a nil
// detector must fail cleanly rather than dereference it.
func TestAnalyzeBatchErrors(t *testing.T) {
	pipes, corpus := batchEnv(t)
	p := pipes[false]
	if _, err := p.AnalyzeBatch(make([]*disasm.CFG, 2), make([]int64, 3)); err == nil ||
		!strings.Contains(err.Error(), "2 cfgs but 3 salts") {
		t.Fatalf("length mismatch error = %v", err)
	}

	unfitted := &Pipeline{Extractor: features.NewExtractor(features.Config{})}
	cfgs := []*disasm.CFG{corpus[0].CFG, corpus[1].CFG}
	_, err := unfitted.AnalyzeBatch(cfgs, []int64{0, 1})
	if !errors.Is(err, features.ErrNotFitted) {
		t.Fatalf("unfitted batch error = %v, want ErrNotFitted", err)
	}
	if !strings.Contains(err.Error(), "sample 0") {
		t.Fatalf("error does not name the failing sample: %v", err)
	}
}

// TestBatcherMatchesAnalyze drives the micro-batching front door from
// many concurrent submitters (run it with -race) and requires every
// coalesced decision to be bit-identical to a lone Analyze call with
// the same salt.
func TestBatcherMatchesAnalyze(t *testing.T) {
	pipes, corpus := batchEnv(t)
	p := pipes[false]
	b := NewBatcher(p, BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	defer b.Close()

	var wg sync.WaitGroup
	failures := make([]string, len(corpus)*2)
	for g := 0; g < len(corpus)*2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(corpus)
			salt := int64(5000 + i)
			got, err := b.Submit(corpus[i].CFG, salt)
			if err != nil {
				failures[g] = err.Error()
				return
			}
			want, err := p.Analyze(corpus[i].CFG, salt)
			if err != nil {
				failures[g] = err.Error()
				return
			}
			if got.RE != want.RE || got.Adversarial != want.Adversarial || got.Class != want.Class {
				failures[g] = "decision diverges from Analyze"
			}
		}(g)
	}
	wg.Wait()
	for g, f := range failures {
		if f != "" {
			t.Fatalf("submitter %d: %s", g, f)
		}
	}
}

// TestBatcherPropagatesPerRequestErrors pins that a failing sample
// fails only its own submitter and leaves the batcher serving.
func TestBatcherPropagatesPerRequestErrors(t *testing.T) {
	_, corpus := batchEnv(t)
	unfitted := &Pipeline{Extractor: features.NewExtractor(features.Config{})}
	b := NewBatcher(unfitted, BatcherConfig{MaxBatch: 2, MaxWait: time.Millisecond})
	defer b.Close()
	for i := 0; i < 3; i++ {
		if _, err := b.Submit(corpus[0].CFG, int64(i)); !errors.Is(err, features.ErrNotFitted) {
			t.Fatalf("submit %d: err = %v, want ErrNotFitted", i, err)
		}
	}
}

// TestBatcherCloseMidFlight pins the shutdown contract: Submits racing
// Close return either a real decision or ErrBatcherClosed — never a
// hang and never a zero decision — and Submit after Close (and double
// Close) are safe.
func TestBatcherCloseMidFlight(t *testing.T) {
	pipes, corpus := batchEnv(t)
	p := pipes[false]
	b := NewBatcher(p, BatcherConfig{MaxBatch: 3, MaxWait: 100 * time.Microsecond})

	var wg sync.WaitGroup
	failures := make([]string, 16)
	for g := 0; g < len(failures); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				i := (g + iter) % len(corpus)
				dec, err := b.Submit(corpus[i].CFG, int64(i))
				if err != nil {
					if !errors.Is(err, ErrBatcherClosed) {
						failures[g] = err.Error()
					}
					return
				}
				if dec == nil {
					failures[g] = "nil decision without error"
					return
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	b.Close()
	wg.Wait()
	for g, f := range failures {
		if f != "" {
			t.Fatalf("submitter %d: %s", g, f)
		}
	}
	if _, err := b.Submit(corpus[0].CFG, 0); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrBatcherClosed", err)
	}
	b.Close() // double Close must not panic or hang
}
