package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"soteria/internal/disasm"
	"soteria/internal/obs"
	"soteria/internal/store"
)

// BatcherConfig tunes the micro-batching front door.
type BatcherConfig struct {
	// MaxBatch caps how many requests coalesce into one batched scoring
	// pass. The default tracks analyzeChunkSize (512), so a full batch
	// is exactly one chunk of the analyze pipeline — one set of sharded
	// GEMMs — and never splits into a ragged second chunk.
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is flushed (default 2ms). Lower values
	// favor tail latency, higher values throughput; batch composition
	// never affects results, only speed.
	MaxWait time.Duration
}

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = analyzeChunkSize
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
}

// ErrBatcherClosed is returned by Submit once Close has begun.
var ErrBatcherClosed = errors.New("core: batcher closed")

// request is one caller's unit of work: the input, a completion signal,
// and the slots the collector fills before signaling.
type request struct {
	cfg  *disasm.CFG
	salt int64
	dec  *Decision
	err  error
	done chan struct{}
	// key is the request's cache key; withKey marks it valid (set for
	// every request when the pipeline has a cache attached), which asks
	// the scoring stage to fill the cache with this sample's results.
	key     store.Key
	withKey bool
	// t0 is the queue-wait start stamp, the zero time when the batcher
	// is uninstrumented (obs.Histogram.Start on nil reads no clock).
	t0 time.Time
}

// Batcher is a micro-batching front door for concurrent analyze
// traffic: callers Submit one CFG each, and a collector goroutine
// coalesces up to MaxBatch requests (or as many as arrive within
// MaxWait of the first) into shared batched forwards through the
// pipeline's chunked scoring stage. Coalescing changes only
// throughput, never results: scoring is row-independent and each
// sample's rows land at fixed offsets, so a decision is bit-identical
// to a lone Analyze call with the same salt regardless of which
// requests shared its batch. Errors propagate per request — one
// unparseable sample fails only its submitter.
type Batcher struct {
	p    *Pipeline
	cfg  BatcherConfig
	reqs chan *request // unbuffered: a send is a handoff, never parked
	stop chan struct{}
	done chan struct{}
	once sync.Once

	// collector-only scratch, reused across batches.
	cfgs  []*disasm.CFG
	salts []int64
	keys  []store.Key

	// depth counts requests handed off to the collector but not yet
	// served — the batcher's queue backlog. It is the saturation signal
	// admission control keys on: the fleet front door sheds when a
	// replica's depth says new work cannot be served in time.
	depth atomic.Int64

	// met holds the batcher's metrics; all fields are nil unless the
	// pipeline was Instrumented before NewBatcher.
	met batcherObs
}

// batcherObs is the batcher's metric set: how long requests wait for
// company, how well they coalesce, and why batches flush.
type batcherObs struct {
	waitNs     *obs.Histogram // per-request queue wait, Submit to dispatch
	batchSize  *obs.Histogram // coalesced batch size distribution
	flushFull  *obs.Counter   // batches flushed at MaxBatch
	flushTimer *obs.Counter   // batches flushed by the MaxWait timer
	flushClose *obs.Counter   // batches flushed by Close/drain
	queueDepth *obs.Gauge     // requests handed off but not yet served
	rejected   *obs.Counter   // submissions turned away before handoff
}

// NewBatcher starts a batcher over a trained pipeline. Callers must
// Close it to release the collector goroutine.
func NewBatcher(p *Pipeline, cfg BatcherConfig) *Batcher {
	cfg.fill()
	b := &Batcher{
		p:    p,
		cfg:  cfg,
		reqs: make(chan *request),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if r := p.reg; r != nil {
		b.met = batcherObs{
			waitNs:     r.Histogram("batcher.wait_ns", obs.DurationBuckets()),
			batchSize:  r.Histogram("batcher.batch_size", obs.LinearBuckets(1, 1, cfg.MaxBatch)),
			flushFull:  r.Counter("batcher.flush_full"),
			flushTimer: r.Counter("batcher.flush_timer"),
			flushClose: r.Counter("batcher.flush_close"),
			queueDepth: r.Gauge("batcher.queue_depth"),
			rejected:   r.Counter("batcher.rejected"),
		}
	}
	go b.collect()
	return b
}

// Submit analyzes one CFG through the shared batch stream and blocks
// until its decision is ready. Safe for any number of concurrent
// callers. After Close, Submit returns ErrBatcherClosed; a Submit
// racing Close returns either its decision or ErrBatcherClosed, never
// hangs.
func (b *Batcher) Submit(c *disasm.CFG, salt int64) (*Decision, error) {
	return b.SubmitCtx(context.Background(), c, salt)
}

// SubmitCtx is Submit with cancellation: a caller that gives up —
// typically an HTTP handler whose client disconnected — stops waiting
// at the next select instead of holding its goroutine until the batch
// completes. Cancellation before the handoff withdraws the request
// entirely; after the handoff the work is already coalesced into a
// batch (batch composition never affects other requests' results, so
// the batch runs regardless), and only the wait is abandoned.
//
// With a cache attached to the pipeline, a verdict hit returns without
// ever occupying a batch slot, and concurrent submissions of identical
// (content, salt) coalesce onto one in-flight computation: only the
// first enters the batch stream, the rest wait for its published
// verdict (falling back to their own submission if it fails). Results
// stay bit-identical to uncached Submits.
func (b *Batcher) SubmitCtx(ctx context.Context, c *disasm.CFG, salt int64) (*Decision, error) {
	cache := b.p.cache
	if cache == nil {
		return b.enqueue(ctx, &request{cfg: c, salt: salt, done: make(chan struct{}), t0: b.met.waitNs.Start()})
	}
	k := b.p.cfgKey(c, salt)
	t := b.p.met.cacheHitNs.Start()
	v, hit, fl, leader := cache.Join(k)
	if hit {
		b.p.met.cacheHitNs.Stop(t)
		return decisionOf(v), nil
	}
	if !leader {
		// Another submitter is already computing this key; wait for its
		// verdict rather than duplicating the work in the batch.
		select {
		case <-fl.Done():
			if v, ok := fl.Result(); ok {
				return decisionOf(v), nil
			}
			// The leader failed or gave up: do the work ourselves,
			// uncoordinated (no retry loop — a second failure is ours).
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-b.stop:
			return nil, ErrBatcherClosed
		}
		return b.enqueue(ctx, &request{cfg: c, salt: salt, key: k, withKey: true, done: make(chan struct{}), t0: b.met.waitNs.Start()})
	}
	d, err := b.enqueue(ctx, &request{cfg: c, salt: salt, key: k, withKey: true, done: make(chan struct{}), t0: b.met.waitNs.Start()})
	// Publish to the followers whatever happened — on success the
	// scoring stage already stored the verdict; on failure (including
	// our own cancellation) ok=false sends them back to submit
	// themselves.
	var vv store.Verdict
	if err == nil {
		vv = verdictOf(d)
	}
	cache.Finish(k, fl, vv, err == nil)
	return d, err
}

// enqueue hands one request to the collector and waits for completion.
// The queue-depth gauge brackets the handoff: it rises when the
// collector accepts the request and falls when serve completes it, so
// its value is the number of coalesced-but-unserved requests — the
// backlog admission control reads. A submission turned away before the
// handoff (closed batcher, cancelled context) counts as rejected
// instead; a caller that abandons its wait after the handoff does not,
// because the batch still serves its slot.
func (b *Batcher) enqueue(ctx context.Context, r *request) (*Decision, error) {
	select {
	case b.reqs <- r:
	case <-b.stop:
		b.met.rejected.Inc()
		return nil, ErrBatcherClosed
	case <-ctx.Done():
		b.met.rejected.Inc()
		return nil, ctx.Err()
	}
	select {
	case <-r.done:
		return r.dec, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueueDepth reports how many requests have been handed to the
// collector but not yet served — the batcher's current backlog.
// Safe for concurrent use; in-process admission control (a co-located
// fleet front door) reads it directly, remote consumers read the
// "batcher.queue_depth" gauge from /metrics.
func (b *Batcher) QueueDepth() int { return int(b.depth.Load()) }

// accept records one received request into the current batch, stepping
// the queue depth. Depth moves only on the collector goroutine (up
// here, down in serve), so the gauge can never transiently undercount
// a submitter racing a flush.
func (b *Batcher) accept(batch []*request, r *request) []*request {
	b.met.queueDepth.Set(float64(b.depth.Add(1)))
	return append(batch, r)
}

// Close stops accepting new requests, serves every request already
// handed off, and waits for the collector to exit. Safe to call more
// than once.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.stop) })
	<-b.done
}

// collect is the batcher's only consumer: it gathers the first request
// of each batch, tops the batch up until MaxBatch or MaxWait, and
// serves it. reqs is unbuffered, so every request it receives was a
// synchronous handoff from a live submitter — on shutdown, whatever is
// still being offered is drained without blocking and served, and every
// later submitter sees the closed stop channel instead.
func (b *Batcher) collect() {
	defer close(b.done)
	var batch []*request
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		batch = batch[:0]
		select {
		case r := <-b.reqs:
			batch = b.accept(batch, r)
		case <-b.stop:
			b.drain(batch)
			return
		}
		timer.Reset(b.cfg.MaxWait)
		waiting := true
		for waiting && len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.reqs:
				batch = b.accept(batch, r)
			case <-timer.C:
				waiting = false
			case <-b.stop:
				timer.Stop()
				b.serve(batch, b.met.flushClose)
				b.drain(batch[:0])
				return
			}
		}
		if waiting {
			// The inner loop exited with the timer still pending, so the
			// batch reached MaxBatch.
			if !timer.Stop() {
				<-timer.C
			}
			b.serve(batch, b.met.flushFull)
		} else {
			b.serve(batch, b.met.flushTimer)
		}
	}
}

// drain serves every request still being offered on reqs, then returns.
func (b *Batcher) drain(batch []*request) {
	for {
		select {
		case r := <-b.reqs:
			batch = b.accept(batch, r)
			if len(batch) >= b.cfg.MaxBatch {
				b.serve(batch, b.met.flushClose)
				batch = batch[:0]
			}
		default:
			b.serve(batch, b.met.flushClose)
			return
		}
	}
}

// serve runs one coalesced batch through the pipeline and completes
// each request with its own decision or error. reason counts why the
// batch flushed (full, timer, or close; nil when uninstrumented).
func (b *Batcher) serve(batch []*request, reason *obs.Counter) {
	if len(batch) == 0 {
		return
	}
	reason.Inc()
	b.met.batchSize.Observe(float64(len(batch)))
	b.cfgs = b.cfgs[:0]
	b.salts = b.salts[:0]
	b.keys = b.keys[:0]
	withKeys := true
	for _, r := range batch {
		b.cfgs = append(b.cfgs, r.cfg)
		b.salts = append(b.salts, r.salt)
		b.keys = append(b.keys, r.key)
		if !r.withKey {
			withKeys = false
		}
		b.met.waitNs.Stop(r.t0)
	}
	var keys []store.Key
	if withKeys && b.p.cache != nil {
		keys = b.keys
	}
	decs, errs := b.p.analyzeBatch(b.cfgs, b.salts, keys)
	for i, r := range batch {
		r.dec, r.err = decs[i], errs[i]
		close(r.done)
	}
	b.met.queueDepth.Set(float64(b.depth.Add(int64(-len(batch)))))
	// Drop the scratch's CFG references now that the batch is served:
	// the entries would otherwise pin the last batch's graphs until the
	// next serve (or forever, on the final batch before Close). Every
	// earlier, longer batch cleared its own entries the same way, so the
	// whole backing array holds no live CFGs between batches.
	for i := range b.cfgs {
		b.cfgs[i] = nil
	}
}
