package core

import (
	"errors"
	"sync"
	"time"

	"soteria/internal/disasm"
)

// BatcherConfig tunes the micro-batching front door.
type BatcherConfig struct {
	// MaxBatch caps how many requests coalesce into one batched scoring
	// pass. Default analyzeChunkSize, so a full batch is exactly one
	// chunk of the analyze pipeline.
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is flushed (default 2ms). Lower values
	// favor tail latency, higher values throughput; batch composition
	// never affects results, only speed.
	MaxWait time.Duration
}

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = analyzeChunkSize
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
}

// ErrBatcherClosed is returned by Submit once Close has begun.
var ErrBatcherClosed = errors.New("core: batcher closed")

// request is one caller's unit of work: the input, a completion signal,
// and the slots the collector fills before signaling.
type request struct {
	cfg  *disasm.CFG
	salt int64
	dec  *Decision
	err  error
	done chan struct{}
}

// Batcher is a micro-batching front door for concurrent analyze
// traffic: callers Submit one CFG each, and a collector goroutine
// coalesces up to MaxBatch requests (or as many as arrive within
// MaxWait of the first) into shared batched forwards through the
// pipeline's chunked scoring stage. Coalescing changes only
// throughput, never results: scoring is row-independent and each
// sample's rows land at fixed offsets, so a decision is bit-identical
// to a lone Analyze call with the same salt regardless of which
// requests shared its batch. Errors propagate per request — one
// unparseable sample fails only its submitter.
type Batcher struct {
	p    *Pipeline
	cfg  BatcherConfig
	reqs chan *request // unbuffered: a send is a handoff, never parked
	stop chan struct{}
	done chan struct{}
	once sync.Once

	// collector-only scratch, reused across batches.
	cfgs  []*disasm.CFG
	salts []int64
}

// NewBatcher starts a batcher over a trained pipeline. Callers must
// Close it to release the collector goroutine.
func NewBatcher(p *Pipeline, cfg BatcherConfig) *Batcher {
	cfg.fill()
	b := &Batcher{
		p:    p,
		cfg:  cfg,
		reqs: make(chan *request),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.collect()
	return b
}

// Submit analyzes one CFG through the shared batch stream and blocks
// until its decision is ready. Safe for any number of concurrent
// callers. After Close, Submit returns ErrBatcherClosed; a Submit
// racing Close returns either its decision or ErrBatcherClosed, never
// hangs.
func (b *Batcher) Submit(c *disasm.CFG, salt int64) (*Decision, error) {
	r := &request{cfg: c, salt: salt, done: make(chan struct{})}
	select {
	case b.reqs <- r:
	case <-b.stop:
		return nil, ErrBatcherClosed
	}
	<-r.done
	return r.dec, r.err
}

// Close stops accepting new requests, serves every request already
// handed off, and waits for the collector to exit. Safe to call more
// than once.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.stop) })
	<-b.done
}

// collect is the batcher's only consumer: it gathers the first request
// of each batch, tops the batch up until MaxBatch or MaxWait, and
// serves it. reqs is unbuffered, so every request it receives was a
// synchronous handoff from a live submitter — on shutdown, whatever is
// still being offered is drained without blocking and served, and every
// later submitter sees the closed stop channel instead.
func (b *Batcher) collect() {
	defer close(b.done)
	var batch []*request
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		batch = batch[:0]
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
		case <-b.stop:
			b.drain(batch)
			return
		}
		timer.Reset(b.cfg.MaxWait)
		waiting := true
		for waiting && len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				waiting = false
			case <-b.stop:
				timer.Stop()
				b.serve(batch)
				b.drain(batch[:0])
				return
			}
		}
		if waiting && !timer.Stop() {
			<-timer.C
		}
		b.serve(batch)
	}
}

// drain serves every request still being offered on reqs, then returns.
func (b *Batcher) drain(batch []*request) {
	for {
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
			if len(batch) >= b.cfg.MaxBatch {
				b.serve(batch)
				batch = batch[:0]
			}
		default:
			b.serve(batch)
			return
		}
	}
}

// serve runs one coalesced batch through the pipeline and completes
// each request with its own decision or error.
func (b *Batcher) serve(batch []*request) {
	if len(batch) == 0 {
		return
	}
	b.cfgs = b.cfgs[:0]
	b.salts = b.salts[:0]
	for _, r := range batch {
		b.cfgs = append(b.cfgs, r.cfg)
		b.salts = append(b.salts, r.salt)
	}
	decs, errs := b.p.analyzeBatch(b.cfgs, b.salts)
	for i, r := range batch {
		r.dec, r.err = decs[i], errs[i]
		close(r.done)
	}
}
