package core

import (
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/obs"
)

// TestBatcherDefaultTracksChunkSize pins the MaxBatch default to the
// analyze pipeline's chunk size: a full default batch must fill exactly
// one scoring chunk, so retuning analyzeChunkSize retunes the batcher
// with it instead of silently splitting batches.
func TestBatcherDefaultTracksChunkSize(t *testing.T) {
	var cfg BatcherConfig
	cfg.fill()
	if cfg.MaxBatch != analyzeChunkSize {
		t.Fatalf("default MaxBatch = %d, want analyzeChunkSize (%d)", cfg.MaxBatch, analyzeChunkSize)
	}
}

// TestFullBatchScoresInOnePass is the regression companion: a batch of
// exactly analyzeChunkSize samples must run one scoring pass (one
// chunk, one set of sharded GEMMs), and one extra sample spills into
// exactly one more.
func TestFullBatchScoresInOnePass(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline training")
	}
	pipes, corpus := batchEnv(t)
	p := pipes[false]
	p.Instrument(obs.NewRegistry())

	mk := func(n int) ([]*disasm.CFG, []int64) {
		cfgs := make([]*disasm.CFG, n)
		salts := make([]int64, n)
		for i := range cfgs {
			cfgs[i] = corpus[i%len(corpus)].CFG
			salts[i] = int64(i)
		}
		return cfgs, salts
	}

	cfgs, salts := mk(analyzeChunkSize)
	before := p.met.scoreNs.Count()
	if _, err := p.AnalyzeBatch(cfgs, salts); err != nil {
		t.Fatal(err)
	}
	if got := p.met.scoreNs.Count() - before; got != 1 {
		t.Fatalf("full-sized batch ran %d scoring passes, want exactly 1", got)
	}

	cfgs, salts = mk(analyzeChunkSize + 1)
	before = p.met.scoreNs.Count()
	if _, err := p.AnalyzeBatch(cfgs, salts); err != nil {
		t.Fatal(err)
	}
	if got := p.met.scoreNs.Count() - before; got != 2 {
		t.Fatalf("chunk-plus-one batch ran %d scoring passes, want exactly 2", got)
	}
}
