// Serving-path benchmarks: the scoring stage of AnalyzeBatch (detector
// reconstruction errors + ensemble votes over a pre-extracted corpus),
// its opt-in fast-mode twin, the end-to-end batch analyze path, and the
// content-addressed cache's hit path and repeat-rate throughput.
// Recorded per PR as BENCH_<n>.json — most recently BENCH_7.json
// (result cache) against BENCH_7_BASELINE.json via
//
//	SOTERIA_BENCH_NOCACHE=1 go run ./cmd/benchreport -pkg ./internal/core \
//	    -bench 'AnalyzeCached|BatcherThroughput' -out BENCH_7_BASELINE.json
//	go run ./cmd/benchreport -pkg ./internal/core \
//	    -bench 'AnalyzeCached|BatcherThroughput' \
//	    -out BENCH_7.json -baseline BENCH_7_BASELINE.json
//
// SOTERIA_BENCH_NOCACHE=1 runs the cache-eligible benchmarks without a
// cache attached, so a baseline diff isolates exactly what memoization
// buys (and costs, at 0% repeat rate) on identical workloads.
package core

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/features"
	"soteria/internal/malgen"
	"soteria/internal/store"
)

const benchSamples = 64

var (
	benchOnce sync.Once
	benchErr  error
	benchPipe *Pipeline
	benchCFGs []*disasm.CFG
	benchRaws [][]byte
	benchVecs []*features.Vectors
)

// benchEnv trains a small pipeline once and pre-extracts features for
// benchSamples CFGs, so scoring-stage benchmarks exclude extraction.
func benchEnv(b *testing.B) (*Pipeline, []*disasm.CFG, []*features.Vectors) {
	b.Helper()
	benchOnce.Do(func() {
		gen := malgen.NewGenerator(malgen.Config{Seed: 11})
		var samples []*malgen.Sample
		for i := 0; i < benchSamples; i++ {
			s, err := gen.Sample(malgen.Classes[i%len(malgen.Classes)])
			if err != nil {
				benchErr = err
				return
			}
			samples = append(samples, s)
		}
		opts := testOptions()
		opts.DetectorEpochs = 15
		opts.ClassifierEpochs = 15
		benchPipe, benchErr = Train(samples, opts)
		if benchErr != nil {
			return
		}
		benchCFGs = make([]*disasm.CFG, len(samples))
		benchRaws = make([][]byte, len(samples))
		salts := make([]int64, len(samples))
		for i, s := range samples {
			benchCFGs[i] = s.CFG
			if benchRaws[i], benchErr = s.Binary.Encode(); benchErr != nil {
				return
			}
			salts[i] = int64(i)
		}
		benchVecs, benchErr = benchPipe.Extractor.ExtractBatch(benchCFGs, salts)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchPipe, benchCFGs, benchVecs
}

// fillBenchChunk lays pre-extracted vectors into one chunk buffer
// exactly as extractChunk would, so scoring benchmarks exercise
// scoreChunk alone.
func fillBenchChunk(p *Pipeline, c *chunkBuf, vecs []*features.Vectors) {
	wc := p.Extractor.Config().WalkCount
	perWalk := p.opts.PerWalkDetector
	n := len(vecs)
	c.lo, c.n = 0, n
	c.dblX = ensureMat(&c.dblX, n*wc, p.Extractor.WalkDim())
	c.lblX = ensureMat(&c.lblX, n*wc, p.Extractor.WalkDim())
	if perWalk {
		c.detX = ensureMat(&c.detX, n*wc, p.Extractor.Dim())
		c.groups = ensureInts(&c.groups, n*wc)
		for r := range c.groups {
			c.groups[r] = r / wc
		}
	} else {
		c.detX = ensureMat(&c.detX, n, p.Extractor.Dim())
	}
	c.errs = ensureErrs(&c.errs, n)
	for i, v := range vecs {
		c.errs[i] = nil
		for w := 0; w < wc; w++ {
			copy(c.dblX.Row(i*wc+w), v.DBL[w])
			copy(c.lblX.Row(i*wc+w), v.LBL[w])
			if perWalk {
				copy(c.detX.Row(i*wc+w), v.CombinedWalks[w])
			}
		}
		if !perWalk {
			copy(c.detX.Row(i), v.Combined)
		}
	}
}

// BenchmarkAnalyzeBatch measures the scoring stage over a pre-extracted
// 64-sample corpus — one batched standardize+forward+RMSE pass for the
// detector and one batched forward per labeling for the ensemble,
// exactly the work AnalyzeBatch performs after extraction.
func BenchmarkAnalyzeBatch(b *testing.B) {
	p, _, vecs := benchEnv(b)
	c := p.getChunk()
	fillBenchChunk(p, c, vecs)
	out := make([]*Decision, len(vecs))
	errs := make([]error, len(vecs))
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		p.scoreChunk(c, out, errs, nil)
	}
	b.ReportMetric(float64(len(vecs))*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkAnalyzeBatchFast is BenchmarkAnalyzeBatch with the opt-in
// relaxed-precision scoring mode enabled (FMA micro-kernel, fused
// softmax, zero-quad skipping), so BENCH_<n>.json records both modes
// side by side. The flag is restored afterwards: benchEnv's pipeline is
// shared across benchmarks and the others measure the default
// bit-exact mode.
func BenchmarkAnalyzeBatchFast(b *testing.B) {
	p, _, vecs := benchEnv(b)
	p.SetFastScoring(true)
	defer p.SetFastScoring(false)
	c := p.getChunk()
	fillBenchChunk(p, c, vecs)
	out := make([]*Decision, len(vecs))
	errs := make([]error, len(vecs))
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		p.scoreChunk(c, out, errs, nil)
	}
	b.ReportMetric(float64(len(vecs))*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkBatcherThroughput measures the micro-batching front door
// end to end: 8 concurrent submitters streaming single-CFG requests
// that the collector coalesces into shared batched passes.
func BenchmarkBatcherThroughput(b *testing.B) {
	p, cfgs, _ := benchEnv(b)
	const submitters = 8
	bat := NewBatcher(p, BatcherConfig{MaxBatch: submitters})
	defer bat.Close()
	var next atomic.Int64
	b.SetParallelism(submitters)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)-1) % len(cfgs)
			if _, err := bat.Submit(cfgs[i], int64(i)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// benchNoCache reports whether SOTERIA_BENCH_NOCACHE asks the
// cache-eligible benchmarks to run without a cache, recording the
// uncached cost of the identical workload for a baseline diff.
func benchNoCache() bool { return os.Getenv("SOTERIA_BENCH_NOCACHE") != "" }

// attachBenchCache attaches a fresh in-memory cache to the shared bench
// pipeline (unless SOTERIA_BENCH_NOCACHE is set) and returns a cleanup
// that detaches it, so the other benchmarks keep measuring the uncached
// path.
func attachBenchCache(b *testing.B, p *Pipeline) func() {
	b.Helper()
	if benchNoCache() {
		return func() {}
	}
	c, err := store.Open(store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.AttachCache(c); err != nil {
		b.Fatal(err)
	}
	return func() {
		if err := p.AttachCache(nil); err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeCachedHit measures a warm verdict-tier hit on
// AnalyzeBinary: sha256 the submission, look up the decision, skip
// parse/disassembly/extraction/scoring entirely. With
// SOTERIA_BENCH_NOCACHE=1 the same calls run uncached, so the baseline
// diff is the full miss-vs-hit cost of one repeat submission.
func BenchmarkAnalyzeCachedHit(b *testing.B) {
	p, _, _ := benchEnv(b)
	detach := attachBenchCache(b, p)
	defer detach()
	if !benchNoCache() {
		for i, raw := range benchRaws {
			if _, err := p.AnalyzeBinary(raw, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		i := it % len(benchRaws)
		if _, err := p.AnalyzeBinary(benchRaws[i], int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatcherRepeat streams 8 concurrent submitters through the
// Batcher with the given percentage of repeat submissions (same CFG and
// salt as an earlier request — a singleflight/cache hit once warm);
// the rest carry never-repeating salts and always take the full scoring
// path. At 0% the benchmark prices the cache's bookkeeping overhead on
// a miss-only stream; at 100% it prices pure hit throughput.
func benchBatcherRepeat(b *testing.B, pct int) {
	p, cfgs, _ := benchEnv(b)
	detach := attachBenchCache(b, p)
	defer detach()
	const submitters = 8
	bat := NewBatcher(p, BatcherConfig{MaxBatch: submitters})
	defer bat.Close()
	var next atomic.Int64
	b.SetParallelism(submitters)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := next.Add(1) - 1
			i := int(n) % len(cfgs)
			salt := int64(i)
			if int(n%100) >= pct {
				// Unique key: salts from this range are never reused.
				salt = 1_000_000 + n
			}
			if _, err := bat.Submit(cfgs[i], salt); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkBatcherThroughputRepeat0(b *testing.B)   { benchBatcherRepeat(b, 0) }
func BenchmarkBatcherThroughputRepeat50(b *testing.B)  { benchBatcherRepeat(b, 50) }
func BenchmarkBatcherThroughputRepeat100(b *testing.B) { benchBatcherRepeat(b, 100) }

// BenchmarkAnalyzeBatchEndToEnd measures the full AnalyzeBatch call —
// extraction plus scoring — over the same corpus.
func BenchmarkAnalyzeBatchEndToEnd(b *testing.B) {
	p, cfgs, _ := benchEnv(b)
	salts := make([]int64, len(cfgs))
	for i := range salts {
		salts[i] = int64(i)
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		if _, err := p.AnalyzeBatch(cfgs, salts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}
