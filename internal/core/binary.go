package core

import (
	"fmt"

	"soteria/internal/isa"
)

func parseBinary(raw []byte) (*isa.Binary, error) {
	bin, err := isa.DecodeBinary(raw)
	if err != nil {
		return nil, fmt.Errorf("core: parse binary: %w", err)
	}
	return bin, nil
}
