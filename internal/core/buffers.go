package core

import "soteria/internal/nn"

// Buffer-reuse helpers for the analyze pipeline's chunk slots. All
// follow the same contract: resize to the requested size, reuse the
// backing storage when it is large enough, contents unspecified.

func ensureMat(m **nn.Matrix, rows, cols int) *nn.Matrix {
	if *m == nil || cap((*m).Data) < rows*cols {
		*m = nn.NewMatrix(rows, cols)
		return *m
	}
	(*m).Rows, (*m).Cols, (*m).Data = rows, cols, (*m).Data[:rows*cols]
	return *m
}

func ensureF64(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

func ensureInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

func ensureErrs(s *[]error, n int) []error {
	if cap(*s) < n {
		*s = make([]error, n)
	}
	*s = (*s)[:n]
	return *s
}

func zeroRow(row []float64) {
	for j := range row {
		row[j] = 0
	}
}
