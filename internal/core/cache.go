package core

// Cache integration: an attached store.Cache memoizes final verdicts
// and extracted feature vectors keyed by (content hash, salt, model
// fingerprint). The verdict tier turns a repeat submission into a hash
// lookup that skips parsing, disassembly, extraction and scoring; the
// feature tier skips extraction (the dominant cost) when only the
// verdict entry was evicted. Keys carry the model fingerprint, so a
// retrained or different model can never serve another model's
// results, and all cached decisions are bit-identical to the uncached
// path by construction — the cache stores outputs, it never changes
// how they are computed.

import (
	"crypto/sha256"
	"encoding/binary"

	"soteria/internal/disasm"
	"soteria/internal/features"
	"soteria/internal/malgen"
	"soteria/internal/store"
)

// AttachCache attaches (nil detaches) a result cache to the pipeline,
// pinning the current model fingerprint into every key it writes. Not
// safe to call concurrently with Analyze calls — attach before
// serving. Attaching fails only if the model cannot be serialized.
func (p *Pipeline) AttachCache(c *store.Cache) error {
	if c == nil {
		p.cache = nil
		return nil
	}
	fp, err := p.Fingerprint()
	if err != nil {
		return err
	}
	p.modelFP = fp
	p.cache = c
	return nil
}

// Cache returns the attached cache, nil when uncached.
func (p *Pipeline) Cache() *store.Cache { return p.cache }

// byteKey keys a raw binary submission. sha256.Sum256 keeps the
// verdict-hit path allocation-free.
func (p *Pipeline) byteKey(raw []byte, salt int64) store.Key {
	return store.Key{Content: sha256.Sum256(raw), Salt: salt, Model: p.modelFP}
}

// cfgKey keys an already-disassembled CFG by a canonical structural
// digest. Extraction depends only on the graph's node count, entry
// node, edge set, salt, and the (fingerprinted) extractor config —
// never on block contents — so two CFGs with identical structure are
// interchangeable inputs and may share cache entries. The digest is
// domain-separated from byteKey's raw-content hashes.
func (p *Pipeline) cfgKey(c *disasm.CFG, salt int64) store.Key {
	h := sha256.New()
	var buf [16]byte
	copy(buf[:], "soteria/cfg/v1\x00\x00")
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:8], uint64(c.G.NumNodes()))
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.EntryNode()))
	h.Write(buf[:])
	for _, e := range c.G.Edges() {
		binary.LittleEndian.PutUint64(buf[:8], uint64(e[0]))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e[1]))
		h.Write(buf[:])
	}
	var k store.Key
	h.Sum(k.Content[:0])
	k.Salt = salt
	k.Model = p.modelFP
	return k
}

func verdictOf(d *Decision) store.Verdict {
	return store.Verdict{Adversarial: d.Adversarial, RE: d.RE, Class: int32(d.Class)}
}

func decisionOf(v store.Verdict) *Decision {
	return &Decision{Adversarial: v.Adversarial, RE: v.RE, Class: malgen.Class(v.Class)}
}

// packVectors flattens one sample's extracted representations into the
// feature tier's blob: WalkCount DBL rows, WalkCount LBL rows, then
// the detector input (per-walk combined rows or the single aggregated
// vector, matching the pipeline's detector mode — the mode is part of
// the fingerprinted Options, so a blob can never be replayed under the
// other mode).
func (p *Pipeline) packVectors(v *features.Vectors) []float64 {
	wc := p.Extractor.Config().WalkCount
	blob := make([]float64, 0, p.featureBlobLen())
	for w := 0; w < wc; w++ {
		blob = append(blob, v.DBL[w]...)
	}
	for w := 0; w < wc; w++ {
		blob = append(blob, v.LBL[w]...)
	}
	if p.opts.PerWalkDetector {
		for w := 0; w < wc; w++ {
			blob = append(blob, v.CombinedWalks[w]...)
		}
	} else {
		blob = append(blob, v.Combined...)
	}
	return blob
}

// packChunkVectors is packVectors reading chunk sample i's rows out of
// the analyze pipeline's chunk matrices (which hold exactly the same
// values ExtractInto produced).
func (p *Pipeline) packChunkVectors(c *chunkBuf, i, wc int) []float64 {
	blob := make([]float64, 0, p.featureBlobLen())
	for w := 0; w < wc; w++ {
		blob = append(blob, c.dblX.Row(i*wc+w)...)
	}
	for w := 0; w < wc; w++ {
		blob = append(blob, c.lblX.Row(i*wc+w)...)
	}
	if p.opts.PerWalkDetector {
		for w := 0; w < wc; w++ {
			blob = append(blob, c.detX.Row(i*wc+w)...)
		}
	} else {
		blob = append(blob, c.detX.Row(i)...)
	}
	return blob
}

func (p *Pipeline) featureBlobLen() int {
	wc := p.Extractor.Config().WalkCount
	n := 2 * wc * p.Extractor.WalkDim()
	if p.opts.PerWalkDetector {
		n += wc * p.Extractor.Dim()
	} else {
		n += p.Extractor.Dim()
	}
	return n
}

// unpackVectors rebuilds a Vectors view over a cached blob (the slices
// alias the blob, which is read-only shared cache memory — scoring
// never mutates its inputs). A blob whose length does not match the
// current extractor shape is rejected, turning it into a miss.
func (p *Pipeline) unpackVectors(blob []float64) (*features.Vectors, bool) {
	if len(blob) != p.featureBlobLen() {
		return nil, false
	}
	wc := p.Extractor.Config().WalkCount
	wd := p.Extractor.WalkDim()
	v := &features.Vectors{
		DBL: make([][]float64, wc),
		LBL: make([][]float64, wc),
	}
	off := 0
	for w := 0; w < wc; w++ {
		v.DBL[w] = blob[off : off+wd : off+wd]
		off += wd
	}
	for w := 0; w < wc; w++ {
		v.LBL[w] = blob[off : off+wd : off+wd]
		off += wd
	}
	dim := p.Extractor.Dim()
	if p.opts.PerWalkDetector {
		v.CombinedWalks = make([][]float64, wc)
		for w := 0; w < wc; w++ {
			v.CombinedWalks[w] = blob[off : off+dim : off+dim]
			off += dim
		}
	} else {
		v.Combined = blob[off : off+dim : off+dim]
	}
	return v, true
}

// scoreCachedFeatures serves key k from the feature tier: on a hit the
// cached vectors are scored (skipping parse, disassembly and
// extraction) and the verdict tier is backfilled. ok is false on a
// tier miss or a shape-mismatched blob.
func (p *Pipeline) scoreCachedFeatures(k store.Key) (d *Decision, ok bool, err error) {
	blob, hit := p.cache.Features(k)
	if !hit {
		return nil, false, nil
	}
	v, valid := p.unpackVectors(blob)
	if !valid {
		return nil, false, nil
	}
	d, err = p.scoreVectors(v)
	if err != nil {
		return nil, true, err
	}
	p.cache.PutVerdict(k, verdictOf(d))
	return d, true, nil
}

// fillCache stores both tiers for a freshly computed (vectors,
// decision) pair.
func (p *Pipeline) fillCache(k store.Key, v *features.Vectors, d *Decision) {
	p.cache.PutFeatures(k, p.packVectors(v))
	p.cache.PutVerdict(k, verdictOf(d))
}
