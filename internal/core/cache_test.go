package core

import (
	"bytes"
	"sync"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/malgen"
	"soteria/internal/obs"
	"soteria/internal/store"
)

// The cache tests share one small trained pipeline (training dominates
// the test time; the cache behaviours under test are all post-training).
var (
	cacheTestOnce sync.Once
	cacheTestPipe *Pipeline
	cacheTestReg  *obs.Registry
	cacheTestRaws [][]byte
	cacheTestErr  error
)

func cachePipeline(t *testing.T) (*Pipeline, *obs.Registry, [][]byte) {
	t.Helper()
	if testing.Short() {
		t.Skip("full pipeline training")
	}
	cacheTestOnce.Do(func() {
		g := malgen.NewGenerator(malgen.Config{Seed: 7})
		var samples []*malgen.Sample
		for _, c := range malgen.Classes {
			for i := 0; i < 6; i++ {
				s, err := g.Sample(c)
				if err != nil {
					cacheTestErr = err
					return
				}
				samples = append(samples, s)
			}
		}
		opts := testOptions()
		opts.DetectorEpochs = 10
		opts.ClassifierEpochs = 5
		cacheTestPipe, cacheTestErr = Train(samples, opts)
		if cacheTestErr != nil {
			return
		}
		cacheTestReg = obs.NewRegistry()
		cacheTestPipe.Instrument(cacheTestReg)
		for _, s := range samples {
			raw, err := s.Binary.Encode()
			if err != nil {
				cacheTestErr = err
				return
			}
			cacheTestRaws = append(cacheTestRaws, raw)
		}
	})
	if cacheTestErr != nil {
		t.Fatal(cacheTestErr)
	}
	return cacheTestPipe, cacheTestReg, cacheTestRaws
}

func memCache(t *testing.T) *store.Cache {
	t.Helper()
	c, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	})
	return c
}

func sameDecision(a, b *Decision) bool {
	return a.Adversarial == b.Adversarial && a.RE == b.RE && a.Class == b.Class
}

// TestCachedDecisionEquivalence pins the acceptance property: for the
// same (content, salt, model), the uncached path, the cache-miss path,
// the verdict-hit path, and the feature-tier-only path all produce
// bit-identical decisions.
func TestCachedDecisionEquivalence(t *testing.T) {
	p, _, raws := cachePipeline(t)
	raw := raws[0]
	const salt = 42

	baseline, err := p.AnalyzeBinary(raw, salt) // uncached
	if err != nil {
		t.Fatal(err)
	}

	c := memCache(t)
	if err := p.AttachCache(c); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.AttachCache(nil); err != nil {
			t.Fatal(err)
		}
	}()

	miss, err := p.AnalyzeBinary(raw, salt) // full miss, fills both tiers
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(baseline, miss) {
		t.Fatalf("miss path differs: %+v vs %+v", miss, baseline)
	}
	if c.Len() != 2 {
		t.Fatalf("miss filled %d entries, want verdict+features", c.Len())
	}
	hit, err := p.AnalyzeBinary(raw, salt) // verdict hit
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(baseline, hit) {
		t.Fatalf("verdict-hit path differs: %+v vs %+v", hit, baseline)
	}

	// Feature-tier-only: a fresh cache seeded with just the feature blob
	// (the state after a verdict eviction) must rescore to the identical
	// decision and backfill the verdict tier.
	k := p.byteKey(raw, salt)
	blob, ok := c.Features(k)
	if !ok {
		t.Fatal("feature tier not filled")
	}
	c2 := memCache(t)
	c2.PutFeatures(k, append([]float64(nil), blob...))
	if err := p.AttachCache(c2); err != nil {
		t.Fatal(err)
	}
	featHit, err := p.AnalyzeBinary(raw, salt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(baseline, featHit) {
		t.Fatalf("feature-hit path differs: %+v vs %+v", featHit, baseline)
	}
	if _, ok := c2.Verdict(k); !ok {
		t.Fatal("feature hit did not backfill the verdict tier")
	}

	// Different salt must not be served from the cache.
	other, err := p.AnalyzeBinary(raw, salt+1)
	if err != nil {
		t.Fatal(err)
	}
	otherBase, err := p.Analyze(mustCFG(t, p, raw), salt+1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(other, otherBase) {
		t.Fatalf("salt+1 decision differs from uncached: %+v vs %+v", other, otherBase)
	}
}

func mustCFG(t *testing.T, p *Pipeline, raw []byte) *disasm.CFG {
	t.Helper()
	cfgs, err := p.disassembleAll([][]byte{raw}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cfgs[0]
}

// TestFingerprintInvalidatesAcrossModels shares one cache between two
// different models: their keys must be disjoint, so neither can serve
// the other's verdicts.
func TestFingerprintInvalidatesAcrossModels(t *testing.T) {
	p1, _, raws := cachePipeline(t)
	raw := raws[0]
	const salt = 7

	// A second, different model (different seed => different weights).
	g := malgen.NewGenerator(malgen.Config{Seed: 8})
	var samples []*malgen.Sample
	for _, cl := range malgen.Classes {
		for i := 0; i < 4; i++ {
			s, err := g.Sample(cl)
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, s)
		}
	}
	opts := testOptions()
	opts.Seed = 99
	opts.DetectorEpochs = 5
	opts.ClassifierEpochs = 3
	p2, err := Train(samples, opts)
	if err != nil {
		t.Fatal(err)
	}

	fp1, err := p1.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := p2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("different models share a fingerprint")
	}

	base2, err := p2.AnalyzeBinary(raw, salt)
	if err != nil {
		t.Fatal(err)
	}

	shared := memCache(t)
	if err := p1.AttachCache(shared); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p1.AttachCache(nil); err != nil {
			t.Fatal(err)
		}
	}()
	if err := p2.AttachCache(shared); err != nil {
		t.Fatal(err)
	}

	if _, err := p1.AnalyzeBinary(raw, salt); err != nil { // p1 fills the cache
		t.Fatal(err)
	}
	if p1.byteKey(raw, salt) == p2.byteKey(raw, salt) {
		t.Fatal("two models produced the same cache key")
	}
	if _, ok := shared.Verdict(p2.byteKey(raw, salt)); ok {
		t.Fatal("p1's fill is visible under p2's key")
	}
	got, err := p2.AnalyzeBinary(raw, salt) // must be p2's own (fresh) result
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(got, base2) {
		t.Fatalf("p2 under shared cache = %+v, want its own %+v", got, base2)
	}
}

// TestSaveLoadFingerprintStable pins the restart story: a loaded model
// fingerprints identically to the one that was saved, so a persistent
// cache stays hot across process restarts.
func TestSaveLoadFingerprintStable(t *testing.T) {
	p, _, _ := cachePipeline(t)
	fp1, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := p2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("fingerprint changed across Save/Load")
	}
}

// TestAnalyzeBinaryBatchPartition mixes verdict hits, feature hits and
// misses in one batch and checks every decision matches the uncached
// baseline, and that a fully warm re-run does no scoring work.
func TestAnalyzeBinaryBatchPartition(t *testing.T) {
	p, reg, raws := cachePipeline(t)
	n := len(raws)
	salts := make([]int64, n)
	for i := range salts {
		salts[i] = int64(100 + i)
	}
	baseline, err := p.AnalyzeBinaryBatch(raws, salts) // uncached
	if err != nil {
		t.Fatal(err)
	}

	c := memCache(t)
	if err := p.AttachCache(c); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.AttachCache(nil); err != nil {
			t.Fatal(err)
		}
	}()

	// Pre-warm a third of the keys so the batch sees all three kinds.
	for i := 0; i < n; i += 3 {
		if _, err := p.AnalyzeBinary(raws[i], salts[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.AnalyzeBinaryBatch(raws, salts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !sameDecision(got[i], baseline[i]) {
			t.Fatalf("sample %d: cached batch %+v != baseline %+v", i, got[i], baseline[i])
		}
	}

	// Fully warm: the whole batch must serve from the verdict tier
	// without scoring a single sample.
	before := samplesCount(reg)
	again, err := p.AnalyzeBinaryBatch(raws, salts)
	if err != nil {
		t.Fatal(err)
	}
	if after := samplesCount(reg); after != before {
		t.Fatalf("warm batch scored %d samples, want 0", after-before)
	}
	for i := range again {
		if !sameDecision(again[i], baseline[i]) {
			t.Fatalf("sample %d: warm batch %+v != baseline %+v", i, again[i], baseline[i])
		}
	}
}

func samplesCount(reg *obs.Registry) uint64 {
	v, _ := reg.Snapshot()["pipeline.samples"].(uint64)
	return v
}

// TestVerdictHitAllocationBound pins the warm verdict-hit budget: a
// repeat AnalyzeBinary is a hash, a map lookup, and one Decision —
// at most 5 allocations, instrumented.
func TestVerdictHitAllocationBound(t *testing.T) {
	p, _, raws := cachePipeline(t)
	raw := raws[2]
	const salt = 77
	c := memCache(t)
	if err := p.AttachCache(c); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.AttachCache(nil); err != nil {
			t.Fatal(err)
		}
	}()
	if _, err := p.AnalyzeBinary(raw, salt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.AnalyzeBinary(raw, salt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 5 {
		t.Fatalf("verdict hit allocates %.0f/op, budget is 5", allocs)
	}
}

// TestBatcherSingleflight submits the same (CFG, salt) from many
// goroutines through a cold cache: exactly one submission may do the
// scoring work; everyone must get the identical decision.
func TestBatcherSingleflight(t *testing.T) {
	p, reg, raws := cachePipeline(t)
	cfg := mustCFG(t, p, raws[1])
	const salt = 4242

	baseline, err := p.Analyze(cfg, salt)
	if err != nil {
		t.Fatal(err)
	}

	c := memCache(t)
	if err := p.AttachCache(c); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.AttachCache(nil); err != nil {
			t.Fatal(err)
		}
	}()
	b := NewBatcher(p, BatcherConfig{MaxBatch: 4})
	defer b.Close()

	before := samplesCount(reg)
	const n = 16
	var wg sync.WaitGroup
	decs := make([]*Decision, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decs[i], errs[i] = b.Submit(cfg, salt)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submitter %d: %v", i, errs[i])
		}
		if !sameDecision(decs[i], baseline) {
			t.Fatalf("submitter %d: %+v != baseline %+v", i, decs[i], baseline)
		}
	}
	if scored := samplesCount(reg) - before; scored != 1 {
		t.Fatalf("%d samples scored for %d identical submissions, want 1", scored, n)
	}

	// Warm resubmission is a pure hit: still no extra scoring.
	d, err := b.Submit(cfg, salt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecision(d, baseline) {
		t.Fatalf("warm submit %+v != baseline %+v", d, baseline)
	}
	if scored := samplesCount(reg) - before; scored != 1 {
		t.Fatalf("warm submit scored again (%d total)", scored)
	}

	// A different salt is different work.
	if _, err := b.Submit(cfg, salt+1); err != nil {
		t.Fatal(err)
	}
	if scored := samplesCount(reg) - before; scored != 2 {
		t.Fatalf("new salt scored %d samples total, want 2", scored)
	}
}
