package core

import (
	"bytes"
	"math"
	"testing"

	"soteria/internal/disasm"
)

// fastScoreTolerance bounds |fast - exact| reconstruction errors across
// the pipeline: the network divergence is bounded by the nn package's
// fast-mode tolerance (1e-9 per matrix element), and the RMSE reduction
// cannot amplify it.
const fastScoreTolerance = 1e-9

// TestFastScoringWithinTolerance covers the opt-in plumbing end to end:
// off by default, toggled through SetFastScoring, decisions within
// tolerance of the bit-exact path, and never persisted — a Save/Load
// round trip of a fast-enabled pipeline restores a bit-exact one.
func TestFastScoringWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline training")
	}
	samples := trainCorpus(t, 6)
	opts := testOptions()
	opts.DetectorEpochs = 10
	opts.ClassifierEpochs = 8
	p, err := Train(samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.FastScoring() {
		t.Fatal("fast scoring must be off by default")
	}

	cfgs := make([]*disasm.CFG, len(samples))
	salts := make([]int64, len(samples))
	for i, s := range samples {
		cfgs[i] = s.CFG
		salts[i] = int64(i)
	}
	exact, err := p.AnalyzeBatch(cfgs, salts)
	if err != nil {
		t.Fatal(err)
	}

	p.SetFastScoring(true)
	if !p.FastScoring() {
		t.Fatal("SetFastScoring(true) did not stick")
	}
	fast, err := p.AnalyzeBatch(cfgs, salts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if d := math.Abs(fast[i].RE - exact[i].RE); d > fastScoreTolerance {
			t.Fatalf("sample %d: fast RE diverges from exact by %g", i, d)
		}
		if fast[i].Class != exact[i].Class {
			t.Fatalf("sample %d: fast class %v != exact %v", i, fast[i].Class, exact[i].Class)
		}
	}

	// Persistence must not carry the flag: a pipeline saved while fast
	// scoring is on restores bit-exact, and its decisions match the
	// original pipeline's exact pass in every bit.
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FastScoring() {
		t.Fatal("fast scoring leaked through Save/Load")
	}
	reloaded, err := loaded.AnalyzeBatch(cfgs, salts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if reloaded[i].RE != exact[i].RE || reloaded[i].Class != exact[i].Class {
			t.Fatalf("sample %d: loaded pipeline diverges from the exact pass (RE %v vs %v)",
				i, reloaded[i].RE, exact[i].RE)
		}
	}

	// And the toggle comes back off cleanly.
	p.SetFastScoring(false)
	if p.FastScoring() {
		t.Fatal("SetFastScoring(false) did not stick")
	}
	again, err := p.AnalyzeBatch(cfgs, salts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if again[i].RE != exact[i].RE {
			t.Fatalf("sample %d: exact pass after fast round trip changed (RE %v vs %v)",
				i, again[i].RE, exact[i].RE)
		}
	}
}
