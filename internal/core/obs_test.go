// Observability contract tests: instrumentation must never change a
// decision (bit-identical models and verdicts with obs on or off) and
// must never add an allocation to the scoring hot path. Plus the
// regression tests for the fillFrom defaulting bug and the batcher
// scratch CFG pinning.
package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"soteria/internal/disasm"
	"soteria/internal/obs"
)

var (
	obsOnce sync.Once
	obsErr  error
	obsPipe *Pipeline
	obsReg  *obs.Registry
)

// obsEnv trains one pipeline with Options.Obs set, using exactly the
// options of batchEnv's aggregated-detector pipeline, so equivalence
// tests can compare the instrumented twin against the plain one.
func obsEnv(t *testing.T) (*Pipeline, *obs.Registry) {
	t.Helper()
	batchEnv(t)
	obsOnce.Do(func() {
		opts := testOptions()
		opts.Features.WalkCount = 3
		opts.DetectorEpochs = 8
		opts.ClassifierEpochs = 8
		opts.Filters = 4
		opts.DenseUnits = 16
		obsReg = obs.NewRegistry()
		opts.Obs = obsReg
		obsPipe, obsErr = Train(batchCorpus, opts)
	})
	if obsErr != nil {
		t.Fatal(obsErr)
	}
	return obsPipe, obsReg
}

// TestObsEquivalence pins the write-only contract end to end: a
// pipeline trained and served with a live registry produces models and
// decisions bit-identical to its uninstrumented twin, while the
// registry actually fills with training and serving metrics.
func TestObsEquivalence(t *testing.T) {
	pipes, corpus := batchEnv(t)
	plain := pipes[false]
	inst, reg := obsEnv(t)

	gotMu, gotSig := inst.Detector.Calibration()
	wantMu, wantSig := plain.Detector.Calibration()
	if gotMu != wantMu || gotSig != wantSig {
		t.Fatalf("instrumented calibration (%v, %v) != plain (%v, %v)", gotMu, gotSig, wantMu, wantSig)
	}

	cfgs := make([]*disasm.CFG, len(corpus))
	salts := make([]int64, len(corpus))
	for i, s := range corpus {
		cfgs[i] = s.CFG
		salts[i] = int64(9000 + i)
	}
	got, err := inst.AnalyzeBatch(cfgs, salts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.AnalyzeBatch(cfgs, salts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].RE != want[i].RE || got[i].Adversarial != want[i].Adversarial || got[i].Class != want[i].Class {
			t.Fatalf("sample %d: instrumented {%v %v %v} != plain {%v %v %v}",
				i, got[i].Adversarial, got[i].RE, got[i].Class,
				want[i].Adversarial, want[i].RE, want[i].Class)
		}
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"train.detector.epochs", "train.classifier.epochs",
		"pipeline.samples", "detector.re",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %q missing from snapshot", name)
		}
	}
	if snap["train.detector.epochs"].(uint64) == 0 {
		t.Fatal("detector training observed no epochs")
	}
	if snap["train.classifier.epochs"].(uint64) == 0 {
		t.Fatal("classifier training observed no epochs")
	}
	if got := reg.Counter("pipeline.samples").Value(); got < uint64(len(corpus)) {
		t.Fatalf("pipeline.samples = %d, want >= %d", got, len(corpus))
	}
	if reg.Histogram("pipeline.extract_ns", nil).Count() == 0 ||
		reg.Histogram("pipeline.score_ns", nil).Count() == 0 {
		t.Fatal("stage latency histograms observed no chunks")
	}
	if reg.Histogram("detector.re", nil).Count() == 0 {
		t.Fatal("detector RE histogram observed nothing")
	}
}

// TestObsScoringAddsNoAllocations pins the zero-alloc contract on the
// scoring hot path: the instrumented scoreChunk allocates exactly as
// much as the uninstrumented one (the per-sample Decisions and nothing
// else).
func TestObsScoringAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, making pooled-path alloc counts noisy")
	}
	pipes, corpus := batchEnv(t)
	plain := pipes[false]
	inst, _ := obsEnv(t)

	measure := func(p *Pipeline) float64 {
		cfgs := make([]*disasm.CFG, len(corpus))
		salts := make([]int64, len(corpus))
		for i, s := range corpus {
			cfgs[i] = s.CFG
			salts[i] = int64(i)
		}
		vecs, err := p.Extractor.ExtractBatch(cfgs, salts)
		if err != nil {
			t.Fatal(err)
		}
		c := p.getChunk()
		fillBenchChunk(p, c, vecs)
		out := make([]*Decision, len(vecs))
		errs := make([]error, len(vecs))
		p.scoreChunk(c, out, errs, nil) // warm scratch pools
		return testing.AllocsPerRun(50, func() { p.scoreChunk(c, out, errs, nil) })
	}

	plainAllocs := measure(plain)
	instAllocs := measure(inst)
	if instAllocs != plainAllocs {
		t.Fatalf("instrumented scoreChunk allocates %v/op, uninstrumented %v/op — instrumentation added allocations",
			instAllocs, plainAllocs)
	}
	// Sanity: the only allocations are the per-sample Decision values.
	if plainAllocs > float64(len(corpus)) {
		t.Fatalf("scoreChunk allocates %v/op over %d samples, want <= one Decision each", plainAllocs, len(corpus))
	}
}

// TestObsBatcherMetrics drives an instrumented batcher and checks the
// accounting invariants that hold regardless of how requests happen to
// coalesce: every served batch has exactly one flush reason, the batch
// size histogram sums to the request count, and every request's queue
// wait is observed.
func TestObsBatcherMetrics(t *testing.T) {
	inst, reg := obsEnv(t)
	_, corpus := batchEnv(t)
	b := NewBatcher(inst, BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond})

	full0 := reg.Counter("batcher.flush_full").Value()
	timer0 := reg.Counter("batcher.flush_timer").Value()
	close0 := reg.Counter("batcher.flush_close").Value()
	size0c := reg.Histogram("batcher.batch_size", nil).Count()
	size0s := reg.Histogram("batcher.batch_size", nil).Sum()
	wait0 := reg.Histogram("batcher.wait_ns", nil).Count()

	const requests = 10
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := b.Submit(corpus[g%len(corpus)].CFG, int64(g)); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	b.Close()

	flushes := (reg.Counter("batcher.flush_full").Value() - full0) +
		(reg.Counter("batcher.flush_timer").Value() - timer0) +
		(reg.Counter("batcher.flush_close").Value() - close0)
	sizeCount := reg.Histogram("batcher.batch_size", nil).Count() - size0c
	sizeSum := reg.Histogram("batcher.batch_size", nil).Sum() - size0s
	waits := reg.Histogram("batcher.wait_ns", nil).Count() - wait0
	if flushes != sizeCount {
		t.Fatalf("flush reasons (%d) != batches served (%d)", flushes, sizeCount)
	}
	if sizeSum != requests {
		t.Fatalf("batch sizes sum to %v, want %d requests", sizeSum, requests)
	}
	if waits != requests {
		t.Fatalf("queue waits observed = %d, want %d", waits, requests)
	}
}

// TestObsBatcherBackpressure pins the backpressure signals admission
// control reads: batcher.queue_depth rises with accepted submissions
// and returns to zero once every request is served, QueueDepth agrees
// with the gauge, and batcher.rejected counts exactly the submissions
// turned away before the handoff.
func TestObsBatcherBackpressure(t *testing.T) {
	inst, reg := obsEnv(t)
	_, corpus := batchEnv(t)
	// A wide MaxWait window holds the first batch open, so the depth
	// gauge is observably above zero while submissions wait for company.
	b := NewBatcher(inst, BatcherConfig{MaxBatch: 64, MaxWait: 300 * time.Millisecond})

	depth := reg.Gauge("batcher.queue_depth")
	rejected0 := reg.Counter("batcher.rejected").Value()

	const requests = 8
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := b.Submit(corpus[g%len(corpus)].CFG, int64(g)); err != nil {
				t.Error(err)
			}
		}(g)
	}
	// Mid-flight: the collector has accepted at least the batch-opening
	// request and is waiting out MaxWait, so depth must rise before any
	// serve can drop it. Bounded polling (~5s) instead of a wall-clock
	// deadline: this package is in the determinism lint scope.
	for i := 0; depth.Value() < 1 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := depth.Value(); got < 1 {
		t.Fatalf("queue_depth never rose above zero mid-flight (= %v)", got)
	}
	if got := b.QueueDepth(); got < 1 {
		t.Fatalf("QueueDepth disagrees with a risen gauge: %d", got)
	}
	wg.Wait()
	// All requests served: the backlog must be fully drained, by both
	// the gauge and the accessor, and nothing was rejected. Submit
	// returns at request completion, slightly ahead of the collector's
	// batch-level decrement, so allow the collector a moment to finish.
	for i := 0; depth.Value() != 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := depth.Value(); got != 0 {
		t.Fatalf("queue_depth after drain = %v, want 0", got)
	}
	if got := b.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after drain = %d, want 0", got)
	}
	if got := reg.Counter("batcher.rejected").Value() - rejected0; got != 0 {
		t.Fatalf("rejected = %d after successful submissions, want 0", got)
	}

	// Post-Close submissions are rejections, and the depth stays level.
	b.Close()
	if _, err := b.Submit(corpus[0].CFG, 99); err != ErrBatcherClosed {
		t.Fatalf("Submit after Close = %v, want ErrBatcherClosed", err)
	}
	if got := reg.Counter("batcher.rejected").Value() - rejected0; got != 1 {
		t.Fatalf("rejected after closed Submit = %d, want 1", got)
	}
	if got := depth.Value(); got != 0 {
		t.Fatalf("queue_depth after rejection = %v, want 0", got)
	}

	// A context cancelled before the handoff is a rejection too. Against
	// the closed batcher both ready select branches (stop, ctx.Done) are
	// pre-handoff rejections, so the count is deterministic regardless
	// of which one wins the select.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pre := reg.Counter("batcher.rejected").Value()
	if _, err := b.SubmitCtx(ctx, corpus[0].CFG, 7); err == nil {
		t.Fatal("cancelled SubmitCtx on a closed batcher must fail")
	}
	if got := reg.Counter("batcher.rejected").Value() - pre; got != 1 {
		t.Fatalf("rejected after cancelled submit = %d, want 1", got)
	}
}

// TestTrainFillsDefaultsWithCustomFeatures is the regression test for
// the defaulting bug: Train used to apply fillFrom only when
// opts.Features.TopK == 0, so a custom Features silently disabled the
// zero-value fills and trained with Alpha = 0 (every sample flagged
// adversarial), LR = 0, and so on.
func TestTrainFillsDefaultsWithCustomFeatures(t *testing.T) {
	_, corpus := batchEnv(t)
	opts := Options{}
	opts.Features = DefaultOptions().Features
	opts.Features.TopK = 32 // custom: defaulting must still fill the scalars
	opts.Features.WalkCount = 2
	opts.DetectorEpochs = 2
	opts.ClassifierEpochs = 2
	opts.Filters = 4
	opts.DenseUnits = 8
	opts.Seed = 7
	// Alpha, LR, BatchSize left zero on purpose.
	p, err := Train(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultOptions()
	got := p.Options()
	if got.Alpha != def.Alpha {
		t.Fatalf("Alpha = %v, want default %v", got.Alpha, def.Alpha)
	}
	if got.LR != def.LR || got.BatchSize != def.BatchSize {
		t.Fatalf("LR/BatchSize = %v/%d, want defaults %v/%d", got.LR, got.BatchSize, def.LR, def.BatchSize)
	}
	if got.Features.TopK != 32 {
		t.Fatalf("custom Features.TopK = %d, want 32 preserved", got.Features.TopK)
	}
	if p.Detector.Alpha() != def.Alpha {
		t.Fatalf("detector Alpha = %v, want %v", p.Detector.Alpha(), def.Alpha)
	}
	mu, sigma := p.Detector.Calibration()
	if th := p.Detector.Threshold(); th <= mu && sigma > 0 {
		t.Fatalf("threshold %v <= mu %v: Alpha fill did not reach the detector", th, mu)
	}
}

// TestFillFromIsFieldWise pins fillFrom's shape: each zero scalar fills
// independently, set fields survive, and Features is replaced only
// wholesale when unset.
func TestFillFromIsFieldWise(t *testing.T) {
	def := DefaultOptions()
	opts := Options{DetectorEpochs: 3}
	opts.Features.TopK = 16
	got := fillFrom(opts, def)
	if got.DetectorEpochs != 3 {
		t.Fatalf("set field overwritten: DetectorEpochs = %d", got.DetectorEpochs)
	}
	if got.Features.TopK != 16 {
		t.Fatalf("custom Features replaced: TopK = %d", got.Features.TopK)
	}
	if got.Alpha != def.Alpha || got.LR != def.LR || got.ClassifierEpochs != def.ClassifierEpochs ||
		got.BatchSize != def.BatchSize || got.Filters != def.Filters ||
		got.DenseUnits != def.DenseUnits || got.Seed != def.Seed {
		t.Fatalf("zero scalars not filled: %+v", got)
	}
	empty := fillFrom(Options{}, def)
	if empty.Features.TopK != def.Features.TopK {
		t.Fatalf("unset Features not defaulted: TopK = %d", empty.Features.TopK)
	}
}

// TestBatcherScratchHoldsNoCFGs is the regression test for the scratch
// pinning leak: after serving, the collector's reusable CFG slice must
// not retain pointers to the batch's graphs — the entries of the last
// batch used to stay live until the next serve, or forever after the
// final one.
func TestBatcherScratchHoldsNoCFGs(t *testing.T) {
	pipes, corpus := batchEnv(t)
	b := NewBatcher(pipes[false], BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := b.Submit(corpus[g%len(corpus)].CFG, int64(g)); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	b.Close() // happens-before edge with the collector's last writes
	for i, c := range b.cfgs[:cap(b.cfgs)] {
		if c != nil {
			t.Fatalf("scratch slot %d still pins a CFG after serve", i)
		}
	}
}
