package core

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"soteria/internal/autoenc"
	"soteria/internal/cnn"
	"soteria/internal/features"
	"soteria/internal/ngram"
)

// persisted is the on-disk form of a trained pipeline: extractor
// vocabularies, detector state, and classifier weights, with enough
// configuration to rebuild identical networks.
type persisted struct {
	Version  int             `json:"version"`
	Options  Options         `json:"options"`
	Features features.Config `json:"features"`

	DBLVocab vocabState `json:"dblVocab"`
	LBLVocab vocabState `json:"lblVocab"`

	DetectorConfig autoenc.Config `json:"detectorConfig"`
	DetectorState  autoenc.State  `json:"detectorState"`

	CNNConfig  cnn.Config `json:"cnnConfig"`
	DBLWeights []float64  `json:"dblWeights"`
	LBLWeights []float64  `json:"lblWeights"`
}

type vocabState struct {
	Vocab []string  `json:"vocab"`
	IDF   []float64 `json:"idf"`
	Dim   int       `json:"dim"`
	L2    bool      `json:"l2"`
}

func vocabOf(v *ngram.Vectorizer) vocabState {
	return vocabState{Vocab: v.Vocab, IDF: v.IDF, Dim: v.Dim, L2: v.L2}
}

func (vs vocabState) restore() *ngram.Vectorizer {
	return ngram.Restore(vs.Vocab, vs.IDF, vs.Dim, vs.L2)
}

const persistVersion = 1

// Save serializes the trained pipeline as JSON.
func (p *Pipeline) Save(w io.Writer) error {
	dblV, lblV := p.Extractor.Vectorizers()
	detCfg := p.Detector.Config()
	out := persisted{
		Version:        persistVersion,
		Options:        p.opts,
		Features:       p.Extractor.Config(),
		DBLVocab:       vocabOf(dblV),
		LBLVocab:       vocabOf(lblV),
		DetectorConfig: detCfg,
		DetectorState:  p.Detector.State(),
		CNNConfig:      p.Ensemble.DBL.Config(),
		DBLWeights:     p.Ensemble.DBL.Network().SaveWeights(),
		LBLWeights:     p.Ensemble.LBL.Network().SaveWeights(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Fingerprint hashes the pipeline's full serialized state — the exact
// bytes Save would write, which cover options, vocabularies, detector
// state and classifier weights. Two pipelines share a fingerprint iff
// they are the same model, so it is the model-identity component of
// cache keys: any retraining, weight change or option change yields a
// different fingerprint and thereby invalidates every prior cache
// entry without touching the cache itself.
//
// The hash is memoized: Train and Load stamp it once, so steady-state
// calls (registry lookups, cache attachment, swap-time rekeying) are a
// copy of 32 bytes instead of a full model serialization. Callers that
// mutate a component through the exported fields (replacing the
// Ensemble, Detector.SetAlpha, ...) must call InvalidateFingerprint to
// force a recompute — the pipeline cannot observe those writes.
func (p *Pipeline) Fingerprint() ([32]byte, error) {
	if p.fpSet {
		return p.fp, nil
	}
	h := sha256.New()
	if err := p.Save(h); err != nil {
		return [32]byte{}, fmt.Errorf("core: fingerprint: %w", err)
	}
	h.Sum(p.fp[:0])
	p.fpSet = true
	return p.fp, nil
}

// InvalidateFingerprint drops the memoized fingerprint so the next
// Fingerprint call re-serializes the model. Call after mutating any
// persisted component through the exported fields. Not safe to call
// concurrently with Fingerprint — mutate, invalidate, then resume
// serving.
func (p *Pipeline) InvalidateFingerprint() { p.fpSet = false }

// Load rebuilds a trained pipeline from Save output.
func Load(r io.Reader) (*Pipeline, error) {
	var in persisted
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", in.Version)
	}
	ext := features.NewExtractor(in.Features)
	ext.FitVectorizers(in.DBLVocab.restore(), in.LBLVocab.restore())

	det, err := autoenc.Restore(in.DetectorConfig, in.DetectorState)
	if err != nil {
		return nil, fmt.Errorf("core: restore detector: %w", err)
	}
	dbl, err := cnn.Restore(in.CNNConfig, in.DBLWeights)
	if err != nil {
		return nil, fmt.Errorf("core: restore DBL classifier: %w", err)
	}
	lblCfg := in.CNNConfig
	lblCfg.Seed = in.CNNConfig.Seed + 1
	lbl, err := cnn.Restore(lblCfg, in.LBLWeights)
	if err != nil {
		return nil, fmt.Errorf("core: restore LBL classifier: %w", err)
	}
	p := &Pipeline{
		Extractor: ext,
		Detector:  det,
		Ensemble:  &cnn.Ensemble{DBL: dbl, LBL: lbl},
		opts:      in.Options,
	}
	// Stamp the fingerprint memo before the pipeline serves traffic (see
	// Train); a freshly loaded model round-trips to the same bytes, so
	// this equals the saved model's fingerprint.
	if _, err := p.Fingerprint(); err != nil {
		return nil, err
	}
	return p, nil
}
