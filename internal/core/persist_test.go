package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	samples := trainCorpus(t, 5)
	opts := testOptions()
	opts.DetectorEpochs = 8
	opts.ClassifierEpochs = 5
	p, err := Train(samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i, s := range samples[:4] {
		a, err := p.Analyze(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Analyze(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if a.RE != b.RE || a.Class != b.Class || a.Adversarial != b.Adversarial {
			t.Fatalf("sample %d: loaded pipeline disagrees: %+v vs %+v", i, a, b)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("junk should error")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version should error")
	}
}
