package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	samples := trainCorpus(t, 5)
	opts := testOptions()
	opts.DetectorEpochs = 8
	opts.ClassifierEpochs = 5
	p, err := Train(samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i, s := range samples[:4] {
		a, err := p.Analyze(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Analyze(s.CFG, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if a.RE != b.RE || a.Class != b.Class || a.Adversarial != b.Adversarial {
			t.Fatalf("sample %d: loaded pipeline disagrees: %+v vs %+v", i, a, b)
		}
	}
}

// TestFingerprintMemoized pins the fingerprint memo: steady-state
// Fingerprint calls return the stamped hash without re-serializing the
// model (0 allocs/op), the memo equals a from-scratch recompute, and a
// Save/Load round trip lands on the same fingerprint.
func TestFingerprintMemoized(t *testing.T) {
	p, _, _ := cachePipeline(t)
	fp, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Fingerprint(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("memoized Fingerprint allocates %v/op, want 0", allocs)
	}

	// The memo must match a full recompute of the same state.
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lfp, err := loaded.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if lfp != fp {
		t.Fatalf("loaded fingerprint %x != trained memo %x", lfp, fp)
	}
	loaded.InvalidateFingerprint()
	rfp, err := loaded.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if rfp != fp {
		t.Fatalf("recomputed fingerprint %x != memo %x", rfp, fp)
	}
}

// TestFingerprintInvalidation pins the mutation contract: a component
// mutated through the exported fields keeps serving the stale memo
// until InvalidateFingerprint, after which the fingerprint reflects
// the new persisted state.
func TestFingerprintInvalidation(t *testing.T) {
	shared, _, _ := cachePipeline(t)
	var buf bytes.Buffer
	if err := shared.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := Load(&buf) // private copy; the mutation must not leak
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	p.Detector.SetAlpha(p.Detector.Alpha() * 2) // persisted DetectorConfig field
	stale, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if stale != fp1 {
		t.Fatalf("memo changed without invalidation: %x vs %x", stale, fp1)
	}
	p.InvalidateFingerprint()
	fp2, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 == fp1 {
		t.Fatal("fingerprint unchanged after mutating Alpha and invalidating")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("junk should error")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version should error")
	}
}

func TestSeedFormatVocabularyRestoresPacked(t *testing.T) {
	// The persisted vocabulary layer is unchanged from the seed format:
	// string gram keys ("a|b|c", decimal labels). A vocabState decoded
	// from seed-era JSON must restore into a vectorizer that serves both
	// the string lookups the old code used and the new packed index.
	raw := `{"vocab": ["0|1", "1|0", "10|2", "3|2|1"], "idf": [1.1, 1.2, 1.3, 0.9], "dim": 6, "l2": true}`
	var vs vocabState
	if err := json.Unmarshal([]byte(raw), &vs); err != nil {
		t.Fatal(err)
	}
	v := vs.restore()
	if !v.PackedReady() {
		t.Fatal("seed-format vocab should rebuild the packed index")
	}
	if !v.Contains("10|2") || v.Contains("2|10") {
		t.Fatal("string vocabulary lookup broken after restore")
	}
	if v.Dim != 6 || !v.L2 {
		t.Fatalf("restored dim/L2 = %d/%v", v.Dim, v.L2)
	}
	// Round-trip: saving the restored vectorizer reproduces the state.
	if got := vocabOf(v); !reflect.DeepEqual(got, vs) {
		t.Fatalf("vocab round-trip changed state: %+v vs %+v", got, vs)
	}
}
