// Package core wires Soteria's three components — the feature
// extractor, the autoencoder adversarial-example detector, and the
// majority-voting CNN classifier — into the end-to-end pipeline of the
// paper's Fig. 2: a sample's CFG is turned into walk features, the
// detector filters adversarial examples, and clean samples are
// classified into Benign / Gafgyt / Mirai / Tsunami.
package core

import (
	"errors"
	"fmt"

	"soteria/internal/autoenc"
	"soteria/internal/cnn"
	"soteria/internal/disasm"
	"soteria/internal/features"
	"soteria/internal/malgen"
	"soteria/internal/nn"
	"soteria/internal/par"
)

// Options configures pipeline training. Zero values default to reduced
// CI-scale parameters; use PaperOptions for the paper's exact scale.
type Options struct {
	// Features configures extraction (walks, n-grams, vocabulary).
	Features features.Config `json:"features"`
	// DetectorEpochs, ClassifierEpochs and shared batch size/learning
	// rate for the two models.
	DetectorEpochs   int     `json:"detectorEpochs"`
	ClassifierEpochs int     `json:"classifierEpochs"`
	BatchSize        int     `json:"batchSize"`
	LR               float64 `json:"lr"`
	// Alpha is the detector threshold multiplier (default 1.0). An
	// explicit Alpha of 0 is indistinguishable from unset and is
	// replaced by the default; a zero multiplier would flag every
	// sample as adversarial, so use a small positive value instead if
	// that extreme is really intended.
	Alpha float64 `json:"alpha"`
	// Filters and DenseUnits size the CNN (defaults 46 / 512 per paper,
	// which CI-scale configs shrink).
	Filters    int `json:"filters"`
	DenseUnits int `json:"denseUnits"`
	// PerWalkDetector feeds the detector one combined vector per walk
	// (detection statistic = mean RE over walks) instead of the default
	// single walk-aggregated vector per sample. Measured in
	// EXPERIMENTS.md: aggregation wins decisively — a single walk
	// commits to one half of a GEA merge and looks clean, while the
	// aggregate exposes the two-population mixture — so this exists for
	// the ablation record.
	PerWalkDetector bool `json:"perWalkDetector"`
	// Seed drives all model randomness.
	Seed int64 `json:"seed"`
}

// DefaultOptions returns a CI-scale configuration that trains in tens of
// seconds: reduced vocabulary, fewer walks, smaller CNN.
func DefaultOptions() Options {
	f := features.DefaultConfig()
	f.TopK = 128
	f.WalkCount = 6
	f.LengthFactor = 5
	return Options{
		Features:         f,
		DetectorEpochs:   40,
		ClassifierEpochs: 30,
		BatchSize:        64,
		LR:               1e-3,
		Alpha:            1.0,
		Filters:          12,
		DenseUnits:       64,
		Seed:             1,
	}
}

// PaperOptions returns the paper's full-scale parameters (1000-feature
// detector, 46-filter CNNs, 100 epochs). Training at this scale takes
// hours in pure Go; use for faithful runs only.
func PaperOptions() Options {
	return Options{
		Features:         features.DefaultConfig(),
		DetectorEpochs:   100,
		ClassifierEpochs: 100,
		BatchSize:        128,
		LR:               1e-3,
		Alpha:            1.0,
		Filters:          46,
		DenseUnits:       512,
		Seed:             1,
	}
}

// Pipeline is a trained Soteria instance.
type Pipeline struct {
	Extractor *features.Extractor
	Detector  *autoenc.Detector
	Ensemble  *cnn.Ensemble

	opts Options
}

// Decision is the pipeline's verdict on one sample.
type Decision struct {
	// Adversarial is the detector verdict; adversarial samples are not
	// forwarded to the classifier in the paper's deployment (Class is
	// still populated for analysis, e.g. Table VIII).
	Adversarial bool
	// RE is the autoencoder reconstruction error.
	RE float64
	// Class is the majority-vote classification.
	Class malgen.Class
}

// ErrNoSamples is returned when Train receives no samples.
var ErrNoSamples = errors.New("core: no training samples")

// Train fits the full pipeline on labeled clean samples. Per the
// paper's operation mode, neither the detector nor the classifier ever
// sees adversarial data.
func Train(samples []*malgen.Sample, opts Options) (*Pipeline, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if opts.Features.TopK == 0 {
		opts = fillFrom(opts, DefaultOptions())
	}
	opts.Features.Seed = opts.Seed

	ext := features.NewExtractor(opts.Features)
	cfgs := make([]*disasm.CFG, len(samples))
	salts := make([]int64, len(samples))
	for i, s := range samples {
		cfgs[i] = s.CFG
		salts[i] = int64(i)
	}
	ext.Fit(cfgs)

	// Extract every representation once (parallel across samples).
	vecs, err := ext.ExtractBatch(cfgs, salts)
	if err != nil {
		return nil, fmt.Errorf("core: extract: %w", err)
	}
	// Every sample contributes exactly WalkCount per-walk rows, so the
	// training matrices assemble with fixed per-sample offsets — which
	// lets the copy fan out across workers deterministically.
	wc := ext.Config().WalkCount
	combined := nn.NewMatrix(len(samples), ext.Dim())
	walkRows := make([][]float64, len(samples)*wc)
	lblRows := make([][]float64, len(samples)*wc)
	walkLabels := make([]int, len(samples)*wc)
	detRows := make([][]float64, len(samples)*wc)
	detGroups := make([]int, len(samples)*wc)
	par.For(len(samples), func(i int) {
		v := vecs[i]
		copy(combined.Row(i), v.Combined)
		for w := 0; w < wc; w++ {
			r := i*wc + w
			walkRows[r] = v.DBL[w]
			lblRows[r] = v.LBL[w]
			walkLabels[r] = int(samples[i].Class)
			detRows[r] = v.CombinedWalks[w]
			detGroups[r] = i
		}
	})

	detCfg := autoenc.DefaultConfig(ext.Dim())
	detCfg.Epochs = opts.DetectorEpochs
	detCfg.BatchSize = opts.BatchSize
	detCfg.LR = opts.LR
	detCfg.Alpha = opts.Alpha
	detCfg.Seed = opts.Seed
	// L2-normalized pattern features with a light denoising prior and no
	// z-scoring won the detector study (see EXPERIMENTS.md): GEA merges
	// shift the gram *pattern*, and standardization drowns that signal
	// in rescaled sparse-feature noise.
	detCfg.NoStandardize = true
	detCfg.NoiseStd = 0.02
	var det *autoenc.Detector
	if opts.PerWalkDetector {
		// Per-walk rows already carry walk-randomness variety; skip the
		// synthetic denoising replicas.
		detCfg.NoiseStd = -1
		det, err = autoenc.TrainGrouped(nn.FromRows(detRows), detGroups, detCfg)
	} else {
		det, err = autoenc.Train(combined, detCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: detector: %w", err)
	}

	clsCfg := cnn.DefaultConfig(ext.WalkDim(), malgen.NumClasses)
	clsCfg.Filters = opts.Filters
	clsCfg.DenseUnits = opts.DenseUnits
	clsCfg.Epochs = opts.ClassifierEpochs
	clsCfg.BatchSize = opts.BatchSize
	clsCfg.LR = opts.LR
	clsCfg.Seed = opts.Seed
	ens, err := cnn.TrainEnsemble(nn.FromRows(walkRows), nn.FromRows(lblRows), walkLabels, clsCfg)
	if err != nil {
		return nil, fmt.Errorf("core: classifier: %w", err)
	}

	return &Pipeline{Extractor: ext, Detector: det, Ensemble: ens, opts: opts}, nil
}

// Analyze runs the full pipeline on one CFG. salt individualizes the
// walk randomness (use a stable per-sample value for reproducibility).
func (p *Pipeline) Analyze(c *disasm.CFG, salt int64) (*Decision, error) {
	v, err := p.Extractor.Extract(c, salt)
	if err != nil {
		return nil, err
	}
	var re float64
	if p.opts.PerWalkDetector {
		re = p.Detector.SampleError(v.CombinedWalks)
	} else {
		re = p.Detector.ReconstructionError(v.Combined)
	}
	cls, err := p.Ensemble.Vote(v.DBL, v.LBL)
	if err != nil {
		return nil, err
	}
	return &Decision{
		Adversarial: re > p.Detector.Threshold(),
		RE:          re,
		Class:       malgen.Class(cls),
	}, nil
}

// AnalyzeBatch analyzes many CFGs, parallelizing both the
// feature-extraction stage (the dominant cost) and the scoring stage
// (detector reconstruction errors and ensemble votes are race-safe on
// shared trained models). Results equal per-sample Analyze calls with
// the same salts.
func (p *Pipeline) AnalyzeBatch(cfgs []*disasm.CFG, salts []int64) ([]*Decision, error) {
	vecs, err := p.Extractor.ExtractBatch(cfgs, salts)
	if err != nil {
		return nil, err
	}
	out := make([]*Decision, len(vecs))
	errs := make([]error, len(vecs))
	par.For(len(vecs), func(i int) {
		v := vecs[i]
		var re float64
		if p.opts.PerWalkDetector {
			re = p.Detector.SampleError(v.CombinedWalks)
		} else {
			re = p.Detector.ReconstructionError(v.Combined)
		}
		cls, err := p.Ensemble.Vote(v.DBL, v.LBL)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = &Decision{
			Adversarial: re > p.Detector.Threshold(),
			RE:          re,
			Class:       malgen.Class(cls),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AnalyzeBinary disassembles and analyzes a raw SOTB binary.
func (p *Pipeline) AnalyzeBinary(bin []byte, salt int64) (*Decision, error) {
	parsed, err := parseBinary(bin)
	if err != nil {
		return nil, err
	}
	cfg, err := disasm.Disassemble(parsed)
	if err != nil {
		return nil, fmt.Errorf("core: disassemble: %w", err)
	}
	return p.Analyze(cfg, salt)
}

// Options returns the training options.
func (p *Pipeline) Options() Options { return p.opts }

func fillFrom(opts, def Options) Options {
	if opts.Features.TopK == 0 {
		opts.Features = def.Features
	}
	if opts.DetectorEpochs == 0 {
		opts.DetectorEpochs = def.DetectorEpochs
	}
	if opts.ClassifierEpochs == 0 {
		opts.ClassifierEpochs = def.ClassifierEpochs
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = def.BatchSize
	}
	if opts.LR == 0 {
		opts.LR = def.LR
	}
	if opts.Alpha == 0 {
		opts.Alpha = def.Alpha
	}
	if opts.Filters == 0 {
		opts.Filters = def.Filters
	}
	if opts.DenseUnits == 0 {
		opts.DenseUnits = def.DenseUnits
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	return opts
}
