// Package core wires Soteria's three components — the feature
// extractor, the autoencoder adversarial-example detector, and the
// majority-voting CNN classifier — into the end-to-end pipeline of the
// paper's Fig. 2: a sample's CFG is turned into walk features, the
// detector filters adversarial examples, and clean samples are
// classified into Benign / Gafgyt / Mirai / Tsunami.
package core

import (
	"errors"
	"fmt"
	"sync"

	"soteria/internal/autoenc"
	"soteria/internal/cnn"
	"soteria/internal/disasm"
	"soteria/internal/features"
	"soteria/internal/malgen"
	"soteria/internal/nn"
	"soteria/internal/obs"
	"soteria/internal/par"
	"soteria/internal/store"
)

// Options configures pipeline training. Zero values default to reduced
// CI-scale parameters; use PaperOptions for the paper's exact scale.
type Options struct {
	// Features configures extraction (walks, n-grams, vocabulary).
	Features features.Config `json:"features"`
	// DetectorEpochs, ClassifierEpochs and shared batch size/learning
	// rate for the two models.
	DetectorEpochs   int     `json:"detectorEpochs"`
	ClassifierEpochs int     `json:"classifierEpochs"`
	BatchSize        int     `json:"batchSize"`
	LR               float64 `json:"lr"`
	// Alpha is the detector threshold multiplier (default 1.0). An
	// explicit Alpha of 0 is indistinguishable from unset: Train fills
	// every zero scalar from DefaultOptions (fillFrom, applied
	// unconditionally at the top of Train), so 0 always becomes 1.0 —
	// even alongside a custom Features. A zero multiplier would flag
	// every sample as adversarial; use a small positive value instead
	// if that extreme is really intended.
	Alpha float64 `json:"alpha"`
	// Filters and DenseUnits size the CNN (defaults 46 / 512 per paper,
	// which CI-scale configs shrink).
	Filters    int `json:"filters"`
	DenseUnits int `json:"denseUnits"`
	// PerWalkDetector feeds the detector one combined vector per walk
	// (detection statistic = mean RE over walks) instead of the default
	// single walk-aggregated vector per sample. Measured in
	// EXPERIMENTS.md: aggregation wins decisively — a single walk
	// commits to one half of a GEA merge and looks clean, while the
	// aggregate exposes the two-population mixture — so this exists for
	// the ablation record.
	PerWalkDetector bool `json:"perWalkDetector"`
	// Seed drives all model randomness.
	Seed int64 `json:"seed"`
	// Obs, when non-nil, receives training metrics (per-epoch loss and
	// wall time under train.detector.* / train.classifier.*) and leaves
	// the trained pipeline instrumented (see Pipeline.Instrument).
	// Observations are write-only: a pipeline trained with Obs set
	// produces bit-identical models and decisions to one trained
	// without. Not persisted.
	Obs *obs.Registry `json:"-"`
	// Cache, when non-nil, is attached to the trained pipeline (see
	// Pipeline.AttachCache): verdicts and feature vectors are memoized
	// under the freshly trained model's fingerprint. Not persisted.
	Cache *store.Cache `json:"-"`
}

// DefaultOptions returns a CI-scale configuration that trains in tens of
// seconds: reduced vocabulary, fewer walks, smaller CNN.
func DefaultOptions() Options {
	f := features.DefaultConfig()
	f.TopK = 128
	f.WalkCount = 6
	f.LengthFactor = 5
	return Options{
		Features:         f,
		DetectorEpochs:   40,
		ClassifierEpochs: 30,
		BatchSize:        64,
		LR:               1e-3,
		Alpha:            1.0,
		Filters:          12,
		DenseUnits:       64,
		Seed:             1,
	}
}

// PaperOptions returns the paper's full-scale parameters (1000-feature
// detector, 46-filter CNNs, 100 epochs). Training at this scale takes
// hours in pure Go; use for faithful runs only.
func PaperOptions() Options {
	return Options{
		Features:         features.DefaultConfig(),
		DetectorEpochs:   100,
		ClassifierEpochs: 100,
		BatchSize:        128,
		LR:               1e-3,
		Alpha:            1.0,
		Filters:          46,
		DenseUnits:       512,
		Seed:             1,
	}
}

// Pipeline is a trained Soteria instance.
type Pipeline struct {
	Extractor *features.Extractor
	Detector  *autoenc.Detector
	Ensemble  *cnn.Ensemble

	opts Options

	// chunks recycles the analyze pipeline's per-chunk row matrices, so
	// a steady stream of AnalyzeBatch calls (e.g. from a Batcher)
	// allocates only decisions.
	chunks sync.Pool
	// vecs recycles per-sample extraction output (*features.Vectors)
	// across chunk fills: each extraction worker borrows a set, the
	// extractor overwrites it in place (ExtractInto), and the rows are
	// copied into the chunk matrices before the set returns to the pool.
	vecs sync.Pool

	// cache, when non-nil, memoizes verdicts and feature vectors under
	// modelFP (the fingerprint pinned at AttachCache time). Every cache
	// interaction is gated on the nil check, so an uncached pipeline
	// runs the exact pre-cache path.
	cache   *store.Cache
	modelFP [32]byte

	// fp memoizes Fingerprint (stamped by Train/Load, cleared by
	// InvalidateFingerprint) so identity lookups never re-serialize the
	// model. Written only while the pipeline is quiescent.
	fp    [32]byte
	fpSet bool

	// reg is the registry Instrument was called with (nil when
	// uninstrumented); Batchers built on this pipeline pick it up.
	reg *obs.Registry
	// met holds the analyze path's metrics; all fields are nil until
	// Instrument, so an uninstrumented pipeline pays one pointer check
	// per chunk.
	met pipelineObs
}

// pipelineObs is the analyze path's metric set. Latency is observed at
// chunk granularity — the sanctioned observation point: timing wraps
// the par.Overlap stage closures, never the par.For worker bodies
// inside them (the obshot analyzer enforces the latter).
type pipelineObs struct {
	extractNs  *obs.Histogram // extraction stage latency per chunk
	scoreNs    *obs.Histogram // scoring stage latency per chunk
	samples    *obs.Counter   // samples scored (decisions produced)
	errors     *obs.Counter   // per-sample extraction failures
	cacheHitNs *obs.Histogram // verdict-cache hit-path latency
}

// Instrument registers the analyze path's metrics ("pipeline.extract_ns",
// "pipeline.score_ns", "pipeline.samples", "pipeline.errors", plus the
// "cache.hit_ns" hit-path latency histogram) in r and instruments the
// detector's drift metrics. Idempotent; a nil registry
// is a no-op (the pipeline stays on the uninstrumented fast path). Not
// safe to call concurrently with Analyze/AnalyzeBatch — instrument
// before serving. Observations are write-only and never affect
// decisions.
func (p *Pipeline) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	p.reg = r
	p.met = pipelineObs{
		extractNs:  r.Histogram("pipeline.extract_ns", obs.DurationBuckets()),
		scoreNs:    r.Histogram("pipeline.score_ns", obs.DurationBuckets()),
		samples:    r.Counter("pipeline.samples"),
		errors:     r.Counter("pipeline.errors"),
		cacheHitNs: r.Histogram("cache.hit_ns", obs.DurationBuckets()),
	}
	p.Detector.Instrument(r)
}

// Decision is the pipeline's verdict on one sample.
type Decision struct {
	// Adversarial is the detector verdict; adversarial samples are not
	// forwarded to the classifier in the paper's deployment (Class is
	// still populated for analysis, e.g. Table VIII).
	Adversarial bool
	// RE is the autoencoder reconstruction error.
	RE float64
	// Class is the majority-vote classification.
	Class malgen.Class
}

// ErrNoSamples is returned when Train receives no samples.
var ErrNoSamples = errors.New("core: no training samples")

// Train fits the full pipeline on labeled clean samples. Per the
// paper's operation mode, neither the detector nor the classifier ever
// sees adversarial data.
func Train(samples []*malgen.Sample, opts Options) (*Pipeline, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	// Field-wise defaulting is unconditional: a custom Features must not
	// disable the zero-value fills for the scalar knobs (Alpha, LR,
	// epochs, ...) — gating this on Features.TopK == 0 once silently
	// trained with Alpha = 0, flagging every sample as adversarial.
	opts = fillFrom(opts, DefaultOptions())
	opts.Features.Seed = opts.Seed

	ext := features.NewExtractor(opts.Features)
	cfgs := make([]*disasm.CFG, len(samples))
	salts := make([]int64, len(samples))
	for i, s := range samples {
		cfgs[i] = s.CFG
		salts[i] = int64(i)
	}
	ext.Fit(cfgs)

	// Extract every representation once (parallel across samples).
	vecs, err := ext.ExtractBatch(cfgs, salts)
	if err != nil {
		return nil, fmt.Errorf("core: extract: %w", err)
	}
	// Every sample contributes exactly WalkCount per-walk rows, so the
	// training matrices assemble with fixed per-sample offsets — which
	// lets the copy fan out across workers deterministically.
	wc := ext.Config().WalkCount
	combined := nn.NewMatrix(len(samples), ext.Dim())
	walkRows := make([][]float64, len(samples)*wc)
	lblRows := make([][]float64, len(samples)*wc)
	walkLabels := make([]int, len(samples)*wc)
	detRows := make([][]float64, len(samples)*wc)
	detGroups := make([]int, len(samples)*wc)
	par.For(len(samples), func(i int) {
		v := vecs[i]
		copy(combined.Row(i), v.Combined)
		for w := 0; w < wc; w++ {
			r := i*wc + w
			walkRows[r] = v.DBL[w]
			lblRows[r] = v.LBL[w]
			walkLabels[r] = int(samples[i].Class)
			detRows[r] = v.CombinedWalks[w]
			detGroups[r] = i
		}
	})

	detCfg := autoenc.DefaultConfig(ext.Dim())
	detCfg.Epochs = opts.DetectorEpochs
	detCfg.BatchSize = opts.BatchSize
	detCfg.LR = opts.LR
	detCfg.Alpha = opts.Alpha
	detCfg.Seed = opts.Seed
	detCfg.Hooks = opts.Obs.TrainHooks("train.detector")
	// L2-normalized pattern features with a light denoising prior and no
	// z-scoring won the detector study (see EXPERIMENTS.md): GEA merges
	// shift the gram *pattern*, and standardization drowns that signal
	// in rescaled sparse-feature noise.
	detCfg.NoStandardize = true
	detCfg.NoiseStd = 0.02
	var det *autoenc.Detector
	if opts.PerWalkDetector {
		// Per-walk rows already carry walk-randomness variety; skip the
		// synthetic denoising replicas.
		detCfg.NoiseStd = -1
		det, err = autoenc.TrainGrouped(nn.FromRows(detRows), detGroups, detCfg)
	} else {
		det, err = autoenc.Train(combined, detCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: detector: %w", err)
	}

	clsCfg := cnn.DefaultConfig(ext.WalkDim(), malgen.NumClasses)
	clsCfg.Filters = opts.Filters
	clsCfg.DenseUnits = opts.DenseUnits
	clsCfg.Epochs = opts.ClassifierEpochs
	clsCfg.BatchSize = opts.BatchSize
	clsCfg.LR = opts.LR
	clsCfg.Seed = opts.Seed
	clsCfg.Hooks = opts.Obs.TrainHooks("train.classifier")
	ens, err := cnn.TrainEnsemble(nn.FromRows(walkRows), nn.FromRows(lblRows), walkLabels, clsCfg)
	if err != nil {
		return nil, fmt.Errorf("core: classifier: %w", err)
	}

	p := &Pipeline{Extractor: ext, Detector: det, Ensemble: ens, opts: opts}
	// Stamp the fingerprint while the pipeline is provably quiescent, so
	// serving-time Fingerprint calls are pure reads.
	if _, err := p.Fingerprint(); err != nil {
		return nil, err
	}
	p.Instrument(opts.Obs)
	if opts.Cache != nil {
		if err := p.AttachCache(opts.Cache); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Analyze runs the full pipeline on one CFG. salt individualizes the
// walk randomness (use a stable per-sample value for reproducibility).
func (p *Pipeline) Analyze(c *disasm.CFG, salt int64) (*Decision, error) {
	v, err := p.Extractor.Extract(c, salt)
	if err != nil {
		return nil, err
	}
	return p.scoreVectors(v)
}

// scoreVectors runs the scoring half of Analyze — detector error plus
// ensemble vote — over already-extracted representations. It is the
// shared tail of the fresh path and the feature-cache hit path, which
// is what keeps cached decisions bit-identical to uncached ones.
func (p *Pipeline) scoreVectors(v *features.Vectors) (*Decision, error) {
	var re float64
	if p.opts.PerWalkDetector {
		re = p.Detector.SampleError(v.CombinedWalks)
	} else {
		re = p.Detector.ReconstructionError(v.Combined)
	}
	cls, err := p.Ensemble.Vote(v.DBL, v.LBL)
	if err != nil {
		return nil, err
	}
	return &Decision{
		Adversarial: re > p.Detector.Threshold(),
		RE:          re,
		Class:       malgen.Class(cls),
	}, nil
}

// analyzeChunkSize is the number of samples per scoring chunk in
// AnalyzeBatch. Large chunks feed the sharded GEMM path: 512 samples
// contribute 512*WalkCount walk rows per labeling, enough M for the
// kernels' statically owned row ranges to occupy every worker, where
// 64-row chunks left the M split mostly serial. The in-flight row
// matrices stay modest — at the default feature scale a chunk holds a
// few MB across its detector and classifier matrices, times
// analyzeDepth slots.
const analyzeChunkSize = 512

// analyzeDepth is the extraction look-ahead in chunks: extraction may
// run at most this many chunks ahead of scoring, bounding buffer
// memory while letting the two stages overlap. Two slots stay the
// right lookahead after the chunk-size raise: extraction and scoring
// shifted in the same ratio (both are per-sample work), so one chunk
// of lookahead still hides extraction behind scoring, and deeper
// pipelines would only multiply the (now 8x larger) resident chunk
// buffers without closing any stall.
const analyzeDepth = 2

// chunkBuf is one slot of the two-stage analyze pipeline: pre-offset
// row matrices the extraction stage fills (chunk sample i owns rows
// [i*wc, (i+1)*wc), wc the fixed per-sample walk count) and the
// scoring stage consumes with cross-sample batched forwards.
type chunkBuf struct {
	lo, n      int        // sample range [lo, lo+n) of the batch
	dblX, lblX *nn.Matrix // per-walk classifier rows, n*wc x WalkDim
	detX       *nn.Matrix // detector rows: n*wc x Dim (per-walk) or n x Dim
	groups     []int      // detector row -> chunk sample (per-walk mode)
	errs       []error    // per-sample extraction errors
	res        []float64  // per-sample reconstruction errors
	cls        []int      // per-sample vote winners
}

func (p *Pipeline) getChunk() *chunkBuf {
	if c, ok := p.chunks.Get().(*chunkBuf); ok {
		return c
	}
	return new(chunkBuf)
}

// AnalyzeBatch analyzes many CFGs through a bounded two-stage pipeline:
// extraction chunks fan out across the worker pool into pre-offset row
// matrices (walk counts are fixed per sample, so each sample's rows
// land at deterministic offsets) while the scoring stage consumes
// completed chunks with cross-sample batched forwards — a chunk's
// detector errors and ensemble votes run as a handful of large GEMMs
// instead of per-sample slivers, and extraction of the next chunk
// overlaps the scoring of the current one. Results are bit-identical
// to per-sample Analyze calls with the same salts; a failing sample's
// error carries its index.
func (p *Pipeline) AnalyzeBatch(cfgs []*disasm.CFG, salts []int64) ([]*Decision, error) {
	if len(cfgs) != len(salts) {
		return nil, fmt.Errorf("core: %d cfgs but %d salts", len(cfgs), len(salts))
	}
	out, errs := p.analyzeBatch(cfgs, salts, nil)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// analyzeBatch is AnalyzeBatch with per-sample error reporting: errs[i]
// is non-nil exactly when sample i failed, and out[i] is non-nil
// otherwise. The Batcher serves coalesced requests through this form so
// one bad CFG fails only its submitter. A non-nil keys slice (parallel
// to cfgs) asks the scoring stage to fill the attached cache with each
// successful sample's features and verdict; nil runs fully uncached.
func (p *Pipeline) analyzeBatch(cfgs []*disasm.CFG, salts []int64, keys []store.Key) ([]*Decision, []error) {
	n := len(cfgs)
	out := make([]*Decision, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs
	}
	nChunks := (n + analyzeChunkSize - 1) / analyzeChunkSize
	depth := analyzeDepth
	if depth > nChunks {
		depth = nChunks
	}
	slots := make([]*chunkBuf, depth)
	for i := range slots {
		slots[i] = p.getChunk()
	}
	par.Overlap(nChunks, depth,
		func(ci, slot int) {
			lo := ci * analyzeChunkSize
			hi := lo + analyzeChunkSize
			if hi > n {
				hi = n
			}
			t := p.met.extractNs.Start()
			p.extractChunk(slots[slot], cfgs, salts, lo, hi)
			p.met.extractNs.Stop(t)
		},
		func(ci, slot int) {
			t := p.met.scoreNs.Start()
			p.scoreChunk(slots[slot], out, errs, keys)
			p.met.scoreNs.Stop(t)
		})
	for _, c := range slots {
		p.chunks.Put(c)
	}
	return out, errs
}

// extractChunk fills one chunk's row matrices from samples [lo, hi) of
// the batch, fanning the per-sample extractions across the worker pool.
// A sample that fails to extract records its error and zeroes its rows,
// so the chunk's batched forwards stay well-shaped and deterministic.
func (p *Pipeline) extractChunk(c *chunkBuf, cfgs []*disasm.CFG, salts []int64, lo, hi int) {
	wc := p.Extractor.Config().WalkCount
	perWalk := p.opts.PerWalkDetector
	n := hi - lo
	c.lo, c.n = lo, n
	c.dblX = ensureMat(&c.dblX, n*wc, p.Extractor.WalkDim())
	c.lblX = ensureMat(&c.lblX, n*wc, p.Extractor.WalkDim())
	if perWalk {
		c.detX = ensureMat(&c.detX, n*wc, p.Extractor.Dim())
		c.groups = ensureInts(&c.groups, n*wc)
		for r := range c.groups {
			c.groups[r] = r / wc
		}
	} else {
		c.detX = ensureMat(&c.detX, n, p.Extractor.Dim())
	}
	c.errs = ensureErrs(&c.errs, n)
	par.For(n, func(i int) {
		c.errs[i] = nil
		vb, _ := p.vecs.Get().(*features.Vectors)
		v, err := p.Extractor.ExtractInto(vb, cfgs[lo+i], salts[lo+i])
		if v != nil {
			defer p.vecs.Put(v)
		} else if vb != nil {
			defer p.vecs.Put(vb)
		}
		if err != nil {
			c.errs[i] = fmt.Errorf("core: sample %d: %w", lo+i, err)
			for w := 0; w < wc; w++ {
				zeroRow(c.dblX.Row(i*wc + w))
				zeroRow(c.lblX.Row(i*wc + w))
				if perWalk {
					zeroRow(c.detX.Row(i*wc + w))
				}
			}
			if !perWalk {
				zeroRow(c.detX.Row(i))
			}
			return
		}
		for w := 0; w < wc; w++ {
			copy(c.dblX.Row(i*wc+w), v.DBL[w])
			copy(c.lblX.Row(i*wc+w), v.LBL[w])
			if perWalk {
				copy(c.detX.Row(i*wc+w), v.CombinedWalks[w])
			}
		}
		if !perWalk {
			copy(c.detX.Row(i), v.Combined)
		}
	})
}

// scoreChunk runs the batched scoring stage over one extracted chunk —
// one standardize+forward+RMSE pass for the detector and one forward
// per labeling for the ensemble — and scatters decisions into the
// batch-level output. With a non-nil keys slice it also fills the
// attached cache from the chunk's rows; this runs in the serial
// scoring stage, the sanctioned place for shared-state side effects
// (the extraction stage's par.For bodies must stay pure).
func (p *Pipeline) scoreChunk(c *chunkBuf, out []*Decision, errs []error, keys []store.Key) {
	failed := 0
	for _, err := range c.errs {
		if err != nil {
			failed++
		}
	}
	p.met.samples.Add(uint64(c.n - failed))
	p.met.errors.Add(uint64(failed))
	var threshold float64
	if failed < c.n {
		c.res = ensureF64(&c.res, c.n)
		c.cls = ensureInts(&c.cls, c.n)
		if p.opts.PerWalkDetector {
			p.Detector.SampleErrorsInto(c.res, c.detX, c.groups)
		} else {
			p.Detector.ReconstructionErrorsInto(c.res, c.detX)
		}
		p.Ensemble.VoteBatchInto(c.cls, c.dblX, c.lblX, p.Extractor.Config().WalkCount)
		threshold = p.Detector.Threshold()
	}
	for i := 0; i < c.n; i++ {
		if err := c.errs[i]; err != nil {
			errs[c.lo+i] = err
			continue
		}
		out[c.lo+i] = &Decision{
			Adversarial: c.res[i] > threshold,
			RE:          c.res[i],
			Class:       malgen.Class(c.cls[i]),
		}
	}
	if p.cache != nil && keys != nil {
		wc := p.Extractor.Config().WalkCount
		for i := 0; i < c.n; i++ {
			if c.errs[i] != nil {
				continue
			}
			k := keys[c.lo+i]
			p.cache.PutFeatures(k, p.packChunkVectors(c, i, wc))
			p.cache.PutVerdict(k, verdictOf(out[c.lo+i]))
		}
	}
}

// AnalyzeBinary disassembles and analyzes a raw SOTB binary. With a
// cache attached, the verdict tier is consulted before any parsing or
// disassembly (a hit is a pure hash lookup) and the feature tier
// before extraction; a full miss computes the decision on the normal
// path and fills both tiers.
func (p *Pipeline) AnalyzeBinary(bin []byte, salt int64) (*Decision, error) {
	if p.cache == nil {
		return p.analyzeBinaryFresh(bin, salt, store.Key{}, false)
	}
	k := p.byteKey(bin, salt)
	t := p.met.cacheHitNs.Start()
	if v, ok := p.cache.Verdict(k); ok {
		p.met.cacheHitNs.Stop(t)
		return decisionOf(v), nil
	}
	if d, ok, err := p.scoreCachedFeatures(k); ok {
		return d, err
	}
	return p.analyzeBinaryFresh(bin, salt, k, true)
}

// analyzeBinaryFresh is the uncached single-binary path; with fill set
// it stores the computed features and verdict under k.
func (p *Pipeline) analyzeBinaryFresh(bin []byte, salt int64, k store.Key, fill bool) (*Decision, error) {
	parsed, err := parseBinary(bin)
	if err != nil {
		return nil, err
	}
	cfg, err := disasm.Disassemble(parsed)
	if err != nil {
		return nil, fmt.Errorf("core: disassemble: %w", err)
	}
	v, err := p.Extractor.Extract(cfg, salt)
	if err != nil {
		return nil, err
	}
	d, err := p.scoreVectors(v)
	if err == nil && fill {
		p.fillCache(k, v, d)
	}
	return d, err
}

// AnalyzeBinaryBatch disassembles and analyzes many raw SOTB binaries
// in one batched pass. A binary that fails to parse or disassemble
// aborts the batch with its index in the error. With a cache attached
// the batch partitions: verdict hits are served immediately, feature
// hits skip straight to scoring, and only true misses flow through the
// two-stage extract/score pipeline (which fills the cache as it goes).
// Per-sample results are bit-identical either way.
func (p *Pipeline) AnalyzeBinaryBatch(bins [][]byte, salts []int64) ([]*Decision, error) {
	if len(bins) != len(salts) {
		return nil, fmt.Errorf("core: %d binaries but %d salts", len(bins), len(salts))
	}
	if p.cache == nil {
		cfgs, err := p.disassembleAll(bins, nil)
		if err != nil {
			return nil, err
		}
		return p.AnalyzeBatch(cfgs, salts)
	}

	out := make([]*Decision, len(bins))
	keys := make([]store.Key, len(bins))
	var missIdx []int
	for i, bin := range bins {
		keys[i] = p.byteKey(bin, salts[i])
		if v, ok := p.cache.Verdict(keys[i]); ok {
			out[i] = decisionOf(v)
			continue
		}
		d, ok, err := p.scoreCachedFeatures(keys[i])
		if err != nil {
			return nil, fmt.Errorf("core: sample %d: %w", i, err)
		}
		if ok {
			out[i] = d
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	missBins := make([][]byte, len(missIdx))
	missSalts := make([]int64, len(missIdx))
	missKeys := make([]store.Key, len(missIdx))
	for j, i := range missIdx {
		missBins[j] = bins[i]
		missSalts[j] = salts[i]
		missKeys[j] = keys[i]
	}
	cfgs, err := p.disassembleAll(missBins, missIdx)
	if err != nil {
		return nil, err
	}
	decs, errs := p.analyzeBatch(cfgs, missSalts, missKeys)
	for j, i := range missIdx {
		if errs[j] != nil {
			return nil, fmt.Errorf("core: sample %d: %w", i, errs[j])
		}
		out[i] = decs[j]
	}
	return out, nil
}

// disassembleAll parses and disassembles every binary; a failure
// aborts with the sample's index. idx, when non-nil, maps local
// positions back to the caller's original indices for error messages.
func (p *Pipeline) disassembleAll(bins [][]byte, idx []int) ([]*disasm.CFG, error) {
	cfgs := make([]*disasm.CFG, len(bins))
	for i, bin := range bins {
		n := i
		if idx != nil {
			n = idx[i]
		}
		parsed, err := parseBinary(bin)
		if err != nil {
			return nil, fmt.Errorf("core: sample %d: %w", n, err)
		}
		g, err := disasm.Disassemble(parsed)
		if err != nil {
			return nil, fmt.Errorf("core: sample %d: disassemble: %w", n, err)
		}
		cfgs[i] = g
	}
	return cfgs, nil
}

// Options returns the training options.
func (p *Pipeline) Options() Options { return p.opts }

// SetFastScoring toggles the opt-in relaxed-precision scoring mode for
// the whole pipeline: the detector's reconstruction passes and both
// ensemble members switch to the FMA micro-kernels, relaxed zero-quad
// skipping, and the reciprocal-multiply softmax. Decisions stay within
// the tolerance documented in DESIGN.md §7 of the default bit-exact
// path. This is a runtime serving knob, deliberately not an Options
// field: Options is persisted with the model, and fast mode must never
// survive a Save/Load round trip or leak into training. Toggle before
// serving traffic, not concurrently with Analyze calls.
func (p *Pipeline) SetFastScoring(on bool) {
	p.Detector.SetFastInference(on)
	p.Ensemble.SetFastInference(on)
}

// FastScoring reports whether relaxed-precision scoring is enabled.
func (p *Pipeline) FastScoring() bool { return p.Detector.FastInference() }

func fillFrom(opts, def Options) Options {
	if opts.Features.TopK == 0 {
		opts.Features = def.Features
	}
	if opts.DetectorEpochs == 0 {
		opts.DetectorEpochs = def.DetectorEpochs
	}
	if opts.ClassifierEpochs == 0 {
		opts.ClassifierEpochs = def.ClassifierEpochs
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = def.BatchSize
	}
	if opts.LR == 0 {
		opts.LR = def.LR
	}
	if opts.Alpha == 0 {
		opts.Alpha = def.Alpha
	}
	if opts.Filters == 0 {
		opts.Filters = def.Filters
	}
	if opts.DenseUnits == 0 {
		opts.DenseUnits = def.DenseUnits
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	return opts
}
