package core

import (
	"testing"

	"soteria/internal/gea"
	"soteria/internal/malgen"
)

// testOptions shrinks everything so the full pipeline trains in a few
// seconds.
func testOptions() Options {
	opts := DefaultOptions()
	opts.Features.WalkCount = 5
	opts.DetectorEpochs = 30
	opts.ClassifierEpochs = 40
	opts.Filters = 8
	opts.DenseUnits = 32
	opts.BatchSize = 32
	return opts
}

func trainCorpus(t *testing.T, perClass int) []*malgen.Sample {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: 7})
	var out []*malgen.Sample
	for _, c := range malgen.Classes {
		for i := 0; i < perClass; i++ {
			s, err := g.Sample(c)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
		}
	}
	return out
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, testOptions()); err != ErrNoSamples {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline training")
	}
	samples := trainCorpus(t, 20)
	p, err := Train(samples, testOptions())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	// 1. Clean training samples mostly pass the detector and classify
	// correctly.
	cleanOK, clsOK := 0, 0
	for i, s := range samples {
		dec, err := p.Analyze(s.CFG, int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Adversarial {
			cleanOK++
		}
		if dec.Class == s.Class {
			clsOK++
		}
	}
	if frac := float64(cleanOK) / float64(len(samples)); frac < 0.7 {
		t.Fatalf("only %.2f of clean samples passed the detector", frac)
	}
	if frac := float64(clsOK) / float64(len(samples)); frac < 0.8 {
		t.Fatalf("classification accuracy on training corpus = %.2f", frac)
	}

	// 2. GEA AEs are mostly detected.
	g := malgen.NewGenerator(malgen.Config{Seed: 99})
	target, err := g.SampleSized(malgen.Benign, 120)
	if err != nil {
		t.Fatal(err)
	}
	detected, total := 0, 0
	for i, s := range samples {
		if s.Class == malgen.Benign || i%4 != 0 {
			continue
		}
		_, cfg, err := gea.MergeToCFG(s.Program, target.Program)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := p.Analyze(cfg, int64(5000+i))
		if err != nil {
			t.Fatal(err)
		}
		total++
		if dec.Adversarial {
			detected++
		}
	}
	if total == 0 {
		t.Fatal("no AEs generated")
	}
	// Detection quality scales with corpus size (see EXPERIMENTS.md: 82%
	// at the default experiment scale); this 80-sample corpus only
	// guards the wiring, so the bound is loose.
	if frac := float64(detected) / float64(total); frac < 0.4 {
		t.Fatalf("detected only %.2f of GEA AEs (%d/%d)", frac, detected, total)
	}
}

func TestAnalyzeBinaryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline training")
	}
	samples := trainCorpus(t, 6)
	opts := testOptions()
	opts.DetectorEpochs = 10
	opts.ClassifierEpochs = 5
	p, err := Train(samples, opts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := samples[0].Binary.Encode()
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.AnalyzeBinary(raw, 42)
	if err != nil {
		t.Fatalf("AnalyzeBinary: %v", err)
	}
	b, err := p.Analyze(samples[0].CFG, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.RE != b.RE || a.Class != b.Class || a.Adversarial != b.Adversarial {
		t.Fatalf("binary path disagrees: %+v vs %+v", a, b)
	}
	if _, err := p.AnalyzeBinary([]byte("junk"), 0); err == nil {
		t.Fatal("junk bytes should error")
	}
}

func TestOptionsDefaulting(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	samples := trainCorpus(t, 3)
	// Zero options must be filled with defaults (then shrunk manually to
	// stay fast): verify fillFrom wires defaults.
	opts := fillFrom(Options{}, DefaultOptions())
	if opts.Features.TopK == 0 || opts.DetectorEpochs == 0 || opts.Filters == 0 {
		t.Fatalf("fillFrom left zeros: %+v", opts)
	}
	_ = samples
}

func TestPaperOptionsMatchPaper(t *testing.T) {
	opts := PaperOptions()
	if opts.Features.TopK != 500 || opts.Features.WalkCount != 10 || opts.Features.LengthFactor != 5 {
		t.Fatalf("feature params = %+v", opts.Features)
	}
	if opts.Filters != 46 || opts.DenseUnits != 512 {
		t.Fatalf("CNN params = %+v", opts)
	}
	if opts.DetectorEpochs != 100 || opts.ClassifierEpochs != 100 || opts.BatchSize != 128 {
		t.Fatalf("training params = %+v", opts)
	}
}
