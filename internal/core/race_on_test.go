//go:build race

package core

// raceEnabled reports whether the race detector is active. Under it
// sync.Pool.Put randomly drops items, so allocation counts over the
// pooled scoring path are noisy and alloc guards skip.
const raceEnabled = true
