// Package disasm recovers control flow graphs from SOTB binaries. It is
// this repository's stand-in for radare2 in the paper's pipeline: a
// recursive-traversal disassembler that decodes only instructions
// reachable from the entry point, splits them into basic blocks at
// leaders, and wires the block-level CFG.
//
// Because traversal starts at the entry point and follows control flow,
// bytes appended to the binary, extra sections, and any other unreachable
// code never appear in the CFG — the property Soteria's feature extractor
// relies on to ignore impractical (byte-injection) adversarial examples.
package disasm

import (
	"fmt"
	"sort"

	"soteria/internal/graph"
	"soteria/internal/isa"
)

// BasicBlock is a maximal straight-line run of reachable instructions.
type BasicBlock struct {
	Addr  uint32     // virtual address of the first instruction
	Insts []isa.Inst // decoded instructions, terminator last
	Succs []uint32   // successor block addresses, ascending
	ID    int        // dense node ID in the CFG graph
}

// CFG is a recovered control flow graph. Node IDs are dense and assigned
// in ascending block-address order, so they are deterministic for a
// given binary.
type CFG struct {
	Entry  uint32                 // entry block address
	Blocks map[uint32]*BasicBlock // by block address
	G      *graph.Graph           // block-level graph over dense IDs
	Addrs  []uint32               // node ID -> block address, ascending
}

// EntryNode returns the graph node ID of the entry block.
func (c *CFG) EntryNode() int { return c.Blocks[c.Entry].ID }

// NumNodes returns the number of basic blocks.
func (c *CFG) NumNodes() int { return len(c.Addrs) }

// Block returns the basic block with the given node ID.
func (c *CFG) Block(id int) *BasicBlock { return c.Blocks[c.Addrs[id]] }

// Disassemble recovers the CFG of a binary by recursive traversal from
// its entry point. It fails only when the entry point itself does not
// decode; unreachable or malformed code elsewhere is simply ignored.
func Disassemble(bin *isa.Binary) (*CFG, error) {
	fetch := func(addr uint32) (isa.Inst, bool) {
		sec := bin.SectionAt(addr)
		if sec == nil || !sec.Executable() {
			return isa.Inst{}, false
		}
		in, err := isa.Decode(sec.Data[addr-sec.Addr:])
		if err != nil {
			return isa.Inst{}, false
		}
		return in, true
	}

	if _, ok := fetch(bin.Entry); !ok {
		return nil, fmt.Errorf("disasm: entry point 0x%x does not decode", bin.Entry)
	}

	// Pass 1: recursive traversal. Decode every reachable instruction and
	// collect leaders (entry, branch/call targets, post-terminator
	// fallthroughs).
	insts := make(map[uint32]isa.Inst)
	leaders := map[uint32]bool{bin.Entry: true}
	work := []uint32{bin.Entry}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		if _, seen := insts[addr]; seen {
			continue
		}
		in, ok := fetch(addr)
		if !ok {
			continue
		}
		insts[addr] = in
		for _, s := range instSuccs(in, addr) {
			if _, ok := fetch(s); !ok {
				continue // target outside executable code: no edge
			}
			if in.Op.Terminates() {
				leaders[s] = true
			}
			work = append(work, s)
		}
	}

	// Any reachable jump/call target is a leader even when also reached
	// by straight-line flow.
	for _, in := range insts {
		switch in.Op {
		case isa.OpJmp, isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge, isa.OpCall:
			t := uint32(in.Imm)
			if _, ok := insts[t]; ok {
				leaders[t] = true
			}
		}
	}

	// Pass 2: build blocks from each leader up to the next terminator or
	// leader.
	blocks := make(map[uint32]*BasicBlock, len(leaders))
	for start := range leaders {
		if _, ok := insts[start]; !ok {
			continue
		}
		b := &BasicBlock{Addr: start}
		addr := start
		for {
			in, ok := insts[addr]
			if !ok {
				break // decoded region ended mid-block
			}
			b.Insts = append(b.Insts, in)
			next := addr + isa.InstSize
			if in.Op.Terminates() {
				for _, s := range instSuccs(in, addr) {
					if _, ok := insts[s]; ok {
						b.Succs = append(b.Succs, s)
					}
				}
				break
			}
			if leaders[next] {
				b.Succs = append(b.Succs, next)
				break
			}
			if _, ok := insts[next]; !ok {
				break
			}
			addr = next
		}
		sort.Slice(b.Succs, func(i, j int) bool { return b.Succs[i] < b.Succs[j] })
		b.Succs = dedupU32(b.Succs)
		blocks[start] = b
	}

	// Pass 3: dense deterministic node IDs and the graph.
	addrs := make([]uint32, 0, len(blocks))
	for a := range blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	idOf := make(map[uint32]int, len(addrs))
	for i, a := range addrs {
		blocks[a].ID = i
		idOf[a] = i
	}
	g := graph.New(len(addrs))
	for _, a := range addrs {
		for _, s := range blocks[a].Succs {
			if sid, ok := idOf[s]; ok {
				g.MustAddEdge(idOf[a], sid)
			}
		}
	}

	return &CFG{Entry: bin.Entry, Blocks: blocks, G: g, Addrs: addrs}, nil
}

// ProgramCFG assembles a program and disassembles the result — the full
// compile-then-recover path used by the corpus generator and tests.
func ProgramCFG(p *isa.Program) (*CFG, error) {
	bin, _, err := isa.Assemble(p, isa.AsmOptions{})
	if err != nil {
		return nil, fmt.Errorf("disasm: assemble: %w", err)
	}
	return Disassemble(bin)
}

// instSuccs returns the control-flow successor addresses of the
// instruction at addr.
func instSuccs(in isa.Inst, addr uint32) []uint32 {
	next := addr + isa.InstSize
	switch in.Op {
	case isa.OpJmp:
		return []uint32{uint32(in.Imm)}
	case isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge:
		return []uint32{uint32(in.Imm), next}
	case isa.OpCall:
		// Call edge plus the post-return fallthrough.
		return []uint32{uint32(in.Imm), next}
	case isa.OpRet, isa.OpHalt:
		return nil
	default:
		return []uint32{next}
	}
}

func dedupU32(s []uint32) []uint32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
