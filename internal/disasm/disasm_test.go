package disasm

import (
	"testing"

	"soteria/internal/isa"
)

// loopProgram: entry -> loop <-> loop (self via cond) -> exit.
func loopProgram() *isa.Program {
	return &isa.Program{Funcs: []*isa.Function{{
		Name: "main",
		Blocks: []*isa.Block{
			{
				Label: "entry",
				Body:  []isa.Inst{{Op: isa.OpMovI, R1: 0, Imm: 0}},
				Term:  isa.TermJump{To: "loop"},
			},
			{
				Label: "loop",
				Body:  []isa.Inst{{Op: isa.OpAdd, R1: 0, R2: 1}, {Op: isa.OpCmp, R1: 0, R2: 1}},
				Term:  isa.TermCond{Op: isa.OpJlt, To: "loop", Else: "exit"},
			},
			{Label: "exit", Term: isa.TermHalt{}},
		},
	}}}
}

func TestDisassembleBlockStructure(t *testing.T) {
	cfg, err := ProgramCFG(loopProgram())
	if err != nil {
		t.Fatalf("ProgramCFG: %v", err)
	}
	if got := cfg.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	if cfg.EntryNode() != 0 {
		t.Fatalf("EntryNode = %d, want 0 (lowest address)", cfg.EntryNode())
	}
	// entry -> loop; loop -> loop, exit; exit -> nothing.
	g := cfg.G
	if !g.HasEdge(0, 1) {
		t.Error("missing edge entry->loop")
	}
	if !g.HasEdge(1, 1) {
		t.Error("missing self loop loop->loop")
	}
	if !g.HasEdge(1, 2) {
		t.Error("missing edge loop->exit")
	}
	if g.OutDegree(2) != 0 {
		t.Error("exit should have no successors")
	}
}

func TestDisassembleIgnoresAppendedSection(t *testing.T) {
	p := loopProgram()
	bin, _, err := isa.Assemble(p, isa.AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	base, err := Disassemble(bin)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}

	// Binary-level AE: append a whole executable section of valid code
	// that nothing jumps to. The CFG must be identical.
	junk := isa.Inst{Op: isa.OpNop}.Encode(nil)
	junk = isa.Inst{Op: isa.OpHalt}.Encode(junk)
	bin.AppendSection(".evil", isa.SecExec, junk)
	perturbed, err := Disassemble(bin)
	if err != nil {
		t.Fatalf("Disassemble perturbed: %v", err)
	}
	if perturbed.NumNodes() != base.NumNodes() || perturbed.G.NumEdges() != base.G.NumEdges() {
		t.Fatalf("appended section changed CFG: %d/%d nodes, %d/%d edges",
			perturbed.NumNodes(), base.NumNodes(), perturbed.G.NumEdges(), base.G.NumEdges())
	}
}

func TestDisassembleIgnoresAppendedBytes(t *testing.T) {
	bin, _, err := isa.Assemble(loopProgram(), isa.AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	base, _ := Disassemble(bin)

	// Append raw bytes to the text section itself (end-of-file padding);
	// they sit after the final HALT and are never reached.
	text := bin.Section(".text")
	text.Data = append(text.Data, isa.Inst{Op: isa.OpSys, Imm: 666}.Encode(nil)...)
	perturbed, err := Disassemble(bin)
	if err != nil {
		t.Fatalf("Disassemble perturbed: %v", err)
	}
	if perturbed.NumNodes() != base.NumNodes() {
		t.Fatalf("appended bytes changed CFG: %d vs %d nodes", perturbed.NumNodes(), base.NumNodes())
	}
}

func TestDisassembleCallEdges(t *testing.T) {
	p := &isa.Program{Funcs: []*isa.Function{
		{
			Name: "main",
			Blocks: []*isa.Block{
				{Label: "entry", Term: isa.TermCall{Target: "fn", Ret: "after"}},
				{Label: "after", Term: isa.TermHalt{}},
			},
		},
		{
			Name: "helper",
			Blocks: []*isa.Block{
				{Label: "fn", Body: []isa.Inst{{Op: isa.OpNop}}, Term: isa.TermRet{}},
			},
		},
	}}
	cfg, err := ProgramCFG(p)
	if err != nil {
		t.Fatalf("ProgramCFG: %v", err)
	}
	if cfg.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", cfg.NumNodes())
	}
	// entry(0) -> after(1) fallthrough edge and entry(0) -> fn(2) call edge.
	if !cfg.G.HasEdge(0, 1) || !cfg.G.HasEdge(0, 2) {
		t.Fatalf("call edges wrong: %v", cfg.G.Edges())
	}
}

func TestDisassembleBadEntry(t *testing.T) {
	bin := &isa.Binary{Entry: 0x9999, Sections: []isa.Section{
		{Name: ".text", Addr: 0x1000, Flags: isa.SecExec, Data: isa.Inst{Op: isa.OpHalt}.Encode(nil)},
	}}
	if _, err := Disassemble(bin); err == nil {
		t.Fatal("expected error for undecodable entry")
	}
}

func TestDisassembleJumpOutsideTextIgnored(t *testing.T) {
	// Hand-craft: entry block conditionally jumps to a non-executable
	// address; the CFG keeps only the fallthrough edge.
	text := isa.Inst{Op: isa.OpJz, Imm: 0x8000}.Encode(nil) // bogus target
	text = isa.Inst{Op: isa.OpHalt}.Encode(text)
	bin := &isa.Binary{Entry: 0x1000, Sections: []isa.Section{
		{Name: ".text", Addr: 0x1000, Flags: isa.SecExec, Data: text},
	}}
	cfg, err := Disassemble(bin)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if cfg.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", cfg.NumNodes())
	}
	if cfg.G.OutDegree(0) != 1 || !cfg.G.HasEdge(0, 1) {
		t.Fatalf("expected single fallthrough edge, got %v", cfg.G.Edges())
	}
}

func TestDisassembleTruncatedTailStopsCleanly(t *testing.T) {
	// A conditional branch whose fallthrough runs off the end of the
	// section: the path just ends, no error.
	text := isa.Inst{Op: isa.OpJz, Imm: 0x1000}.Encode(nil)
	text = append(text, 0x01, 0x02) // garbage tail, not a full instruction
	bin := &isa.Binary{Entry: 0x1000, Sections: []isa.Section{
		{Name: ".text", Addr: 0x1000, Flags: isa.SecExec, Data: text},
	}}
	cfg, err := Disassemble(bin)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if cfg.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", cfg.NumNodes())
	}
}

func TestProgramBlocksMapOneToOne(t *testing.T) {
	// Program blocks whose terminators are all explicit map 1:1 onto CFG
	// nodes (the invariant the corpus generator relies on).
	p := loopProgram()
	cfg, err := ProgramCFG(p)
	if err != nil {
		t.Fatalf("ProgramCFG: %v", err)
	}
	if got, want := cfg.NumNodes(), p.NumBlocks(); got != want {
		t.Fatalf("CFG nodes = %d, program blocks = %d", got, want)
	}
}

func TestBlockAccessors(t *testing.T) {
	cfg, err := ProgramCFG(loopProgram())
	if err != nil {
		t.Fatalf("ProgramCFG: %v", err)
	}
	b := cfg.Block(0)
	if b == nil || b.Addr != cfg.Entry || b.ID != 0 {
		t.Fatalf("Block(0) = %+v", b)
	}
	if len(b.Insts) == 0 || !b.Insts[len(b.Insts)-1].Op.Terminates() {
		t.Fatalf("entry block should end with terminator: %v", b.Insts)
	}
}
