package disasm

import (
	"encoding/json"
	"fmt"
	"strings"
)

// jsonCFG is the serialization shape of a CFG.
type jsonCFG struct {
	Entry  uint32      `json:"entry"`
	Blocks []jsonBlock `json:"blocks"`
}

type jsonBlock struct {
	ID    int      `json:"id"`
	Addr  uint32   `json:"addr"`
	Insts []string `json:"insts"`
	Succs []int    `json:"succs"`
}

// MarshalJSON serializes the CFG with blocks in node-ID order,
// instructions rendered as assembly text, and successors as node IDs.
func (c *CFG) MarshalJSON() ([]byte, error) {
	out := jsonCFG{Entry: c.Entry, Blocks: make([]jsonBlock, 0, c.NumNodes())}
	idOf := make(map[uint32]int, len(c.Addrs))
	for id, addr := range c.Addrs {
		idOf[addr] = id
	}
	for id := range c.Addrs {
		b := c.Block(id)
		jb := jsonBlock{ID: id, Addr: b.Addr, Succs: []int{}}
		for _, in := range b.Insts {
			jb.Insts = append(jb.Insts, in.String())
		}
		for _, s := range b.Succs {
			if sid, ok := idOf[s]; ok {
				jb.Succs = append(jb.Succs, sid)
			}
		}
		out.Blocks = append(out.Blocks, jb)
	}
	return json.Marshal(out)
}

// DOT renders the CFG in Graphviz syntax with block addresses and
// instruction counts as labels.
func (c *CFG) DOT(name string) string {
	labels := make([]string, c.NumNodes())
	for id := range c.Addrs {
		b := c.Block(id)
		labels[id] = fmt.Sprintf("0x%x (%d insts)", b.Addr, len(b.Insts))
	}
	return c.G.DOT(name, labels)
}

// Text renders a human-readable disassembly listing, blocks in address
// order.
func (c *CFG) Text() string {
	var sb strings.Builder
	idOf := make(map[uint32]int, len(c.Addrs))
	for id, addr := range c.Addrs {
		idOf[addr] = id
	}
	for id := range c.Addrs {
		b := c.Block(id)
		marker := ""
		if b.Addr == c.Entry {
			marker = "  <entry>"
		}
		fmt.Fprintf(&sb, "block %d @ 0x%x%s\n", id, b.Addr, marker)
		addr := b.Addr
		for _, in := range b.Insts {
			fmt.Fprintf(&sb, "  0x%04x  %s\n", addr, in)
			addr += 8
		}
		if len(b.Succs) > 0 {
			ids := make([]string, 0, len(b.Succs))
			for _, s := range b.Succs {
				if sid, ok := idOf[s]; ok {
					ids = append(ids, fmt.Sprint(sid))
				}
			}
			fmt.Fprintf(&sb, "  -> %s\n", strings.Join(ids, ", "))
		}
	}
	return sb.String()
}
