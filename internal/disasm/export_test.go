package disasm

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestMarshalJSON(t *testing.T) {
	cfg, err := ProgramCFG(loopProgram())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	var decoded struct {
		Entry  uint32 `json:"entry"`
		Blocks []struct {
			ID    int      `json:"id"`
			Addr  uint32   `json:"addr"`
			Insts []string `json:"insts"`
			Succs []int    `json:"succs"`
		} `json:"blocks"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if decoded.Entry != cfg.Entry || len(decoded.Blocks) != cfg.NumNodes() {
		t.Fatalf("structure mismatch: %+v", decoded)
	}
	for i, b := range decoded.Blocks {
		if b.ID != i {
			t.Fatalf("blocks not in ID order: %d at %d", b.ID, i)
		}
		if len(b.Insts) == 0 {
			t.Fatalf("block %d has no instructions", i)
		}
	}
	// loop block (id 1) has a self successor and exit.
	if len(decoded.Blocks[1].Succs) != 2 {
		t.Fatalf("loop block succs = %v", decoded.Blocks[1].Succs)
	}
}

func TestCFGDOT(t *testing.T) {
	cfg, err := ProgramCFG(loopProgram())
	if err != nil {
		t.Fatal(err)
	}
	dot := cfg.DOT("sample")
	for _, want := range []string{"digraph", "insts", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestCFGText(t *testing.T) {
	cfg, err := ProgramCFG(loopProgram())
	if err != nil {
		t.Fatal(err)
	}
	text := cfg.Text()
	if !strings.Contains(text, "<entry>") {
		t.Fatalf("Text missing entry marker:\n%s", text)
	}
	if !strings.Contains(text, "jmp") || !strings.Contains(text, "halt") {
		t.Fatalf("Text missing instructions:\n%s", text)
	}
	if !strings.Contains(text, "->") {
		t.Fatalf("Text missing successors:\n%s", text)
	}
}
