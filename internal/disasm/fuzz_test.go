package disasm

import (
	"testing"

	"soteria/internal/isa"
)

// FuzzDisassemble feeds arbitrary bytes to the disassembler as a text
// section: it must recover a CFG or error, never panic or loop forever,
// and every recovered block must end with a terminator or a block/
// region boundary.
func FuzzDisassemble(f *testing.F) {
	bin, _, err := isa.Assemble(loopProgram(), isa.AsmOptions{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Section(".text").Data)
	f.Add(isa.Inst{Op: isa.OpHalt}.Encode(nil))
	f.Add(isa.Inst{Op: isa.OpJmp, Imm: 0x1000}.Encode(nil)) // self loop
	f.Add([]byte{0xff, 0xfe, 0xfd})

	f.Fuzz(func(t *testing.T, text []byte) {
		b := &isa.Binary{Entry: 0x1000, Sections: []isa.Section{
			{Name: ".text", Addr: 0x1000, Flags: isa.SecExec, Data: text},
		}}
		cfg, err := Disassemble(b)
		if err != nil {
			return
		}
		if cfg.NumNodes() == 0 {
			t.Fatal("successful disassembly produced empty CFG")
		}
		// Structural invariants.
		if cfg.G.NumNodes() != len(cfg.Addrs) {
			t.Fatal("graph size disagrees with address table")
		}
		for id, addr := range cfg.Addrs {
			blk := cfg.Blocks[addr]
			if blk == nil || blk.ID != id {
				t.Fatalf("block table inconsistent at %d", id)
			}
			if len(blk.Insts) == 0 {
				t.Fatalf("empty block at 0x%x", addr)
			}
		}
		for _, r := range cfg.G.Reachable(cfg.EntryNode()) {
			_ = r // reachability must terminate without panicking
		}
	})
}
