// Package dynamic implements the behavioural-analysis alternative the
// paper's introduction contrasts with Soteria's static approach:
// execute each sample in a sandbox (the bundled SOT-32 VM), record its
// system-call trace, and classify on trace features. Dynamic features
// are comprehensive — they see exactly what the program does — but
// extraction costs a full execution per sample, the scalability
// weakness the paper cites; BenchmarkDynamicVsStatic quantifies it.
package dynamic

import (
	"errors"
	"fmt"
	"math/rand"

	"soteria/internal/isa"
	"soteria/internal/ngram"
	"soteria/internal/nn"
)

// DefaultMaxSteps bounds sandbox executions.
const DefaultMaxSteps = 500_000

// Trace executes the binary in the VM and returns its syscall-number
// sequence. Executions that exceed maxSteps return what was observed so
// far (sandboxes time out; partial traces are still useful), but other
// failures — crashed samples — are errors.
func Trace(bin *isa.Binary, maxSteps int) ([]int, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	vm := isa.NewVM(bin)
	err := vm.Run(maxSteps)
	if err != nil && !errors.Is(err, isa.ErrStepLimit) {
		return nil, fmt.Errorf("dynamic: execution failed: %w", err)
	}
	out := make([]int, len(vm.Syscalls))
	for i, sc := range vm.Syscalls {
		out[i] = int(sc[0])
	}
	return out, nil
}

// Config parameterizes the behavioural feature extractor.
type Config struct {
	// Ns are the syscall n-gram lengths (default 1, 2).
	Ns []int
	// TopK is the vocabulary size (default 128).
	TopK int
	// MaxSteps bounds each execution.
	MaxSteps int
}

func (c *Config) fill() {
	if len(c.Ns) == 0 {
		c.Ns = []int{1, 2}
	}
	if c.TopK <= 0 {
		c.TopK = 128
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = DefaultMaxSteps
	}
}

// Extractor turns syscall traces into TF-IDF vectors.
type Extractor struct {
	cfg Config
	v   *ngram.Vectorizer
}

// NewExtractor returns an unfitted behavioural extractor.
func NewExtractor(cfg Config) *Extractor {
	cfg.fill()
	return &Extractor{cfg: cfg}
}

// ErrNotFitted is returned by Extract before Fit.
var ErrNotFitted = errors.New("dynamic: extractor not fitted")

// Fit executes every training binary and builds the trace-gram
// vocabulary.
func (e *Extractor) Fit(bins []*isa.Binary) error {
	corpus := make([]map[string]int, 0, len(bins))
	for i, b := range bins {
		trace, err := Trace(b, e.cfg.MaxSteps)
		if err != nil {
			return fmt.Errorf("dynamic: fit sample %d: %w", i, err)
		}
		corpus = append(corpus, ngram.Grams(trace, e.cfg.Ns))
	}
	e.v = ngram.Fit(corpus, e.cfg.TopK)
	e.v.L2 = true
	return nil
}

// Fitted reports whether Fit succeeded.
func (e *Extractor) Fitted() bool { return e.v != nil }

// Dim returns the feature dimension.
func (e *Extractor) Dim() int { return e.cfg.TopK }

// Extract executes the binary and vectorizes its trace.
func (e *Extractor) Extract(bin *isa.Binary) ([]float64, error) {
	if !e.Fitted() {
		return nil, ErrNotFitted
	}
	trace, err := Trace(bin, e.cfg.MaxSteps)
	if err != nil {
		return nil, err
	}
	return e.v.Vector(ngram.Grams(trace, e.cfg.Ns)), nil
}

// ClassifierConfig parameterizes the behavioural classifier.
type ClassifierConfig struct {
	Classes   int
	Hidden    []int // default {64, 32}
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// Classifier is a dense network over behavioural features.
type Classifier struct {
	ext *Extractor
	net *nn.Network
}

// TrainClassifier fits the behavioural baseline end to end: traces and
// vectorizes the binaries, then trains a dense classifier.
func TrainClassifier(ext *Extractor, bins []*isa.Binary, labels []int, cfg ClassifierConfig) (*Classifier, error) {
	if !ext.Fitted() {
		return nil, ErrNotFitted
	}
	if len(bins) == 0 {
		return nil, errors.New("dynamic: no training data")
	}
	if len(bins) != len(labels) {
		return nil, fmt.Errorf("dynamic: %d binaries but %d labels", len(bins), len(labels))
	}
	if cfg.Classes <= 1 {
		return nil, fmt.Errorf("dynamic: invalid class count %d", cfg.Classes)
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64, 32}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 80
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}

	x := nn.NewMatrix(len(bins), ext.Dim())
	for i, b := range bins {
		vec, err := ext.Extract(b)
		if err != nil {
			return nil, err
		}
		copy(x.Row(i), vec)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{ext.Dim()}, cfg.Hidden...)
	layers := make([]nn.Layer, 0, 2*len(dims))
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, nn.NewDense(dims[i], dims[i+1], rng), nn.NewReLU())
	}
	layers = append(layers, nn.NewDense(dims[len(dims)-1], cfg.Classes, rng))
	net := nn.NewNetwork(layers...)
	tr := nn.Trainer{Net: net, Loss: nn.SoftmaxCrossEntropy{}, Opt: nn.NewAdam(cfg.LR)}
	if _, err := tr.Fit(x, nn.OneHot(labels, cfg.Classes), nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Seed: cfg.Seed,
	}); err != nil {
		return nil, fmt.Errorf("dynamic: train: %w", err)
	}
	return &Classifier{ext: ext, net: net}, nil
}

// Predict classifies binaries by executing them.
func (c *Classifier) Predict(bins []*isa.Binary) ([]int, error) {
	out := make([]int, len(bins))
	for i, b := range bins {
		vec, err := c.ext.Extract(b)
		if err != nil {
			return nil, err
		}
		out[i] = nn.Argmax(c.net.Predict(nn.FromRows([][]float64{vec})))[0]
	}
	return out, nil
}
