package dynamic

import (
	"testing"

	"soteria/internal/gea"
	"soteria/internal/isa"
	"soteria/internal/malgen"
)

func corpus(t *testing.T, seed int64, perClass int) ([]*isa.Binary, []int) {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: seed})
	var bins []*isa.Binary
	var labels []int
	for ci, c := range malgen.Classes {
		for i := 0; i < perClass; i++ {
			s, err := g.Sample(c)
			if err != nil {
				t.Fatal(err)
			}
			bins = append(bins, s.Binary)
			labels = append(labels, ci)
		}
	}
	return bins, labels
}

func TestTraceProducesSyscalls(t *testing.T) {
	bins, _ := corpus(t, 1, 2)
	traced := 0
	for _, b := range bins {
		tr, err := Trace(b, 0)
		if err != nil {
			t.Fatalf("Trace: %v", err)
		}
		if len(tr) > 0 {
			traced++
		}
	}
	if traced == 0 {
		t.Fatal("no sample produced a syscall trace")
	}
}

func TestTraceDeterministic(t *testing.T) {
	bins, _ := corpus(t, 2, 1)
	a, err := Trace(bins[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Trace(bins[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("trace not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestExtractorFitAndDim(t *testing.T) {
	bins, _ := corpus(t, 3, 3)
	e := NewExtractor(Config{TopK: 32})
	if _, err := e.Extract(bins[0]); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
	if err := e.Fit(bins); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	vec, err := e.Extract(bins[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 32 || e.Dim() != 32 {
		t.Fatalf("dim = %d/%d, want 32", len(vec), e.Dim())
	}
}

func TestBehaviouralClassifier(t *testing.T) {
	bins, labels := corpus(t, 4, 15)
	e := NewExtractor(Config{TopK: 64})
	if err := e.Fit(bins); err != nil {
		t.Fatal(err)
	}
	c, err := TrainClassifier(e, bins, labels, ClassifierConfig{
		Classes: malgen.NumClasses, Epochs: 100, Seed: 1,
	})
	if err != nil {
		t.Fatalf("TrainClassifier: %v", err)
	}
	testBins, testLabels := corpus(t, 5, 6)
	pred, err := c.Predict(testBins)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == testLabels[i] {
			correct++
		}
	}
	// The syscall-profile signal is real but noisy; beat chance solidly.
	if acc := float64(correct) / float64(len(pred)); acc < 0.5 {
		t.Fatalf("behavioural accuracy = %.2f, want >= 0.5", acc)
	}
}

func TestDynamicBlindToDeadCode(t *testing.T) {
	// The flip side of dynamic analysis: a GEA merge's grafted code
	// never executes, so the behavioural trace is unchanged — dynamic
	// features cannot see the graft that static CFG features flag.
	g := malgen.NewGenerator(malgen.Config{Seed: 6})
	victim, err := g.SampleSized(malgen.Mirai, 40)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := g.SampleSized(malgen.Benign, 40)
	if err != nil {
		t.Fatal(err)
	}
	aeBin, _, err := gea.MergeToCFG(victim.Program, donor.Program)
	if err != nil {
		t.Fatal(err)
	}
	origTrace, err := Trace(victim.Binary, 0)
	if err != nil {
		t.Fatal(err)
	}
	aeTrace, err := Trace(aeBin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(origTrace) != len(aeTrace) {
		t.Fatalf("GEA changed dynamic trace: %d vs %d syscalls", len(origTrace), len(aeTrace))
	}
	for i := range origTrace {
		if origTrace[i] != aeTrace[i] {
			t.Fatal("GEA changed dynamic trace contents")
		}
	}
}

func TestClassifierErrors(t *testing.T) {
	bins, labels := corpus(t, 7, 1)
	e := NewExtractor(Config{TopK: 16})
	if _, err := TrainClassifier(e, bins, labels, ClassifierConfig{Classes: 4}); err != ErrNotFitted {
		t.Fatalf("unfitted err = %v", err)
	}
	if err := e.Fit(bins); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainClassifier(e, nil, nil, ClassifierConfig{Classes: 4}); err == nil {
		t.Fatal("empty corpus should error")
	}
	if _, err := TrainClassifier(e, bins, labels[:1], ClassifierConfig{Classes: 4}); err == nil {
		t.Fatal("label mismatch should error")
	}
	if _, err := TrainClassifier(e, bins, labels, ClassifierConfig{Classes: 1}); err == nil {
		t.Fatal("single class should error")
	}
}
