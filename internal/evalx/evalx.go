// Package evalx provides the evaluation scaffolding the paper's tables
// rely on: accuracy metrics, confusion matrices, per-class breakdowns,
// stratified train/test splitting, and detection-error curves.
package evalx

import (
	"fmt"
	"math/rand"
)

// Accuracy returns the fraction of predictions matching the reference
// labels. It returns 0 for empty input.
func Accuracy(pred, want []int) float64 {
	if len(pred) != len(want) {
		panic(fmt.Sprintf("evalx: %d predictions vs %d labels", len(pred), len(want)))
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == want[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ConfusionMatrix returns counts[want][pred].
func ConfusionMatrix(pred, want []int, classes int) [][]int {
	if len(pred) != len(want) {
		panic(fmt.Sprintf("evalx: %d predictions vs %d labels", len(pred), len(want)))
	}
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i := range pred {
		if want[i] >= 0 && want[i] < classes && pred[i] >= 0 && pred[i] < classes {
			m[want[i]][pred[i]]++
		}
	}
	return m
}

// PerClassAccuracy returns, per class, the fraction of that class's
// samples classified correctly (recall). Classes without samples get -1.
func PerClassAccuracy(pred, want []int, classes int) []float64 {
	cm := ConfusionMatrix(pred, want, classes)
	out := make([]float64, classes)
	for c := 0; c < classes; c++ {
		total := 0
		for _, n := range cm[c] {
			total += n
		}
		if total == 0 {
			out[c] = -1
			continue
		}
		out[c] = float64(cm[c][c]) / float64(total)
	}
	return out
}

// PRF holds per-class precision, recall, and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// PrecisionRecallF1 computes per-class precision/recall/F1 from
// predictions. Classes with no predicted and no actual samples get
// zeros.
func PrecisionRecallF1(pred, want []int, classes int) []PRF {
	cm := ConfusionMatrix(pred, want, classes)
	out := make([]PRF, classes)
	for c := 0; c < classes; c++ {
		tp := cm[c][c]
		fp, fn := 0, 0
		for o := 0; o < classes; o++ {
			if o != c {
				fp += cm[o][c]
				fn += cm[c][o]
			}
		}
		if tp+fp > 0 {
			out[c].Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			out[c].Recall = float64(tp) / float64(tp+fn)
		}
		if out[c].Precision+out[c].Recall > 0 {
			out[c].F1 = 2 * out[c].Precision * out[c].Recall / (out[c].Precision + out[c].Recall)
		}
	}
	return out
}

// MacroF1 averages F1 over classes that appear in the reference labels.
func MacroF1(pred, want []int, classes int) float64 {
	prf := PrecisionRecallF1(pred, want, classes)
	present := make([]bool, classes)
	for _, w := range want {
		if w >= 0 && w < classes {
			present[w] = true
		}
	}
	sum, n := 0.0, 0
	for c, p := range prf {
		if present[c] {
			sum += p.F1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Rate returns the fraction of true flags.
func Rate(flags []bool) float64 {
	if len(flags) == 0 {
		return 0
	}
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return float64(n) / float64(len(flags))
}

// Split holds index sets for training and testing.
type Split struct {
	Train []int
	Test  []int
}

// StratifiedSplit partitions sample indices so each label keeps
// approximately testFrac of its samples in the test set (the paper's
// 80/20 protocol with per-class balance). Deterministic per seed.
func StratifiedSplit(labels []int, testFrac float64, seed int64) Split {
	rng := rand.New(rand.NewSource(seed))
	byLabel := make(map[int][]int)
	var order []int
	for i, l := range labels {
		if _, ok := byLabel[l]; !ok {
			order = append(order, l)
		}
		byLabel[l] = append(byLabel[l], i)
	}
	var sp Split
	for _, l := range order {
		idx := byLabel[l]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTest := int(float64(len(idx)) * testFrac)
		if nTest == 0 && len(idx) > 1 && testFrac > 0 {
			nTest = 1
		}
		sp.Test = append(sp.Test, idx[:nTest]...)
		sp.Train = append(sp.Train, idx[nTest:]...)
	}
	return sp
}

// ErrorCurvePoint is one point of the paper's Fig. 13 alpha sweep.
type ErrorCurvePoint struct {
	Alpha float64
	// CleanError is the fraction of clean samples wrongly flagged.
	CleanError float64
	// AdvError is the fraction of adversarial samples missed.
	AdvError float64
}

// DetectionErrorCurve sweeps alpha over [lo, hi] in the given number of
// steps, calling detect(alpha) to obtain (clean flags, adversarial
// flags) at each point.
func DetectionErrorCurve(lo, hi float64, steps int, detect func(alpha float64) (cleanFlags, advFlags []bool)) []ErrorCurvePoint {
	if steps < 2 {
		steps = 2
	}
	out := make([]ErrorCurvePoint, 0, steps)
	for i := 0; i < steps; i++ {
		alpha := lo + (hi-lo)*float64(i)/float64(steps-1)
		cleanFlags, advFlags := detect(alpha)
		missed := 0
		for _, f := range advFlags {
			if !f {
				missed++
			}
		}
		advErr := 0.0
		if len(advFlags) > 0 {
			advErr = float64(missed) / float64(len(advFlags))
		}
		out = append(out, ErrorCurvePoint{
			Alpha:      alpha,
			CleanError: Rate(cleanFlags),
			AdvError:   advErr,
		})
	}
	return out
}
