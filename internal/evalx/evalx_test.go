package evalx

import (
	"math"
	"reflect"
	"testing"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Fatalf("empty Accuracy = %v", got)
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusionMatrix(t *testing.T) {
	pred := []int{0, 1, 1, 2}
	want := []int{0, 1, 2, 2}
	cm := ConfusionMatrix(pred, want, 3)
	expect := [][]int{{1, 0, 0}, {0, 1, 0}, {0, 1, 1}}
	if !reflect.DeepEqual(cm, expect) {
		t.Fatalf("ConfusionMatrix = %v, want %v", cm, expect)
	}
}

func TestConfusionMatrixIgnoresOutOfRange(t *testing.T) {
	cm := ConfusionMatrix([]int{5}, []int{0}, 2)
	for _, row := range cm {
		for _, n := range row {
			if n != 0 {
				t.Fatal("out-of-range prediction should be ignored")
			}
		}
	}
}

func TestPerClassAccuracy(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	want := []int{0, 1, 1, 1}
	got := PerClassAccuracy(pred, want, 3)
	if got[0] != 1.0 {
		t.Fatalf("class 0 accuracy = %v", got[0])
	}
	if math.Abs(got[1]-2.0/3.0) > 1e-12 {
		t.Fatalf("class 1 accuracy = %v", got[1])
	}
	if got[2] != -1 {
		t.Fatalf("empty class accuracy = %v, want -1", got[2])
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	// Class 0: tp=2 fp=1 fn=0 -> P=2/3 R=1 F1=0.8.
	pred := []int{0, 0, 0, 1}
	want := []int{0, 0, 1, 1}
	prf := PrecisionRecallF1(pred, want, 3)
	if math.Abs(prf[0].Precision-2.0/3.0) > 1e-12 || prf[0].Recall != 1.0 {
		t.Fatalf("class 0 PRF = %+v", prf[0])
	}
	if math.Abs(prf[0].F1-0.8) > 1e-12 {
		t.Fatalf("class 0 F1 = %v", prf[0].F1)
	}
	// Class 1: tp=1 fp=0 fn=1 -> P=1 R=0.5 F1=2/3.
	if prf[1].Precision != 1.0 || prf[1].Recall != 0.5 {
		t.Fatalf("class 1 PRF = %+v", prf[1])
	}
	// Class 2 absent everywhere: all zeros.
	if prf[2].Precision != 0 || prf[2].Recall != 0 || prf[2].F1 != 0 {
		t.Fatalf("class 2 PRF = %+v", prf[2])
	}
}

func TestMacroF1IgnoresAbsentClasses(t *testing.T) {
	pred := []int{0, 1}
	want := []int{0, 1}
	// Class 2 never appears in want; macro F1 over classes 0 and 1 = 1.
	if got := MacroF1(pred, want, 3); got != 1.0 {
		t.Fatalf("MacroF1 = %v, want 1", got)
	}
	if got := MacroF1(nil, nil, 3); got != 0 {
		t.Fatalf("MacroF1 empty = %v", got)
	}
}

func TestRate(t *testing.T) {
	if got := Rate([]bool{true, false, true, true}); got != 0.75 {
		t.Fatalf("Rate = %v", got)
	}
	if got := Rate(nil); got != 0 {
		t.Fatalf("Rate(nil) = %v", got)
	}
}

func TestStratifiedSplitProportions(t *testing.T) {
	labels := make([]int, 100)
	for i := 60; i < 90; i++ {
		labels[i] = 1
	}
	for i := 90; i < 100; i++ {
		labels[i] = 2
	}
	sp := StratifiedSplit(labels, 0.2, 1)
	if len(sp.Train)+len(sp.Test) != 100 {
		t.Fatalf("split sizes %d + %d != 100", len(sp.Train), len(sp.Test))
	}
	countTest := map[int]int{}
	for _, i := range sp.Test {
		countTest[labels[i]]++
	}
	if countTest[0] != 12 || countTest[1] != 6 || countTest[2] != 2 {
		t.Fatalf("per-class test counts = %v", countTest)
	}
	// No overlap.
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, sp.Train...), sp.Test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
}

func TestStratifiedSplitSmallClassGetsOneTest(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1}
	sp := StratifiedSplit(labels, 0.2, 2)
	hasClass1 := false
	for _, i := range sp.Test {
		if labels[i] == 1 {
			hasClass1 = true
		}
	}
	if !hasClass1 {
		t.Fatal("small class should contribute at least one test sample")
	}
}

func TestStratifiedSplitDeterministic(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	a := StratifiedSplit(labels, 0.25, 7)
	b := StratifiedSplit(labels, 0.25, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("split not deterministic")
	}
	c := StratifiedSplit(labels, 0.25, 8)
	if reflect.DeepEqual(a, c) {
		t.Log("different seeds produced same split (possible but unlikely)")
	}
}

func TestDetectionErrorCurve(t *testing.T) {
	// Synthetic detector: clean errors fall with alpha, adversarial
	// misses rise.
	curve := DetectionErrorCurve(0, 2, 5, func(alpha float64) ([]bool, []bool) {
		clean := make([]bool, 10)
		adv := make([]bool, 10)
		for i := range clean {
			clean[i] = float64(i)/10 > alpha/2 // fewer flags as alpha rises
			adv[i] = float64(i)/10 >= alpha/4  // fewer detections as alpha rises
		}
		return clean, adv
	})
	if len(curve) != 5 {
		t.Fatalf("curve points = %d", len(curve))
	}
	if curve[0].Alpha != 0 || curve[4].Alpha != 2 {
		t.Fatalf("alpha endpoints = %v, %v", curve[0].Alpha, curve[4].Alpha)
	}
	if curve[0].CleanError < curve[4].CleanError {
		t.Fatal("clean error should fall with alpha")
	}
	if curve[0].AdvError > curve[4].AdvError {
		t.Fatal("adversarial miss rate should rise with alpha")
	}
}
