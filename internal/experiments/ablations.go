package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"soteria/internal/autoenc"
	"soteria/internal/baselines"
	"soteria/internal/disasm"
	"soteria/internal/features"
	"soteria/internal/gea"
	"soteria/internal/isa"
	"soteria/internal/nn"
	"soteria/internal/obfuscate"
	"soteria/internal/par"
)

// Ablations are the design-choice studies DESIGN.md calls out. They are
// not paper tables; each isolates one pipeline choice and reports how
// detector quality moves. Run with `cmd/experiments -run abl-labeling`
// etc. (they retrain detectors, so they are not part of "all").
var Ablations = []string{
	"abl-labeling", "abl-walks", "abl-topk", "abl-randomization",
	"abl-splitting", "abl-obfuscation", "abl-advtraining",
}

// RunAblation dispatches one ablation by ID.
func RunAblation(id string, env *Env) (*Report, error) {
	switch id {
	case "abl-labeling":
		return AblationLabeling(env)
	case "abl-walks":
		return AblationWalks(env)
	case "abl-topk":
		return AblationTopK(env)
	case "abl-randomization":
		return AblationRandomization(env)
	case "abl-splitting":
		return AblationSplitting(env)
	case "abl-obfuscation":
		return AblationObfuscation(env)
	case "abl-advtraining":
		return AblationAdvTraining(env)
	default:
		return nil, fmt.Errorf("experiments: unknown ablation %q", id)
	}
}

// detectorQuality trains a detector on the environment's training split
// under a modified feature config and scores it against clean test
// samples and a slice of the AE corpus.
type detectorQuality struct {
	CleanFP float64 // fraction of clean test samples flagged
	AEDet   float64 // fraction of AEs detected
	AUC     float64 // rank separation between clean and AE REs
}

// detectorStudy evaluates one feature configuration. mask selects which
// part of the combined vector feeds the detector: "dbl", "lbl", or
// "both".
func detectorStudy(env *Env, fcfg features.Config, mask string) (detectorQuality, error) {
	var q detectorQuality
	train := env.TrainSamples()
	test := env.TestSamples()

	ext := features.NewExtractor(fcfg)
	cfgs := make([]*disasm.CFG, len(train))
	for i, s := range train {
		cfgs[i] = s.CFG
	}
	ext.Fit(cfgs)

	slice := func(v []float64) []float64 {
		half := len(v) / 2
		switch mask {
		case "dbl":
			return v[:half]
		case "lbl":
			return v[half:]
		default:
			return v
		}
	}

	first, err := ext.Extract(train[0].CFG, 0)
	if err != nil {
		return q, err
	}
	dim := len(slice(first.Combined))
	x := nn.NewMatrix(len(train), dim)
	for i, s := range train {
		v, err := ext.Extract(s.CFG, int64(i))
		if err != nil {
			return q, err
		}
		copy(x.Row(i), slice(v.Combined))
	}
	dcfg := autoenc.DefaultConfig(dim)
	dcfg.Epochs = env.Cfg.Opts.DetectorEpochs
	dcfg.BatchSize = env.Cfg.Opts.BatchSize
	dcfg.Seed = env.Cfg.Seed
	dcfg.NoStandardize = true
	dcfg.NoiseStd = 0.02
	det, err := autoenc.Train(x, dcfg)
	if err != nil {
		return q, err
	}

	cleanRE := make([]float64, len(test))
	var aeRE []float64
	fp, tp := 0, 0
	cleanErrs := make([]error, len(test))
	par.For(len(test), func(i int) {
		v, err := ext.Extract(test[i].CFG, int64(100000+i))
		if err != nil {
			cleanErrs[i] = err
			return
		}
		//lint:ignore batchmiss standalone ablation eval: each variant is scored through the per-sample path so ablation deltas measure the pipeline choice under study, not the batched kernels; extraction dominates this loop anyway.
		cleanRE[i] = det.ReconstructionError(slice(v.Combined))
	})
	for _, err := range cleanErrs {
		if err != nil {
			return q, err
		}
	}
	for _, re := range cleanRE {
		if re > det.Threshold() {
			fp++
		}
	}
	n := 0
	for i := range env.Targets {
		for j, ae := range env.AEs[i] {
			if j%4 != 0 { // subsample for speed
				continue
			}
			v, err := ext.Extract(ae.CFG, int64(200000+n))
			if err != nil {
				return q, err
			}
			n++
			re := det.ReconstructionError(slice(v.Combined))
			aeRE = append(aeRE, re)
			if re > det.Threshold() {
				tp++
			}
		}
	}
	if len(cleanRE) > 0 {
		q.CleanFP = float64(fp) / float64(len(cleanRE))
	}
	if len(aeRE) > 0 {
		q.AEDet = float64(tp) / float64(len(aeRE))
	}
	sort.Float64s(cleanRE)
	above := 0
	for _, a := range aeRE {
		above += sort.SearchFloat64s(cleanRE, a)
	}
	if len(aeRE) > 0 && len(cleanRE) > 0 {
		q.AUC = float64(above) / float64(len(aeRE)*len(cleanRE))
	}
	return q, nil
}

func (q detectorQuality) row(name string) string {
	return fmt.Sprintf("%-24s cleanFP=%6.2f%%  AEdet=%6.2f%%  AUC=%.3f",
		name, 100*q.CleanFP, 100*q.AEDet, q.AUC)
}

// AblationLabeling compares DBL-only, LBL-only, and combined detector
// inputs.
func AblationLabeling(env *Env) (*Report, error) {
	r := &Report{ID: "abl-labeling", Title: "Ablation: labeling schemes feeding the detector"}
	fcfg := env.Cfg.Opts.Features
	fcfg.Seed = env.Cfg.Seed
	for _, mask := range []string{"dbl", "lbl", "both"} {
		q, err := detectorStudy(env, fcfg, mask)
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, q.row(mask))
	}
	r.addf("(paper's design uses both labelings; combined should dominate)")
	return r, nil
}

// AblationWalks varies the number of random walks per labeling.
func AblationWalks(env *Env) (*Report, error) {
	r := &Report{ID: "abl-walks", Title: "Ablation: random-walk count and length"}
	for _, w := range []struct{ count, lf int }{{1, 5}, {3, 5}, {10, 5}, {10, 1}} {
		fcfg := env.Cfg.Opts.Features
		fcfg.Seed = env.Cfg.Seed
		fcfg.WalkCount = w.count
		fcfg.LengthFactor = w.lf
		q, err := detectorStudy(env, fcfg, "both")
		if err != nil {
			return nil, err
		}
		//lint:ignore packedkey "%d|V|" is the paper's walk-length notation (a multiple of |V|), not a gram key
		r.Lines = append(r.Lines, q.row(fmt.Sprintf("walks=%d len=%d|V|", w.count, w.lf)))
	}
	r.addf("(paper uses 10 walks of 5|V|; more walks stabilize the representation)")
	return r, nil
}

// AblationTopK varies the per-labeling vocabulary size.
func AblationTopK(env *Env) (*Report, error) {
	r := &Report{ID: "abl-topk", Title: "Ablation: vocabulary size (top-k grams per labeling)"}
	for _, k := range []int{32, 64, 128, 256} {
		fcfg := env.Cfg.Opts.Features
		fcfg.Seed = env.Cfg.Seed
		fcfg.TopK = k
		q, err := detectorStudy(env, fcfg, "both")
		if err != nil {
			return nil, err
		}
		r.Lines = append(r.Lines, q.row(fmt.Sprintf("topK=%d", k)))
	}
	r.addf("(paper uses 500 per labeling at full dataset scale)")
	return r, nil
}

// AblationRandomization contrasts Soteria's randomized walk features
// with the deterministic graph-theoretic features of the baseline under
// GEA: the deterministic features move smoothly under grafting, so a
// detector built on them separates AEs worse.
func AblationRandomization(env *Env) (*Report, error) {
	r := &Report{ID: "abl-randomization", Title: "Ablation: randomized walk features vs deterministic graph features"}

	// Walk-feature detector (the pipeline's own numbers).
	fcfg := env.Cfg.Opts.Features
	fcfg.Seed = env.Cfg.Seed
	q, err := detectorStudy(env, fcfg, "both")
	if err != nil {
		return nil, err
	}
	r.Lines = append(r.Lines, q.row("randomized walks"))

	// Deterministic graph-feature detector.
	train := env.TrainSamples()
	test := env.TestSamples()
	x := nn.NewMatrix(len(train), baselines.GraphFeatureDim)
	for i, s := range train {
		copy(x.Row(i), normalizeGraphFeatures(baselines.GraphFeatures(s.CFG)))
	}
	dcfg := autoenc.DefaultConfig(baselines.GraphFeatureDim)
	dcfg.Epochs = env.Cfg.Opts.DetectorEpochs
	dcfg.Seed = env.Cfg.Seed
	dcfg.NoStandardize = true
	dcfg.NoiseStd = 0.02
	det, err := autoenc.Train(x, dcfg)
	if err != nil {
		return nil, err
	}
	var gq detectorQuality
	var cleanRE, aeRE []float64
	fp, tp := 0, 0
	for _, s := range test {
		re := det.ReconstructionError(normalizeGraphFeatures(baselines.GraphFeatures(s.CFG)))
		cleanRE = append(cleanRE, re)
		if re > det.Threshold() {
			fp++
		}
	}
	for i := range env.Targets {
		for j, ae := range env.AEs[i] {
			if j%4 != 0 {
				continue
			}
			re := det.ReconstructionError(normalizeGraphFeatures(baselines.GraphFeatures(ae.CFG)))
			aeRE = append(aeRE, re)
			if re > det.Threshold() {
				tp++
			}
		}
	}
	if len(cleanRE) > 0 {
		gq.CleanFP = float64(fp) / float64(len(cleanRE))
	}
	if len(aeRE) > 0 {
		gq.AEDet = float64(tp) / float64(len(aeRE))
	}
	sort.Float64s(cleanRE)
	above := 0
	for _, a := range aeRE {
		above += sort.SearchFloat64s(cleanRE, a)
	}
	if len(aeRE) > 0 && len(cleanRE) > 0 {
		gq.AUC = float64(above) / float64(len(aeRE)*len(cleanRE))
	}
	r.Lines = append(r.Lines, gq.row("deterministic graph"))
	r.addf("(the adversary can anticipate deterministic features; randomization is the defense)")
	return r, nil
}

// AblationSplitting measures the detector and classifier against the
// paper's subtler code-level perturbation — block splitting — at
// increasing strengths. The paper's limitations section predicts small
// structural edits evade the detector while the classifier still
// recovers the true class; this ablation quantifies that gradient.
func AblationSplitting(env *Env) (*Report, error) {
	r := &Report{ID: "abl-splitting", Title: "Ablation: block-splitting perturbation strength"}
	test := env.TestSamples()
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 77))
	r.addf("%-10s %10s %14s %16s", "splits", "# samples", "% detected", "% class intact")
	for _, k := range []int{1, 4, 16} {
		detected, intact, n := 0, 0, 0
		for i, s := range test {
			_, cfg, err := gea.SplitToCFG(s.Program, k, rng)
			if err != nil {
				continue
			}
			dec, err := env.Pipeline.Analyze(cfg, saltFor(60+k, i))
			if err != nil {
				continue
			}
			n++
			if dec.Adversarial {
				detected++
			}
			if dec.Class == s.Class {
				intact++
			}
		}
		if n == 0 {
			continue
		}
		r.addf("%-10d %10d %13.2f%% %15.2f%%", k, n,
			100*float64(detected)/float64(n), 100*float64(intact)/float64(n))
	}
	r.addf("(paper: small non-branching edits evade detection but keep the true class)")
	return r, nil
}

// AblationObfuscation measures the paper's second limitation: opaque
// predicates add statically-reachable junk branches that never execute,
// so the CFG — and every feature derived from it — changes while the
// program's behaviour does not. The paper predicts such samples are
// flagged or misclassified until the system is retrained.
func AblationObfuscation(env *Env) (*Report, error) {
	r := &Report{ID: "abl-obfuscation", Title: "Ablation: opaque-predicate obfuscation strength"}
	test := env.TestSamples()
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 99))
	r.addf("%-12s %10s %14s %16s", "predicates", "# samples", "% flagged", "% class intact")
	for _, k := range []int{2, 8, 24} {
		var cfgs []*disasm.CFG
		var salts []int64
		var classes []int
		for i, s := range test {
			obf, err := obfuscate.OpaquePredicates(s.Program, k, rng)
			if err != nil {
				continue
			}
			bin, _, err := isa.Assemble(obf, isa.AsmOptions{})
			if err != nil {
				continue
			}
			cfg, err := disasm.Disassemble(bin)
			if err != nil {
				continue
			}
			cfgs = append(cfgs, cfg)
			salts = append(salts, saltFor(80+k, i))
			classes = append(classes, int(s.Class))
		}
		decs, err := env.Pipeline.AnalyzeBatch(cfgs, salts)
		if err != nil {
			return nil, err
		}
		flagged, intact := 0, 0
		for i, dec := range decs {
			if dec.Adversarial {
				flagged++
			}
			if int(dec.Class) == classes[i] {
				intact++
			}
		}
		n := len(decs)
		if n == 0 {
			continue
		}
		r.addf("%-12d %10d %13.2f%% %15.2f%%", k, n,
			100*float64(flagged)/float64(n), 100*float64(intact)/float64(n))
	}
	r.addf("(paper: obfuscation yields incomplete/perturbed CFGs and degrades the system until retrained)")
	return r, nil
}

// AblationAdvTraining reproduces the paper's section II-B argument
// against adversarial training: a supervised clean-vs-adversarial
// discriminator trained on ONE attack's examples (block splitting) is
// evaluated against a DIFFERENT attack (GEA). The paper predicts —
// and this ablation measures — that robustness does not transfer
// across attacks, which is why Soteria's detector trains on clean data
// only.
func AblationAdvTraining(env *Env) (*Report, error) {
	r := &Report{ID: "abl-advtraining", Title: "Ablation: adversarial training does not transfer across attacks"}
	train := env.TrainSamples()
	test := env.TestSamples()
	ext := env.extractor()
	rng := rand.New(rand.NewSource(env.Cfg.Seed + 55))

	// Training set: clean train samples (label 0) + split-attack AEs of
	// the same samples (label 1).
	var cfgs []*disasm.CFG
	var salts []int64
	var labels []int
	for i, s := range train {
		cfgs = append(cfgs, s.CFG)
		salts = append(salts, saltFor(90, i))
		labels = append(labels, 0)
		_, sp, err := gea.SplitToCFG(s.Program, 4, rng)
		if err != nil {
			continue
		}
		cfgs = append(cfgs, sp)
		salts = append(salts, saltFor(91, i))
		labels = append(labels, 1)
	}
	vecs, err := ext.ExtractBatch(cfgs, salts)
	if err != nil {
		return nil, err
	}
	x := nn.NewMatrix(len(vecs), ext.Dim())
	for i, v := range vecs {
		copy(x.Row(i), v.Combined)
	}
	netRng := rand.New(rand.NewSource(env.Cfg.Seed))
	net := nn.NewNetwork(
		nn.NewDense(ext.Dim(), 64, netRng), nn.NewReLU(),
		nn.NewDense(64, 2, netRng),
	)
	tr := nn.Trainer{Net: net, Loss: nn.SoftmaxCrossEntropy{}, Opt: nn.NewAdam(1e-3)}
	if _, err := tr.Fit(x, nn.OneHot(labels, 2), nn.TrainConfig{
		Epochs: env.Cfg.BaselineEpochs, BatchSize: 64, Seed: env.Cfg.Seed,
	}); err != nil {
		return nil, err
	}
	detectRate := func(cfgSet []*disasm.CFG, saltKind int) (float64, error) {
		if len(cfgSet) == 0 {
			return 0, nil
		}
		ss := make([]int64, len(cfgSet))
		for i := range ss {
			ss[i] = saltFor(saltKind, i)
		}
		vs, err := ext.ExtractBatch(cfgSet, ss)
		if err != nil {
			return 0, err
		}
		m := nn.NewMatrix(len(vs), ext.Dim())
		for i, v := range vs {
			copy(m.Row(i), v.Combined)
		}
		pred := nn.Argmax(net.Predict(m))
		hit := 0
		for _, p := range pred {
			if p == 1 {
				hit++
			}
		}
		return float64(hit) / float64(len(pred)), nil
	}

	// In-distribution attack: split AEs of test samples.
	var splitTest []*disasm.CFG
	for _, s := range test {
		if _, sp, err := gea.SplitToCFG(s.Program, 4, rng); err == nil {
			splitTest = append(splitTest, sp)
		}
	}
	inDist, err := detectRate(splitTest, 92)
	if err != nil {
		return nil, err
	}
	// Out-of-distribution attack: GEA AEs (subsampled).
	var geaTest []*disasm.CFG
	for i := range env.AEs {
		for j, ae := range env.AEs[i] {
			if j%6 == 0 {
				geaTest = append(geaTest, ae.CFG)
			}
		}
	}
	outDist, err := detectRate(geaTest, 93)
	if err != nil {
		return nil, err
	}
	// Clean false positives.
	var cleanCFGs []*disasm.CFG
	for _, s := range test {
		cleanCFGs = append(cleanCFGs, s.CFG)
	}
	fp, err := detectRate(cleanCFGs, 94)
	if err != nil {
		return nil, err
	}

	r.addf("supervised discriminator trained on split-attack AEs only:")
	r.addf("  split AEs detected (trained attack):   %6.2f%%", 100*inDist)
	r.addf("  GEA AEs detected (unseen attack):      %6.2f%%", 100*outDist)
	r.addf("  clean false positives:                 %6.2f%%", 100*fp)
	decs, err := env.AEDecisions()
	if err != nil {
		return nil, err
	}
	det, tot := 0, 0
	for i := range decs {
		for _, d := range decs[i] {
			tot++
			if d.Adversarial {
				det++
			}
		}
	}
	r.addf("Soteria's unsupervised detector on GEA:  %6.2f%% (no AEs at training time)", 100*rate(det, tot))
	r.addf("(paper II-B: training against one attack does not guarantee robustness against others)")
	return r, nil
}

// normalizeGraphFeatures squashes the baseline's wildly different
// feature scales into comparable ranges for autoencoder training.
func normalizeGraphFeatures(f []float64) []float64 {
	out := make([]float64, len(f))
	for i, v := range f {
		out[i] = v / (1 + v) // bounded [0, 1) for nonnegative features
	}
	return out
}
