package experiments

import (
	"strings"
	"testing"
)

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations retrain detectors")
	}
	env := quickEnv(t)
	for _, id := range Ablations {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := RunAblation(id, env)
			if err != nil {
				t.Fatalf("RunAblation(%s): %v", id, err)
			}
			if len(rep.Lines) < 2 {
				t.Fatalf("ablation %s produced %d lines", id, len(rep.Lines))
			}
			for _, l := range rep.Lines {
				if strings.Contains(l, "NaN") {
					t.Fatalf("NaN in ablation output: %q", l)
				}
			}
		})
	}
}

func TestRunAblationUnknown(t *testing.T) {
	if _, err := RunAblation("abl-nope", nil); err == nil {
		t.Fatal("unknown ablation should error")
	}
}
