package experiments

import (
	"fmt"
	"sync"

	"soteria/internal/core"
	"soteria/internal/disasm"
	"soteria/internal/evalx"
	"soteria/internal/features"
	"soteria/internal/gea"
	"soteria/internal/malgen"
)

// Config scales the experiment suite. Paper-scale runs (16,814 samples,
// 1000 features, 100 epochs) are possible but take hours in pure Go;
// DefaultConfig preserves the corpus class ratios and every pipeline
// parameter's *structure* at a size that runs in minutes.
type Config struct {
	// Seed drives corpus generation, splitting, and model training.
	Seed int64
	// Counts is the per-class corpus size. The default keeps the
	// paper's ordering (Gafgyt >> Benign > Mirai > Tsunami).
	Counts map[malgen.Class]int
	// TestFrac is the held-out fraction (paper: 0.2).
	TestFrac float64
	// Opts are the pipeline training options.
	Opts core.Options
	// ImageSize is the image-baseline edge length (paper: 24/48/96/192).
	ImageSize int
	// PCAPerClass is the number of samples per class for the PCA
	// figures (paper: 200).
	PCAPerClass int
	// BaselineEpochs trains the two baseline models.
	BaselineEpochs int
}

// DefaultConfig returns the reduced-scale experiment configuration.
func DefaultConfig() Config {
	opts := core.DefaultOptions()
	// The detector design study (EXPERIMENTS.md) found top-256 grams per
	// labeling and a longer detector schedule give the best clean/AE
	// separation at this corpus scale.
	opts.Features.TopK = 256
	opts.DetectorEpochs = 60
	return Config{
		Seed: 1,
		Counts: map[malgen.Class]int{
			malgen.Benign:  120,
			malgen.Gafgyt:  220,
			malgen.Mirai:   100,
			malgen.Tsunami: 50,
		},
		TestFrac:       0.2,
		Opts:           opts,
		ImageSize:      24,
		PCAPerClass:    40,
		BaselineEpochs: 80,
	}
}

// QuickConfig returns a minimal configuration for benches and smoke
// tests (tens of seconds end to end).
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Counts = map[malgen.Class]int{
		malgen.Benign:  18,
		malgen.Gafgyt:  30,
		malgen.Mirai:   15,
		malgen.Tsunami: 10,
	}
	cfg.Opts.Features.TopK = 128
	cfg.Opts.DetectorEpochs = 25
	cfg.Opts.ClassifierEpochs = 25
	cfg.Opts.Filters = 8
	cfg.Opts.DenseUnits = 32
	cfg.PCAPerClass = 12
	cfg.BaselineEpochs = 40
	return cfg
}

// Env is the shared experiment environment: the generated corpus, the
// 80/20 split, the trained pipeline, the selected GEA targets, and the
// adversarial corpus.
type Env struct {
	Cfg     Config
	Samples []*malgen.Sample
	Labels  []int
	Split   evalx.Split

	Pipeline *core.Pipeline
	Targets  []gea.Target
	// AEs[i] are the adversarial examples generated with Targets[i]
	// over the test split.
	AEs [][]*gea.AE

	// Memoized pipeline decisions shared by Tables IV, VI, VIII and
	// Figs. 12-13 (all use identical per-sample salts).
	aeOnce   sync.Once
	aeDecs   [][]*core.Decision
	aeErr    error
	testOnce sync.Once
	testDecs []*core.Decision
	testErr  error
}

// AEDecisions analyzes the full adversarial corpus once (parallel
// extraction) and memoizes the verdicts. AEDecisions()[i][j] is the
// decision for env.AEs[i][j] under salt saltFor(10+i, j).
func (e *Env) AEDecisions() ([][]*core.Decision, error) {
	e.aeOnce.Do(func() {
		e.aeDecs = make([][]*core.Decision, len(e.AEs))
		for i, aes := range e.AEs {
			cfgs := make([]*disasm.CFG, len(aes))
			salts := make([]int64, len(aes))
			for j, ae := range aes {
				cfgs[j] = ae.CFG
				salts[j] = saltFor(10+i, j)
			}
			e.aeDecs[i], e.aeErr = e.Pipeline.AnalyzeBatch(cfgs, salts)
			if e.aeErr != nil {
				return
			}
		}
	})
	return e.aeDecs, e.aeErr
}

// TestDecisions analyzes the clean test split once and memoizes the
// verdicts, using salt saltFor(3, i) for test sample i.
func (e *Env) TestDecisions() ([]*core.Decision, error) {
	e.testOnce.Do(func() {
		test := e.TestSamples()
		cfgs := make([]*disasm.CFG, len(test))
		salts := make([]int64, len(test))
		for i, s := range test {
			cfgs[i] = s.CFG
			salts[i] = saltFor(3, i)
		}
		e.testDecs, e.testErr = e.Pipeline.AnalyzeBatch(cfgs, salts)
	})
	return e.testDecs, e.testErr
}

// Setup generates the corpus, trains the pipeline on the training
// split, selects GEA targets from the test pool, and generates the
// adversarial corpus — everything the individual experiments share.
func Setup(cfg Config) (*Env, error) {
	gen := malgen.NewGenerator(malgen.Config{Seed: cfg.Seed})
	samples, err := gen.Corpus(cfg.Counts)
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus: %w", err)
	}
	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = int(s.Class)
	}
	split := evalx.StratifiedSplit(labels, cfg.TestFrac, cfg.Seed)

	train := make([]*malgen.Sample, len(split.Train))
	for i, idx := range split.Train {
		train[i] = samples[idx]
	}
	opts := cfg.Opts
	opts.Seed = cfg.Seed
	pipe, err := core.Train(train, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: pipeline: %w", err)
	}

	test := make([]*malgen.Sample, len(split.Test))
	for i, idx := range split.Test {
		test[i] = samples[idx]
	}
	targets := gea.SelectTargets(test)
	aes := make([][]*gea.AE, len(targets))
	for i, tgt := range targets {
		a, err := gea.GenerateAEs(test, tgt)
		if err != nil {
			return nil, fmt.Errorf("experiments: AEs for %s/%s: %w", tgt.Class, tgt.Size, err)
		}
		aes[i] = a
	}
	return &Env{
		Cfg:      cfg,
		Samples:  samples,
		Labels:   labels,
		Split:    split,
		Pipeline: pipe,
		Targets:  targets,
		AEs:      aes,
	}, nil
}

// TestSamples returns the test-split samples.
func (e *Env) TestSamples() []*malgen.Sample {
	out := make([]*malgen.Sample, len(e.Split.Test))
	for i, idx := range e.Split.Test {
		out[i] = e.Samples[idx]
	}
	return out
}

// TrainSamples returns the training-split samples.
func (e *Env) TrainSamples() []*malgen.Sample {
	out := make([]*malgen.Sample, len(e.Split.Train))
	for i, idx := range e.Split.Train {
		out[i] = e.Samples[idx]
	}
	return out
}

// saltFor gives every analysis a stable, collision-free walk salt.
func saltFor(kind, i int) int64 { return int64(kind)*1_000_000 + int64(i) }

// extractor exposes the pipeline's fitted extractor.
func (e *Env) extractor() *features.Extractor { return e.Pipeline.Extractor }
