package experiments

import (
	"strings"
	"sync"
	"testing"
)

// sharedEnv builds one QuickConfig environment for the whole test
// package (setup trains models; reuse keeps the suite fast).
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func quickEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment environment trains models")
	}
	envOnce.Do(func() {
		envVal, envErr = Setup(QuickConfig())
	})
	if envErr != nil {
		t.Fatalf("Setup: %v", envErr)
	}
	return envVal
}

func TestSetupShapes(t *testing.T) {
	env := quickEnv(t)
	if len(env.Samples) != 18+30+15+10 {
		t.Fatalf("corpus size = %d", len(env.Samples))
	}
	if len(env.Split.Train)+len(env.Split.Test) != len(env.Samples) {
		t.Fatal("split does not partition corpus")
	}
	if len(env.Targets) != 12 {
		t.Fatalf("targets = %d, want 12", len(env.Targets))
	}
	if len(env.AEs) != 12 {
		t.Fatalf("AE groups = %d", len(env.AEs))
	}
	for i, aes := range env.AEs {
		if len(aes) == 0 {
			t.Fatalf("target %d generated no AEs", i)
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	env := quickEnv(t)
	for _, id := range IDs {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, env)
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if rep.ID != id {
				t.Fatalf("report ID = %q", rep.ID)
			}
			if len(rep.Lines) == 0 {
				t.Fatal("empty report")
			}
			if !strings.Contains(rep.String(), rep.Title) {
				t.Fatal("String() missing title")
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("tab99", nil); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestTable4DetectsMostAEs(t *testing.T) {
	env := quickEnv(t)
	rep := Table4(env)
	last := rep.Lines[len(rep.Lines)-1]
	if !strings.Contains(last, "Overall") {
		t.Fatalf("missing overall row: %q", last)
	}
	// Parse the overall percentage out of the formatted row.
	var total, det int
	var pct float64
	if _, err := parseOverall(last, &total, &det, &pct); err != nil {
		t.Fatalf("parse %q: %v", last, err)
	}
	// Detection quality scales with corpus size (82% at default scale,
	// 97.79% in the paper); the quick corpus only guards the wiring.
	if pct < 40 {
		t.Fatalf("overall AE detection = %.2f%%, want >= 40%% at quick scale", pct)
	}
}

func TestTable6CleanFPBounded(t *testing.T) {
	env := quickEnv(t)
	rep := Table6(env)
	last := rep.Lines[len(rep.Lines)-1]
	var total, det int
	var pct float64
	if _, err := parseOverall(last, &total, &det, &pct); err != nil {
		t.Fatalf("parse %q: %v", last, err)
	}
	// The FP rate falls with corpus size (26% at 2x quick scale, lower
	// at the default experiment scale); this only guards against the
	// detector flagging everything.
	if pct > 50 {
		t.Fatalf("clean FP rate = %.2f%%, want <= 50%% at quick scale", pct)
	}
}

func TestFig13Monotone(t *testing.T) {
	env := quickEnv(t)
	rep := Fig13(env)
	// Clean error must be non-increasing in alpha; adv error
	// non-decreasing. Extract the numeric rows.
	var prevClean, prevAdv float64
	first := true
	for _, line := range rep.Lines {
		var alpha, clean, adv float64
		if n, _ := sscanfRow(line, &alpha, &clean, &adv); n != 3 {
			continue
		}
		if !first {
			if clean > prevClean+1e-9 {
				t.Fatalf("clean error rose at alpha %.2f", alpha)
			}
			if adv < prevAdv-1e-9 {
				t.Fatalf("adv error fell at alpha %.2f", alpha)
			}
		}
		prevClean, prevAdv = clean, adv
		first = false
	}
	if first {
		t.Fatal("no numeric rows in fig13")
	}
}
