package experiments

import (
	"fmt"
	"math"

	"soteria/internal/baselines"
	"soteria/internal/disasm"
	"soteria/internal/evalx"
	"soteria/internal/malgen"
	"soteria/internal/nn"
	"soteria/internal/pca"
)

// pcaSummary projects groups of vectors to two components and reports
// the series the paper's scatter plots show: per-group centroids,
// intra-group spread, and the separation ratio (min inter-centroid
// distance over mean intra-group spread). Higher separation means the
// scatter groups are visually distinct, which is the claim Figs. 8-11
// make.
func pcaSummary(r *Report, groups map[string][][]float64, order []string) error {
	var all [][]float64
	for _, name := range order {
		all = append(all, groups[name]...)
	}
	if len(all) == 0 {
		return fmt.Errorf("experiments: no vectors for PCA")
	}
	p, err := pca.Fit(nn.FromRows(all), 2)
	if err != nil {
		return err
	}
	type stat struct {
		cx, cy, spread float64
		n              int
	}
	stats := make(map[string]stat, len(groups))
	for _, name := range order {
		vecs := groups[name]
		if len(vecs) == 0 {
			continue
		}
		proj := p.Transform(nn.FromRows(vecs))
		var cx, cy float64
		for i := 0; i < proj.Rows; i++ {
			cx += proj.At(i, 0)
			cy += proj.At(i, 1)
		}
		cx /= float64(proj.Rows)
		cy /= float64(proj.Rows)
		var spread float64
		for i := 0; i < proj.Rows; i++ {
			dx, dy := proj.At(i, 0)-cx, proj.At(i, 1)-cy
			spread += math.Sqrt(dx*dx + dy*dy)
		}
		spread /= float64(proj.Rows)
		stats[name] = stat{cx: cx, cy: cy, spread: spread, n: proj.Rows}
	}
	r.addf("%-16s %4s %10s %10s %10s", "Group", "n", "PC1", "PC2", "Spread")
	for _, name := range order {
		s, ok := stats[name]
		if !ok {
			continue
		}
		r.addf("%-16s %4d %10.4f %10.4f %10.4f", name, s.n, s.cx, s.cy, s.spread)
	}
	// Separation: min inter-centroid distance / mean spread.
	minInter := math.Inf(1)
	var meanSpread float64
	cnt := 0
	for i, a := range order {
		sa, ok := stats[a]
		if !ok {
			continue
		}
		meanSpread += sa.spread
		cnt++
		for _, b := range order[i+1:] {
			sb, ok := stats[b]
			if !ok {
				continue
			}
			d := math.Hypot(sa.cx-sb.cx, sa.cy-sb.cy)
			if d < minInter {
				minInter = d
			}
		}
	}
	if cnt > 0 {
		meanSpread /= float64(cnt)
	}
	if meanSpread > 0 && !math.IsInf(minInter, 1) {
		r.addf("separation ratio (min inter-centroid / mean spread) = %.3f", minInter/meanSpread)
	}
	return nil
}

// Fig8 reproduces the PCA of the baseline's graph-theoretic features
// (paper Fig. 8): classes overlap far more than with Soteria's
// features, motivating the walk representation.
func Fig8(env *Env) (*Report, error) {
	r := &Report{ID: "fig8", Title: "PCA of graph-theoretic baseline features [3]"}
	groups := make(map[string][][]float64)
	var order []string
	for _, c := range malgen.Classes {
		order = append(order, c.String())
	}
	for i, s := range pcaPool(env) {
		groups[s.Class.String()] = append(groups[s.Class.String()], baselines.GraphFeatures(s.CFG))
		_ = i
	}
	if err := pcaSummary(r, groups, order); err != nil {
		return nil, err
	}
	return r, nil
}

// FigPCA reproduces Figs. 9-11: PCA of the DBL, LBL, or combined
// feature vectors, (a) across classes and (b) clean vs GEA adversarial.
func FigPCA(env *Env, id, which string) (*Report, error) {
	r := &Report{ID: id, Title: fmt.Sprintf("PCA of %s feature vectors", which)}
	half := env.extractor().Dim() / 2
	slice := func(combined []float64) []float64 {
		switch which {
		case "DBL":
			return combined[:half]
		case "LBL":
			return combined[half:]
		default:
			return combined
		}
	}

	// (a) Classes.
	r.addf("(a) benign vs malware families")
	groups := make(map[string][][]float64)
	var order []string
	for _, c := range malgen.Classes {
		order = append(order, c.String())
	}
	pool := pcaPool(env)
	poolCFGs := make([]*disasm.CFG, len(pool))
	salts := make([]int64, len(pool))
	for i, s := range pool {
		poolCFGs[i] = s.CFG
		salts[i] = saltFor(5, i)
	}
	vecs, err := env.extractor().ExtractBatch(poolCFGs, salts)
	if err != nil {
		return nil, err
	}
	for i, s := range pool {
		groups[s.Class.String()] = append(groups[s.Class.String()], slice(vecs[i].Combined))
	}
	if err := pcaSummary(r, groups, order); err != nil {
		return nil, err
	}

	// (b) Clean vs adversarial.
	r.addf("(b) normal vs GEA adversarial samples")
	groups2 := map[string][][]float64{}
	for i := range pool {
		salts[i] = saltFor(6, i)
	}
	vecs, err = env.extractor().ExtractBatch(poolCFGs, salts)
	if err != nil {
		return nil, err
	}
	for _, v := range vecs {
		groups2["Clean"] = append(groups2["Clean"], slice(v.Combined))
	}
	var aeCFGs []*disasm.CFG
	var aeSalts []int64
	for i := range env.Targets {
		for j, ae := range env.AEs[i] {
			if len(aeCFGs) >= len(pool) { // balance group sizes
				break
			}
			aeCFGs = append(aeCFGs, ae.CFG)
			aeSalts = append(aeSalts, saltFor(7, i*1000+j))
		}
	}
	aeVecs, err := env.extractor().ExtractBatch(aeCFGs, aeSalts)
	if err != nil {
		return nil, err
	}
	for _, v := range aeVecs {
		groups2["Adversarial"] = append(groups2["Adversarial"], slice(v.Combined))
	}
	if err := pcaSummary(r, groups2, []string{"Clean", "Adversarial"}); err != nil {
		return nil, err
	}
	return r, nil
}

// pcaPool returns up to PCAPerClass samples per class from the corpus
// (the paper uses 200 random samples per class).
func pcaPool(env *Env) []*malgen.Sample {
	counts := make(map[malgen.Class]int)
	var out []*malgen.Sample
	for _, s := range env.Samples {
		if counts[s.Class] < env.Cfg.PCAPerClass {
			counts[s.Class]++
			out = append(out, s)
		}
	}
	return out
}

// Fig12 reproduces the reconstruction-error view behind the threshold
// choice (the paper's detector trade-off curve): RE histograms of clean
// test samples and adversarial examples with the calibrated threshold.
func Fig12(env *Env) *Report {
	r := &Report{ID: "fig12", Title: "Reconstruction error distribution and threshold"}
	var clean, adv []float64
	testDecs, err := env.TestDecisions()
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	for _, dec := range testDecs {
		clean = append(clean, dec.RE)
	}
	aeDecs, err := env.AEDecisions()
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	for i := range aeDecs {
		for _, dec := range aeDecs[i] {
			adv = append(adv, dec.RE)
		}
	}
	th := env.Pipeline.Detector.Threshold()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range append(append([]float64{}, clean...), adv...) {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if !(hi > lo) {
		r.addf("insufficient data")
		return r
	}
	const bins = 12
	hist := func(xs []float64) []int {
		h := make([]int, bins)
		for _, v := range xs {
			b := int(float64(bins) * (v - lo) / (hi - lo) * 0.999999)
			h[b]++
		}
		return h
	}
	hClean, hAdv := hist(clean), hist(adv)
	r.addf("threshold T = %.6f (mu=%.6f sigma=%.6f alpha=%.2f)",
		th, env.Pipeline.Detector.Mu(), env.Pipeline.Detector.Sigma(), env.Pipeline.Detector.Alpha())
	r.addf("%-22s %8s %8s", "RE bin", "# clean", "# adv")
	for b := 0; b < bins; b++ {
		left := lo + (hi-lo)*float64(b)/bins
		right := lo + (hi-lo)*float64(b+1)/bins
		marker := " "
		if th >= left && th < right {
			marker = "<- T"
		}
		r.addf("[%.4f, %.4f) %8d %8d %s", left, right, hClean[b], hAdv[b], marker)
	}
	return r
}

// Fig13 reproduces the threshold sensitivity sweep (paper Fig. 13):
// detection error on clean and adversarial samples as alpha varies from
// 0 to 2, with the crossover near the chosen alpha.
func Fig13(env *Env) *Report {
	r := &Report{ID: "fig13", Title: "Detection error vs alpha (clean up, adversarial down)"}
	det := env.Pipeline.Detector
	origAlpha := det.Alpha()
	defer det.SetAlpha(origAlpha)

	var cleanRE, advRE []float64
	testDecs, err := env.TestDecisions()
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	for _, dec := range testDecs {
		cleanRE = append(cleanRE, dec.RE)
	}
	aeDecs, err := env.AEDecisions()
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	for i := range aeDecs {
		for _, dec := range aeDecs[i] {
			advRE = append(advRE, dec.RE)
		}
	}
	curve := evalx.DetectionErrorCurve(0, 2, 21, func(alpha float64) ([]bool, []bool) {
		th := det.ThresholdAt(alpha)
		cf := make([]bool, len(cleanRE))
		for i, v := range cleanRE {
			cf[i] = v > th
		}
		af := make([]bool, len(advRE))
		for i, v := range advRE {
			af[i] = v > th
		}
		return cf, af
	})
	r.addf("%6s %12s %12s", "alpha", "clean error", "adv error")
	crossover := -1.0
	for i, pt := range curve {
		r.addf("%6.2f %11.2f%% %11.2f%%", pt.Alpha, 100*pt.CleanError, 100*pt.AdvError)
		if crossover < 0 && i > 0 && pt.AdvError >= pt.CleanError {
			crossover = pt.Alpha
		}
	}
	if crossover >= 0 {
		r.addf("crossover near alpha = %.2f (Soteria uses alpha = %.2f)", crossover, origAlpha)
	}
	return r
}
