package experiments

import (
	"fmt"
	"strings"
)

// parseOverall extracts "# total", "# detected", "pct%" from an Overall
// table row of the form "Overall  <total> <det> <pct>%...".
func parseOverall(line string, total, det *int, pct *float64) (int, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return 0, fmt.Errorf("short row")
	}
	// fields[0] == "Overall"; the numeric columns follow.
	n := 0
	if _, err := fmt.Sscanf(fields[1], "%d", total); err == nil {
		n++
	}
	if _, err := fmt.Sscanf(fields[2], "%d", det); err == nil {
		n++
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(fields[3], "%"), "%f", pct); err == nil {
		n++
	}
	if n != 3 {
		return n, fmt.Errorf("parsed %d of 3 fields", n)
	}
	return n, nil
}

// sscanfRow parses "alpha clean% adv%" rows from fig13.
func sscanfRow(line string, alpha, clean, adv *float64) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return 0, fmt.Errorf("not a numeric row")
	}
	n := 0
	if _, err := fmt.Sscanf(fields[0], "%f", alpha); err == nil {
		n++
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(fields[1], "%"), "%f", clean); err == nil {
		n++
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(fields[2], "%"), "%f", adv); err == nil {
		n++
	}
	return n, nil
}
