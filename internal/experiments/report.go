// Package experiments regenerates every table and figure of the paper's
// evaluation (section IV) on the synthetic corpus: the dataset
// composition (Table II), GEA target selection (Table III), detector
// performance on adversarial and clean samples (Tables IV-VI), the
// classifier comparison against both baselines (Table VII), the
// evading-AE analysis (Table VIII), the PCA feature-space views
// (Figs. 8-11), the reconstruction-error distribution (Fig. 12), and the
// threshold sensitivity sweep (Fig. 13).
//
// Experiments print the same rows/series the paper reports. Absolute
// numbers differ — the corpus is synthetic and the scale reduced — but
// the shape of each result (who wins, by what factor, where the
// crossover falls) is the reproduction target; EXPERIMENTS.md records
// the side-by-side comparison.
package experiments

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier (e.g. "tab4", "fig13").
	ID string
	// Title echoes the paper's caption.
	Title string
	// Lines are the formatted rows/series.
	Lines []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// IDs lists every experiment in paper order.
var IDs = []string{
	"tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8",
	"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
}

// Run dispatches one experiment by ID against a prepared environment.
func Run(id string, env *Env) (*Report, error) {
	switch id {
	case "tab2":
		return Table2(env), nil
	case "tab3":
		return Table3(env), nil
	case "tab4":
		return Table4(env), nil
	case "tab5":
		return Table5(env), nil
	case "tab6":
		return Table6(env), nil
	case "tab7":
		return Table7(env)
	case "tab8":
		return Table8(env), nil
	case "fig8":
		return Fig8(env)
	case "fig9":
		return FigPCA(env, "fig9", "DBL")
	case "fig10":
		return FigPCA(env, "fig10", "LBL")
	case "fig11":
		return FigPCA(env, "fig11", "Combined")
	case "fig12":
		return Fig12(env), nil
	case "fig13":
		return Fig13(env), nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}
