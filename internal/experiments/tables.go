package experiments

import (
	"fmt"

	"soteria/internal/avclass"
	"soteria/internal/baselines"
	"soteria/internal/disasm"
	"soteria/internal/dynamic"
	"soteria/internal/evalx"
	"soteria/internal/isa"
	"soteria/internal/malgen"
	"soteria/internal/nn"
	"soteria/internal/par"
)

// Table2 reproduces the corpus composition (paper Table II): the full
// paper-scale collection pipeline — 16,814 samples labeled through the
// simulated VirusTotal + AVClass stack — plus the scaled corpus the
// remaining experiments actually use.
func Table2(env *Env) *Report {
	r := &Report{ID: "tab2", Title: "IoT samples distribution across classes"}

	// Paper-scale labeling: run the AV/AVClass pipeline over the full
	// collection's true classes (metadata only; no binaries needed).
	var trueClasses []malgen.Class
	for _, c := range malgen.Classes {
		for i := 0; i < malgen.PaperCounts[c]; i++ {
			trueClasses = append(trueClasses, c)
		}
	}
	for i := 0; i < malgen.PaperUnlabeled; i++ {
		// Samples whose engines disagree enough to stay unlabeled are
		// drawn from the majority family.
		trueClasses = append(trueClasses, malgen.Gafgyt)
	}
	// Eight simulated engines put the AVClass singleton rate near the
	// paper's (~0.5% of the malware collection unlabeled).
	scanner := avclass.NewScanner(env.Cfg.Seed, 8)
	resolved, ok := scanner.LabelCorpus(trueClasses, 2)
	counts := make(map[malgen.Class]int)
	unlabeled := 0
	for i := range resolved {
		if !ok[i] {
			unlabeled++
			continue
		}
		counts[resolved[i]]++
	}
	total := len(trueClasses)
	r.addf("%-10s %10s %8s", "Class", "# Samples", "%")
	for _, c := range malgen.Classes {
		r.addf("%-10s %10d %7.2f%%", c, counts[c], 100*float64(counts[c])/float64(total))
	}
	r.addf("%-10s %10d %7.2f%% (excluded: AVClass singletons)", "Unlabeled", unlabeled, 100*float64(unlabeled)/float64(total))
	r.addf("%-10s %10d", "Total", total)

	r.addf("")
	r.addf("Scaled experiment corpus (ratios preserved):")
	scaledTotal := 0
	for _, c := range malgen.Classes {
		scaledTotal += env.Cfg.Counts[c]
	}
	for _, c := range malgen.Classes {
		n := env.Cfg.Counts[c]
		r.addf("%-10s %10d %7.2f%%", c, n, 100*float64(n)/float64(scaledTotal))
	}
	r.addf("%-10s %10d", "Total", scaledTotal)
	return r
}

// Table3 reproduces the GEA target selection (paper Table III): three
// targets per class at the class's minimum, median, and maximum CFG
// size, and the number of AEs each target generates.
func Table3(env *Env) *Report {
	r := &Report{ID: "tab3", Title: "GEA selected targeted samples"}
	r.addf("%-10s %-8s %8s %8s", "Class", "Size", "# Nodes", "# AEs")
	for i, tgt := range env.Targets {
		r.addf("%-10s %-8s %8d %8d", tgt.Class, tgt.Size, tgt.Sample.Nodes(), len(env.AEs[i]))
	}
	return r
}

// Table4 reproduces the detector's performance over adversarial
// examples (paper Table IV: overall 97.79%, 9 of 12 targets above 99%).
func Table4(env *Env) *Report {
	r := &Report{ID: "tab4", Title: "Detector performance over GEA AEs (higher is better)"}
	decs, err := env.AEDecisions()
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	r.addf("%-10s %-8s %8s %10s %9s", "Class", "Size", "# AEs", "# Detected", "% DE")
	totalAE, totalDet := 0, 0
	for i, tgt := range env.Targets {
		det := 0
		for _, dec := range decs[i] {
			if dec.Adversarial {
				det++
			}
		}
		totalAE += len(env.AEs[i])
		totalDet += det
		r.addf("%-10s %-8s %8d %10d %8.2f%%", tgt.Class, tgt.Size, len(env.AEs[i]), det,
			100*rate(det, len(env.AEs[i])))
	}
	r.addf("%-10s %-8s %8d %10d %8.2f%%  (paper: 97.79%%)", "Overall", "", totalAE, totalDet,
		100*rate(totalDet, totalAE))
	return r
}

// Table5 reproduces the per-family discriminative feature counts the
// paper references when explaining Gafgyt's false positives: for each
// class, how many of the selected vocabulary features are strongly
// associated with that class (class mean at least twice every other
// class's mean).
func Table5(env *Env) *Report {
	r := &Report{ID: "tab5", Title: "Discriminative features per class (selected vocabulary)"}
	train := env.TrainSamples()
	dim := env.extractor().Dim()
	sums := make([][]float64, malgen.NumClasses)
	counts := make([]int, malgen.NumClasses)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	trainCFGs := make([]*disasm.CFG, len(train))
	trainSalts := make([]int64, len(train))
	for i, s := range train {
		trainCFGs[i] = s.CFG
		trainSalts[i] = saltFor(2, i)
	}
	vecs, err := env.extractor().ExtractBatch(trainCFGs, trainSalts)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	for i, s := range train {
		c := int(s.Class)
		counts[c]++
		for j, x := range vecs[i].Combined {
			sums[c][j] += x
		}
	}
	for c := range sums {
		if counts[c] == 0 {
			continue
		}
		for j := range sums[c] {
			sums[c][j] /= float64(counts[c])
		}
	}
	half := dim / 2
	r.addf("%-10s %12s %12s %12s", "Class", "DBL feats", "LBL feats", "Total")
	for c := 0; c < malgen.NumClasses; c++ {
		dbl, lbl := 0, 0
		for j := 0; j < dim; j++ {
			maxOther := 0.0
			for o := 0; o < malgen.NumClasses; o++ {
				if o != c && sums[o][j] > maxOther {
					maxOther = sums[o][j]
				}
			}
			if sums[c][j] > 2*maxOther && sums[c][j] > 1e-6 {
				if j < half {
					dbl++
				} else {
					lbl++
				}
			}
		}
		r.addf("%-10s %12d %12d %12d", malgen.Class(c), dbl, lbl, dbl+lbl)
	}
	return r
}

// Table6 reproduces the detector's behaviour on clean samples (paper
// Table VI: 6.16%% overall false positives, all from Gafgyt).
func Table6(env *Env) *Report {
	r := &Report{ID: "tab6", Title: "Detector performance over clean samples (lower is better)"}
	test := env.TestSamples()
	decs, err := env.TestDecisions()
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	detected := make([]int, malgen.NumClasses)
	totals := make([]int, malgen.NumClasses)
	for i, s := range test {
		totals[s.Class]++
		if decs[i].Adversarial {
			detected[s.Class]++
		}
	}
	r.addf("%-10s %10s %8s %8s", "Class", "# Samples", "# DE", "% DE")
	allDet, allTot := 0, 0
	for c := 0; c < malgen.NumClasses; c++ {
		r.addf("%-10s %10d %8d %7.2f%%", malgen.Class(c), totals[c], detected[c],
			100*rate(detected[c], totals[c]))
		allDet += detected[c]
		allTot += totals[c]
	}
	r.addf("%-10s %10d %8d %7.2f%%  (paper: 6.16%%)", "Overall", allTot, allDet, 100*rate(allDet, allTot))
	return r
}

// Table7 reproduces the classifier comparison (paper Table VII):
// Soteria's DBL-only, LBL-only, and voting accuracies against the
// graph-feature baseline [3] and the image-based baseline [5].
func Table7(env *Env) (*Report, error) {
	r := &Report{ID: "tab7", Title: "Classification accuracy: Soteria vs baselines (%)"}
	train, test := env.TrainSamples(), env.TestSamples()
	testLabels := make([]int, len(test))
	for i, s := range test {
		testLabels[i] = int(s.Class)
	}

	// Soteria's three modes.
	dblPred := make([]int, len(test))
	lblPred := make([]int, len(test))
	votePred := make([]int, len(test))
	ens := env.Pipeline.Ensemble
	testCFGs := make([]*disasm.CFG, len(test))
	testSalts := make([]int64, len(test))
	for i, s := range test {
		testCFGs[i] = s.CFG
		testSalts[i] = saltFor(4, i)
	}
	vecs, err := env.extractor().ExtractBatch(testCFGs, testSalts)
	if err != nil {
		return nil, err
	}
	voteErrs := make([]error, len(vecs))
	par.For(len(vecs), func(i int) {
		v := vecs[i]
		dblPred[i] = majority(ens.DBL.Predict(nn.FromRows(v.DBL)), malgen.NumClasses)
		lblPred[i] = majority(ens.LBL.Predict(nn.FromRows(v.LBL)), malgen.NumClasses)
		//lint:ignore batchmiss standalone eval path: the table deliberately scores through per-sample Vote so its accuracies stay an independent cross-check of the batched serving path rather than being computed by it.
		cls, err := ens.Vote(v.DBL, v.LBL)
		if err != nil {
			voteErrs[i] = err
			return
		}
		votePred[i] = cls
	})
	for _, err := range voteErrs {
		if err != nil {
			return nil, err
		}
	}

	// Graph-feature baseline.
	gRows := make([][]float64, len(train))
	gLabels := make([]int, len(train))
	for i, s := range train {
		gRows[i] = baselines.GraphFeatures(s.CFG)
		gLabels[i] = int(s.Class)
	}
	gc, err := baselines.TrainGraph(nn.FromRows(gRows), gLabels, baselines.GraphConfig{
		Classes: malgen.NumClasses, Epochs: env.Cfg.BaselineEpochs, Seed: env.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	gTest := make([][]float64, len(test))
	for i, s := range test {
		gTest[i] = baselines.GraphFeatures(s.CFG)
	}
	graphPred := gc.Predict(nn.FromRows(gTest))

	// Image baseline.
	size := env.Cfg.ImageSize
	iRows := make([][]float64, len(train))
	for i, s := range train {
		img, err := baselines.BinaryImage(s.Binary, size)
		if err != nil {
			return nil, err
		}
		iRows[i] = img
	}
	ic, err := baselines.TrainImage(nn.FromRows(iRows), gLabels, baselines.ImageConfig{
		Size: size, Classes: malgen.NumClasses, Epochs: env.Cfg.BaselineEpochs, Seed: env.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	iTest := make([][]float64, len(test))
	for i, s := range test {
		img, err := baselines.BinaryImage(s.Binary, size)
		if err != nil {
			return nil, err
		}
		iTest[i] = img
	}
	imagePred := ic.Predict(nn.FromRows(iTest))

	// Dynamic (behavioural) baseline: sandbox execution + trace grams.
	trainBins := make([]*isa.Binary, len(train))
	for i, s := range train {
		trainBins[i] = s.Binary
	}
	dynExt := dynamic.NewExtractor(dynamic.Config{TopK: 64})
	if err := dynExt.Fit(trainBins); err != nil {
		return nil, err
	}
	dc, err := dynamic.TrainClassifier(dynExt, trainBins, gLabels, dynamic.ClassifierConfig{
		Classes: malgen.NumClasses, Epochs: env.Cfg.BaselineEpochs, Seed: env.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	testBins := make([]*isa.Binary, len(test))
	for i, s := range test {
		testBins[i] = s.Binary
	}
	dynPred, err := dc.Predict(testBins)
	if err != nil {
		return nil, err
	}

	preds := []struct {
		name string
		p    []int
	}{
		{"Soteria-DBL", dblPred},
		{"Soteria-LBL", lblPred},
		{"Soteria-Vote", votePred},
		{"Graph [3]", graphPred},
		{fmt.Sprintf("Image %dx%d [5]", size, size), imagePred},
		{"Dynamic trace", dynPred},
	}
	r.addf("%-16s %8s %8s %8s %8s %8s", "Model", "Benign", "Gafgyt", "Mirai", "Tsunami", "Overall")
	for _, pr := range preds {
		per := evalx.PerClassAccuracy(pr.p, testLabels, malgen.NumClasses)
		cells := make([]string, malgen.NumClasses)
		for c, a := range per {
			if a < 0 {
				cells[c] = "n/a"
			} else {
				cells[c] = fmt.Sprintf("%.2f", 100*a)
			}
		}
		r.addf("%-16s %8s %8s %8s %8s %8.2f", pr.name, cells[0], cells[1], cells[2], cells[3],
			100*evalx.Accuracy(pr.p, testLabels))
	}
	r.addf("(paper: Soteria voting 99.91%% overall, beating both baselines; Tsunami 100%%)")
	return r, nil
}

// Table8 reproduces the classifier's behaviour on AEs the detector
// missed (paper Table VIII: most evaders classified as Benign, the rest
// as Gafgyt).
func Table8(env *Env) *Report {
	r := &Report{ID: "tab8", Title: "Classifier predictions over AEs missed by the detector"}
	decs, err := env.AEDecisions()
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	r.addf("%-10s %-8s %6s %8s %8s %8s %8s", "Target", "Size", "# AE", "Benign", "Gafgyt", "Mirai", "Tsunami")
	classTotals := make([]int, malgen.NumClasses)
	evaders := 0
	for i, tgt := range env.Targets {
		counts := make([]int, malgen.NumClasses)
		n := 0
		for _, dec := range decs[i] {
			if dec.Adversarial {
				continue
			}
			n++
			counts[dec.Class]++
			classTotals[dec.Class]++
		}
		evaders += n
		r.addf("%-10s %-8s %6d %8d %8d %8d %8d", tgt.Class, tgt.Size, n,
			counts[0], counts[1], counts[2], counts[3])
	}
	r.addf("%-10s %-8s %6d %8d %8d %8d %8d", "Total", "", evaders,
		classTotals[0], classTotals[1], classTotals[2], classTotals[3])
	if evaders > 0 {
		r.addf("(paper: 76.1%% of evaders classified Benign; here %.1f%%)",
			100*rate(classTotals[0], evaders))
	}
	return r
}

func rate(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// majority returns the plurality label among votes.
func majority(votes []int, classes int) int {
	counts := make([]int, classes)
	for _, v := range votes {
		if v >= 0 && v < classes {
			counts[v]++
		}
	}
	best := 0
	for c := 1; c < classes; c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return best
}
