package features

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/labeling"
	"soteria/internal/ngram"
	"soteria/internal/walk"
)

// --- Reference implementation ---------------------------------------------
//
// refExtractor reproduces the seed (pre-packed-key) extraction pipeline
// verbatim: string-keyed gram maps, per-call labelings, freshly
// allocated walk traces. The optimized Extractor must produce
// bit-identical vectors for every (Seed, salt).

type refExtractor struct {
	cfg      Config
	dbl, lbl *ngram.Vectorizer
}

func (e *refExtractor) sampleGrams(c *disasm.CFG, salt int64) (dblWalks, lblWalks []map[string]int) {
	const mix = int64(-7046029254386353131)
	rng := rand.New(rand.NewSource(e.cfg.Seed*mix + salt + 1))
	entry := c.EntryNode()
	dblLabels := labeling.DensityBased(c.G, entry)
	lblLabels := labeling.LevelBased(c.G, entry)

	traceGrams := func(perm []int) []map[string]int {
		out := make([]map[string]int, e.cfg.WalkCount)
		steps := e.cfg.LengthFactor * c.G.NumNodes()
		for i := range out {
			tr := walk.Random(c.G, entry, perm, steps, rng)
			out[i] = ngram.Grams(tr, e.cfg.Ns)
		}
		return out
	}
	return traceGrams(dblLabels.Perm), traceGrams(lblLabels.Perm)
}

func (e *refExtractor) fit(cfgs []*disasm.CFG) {
	dblCorpus := make([]map[string]int, len(cfgs))
	lblCorpus := make([]map[string]int, len(cfgs))
	for i := range cfgs {
		dw, lw := e.sampleGrams(cfgs[i], int64(i))
		dblCorpus[i] = aggregate(dw)
		lblCorpus[i] = aggregate(lw)
	}
	e.dbl = ngram.Fit(dblCorpus, e.cfg.TopK)
	e.lbl = ngram.Fit(lblCorpus, e.cfg.TopK)
	e.dbl.L2 = !e.cfg.RawMagnitude
	e.lbl.L2 = !e.cfg.RawMagnitude
}

func (e *refExtractor) extract(c *disasm.CFG, salt int64) *Vectors {
	dw, lw := e.sampleGrams(c, salt)
	v := &Vectors{
		DBL: make([][]float64, len(dw)),
		LBL: make([][]float64, len(lw)),
	}
	for i, g := range dw {
		v.DBL[i] = e.dbl.Vector(g)
	}
	for i, g := range lw {
		v.LBL[i] = e.lbl.Vector(g)
	}
	dblAgg := e.dbl.Vector(aggregate(dw))
	lblAgg := e.lbl.Vector(aggregate(lw))
	v.Combined = make([]float64, 0, len(dblAgg)+len(lblAgg))
	v.Combined = append(v.Combined, dblAgg...)
	v.Combined = append(v.Combined, lblAgg...)
	v.CombinedWalks = make([][]float64, len(v.DBL))
	for i := range v.CombinedWalks {
		cw := make([]float64, 0, len(v.DBL[i])+len(v.LBL[i]))
		cw = append(cw, v.DBL[i]...)
		cw = append(cw, v.LBL[i]...)
		v.CombinedWalks[i] = cw
	}
	return v
}

// --- Equivalence ----------------------------------------------------------

func TestPackedExtractionMatchesReference(t *testing.T) {
	cfgs := corpusCFGs(t, 3)
	for _, rawMag := range []bool{false, true} {
		cfg := smallConfig()
		cfg.RawMagnitude = rawMag

		ref := &refExtractor{cfg: cfg}
		ref.fit(cfgs)
		opt := NewExtractor(cfg)
		opt.Fit(cfgs)

		dRef, lRef := ref.dbl, ref.lbl
		dOpt, lOpt := opt.Vectorizers()
		if !reflect.DeepEqual(dRef.Vocab, dOpt.Vocab) || !reflect.DeepEqual(lRef.Vocab, lOpt.Vocab) {
			t.Fatalf("rawMag=%v: fitted vocabularies differ from reference", rawMag)
		}
		if !reflect.DeepEqual(dRef.IDF, dOpt.IDF) || !reflect.DeepEqual(lRef.IDF, lOpt.IDF) {
			t.Fatalf("rawMag=%v: IDF weights differ from reference", rawMag)
		}
		if !dOpt.PackedReady() || !lOpt.PackedReady() {
			t.Fatalf("rawMag=%v: small CFG corpus should take the packed path", rawMag)
		}

		for i, c := range cfgs {
			for _, salt := range []int64{0, 1, 17, 1 << 40} {
				want := ref.extract(c, salt)
				got, err := opt.Extract(c, salt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("rawMag=%v sample %d salt %d: packed extraction differs from reference", rawMag, i, salt)
				}
			}
		}
	}
}

func TestStringFallbackMatchesReference(t *testing.T) {
	// An n-gram length above 4 forces the legacy string path; it must
	// still agree with the reference implementation.
	cfgs := corpusCFGs(t, 2)
	cfg := smallConfig()
	cfg.Ns = []int{2, 5}

	ref := &refExtractor{cfg: cfg}
	ref.fit(cfgs)
	opt := NewExtractor(cfg)
	opt.Fit(cfgs)

	d, l := opt.Vectorizers()
	if d.PackedReady() && l.PackedReady() {
		t.Fatal("5-gram config should not be fully packed-ready")
	}
	for i, c := range cfgs {
		want := ref.extract(c, 9)
		got, err := opt.Extract(c, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("sample %d: fallback extraction differs from reference", i)
		}
	}
}

// --- Allocation regression guard ------------------------------------------

func TestExtractAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	cfgs := corpusCFGs(t, 2)
	cfg := smallConfig()
	e := NewExtractor(cfg)
	e.Fit(cfgs)
	c := cfgs[0]
	if _, err := e.Extract(c, 1); err != nil { // warm pool, cache, buckets
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Extract(c, 2); err != nil {
			t.Fatal(err)
		}
	})
	// Steady state allocates only the output: the Vectors struct, the
	// per-walk / aggregate / combined float slices, and their holders —
	// roughly 3*WalkCount + 10. The legacy path allocated per gram
	// occurrence (thousands per sample); this bound locks the regression
	// out with a little headroom for runtime noise.
	budget := float64(4*cfg.WalkCount + 16)
	if allocs > budget {
		t.Fatalf("Extract allocates %.0f/op, budget %.0f", allocs, budget)
	}
}

// --- Concurrency ----------------------------------------------------------

func TestExtractBatchConcurrentAndDeterministic(t *testing.T) {
	cfgs := corpusCFGs(t, 3)
	e := NewExtractor(smallConfig())
	e.Fit(cfgs)
	salts := make([]int64, len(cfgs))
	for i := range salts {
		salts[i] = int64(i)
	}
	want, err := e.ExtractBatch(cfgs, salts)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the shared pool and labeling cache from many goroutines.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.ExtractBatch(cfgs, salts)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(want, got) {
				t.Error("concurrent ExtractBatch diverged")
			}
		}()
	}
	wg.Wait()
}
