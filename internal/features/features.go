// Package features composes the full Soteria feature-extraction pipeline
// (paper Fig. 3): disassembled CFG -> density- and level-based labelings
// -> ten random walks per labeling -> n-gram counting -> top-500 TF-IDF
// vectors per labeling.
//
// Every sample yields 20 per-walk vectors (ten 1x500 DBL vectors and ten
// 1x500 LBL vectors) consumed by the CNN classifier's majority vote, and
// one combined 1x1000 vector (walk-aggregated DBL ++ LBL) consumed by
// the autoencoder detector.
//
// The hot path is allocation-free in steady state: grams are counted on
// packed uint64 keys (see ngram.Pack), walk traces and gram counters
// live in per-worker scratch buffers recycled through a sync.Pool, and
// per-CFG labelings are memoized so pipelines that fit and then extract
// the same corpus label each sample once. Samples that cannot pack
// (|V| > 2^15 or n-gram lengths above 4) fall back to the legacy
// string-keyed path, which produces bit-identical vectors.
package features

import (
	"errors"
	"math/rand"
	"sync"

	"soteria/internal/disasm"
	"soteria/internal/labeling"
	"soteria/internal/ngram"
	"soteria/internal/par"
	"soteria/internal/walk"
)

// Config parameterizes extraction. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// WalkCount is the number of random walks per labeling (paper: 10).
	WalkCount int `json:"walkCount"`
	// LengthFactor scales walk length: steps = LengthFactor * |V|
	// (paper: 5).
	LengthFactor int `json:"lengthFactor"`
	// Ns are the n-gram lengths (paper: 2, 3, 4).
	Ns []int `json:"ns"`
	// TopK is the vocabulary size per labeling (paper: 500). The
	// combined detector vector has dimension 2*TopK.
	TopK int `json:"topK"`
	// Seed drives walk randomness. Extraction for a given (Seed, salt)
	// pair is deterministic; re-seeding re-randomizes the feature space,
	// which is Soteria's defense-by-randomization property.
	Seed int64 `json:"seed"`
	// RawMagnitude disables the per-labeling L2 normalization of
	// feature vectors. Normalized (pattern-only) vectors are the
	// default: they are what separates GEA merges from clean samples,
	// since a merged graph's in-vocabulary gram *distribution* shifts
	// while its overall mass stays plausible.
	RawMagnitude bool `json:"rawMagnitude"`
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		WalkCount:    walk.DefaultCount,
		LengthFactor: walk.DefaultLengthFactor,
		Ns:           append([]int(nil), ngram.DefaultNs...),
		TopK:         ngram.DefaultTopK,
		Seed:         1,
	}
}

// Vectors holds every feature representation of one sample.
type Vectors struct {
	// DBL and LBL hold WalkCount per-walk TF-IDF vectors of length TopK.
	DBL [][]float64
	LBL [][]float64
	// Combined is the walk-aggregated detector vector: DBL features
	// followed by LBL features, length 2*TopK.
	Combined []float64
	// CombinedWalks pairs walk i's DBL and LBL vectors into one
	// 2*TopK vector — the per-walk detector representation.
	CombinedWalks [][]float64
}

// labelPair holds both labelings of one CFG.
type labelPair struct {
	dbl, lbl *labeling.Labels
}

// labelCacheMax bounds the labeling memo; on overflow the whole cache
// is dropped (labelings are recomputable, so eviction only costs time).
const labelCacheMax = 4096

// scratch is one worker's reusable extraction state. Everything here is
// capacity that survives between samples: the seeded RNG, the walker's
// adjacency arena, the walk-trace buffer, and the gram counters.
type scratch struct {
	rng    *rand.Rand
	walker walk.Walker
	trace  []int
	walk   *ngram.GramCounter
	agg    *ngram.GramCounter
	// aggDBL and aggLBL hold the walk-aggregated TF-IDF vectors between
	// the per-labeling sweep and fillCombined, reused across samples.
	aggDBL []float64
	aggLBL []float64
}

// Extractor extracts features after being fitted on a training corpus.
// It is safe for concurrent Extract calls.
type Extractor struct {
	cfg Config
	dbl *ngram.Vectorizer
	lbl *ngram.Vectorizer

	mu     sync.Mutex
	labels map[*disasm.CFG]labelPair

	pool sync.Pool // *scratch
}

// ErrNotFitted is returned by Extract before Fit has been called.
var ErrNotFitted = errors.New("features: extractor not fitted")

// NewExtractor returns an unfitted extractor.
func NewExtractor(cfg Config) *Extractor {
	if cfg.WalkCount <= 0 {
		cfg.WalkCount = walk.DefaultCount
	}
	if cfg.LengthFactor <= 0 {
		cfg.LengthFactor = walk.DefaultLengthFactor
	}
	if len(cfg.Ns) == 0 {
		cfg.Ns = append([]int(nil), ngram.DefaultNs...)
	}
	if cfg.TopK <= 0 {
		cfg.TopK = ngram.DefaultTopK
	}
	e := &Extractor{
		cfg:    cfg,
		labels: make(map[*disasm.CFG]labelPair),
	}
	e.pool.New = func() any {
		return &scratch{
			rng:  rand.New(rand.NewSource(1)),
			walk: ngram.NewGramCounter(),
			agg:  ngram.NewGramCounter(),
		}
	}
	return e
}

// Config returns the extractor's effective configuration.
func (e *Extractor) Config() Config { return e.cfg }

// Dim returns the combined detector vector length (2*TopK).
func (e *Extractor) Dim() int { return 2 * e.cfg.TopK }

// WalkDim returns the per-walk vector length (TopK).
func (e *Extractor) WalkDim() int { return e.cfg.TopK }

// Fitted reports whether Fit has been called.
func (e *Extractor) Fitted() bool { return e.dbl != nil && e.lbl != nil }

// walkSeed derives the walk RNG seed for a sample. salt distinguishes
// samples; extraction is deterministic per (Seed, salt).
func (e *Extractor) walkSeed(salt int64) int64 {
	const mix = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	return e.cfg.Seed*mix + salt + 1
}

// rngFor derives the walk RNG for a sample.
func (e *Extractor) rngFor(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.walkSeed(salt)))
}

// labelsFor returns the sample's memoized DBL and LBL labelings,
// computing both in one ranking pass on a miss. Memoization makes
// Fit-then-Extract pipelines (core.Train) label each CFG once instead
// of twice; CFGs are treated as immutable after disassembly.
func (e *Extractor) labelsFor(c *disasm.CFG) labelPair {
	e.mu.Lock()
	p, ok := e.labels[c]
	e.mu.Unlock()
	if ok {
		return p
	}
	dbl, lbl := labeling.Both(c.G, c.EntryNode())
	p = labelPair{dbl: dbl, lbl: lbl}
	e.mu.Lock()
	if len(e.labels) >= labelCacheMax {
		clear(e.labels)
	}
	e.labels[c] = p
	e.mu.Unlock()
	return p
}

// packed reports whether the sample can take the packed-key hot path.
func (e *Extractor) packed(c *disasm.CFG) bool {
	return ngram.Packable(c.G.NumNodes()-1, e.cfg.Ns)
}

func (e *Extractor) getScratch() *scratch { return e.pool.Get().(*scratch) }
func (e *Extractor) putScratch(s *scratch) {
	e.pool.Put(s)
}

// fitGrams runs labeling + walks + packed n-gram counting for one
// sample at fit time, returning the walk-aggregated counters for each
// labeling (retained by the caller, so they are freshly allocated).
func (e *Extractor) fitGrams(c *disasm.CFG, salt int64) (dblAgg, lblAgg *ngram.GramCounter) {
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.rng.Seed(e.walkSeed(salt))
	lp := e.labelsFor(c)
	sc.walker.Reset(c.G)
	entry := c.EntryNode()
	steps := e.cfg.LengthFactor * c.G.NumNodes()

	count := func(perm []int) *ngram.GramCounter {
		agg := ngram.NewGramCounter()
		for w := 0; w < e.cfg.WalkCount; w++ {
			sc.trace = sc.walker.RandomInto(sc.trace, entry, perm, steps, sc.rng)
			agg.AddTrace(sc.trace, e.cfg.Ns)
		}
		return agg
	}
	// DBL walks first, then LBL, sharing one RNG stream — the same
	// consumption order as extraction, so fit and extract see the same
	// walks for a given (Seed, salt).
	return count(lp.dbl.Perm), count(lp.lbl.Perm)
}

// sampleGrams is the legacy string-keyed stage, kept as the fallback
// for samples that cannot pack: labeling + walks + n-gram counting,
// returning per-walk gram counts for each labeling.
func (e *Extractor) sampleGrams(c *disasm.CFG, salt int64) (dblWalks, lblWalks []map[string]int) {
	rng := e.rngFor(salt)
	entry := c.EntryNode()
	lp := e.labelsFor(c)

	traceGrams := func(perm []int) []map[string]int {
		traces := walk.Walks(c.G, entry, perm, e.cfg.WalkCount, e.cfg.LengthFactor, rng)
		out := make([]map[string]int, len(traces))
		for i, tr := range traces {
			out[i] = ngram.Grams(tr, e.cfg.Ns)
		}
		return out
	}
	return traceGrams(lp.dbl.Perm), traceGrams(lp.lbl.Perm)
}

// aggregate sums per-walk gram counts into one map.
func aggregate(walks []map[string]int) map[string]int {
	out := make(map[string]int)
	for _, w := range walks {
		for g, c := range w {
			out[g] += c
		}
	}
	return out
}

// Fit builds the DBL and LBL vocabularies from a training corpus. The
// i-th CFG uses salt i, so fitting is deterministic. Per-sample gram
// extraction runs in parallel; the result is independent of worker
// scheduling. Vocabulary selection is identical on the packed and
// string paths (top-k by document frequency, ties by total frequency,
// then by the string form of the gram).
func (e *Extractor) Fit(cfgs []*disasm.CFG) {
	allPacked := true
	for _, c := range cfgs {
		if !e.packed(c) {
			allPacked = false
			break
		}
	}
	if allPacked {
		dblCorpus := make([]*ngram.GramCounter, len(cfgs))
		lblCorpus := make([]*ngram.GramCounter, len(cfgs))
		par.For(len(cfgs), func(i int) {
			dblCorpus[i], lblCorpus[i] = e.fitGrams(cfgs[i], int64(i))
		})
		e.dbl = ngram.FitPacked(dblCorpus, e.cfg.TopK)
		e.lbl = ngram.FitPacked(lblCorpus, e.cfg.TopK)
	} else {
		dblCorpus := make([]map[string]int, len(cfgs))
		lblCorpus := make([]map[string]int, len(cfgs))
		par.For(len(cfgs), func(i int) {
			dw, lw := e.sampleGrams(cfgs[i], int64(i))
			dblCorpus[i] = aggregate(dw)
			lblCorpus[i] = aggregate(lw)
		})
		e.dbl = ngram.Fit(dblCorpus, e.cfg.TopK)
		e.lbl = ngram.Fit(lblCorpus, e.cfg.TopK)
	}
	e.dbl.L2 = !e.cfg.RawMagnitude
	e.lbl.L2 = !e.cfg.RawMagnitude
}

// FitVectorizers injects pre-built vocabularies (used when loading a
// persisted model).
func (e *Extractor) FitVectorizers(dbl, lbl *ngram.Vectorizer) {
	e.dbl, e.lbl = dbl, lbl
}

// Vectorizers exposes the fitted vocabularies.
func (e *Extractor) Vectorizers() (dbl, lbl *ngram.Vectorizer) { return e.dbl, e.lbl }

// Extract computes every feature representation of one sample.
func (e *Extractor) Extract(c *disasm.CFG, salt int64) (*Vectors, error) {
	return e.ExtractInto(nil, c, salt)
}

// ExtractInto is Extract with caller-provided storage: v's slices are
// reused when their capacity suffices (contents are overwritten), so a
// steady extraction stream — e.g. the analyze pipeline's chunk filler —
// allocates nothing per sample on the packed path. A nil v allocates a
// fresh set. Output is bit-identical to Extract.
func (e *Extractor) ExtractInto(v *Vectors, c *disasm.CFG, salt int64) (*Vectors, error) {
	if !e.Fitted() {
		return nil, ErrNotFitted
	}
	if v == nil {
		v = new(Vectors)
	}
	if e.packed(c) && e.dbl.PackedReady() && e.lbl.PackedReady() {
		return e.extractPacked(v, c, salt), nil
	}
	return e.extractStrings(v, c, salt), nil
}

// extractPacked is the allocation-lean hot path: walks append into a
// pooled trace buffer, grams are counted on packed keys in pooled
// counters, aggregates land in pooled scratch, and the output vectors
// reuse v's storage.
func (e *Extractor) extractPacked(v *Vectors, c *disasm.CFG, salt int64) *Vectors {
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.rng.Seed(e.walkSeed(salt))
	lp := e.labelsFor(c)
	sc.walker.Reset(c.G)
	entry := c.EntryNode()
	steps := e.cfg.LengthFactor * c.G.NumNodes()

	wc := e.cfg.WalkCount
	v.DBL = ensureRows(v.DBL, wc)
	v.LBL = ensureRows(v.LBL, wc)
	runLabeling := func(vec *ngram.Vectorizer, perm []int, out [][]float64, agg []float64) []float64 {
		sc.agg.Reset()
		for w := 0; w < wc; w++ {
			sc.trace = sc.walker.RandomInto(sc.trace, entry, perm, steps, sc.rng)
			sc.walk.Reset()
			sc.walk.AddTrace(sc.trace, e.cfg.Ns)
			out[w] = vec.VectorPackedInto(out[w], sc.walk)
			sc.agg.Merge(sc.walk)
		}
		return vec.VectorPackedInto(agg, sc.agg)
	}
	sc.aggDBL = runLabeling(e.dbl, lp.dbl.Perm, v.DBL, sc.aggDBL)
	sc.aggLBL = runLabeling(e.lbl, lp.lbl.Perm, v.LBL, sc.aggLBL)
	fillCombined(v, sc.aggDBL, sc.aggLBL)
	return v
}

// extractStrings is the legacy string-keyed path, used when the sample
// or vocabulary cannot pack. Output is bit-identical to extractPacked;
// the per-walk vectors are freshly allocated (Vector has no reuse
// form), only the combined storage is recycled.
func (e *Extractor) extractStrings(v *Vectors, c *disasm.CFG, salt int64) *Vectors {
	dw, lw := e.sampleGrams(c, salt)
	v.DBL = ensureRows(v.DBL, len(dw))
	v.LBL = ensureRows(v.LBL, len(lw))
	for i, g := range dw {
		v.DBL[i] = e.dbl.Vector(g)
	}
	for i, g := range lw {
		v.LBL[i] = e.lbl.Vector(g)
	}
	fillCombined(v, e.dbl.Vector(aggregate(dw)), e.lbl.Vector(aggregate(lw)))
	return v
}

// fillCombined populates Combined and CombinedWalks from the per-walk
// vectors and the two aggregate vectors, reusing v's storage.
func fillCombined(v *Vectors, dblAgg, lblAgg []float64) {
	v.Combined = append(ensureVec(v.Combined, len(dblAgg)+len(lblAgg)), dblAgg...)
	v.Combined = append(v.Combined, lblAgg...)

	n := len(v.DBL)
	if len(v.LBL) < n {
		n = len(v.LBL)
	}
	v.CombinedWalks = ensureRows(v.CombinedWalks, n)
	for i := 0; i < n; i++ {
		cw := append(ensureVec(v.CombinedWalks[i], len(v.DBL[i])+len(v.LBL[i])), v.DBL[i]...)
		v.CombinedWalks[i] = append(cw, v.LBL[i]...)
	}
}

// ensureRows resizes a slice of rows to n entries, keeping surviving
// rows' backing storage for reuse.
func ensureRows(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		ns := make([][]float64, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

// ensureVec returns s emptied, with capacity for at least n elements.
func ensureVec(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, 0, n)
	}
	return s[:0]
}

// ExtractBatch extracts features for many samples in parallel (the
// pipeline stages are pure, so results equal sequential extraction).
// salts[i] seeds sample i's walks.
func (e *Extractor) ExtractBatch(cfgs []*disasm.CFG, salts []int64) ([]*Vectors, error) {
	if !e.Fitted() {
		return nil, ErrNotFitted
	}
	if len(cfgs) != len(salts) {
		return nil, errors.New("features: cfgs and salts length mismatch")
	}
	out := make([]*Vectors, len(cfgs))
	errs := make([]error, len(cfgs))
	par.For(len(cfgs), func(i int) {
		out[i], errs[i] = e.Extract(cfgs[i], salts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
