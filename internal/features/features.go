// Package features composes the full Soteria feature-extraction pipeline
// (paper Fig. 3): disassembled CFG -> density- and level-based labelings
// -> ten random walks per labeling -> n-gram counting -> top-500 TF-IDF
// vectors per labeling.
//
// Every sample yields 20 per-walk vectors (ten 1x500 DBL vectors and ten
// 1x500 LBL vectors) consumed by the CNN classifier's majority vote, and
// one combined 1x1000 vector (walk-aggregated DBL ++ LBL) consumed by
// the autoencoder detector.
package features

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"

	"soteria/internal/disasm"
	"soteria/internal/labeling"
	"soteria/internal/ngram"
	"soteria/internal/walk"
)

// Config parameterizes extraction. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// WalkCount is the number of random walks per labeling (paper: 10).
	WalkCount int `json:"walkCount"`
	// LengthFactor scales walk length: steps = LengthFactor * |V|
	// (paper: 5).
	LengthFactor int `json:"lengthFactor"`
	// Ns are the n-gram lengths (paper: 2, 3, 4).
	Ns []int `json:"ns"`
	// TopK is the vocabulary size per labeling (paper: 500). The
	// combined detector vector has dimension 2*TopK.
	TopK int `json:"topK"`
	// Seed drives walk randomness. Extraction for a given (Seed, salt)
	// pair is deterministic; re-seeding re-randomizes the feature space,
	// which is Soteria's defense-by-randomization property.
	Seed int64 `json:"seed"`
	// RawMagnitude disables the per-labeling L2 normalization of
	// feature vectors. Normalized (pattern-only) vectors are the
	// default: they are what separates GEA merges from clean samples,
	// since a merged graph's in-vocabulary gram *distribution* shifts
	// while its overall mass stays plausible.
	RawMagnitude bool `json:"rawMagnitude"`
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		WalkCount:    walk.DefaultCount,
		LengthFactor: walk.DefaultLengthFactor,
		Ns:           append([]int(nil), ngram.DefaultNs...),
		TopK:         ngram.DefaultTopK,
		Seed:         1,
	}
}

// Vectors holds every feature representation of one sample.
type Vectors struct {
	// DBL and LBL hold WalkCount per-walk TF-IDF vectors of length TopK.
	DBL [][]float64
	LBL [][]float64
	// Combined is the walk-aggregated detector vector: DBL features
	// followed by LBL features, length 2*TopK.
	Combined []float64
	// CombinedWalks pairs walk i's DBL and LBL vectors into one
	// 2*TopK vector — the per-walk detector representation.
	CombinedWalks [][]float64
}

// Extractor extracts features after being fitted on a training corpus.
type Extractor struct {
	cfg Config
	dbl *ngram.Vectorizer
	lbl *ngram.Vectorizer
}

// ErrNotFitted is returned by Extract before Fit has been called.
var ErrNotFitted = errors.New("features: extractor not fitted")

// NewExtractor returns an unfitted extractor.
func NewExtractor(cfg Config) *Extractor {
	if cfg.WalkCount <= 0 {
		cfg.WalkCount = walk.DefaultCount
	}
	if cfg.LengthFactor <= 0 {
		cfg.LengthFactor = walk.DefaultLengthFactor
	}
	if len(cfg.Ns) == 0 {
		cfg.Ns = append([]int(nil), ngram.DefaultNs...)
	}
	if cfg.TopK <= 0 {
		cfg.TopK = ngram.DefaultTopK
	}
	return &Extractor{cfg: cfg}
}

// Config returns the extractor's effective configuration.
func (e *Extractor) Config() Config { return e.cfg }

// Dim returns the combined detector vector length (2*TopK).
func (e *Extractor) Dim() int { return 2 * e.cfg.TopK }

// WalkDim returns the per-walk vector length (TopK).
func (e *Extractor) WalkDim() int { return e.cfg.TopK }

// Fitted reports whether Fit has been called.
func (e *Extractor) Fitted() bool { return e.dbl != nil && e.lbl != nil }

// rngFor derives the walk RNG for a sample. salt distinguishes samples;
// extraction is deterministic per (Seed, salt).
func (e *Extractor) rngFor(salt int64) *rand.Rand {
	const mix = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	return rand.New(rand.NewSource(e.cfg.Seed*mix + salt + 1))
}

// sampleGrams runs the labeling + walks + n-gram stages for one sample,
// returning per-walk gram counts for each labeling.
func (e *Extractor) sampleGrams(c *disasm.CFG, salt int64) (dblWalks, lblWalks []map[string]int) {
	rng := e.rngFor(salt)
	entry := c.EntryNode()
	dblLabels := labeling.DensityBased(c.G, entry)
	lblLabels := labeling.LevelBased(c.G, entry)

	traceGrams := func(perm []int) []map[string]int {
		traces := walk.Walks(c.G, entry, perm, e.cfg.WalkCount, e.cfg.LengthFactor, rng)
		out := make([]map[string]int, len(traces))
		for i, tr := range traces {
			out[i] = ngram.Grams(tr, e.cfg.Ns)
		}
		return out
	}
	return traceGrams(dblLabels.Perm), traceGrams(lblLabels.Perm)
}

// aggregate sums per-walk gram counts into one map.
func aggregate(walks []map[string]int) map[string]int {
	out := make(map[string]int)
	for _, w := range walks {
		for g, c := range w {
			out[g] += c
		}
	}
	return out
}

// Fit builds the DBL and LBL vocabularies from a training corpus. The
// i-th CFG uses salt i, so fitting is deterministic. Per-sample gram
// extraction runs in parallel; the result is independent of worker
// scheduling.
func (e *Extractor) Fit(cfgs []*disasm.CFG) {
	dblCorpus := make([]map[string]int, len(cfgs))
	lblCorpus := make([]map[string]int, len(cfgs))
	parallelFor(len(cfgs), func(i int) {
		dw, lw := e.sampleGrams(cfgs[i], int64(i))
		dblCorpus[i] = aggregate(dw)
		lblCorpus[i] = aggregate(lw)
	})
	e.dbl = ngram.Fit(dblCorpus, e.cfg.TopK)
	e.lbl = ngram.Fit(lblCorpus, e.cfg.TopK)
	e.dbl.L2 = !e.cfg.RawMagnitude
	e.lbl.L2 = !e.cfg.RawMagnitude
}

// parallelFor runs fn(i) for i in [0, n) on up to GOMAXPROCS workers.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// FitVectorizers injects pre-built vocabularies (used when loading a
// persisted model).
func (e *Extractor) FitVectorizers(dbl, lbl *ngram.Vectorizer) {
	e.dbl, e.lbl = dbl, lbl
}

// Vectorizers exposes the fitted vocabularies.
func (e *Extractor) Vectorizers() (dbl, lbl *ngram.Vectorizer) { return e.dbl, e.lbl }

// Extract computes every feature representation of one sample.
func (e *Extractor) Extract(c *disasm.CFG, salt int64) (*Vectors, error) {
	if !e.Fitted() {
		return nil, ErrNotFitted
	}
	dw, lw := e.sampleGrams(c, salt)
	v := &Vectors{
		DBL: make([][]float64, len(dw)),
		LBL: make([][]float64, len(lw)),
	}
	for i, g := range dw {
		v.DBL[i] = e.dbl.Vector(g)
	}
	for i, g := range lw {
		v.LBL[i] = e.lbl.Vector(g)
	}
	dblAgg := e.dbl.Vector(aggregate(dw))
	lblAgg := e.lbl.Vector(aggregate(lw))
	v.Combined = make([]float64, 0, len(dblAgg)+len(lblAgg))
	v.Combined = append(v.Combined, dblAgg...)
	v.Combined = append(v.Combined, lblAgg...)

	n := len(v.DBL)
	if len(v.LBL) < n {
		n = len(v.LBL)
	}
	v.CombinedWalks = make([][]float64, n)
	for i := 0; i < n; i++ {
		cw := make([]float64, 0, len(v.DBL[i])+len(v.LBL[i]))
		cw = append(cw, v.DBL[i]...)
		cw = append(cw, v.LBL[i]...)
		v.CombinedWalks[i] = cw
	}
	return v, nil
}

// ExtractBatch extracts features for many samples in parallel (the
// pipeline stages are pure, so results equal sequential extraction).
// salts[i] seeds sample i's walks.
func (e *Extractor) ExtractBatch(cfgs []*disasm.CFG, salts []int64) ([]*Vectors, error) {
	if !e.Fitted() {
		return nil, ErrNotFitted
	}
	if len(cfgs) != len(salts) {
		return nil, errors.New("features: cfgs and salts length mismatch")
	}
	out := make([]*Vectors, len(cfgs))
	errs := make([]error, len(cfgs))
	parallelFor(len(cfgs), func(i int) {
		out[i], errs[i] = e.Extract(cfgs[i], salts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
