package features

import (
	"math"
	"reflect"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/malgen"
)

// corpusCFGs generates a small mixed corpus for fitting.
func corpusCFGs(t *testing.T, perClass int) []*disasm.CFG {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: 42})
	var cfgs []*disasm.CFG
	for _, c := range malgen.Classes {
		for i := 0; i < perClass; i++ {
			s, err := g.Sample(c)
			if err != nil {
				t.Fatalf("sample: %v", err)
			}
			cfgs = append(cfgs, s.CFG)
		}
	}
	return cfgs
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TopK = 50
	cfg.WalkCount = 4
	cfg.LengthFactor = 3
	return cfg
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.WalkCount != 10 || cfg.LengthFactor != 5 || cfg.TopK != 500 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	if !reflect.DeepEqual(cfg.Ns, []int{2, 3, 4}) {
		t.Fatalf("Ns = %v", cfg.Ns)
	}
}

func TestExtractBeforeFitErrors(t *testing.T) {
	e := NewExtractor(smallConfig())
	cfgs := corpusCFGs(t, 1)
	if _, err := e.Extract(cfgs[0], 0); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
}

func TestExtractShapes(t *testing.T) {
	cfgs := corpusCFGs(t, 2)
	e := NewExtractor(smallConfig())
	e.Fit(cfgs)
	if !e.Fitted() {
		t.Fatal("extractor should be fitted")
	}
	v, err := e.Extract(cfgs[0], 0)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(v.DBL) != 4 || len(v.LBL) != 4 {
		t.Fatalf("walk vectors = %d/%d, want 4/4", len(v.DBL), len(v.LBL))
	}
	for _, w := range append(append([][]float64{}, v.DBL...), v.LBL...) {
		if len(w) != 50 {
			t.Fatalf("per-walk dim = %d, want 50", len(w))
		}
	}
	if len(v.Combined) != 100 {
		t.Fatalf("combined dim = %d, want 100", len(v.Combined))
	}
	if e.Dim() != 100 || e.WalkDim() != 50 {
		t.Fatalf("Dim = %d, WalkDim = %d", e.Dim(), e.WalkDim())
	}
}

func TestExtractDeterministicPerSalt(t *testing.T) {
	cfgs := corpusCFGs(t, 2)
	e := NewExtractor(smallConfig())
	e.Fit(cfgs)
	a, _ := e.Extract(cfgs[0], 7)
	b, _ := e.Extract(cfgs[0], 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same salt produced different features")
	}
	c, _ := e.Extract(cfgs[0], 8)
	if reflect.DeepEqual(a.Combined, c.Combined) {
		t.Fatal("different salts produced identical features")
	}
}

func TestSeedRerandomizesFeatureSpace(t *testing.T) {
	// The defense property: a different extractor seed yields different
	// walks and hence (generally) a different selected vocabulary.
	cfgs := corpusCFGs(t, 2)
	cfg1 := smallConfig()
	cfg2 := smallConfig()
	cfg2.Seed = cfg1.Seed + 1
	e1 := NewExtractor(cfg1)
	e2 := NewExtractor(cfg2)
	e1.Fit(cfgs)
	e2.Fit(cfgs)
	d1, _ := e1.Vectorizers()
	d2, _ := e2.Vectorizers()
	if reflect.DeepEqual(d1.Vocab, d2.Vocab) {
		t.Fatal("different seeds selected identical vocabularies")
	}
}

func TestCombinedHalvesCarryMass(t *testing.T) {
	cfgs := corpusCFGs(t, 2)
	e := NewExtractor(smallConfig())
	e.Fit(cfgs)
	v, _ := e.Extract(cfgs[0], 0)
	normOf := func(xs []float64) float64 {
		var n float64
		for _, x := range xs {
			n += x * x
		}
		return n
	}
	// Both labeling halves of a clean training sample must carry
	// in-vocabulary mass (vectors are unnormalized TF-IDF, magnitude
	// encodes vocabulary coverage).
	if n := normOf(v.Combined[:50]); n <= 0 {
		t.Fatalf("DBL half norm^2 = %v", n)
	}
	if n := normOf(v.Combined[50:]); n <= 0 {
		t.Fatalf("LBL half norm^2 = %v", n)
	}
	if math.IsNaN(normOf(v.Combined)) {
		t.Fatal("NaN in combined vector")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	e := NewExtractor(Config{})
	cfg := e.Config()
	if cfg.WalkCount != 10 || cfg.LengthFactor != 5 || cfg.TopK != 500 || len(cfg.Ns) != 3 {
		t.Fatalf("zero config not defaulted: %+v", cfg)
	}
}

func TestFitVectorizersInjection(t *testing.T) {
	cfgs := corpusCFGs(t, 1)
	e := NewExtractor(smallConfig())
	e.Fit(cfgs)
	d, l := e.Vectorizers()

	e2 := NewExtractor(smallConfig())
	e2.FitVectorizers(d, l)
	if !e2.Fitted() {
		t.Fatal("injected extractor should be fitted")
	}
	a, _ := e.Extract(cfgs[0], 3)
	b, _ := e2.Extract(cfgs[0], 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("injected vectorizers changed extraction")
	}
}
