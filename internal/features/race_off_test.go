//go:build !race

package features

// raceEnabled reports whether the race detector is active; allocation
// regression guards are skipped under -race because instrumentation
// inflates the counts.
const raceEnabled = false
