package features

import (
	"math"
	"testing"
)

func TestExtractBatchMatchesSequential(t *testing.T) {
	cfgs := corpusCFGs(t, 2)
	e := NewExtractor(smallConfig())
	e.Fit(cfgs)
	salts := make([]int64, len(cfgs))
	for i := range salts {
		salts[i] = int64(100 + i)
	}
	batch, err := e.ExtractBatch(cfgs, salts)
	if err != nil {
		t.Fatalf("ExtractBatch: %v", err)
	}
	for i, c := range cfgs {
		seq, err := e.Extract(c, salts[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range seq.Combined {
			if seq.Combined[j] != batch[i].Combined[j] {
				t.Fatalf("sample %d: batch differs from sequential", i)
			}
		}
	}
}

func TestExtractBatchErrors(t *testing.T) {
	cfgs := corpusCFGs(t, 1)
	e := NewExtractor(smallConfig())
	if _, err := e.ExtractBatch(cfgs, make([]int64, len(cfgs))); err != ErrNotFitted {
		t.Fatalf("unfitted err = %v", err)
	}
	e.Fit(cfgs)
	if _, err := e.ExtractBatch(cfgs, make([]int64, len(cfgs)+1)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestRawMagnitudeConfig(t *testing.T) {
	cfgs := corpusCFGs(t, 2)

	l2cfg := smallConfig()
	l2 := NewExtractor(l2cfg)
	l2.Fit(cfgs)

	rawCfg := smallConfig()
	rawCfg.RawMagnitude = true
	raw := NewExtractor(rawCfg)
	raw.Fit(cfgs)

	vL2, err := l2.Extract(cfgs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	vRaw, err := raw.Extract(cfgs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x * x
		}
		return math.Sqrt(s)
	}
	// L2 halves have unit norm; raw halves carry the TF-IDF magnitude
	// (well below 1 for typical samples).
	if n := norm(vL2.Combined[:50]); math.Abs(n-1) > 1e-9 {
		t.Fatalf("L2 DBL half norm = %v, want 1", n)
	}
	if n := norm(vRaw.Combined[:50]); n >= 1 || n <= 0 {
		t.Fatalf("raw DBL half norm = %v, want (0, 1)", n)
	}
	// Direction is the same in both representations.
	dot := 0.0
	for j := 0; j < 50; j++ {
		dot += vL2.Combined[j] * vRaw.Combined[j]
	}
	cos := dot / (norm(vL2.Combined[:50]) * norm(vRaw.Combined[:50]))
	if math.Abs(cos-1) > 1e-9 {
		t.Fatalf("raw and L2 halves not collinear: cos = %v", cos)
	}
}
