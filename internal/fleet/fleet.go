// Package fleet is the scale-out serving tier's front door: a
// stdlib-only reverse proxy that routes POST /analyze traffic across a
// set of replica backends (each a `soteria -serve` process or an
// in-process equivalent), turning N single-node servers into one
// production-shaped service.
//
// Four policies define it, each load-bearing for the tier's operating
// constraint — bounded tail latency under saturation, not best-effort
// queueing:
//
//   - Least-loaded routing with consistent-hash affinity. Every request
//     body is hashed; backends are ranked by rendezvous score for that
//     hash, and the dispatcher walks the ranking, taking the first
//     backend whose in-flight count is within AffinitySlack of the
//     fleet minimum. Near balance, the hash-preferred replica wins, so
//     repeat submissions land on the replica whose content-addressed
//     cache already holds their key; under skew the walk falls through
//     to less-loaded replicas — affinity never queues behind a hot
//     spot.
//
//   - Health-gated membership. A background prober GETs every
//     backend's /healthz: FailAfter consecutive failures eject a
//     replica from the rotation, ReadmitAfter consecutive successes
//     readmit it. A transport error on a live request ejects
//     immediately (the prober readmits after recovery), and the failed
//     request retries on the next-ranked backend — bodies are fully
//     buffered, so failover is safe to replay.
//
//   - Admission control with deadline-aware shedding. A request is
//     rejected with 503 + Retry-After instead of enqueued when the
//     fleet cannot serve it in time: every admissible backend is at
//     its MaxInflight cap, its last-probed Batcher queue depth exceeds
//     QueueLimit, or the request's remaining deadline (the context's,
//     or the client-declared Soteria-Deadline-Ms header) is shorter
//     than the chosen backend's recent service latency. Shedding keeps
//     served-request latency bounded — the queue never grows past what
//     the deadline math says can drain.
//
//   - Graceful drain. Shutdown flips the door to draining (new
//     requests get 503 + Connection: close), waits for in-flight
//     requests to finish, and stops the prober. The owning http.Server
//     stops the listener first, so nothing new arrives while the tail
//     drains.
//
// All observability flows through an optional obs.Registry under the
// "fleet." prefix; a nil registry costs one pointer check per site.
package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"soteria/internal/obs"
)

// DeadlineHeader is the request header a client sets to declare its
// end-to-end budget in milliseconds. The front door sheds the request
// up front if the chosen backend's recent service latency says the
// budget cannot be met — failing in microseconds instead of consuming
// a batcher slot to produce an answer nobody is waiting for.
const DeadlineHeader = "Soteria-Deadline-Ms"

// Config parameterizes a Frontdoor. Zero values take the documented
// defaults.
type Config struct {
	// Backends lists the replica base URLs (e.g. "http://127.0.0.1:9001").
	// Requests forward to <backend><path>?<query> of the incoming
	// request. At least one backend is required.
	Backends []string

	// Client is the forwarding HTTP client. Defaults to a client with a
	// fresh Transport so fleet keep-alive pools are not shared with the
	// process default.
	Client *http.Client

	// ProbeInterval is the health-probe period (default 250ms);
	// ProbeTimeout bounds one probe round trip (default: ProbeInterval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// FailAfter consecutive probe failures eject a backend (default 2);
	// ReadmitAfter consecutive successes readmit it (default 2).
	FailAfter    int
	ReadmitAfter int

	// MaxInflight caps the requests concurrently outstanding against
	// one backend; a request that would push every admissible backend
	// past its cap is shed (default 512 — one full scoring batch).
	MaxInflight int

	// QueueLimit sheds requests to backends whose last-probed
	// batcher.queue_depth exceeds it (default 2048; negative disables
	// the metrics probe entirely for backends without a /metrics
	// endpoint).
	QueueLimit int

	// AffinitySlack is how far above the fleet-minimum in-flight count
	// the hash-preferred backend may sit and still win routing
	// (default 2). 0 is pure least-loaded with rendezvous tie-breaking.
	AffinitySlack int

	// MaxBody bounds a request body (default 16MiB, matching the
	// replicas' own /analyze limit).
	MaxBody int64

	// RetryAfter is the hint returned with 503 responses (default 1s,
	// rounded up to whole seconds).
	RetryAfter time.Duration

	// Obs receives the fleet's metrics; nil runs uninstrumented.
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 2048
	}
	if c.AffinitySlack < 0 {
		c.AffinitySlack = 0
	} else if c.AffinitySlack == 0 {
		c.AffinitySlack = 2
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 16 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// latUnseeded marks a backend latency EWMA with no observations.
var latUnseeded = math.Float64bits(math.NaN())

// backend is one replica's routing state. All mutable fields are
// atomics: the dispatcher goroutines and the prober share them without
// locks. The struct is always handled by pointer (it must never be
// copied).
type backend struct {
	base    string // canonical base URL, the rendezvous identity
	healthz string // probe target

	inflight atomic.Int64 // requests outstanding through this door
	healthy  atomic.Bool  // in the rotation?
	depth    atomic.Int64 // last-probed batcher.queue_depth
	latBits  atomic.Uint64

	// prober-owned; never touched by dispatcher goroutines.
	consecFail, consecOK int
}

// observeLatency folds one served-request latency into the backend's
// rolling estimate (EWMA, alpha 0.2 — fast enough to track load shifts,
// slow enough to ride out one outlier).
func (b *backend) observeLatency(ns float64) {
	const alpha = 0.2
	for {
		old := b.latBits.Load()
		var nw float64
		if old == latUnseeded {
			nw = ns
		} else {
			m := math.Float64frombits(old)
			nw = m + alpha*(ns-m)
		}
		if b.latBits.CompareAndSwap(old, math.Float64bits(nw)) {
			return
		}
	}
}

// latencyEstimate returns the rolling service-latency estimate in
// nanoseconds, 0 before any observation.
func (b *backend) latencyEstimate() float64 {
	bits := b.latBits.Load()
	if bits == latUnseeded {
		return 0
	}
	return math.Float64frombits(bits)
}

// fleetObs is the front door's metric set; all fields nil when
// uninstrumented.
type fleetObs struct {
	requests     *obs.Counter   // requests admitted and dispatched
	shed         *obs.Counter   // 503s: overload, queue depth, drain
	shedDeadline *obs.Counter   // subset of shed: deadline cannot be met
	retries      *obs.Counter   // transport-failover re-dispatches
	errors       *obs.Counter   // 502s: every candidate failed
	latNs        *obs.Histogram // end-to-end served latency
	healthy      *obs.Gauge     // backends currently in rotation
	inflight     *obs.Gauge     // total in-flight through the door
}

// Frontdoor routes /analyze traffic across the configured backends.
// Create with New, mount as the /analyze handler, Shutdown then Close
// on exit. Safe for any number of concurrent requests.
type Frontdoor struct {
	cfg Config
	bes []*backend

	ctx    context.Context // prober lifetime; Close cancels
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once

	draining atomic.Bool
	inflight atomic.Int64

	met fleetObs
}

// New validates the backend list and starts the health prober. Every
// backend starts healthy (optimistically in rotation) and the prober
// corrects membership from its first round onward.
func New(cfg Config) (*Frontdoor, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	cfg.fill()
	f := &Frontdoor{cfg: cfg}
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("fleet: backend %q: %w", raw, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("fleet: backend %q: need an http(s) URL", raw)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("fleet: backend %q: missing host", raw)
		}
		base := u.Scheme + "://" + u.Host
		be := &backend{base: base, healthz: base + "/healthz"}
		be.healthy.Store(true)
		be.latBits.Store(latUnseeded)
		f.bes = append(f.bes, be)
	}
	if r := cfg.Obs; r != nil {
		f.met = fleetObs{
			requests:     r.Counter("fleet.requests"),
			shed:         r.Counter("fleet.shed"),
			shedDeadline: r.Counter("fleet.shed_deadline"),
			retries:      r.Counter("fleet.retries"),
			errors:       r.Counter("fleet.errors"),
			latNs:        r.Histogram("fleet.latency_ns", obs.DurationBuckets()),
			healthy:      r.Gauge("fleet.healthy"),
			inflight:     r.Gauge("fleet.inflight"),
		}
	}
	f.met.healthy.Set(float64(len(f.bes)))
	// The prober's lifetime is the Frontdoor's own, not any request's:
	// it starts here (New has no caller context) and Close cancels it.
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(1)
	go f.probeLoop(f.ctx)
	return f, nil
}

// Healthy reports how many backends are currently in rotation.
func (f *Frontdoor) Healthy() int {
	n := 0
	for _, be := range f.bes {
		if be.healthy.Load() {
			n++
		}
	}
	return n
}

// Inflight reports the requests currently being forwarded.
func (f *Frontdoor) Inflight() int { return int(f.inflight.Load()) }

// Shutdown drains the front door: new requests are shed with 503 +
// Connection: close, and Shutdown blocks until every in-flight request
// has completed or ctx expires. Stop the owning http.Server's listener
// first so nothing new arrives mid-drain; call Close afterwards.
func (f *Frontdoor) Shutdown(ctx context.Context) error {
	f.draining.Store(true)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for f.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// Close stops the health prober. Idempotent; the Frontdoor must not
// serve requests after Close.
func (f *Frontdoor) Close() {
	f.once.Do(f.cancel)
	f.wg.Wait()
}

// rendezvousScore is the highest-random-weight hash of (backend,
// content): FNV-1a over the backend identity then the content digest.
// Each backend scores every request independently, so membership
// changes reshuffle only the keys owned by the ejected/readmitted
// replica — the property that keeps the remaining replicas' caches
// warm through a failure.
func rendezvousScore(base string, sum [32]byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(base); i++ {
		h = (h ^ uint64(base[i])) * prime64
	}
	for _, b := range sum {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// errNoBackend distinguishes "every candidate is over its admission
// bounds" (shed) from transport failure (bad gateway).
var errNoBackend = errors.New("fleet: no admissible backend")

// pick chooses the backend for one request: walk backends in
// descending rendezvous order for the request's content digest,
// skipping unhealthy or already-tried ones, and take the first whose
// in-flight count is within AffinitySlack of the fleet minimum and
// whose admission bounds (MaxInflight, QueueLimit) pass. Returns
// errNoBackend when every healthy candidate is over bounds — the shed
// signal. Admission reads are advisory: two racing requests may both
// admit against the same last slot, overshooting a cap by ones, which
// bounded queues absorb.
func (f *Frontdoor) pick(sum [32]byte, tried map[*backend]bool) (*backend, error) {
	minIn := int64(math.MaxInt64)
	candidates := 0
	for _, be := range f.bes {
		if !be.healthy.Load() || tried[be] {
			continue
		}
		candidates++
		if in := be.inflight.Load(); in < minIn {
			minIn = in
		}
	}
	if candidates == 0 {
		return nil, errNoBackend
	}
	slack := int64(f.cfg.AffinitySlack)
	var best *backend
	var bestScore uint64
	for {
		best, bestScore = nil, 0
		for _, be := range f.bes {
			if !be.healthy.Load() || tried[be] {
				continue
			}
			if s := rendezvousScore(be.base, sum); best == nil || s > bestScore {
				best, bestScore = be, s
			}
		}
		if best == nil {
			return nil, errNoBackend
		}
		in := best.inflight.Load()
		overAffinity := in > minIn+slack
		overCap := in >= int64(f.cfg.MaxInflight)
		overQueue := f.cfg.QueueLimit >= 0 && best.depth.Load() > int64(f.cfg.QueueLimit)
		if !overAffinity && !overCap && !overQueue {
			return best, nil
		}
		if overCap || overQueue {
			// Out of admission bounds entirely — exclude and continue.
			tried[best] = true
			continue
		}
		// Within bounds but too far above the minimum: the affinity
		// preference loses to load. Fall through the ranking.
		tried[best] = true
	}
}

// markFailed ejects a backend after a transport failure on a live
// request. The prober readmits it once /healthz passes again.
func (f *Frontdoor) markFailed(be *backend) {
	if be.healthy.CompareAndSwap(true, false) {
		f.met.healthy.Set(float64(f.Healthy()))
	}
}

// shed rejects a request with 503 + Retry-After.
func (f *Frontdoor) shed(w http.ResponseWriter, reason string, deadline bool) {
	f.met.shed.Inc()
	if deadline {
		f.met.shedDeadline.Inc()
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(f.cfg.RetryAfter)))
	if f.draining.Load() {
		w.Header().Set("Connection", "close")
	}
	http.Error(w, reason, http.StatusServiceUnavailable)
}

func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// deadlineOf extracts the request's effective deadline: the context's
// if set (a front-door server timeout), else the client-declared
// DeadlineHeader budget measured from now. ok is false when the
// request carries no deadline at all.
func deadlineOf(r *http.Request) (time.Time, bool) {
	if dl, ok := r.Context().Deadline(); ok {
		return dl, true
	}
	if v := r.Header.Get(DeadlineHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return time.Now().Add(time.Duration(ms) * time.Millisecond), true
		}
	}
	return time.Time{}, false
}

// ServeHTTP dispatches one request: buffer the body, hash it, pick a
// backend, forward, and stream the response back. Transport failures
// eject the backend and retry the fully-buffered request on the next
// choice; only when every candidate has failed does the client see
// 502.
func (f *Frontdoor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a raw SOTB binary", http.StatusMethodNotAllowed)
		return
	}
	if f.draining.Load() {
		f.shed(w, "draining", false)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.inflight.Add(1)
	f.met.inflight.Set(float64(f.inflight.Load()))
	defer func() {
		f.met.inflight.Set(float64(f.inflight.Add(-1)))
	}()

	// Routing key: content bytes plus the raw query, so distinct salts
	// of one binary key like their distinct cache entries do.
	sum := contentDigest(body, r.URL.RawQuery)
	deadline, hasDeadline := deadlineOf(r)

	t0 := f.met.latNs.Start()
	tried := make(map[*backend]bool, len(f.bes))
	for {
		be, pickErr := f.pick(sum, tried)
		if pickErr != nil {
			if len(tried) > 0 && f.allTriedFailed(tried) {
				// Everything we reached died mid-request.
				f.met.errors.Inc()
				http.Error(w, "all backends failed", http.StatusBadGateway)
				return
			}
			f.shed(w, "fleet saturated", false)
			return
		}
		if hasDeadline {
			if est := be.latencyEstimate(); est > 0 && float64(time.Until(deadline).Nanoseconds()) < est {
				f.shed(w, "deadline cannot be met", true)
				return
			}
		}
		f.met.requests.Inc()
		ok := f.forward(w, r, be, body, t0)
		if ok {
			return
		}
		// Transport failure: be is ejected; retry the next candidate
		// with the same buffered body.
		tried[be] = true
		f.met.retries.Inc()
	}
}

// allTriedFailed reports whether every entry in tried was a transport
// failure (as opposed to an admission exclusion): used to distinguish
// 502 from 503 when pick runs out of candidates. Ejected backends are
// unhealthy; admission exclusions stay healthy.
func (f *Frontdoor) allTriedFailed(tried map[*backend]bool) bool {
	for be := range tried {
		if be.healthy.Load() {
			return false
		}
	}
	return true
}

// contentDigest hashes the routing key: the raw body, a separator, and
// the query string.
func contentDigest(body []byte, query string) [32]byte {
	h := sha256.New()
	h.Write(body)
	h.Write([]byte{0})
	io.WriteString(h, query)
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// forward proxies one attempt. Returns false on a transport error
// (after ejecting the backend); HTTP-level responses of any status are
// relayed to the client and count as success — the backend answered.
func (f *Frontdoor) forward(w http.ResponseWriter, r *http.Request, be *backend, body []byte, t0 time.Time) bool {
	be.inflight.Add(1)
	defer be.inflight.Add(-1)

	target := be.base + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		f.markFailed(be)
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if v := r.Header.Get(DeadlineHeader); v != "" {
		req.Header.Set(DeadlineHeader, v)
	}
	start := time.Now()
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		// The client's own cancellation is not the backend's failure:
		// don't eject, don't retry — the caller is gone.
		if r.Context().Err() != nil {
			http.Error(w, r.Context().Err().Error(), statusClientClosedRequest)
			return true
		}
		f.markFailed(be)
		return false
	}
	if resp.StatusCode == http.StatusOK {
		be.observeLatency(float64(time.Since(start).Nanoseconds()))
	}
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, copyErr := io.Copy(w, resp.Body)
	closeErr := resp.Body.Close()
	if copyErr == nil && closeErr == nil {
		f.met.latNs.Stop(t0)
	}
	return true
}

// statusClientClosedRequest is nginx's conventional status for a
// client that disconnected before the response was ready.
const statusClientClosedRequest = 499
