package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soteria/internal/obs"
)

// stubReplica fakes one `soteria -serve` process: /healthz gated by a
// flag, /analyze with a configurable service delay that reports which
// stub answered, and /metrics exposing a configurable
// batcher.queue_depth.
type stubReplica struct {
	name    string
	srv     *httptest.Server
	healthy atomic.Bool
	delayNs atomic.Int64
	depth   atomic.Int64
	served  atomic.Int64
	// version echoes in every /analyze answer, standing in for the
	// replica's active model version: a registry hot swap changes what
	// a replica answers, never whether it answers.
	version atomic.Int64
}

func newStub(t *testing.T, name string) *stubReplica {
	t.Helper()
	s := &stubReplica{name: name}
	s.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.healthy.Load() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		if d := s.delayNs.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(map[string]any{
			"stub":    s.name,
			"len":     len(body),
			"version": s.version.Load(),
		}); err != nil {
			t.Errorf("stub %s: encode response: %v", s.name, err)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"batcher.queue_depth": %d}`, s.depth.Load())
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func urls(stubs ...*stubReplica) []string {
	out := make([]string, len(stubs))
	for i, s := range stubs {
		out[i] = s.srv.URL
	}
	return out
}

// newDoor builds a Frontdoor over the stubs with fast probe cadence
// and registers cleanup.
func newDoor(t *testing.T, cfg Config, stubs ...*stubReplica) *Frontdoor {
	t.Helper()
	cfg.Backends = urls(stubs...)
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// post sends one body through the front door and returns the status,
// the serving stub's name ("" unless 200), and the Retry-After header.
func post(t *testing.T, door http.Handler, body []byte, hdr map[string]string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	door.ServeHTTP(rec, req)
	name := ""
	if rec.Code == http.StatusOK {
		var resp struct {
			Stub string `json:"stub"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad stub response %q: %v", rec.Body.String(), err)
		}
		name = resp.Stub
	}
	return rec.Code, name, rec.Result().Header.Get("Retry-After")
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends: want error")
	}
	if _, err := New(Config{Backends: []string{"ftp://nope"}}); err == nil {
		t.Fatal("New with non-http backend: want error")
	}
	if _, err := New(Config{Backends: []string{"http://"}}); err == nil {
		t.Fatal("New with hostless backend: want error")
	}
}

// TestAffinityRouting: at idle, repeats of one body all land on the
// rendezvous-preferred replica (cache affinity), while a spread of
// distinct bodies reaches more than one replica.
func TestAffinityRouting(t *testing.T) {
	a, b, c := newStub(t, "a"), newStub(t, "b"), newStub(t, "c")
	door := newDoor(t, Config{}, a, b, c)

	body := []byte("repeat-me")
	first := ""
	for i := 0; i < 10; i++ {
		code, name, _ := post(t, door, body, nil)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if first == "" {
			first = name
		} else if name != first {
			t.Fatalf("repeat body moved: %s then %s", first, name)
		}
	}

	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		_, name, _ := post(t, door, []byte(fmt.Sprintf("distinct-%d", i)), nil)
		seen[name] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 distinct bodies all routed to one replica: %v", seen)
	}
}

// TestRendezvousDeterminism: routing is a pure function of (backend
// set, content) — a fresh front door over the same replicas, listed in
// a different order, sends the same body to the same replica.
func TestRendezvousDeterminism(t *testing.T) {
	a, b, c := newStub(t, "a"), newStub(t, "b"), newStub(t, "c")
	body := []byte("pin-me")

	d1 := newDoor(t, Config{}, a, b, c)
	_, first, _ := post(t, d1, body, nil)

	d2 := newDoor(t, Config{}, c, a, b)
	_, second, _ := post(t, d2, body, nil)

	if first == "" || first != second {
		t.Fatalf("routing not deterministic: %q vs %q", first, second)
	}
}

// TestLeastLoadedOverflow: with zero affinity slack, concurrent
// repeats of one body spill past the busy preferred replica to its
// peers instead of queueing behind it.
func TestLeastLoadedOverflow(t *testing.T) {
	a, b := newStub(t, "a"), newStub(t, "b")
	door := newDoor(t, Config{AffinitySlack: -1}, a, b)

	body := []byte("hot-key")
	_, preferred, _ := post(t, door, body, nil)
	for _, s := range []*stubReplica{a, b} {
		if s.name == preferred {
			s.delayNs.Store(int64(200 * time.Millisecond))
		}
	}

	var wg sync.WaitGroup
	names := make(chan string, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, name, _ := post(t, door, body, nil)
			if code == http.StatusOK {
				names <- name
			}
		}()
	}
	wg.Wait()
	close(names)
	spilled := false
	for name := range names {
		if name != preferred {
			spilled = true
		}
	}
	if !spilled {
		t.Fatal("no request spilled off the busy preferred replica")
	}
}

// TestHealthEjectReadmit is the failover e2e: a replica starts failing
// /healthz mid-traffic and is ejected — traffic keeps flowing with no
// client-visible errors — then recovers and is readmitted.
func TestHealthEjectReadmit(t *testing.T) {
	a, b := newStub(t, "a"), newStub(t, "b")
	reg := obs.NewRegistry()
	door := newDoor(t, Config{Obs: reg, FailAfter: 2, ReadmitAfter: 2}, a, b)

	send := func(n int, tag string) {
		t.Helper()
		for i := 0; i < n; i++ {
			code, _, _ := post(t, door, []byte(fmt.Sprintf("%s-%d", tag, i)), nil)
			if code != http.StatusOK {
				t.Fatalf("%s request %d: status %d", tag, i, code)
			}
		}
	}

	send(16, "warm")
	if got := door.Healthy(); got != 2 {
		t.Fatalf("healthy before eject: got %d, want 2", got)
	}

	// Fail b's health check and wait for the prober to eject it.
	b.healthy.Store(false)
	waitFor(t, time.Second, func() bool { return door.Healthy() == 1 })

	ejectedServed := b.served.Load()
	send(16, "ejected") // zero errors while a replica is down
	if got := b.served.Load(); got != ejectedServed {
		t.Fatalf("ejected replica still served %d requests", got-ejectedServed)
	}

	// Recover and wait for readmission, then confirm traffic returns.
	b.healthy.Store(true)
	waitFor(t, time.Second, func() bool { return door.Healthy() == 2 })
	waitFor(t, time.Second, func() bool {
		send(4, "readmitted")
		return b.served.Load() > ejectedServed
	})
}

// TestTransportFailover: a replica that dies outright (connection
// refused) is ejected on first contact and the buffered request
// retries on a peer — the client never sees the failure.
func TestTransportFailover(t *testing.T) {
	a, b := newStub(t, "a"), newStub(t, "b")
	reg := obs.NewRegistry()
	door := newDoor(t, Config{Obs: reg}, a, b)

	b.srv.Close() // hard-kill one replica before any traffic

	for i := 0; i < 16; i++ {
		code, name, _ := post(t, door, []byte(fmt.Sprintf("kill-%d", i)), nil)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if name != "a" {
			t.Fatalf("request %d served by %q, want a", i, name)
		}
	}
	retries := reg.Counter("fleet.retries").Value()
	if retries == 0 {
		t.Fatal("no failover retries recorded despite a dead replica")
	}
	if door.Healthy() != 1 {
		t.Fatalf("dead replica not ejected: healthy=%d", door.Healthy())
	}
}

// TestAllBackendsDead: when every replica is unreachable the client
// gets 502, not a hang or a shed.
func TestAllBackendsDead(t *testing.T) {
	a := newStub(t, "a")
	door := newDoor(t, Config{}, a)
	a.srv.Close()

	code, _, _ := post(t, door, []byte("doomed"), nil)
	if code != http.StatusBadGateway {
		t.Fatalf("all-dead status: got %d, want 502", code)
	}
}

// TestOverloadShed: a saturated fleet rejects the excess with 503 +
// Retry-After instead of queueing it.
func TestOverloadShed(t *testing.T) {
	a := newStub(t, "a")
	a.delayNs.Store(int64(100 * time.Millisecond))
	reg := obs.NewRegistry()
	door := newDoor(t, Config{Obs: reg, MaxInflight: 1}, a)

	const n = 8
	codes := make(chan int, n)
	retryAfter := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, ra := post(t, door, []byte("overload"), nil)
			codes <- code
			retryAfter <- ra
		}()
	}
	wg.Wait()
	close(codes)
	close(retryAfter)

	served, shed := 0, 0
	for code := range codes {
		switch code {
		case http.StatusOK:
			served++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if served == 0 || shed == 0 {
		t.Fatalf("want a mix of served and shed: served=%d shed=%d", served, shed)
	}
	if got := reg.Counter("fleet.shed").Value(); got != uint64(shed) {
		t.Fatalf("fleet.shed=%d, want %d", got, shed)
	}
	sawRetryAfter := false
	for ra := range retryAfter {
		if ra != "" {
			sawRetryAfter = true
		}
	}
	if !sawRetryAfter {
		t.Fatal("no shed response carried Retry-After")
	}
}

// TestQueueDepthShed: a replica reporting a deep Batcher queue via
// /metrics is excluded from admission even though its health check
// passes.
func TestQueueDepthShed(t *testing.T) {
	a := newStub(t, "a")
	a.depth.Store(100000)
	door := newDoor(t, Config{QueueLimit: 10}, a)

	// Wait until the prober has observed the advertised depth.
	waitFor(t, time.Second, func() bool { return door.bes[0].depth.Load() > 10 })

	code, _, ra := post(t, door, []byte("queued-out"), nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("deep-queue status: got %d, want 503", code)
	}
	if ra == "" {
		t.Fatal("deep-queue shed missing Retry-After")
	}
}

// TestDeadlineShed: once the latency estimate says a request's
// declared budget cannot be met, it is shed up front.
func TestDeadlineShed(t *testing.T) {
	a := newStub(t, "a")
	a.delayNs.Store(int64(50 * time.Millisecond))
	reg := obs.NewRegistry()
	door := newDoor(t, Config{Obs: reg}, a)

	// Warm the latency estimate.
	for i := 0; i < 3; i++ {
		if code, _, _ := post(t, door, []byte("warm"), nil); code != http.StatusOK {
			t.Fatalf("warmup status %d", code)
		}
	}

	code, _, _ := post(t, door, []byte("rushed"), map[string]string{DeadlineHeader: "1"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("impossible-deadline status: got %d, want 503", code)
	}
	if got := reg.Counter("fleet.shed_deadline").Value(); got != 1 {
		t.Fatalf("fleet.shed_deadline=%d, want 1", got)
	}

	// A generous budget still gets served.
	code, _, _ = post(t, door, []byte("relaxed"), map[string]string{DeadlineHeader: "5000"})
	if code != http.StatusOK {
		t.Fatalf("generous-deadline status: got %d, want 200", code)
	}
}

// TestShutdownDrains: in-flight requests finish, new arrivals are shed
// with Connection: close, and Shutdown returns once the door is empty.
func TestShutdownDrains(t *testing.T) {
	a := newStub(t, "a")
	a.delayNs.Store(int64(150 * time.Millisecond))
	door := newDoor(t, Config{}, a)

	inflightCode := make(chan int, 1)
	go func() {
		code, _, _ := post(t, door, []byte("in-flight"), nil)
		inflightCode <- code
	}()
	waitFor(t, time.Second, func() bool { return door.Inflight() == 1 })

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- door.Shutdown(t.Context()) }()
	waitFor(t, time.Second, func() bool { return door.draining.Load() })

	req := httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader([]byte("late")))
	rec := httptest.NewRecorder()
	door.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status: got %d, want 503", rec.Code)
	}
	if rec.Result().Header.Get("Connection") != "close" {
		t.Fatal("drain shed missing Connection: close")
	}

	if code := <-inflightCode; code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200", code)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if door.Inflight() != 0 {
		t.Fatalf("inflight after drain: %d", door.Inflight())
	}
}

func TestMethodAndBodyLimits(t *testing.T) {
	a := newStub(t, "a")
	door := newDoor(t, Config{MaxBody: 8}, a)

	req := httptest.NewRequest(http.MethodGet, "/analyze", nil)
	rec := httptest.NewRecorder()
	door.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status: got %d, want 405", rec.Code)
	}

	code, _, _ := post(t, door, bytes.Repeat([]byte("x"), 64), nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize status: got %d, want 413", code)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestModelSwapInvisibleToFleet pins the fleet/registry contract: a
// replica hot-swapping its active model version (the response content
// changes mid-traffic, the replica never stops answering) causes no
// health ejections, no failed requests, and no change in content
// affinity — the front door routes on content and health, never on
// what model answered.
func TestModelSwapInvisibleToFleet(t *testing.T) {
	a, b := newStub(t, "a"), newStub(t, "b")
	reg := obs.NewRegistry()
	door := newDoor(t, Config{Obs: reg, FailAfter: 2}, a, b)

	body := []byte("affinity-pinned-sample")
	versions := map[int64]bool{}
	sendOne := func(i int) string {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		door.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d during model swap", i, rec.Code)
		}
		var resp struct {
			Stub    string `json:"stub"`
			Version int64  `json:"version"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		versions[resp.Version] = true
		return resp.Stub
	}

	owner := sendOne(0)
	for i := 1; i < 12; i++ {
		if got := sendOne(i); got != owner {
			t.Fatalf("request %d moved from %s to %s before swap", i, owner, got)
		}
	}

	// Swap both replicas' model versions mid-traffic, give the prober a
	// few cycles to (wrongly) react, and keep the traffic flowing.
	a.version.Store(2)
	b.version.Store(2)
	time.Sleep(80 * time.Millisecond) // several 20ms probe intervals
	for i := 12; i < 24; i++ {
		if got := sendOne(i); got != owner {
			t.Fatalf("request %d moved from %s to %s across swap: affinity must not track model version", i, owner, got)
		}
	}

	if !versions[1] && !versions[0] || !versions[2] {
		t.Fatalf("traffic did not span the swap: versions seen %v", versions)
	}
	if got := door.Healthy(); got != 2 {
		t.Fatalf("healthy = %d after swap, want 2 (no ejections)", got)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"fleet.shed", "fleet.errors", "fleet.retries"} {
		if got := snap[name].(uint64); got != 0 {
			t.Fatalf("%s = %d across a model swap, want 0", name, got)
		}
	}
}
