package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// probeLoop drives health-gated membership: every ProbeInterval it
// probes all backends concurrently and republishes the healthy-count
// gauge. It exits when ctx (the Frontdoor's lifetime, cancelled by
// Close) ends.
func (f *Frontdoor) probeLoop(ctx context.Context) {
	defer f.wg.Done()
	tick := time.NewTicker(f.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		f.probeAll(ctx)
	}
}

// probeAll runs one probe round. Backends probe concurrently so one
// hung replica cannot delay membership decisions for the rest; the
// round still completes within ProbeTimeout.
func (f *Frontdoor) probeAll(ctx context.Context) {
	done := make(chan struct{}, len(f.bes))
	for _, be := range f.bes {
		be := be
		go func() {
			f.probe(ctx, be)
			done <- struct{}{}
		}()
	}
	for range f.bes {
		<-done
	}
	f.met.healthy.Set(float64(f.Healthy()))
}

// probe runs one backend's health check and, when the backend is
// responsive and queue-depth shedding is enabled, refreshes its
// batcher.queue_depth reading from /metrics. consecFail/consecOK are
// prober-owned state: only this goroutine moves them.
func (f *Frontdoor) probe(ctx context.Context, be *backend) {
	pctx, cancel := context.WithTimeout(ctx, f.cfg.ProbeTimeout)
	defer cancel()
	if f.probeOnce(pctx, be) {
		be.consecFail = 0
		be.consecOK++
		if !be.healthy.Load() && be.consecOK >= f.cfg.ReadmitAfter {
			be.healthy.Store(true)
		}
		if f.cfg.QueueLimit >= 0 {
			f.probeDepth(pctx, be)
		}
	} else {
		be.consecOK = 0
		be.consecFail++
		if be.consecFail >= f.cfg.FailAfter {
			be.healthy.Store(false)
		}
	}
}

// probeOnce reports whether one GET /healthz round trip succeeded.
func (f *Frontdoor) probeOnce(ctx context.Context, be *backend) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.healthz, nil)
	if err != nil {
		return false
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	// Drain so the keep-alive connection is reusable.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// probeDepth refreshes the backend's last-known Batcher queue depth
// from its /metrics snapshot. Best-effort: on any error the previous
// reading stands — a stale depth only delays shedding by one probe
// interval, while zeroing it on a transient parse failure would admit
// traffic to a drowning replica.
func (f *Frontdoor) probeDepth(ctx context.Context, be *backend) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.base+"/metrics", nil)
	if err != nil {
		return
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); err != nil {
		return
	}
	raw, ok := snap["batcher.queue_depth"]
	if !ok {
		return
	}
	var depth float64
	if err := json.Unmarshal(raw, &depth); err != nil {
		return
	}
	be.depth.Store(int64(depth))
}
