// Package gea implements the Graph Embedding and Augmentation attack
// (Abusnaina et al., reproduced as the paper's threat model, section
// II-C): the adversary merges the code of an original sample with the
// code of a target sample — the class it wants the classifier to output
// — through a shared entry block and a shared exit block. Only the
// original branch ever executes, so the adversarial example remains a
// practical, working program, but its CFG (and therefore every
// CFG-derived feature) changes.
//
// The package also provides the binary-level (impractical) manipulations
// of section II: appending raw bytes or whole unreachable sections,
// which the paper's feature extractor is immune to by construction.
package gea

import (
	"fmt"

	"soteria/internal/disasm"
	"soteria/internal/isa"
)

// Merge grafts target into original per GEA: a new shared entry block
// branches to either program's entry (the condition always selects the
// original), every halt in both programs is rewired to a new shared
// exit block, and the two programs' blocks are relabeled to coexist.
// The result stays executable with the original's behaviour.
func Merge(original, target *isa.Program) (*isa.Program, error) {
	if err := original.Validate(); err != nil {
		return nil, fmt.Errorf("gea: original: %w", err)
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("gea: target: %w", err)
	}
	o := original.RelabelPrefix("o_")
	t := target.RelabelPrefix("t_")

	const exitLabel = "gea_exit"
	rewireHalts := func(p *isa.Program) {
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				if _, ok := b.Term.(isa.TermHalt); ok {
					b.Term = isa.TermJump{To: exitLabel}
				}
			}
		}
	}
	rewireHalts(o)
	rewireHalts(t)

	// Shared entry: r11 = 1; test r11,r11 -> zero flag false -> the JZ
	// branch to the embedded code never fires and control falls through
	// to the original entry (the next block in layout).
	entry := &isa.Block{
		Label: "gea_entry",
		Body: []isa.Inst{
			{Op: isa.OpMovI, R1: 11, Imm: 1},
			{Op: isa.OpTest, R1: 11, R2: 11},
		},
		Term: isa.TermCond{Op: isa.OpJz, To: t.Entry(), Else: o.Entry()},
	}
	exit := &isa.Block{Label: exitLabel, Term: isa.TermHalt{}}

	merged := &isa.Program{Funcs: make([]*isa.Function, 0, len(o.Funcs)+len(t.Funcs)+2)}
	merged.Funcs = append(merged.Funcs, &isa.Function{Name: "gea_main", Blocks: []*isa.Block{entry}})
	merged.Funcs = append(merged.Funcs, o.Funcs...)
	merged.Funcs = append(merged.Funcs, t.Funcs...)
	merged.Funcs = append(merged.Funcs, &isa.Function{Name: "gea_exit_fn", Blocks: []*isa.Block{exit}})
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("gea: merged program invalid: %w", err)
	}
	return merged, nil
}

// MergeToCFG merges, assembles, and disassembles in one step, returning
// the adversarial binary and its recovered CFG.
func MergeToCFG(original, target *isa.Program) (*isa.Binary, *disasm.CFG, error) {
	merged, err := Merge(original, target)
	if err != nil {
		return nil, nil, err
	}
	bin, _, err := isa.Assemble(merged, isa.AsmOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("gea: assemble: %w", err)
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		return nil, nil, fmt.Errorf("gea: disassemble: %w", err)
	}
	return bin, cfg, nil
}

// AppendSectionAE is the binary-level manipulation: clone the binary and
// add the donor's text as a new executable — but unreachable — section.
// The paper classifies this as an impractical AE for CFG-based systems:
// the disassembler never reaches the section, so features are unchanged.
func AppendSectionAE(bin *isa.Binary, donor *isa.Binary) *isa.Binary {
	out := cloneBinary(bin)
	if text := donor.Section(".text"); text != nil {
		out.AppendSection(".inj", isa.SecExec, text.Data)
	}
	return out
}

// AppendBytesAE clones the binary and appends the donor's text bytes to
// the end of the original text section, after its final halt.
func AppendBytesAE(bin *isa.Binary, donor *isa.Binary) *isa.Binary {
	out := cloneBinary(bin)
	text := out.Section(".text")
	dText := donor.Section(".text")
	if text != nil && dText != nil {
		text.Data = append(text.Data, dText.Data...)
	}
	return out
}

func cloneBinary(bin *isa.Binary) *isa.Binary {
	out := &isa.Binary{Entry: bin.Entry, Sections: make([]isa.Section, len(bin.Sections))}
	for i, s := range bin.Sections {
		out.Sections[i] = isa.Section{
			Name:  s.Name,
			Addr:  s.Addr,
			Flags: s.Flags,
			Data:  append([]byte(nil), s.Data...),
		}
	}
	return out
}
