package gea

import (
	"reflect"
	"testing"

	"soteria/internal/disasm"
	"soteria/internal/isa"
	"soteria/internal/labeling"
	"soteria/internal/malgen"
)

func samplePair(t *testing.T) (*malgen.Sample, *malgen.Sample) {
	t.Helper()
	g := malgen.NewGenerator(malgen.Config{Seed: 1})
	orig, err := g.SampleSized(malgen.Gafgyt, 30)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := g.SampleSized(malgen.Benign, 20)
	if err != nil {
		t.Fatal(err)
	}
	return orig, tgt
}

func TestMergeNodeCount(t *testing.T) {
	orig, tgt := samplePair(t)
	_, cfg, err := MergeToCFG(orig.Program, tgt.Program)
	if err != nil {
		t.Fatalf("MergeToCFG: %v", err)
	}
	// Shared entry + shared exit + both programs' blocks.
	want := orig.Nodes() + tgt.Nodes() + 2
	if got := cfg.NumNodes(); got != want {
		t.Fatalf("merged nodes = %d, want %d", got, want)
	}
}

func TestMergePreservesOriginalBehaviour(t *testing.T) {
	// The practicality requirement: the AE must execute the original
	// sample's behaviour (same syscall trace) and halt cleanly.
	orig, tgt := samplePair(t)
	merged, err := Merge(orig.Program, tgt.Program)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	mbin, _, err := isa.Assemble(merged, isa.AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	vmOrig := isa.NewVM(orig.Binary)
	if err := vmOrig.Run(500000); err != nil {
		t.Fatalf("original run: %v", err)
	}
	vmAE := isa.NewVM(mbin)
	if err := vmAE.Run(500000); err != nil {
		t.Fatalf("AE run: %v", err)
	}
	if !reflect.DeepEqual(vmOrig.Syscalls, vmAE.Syscalls) {
		t.Fatalf("AE changed behaviour: %d vs %d syscalls", len(vmOrig.Syscalls), len(vmAE.Syscalls))
	}
}

func TestMergeAllNodesReachable(t *testing.T) {
	// Both branches are reachable in the CFG (the embedded code is part
	// of the flow even though it never executes).
	orig, tgt := samplePair(t)
	_, cfg, err := MergeToCFG(orig.Program, tgt.Program)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range cfg.G.Reachable(cfg.EntryNode()) {
		if !r {
			t.Fatalf("merged CFG node %d unreachable", id)
		}
	}
}

func TestMergeReshufflesLabels(t *testing.T) {
	// The defense-relevant property: after grafting, the original
	// subgraph's labels change under both labelings.
	orig, tgt := samplePair(t)
	_, mergedCFG, err := MergeToCFG(orig.Program, tgt.Program)
	if err != nil {
		t.Fatal(err)
	}
	origDBL := labeling.DensityBased(orig.CFG.G, orig.CFG.EntryNode())
	mergedDBL := labeling.DensityBased(mergedCFG.G, mergedCFG.EntryNode())
	// Compare the label assigned to the original entry block: in the
	// original it is some label; in the merged graph the original entry
	// is no longer the graph entry and its label shifts.
	if origDBL.Perm[orig.CFG.EntryNode()] == mergedDBL.Perm[mergedCFG.EntryNode()] &&
		mergedCFG.NumNodes() == orig.CFG.NumNodes() {
		t.Fatal("merged graph labels did not change")
	}
	origLBL := labeling.LevelBased(orig.CFG.G, orig.CFG.EntryNode())
	mergedLBL := labeling.LevelBased(mergedCFG.G, mergedCFG.EntryNode())
	if mergedLBL.Perm[mergedCFG.EntryNode()] != 0 {
		t.Fatal("merged LBL entry must still be label 0")
	}
	_ = origLBL
}

func TestMergeInvalidPrograms(t *testing.T) {
	orig, _ := samplePair(t)
	if _, err := Merge(&isa.Program{}, orig.Program); err == nil {
		t.Fatal("empty original should error")
	}
	if _, err := Merge(orig.Program, &isa.Program{}); err == nil {
		t.Fatal("empty target should error")
	}
}

func TestAppendSectionAEKeepsCFG(t *testing.T) {
	orig, tgt := samplePair(t)
	ae := AppendSectionAE(orig.Binary, tgt.Binary)
	cfg, err := disasm.Disassemble(ae)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumNodes() != orig.Nodes() {
		t.Fatalf("appended section changed CFG: %d vs %d", cfg.NumNodes(), orig.Nodes())
	}
	// But the bytes did change (image-based classifiers would see it).
	a, _ := orig.Binary.Encode()
	b, _ := ae.Encode()
	if len(a) == len(b) {
		t.Fatal("AppendSectionAE did not grow the binary")
	}
	// Original binary untouched.
	if len(orig.Binary.Sections) != 2 {
		t.Fatalf("original binary mutated: %d sections", len(orig.Binary.Sections))
	}
}

func TestAppendBytesAEKeepsCFG(t *testing.T) {
	orig, tgt := samplePair(t)
	before := len(orig.Binary.Section(".text").Data)
	ae := AppendBytesAE(orig.Binary, tgt.Binary)
	cfg, err := disasm.Disassemble(ae)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumNodes() != orig.Nodes() {
		t.Fatalf("appended bytes changed CFG: %d vs %d", cfg.NumNodes(), orig.Nodes())
	}
	if len(orig.Binary.Section(".text").Data) != before {
		t.Fatal("original binary mutated")
	}
	if len(ae.Section(".text").Data) == before {
		t.Fatal("AE text did not grow")
	}
}

func TestSelectTargetsTableIII(t *testing.T) {
	g := malgen.NewGenerator(malgen.Config{Seed: 9})
	var pool []*malgen.Sample
	for _, c := range malgen.Classes {
		for _, n := range []int{15, 40, 90, 25, 60} {
			s, err := g.SampleSized(c, n)
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, s)
		}
	}
	targets := SelectTargets(pool)
	if len(targets) != 12 {
		t.Fatalf("targets = %d, want 12 (4 classes x 3 sizes)", len(targets))
	}
	for i := 0; i < len(targets); i += 3 {
		small, med, large := targets[i], targets[i+1], targets[i+2]
		if small.Size != malgen.Small || med.Size != malgen.Medium || large.Size != malgen.Large {
			t.Fatalf("size order wrong at %d", i)
		}
		if small.Sample.Nodes() != 15 || med.Sample.Nodes() != 40 || large.Sample.Nodes() != 90 {
			t.Fatalf("selected sizes = %d/%d/%d, want 15/40/90",
				small.Sample.Nodes(), med.Sample.Nodes(), large.Sample.Nodes())
		}
	}
}

func TestGenerateAEsSkipsTargetClass(t *testing.T) {
	g := malgen.NewGenerator(malgen.Config{Seed: 10})
	var tests []*malgen.Sample
	for _, c := range malgen.Classes {
		for i := 0; i < 3; i++ {
			s, err := g.SampleSized(c, 20)
			if err != nil {
				t.Fatal(err)
			}
			tests = append(tests, s)
		}
	}
	tgtSample, err := g.SampleSized(malgen.Benign, 12)
	if err != nil {
		t.Fatal(err)
	}
	target := Target{Class: malgen.Benign, Size: malgen.Small, Sample: tgtSample}
	aes, err := GenerateAEs(tests, target)
	if err != nil {
		t.Fatalf("GenerateAEs: %v", err)
	}
	if len(aes) != 9 { // 12 tests minus 3 benign
		t.Fatalf("AEs = %d, want 9", len(aes))
	}
	for _, ae := range aes {
		if ae.Original.Class == malgen.Benign {
			t.Fatal("AE generated from target-class sample")
		}
		if ae.CFG.NumNodes() != ae.Original.Nodes()+tgtSample.Nodes()+2 {
			t.Fatalf("AE node count wrong")
		}
	}
}
