package gea

import (
	"fmt"
	"math/rand"
	"sort"

	"soteria/internal/disasm"
	"soteria/internal/isa"
)

// SplitBlocks applies the paper's second code-level manipulation
// (section II: "augmenting or splitting functions results in a
// structure modification"): k basic blocks are each split into two
// blocks joined by an unconditional jump. Functionality is untouched —
// the same instructions execute in the same order — but the CFG gains k
// nodes and k edges, perturbing labels and walk features.
//
// This is the fine-grained perturbation the paper's limitations section
// anticipates: far subtler than a GEA graft, it lower-bounds the
// detector's sensitivity.
func SplitBlocks(p *isa.Program, k int, rng *rand.Rand) (*isa.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("gea: split: %w", err)
	}
	out := p.Clone()

	// Candidate blocks: body of at least 2 instructions, so the split
	// point separates real work.
	type candidate struct {
		f, b int
	}
	var candidates []candidate
	for fi, f := range out.Funcs {
		for bi, b := range f.Blocks {
			if len(b.Body) >= 2 {
				candidates = append(candidates, candidate{fi, bi})
			}
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("gea: split: no splittable blocks")
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	chosen := candidates[:k]
	// Apply deepest-first within each function so earlier insertions do
	// not shift later candidates' block indices.
	sort.Slice(chosen, func(i, j int) bool {
		if chosen[i].f != chosen[j].f {
			return chosen[i].f < chosen[j].f
		}
		return chosen[i].b > chosen[j].b
	})

	for n := 0; n < k; n++ {
		c := chosen[n]
		f := out.Funcs[c.f]
		b := f.Blocks[c.b]
		cut := 1 + rng.Intn(len(b.Body)-1)
		tail := &isa.Block{
			Label: fmt.Sprintf("%s_sp%d", b.Label, n),
			Body:  append([]isa.Inst(nil), b.Body[cut:]...),
			Term:  b.Term,
		}
		b.Body = b.Body[:cut]
		b.Term = isa.TermJump{To: tail.Label}
		// Insert the tail right after its head to keep layout tight.
		f.Blocks = append(f.Blocks, nil)
		copy(f.Blocks[c.b+2:], f.Blocks[c.b+1:])
		f.Blocks[c.b+1] = tail
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("gea: split produced invalid program: %w", err)
	}
	return out, nil
}

// SplitToCFG splits, assembles, and disassembles in one step.
func SplitToCFG(p *isa.Program, k int, rng *rand.Rand) (*isa.Binary, *disasm.CFG, error) {
	sp, err := SplitBlocks(p, k, rng)
	if err != nil {
		return nil, nil, err
	}
	bin, _, err := isa.Assemble(sp, isa.AsmOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("gea: split assemble: %w", err)
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		return nil, nil, fmt.Errorf("gea: split disassemble: %w", err)
	}
	return bin, cfg, nil
}
