package gea

import (
	"math/rand"
	"reflect"
	"testing"

	"soteria/internal/isa"
	"soteria/internal/malgen"
)

func TestSplitBlocksAddsNodes(t *testing.T) {
	orig, _ := samplePair(t)
	rng := rand.New(rand.NewSource(1))
	_, cfg, err := SplitToCFG(orig.Program, 5, rng)
	if err != nil {
		t.Fatalf("SplitToCFG: %v", err)
	}
	// Each split adds a tail block, plus possibly a jump trampoline when
	// the split block's terminator relied on fallthrough layout.
	if got := cfg.NumNodes(); got < orig.Nodes()+5 || got > orig.Nodes()+10 {
		t.Fatalf("split CFG nodes = %d, want in [%d, %d]", got, orig.Nodes()+5, orig.Nodes()+10)
	}
}

func TestSplitBlocksPreservesBehaviour(t *testing.T) {
	orig, _ := samplePair(t)
	rng := rand.New(rand.NewSource(2))
	bin, _, err := SplitToCFG(orig.Program, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	vmO := isa.NewVM(orig.Binary)
	if err := vmO.Run(500000); err != nil {
		t.Fatal(err)
	}
	vmS := isa.NewVM(bin)
	if err := vmS.Run(500000); err != nil {
		t.Fatalf("split binary run: %v", err)
	}
	if !reflect.DeepEqual(vmO.Syscalls, vmS.Syscalls) {
		t.Fatal("splitting changed behaviour")
	}
}

func TestSplitBlocksClampsK(t *testing.T) {
	g := malgen.NewGenerator(malgen.Config{Seed: 3})
	s, err := g.SampleSized(malgen.Benign, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sp, err := SplitBlocks(s.Program, 10000, rng)
	if err != nil {
		t.Fatalf("SplitBlocks: %v", err)
	}
	if sp.NumBlocks() <= s.Program.NumBlocks() {
		t.Fatal("expected some splits")
	}
}

func TestSplitBlocksDoesNotMutateInput(t *testing.T) {
	orig, _ := samplePair(t)
	before := orig.Program.NumBlocks()
	rng := rand.New(rand.NewSource(4))
	if _, err := SplitBlocks(orig.Program, 3, rng); err != nil {
		t.Fatal(err)
	}
	if orig.Program.NumBlocks() != before {
		t.Fatal("SplitBlocks mutated its input")
	}
}

func TestSplitBlocksNoCandidates(t *testing.T) {
	p := &isa.Program{Funcs: []*isa.Function{{
		Name:   "main",
		Blocks: []*isa.Block{{Label: "entry", Term: isa.TermHalt{}}},
	}}}
	if _, err := SplitBlocks(p, 1, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("expected error when nothing is splittable")
	}
}

func TestSplitBlocksInvalidProgram(t *testing.T) {
	if _, err := SplitBlocks(&isa.Program{}, 1, rand.New(rand.NewSource(6))); err == nil {
		t.Fatal("invalid program should error")
	}
}
