package gea

import (
	"fmt"
	"sort"

	"soteria/internal/disasm"
	"soteria/internal/isa"
	"soteria/internal/malgen"
)

// Target is one selected GEA graft donor: a sample of the class the
// adversary wants the classifier to output, in one of the paper's three
// size buckets (minimum, median, maximum node count of the class).
type Target struct {
	Class  malgen.Class
	Size   malgen.SizeClass
	Sample *malgen.Sample
}

// SelectTargets reproduces the paper's Table III selection: for each
// class present in the pool, pick the sample with the minimum, median,
// and maximum CFG node count.
func SelectTargets(pool []*malgen.Sample) []Target {
	byClass := make(map[malgen.Class][]*malgen.Sample)
	for _, s := range pool {
		byClass[s.Class] = append(byClass[s.Class], s)
	}
	var out []Target
	for _, c := range malgen.Classes {
		samples := byClass[c]
		if len(samples) == 0 {
			continue
		}
		sort.Slice(samples, func(i, j int) bool {
			if n1, n2 := samples[i].Nodes(), samples[j].Nodes(); n1 != n2 {
				return n1 < n2
			}
			return samples[i].ID < samples[j].ID
		})
		out = append(out,
			Target{Class: c, Size: malgen.Small, Sample: samples[0]},
			Target{Class: c, Size: malgen.Medium, Sample: samples[len(samples)/2]},
			Target{Class: c, Size: malgen.Large, Sample: samples[len(samples)-1]},
		)
	}
	return out
}

// AE is one generated adversarial example.
type AE struct {
	Original *malgen.Sample
	Target   Target
	Binary   *isa.Binary
	CFG      *disasm.CFG
}

// GenerateAEs applies GEA with the given target over every sample in
// tests whose class differs from the target class — the paper's AE
// corpus construction.
func GenerateAEs(tests []*malgen.Sample, target Target) ([]*AE, error) {
	out := make([]*AE, 0, len(tests))
	for _, s := range tests {
		if s.Class == target.Class {
			continue
		}
		bin, cfg, err := MergeToCFG(s.Program, target.Sample.Program)
		if err != nil {
			return nil, fmt.Errorf("gea: %s x %s: %w", s.ID, target.Sample.ID, err)
		}
		out = append(out, &AE{Original: s, Target: target, Binary: bin, CFG: cfg})
	}
	return out, nil
}
