package graph

// Control-flow analyses beyond plain traversal: strongly connected
// components (loop detection in CFGs) and dominator trees (structural
// analysis). These support corpus-generator validation and give
// downstream users the standard CFG toolbox.

// SCC returns the strongly connected components of the directed graph
// using Tarjan's algorithm (iterative, so deep graphs cannot overflow
// the stack). Components are returned in reverse topological order —
// every edge between components points from a later component to an
// earlier one — and each component's node list is ascending.
func (g *Graph) SCC() [][]int {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]int
		stack   []int
		counter int
	)

	type frame struct {
		v    int
		succ []int
		i    int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{v: root, succ: g.succsRef(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w, succ: g.succsRef(w)})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order: pop the frame, fold lowlink into the parent.
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := &work[len(work)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				// Ascending node order within the component.
				for i, j := 0, len(comp)-1; i < j; i, j = i+1, j-1 {
					comp[i], comp[j] = comp[j], comp[i]
				}
				insertionSort(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// NontrivialSCCs returns the components that contain a cycle: more than
// one node, or a single node with a self loop. In a CFG these are
// exactly the loops.
func (g *Graph) NontrivialSCCs() [][]int {
	var out [][]int
	for _, comp := range g.SCC() {
		if len(comp) > 1 || g.HasEdge(comp[0], comp[0]) {
			out = append(out, comp)
		}
	}
	return out
}

// Dominators returns the immediate-dominator of every node with respect
// to the entry, computed with the Cooper-Harvey-Kennedy iterative
// algorithm. idom[entry] == entry; unreachable nodes get -1.
func (g *Graph) Dominators(entry int) []int {
	n := g.NumNodes()
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if entry < 0 || entry >= n {
		return idom
	}

	// Reverse post-order of the reachable subgraph.
	order := g.postOrder(entry)
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	rpoIndex := make([]int, n)
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, v := range rpo {
		rpoIndex[v] = i
	}

	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == entry {
				continue
			}
			newIdom := -1
			for _, p := range g.predsRef(v) {
				if idom[p] == -1 {
					continue // predecessor not processed / unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom table returned
// by Dominators (a node dominates itself).
func Dominates(idom []int, a, b int) bool {
	if a < 0 || b < 0 || b >= len(idom) || idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if idom[b] == b { // reached entry
			return b == a
		}
		b = idom[b]
	}
}

// postOrder returns reachable nodes in DFS post-order from entry.
func (g *Graph) postOrder(entry int) []int {
	n := g.NumNodes()
	seen := make([]bool, n)
	order := make([]int, 0, n)
	type frame struct {
		v    int
		succ []int
		i    int
	}
	work := []frame{{v: entry, succ: g.succsRef(entry)}}
	seen[entry] = true
	for len(work) > 0 {
		f := &work[len(work)-1]
		if f.i < len(f.succ) {
			w := f.succ[f.i]
			f.i++
			if !seen[w] {
				seen[w] = true
				work = append(work, frame{v: w, succ: g.succsRef(w)})
			}
			continue
		}
		order = append(order, f.v)
		work = work[:len(work)-1]
	}
	return order
}

func insertionSort(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
