package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	comps := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	// Reverse topological: the sink {3} first, then the cycle.
	if !reflect.DeepEqual(comps[0], []int{3}) {
		t.Fatalf("first component = %v, want [3]", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []int{0, 1, 2}) {
		t.Fatalf("second component = %v, want [0 1 2]", comps[1])
	}
}

func TestSCCAcyclic(t *testing.T) {
	g := chain(5)
	comps := g.SCC()
	if len(comps) != 5 {
		t.Fatalf("acyclic graph should have singleton components: %v", comps)
	}
	if len(g.NontrivialSCCs()) != 0 {
		t.Fatal("acyclic graph has no nontrivial SCCs")
	}
}

func TestNontrivialSCCSelfLoop(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 0)
	g.MustAddEdge(0, 1)
	loops := g.NontrivialSCCs()
	if len(loops) != 1 || !reflect.DeepEqual(loops[0], []int{0}) {
		t.Fatalf("self loop not detected: %v", loops)
	}
}

func TestPropertySCCPartition(t *testing.T) {
	// Components partition the node set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(4*n))
		seen := make([]bool, n)
		count := 0
		for _, comp := range g.SCC() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				count++
			}
		}
		return count == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySCCMutualReachability(t *testing.T) {
	// Within a component every node reaches every other.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randomGraph(rng, n, rng.Intn(3*n))
		for _, comp := range g.SCC() {
			if len(comp) < 2 {
				continue
			}
			for _, u := range comp {
				reach := g.Reachable(u)
				for _, v := range comp {
					if !reach[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: idom(3) = 0.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	idom := g.Dominators(0)
	want := []int{0, 0, 0, 0}
	if !reflect.DeepEqual(idom, want) {
		t.Fatalf("idom = %v, want %v", idom, want)
	}
	if !Dominates(idom, 0, 3) || Dominates(idom, 1, 3) {
		t.Fatal("Dominates wrong on diamond")
	}
}

func TestDominatorsChainAndLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(2, 3)
	idom := g.Dominators(0)
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 2 {
		t.Fatalf("idom = %v", idom)
	}
	if !Dominates(idom, 1, 3) {
		t.Fatal("loop header should dominate exit")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	idom := g.Dominators(0)
	if idom[2] != -1 {
		t.Fatalf("unreachable idom = %d, want -1", idom[2])
	}
	if Dominates(idom, 0, 2) {
		t.Fatal("nothing dominates an unreachable node")
	}
	if got := g.Dominators(99); got[0] != -1 {
		t.Fatal("invalid entry should yield all -1")
	}
}

func TestPropertyEntryDominatesReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		idom := g.Dominators(0)
		reach := g.Reachable(0)
		for v := 0; v < n; v++ {
			if reach[v] != (idom[v] != -1) {
				return false // dominators defined exactly on reachable set
			}
			if reach[v] && !Dominates(idom, 0, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIdomIsDominator(t *testing.T) {
	// Removing a node's idom must disconnect it from the entry: check
	// via the definition — every path from entry to v passes through
	// idom(v). We verify the weaker property that idom(v) dominates v.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randomGraph(rng, n, rng.Intn(3*n))
		idom := g.Dominators(0)
		for v := 0; v < n; v++ {
			if v == 0 || idom[v] == -1 {
				continue
			}
			if !Dominates(idom, idom[v], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoopsInGeneratedCFGs(t *testing.T) {
	// The corpus generator's loop motif must register as a nontrivial
	// SCC containing the loop header.
	g := New(4)
	g.MustAddEdge(0, 1) // entry -> header
	g.MustAddEdge(1, 2) // header -> body
	g.MustAddEdge(2, 1) // back edge
	g.MustAddEdge(1, 3) // header -> exit
	loops := g.NontrivialSCCs()
	if len(loops) != 1 || !reflect.DeepEqual(loops[0], []int{1, 2}) {
		t.Fatalf("loops = %v, want [[1 2]]", loops)
	}
}
