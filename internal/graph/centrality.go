package graph

// Centrality measures follow the paper's definitions (section III-B.1,
// footnote 1):
//
//   - Betweenness B(v): the paper counts shortest paths through v over
//     the total number of shortest paths. We compute the standard Brandes
//     pair-dependency form, sum over pairs of sigma_st(v)/sigma_st,
//     normalized by the number of ordered pairs — a monotone equivalent
//     that preserves every ranking the labeling tie-breaks rely on.
//   - Closeness C(v): derived from the average shortest-path distance
//     between v and all other nodes; we use the standard inverse form
//     (n-1) / sum(dist), which is monotone in the paper's definition and
//     preserves every ranking the labeling needs.
//   - Centrality factor CF(v) = B(v) + C(v).
//
// Both measures are computed over the undirected view of the CFG, which
// matches the paper's random-walk treatment of the graph and keeps exit
// blocks comparable with entry blocks.

// Betweenness returns the betweenness centrality of every node via
// Brandes' algorithm on the undirected view, normalized by the number of
// ordered node pairs (n-1)(n-2) so values lie in [0, 1].
func (g *Graph) Betweenness() []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n < 3 {
		return bc
	}

	sigma := make([]float64, n)
	dist := make([]int, n)
	delta := make([]float64, n)
	preds := make([][]int, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		queue = queue[:0]

		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range g.UndirectedNeighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Accumulate dependencies in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range preds[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	// Undirected Brandes counts each unordered pair from both endpoints;
	// dividing by ordered-pair count (n-1)(n-2) bounds values to [0, 1].
	norm := float64(n-1) * float64(n-2)
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// Closeness returns the closeness centrality of every node over the
// undirected view: (reachable-1) / sum of distances to reachable nodes,
// scaled by the fraction of the graph reached (the Wasserman-Faust
// correction), so disconnected graphs remain comparable. Isolated nodes
// get 0.
func (g *Graph) Closeness() []float64 {
	n := g.NumNodes()
	cc := make([]float64, n)
	if n < 2 {
		return cc
	}
	for u := 0; u < n; u++ {
		sum, reach := 0, 0
		for v, d := range g.UndirectedDistances(u) {
			if v != u && d > 0 {
				sum += d
				reach++
			}
		}
		if sum == 0 {
			continue
		}
		frac := float64(reach) / float64(n-1)
		cc[u] = frac * float64(reach) / float64(sum)
	}
	return cc
}

// CentralityFactor returns CF(v) = B(v) + C(v) for every node.
func (g *Graph) CentralityFactor() []float64 {
	b := g.Betweenness()
	c := g.Closeness()
	cf := make([]float64, len(b))
	for i := range cf {
		cf[i] = b[i] + c[i]
	}
	return cf
}
