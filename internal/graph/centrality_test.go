package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBetweennessPath(t *testing.T) {
	// Undirected path 0-1-2: only node 1 lies between a pair.
	g := chain(3)
	bc := g.Betweenness()
	if !almostEqual(bc[0], 0) || !almostEqual(bc[2], 0) {
		t.Fatalf("endpoints should have 0 betweenness, got %v", bc)
	}
	// Pair (0,2) and (2,0) both route through 1: 2 dependencies over
	// (n-1)(n-2) = 2 ordered pairs -> 1.0.
	if !almostEqual(bc[1], 1.0) {
		t.Fatalf("bc[1] = %v, want 1.0", bc[1])
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with center 0 and leaves 1..4: all leaf pairs go through 0.
	g := New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v)
	}
	bc := g.Betweenness()
	if !almostEqual(bc[0], 1.0) {
		t.Fatalf("center betweenness = %v, want 1.0", bc[0])
	}
	for v := 1; v < 5; v++ {
		if !almostEqual(bc[v], 0) {
			t.Fatalf("leaf %d betweenness = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessTinyGraphs(t *testing.T) {
	for n := 0; n < 3; n++ {
		bc := New(n).Betweenness()
		for _, v := range bc {
			if v != 0 {
				t.Fatalf("n=%d: expected all-zero betweenness, got %v", n, bc)
			}
		}
	}
}

func TestClosenessPath(t *testing.T) {
	g := chain(3)
	cc := g.Closeness()
	// Node 1: distances 1,1 -> closeness = 1 * 2/2 = 1.
	if !almostEqual(cc[1], 1.0) {
		t.Fatalf("cc[1] = %v, want 1.0", cc[1])
	}
	// Node 0: distances 1,2 -> 2/3.
	if !almostEqual(cc[0], 2.0/3.0) {
		t.Fatalf("cc[0] = %v, want 2/3", cc[0])
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	// 2, 3 isolated: closeness 0; 0 and 1 reach 1 of 3 others.
	cc := g.Closeness()
	if !almostEqual(cc[2], 0) || !almostEqual(cc[3], 0) {
		t.Fatalf("isolated nodes closeness = %v, want 0", cc)
	}
	want := (1.0 / 3.0) * 1.0 / 1.0 // frac 1/3, reach/sum = 1/1
	if !almostEqual(cc[0], want) {
		t.Fatalf("cc[0] = %v, want %v", cc[0], want)
	}
}

func TestCentralityFactorSum(t *testing.T) {
	g := chain(4)
	b := g.Betweenness()
	c := g.Closeness()
	cf := g.CentralityFactor()
	for i := range cf {
		if !almostEqual(cf[i], b[i]+c[i]) {
			t.Fatalf("CF[%d] = %v, want %v", i, cf[i], b[i]+c[i])
		}
	}
}

func TestPropertyCentralityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		for _, v := range g.Betweenness() {
			if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
		}
		for _, v := range g.Closeness() {
			if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBetweennessDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := randomGraph(rng, n, rng.Intn(3*n))
		a := g.Betweenness()
		b := g.Betweenness()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBetweenness100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 100, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Betweenness()
	}
}
