package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT syntax. labels may be nil, in
// which case node IDs are used; otherwise labels[i] names node i.
func (g *Graph) DOT(name string, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for u := 0; u < g.NumNodes(); u++ {
		if labels != nil && u < len(labels) {
			fmt.Fprintf(&b, "  n%d [label=%q];\n", u, labels[u])
		} else {
			fmt.Fprintf(&b, "  n%d;\n", u)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
