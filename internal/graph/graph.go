// Package graph implements the directed-graph substrate used by every
// CFG-consuming stage of Soteria: adjacency storage, traversal,
// shortest paths, and the centrality measures that drive node labeling.
//
// Nodes are dense integer IDs in [0, N). Higher layers (the CFG built by
// the disassembler) keep their own mapping from basic-block addresses to
// these IDs. All adjacency lists are kept sorted so that every traversal
// and measure is deterministic.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a directed graph over dense node IDs [0, N).
// The zero value is an empty graph ready to use.
type Graph struct {
	succs [][]int
	preds [][]int
	edges int
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	g := &Graph{}
	g.EnsureNodes(n)
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.succs) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddNode appends a new isolated node and returns its ID.
func (g *Graph) AddNode() int {
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return len(g.succs) - 1
}

// EnsureNodes grows the graph so that it contains at least n nodes.
func (g *Graph) EnsureNodes(n int) {
	for len(g.succs) < n {
		g.AddNode()
	}
}

// AddEdge inserts the directed edge u -> v. Both endpoints must already
// exist. Inserting a duplicate edge is a no-op.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.checkNode(u); err != nil {
		return err
	}
	if err := g.checkNode(v); err != nil {
		return err
	}
	if g.hasEdge(u, v) {
		return nil
	}
	g.succs[u] = insertSorted(g.succs[u], v)
	g.preds[v] = insertSorted(g.preds[v], u)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge for construction sites where the endpoints are
// known-valid by construction; it panics on out-of-range nodes.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the directed edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.succs) || v < 0 || v >= len(g.succs) {
		return false
	}
	return g.hasEdge(u, v)
}

func (g *Graph) hasEdge(u, v int) bool {
	s := g.succs[u]
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// Succs returns a copy of u's successor list in ascending order.
func (g *Graph) Succs(u int) []int {
	return append([]int(nil), g.succs[u]...)
}

// Preds returns a copy of u's predecessor list in ascending order.
func (g *Graph) Preds(u int) []int {
	return append([]int(nil), g.preds[u]...)
}

// succsRef exposes the internal successor slice for read-only hot paths.
func (g *Graph) succsRef(u int) []int { return g.succs[u] }

// predsRef exposes the internal predecessor slice for read-only hot paths.
func (g *Graph) predsRef(u int) []int { return g.preds[u] }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u int) int { return len(g.succs[u]) }

// InDegree returns the number of in-edges of u.
func (g *Graph) InDegree(u int) int { return len(g.preds[u]) }

// Degree returns the total degree (in + out) of u.
func (g *Graph) Degree(u int) int { return len(g.succs[u]) + len(g.preds[u]) }

// NodeDensity returns the paper's node density: the sum of in- and
// out-edges of u divided by the total number of edges in the graph.
// It returns 0 for an edgeless graph.
func (g *Graph) NodeDensity(u int) float64 {
	if g.edges == 0 {
		return 0
	}
	return float64(g.Degree(u)) / float64(g.edges)
}

// GraphDensity returns the classical directed-graph density
// |E| / (|V|·(|V|-1)), or 0 for graphs with fewer than two nodes.
func (g *Graph) GraphDensity() float64 {
	n := len(g.succs)
	if n < 2 {
		return 0
	}
	return float64(g.edges) / float64(n*(n-1))
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		succs: make([][]int, len(g.succs)),
		preds: make([][]int, len(g.preds)),
		edges: g.edges,
	}
	for i := range g.succs {
		c.succs[i] = append([]int(nil), g.succs[i]...)
		c.preds[i] = append([]int(nil), g.preds[i]...)
	}
	return c
}

// Edges returns all directed edges ordered by (from, to).
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u, ss := range g.succs {
		for _, v := range ss {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// UndirectedNeighbors returns the sorted, de-duplicated union of u's
// successors and predecessors — the neighborhood used by random walks,
// which treat the CFG as undirected per the paper.
func (g *Graph) UndirectedNeighbors(u int) []int {
	return mergeSorted(g.succs[u], g.preds[u])
}

// AppendUndirectedNeighbors appends u's undirected neighbors (the same
// list UndirectedNeighbors returns) to dst and returns the extended
// slice. It allocates only when dst lacks capacity, which lets callers
// that query many nodes — e.g. the random-walk adjacency cache — reuse
// one arena instead of allocating per query.
func (g *Graph) AppendUndirectedNeighbors(dst []int, u int) []int {
	a, b := g.succs[u], g.preds[u]
	start := len(dst)
	push := func(v int) {
		if n := len(dst); n > start && dst[n-1] == v {
			return
		}
		dst = append(dst, v)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			push(a[i])
			i++
		case a[i] > b[j]:
			push(b[j])
			j++
		default:
			push(a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		push(a[i])
	}
	for ; j < len(b); j++ {
		push(b[j])
	}
	return dst
}

func (g *Graph) checkNode(u int) error {
	if u < 0 || u >= len(g.succs) {
		return fmt.Errorf("graph: node %d out of range [0, %d)", u, len(g.succs))
	}
	return nil
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// mergeSorted merges two ascending slices, dropping duplicates.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = appendUnique(out, a[i])
			i++
		case a[i] > b[j]:
			out = appendUnique(out, b[j])
			j++
		default:
			out = appendUnique(out, a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		out = appendUnique(out, a[i])
	}
	for ; j < len(b); j++ {
		out = appendUnique(out, b[j])
	}
	return out
}

func appendUnique(s []int, v int) []int {
	if n := len(s); n > 0 && s[n-1] == v {
		return s
	}
	return append(s, v)
}
