package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAddNode(t *testing.T) {
	g := New(3)
	if got := g.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	id := g.AddNode()
	if id != 3 {
		t.Fatalf("AddNode returned %d, want 3", id)
	}
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes after AddNode = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 0 {
		t.Fatalf("NumEdges = %d, want 0", got)
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero value not empty: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	g.EnsureNodes(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("edge 0->1 missing")
	}
}

func TestAddEdge(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		u, v    int
		wantErr bool
	}{
		{name: "valid", n: 2, u: 0, v: 1},
		{name: "self loop allowed", n: 1, u: 0, v: 0},
		{name: "u out of range", n: 2, u: 2, v: 0, wantErr: true},
		{name: "v out of range", n: 2, u: 0, v: 5, wantErr: true},
		{name: "negative u", n: 2, u: -1, v: 0, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := New(tt.n)
			err := g.AddEdge(tt.u, tt.v)
			if (err != nil) != tt.wantErr {
				t.Fatalf("AddEdge(%d,%d) err = %v, wantErr = %v", tt.u, tt.v, err, tt.wantErr)
			}
		})
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 1)
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
}

func TestSuccsPredsSortedAndCopied(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 0)

	succs := g.Succs(0)
	if want := []int{1, 2, 3}; !reflect.DeepEqual(succs, want) {
		t.Fatalf("Succs(0) = %v, want %v", succs, want)
	}
	// Mutating the returned slice must not affect the graph.
	succs[0] = 99
	if got := g.Succs(0)[0]; got != 1 {
		t.Fatalf("internal adjacency mutated: Succs(0)[0] = %d", got)
	}
	if want := []int{2}; !reflect.DeepEqual(g.Preds(0), want) {
		t.Fatalf("Preds(0) = %v, want %v", g.Preds(0), want)
	}
}

func TestDegreesAndDensity(t *testing.T) {
	// Diamond: 0->1, 0->2, 1->3, 2->3.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)

	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Errorf("InDegree(3) = %d, want 2", got)
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	if got, want := g.NodeDensity(0), 2.0/4.0; got != want {
		t.Errorf("NodeDensity(0) = %v, want %v", got, want)
	}
	if got, want := g.GraphDensity(), 4.0/12.0; got != want {
		t.Errorf("GraphDensity = %v, want %v", got, want)
	}
}

func TestNodeDensityEdgeless(t *testing.T) {
	g := New(3)
	if got := g.NodeDensity(0); got != 0 {
		t.Fatalf("NodeDensity on edgeless graph = %v, want 0", got)
	}
	if got := g.GraphDensity(); got != 0 {
		t.Fatalf("GraphDensity on edgeless graph = %v, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone missing original edge")
	}
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatalf("edge counts: orig %d want 1, clone %d want 2", g.NumEdges(), c.NumEdges())
	}
}

func TestEdgesOrdered(t *testing.T) {
	g := New(3)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 1)
	want := [][2]int{{0, 1}, {0, 2}, {2, 0}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestUndirectedNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(0, 2) // both directions: 2 must appear once
	want := []int{1, 2}
	if got := g.UndirectedNeighbors(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("UndirectedNeighbors(0) = %v, want %v", got, want)
	}
}

// randomGraph builds a random graph with n nodes and approximately m
// edge attempts, for property tests.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestPropertyEdgeCountMatchesAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(4*n))
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.OutDegree(u)
		}
		sumIn := 0
		for u := 0; u < n; u++ {
			sumIn += g.InDegree(u)
		}
		return sum == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNodeDensitySumsToTwo(t *testing.T) {
	// Sum over nodes of degree/|E| is exactly 2 when |E| > 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 1+rng.Intn(4*n))
		if g.NumEdges() == 0 {
			return true
		}
		sum := 0.0
		for u := 0; u < n; u++ {
			sum += g.NodeDensity(u)
		}
		return sum > 1.999999 && sum < 2.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	dot := g.DOT("g", []string{"entry", "exit"})
	for _, want := range []string{"digraph \"g\"", "n0 [label=\"entry\"]", "n0 -> n1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestAppendUndirectedNeighborsMatchesUndirectedNeighbors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
		// The arena form must reproduce every node's merged list, even
		// when lists from consecutive nodes share boundary values.
		var arena []int
		offsets := []int{0}
		for u := 0; u < n; u++ {
			arena = g.AppendUndirectedNeighbors(arena, u)
			offsets = append(offsets, len(arena))
		}
		for u := 0; u < n; u++ {
			want := g.UndirectedNeighbors(u)
			got := arena[offsets[u]:offsets[u+1]]
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
