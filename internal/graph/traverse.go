package graph

// BFSLevels returns, for every node, the smallest number of edges on a
// directed path from entry (level 0 for the entry itself). Unreachable
// nodes get level -1. This is the "level" of the paper's level-based
// labeling (the paper counts levels from 1; callers add the offset).
func (g *Graph) BFSLevels(entry int) []int {
	levels := make([]int, g.NumNodes())
	for i := range levels {
		levels[i] = -1
	}
	if entry < 0 || entry >= g.NumNodes() {
		return levels
	}
	levels[entry] = 0
	queue := []int{entry}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.succsRef(u) {
			if levels[v] == -1 {
				levels[v] = levels[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return levels
}

// Reachable returns the set of nodes reachable from entry along directed
// edges, as a boolean slice indexed by node ID. The entry itself is
// always reachable.
func (g *Graph) Reachable(entry int) []bool {
	seen := make([]bool, g.NumNodes())
	if entry < 0 || entry >= g.NumNodes() {
		return seen
	}
	seen[entry] = true
	stack := []int{entry}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succsRef(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// ShortestPathsFrom returns directed BFS distances from src to every node;
// unreachable nodes get -1.
func (g *Graph) ShortestPathsFrom(src int) []int {
	return g.bfsDist(src, g.succsRef)
}

// UndirectedDistances returns BFS distances over the undirected view of
// the graph; unreachable nodes get -1.
func (g *Graph) UndirectedDistances(src int) []int {
	return g.bfsDist(src, g.UndirectedNeighbors)
}

func (g *Graph) bfsDist(src int, adj func(int) []int) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.NumNodes() {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the longest shortest path over the undirected view,
// considering only connected pairs. An edgeless or single-node graph has
// diameter 0.
func (g *Graph) Diameter() int {
	d := 0
	for u := 0; u < g.NumNodes(); u++ {
		for _, x := range g.UndirectedDistances(u) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// AverageShortestPath returns the mean undirected shortest-path length
// over all connected ordered pairs (u, v), u != v. It returns 0 when no
// such pair exists.
func (g *Graph) AverageShortestPath() float64 {
	sum, cnt := 0, 0
	for u := 0; u < g.NumNodes(); u++ {
		for v, x := range g.UndirectedDistances(u) {
			if v != u && x > 0 {
				sum += x
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// ConnectedComponents returns the number of weakly connected components.
func (g *Graph) ConnectedComponents() int {
	seen := make([]bool, g.NumNodes())
	comps := 0
	for s := 0; s < g.NumNodes(); s++ {
		if seen[s] {
			continue
		}
		comps++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.UndirectedNeighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return comps
}
