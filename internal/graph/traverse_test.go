package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// chain builds 0 -> 1 -> 2 -> ... -> n-1.
func chain(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestBFSLevelsChain(t *testing.T) {
	g := chain(4)
	want := []int{0, 1, 2, 3}
	if got := g.BFSLevels(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("BFSLevels = %v, want %v", got, want)
	}
}

func TestBFSLevelsUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	want := []int{0, 1, -1}
	if got := g.BFSLevels(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("BFSLevels = %v, want %v", got, want)
	}
}

func TestBFSLevelsBadEntry(t *testing.T) {
	g := New(2)
	for _, l := range g.BFSLevels(7) {
		if l != -1 {
			t.Fatal("expected all -1 for invalid entry")
		}
	}
}

func TestBFSLevelsDiamond(t *testing.T) {
	// 0->1, 0->2, 1->3, 2->3: node 3 at level 2 despite two paths.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	want := []int{0, 1, 1, 2}
	if got := g.BFSLevels(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("BFSLevels = %v, want %v", got, want)
	}
}

func TestReachableIgnoresUnconnected(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4) // island
	reach := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	if !reflect.DeepEqual(reach, want) {
		t.Fatalf("Reachable = %v, want %v", reach, want)
	}
}

func TestReachableDirectionality(t *testing.T) {
	// Edge 1->0 must not make 1 reachable from 0.
	g := New(2)
	g.MustAddEdge(1, 0)
	reach := g.Reachable(0)
	if reach[1] {
		t.Fatal("node 1 should be unreachable following directed edges")
	}
}

func TestShortestPathsFrom(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	want := []int{0, 1, 1, -1}
	if got := g.ShortestPathsFrom(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("ShortestPathsFrom = %v, want %v", got, want)
	}
}

func TestUndirectedDistances(t *testing.T) {
	g := New(3)
	g.MustAddEdge(2, 0) // undirected: 0 can reach 2 in 1 step
	g.MustAddEdge(2, 1)
	want := []int{0, 2, 1}
	if got := g.UndirectedDistances(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("UndirectedDistances = %v, want %v", got, want)
	}
}

func TestDiameterAndAvgPath(t *testing.T) {
	g := chain(4) // undirected path of 4 nodes: diameter 3
	if got := g.Diameter(); got != 3 {
		t.Fatalf("Diameter = %d, want 3", got)
	}
	// Distances over ordered pairs: 1,2,3,1,1,2,2,1,1,3,2,1 sum=20, cnt=12.
	if got, want := g.AverageShortestPath(), 20.0/12.0; got != want {
		t.Fatalf("AverageShortestPath = %v, want %v", got, want)
	}
}

func TestDiameterTrivial(t *testing.T) {
	if got := New(1).Diameter(); got != 0 {
		t.Fatalf("Diameter single node = %d, want 0", got)
	}
	if got := New(0).AverageShortestPath(); got != 0 {
		t.Fatalf("AverageShortestPath empty = %v, want 0", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	// 4, 5 isolated.
	if got := g.ConnectedComponents(); got != 4 {
		t.Fatalf("ConnectedComponents = %d, want 4", got)
	}
}

func TestPropertyBFSLevelsMonotone(t *testing.T) {
	// Every reachable node's level is exactly 1 + min level of its
	// reachable predecessors (BFS optimality).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(4*n))
		levels := g.BFSLevels(0)
		for v := 1; v < n; v++ {
			if levels[v] == -1 {
				continue
			}
			best := -1
			for _, p := range g.Preds(v) {
				if levels[p] >= 0 && (best == -1 || levels[p] < best) {
					best = levels[p]
				}
			}
			if best == -1 || levels[v] != best+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReachableClosedUnderSuccs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(4*n))
		reach := g.Reachable(0)
		for u := 0; u < n; u++ {
			if !reach[u] {
				continue
			}
			for _, v := range g.Succs(u) {
				if !reach[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
