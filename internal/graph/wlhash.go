package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// WLHash computes a Weisfeiler-Leman structural fingerprint of the
// graph: nodes start with degree-based colors and repeatedly absorb
// sorted multisets of neighbor colors (distinguishing in- from
// out-neighbors); the final color histogram is hashed. Isomorphic
// graphs always collide; non-isomorphic graphs collide only when WL
// itself cannot distinguish them (rare outside pathological regular
// graphs).
//
// The corpus tooling uses this to deduplicate structurally identical
// samples, and tests use it to assert that transformations did (or did
// not) change a CFG.
func (g *Graph) WLHash(iterations int) [32]byte {
	n := g.NumNodes()
	colors := make([]uint64, n)
	for v := 0; v < n; v++ {
		colors[v] = uint64(g.InDegree(v))<<32 | uint64(g.OutDegree(v))
	}
	if iterations <= 0 {
		iterations = 3
	}
	next := make([]uint64, n)
	var buf []byte
	for it := 0; it < iterations; it++ {
		for v := 0; v < n; v++ {
			buf = buf[:0]
			buf = binary.BigEndian.AppendUint64(buf, colors[v])
			buf = appendSortedColors(buf, g.succsRef(v), colors, 'S')
			buf = appendSortedColors(buf, g.predsRef(v), colors, 'P')
			h := sha256.Sum256(buf)
			next[v] = binary.BigEndian.Uint64(h[:8])
		}
		colors, next = next, colors
	}
	// Hash the sorted final colors (a canonical multiset).
	final := append([]uint64(nil), colors...)
	sort.Slice(final, func(i, j int) bool { return final[i] < final[j] })
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint64(buf, uint64(n))
	buf = binary.BigEndian.AppendUint64(buf, uint64(g.NumEdges()))
	for _, c := range final {
		buf = binary.BigEndian.AppendUint64(buf, c)
	}
	return sha256.Sum256(buf)
}

func appendSortedColors(buf []byte, nodes []int, colors []uint64, tag byte) []byte {
	cs := make([]uint64, len(nodes))
	for i, v := range nodes {
		cs[i] = colors[v]
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	buf = append(buf, tag)
	for _, c := range cs {
		buf = binary.BigEndian.AppendUint64(buf, c)
	}
	return buf
}
