package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// permuteGraph relabels nodes by a random permutation (an isomorphic
// copy).
func permuteGraph(g *Graph, rng *rand.Rand) *Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	out := New(n)
	for _, e := range g.Edges() {
		out.MustAddEdge(perm[e[0]], perm[e[1]])
	}
	return out
}

func TestWLHashInvariantUnderIsomorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n))
		h1 := g.WLHash(3)
		h2 := permuteGraph(g, rng).WLHash(3)
		return h1 == h2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWLHashDistinguishesStructures(t *testing.T) {
	chain4 := chain(4)
	ring4 := ring4()
	if chain4.WLHash(3) == ring4.WLHash(3) {
		t.Fatal("chain and ring hashed equal")
	}
	// Adding one edge changes the hash.
	g := chain(5)
	h1 := g.WLHash(3)
	g.MustAddEdge(4, 0)
	if g.WLHash(3) == h1 {
		t.Fatal("edge insertion did not change hash")
	}
}

func ring4() *Graph {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, (i+1)%4)
	}
	return g
}

func TestWLHashDirectionSensitive(t *testing.T) {
	a := New(3)
	a.MustAddEdge(0, 1)
	a.MustAddEdge(1, 2)
	b := New(3)
	b.MustAddEdge(1, 0)
	b.MustAddEdge(1, 2)
	// a is a path 0->1->2; b is a fork 1->{0,2}: different digraphs.
	if a.WLHash(3) == b.WLHash(3) {
		t.Fatal("direction-distinct graphs hashed equal")
	}
}

func TestWLHashDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 30, 80)
	if g.WLHash(3) != g.WLHash(3) {
		t.Fatal("hash not deterministic")
	}
	if g.WLHash(0) != g.WLHash(0) { // default iterations path
		t.Fatal("default-iteration hash not deterministic")
	}
}

func TestWLHashEmptyAndSingle(t *testing.T) {
	if New(0).WLHash(3) == New(1).WLHash(3) {
		t.Fatal("empty and single-node graphs hashed equal")
	}
}
