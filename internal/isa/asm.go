package isa

import (
	"fmt"
	"sort"
)

// The assembler lowers a Program to an SOTB binary. Layout is fully
// deterministic: functions in order, blocks in order, every instruction
// 8 bytes. Terminators are emitted so that each program block keeps its
// identity in the recovered CFG:
//
//   - TermJump always emits an explicit JMP (no silent fallthrough), so
//     two program blocks never fuse into one disassembled block.
//   - TermCond emits JCC To; when Else is not the next block in layout a
//     JMP Else trampoline follows (which the disassembler sees as its own
//     tiny block, exactly as real compilers produce).
//   - TermCall emits CALL Target; the return continuation must either be
//     the next block in layout or is reached through a JMP trampoline.

// AsmOptions controls assembly.
type AsmOptions struct {
	// Base is the virtual address of the .text section. Zero means the
	// default 0x1000.
	Base uint32
	// Data, when non-empty, is emitted as a non-executable .data section
	// following .text.
	Data []byte
}

// DefaultBase is the default .text virtual address.
const DefaultBase uint32 = 0x1000

// Assemble lowers the program into an SOTB binary. It returns the binary
// and the virtual address of every block label.
func Assemble(p *Program, opts AsmOptions) (*Binary, map[string]uint32, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	base := opts.Base
	if base == 0 {
		base = DefaultBase
	}

	// Flatten blocks in layout order.
	type laid struct {
		b    *Block
		next string // label of the next block in layout, "" for last
	}
	var blocks []laid
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			blocks = append(blocks, laid{b: b})
		}
	}
	for i := range blocks {
		if i+1 < len(blocks) {
			blocks[i].next = blocks[i+1].b.Label
		}
	}

	// Pass 1: sizes and addresses.
	addr := make(map[string]uint32, len(blocks))
	pc := base
	for _, l := range blocks {
		addr[l.b.Label] = pc
		pc += uint32(len(l.b.Body)+termInsts(l.b.Term, l.next)) * InstSize
	}

	// Pass 2: emit.
	text := make([]byte, 0, int(pc-base))
	for _, l := range blocks {
		for _, in := range l.b.Body {
			text = in.Encode(text)
		}
		switch t := l.b.Term.(type) {
		case TermJump:
			text = Inst{Op: OpJmp, Imm: int32(addr[t.To])}.Encode(text)
		case TermCond:
			text = Inst{Op: t.Op, Imm: int32(addr[t.To])}.Encode(text)
			if t.Else != l.next {
				text = Inst{Op: OpJmp, Imm: int32(addr[t.Else])}.Encode(text)
			}
		case TermCall:
			text = Inst{Op: OpCall, Imm: int32(addr[t.Target])}.Encode(text)
			if t.Ret != l.next {
				text = Inst{Op: OpJmp, Imm: int32(addr[t.Ret])}.Encode(text)
			}
		case TermRet:
			text = Inst{Op: OpRet}.Encode(text)
		case TermHalt:
			text = Inst{Op: OpHalt}.Encode(text)
		default:
			return nil, nil, fmt.Errorf("isa: block %q: unknown terminator %T", l.b.Label, t)
		}
	}

	bin := &Binary{
		Entry: addr[p.Entry()],
		Sections: []Section{
			{Name: ".text", Addr: base, Flags: SecExec, Data: text},
		},
	}
	if len(opts.Data) > 0 {
		dataAddr := (base + uint32(len(text)) + 0xFFF) &^ 0xFFF
		bin.Sections = append(bin.Sections, Section{
			Name:  ".data",
			Addr:  dataAddr,
			Flags: SecWrite,
			Data:  append([]byte(nil), opts.Data...),
		})
	}
	return bin, addr, nil
}

// termInsts returns how many instructions the terminator emits given the
// label of the next block in layout.
func termInsts(t Terminator, next string) int {
	switch t := t.(type) {
	case TermJump, TermRet, TermHalt:
		return 1
	case TermCond:
		if t.Else == next {
			return 1
		}
		return 2
	case TermCall:
		if t.Ret == next {
			return 1
		}
		return 2
	default:
		return 1
	}
}

// BlockAddrs returns the sorted list of block start addresses from an
// Assemble address map, useful in tests.
func BlockAddrs(addr map[string]uint32) []uint32 {
	out := make([]uint32, 0, len(addr))
	for _, a := range addr {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
