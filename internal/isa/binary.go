package isa

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// The SOTB container is the on-disk format for SOT-32 executables — the
// stand-in for the ELF binaries of the paper's IoT dataset. It carries a
// list of named sections with virtual addresses and an entry point.
// Binary-level adversarial manipulations (appending bytes, adding
// sections with benign code) operate directly on this container.

// Section flags.
const (
	SecExec  uint8 = 1 << 0 // section contains executable code
	SecWrite uint8 = 1 << 1 // section is writable data
)

// Section is a named, contiguous range of bytes at a virtual address.
type Section struct {
	Name  string
	Addr  uint32
	Flags uint8
	Data  []byte
}

// Executable reports whether the section holds code.
func (s *Section) Executable() bool { return s.Flags&SecExec != 0 }

// Binary is a parsed SOTB executable.
type Binary struct {
	Entry    uint32
	Sections []Section
}

var (
	sotbMagic = []byte("SOTB")

	// ErrBadMagic is returned when the container does not start with the
	// SOTB magic.
	ErrBadMagic = errors.New("isa: bad SOTB magic")
)

const sotbVersion = 1

// Section returns the section with the given name, or nil.
func (b *Binary) Section(name string) *Section {
	for i := range b.Sections {
		if b.Sections[i].Name == name {
			return &b.Sections[i]
		}
	}
	return nil
}

// SectionAt returns the section containing the virtual address, or nil.
func (b *Binary) SectionAt(addr uint32) *Section {
	for i := range b.Sections {
		s := &b.Sections[i]
		if addr >= s.Addr && addr < s.Addr+uint32(len(s.Data)) {
			return s
		}
	}
	return nil
}

// MaxAddr returns the first virtual address beyond every section, used
// when appending new sections.
func (b *Binary) MaxAddr() uint32 {
	var m uint32
	for i := range b.Sections {
		if end := b.Sections[i].Addr + uint32(len(b.Sections[i].Data)); end > m {
			m = end
		}
	}
	return m
}

// AppendSection adds a section after every existing one and returns its
// assigned virtual address. Used by binary-level AE generation.
func (b *Binary) AppendSection(name string, flags uint8, data []byte) uint32 {
	addr := (b.MaxAddr() + 0xFFF) &^ 0xFFF // next page boundary
	b.Sections = append(b.Sections, Section{
		Name:  name,
		Addr:  addr,
		Flags: flags,
		Data:  append([]byte(nil), data...),
	})
	return addr
}

// Size returns the total encoded size estimate in bytes.
func (b *Binary) Size() int {
	n := len(sotbMagic) + 1 + 1 + 4
	for i := range b.Sections {
		n += 1 + len(b.Sections[i].Name) + 4 + 4 + 1 + 4 + len(b.Sections[i].Data)
	}
	return n
}

// Encode serializes the binary into SOTB container bytes.
func (b *Binary) Encode() ([]byte, error) {
	if len(b.Sections) > 255 {
		return nil, fmt.Errorf("isa: too many sections: %d", len(b.Sections))
	}
	var buf bytes.Buffer
	buf.Grow(b.Size())
	buf.Write(sotbMagic)
	buf.WriteByte(sotbVersion)
	buf.WriteByte(byte(len(b.Sections)))
	var u32 [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	put(b.Entry)
	for i := range b.Sections {
		s := &b.Sections[i]
		if len(s.Name) > 255 {
			return nil, fmt.Errorf("isa: section name too long: %q", s.Name[:16])
		}
		buf.WriteByte(byte(len(s.Name)))
		buf.WriteString(s.Name)
		put(s.Addr)
		put(uint32(len(s.Data)))
		buf.WriteByte(s.Flags)
		put(0) // reserved
		buf.Write(s.Data)
	}
	return buf.Bytes(), nil
}

// DecodeBinary parses an SOTB container.
func DecodeBinary(data []byte) (*Binary, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || !bytes.Equal(magic, sotbMagic) {
		return nil, ErrBadMagic
	}
	version, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("isa: truncated header: %w", err)
	}
	if version != sotbVersion {
		return nil, fmt.Errorf("isa: unsupported SOTB version %d", version)
	}
	nsec, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("isa: truncated header: %w", err)
	}
	var u32 [4]byte
	get := func() (uint32, error) {
		if _, err := r.Read(u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	entry, err := get()
	if err != nil {
		return nil, fmt.Errorf("isa: truncated entry: %w", err)
	}
	b := &Binary{Entry: entry, Sections: make([]Section, 0, nsec)}
	for i := 0; i < int(nsec); i++ {
		nameLen, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("isa: truncated section %d: %w", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := r.Read(name); err != nil {
			return nil, fmt.Errorf("isa: truncated section name %d: %w", i, err)
		}
		addr, err := get()
		if err != nil {
			return nil, fmt.Errorf("isa: truncated section addr %d: %w", i, err)
		}
		size, err := get()
		if err != nil {
			return nil, fmt.Errorf("isa: truncated section size %d: %w", i, err)
		}
		flags, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("isa: truncated section flags %d: %w", i, err)
		}
		if _, err := get(); err != nil { // reserved
			return nil, fmt.Errorf("isa: truncated section reserved %d: %w", i, err)
		}
		if int64(size) > int64(r.Len()) {
			return nil, fmt.Errorf("isa: section %d size %d exceeds remaining %d bytes", i, size, r.Len())
		}
		secData := make([]byte, size)
		if size > 0 {
			if _, err := r.Read(secData); err != nil {
				return nil, fmt.Errorf("isa: truncated section data %d: %w", i, err)
			}
		}
		b.Sections = append(b.Sections, Section{
			Name:  string(name),
			Addr:  addr,
			Flags: flags,
			Data:  secData,
		})
	}
	return b, nil
}
