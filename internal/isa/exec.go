package isa

import (
	"errors"
	"fmt"
)

// VM is a small SOT-32 interpreter. Soteria itself never executes
// samples (it is a static system), but the paper's practicality
// requirement — an adversarial example must remain executable and
// undamaged — is checked in this repository by actually running the
// original and perturbed binaries and comparing their behaviour.
type VM struct {
	bin   *Binary
	regs  [16]int64
	zero  bool
	less  bool
	stack []uint32
	mem   map[uint32]int64

	// Syscalls records the ordered (number, r0) pairs of every OpSys
	// executed — the observable behaviour of a run.
	Syscalls [][2]int64
	// Steps counts executed instructions.
	Steps int
}

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = errors.New("isa: step limit exceeded")

// NewVM prepares a VM for the binary.
func NewVM(bin *Binary) *VM {
	return &VM{bin: bin, mem: make(map[uint32]int64)}
}

// Run executes from the binary entry until OpHalt, an error, or the step
// limit. It returns nil on a clean halt.
func (vm *VM) Run(maxSteps int) error {
	pc := vm.bin.Entry
	for vm.Steps < maxSteps {
		sec := vm.bin.SectionAt(pc)
		if sec == nil || !sec.Executable() {
			return fmt.Errorf("isa: pc 0x%x outside executable sections", pc)
		}
		off := pc - sec.Addr
		in, err := Decode(sec.Data[off:])
		if err != nil {
			return fmt.Errorf("isa: at 0x%x: %w", pc, err)
		}
		vm.Steps++
		next := pc + InstSize
		switch in.Op {
		case OpNop:
		case OpMov:
			vm.regs[in.R1&15] = vm.regs[in.R2&15]
		case OpMovI:
			vm.regs[in.R1&15] = int64(in.Imm)
		case OpAdd:
			vm.regs[in.R1&15] += vm.regs[in.R2&15]
		case OpSub:
			vm.regs[in.R1&15] -= vm.regs[in.R2&15]
		case OpMul:
			vm.regs[in.R1&15] *= vm.regs[in.R2&15]
		case OpXor:
			vm.regs[in.R1&15] ^= vm.regs[in.R2&15]
		case OpAnd:
			vm.regs[in.R1&15] &= vm.regs[in.R2&15]
		case OpOr:
			vm.regs[in.R1&15] |= vm.regs[in.R2&15]
		case OpShl:
			vm.regs[in.R1&15] <<= uint(in.Imm) & 63
		case OpShr:
			vm.regs[in.R1&15] >>= uint(in.Imm) & 63
		case OpLoad:
			vm.regs[in.R1&15] = vm.mem[uint32(vm.regs[in.R2&15])+uint32(in.Imm)]
		case OpStore:
			vm.mem[uint32(vm.regs[in.R2&15])+uint32(in.Imm)] = vm.regs[in.R1&15]
		case OpCmp:
			a, b := vm.regs[in.R1&15], vm.regs[in.R2&15]
			vm.zero = a == b
			vm.less = a < b
		case OpTest:
			v := vm.regs[in.R1&15] & vm.regs[in.R2&15]
			vm.zero = v == 0
			vm.less = v < 0
		case OpJmp:
			next = uint32(in.Imm)
		case OpJz:
			if vm.zero {
				next = uint32(in.Imm)
			}
		case OpJnz:
			if !vm.zero {
				next = uint32(in.Imm)
			}
		case OpJlt:
			if vm.less {
				next = uint32(in.Imm)
			}
		case OpJge:
			if !vm.less {
				next = uint32(in.Imm)
			}
		case OpCall:
			vm.stack = append(vm.stack, next)
			next = uint32(in.Imm)
		case OpRet:
			if len(vm.stack) == 0 {
				return fmt.Errorf("isa: ret with empty call stack at 0x%x", pc)
			}
			next = vm.stack[len(vm.stack)-1]
			vm.stack = vm.stack[:len(vm.stack)-1]
		case OpSys:
			vm.Syscalls = append(vm.Syscalls, [2]int64{int64(in.Imm), vm.regs[0]})
		case OpHalt:
			return nil
		default:
			return fmt.Errorf("isa: unexecutable opcode %s at 0x%x", in.Op, pc)
		}
		pc = next
	}
	return ErrStepLimit
}
