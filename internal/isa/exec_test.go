package isa

import "testing"

// runProgram assembles and executes a single-block program body,
// returning the VM for inspection.
func runProgram(t *testing.T, body []Inst) *VM {
	t.Helper()
	p := &Program{Funcs: []*Function{{
		Name:   "main",
		Blocks: []*Block{{Label: "entry", Body: body, Term: TermHalt{}}},
	}}}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	vm := NewVM(bin)
	if err := vm.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return vm
}

func TestVMArithmetic(t *testing.T) {
	tests := []struct {
		name string
		body []Inst
		want int64 // expected r0 reported via syscall
	}{
		{"add", []Inst{
			{Op: OpMovI, R1: 0, Imm: 3}, {Op: OpMovI, R1: 1, Imm: 4},
			{Op: OpAdd, R1: 0, R2: 1}, {Op: OpSys, Imm: 1},
		}, 7},
		{"sub", []Inst{
			{Op: OpMovI, R1: 0, Imm: 10}, {Op: OpMovI, R1: 1, Imm: 4},
			{Op: OpSub, R1: 0, R2: 1}, {Op: OpSys, Imm: 1},
		}, 6},
		{"mul", []Inst{
			{Op: OpMovI, R1: 0, Imm: 6}, {Op: OpMovI, R1: 1, Imm: 7},
			{Op: OpMul, R1: 0, R2: 1}, {Op: OpSys, Imm: 1},
		}, 42},
		{"xor", []Inst{
			{Op: OpMovI, R1: 0, Imm: 0b1100}, {Op: OpMovI, R1: 1, Imm: 0b1010},
			{Op: OpXor, R1: 0, R2: 1}, {Op: OpSys, Imm: 1},
		}, 0b0110},
		{"and", []Inst{
			{Op: OpMovI, R1: 0, Imm: 0b1100}, {Op: OpMovI, R1: 1, Imm: 0b1010},
			{Op: OpAnd, R1: 0, R2: 1}, {Op: OpSys, Imm: 1},
		}, 0b1000},
		{"or", []Inst{
			{Op: OpMovI, R1: 0, Imm: 0b1100}, {Op: OpMovI, R1: 1, Imm: 0b1010},
			{Op: OpOr, R1: 0, R2: 1}, {Op: OpSys, Imm: 1},
		}, 0b1110},
		{"shl", []Inst{
			{Op: OpMovI, R1: 0, Imm: 3}, {Op: OpShl, R1: 0, Imm: 2}, {Op: OpSys, Imm: 1},
		}, 12},
		{"shr", []Inst{
			{Op: OpMovI, R1: 0, Imm: 12}, {Op: OpShr, R1: 0, Imm: 2}, {Op: OpSys, Imm: 1},
		}, 3},
		{"mov", []Inst{
			{Op: OpMovI, R1: 1, Imm: 99}, {Op: OpMov, R1: 0, R2: 1}, {Op: OpSys, Imm: 1},
		}, 99},
		{"nop", []Inst{
			{Op: OpMovI, R1: 0, Imm: 5}, {Op: OpNop}, {Op: OpSys, Imm: 1},
		}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			vm := runProgram(t, tt.body)
			if len(vm.Syscalls) != 1 || vm.Syscalls[0][1] != tt.want {
				t.Fatalf("r0 = %v, want %d", vm.Syscalls, tt.want)
			}
		})
	}
}

func TestVMLoadStore(t *testing.T) {
	vm := runProgram(t, []Inst{
		{Op: OpMovI, R1: 0, Imm: 77},
		{Op: OpMovI, R1: 2, Imm: 0x2000},    // base address
		{Op: OpStore, R1: 0, R2: 2, Imm: 8}, // mem[0x2008] = 77
		{Op: OpMovI, R1: 0, Imm: 0},         // clear
		{Op: OpLoad, R1: 0, R2: 2, Imm: 8},  // r0 = mem[0x2008]
		{Op: OpSys, Imm: 1},
	})
	if vm.Syscalls[0][1] != 77 {
		t.Fatalf("load/store round trip = %v", vm.Syscalls)
	}
}

func TestVMFlags(t *testing.T) {
	// cmp sets less/zero; verify via conditional jump behaviour in a
	// two-block program.
	p := &Program{Funcs: []*Function{{
		Name: "main",
		Blocks: []*Block{
			{
				Label: "entry",
				Body: []Inst{
					{Op: OpMovI, R1: 0, Imm: 1},
					{Op: OpMovI, R1: 1, Imm: 2},
					{Op: OpCmp, R1: 0, R2: 1}, // 1 < 2: less=true, zero=false
				},
				Term: TermCond{Op: OpJlt, To: "less", Else: "notless"},
			},
			{Label: "notless", Body: []Inst{{Op: OpSys, Imm: 0}}, Term: TermHalt{}},
			{Label: "less", Body: []Inst{{Op: OpSys, Imm: 1}}, Term: TermHalt{}},
		},
	}}}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(bin)
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(vm.Syscalls) != 1 || vm.Syscalls[0][0] != 1 {
		t.Fatalf("jlt took wrong branch: %v", vm.Syscalls)
	}
}

func TestVMRetWithoutCall(t *testing.T) {
	p := &Program{Funcs: []*Function{{
		Name:   "main",
		Blocks: []*Block{{Label: "entry", Term: TermRet{}}},
	}}}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := NewVM(bin).Run(10); err == nil {
		t.Fatal("ret with empty stack should error")
	}
}

func TestVMStepsCounted(t *testing.T) {
	vm := runProgram(t, []Inst{{Op: OpNop}, {Op: OpNop}})
	// 2 nops + halt = 3 steps.
	if vm.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", vm.Steps)
	}
}
