package isa

import (
	"fmt"
	"strings"
)

// FormatAsm renders a Program as assembly text that ParseAsm accepts,
// with explicit else/continuation labels so the round trip preserves
// block structure exactly.
func FormatAsm(p *Program) string {
	var b strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, ".func %s\n", f.Name)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Label)
			for _, in := range blk.Body {
				fmt.Fprintf(&b, "    %s\n", formatInst(in))
			}
			switch t := blk.Term.(type) {
			case TermJump:
				fmt.Fprintf(&b, "    jmp %s\n", t.To)
			case TermCond:
				fmt.Fprintf(&b, "    %s %s, %s\n", t.Op, t.To, t.Else)
			case TermCall:
				fmt.Fprintf(&b, "    call %s, %s\n", t.Target, t.Ret)
			case TermRet:
				b.WriteString("    ret\n")
			case TermHalt:
				b.WriteString("    halt\n")
			}
		}
	}
	return b.String()
}

func formatInst(in Inst) string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpMovI:
		return fmt.Sprintf("movi r%d, %d", in.R1, in.Imm)
	case OpShl, OpShr:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.R1, in.Imm)
	case OpLoad, OpStore:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.R1, in.R2, in.Imm)
	case OpSys:
		return fmt.Sprintf("sys %d", in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.R1, in.R2)
	}
}
