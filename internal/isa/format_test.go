package isa

import (
	"reflect"
	"testing"
)

func TestFormatAsmRoundTrip(t *testing.T) {
	p := twoBlockProgram()
	text := FormatAsm(p)
	parsed, err := ParseAsm(text)
	if err != nil {
		t.Fatalf("ParseAsm(FormatAsm(p)): %v\n%s", err, text)
	}
	b1, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Assemble(parsed, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1.Section(".text").Data, b2.Section(".text").Data) {
		t.Fatal("round trip changed assembled text section")
	}
}

func TestFormatAsmCoversEveryTerminator(t *testing.T) {
	p := &Program{Funcs: []*Function{
		{
			Name: "main",
			Blocks: []*Block{
				{Label: "entry", Body: []Inst{{Op: OpCmp, R1: 0, R2: 1}},
					Term: TermCond{Op: OpJz, To: "done", Else: "mid"}},
				{Label: "mid", Term: TermCall{Target: "fn", Ret: "done"}},
				{Label: "done", Term: TermHalt{}},
			},
		},
		{
			Name:   "f",
			Blocks: []*Block{{Label: "fn", Term: TermRet{}}},
		},
	}}
	parsed, err := ParseAsm(FormatAsm(p))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if parsed.NumBlocks() != p.NumBlocks() {
		t.Fatalf("block count changed: %d vs %d", parsed.NumBlocks(), p.NumBlocks())
	}
}

func TestFormatAsmCoversEveryInstruction(t *testing.T) {
	body := []Inst{
		{Op: OpNop},
		{Op: OpMov, R1: 1, R2: 2},
		{Op: OpMovI, R1: 3, Imm: -7},
		{Op: OpAdd, R1: 1, R2: 2},
		{Op: OpShl, R1: 1, Imm: 3},
		{Op: OpShr, R1: 1, Imm: 1},
		{Op: OpLoad, R1: 1, R2: 2, Imm: 16},
		{Op: OpStore, R1: 1, R2: 2, Imm: 16},
		{Op: OpTest, R1: 1, R2: 1},
		{Op: OpSys, Imm: 9},
	}
	p := &Program{Funcs: []*Function{{
		Name:   "main",
		Blocks: []*Block{{Label: "entry", Body: body, Term: TermHalt{}}},
	}}}
	parsed, err := ParseAsm(FormatAsm(p))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	got := parsed.Funcs[0].Blocks[0].Body
	if !reflect.DeepEqual(got, body) {
		t.Fatalf("instructions changed:\n got %v\nwant %v", got, body)
	}
}
