package isa

import "testing"

// FuzzDecodeBinary hardens the SOTB parser against malformed
// containers: arbitrary input must either decode into a structurally
// valid Binary or return an error — never panic or over-allocate.
func FuzzDecodeBinary(f *testing.F) {
	bin, _, err := Assemble(twoBlockProgram(), AsmOptions{Data: []byte("seed")})
	if err != nil {
		f.Fatal(err)
	}
	enc, err := bin.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte("SOTB"))
	f.Add([]byte{})
	f.Add(append([]byte("SOTB\x01\xff"), make([]byte, 64)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBinary(data)
		if err != nil {
			return
		}
		// A successful decode must round-trip consistently.
		re, err := b.Encode()
		if err != nil {
			t.Fatalf("decoded binary failed to encode: %v", err)
		}
		b2, err := DecodeBinary(re)
		if err != nil {
			t.Fatalf("re-encoded binary failed to decode: %v", err)
		}
		if len(b2.Sections) != len(b.Sections) || b2.Entry != b.Entry {
			t.Fatal("round trip changed structure")
		}
	})
}

// FuzzDecodeInst checks the instruction decoder never panics and only
// accepts defined opcodes.
func FuzzDecodeInst(f *testing.F) {
	f.Add([]byte{byte(OpJmp), 0, 0, 0, 1, 2, 3, 4})
	f.Add(make([]byte, InstSize))
	f.Add([]byte{1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return
		}
		if !in.Op.Valid() {
			t.Fatalf("decoder accepted invalid opcode %d", in.Op)
		}
		enc := in.Encode(nil)
		re, err := Decode(enc)
		if err != nil || re != in {
			t.Fatalf("round trip failed: %v vs %v (%v)", re, in, err)
		}
	})
}
