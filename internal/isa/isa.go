// Package isa defines SOT-32, the synthetic 32-bit instruction set this
// repository uses in place of the real IoT (ARM/MIPS) binaries the paper
// analyzed with radare2. The ISA is deliberately small but carries the
// properties Soteria's pipeline depends on: fixed-width encodable
// instructions, direct and conditional branches, calls, returns, and a
// section-based binary container in which unreachable code can be planted
// (the binary-level adversarial manipulations of section II).
//
// Every instruction encodes to exactly 8 bytes:
//
//	byte 0   opcode
//	byte 1   first register operand
//	byte 2   second register operand
//	byte 3   reserved flags (zero)
//	byte 4-7 32-bit little-endian immediate
package isa

import (
	"encoding/binary"
	"fmt"
)

// Opcode enumerates SOT-32 operations. The zero value is invalid so that
// zero-filled padding never decodes as a meaningful instruction.
type Opcode uint8

// SOT-32 opcodes.
const (
	OpInvalid Opcode = iota
	OpNop
	OpMov   // r1 <- r2
	OpMovI  // r1 <- imm
	OpAdd   // r1 <- r1 + r2
	OpSub   // r1 <- r1 - r2
	OpMul   // r1 <- r1 * r2
	OpXor   // r1 <- r1 ^ r2
	OpAnd   // r1 <- r1 & r2
	OpOr    // r1 <- r1 | r2
	OpShl   // r1 <- r1 << imm
	OpShr   // r1 <- r1 >> imm
	OpLoad  // r1 <- mem[r2 + imm]
	OpStore // mem[r2 + imm] <- r1
	OpCmp   // flags <- compare(r1, r2)
	OpTest  // flags <- r1 & r2
	OpJmp   // pc <- imm
	OpJz    // if zero flag: pc <- imm
	OpJnz   // if !zero flag: pc <- imm
	OpJlt   // if less flag: pc <- imm
	OpJge   // if !less flag: pc <- imm
	OpCall  // push pc; pc <- imm
	OpRet   // pc <- pop
	OpSys   // system call #imm
	OpHalt  // stop

	opMax // sentinel, keep last
)

var opNames = map[Opcode]string{
	OpInvalid: "invalid",
	OpNop:     "nop",
	OpMov:     "mov",
	OpMovI:    "movi",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpXor:     "xor",
	OpAnd:     "and",
	OpOr:      "or",
	OpShl:     "shl",
	OpShr:     "shr",
	OpLoad:    "load",
	OpStore:   "store",
	OpCmp:     "cmp",
	OpTest:    "test",
	OpJmp:     "jmp",
	OpJz:      "jz",
	OpJnz:     "jnz",
	OpJlt:     "jlt",
	OpJge:     "jge",
	OpCall:    "call",
	OpRet:     "ret",
	OpSys:     "sys",
	OpHalt:    "halt",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether the opcode is a defined SOT-32 operation
// (excluding OpInvalid).
func (op Opcode) Valid() bool { return op > OpInvalid && op < opMax }

// IsBranch reports whether the opcode is a direct or conditional jump.
func (op Opcode) IsBranch() bool {
	switch op {
	case OpJmp, OpJz, OpJnz, OpJlt, OpJge:
		return true
	}
	return false
}

// IsConditional reports whether the opcode is a conditional jump.
func (op Opcode) IsConditional() bool {
	switch op {
	case OpJz, OpJnz, OpJlt, OpJge:
		return true
	}
	return false
}

// Terminates reports whether the opcode ends a basic block: any branch,
// call, return, or halt. Calls terminate blocks because the CFG models
// the call edge and the fall-through return edge explicitly.
func (op Opcode) Terminates() bool {
	return op.IsBranch() || op == OpCall || op == OpRet || op == OpHalt
}

// InstSize is the fixed encoded size of every SOT-32 instruction.
const InstSize = 8

// Inst is a single SOT-32 instruction.
type Inst struct {
	Op  Opcode
	R1  uint8
	R2  uint8
	Imm int32
}

// String renders the instruction in assembly-like form.
func (in Inst) String() string {
	switch {
	case in.Op.IsBranch() || in.Op == OpCall:
		return fmt.Sprintf("%s 0x%x", in.Op, uint32(in.Imm))
	case in.Op == OpRet || in.Op == OpHalt || in.Op == OpNop:
		return in.Op.String()
	case in.Op == OpSys:
		return fmt.Sprintf("sys %d", in.Imm)
	case in.Op == OpMovI:
		return fmt.Sprintf("movi r%d, %d", in.R1, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.R1, in.R2)
	}
}

// Encode appends the 8-byte encoding of the instruction to dst.
func (in Inst) Encode(dst []byte) []byte {
	var buf [InstSize]byte
	buf[0] = byte(in.Op)
	buf[1] = in.R1
	buf[2] = in.R2
	buf[3] = 0
	binary.LittleEndian.PutUint32(buf[4:], uint32(in.Imm))
	return append(dst, buf[:]...)
}

// Decode parses one instruction from the front of src. It returns an
// error if src holds fewer than InstSize bytes or the opcode is invalid.
func Decode(src []byte) (Inst, error) {
	if len(src) < InstSize {
		return Inst{}, fmt.Errorf("isa: short instruction: %d bytes", len(src))
	}
	in := Inst{
		Op:  Opcode(src[0]),
		R1:  src[1],
		R2:  src[2],
		Imm: int32(binary.LittleEndian.Uint32(src[4:8])),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode 0x%02x", src[0])
	}
	return in, nil
}
