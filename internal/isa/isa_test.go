package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeString(t *testing.T) {
	if got := OpJmp.String(); got != "jmp" {
		t.Fatalf("OpJmp.String() = %q", got)
	}
	if got := Opcode(200).String(); got != "op(200)" {
		t.Fatalf("unknown opcode string = %q", got)
	}
}

func TestOpcodePredicates(t *testing.T) {
	tests := []struct {
		op          Opcode
		branch      bool
		conditional bool
		terminates  bool
	}{
		{OpJmp, true, false, true},
		{OpJz, true, true, true},
		{OpJnz, true, true, true},
		{OpJlt, true, true, true},
		{OpJge, true, true, true},
		{OpCall, false, false, true},
		{OpRet, false, false, true},
		{OpHalt, false, false, true},
		{OpAdd, false, false, false},
		{OpSys, false, false, false},
		{OpNop, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsBranch(); got != tt.branch {
			t.Errorf("%s.IsBranch() = %v, want %v", tt.op, got, tt.branch)
		}
		if got := tt.op.IsConditional(); got != tt.conditional {
			t.Errorf("%s.IsConditional() = %v, want %v", tt.op, got, tt.conditional)
		}
		if got := tt.op.Terminates(); got != tt.terminates {
			t.Errorf("%s.Terminates() = %v, want %v", tt.op, got, tt.terminates)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, r1, r2 uint8, imm int32) bool {
		in := Inst{Op: Opcode(op%uint8(opMax-1)) + 1, R1: r1, R2: r2, Imm: imm}
		enc := in.Encode(nil)
		if len(enc) != InstSize {
			return false
		}
		dec, err := Decode(enc)
		return err == nil && dec == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short input should error")
	}
	if _, err := Decode(make([]byte, InstSize)); err == nil {
		t.Fatal("zero opcode should error")
	}
	bad := Inst{Op: opMax, Imm: 1}.Encode(nil)
	if _, err := Decode(bad); err == nil {
		t.Fatal("out-of-range opcode should error")
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpJmp, Imm: 0x1000}, "jmp 0x1000"},
		{Inst{Op: OpRet}, "ret"},
		{Inst{Op: OpSys, Imm: 7}, "sys 7"},
		{Inst{Op: OpMovI, R1: 3, Imm: -2}, "movi r3, -2"},
		{Inst{Op: OpAdd, R1: 1, R2: 2}, "add r1, r2"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// twoBlockProgram builds: entry (cmp, jz exit else loop), loop (jmp entry),
// exit (halt) — a small loop with a conditional escape.
func twoBlockProgram() *Program {
	return &Program{Funcs: []*Function{{
		Name: "main",
		Blocks: []*Block{
			{
				Label: "entry",
				Body:  []Inst{{Op: OpMovI, R1: 0, Imm: 0}, {Op: OpCmp, R1: 0, R2: 0}},
				Term:  TermCond{Op: OpJz, To: "exit", Else: "loop"},
			},
			{
				Label: "loop",
				Body:  []Inst{{Op: OpAdd, R1: 0, R2: 1}},
				Term:  TermJump{To: "entry"},
			},
			{
				Label: "exit",
				Term:  TermHalt{},
			},
		},
	}}}
}

func TestProgramValidateOK(t *testing.T) {
	if err := twoBlockProgram().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestProgramValidateErrors(t *testing.T) {
	mk := func(mutate func(*Program)) *Program {
		p := twoBlockProgram()
		mutate(p)
		return p
	}
	tests := []struct {
		name string
		p    *Program
	}{
		{"empty", &Program{}},
		{"empty function", &Program{Funcs: []*Function{{Name: "f"}}}},
		{"duplicate label", mk(func(p *Program) { p.Funcs[0].Blocks[1].Label = "entry" })},
		{"unlabeled block", mk(func(p *Program) { p.Funcs[0].Blocks[1].Label = "" })},
		{"missing terminator", mk(func(p *Program) { p.Funcs[0].Blocks[2].Term = nil })},
		{"unknown target", mk(func(p *Program) { p.Funcs[0].Blocks[1].Term = TermJump{To: "nowhere"} })},
		{"cf opcode in body", mk(func(p *Program) {
			p.Funcs[0].Blocks[0].Body = append(p.Funcs[0].Blocks[0].Body, Inst{Op: OpJmp})
		})},
		{"invalid opcode in body", mk(func(p *Program) {
			p.Funcs[0].Blocks[0].Body = append(p.Funcs[0].Blocks[0].Body, Inst{Op: OpInvalid})
		})},
		{"non-conditional cond op", mk(func(p *Program) {
			p.Funcs[0].Blocks[0].Term = TermCond{Op: OpJmp, To: "exit", Else: "loop"}
		})},
		{"bad call target", mk(func(p *Program) {
			p.Funcs[0].Blocks[0].Term = TermCall{Target: "ghost", Ret: "exit"}
		})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestProgramCloneIndependent(t *testing.T) {
	p := twoBlockProgram()
	c := p.Clone()
	c.Funcs[0].Blocks[0].Label = "mutated"
	c.Funcs[0].Blocks[0].Body[0].Imm = 99
	if p.Funcs[0].Blocks[0].Label != "entry" {
		t.Fatal("clone shares labels with original")
	}
	if p.Funcs[0].Blocks[0].Body[0].Imm != 0 {
		t.Fatal("clone shares body slices with original")
	}
}

func TestRelabelPrefix(t *testing.T) {
	p := twoBlockProgram().RelabelPrefix("x_")
	if err := p.Validate(); err != nil {
		t.Fatalf("relabeled program invalid: %v", err)
	}
	if got := p.Entry(); got != "x_entry" {
		t.Fatalf("Entry = %q, want x_entry", got)
	}
	term, ok := p.Funcs[0].Blocks[0].Term.(TermCond)
	if !ok || term.To != "x_exit" || term.Else != "x_loop" {
		t.Fatalf("terminator not relabeled: %+v", p.Funcs[0].Blocks[0].Term)
	}
}

func TestNumBlocksAndBlock(t *testing.T) {
	p := twoBlockProgram()
	if got := p.NumBlocks(); got != 3 {
		t.Fatalf("NumBlocks = %d, want 3", got)
	}
	if b := p.Block("loop"); b == nil || b.Label != "loop" {
		t.Fatalf("Block(loop) = %+v", b)
	}
	if b := p.Block("ghost"); b != nil {
		t.Fatal("Block(ghost) should be nil")
	}
}

func TestAssembleLayout(t *testing.T) {
	p := twoBlockProgram()
	bin, addr, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if bin.Entry != DefaultBase {
		t.Fatalf("Entry = 0x%x, want 0x%x", bin.Entry, DefaultBase)
	}
	// entry: 2 body + 1 cond (else==next) = 3 insts; loop: 1 + 1 = 2;
	// exit: 1.
	if want := DefaultBase + 3*InstSize; addr["loop"] != want {
		t.Fatalf("loop addr = 0x%x, want 0x%x", addr["loop"], want)
	}
	if want := DefaultBase + 5*InstSize; addr["exit"] != want {
		t.Fatalf("exit addr = 0x%x, want 0x%x", addr["exit"], want)
	}
	text := bin.Section(".text")
	if text == nil || !text.Executable() {
		t.Fatal("missing executable .text section")
	}
	if got, want := len(text.Data), 6*InstSize; got != want {
		t.Fatalf("text size = %d, want %d", got, want)
	}
}

func TestAssembleTrampoline(t *testing.T) {
	// Else target not next in layout forces a JMP trampoline.
	p := &Program{Funcs: []*Function{{
		Name: "main",
		Blocks: []*Block{
			{Label: "a", Term: TermCond{Op: OpJnz, To: "b", Else: "c"}},
			{Label: "b", Term: TermHalt{}},
			{Label: "c", Term: TermHalt{}},
		},
	}}}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	// a: jnz + jmp = 2 insts, b: 1, c: 1.
	if got, want := len(bin.Section(".text").Data), 4*InstSize; got != want {
		t.Fatalf("text size = %d, want %d", got, want)
	}
}

func TestAssembleWithData(t *testing.T) {
	bin, _, err := Assemble(twoBlockProgram(), AsmOptions{Data: []byte("config")})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	data := bin.Section(".data")
	if data == nil || data.Executable() || string(data.Data) != "config" {
		t.Fatalf("bad .data section: %+v", data)
	}
	if data.Addr%0x1000 != 0 {
		t.Fatalf(".data not page aligned: 0x%x", data.Addr)
	}
}

func TestBinaryEncodeDecodeRoundTrip(t *testing.T) {
	bin, _, err := Assemble(twoBlockProgram(), AsmOptions{Data: []byte{1, 2, 3}})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	enc, err := bin.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := DecodeBinary(enc)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if dec.Entry != bin.Entry || len(dec.Sections) != len(bin.Sections) {
		t.Fatalf("round trip mismatch: %+v vs %+v", dec, bin)
	}
	for i := range bin.Sections {
		a, b := bin.Sections[i], dec.Sections[i]
		if a.Name != b.Name || a.Addr != b.Addr || a.Flags != b.Flags || string(a.Data) != string(b.Data) {
			t.Fatalf("section %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	if _, err := DecodeBinary([]byte("ELF!")); err == nil {
		t.Fatal("bad magic should error")
	}
	bin, _, _ := Assemble(twoBlockProgram(), AsmOptions{})
	enc, _ := bin.Encode()
	if _, err := DecodeBinary(enc[:8]); err == nil {
		t.Fatal("truncated container should error")
	}
	// Corrupt version byte.
	bad := append([]byte(nil), enc...)
	bad[4] = 99
	if _, err := DecodeBinary(bad); err == nil {
		t.Fatal("bad version should error")
	}
}

func TestAppendSection(t *testing.T) {
	bin, _, _ := Assemble(twoBlockProgram(), AsmOptions{})
	before := bin.MaxAddr()
	addr := bin.AppendSection(".junk", 0, []byte{0xde, 0xad})
	if addr < before || addr%0x1000 != 0 {
		t.Fatalf("appended addr 0x%x not page aligned after 0x%x", addr, before)
	}
	if s := bin.Section(".junk"); s == nil || s.Executable() {
		t.Fatalf("junk section wrong: %+v", s)
	}
	if s := bin.SectionAt(addr); s == nil || s.Name != ".junk" {
		t.Fatalf("SectionAt(0x%x) = %+v", addr, s)
	}
}

func TestVMRunsLoopProgram(t *testing.T) {
	// Count r0 from 0 to 3, emitting a syscall each iteration, then halt.
	p := &Program{Funcs: []*Function{{
		Name: "main",
		Blocks: []*Block{
			{
				Label: "entry",
				Body: []Inst{
					{Op: OpMovI, R1: 0, Imm: 0}, // r0 = 0
					{Op: OpMovI, R1: 1, Imm: 3}, // r1 = 3
					{Op: OpMovI, R1: 2, Imm: 1}, // r2 = 1
				},
				Term: TermJump{To: "loop"},
			},
			{
				Label: "loop",
				Body: []Inst{
					{Op: OpSys, Imm: 42},
					{Op: OpAdd, R1: 0, R2: 2}, // r0 += 1
					{Op: OpCmp, R1: 0, R2: 1},
				},
				Term: TermCond{Op: OpJlt, To: "loop", Else: "exit"},
			},
			{Label: "exit", Term: TermHalt{}},
		},
	}}}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	vm := NewVM(bin)
	if err := vm.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(vm.Syscalls) != 3 {
		t.Fatalf("syscalls = %d, want 3", len(vm.Syscalls))
	}
	for i, sc := range vm.Syscalls {
		if sc[0] != 42 || sc[1] != int64(i) {
			t.Fatalf("syscall %d = %v", i, sc)
		}
	}
}

func TestVMCallRet(t *testing.T) {
	p := &Program{Funcs: []*Function{
		{
			Name: "main",
			Blocks: []*Block{
				{
					Label: "entry",
					Body:  []Inst{{Op: OpMovI, R1: 0, Imm: 5}},
					Term:  TermCall{Target: "fn", Ret: "after"},
				},
				{
					Label: "after",
					Body:  []Inst{{Op: OpSys, Imm: 1}},
					Term:  TermHalt{},
				},
			},
		},
		{
			Name: "double",
			Blocks: []*Block{
				{
					Label: "fn",
					Body:  []Inst{{Op: OpAdd, R1: 0, R2: 0}},
					Term:  TermRet{},
				},
			},
		},
	}}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	vm := NewVM(bin)
	if err := vm.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(vm.Syscalls) != 1 || vm.Syscalls[0][1] != 10 {
		t.Fatalf("syscalls = %v, want [[1 10]]", vm.Syscalls)
	}
}

func TestVMStepLimit(t *testing.T) {
	p := &Program{Funcs: []*Function{{
		Name: "main",
		Blocks: []*Block{
			{Label: "spin", Term: TermJump{To: "spin"}},
		},
	}}}
	bin, _, _ := Assemble(p, AsmOptions{})
	if err := NewVM(bin).Run(50); err != ErrStepLimit {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestVMRejectsNonExecutablePC(t *testing.T) {
	bin, _, _ := Assemble(twoBlockProgram(), AsmOptions{})
	bin.Entry = 0xdead000
	if err := NewVM(bin).Run(10); err == nil {
		t.Fatal("expected error for pc outside executable sections")
	}
}

func TestBlockAddrsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := map[string]uint32{}
	for i := 0; i < 20; i++ {
		m[string(rune('a'+i))] = uint32(rng.Intn(1 << 20))
	}
	addrs := BlockAddrs(m)
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] > addrs[i] {
			t.Fatal("BlockAddrs not sorted")
		}
	}
}
