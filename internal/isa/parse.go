package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAsm parses SOT-32 assembly text into a Program. The syntax is
// line oriented:
//
//	; comment                     (also after any instruction)
//	.func NAME                    begins a function
//	label:                        begins a basic block
//	    movi r0, 42               straight-line instruction
//	    cmp r0, r1
//	    jlt loop                  conditional: taken target; else falls
//	                              through to the next block
//	    jlt loop, exit            conditional with explicit else
//	    call fn                   call; returns to the next block
//	    call fn, cont             call with explicit continuation
//	    jmp exit | ret | halt     other terminators
//
// Blocks without an explicit terminator fall through via an implicit
// jmp to the next block in the function. The first block of the first
// function is the program entry.
func ParseAsm(src string) (*Program, error) {
	p := &Program{}
	var fn *Function
	var blk *Block
	pendingFall := []*Block{} // blocks awaiting fallthrough target

	closeBlock := func(next string) {
		for _, b := range pendingFall {
			b.Term = TermJump{To: next}
		}
		pendingFall = pendingFall[:0]
	}

	flushCond := func(b *Block, next string) error {
		switch t := b.Term.(type) {
		case TermCond:
			if t.Else == "" {
				if next == "" {
					return fmt.Errorf("conditional in block %q needs a following block or explicit else", b.Label)
				}
				b.Term = TermCond{Op: t.Op, To: t.To, Else: next}
			}
		case TermCall:
			if t.Ret == "" {
				if next == "" {
					return fmt.Errorf("call in block %q needs a following block or explicit continuation", b.Label)
				}
				b.Term = TermCall{Target: t.Target, Ret: next}
			}
		}
		return nil
	}

	startBlock := func(label string, line int) error {
		if fn == nil {
			return fmt.Errorf("line %d: label %q outside .func", line, label)
		}
		nb := &Block{Label: label}
		if blk != nil {
			if blk.Term == nil {
				pendingFall = append(pendingFall, blk)
			}
			if err := flushCond(blk, label); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
		}
		closeBlock(label)
		fn.Blocks = append(fn.Blocks, nb)
		blk = nb
		return nil
	}

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1

		if strings.HasPrefix(line, ".func") {
			name := strings.TrimSpace(strings.TrimPrefix(line, ".func"))
			if name == "" {
				return nil, fmt.Errorf("line %d: .func needs a name", lineNo)
			}
			if blk != nil && blk.Term == nil {
				return nil, fmt.Errorf("line %d: block %q has no terminator before new function", lineNo, blk.Label)
			}
			if blk != nil {
				if err := flushCond(blk, ""); err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo, err)
				}
			}
			if len(pendingFall) > 0 {
				return nil, fmt.Errorf("line %d: dangling fallthrough before new function", lineNo)
			}
			fn = &Function{Name: name}
			p.Funcs = append(p.Funcs, fn)
			blk = nil
			continue
		}

		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if !validLabel(label) {
				return nil, fmt.Errorf("line %d: invalid label %q", lineNo, label)
			}
			if err := startBlock(label, lineNo); err != nil {
				return nil, err
			}
			continue
		}

		if blk == nil {
			return nil, fmt.Errorf("line %d: instruction outside a block", lineNo)
		}
		if blk.Term != nil {
			return nil, fmt.Errorf("line %d: instruction after terminator in block %q", lineNo, blk.Label)
		}
		if err := parseInstLine(line, blk); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	if blk != nil {
		if blk.Term == nil {
			return nil, fmt.Errorf("final block %q has no terminator", blk.Label)
		}
		if err := flushCond(blk, ""); err != nil {
			return nil, err
		}
	}
	if len(pendingFall) > 0 {
		return nil, fmt.Errorf("dangling fallthrough at end of program")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseInstLine parses one mnemonic line into blk (body instruction or
// terminator).
func parseInstLine(line string, blk *Block) error {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	op := fields[0]
	args := fields[1:]

	reg := func(s string) (uint8, error) {
		if len(s) < 2 || s[0] != 'r' {
			return 0, fmt.Errorf("expected register, got %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 15 {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	imm := func(s string) (int32, error) {
		n, err := strconv.ParseInt(s, 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int32(n), nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	rr := map[string]Opcode{
		"mov": OpMov, "add": OpAdd, "sub": OpSub, "mul": OpMul,
		"xor": OpXor, "and": OpAnd, "or": OpOr, "cmp": OpCmp, "test": OpTest,
	}
	ri := map[string]Opcode{"shl": OpShl, "shr": OpShr}
	mem := map[string]Opcode{"load": OpLoad, "store": OpStore}
	cond := map[string]Opcode{"jz": OpJz, "jnz": OpJnz, "jlt": OpJlt, "jge": OpJge}

	switch {
	case op == "nop":
		if err := need(0); err != nil {
			return err
		}
		blk.Body = append(blk.Body, Inst{Op: OpNop})
	case op == "movi":
		if err := need(2); err != nil {
			return err
		}
		r, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := imm(args[1])
		if err != nil {
			return err
		}
		blk.Body = append(blk.Body, Inst{Op: OpMovI, R1: r, Imm: v})
	case rr[op] != 0:
		if err := need(2); err != nil {
			return err
		}
		r1, err := reg(args[0])
		if err != nil {
			return err
		}
		r2, err := reg(args[1])
		if err != nil {
			return err
		}
		blk.Body = append(blk.Body, Inst{Op: rr[op], R1: r1, R2: r2})
	case ri[op] != 0:
		if err := need(2); err != nil {
			return err
		}
		r, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := imm(args[1])
		if err != nil {
			return err
		}
		blk.Body = append(blk.Body, Inst{Op: ri[op], R1: r, Imm: v})
	case mem[op] != 0:
		if err := need(3); err != nil {
			return err
		}
		r1, err := reg(args[0])
		if err != nil {
			return err
		}
		r2, err := reg(args[1])
		if err != nil {
			return err
		}
		v, err := imm(args[2])
		if err != nil {
			return err
		}
		blk.Body = append(blk.Body, Inst{Op: mem[op], R1: r1, R2: r2, Imm: v})
	case op == "sys":
		if err := need(1); err != nil {
			return err
		}
		v, err := imm(args[0])
		if err != nil {
			return err
		}
		blk.Body = append(blk.Body, Inst{Op: OpSys, Imm: v})
	case op == "jmp":
		if err := need(1); err != nil {
			return err
		}
		blk.Term = TermJump{To: args[0]}
	case cond[op] != 0:
		if len(args) != 1 && len(args) != 2 {
			return fmt.Errorf("%s expects 1 or 2 labels", op)
		}
		t := TermCond{Op: cond[op], To: args[0]}
		if len(args) == 2 {
			t.Else = args[1]
		}
		blk.Term = t
	case op == "call":
		if len(args) != 1 && len(args) != 2 {
			return fmt.Errorf("call expects 1 or 2 labels")
		}
		t := TermCall{Target: args[0]}
		if len(args) == 2 {
			t.Ret = args[1]
		}
		blk.Term = t
	case op == "ret":
		if err := need(0); err != nil {
			return err
		}
		blk.Term = TermRet{}
	case op == "halt":
		if err := need(0); err != nil {
			return err
		}
		blk.Term = TermHalt{}
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return nil
}
