package isa

import (
	"strings"
	"testing"
)

const sampleAsm = `
; count from 0 to 3, syscall each iteration
.func main
entry:
    movi r0, 0
    movi r1, 3
    movi r2, 1
    jmp loop
loop:
    sys 42
    add r0, r2
    cmp r0, r1
    jlt loop          ; else falls through to exit
exit:
    halt
`

func TestParseAsmRoundTripExecution(t *testing.T) {
	p, err := ParseAsm(sampleAsm)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	if p.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", p.NumBlocks())
	}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	vm := NewVM(bin)
	if err := vm.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(vm.Syscalls) != 3 {
		t.Fatalf("syscalls = %v, want 3 iterations", vm.Syscalls)
	}
}

func TestParseAsmCallAndExplicitElse(t *testing.T) {
	src := `
.func main
entry:
    movi r0, 5
    call double        ; implicit continuation: next block
after:
    cmp r0, r1
    jz iszero, nonzero
nonzero:
    sys 1
    halt
iszero:
    sys 0
    halt
.func helper
double:
    add r0, r0
    ret
`
	p, err := ParseAsm(src)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	bin, _, err := Assemble(p, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(bin)
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	// r0 = 10, r1 = 0 -> not zero -> sys 1.
	if len(vm.Syscalls) != 1 || vm.Syscalls[0][0] != 1 || vm.Syscalls[0][1] != 10 {
		t.Fatalf("syscalls = %v", vm.Syscalls)
	}
}

func TestParseAsmFallthroughBlocks(t *testing.T) {
	src := `
.func main
a:
    movi r0, 1
b:
    sys 7
    halt
`
	p, err := ParseAsm(src)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	// Block a gets an implicit jmp b.
	term, ok := p.Funcs[0].Blocks[0].Term.(TermJump)
	if !ok || term.To != "b" {
		t.Fatalf("implicit fallthrough missing: %+v", p.Funcs[0].Blocks[0].Term)
	}
}

func TestParseAsmAllInstructions(t *testing.T) {
	src := `
.func main
entry:
    nop
    mov r1, r2
    movi r3, 0x10
    add r1, r2
    sub r1, r2
    mul r1, r2
    xor r1, r2
    and r1, r2
    or r1, r2
    shl r1, 2
    shr r1, 1
    load r1, r2, 8
    store r1, r2, 8
    cmp r1, r2
    test r1, r2
    sys 3
    halt
`
	p, err := ParseAsm(src)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	if got := len(p.Funcs[0].Blocks[0].Body); got != 16 {
		t.Fatalf("body insts = %d, want 16", got)
	}
}

func TestParseAsmErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no func", "entry:\n halt\n", "outside .func"},
		{"inst outside block", ".func m\n nop\n", "outside a block"},
		{"unknown op", ".func m\nentry:\n frobnicate r1\n halt\n", "unknown mnemonic"},
		{"bad register", ".func m\nentry:\n mov r99, r1\n halt\n", "bad register"},
		{"bad immediate", ".func m\nentry:\n movi r0, banana\n halt\n", "bad immediate"},
		{"missing terminator", ".func m\nentry:\n nop\n", "no terminator"},
		{"inst after terminator", ".func m\nentry:\n halt\n nop\n", "after terminator"},
		{"operand count", ".func m\nentry:\n add r1\n halt\n", "expects 2 operands"},
		{"bad label", ".func m\n9lives:\n halt\n", "invalid label"},
		{"unknown target", ".func m\nentry:\n jmp ghost\n", "unknown label"},
		{"cond at end", ".func m\nentry:\n cmp r0, r1\n jz entry\n", "needs a following block"},
		{"func name missing", ".func\nentry:\n halt\n", ".func needs a name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseAsm(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want substring %q", err, tt.want)
			}
		})
	}
}

func TestParseAsmCommentsAndBlankLines(t *testing.T) {
	src := "\n\n; leading comment\n.func main ; trailing\nentry: ; block\n halt ; done\n"
	if _, err := ParseAsm(src); err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
}
