package isa

import (
	"fmt"
)

// Program is the structured (pre-assembly) form of a SOT-32 executable:
// an ordered list of functions, each an ordered list of labeled basic
// blocks. The first block of the first function is the program entry.
//
// Programs are what the synthetic corpus generator produces and what the
// GEA attack manipulates (code-level perturbation); the assembler lowers
// them to binaries, and the disassembler recovers CFGs from those
// binaries, mirroring the paper's radare2 pipeline.
type Program struct {
	Funcs []*Function
}

// Function is a named, ordered sequence of basic blocks. Control may
// only enter through the first block.
type Function struct {
	Name   string
	Blocks []*Block
}

// Block is a labeled basic block: a straight-line body (no control-flow
// opcodes) and exactly one terminator.
type Block struct {
	Label string
	Body  []Inst
	Term  Terminator
}

// Terminator describes how control leaves a basic block.
type Terminator interface {
	isTerminator()
}

// TermJump unconditionally transfers control to the block labeled To.
type TermJump struct{ To string }

// TermCond branches to To when the condition encoded by Op holds and to
// Else otherwise. Op must be a conditional jump opcode.
type TermCond struct {
	Op   Opcode
	To   string
	Else string
}

// TermCall calls the function whose entry block is labeled Target and
// continues at Ret when the callee returns.
type TermCall struct {
	Target string
	Ret    string
}

// TermRet returns from the current function.
type TermRet struct{}

// TermHalt stops the program.
type TermHalt struct{}

func (TermJump) isTerminator() {}
func (TermCond) isTerminator() {}
func (TermCall) isTerminator() {}
func (TermRet) isTerminator()  {}
func (TermHalt) isTerminator() {}

// Entry returns the label of the program's entry block, or "" for an
// empty program.
func (p *Program) Entry() string {
	if len(p.Funcs) == 0 || len(p.Funcs[0].Blocks) == 0 {
		return ""
	}
	return p.Funcs[0].Blocks[0].Label
}

// NumBlocks returns the total number of basic blocks across functions.
func (p *Program) NumBlocks() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// Block returns the block with the given label, or nil.
func (p *Program) Block(label string) *Block {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Label == label {
				return b
			}
		}
	}
	return nil
}

// Validate checks structural invariants: at least one block, unique
// labels, valid terminators, and terminator targets that exist.
func (p *Program) Validate() error {
	if p.Entry() == "" {
		return fmt.Errorf("isa: program has no entry block")
	}
	labels := make(map[string]bool, p.NumBlocks())
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("isa: function %q has no blocks", f.Name)
		}
		for _, b := range f.Blocks {
			if b.Label == "" {
				return fmt.Errorf("isa: function %q contains an unlabeled block", f.Name)
			}
			if labels[b.Label] {
				return fmt.Errorf("isa: duplicate block label %q", b.Label)
			}
			labels[b.Label] = true
			for _, in := range b.Body {
				if !in.Op.Valid() {
					return fmt.Errorf("isa: block %q: invalid opcode", b.Label)
				}
				if in.Op.Terminates() {
					return fmt.Errorf("isa: block %q: control-flow opcode %s in body", b.Label, in.Op)
				}
			}
			if b.Term == nil {
				return fmt.Errorf("isa: block %q has no terminator", b.Label)
			}
		}
	}
	check := func(blk, target string) error {
		if !labels[target] {
			return fmt.Errorf("isa: block %q targets unknown label %q", blk, target)
		}
		return nil
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			switch t := b.Term.(type) {
			case TermJump:
				if err := check(b.Label, t.To); err != nil {
					return err
				}
			case TermCond:
				if !t.Op.IsConditional() {
					return fmt.Errorf("isa: block %q: %s is not a conditional jump", b.Label, t.Op)
				}
				if err := check(b.Label, t.To); err != nil {
					return err
				}
				if err := check(b.Label, t.Else); err != nil {
					return err
				}
			case TermCall:
				if err := check(b.Label, t.Target); err != nil {
					return err
				}
				if err := check(b.Label, t.Ret); err != nil {
					return err
				}
			case TermRet, TermHalt:
			default:
				return fmt.Errorf("isa: block %q: unknown terminator %T", b.Label, t)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	c := &Program{Funcs: make([]*Function, len(p.Funcs))}
	for i, f := range p.Funcs {
		nf := &Function{Name: f.Name, Blocks: make([]*Block, len(f.Blocks))}
		for j, b := range f.Blocks {
			nf.Blocks[j] = &Block{
				Label: b.Label,
				Body:  append([]Inst(nil), b.Body...),
				Term:  b.Term,
			}
		}
		c.Funcs[i] = nf
	}
	return c
}

// RelabelPrefix returns a deep copy of the program with every block label
// prefixed, keeping all internal references consistent. GEA uses this to
// merge two programs without label collisions.
func (p *Program) RelabelPrefix(prefix string) *Program {
	c := p.Clone()
	for _, f := range c.Funcs {
		for _, b := range f.Blocks {
			b.Label = prefix + b.Label
			switch t := b.Term.(type) {
			case TermJump:
				b.Term = TermJump{To: prefix + t.To}
			case TermCond:
				b.Term = TermCond{Op: t.Op, To: prefix + t.To, Else: prefix + t.Else}
			case TermCall:
				b.Term = TermCall{Target: prefix + t.Target, Ret: prefix + t.Ret}
			}
		}
	}
	return c
}
