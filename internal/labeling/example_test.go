package labeling_test

import (
	"fmt"

	"soteria/internal/graph"
	"soteria/internal/labeling"
)

// The paper's Fig. 4 workflow: label a small CFG both ways and observe
// that the density ranking and the level ranking disagree.
func Example() {
	// 0 -> 1, 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4, 4 -> 1: node 1 is the
	// densest but sits at level 1.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 1)

	dbl := labeling.DensityBased(g, 0)
	lbl := labeling.LevelBased(g, 0)
	fmt.Println("DBL:", dbl.Perm)
	fmt.Println("LBL:", lbl.Perm)
	// Output:
	// DBL: [4 0 2 3 1]
	// LBL: [0 1 2 3 4]
}
