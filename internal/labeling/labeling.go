// Package labeling implements the paper's two CFG node-labeling schemes
// (section III-B.1):
//
//   - Density-based labeling (DBL): nodes are ranked by density — the sum
//     of in- and out-edges over the total edge count — with ties broken by
//     centrality factor (betweenness + closeness), then by BFS level from
//     the entry, then (for fully symmetric nodes) by node ID, which for
//     disassembled CFGs is ascending block address.
//   - Level-based labeling (LBL): nodes are ranked by BFS level from the
//     entry block (the entry always gets label 0), with ties broken by the
//     same density → centrality → ID cascade.
//
// Both schemes are strict total orders, so any structural modification to
// the graph — such as a GEA merge — reshuffles the labels of the original
// subgraph, which is exactly the property that makes the downstream
// walk/n-gram features sensitive to adversarial grafting.
package labeling

import (
	"math"
	"sort"

	"soteria/internal/graph"
)

// Kind selects a labeling scheme.
type Kind int

// Labeling schemes.
const (
	DBL Kind = iota + 1 // density-based
	LBL                 // level-based
)

// String returns the scheme's short name.
func (k Kind) String() string {
	switch k {
	case DBL:
		return "DBL"
	case LBL:
		return "LBL"
	default:
		return "Kind(?)"
	}
}

// Kinds lists both schemes in paper order.
var Kinds = []Kind{DBL, LBL}

// Labels is a bijection between nodes and labels.
type Labels struct {
	// Perm maps node ID to its label in [0, |V|).
	Perm []int
	// Order maps a label back to its node ID.
	Order []int
}

// Of returns the label of a node.
func (l *Labels) Of(node int) int { return l.Perm[node] }

// nodeKey carries every ranking ingredient for one node.
type nodeKey struct {
	id      int
	density float64
	cf      float64
	level   int
}

func keysFor(g *graph.Graph, entry int) []nodeKey {
	cf := g.CentralityFactor()
	levels := g.BFSLevels(entry)
	keys := make([]nodeKey, g.NumNodes())
	for v := range keys {
		lvl := levels[v]
		if lvl == -1 {
			lvl = math.MaxInt32 // unreachable nodes rank last on level
		}
		keys[v] = nodeKey{id: v, density: g.NodeDensity(v), cf: cf[v], level: lvl}
	}
	return keys
}

// byDensity ranks higher density first, then higher centrality factor,
// then smaller level (closer to entry), then smaller node ID.
func byDensity(a, b nodeKey) bool {
	if a.density != b.density {
		return a.density > b.density
	}
	if a.cf != b.cf {
		return a.cf > b.cf
	}
	if a.level != b.level {
		return a.level < b.level
	}
	return a.id < b.id
}

// byLevel ranks smaller level first, then the density cascade.
func byLevel(a, b nodeKey) bool {
	if a.level != b.level {
		return a.level < b.level
	}
	return byDensity(a, b)
}

func build(keys []nodeKey, less func(a, b nodeKey) bool) *Labels {
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	l := &Labels{
		Perm:  make([]int, len(keys)),
		Order: make([]int, len(keys)),
	}
	for label, k := range keys {
		l.Perm[k.id] = label
		l.Order[label] = k.id
	}
	return l
}

// DensityBased computes the DBL labeling of g with the given entry node.
func DensityBased(g *graph.Graph, entry int) *Labels {
	return build(keysFor(g, entry), byDensity)
}

// LevelBased computes the LBL labeling of g with the given entry node.
func LevelBased(g *graph.Graph, entry int) *Labels {
	return build(keysFor(g, entry), byLevel)
}

// Both computes the DBL and LBL labelings of g sharing a single pass
// over the ranking ingredients. Density, centrality factor, and BFS
// levels dominate labeling cost and are identical for both schemes, so
// computing them once halves the per-sample labeling work; the results
// are exactly DensityBased(g, entry) and LevelBased(g, entry).
func Both(g *graph.Graph, entry int) (dbl, lbl *Labels) {
	keys := keysFor(g, entry)
	keys2 := make([]nodeKey, len(keys))
	copy(keys2, keys)
	return build(keys, byDensity), build(keys2, byLevel)
}

// Compute computes the labeling of the requested kind.
func Compute(k Kind, g *graph.Graph, entry int) *Labels {
	if k == LBL {
		return LevelBased(g, entry)
	}
	return DensityBased(g, entry)
}
