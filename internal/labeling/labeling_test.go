package labeling

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"soteria/internal/graph"
)

// starChain: 0->1, 0->2, 0->3, 3->4.
func starChain() *graph.Graph {
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(3, 4)
	return g
}

func TestKindString(t *testing.T) {
	if DBL.String() != "DBL" || LBL.String() != "LBL" {
		t.Fatal("kind names wrong")
	}
	if Kind(0).String() != "Kind(?)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestDensityBasedStarChain(t *testing.T) {
	// Densities: node0 3/4, node3 2/4, nodes 1,2,4 1/4. The 1,2,4 tie
	// breaks on centrality factor (leaves 1,2 are closer to everything
	// than 4), then node ID for the symmetric pair (1,2).
	l := DensityBased(starChain(), 0)
	want := []int{0, 2, 3, 1, 4} // labels by node
	if !reflect.DeepEqual(l.Perm, want) {
		t.Fatalf("DBL Perm = %v, want %v", l.Perm, want)
	}
}

func TestLevelBasedEntryIsZero(t *testing.T) {
	l := LevelBased(starChain(), 0)
	if l.Perm[0] != 0 {
		t.Fatalf("entry label = %d, want 0", l.Perm[0])
	}
}

func TestDBLAndLBLDiffer(t *testing.T) {
	// 0->1, 1->2, 1->3, 2->4, 3->4, 4->1: node 1 is densest but at level
	// 1, so DBL and LBL must disagree.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 1)

	dbl := DensityBased(g, 0)
	lbl := LevelBased(g, 0)
	wantDBL := []int{4, 0, 2, 3, 1}
	wantLBL := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(dbl.Perm, wantDBL) {
		t.Fatalf("DBL Perm = %v, want %v", dbl.Perm, wantDBL)
	}
	if !reflect.DeepEqual(lbl.Perm, wantLBL) {
		t.Fatalf("LBL Perm = %v, want %v", lbl.Perm, wantLBL)
	}
}

func TestPaperFig4Diamond(t *testing.T) {
	// The shared-entry/exit diamond of the paper's labeling example: all
	// centralities tie, so the level cascade decides and both schemes
	// agree: entry 0, the two branch nodes by ID, the join last.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	want := []int{0, 1, 2, 3}
	if got := DensityBased(g, 0).Perm; !reflect.DeepEqual(got, want) {
		t.Fatalf("DBL Perm = %v, want %v", got, want)
	}
	if got := LevelBased(g, 0).Perm; !reflect.DeepEqual(got, want) {
		t.Fatalf("LBL Perm = %v, want %v", got, want)
	}
}

func TestOrderInverseOfPerm(t *testing.T) {
	for _, k := range Kinds {
		l := Compute(k, starChain(), 0)
		for node, label := range l.Perm {
			if l.Order[label] != node {
				t.Fatalf("%s: Order[%d] = %d, want %d", k, label, l.Order[label], node)
			}
		}
		if l.Of(3) != l.Perm[3] {
			t.Fatalf("%s: Of mismatch", k)
		}
	}
}

func TestUnreachableNodesRankLast(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	// 2 and 3 unreachable and isolated (density 0).
	l := LevelBased(g, 0)
	if l.Perm[2] < 2 || l.Perm[3] < 2 {
		t.Fatalf("unreachable nodes should rank last: %v", l.Perm)
	}
}

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v) // random tree: all reachable
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestPropertyLabelsArePermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 2+rng.Intn(30))
		for _, k := range Kinds {
			l := Compute(k, g, 0)
			seen := make([]bool, g.NumNodes())
			for _, lab := range l.Perm {
				if lab < 0 || lab >= g.NumNodes() || seen[lab] {
					return false
				}
				seen[lab] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLBLRespectsLevels(t *testing.T) {
	// A node at a strictly smaller level must get a smaller label.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 2+rng.Intn(25))
		l := LevelBased(g, 0)
		levels := g.BFSLevels(0)
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if levels[u] < levels[v] && l.Perm[u] > l.Perm[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDBLRespectsDensity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 2+rng.Intn(25))
		l := DensityBased(g, 0)
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if g.NodeDensity(u) > g.NodeDensity(v) && l.Perm[u] > l.Perm[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnected(rng, 40)
	a := DensityBased(g, 0)
	b := DensityBased(g, 0)
	if !reflect.DeepEqual(a.Perm, b.Perm) {
		t.Fatal("DBL not deterministic")
	}
}

func TestBothMatchesSeparateComputations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 2+rng.Intn(40))
		wantD := DensityBased(g, 0)
		wantL := LevelBased(g, 0)
		gotD, gotL := Both(g, 0)
		return reflect.DeepEqual(wantD, gotD) && reflect.DeepEqual(wantL, gotL)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
