package lint

import (
	"go/ast"
	"go/types"
)

const (
	cnnPath     = "soteria/internal/cnn"
	autoencPath = "soteria/internal/autoenc"
)

// batchMissTargets maps each per-sample scoring entry point to the
// cross-sample batched alternative the diagnostic should steer toward.
// The receiver package disambiguates same-named methods elsewhere.
var batchMissTargets = map[string]struct {
	pkg     string
	batched string
}{
	"Vote":                 {cnnPath, "Ensemble.VoteBatch"},
	"Probs":                {cnnPath, "Classifier.Probs over all rows at once"},
	"ReconstructionError":  {autoencPath, "Detector.ReconstructionErrorsInto"},
	"ReconstructionErrors": {autoencPath, "Detector.ReconstructionErrorsInto over all rows at once"},
	"SampleError":          {autoencPath, "Detector.SampleErrorsInto"},
}

// BatchMissAnalyzer flags per-sample scoring calls inside worker-pool
// loop bodies: Ensemble.Vote, Classifier.Probs and the detector's
// ReconstructionError/SampleError each run a forward pass, so calling
// them once per item from a par.For/ForChunked body feeds the blocked
// GEMM a stream of tiny matrices that can never amortize kernel
// packing — per-walk slivers instead of the one large product the
// batched entry points (VoteBatch, SampleErrors,
// ReconstructionErrorsInto) were built to run. Standalone-eval loops
// that knowingly trade throughput for per-sample control carry a
// //lint:ignore batchmiss justification in place.
var BatchMissAnalyzer = &Analyzer{
	Name: "batchmiss",
	Doc: "flag per-sample scoring calls (Vote/Probs/ReconstructionError/SampleError) " +
		"inside par loop bodies; assemble row matrices and use the batched entry points",
	Run: runBatchMiss,
}

func runBatchMiss(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			parFn, ok := pkgFunc(pass.Info, sel, parPath)
			if !ok {
				return true
			}
			var fnArg ast.Expr
			switch {
			case (parFn == "For" || parFn == "ForChunked") && len(call.Args) == 2:
				fnArg = call.Args[1]
			case parFn == "ForChunkedGrain" && len(call.Args) == 3:
				fnArg = call.Args[2]
			default:
				return true
			}
			lit := resolveFuncLit(pass, f, fnArg)
			if lit == nil {
				return true
			}
			checkScoringCalls(pass, lit, parFn)
			return true
		})
	}
}

// checkScoringCalls reports every per-sample scoring call nested
// anywhere inside the par body (including in nested literals — those
// still execute once per work item).
func checkScoringCalls(pass *Pass, lit *ast.FuncLit, parFn string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, batched, ok := scoringCall(pass.Info, call)
		if !ok {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s inside a par.%s body runs one tiny forward per item and cannot amortize the blocked GEMM; assemble the rows into one matrix and call %s, or justify with //lint:ignore batchmiss",
			name, parFn, batched)
		return true
	})
}

// scoringCall classifies call as one of the per-sample scoring methods
// and returns its display name plus the batched alternative.
func scoringCall(info *types.Info, call *ast.CallExpr) (name, batched string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	target, found := batchMissTargets[fn.Name()]
	if !found || fn.Pkg().Path() != target.pkg {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	return named.Obj().Name() + "." + fn.Name(), target.batched, true
}
