package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncID returns the canonical identifier of a function or method,
// stable across the separate type-checks the loader performs (the
// analysis view of a package and the clean view its importers see hold
// distinct *types.Func objects for the same source function, so
// identity must go through a name, not a pointer):
//
//	soteria/internal/core.Train
//	soteria/internal/core.(*Pipeline).Analyze
//
// Functions without a package (builtins, error.Error) map to "".
func FuncID(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	name := "?"
	switch rt := t.(type) {
	case *types.Named:
		name = rt.Obj().Name()
	case *types.Interface:
		name = "interface"
	}
	return fn.Pkg().Path() + ".(" + ptr + name + ")." + fn.Name()
}

// calleeFunc resolves the statically known target of a call expression:
// a plain function, a method on a concrete or interface value, or a
// qualified pkg.Func reference. Calls through function values and
// built-ins resolve to nil — the call graph is deliberately limited to
// static edges, which is sound for the "does this reach X" taint
// queries the analyzers make (a miss weakens a check, never breaks a
// clean build).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// moduleOf returns the module root segment of a package path
// ("soteria" for "soteria/internal/core").
func moduleOf(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

// ComputeFacts builds the whole-repo fact store over every loaded
// package: a call graph with per-function base summaries (summary.go),
// then a bottom-up fixed-point propagation over its strongly connected
// components, so recursion and mutual recursion converge.
func ComputeFacts(pkgs []*Package) *Facts {
	nodes := make(map[string]*funcNode)
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			continue
		}
		collectPackageNodes(pkg, nodes)
	}
	for _, n := range nodes {
		sort.Strings(n.callees)
		n.callees = dedupSorted(n.callees)
	}
	propagateFacts(nodes)
	return &Facts{funcs: nodes}
}

// collectPackageNodes adds one node per function declaration in pkg
// (package-level var initializers and init functions share a synthetic
// <pkg>.init node), with base facts and static call edges. Calls made
// inside nested function literals are attributed to the enclosing
// declaration: whether the literal runs immediately or later, the
// enclosing function is what made the behaviour reachable, which is the
// conservative direction for taint.
func collectPackageNodes(pkg *Package, nodes map[string]*funcNode) {
	base := strings.TrimSuffix(pkg.Path, "_test")
	node := func(id string, returnsErr bool) *funcNode {
		n := nodes[id]
		if n == nil {
			n = &funcNode{id: id, pkg: base}
			nodes[id] = n
		}
		n.returnsError = n.returnsError || returnsErr
		return n
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
				id := FuncID(fn)
				if id == "" || d.Body == nil {
					continue
				}
				sig, _ := fn.Type().(*types.Signature)
				n := node(id, sig != nil && returnsError(sig))
				if sig != nil && hasContextParam(sig) {
					n.facts |= FactReceivesContext
				}
				summarizeBody(pkg, d.Body, n)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						summarizeBody(pkg, v, node(pkg.Path+".init", false))
					}
				}
			}
		}
	}
}

// hasContextParam reports whether any parameter of sig is a
// context.Context.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// propagateFacts runs the bottom-up propagation: Tarjan's algorithm
// yields strongly connected components in reverse topological order
// (callees before callers), so one pass over the components — with a
// local fixed point inside each component for recursion — reaches the
// global fixed point.
func propagateFacts(nodes map[string]*funcNode) {
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Iterative Tarjan (explicit stack: deep synthetic call chains in
	// tests must not overflow the goroutine stack).
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	next := 0

	type frame struct {
		id string
		ci int // next callee index to visit
	}
	var sccs [][]string
	for _, root := range ids {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{id: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := nodes[fr.id]
			advanced := false
			for fr.ci < len(n.callees) {
				c := n.callees[fr.ci]
				fr.ci++
				if nodes[c] == nil {
					continue
				}
				if _, seen := index[c]; !seen {
					index[c], low[c] = next, next
					next++
					stack = append(stack, c)
					onStack[c] = true
					work = append(work, frame{id: c})
					advanced = true
					break
				}
				if onStack[c] && low[c] < low[fr.id] {
					low[fr.id] = low[c]
				}
			}
			if advanced {
				continue
			}
			id := fr.id
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].id
				if low[id] < low[parent] {
					low[parent] = low[id]
				}
			}
			if low[id] == index[id] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == id {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}

	for _, scc := range sccs {
		for changed := true; changed; {
			changed = false
			for _, id := range scc {
				n := nodes[id]
				for _, c := range n.callees {
					cn := nodes[c]
					if cn == nil {
						continue
					}
					add := cn.facts & propagatedFacts
					if cn.facts&FactForwardsPersistError != 0 && n.returnsError {
						add |= FactForwardsPersistError
					}
					if add&^n.facts != 0 {
						n.facts |= add
						changed = true
					}
				}
			}
		}
	}
}
