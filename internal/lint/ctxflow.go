package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlowAnalyzer enforces context propagation on the serving tier
// (the root package, internal/core, the internal/fleet front door, and
// every cmd tool): once a
// request carries a context, every downstream call must honor it, or
// cancelled requests keep consuming batcher slots and worker time.
// Inside an http.Handler body or any function that accepts a
// context.Context:
//
//  1. minting a fresh context with context.Background or context.TODO
//     is forbidden — handlers must derive from r.Context(), context-
//     carrying functions from their ctx parameter;
//  2. calling a function that has a context-accepting sibling
//     (Submit vs SubmitCtx) drops the caller's context on the floor
//     and is flagged with the sibling to use;
//  3. with whole-repo facts, calling any module function that
//     transitively mints a bare context (and does not itself accept
//     one) is flagged — the wrapper hides the drop, the analyzer
//     follows it.
//
// Functions outside the serving tier, and functions with neither a
// handler signature nor a ctx parameter, are not checked: code with no
// context in hand has nothing to propagate.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "require request contexts to flow through the serving tier instead of being dropped or re-minted",
	Run:  runCtxFlow,
}

func ctxFlowInScope(base string) bool {
	return base == "soteria" ||
		base == "soteria/internal/core" ||
		base == "soteria/internal/fleet" ||
		base == "soteria/internal/registry" ||
		strings.HasPrefix(base, "soteria/cmd/")
}

// ctxKind classifies a checked function body.
type ctxKind int

const (
	ctxKindHandler ctxKind = iota // func(http.ResponseWriter, *http.Request)
	ctxKindCtxFn                  // accepts a context.Context parameter
)

func runCtxFlow(pass *Pass) {
	if !ctxFlowInScope(pass.BasePath()) {
		return
	}
	for _, f := range pass.Files {
		// First sweep: find every qualifying body so the per-body walk
		// can skip nested qualifying literals (each is checked once,
		// against its own kind).
		type checked struct {
			body *ast.BlockStmt
			kind ctxKind
		}
		var targets []checked
		qualifying := make(map[*ast.BlockStmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var sig *types.Signature
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
				if fn, ok := pass.Info.Defs[n.Name].(*types.Func); ok {
					sig, _ = fn.Type().(*types.Signature)
				}
			case *ast.FuncLit:
				body = n.Body
				sig, _ = pass.Info.TypeOf(n).(*types.Signature)
			default:
				return true
			}
			if body == nil || sig == nil {
				return true
			}
			switch {
			case isHandlerSig(sig):
				targets = append(targets, checked{body, ctxKindHandler})
				qualifying[body] = true
			case hasContextParam(sig):
				targets = append(targets, checked{body, ctxKindCtxFn})
				qualifying[body] = true
			}
			return true
		})
		for _, t := range targets {
			checkCtxBody(pass, t.body, t.kind, qualifying)
		}
	}
}

// checkCtxBody walks one qualifying body, skipping nested bodies that
// qualify on their own (they get their own pass).
func checkCtxBody(pass *Pass, body *ast.BlockStmt, kind ctxKind, qualifying map[*ast.BlockStmt]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok && b != body && qualifying[b] {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkCtxCall(pass, call, kind)
		}
		return true
	})
}

// checkCtxCall applies the three rules to one call site, most specific
// first, reporting at most once.
func checkCtxCall(pass *Pass, call *ast.CallExpr, kind ctxKind) {
	// Rule 1: a direct context.Background/TODO call.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if name, ok := pkgFunc(pass.Info, sel, "context"); ok && (name == "Background" || name == "TODO") {
			src := "the ctx parameter"
			if kind == ctxKindHandler {
				src = "r.Context()"
			}
			pass.Reportf(call.Pos(), "context.%s mints a fresh context inside a context-carrying path; derive from %s instead", name, src)
			return
		}
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || hasContextParam(sig) {
		return // callee accepts a context; propagation is its problem
	}
	// Rule 2: a context-accepting sibling exists — name it.
	if moduleOf(fn.Pkg().Path()) == moduleOf(pass.BasePath()) {
		if sibling := ctxSibling(fn); sibling != "" {
			pass.Reportf(call.Pos(), "%s drops the caller's context; call %s and pass the context through", fn.Name(), sibling)
			return
		}
	}
	// Rule 3: the callee transitively mints a bare context.
	if pass.Facts.Has(FuncID(fn), FactCallsBareContext) {
		pass.Reportf(call.Pos(), "call to %s reaches context.Background/TODO without accepting a context; plumb the caller's context through it", fn.Name())
	}
}

// ctxSibling returns the name of a context-accepting variant of fn
// ("<Name>Ctx" as a sibling function in the same package scope, or a
// method on the same receiver type), or "" when none exists.
func ctxSibling(fn *types.Func) string {
	want := fn.Name() + "Ctx"
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := types.Unalias(recv.Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() != want {
				continue
			}
			if msig, ok := m.Type().(*types.Signature); ok && hasContextParam(msig) {
				return want
			}
		}
		return ""
	}
	obj := fn.Pkg().Scope().Lookup(want)
	sibling, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	if ssig, ok := sibling.Type().(*types.Signature); ok && hasContextParam(ssig) {
		return want
	}
	return ""
}

// isHandlerSig reports whether sig is func(http.ResponseWriter,
// *http.Request) — the standard handler shape.
func isHandlerSig(sig *types.Signature) bool {
	params := sig.Params()
	if params.Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isHTTPNamed(params.At(0).Type(), "ResponseWriter", false) &&
		isHTTPNamed(params.At(1).Type(), "Request", true)
}

// isHTTPNamed reports whether t is net/http.<name>, optionally behind
// one pointer.
func isHTTPNamed(t types.Type, name string, wantPtr bool) bool {
	t = types.Unalias(t)
	if wantPtr {
		p, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}
