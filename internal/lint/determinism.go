package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismScope lists the packages whose output feeds feature
// vectors, model weights, or the paper's tables — the code where any
// wall-clock, global-RNG, or iteration-order dependence breaks the
// bit-identical reproduction guarantee. Test packages of these paths
// are covered too (a nondeterministic test is a flaky equivalence
// guard).
var determinismScope = map[string]bool{
	"soteria":                      true,
	"soteria/internal/features":    true,
	"soteria/internal/ngram":       true,
	"soteria/internal/labeling":    true,
	"soteria/internal/walk":        true,
	"soteria/internal/nn":          true,
	"soteria/internal/autoenc":     true,
	"soteria/internal/cnn":         true,
	"soteria/internal/core":        true,
	"soteria/internal/pca":         true,
	"soteria/internal/experiments": true,
	"soteria/internal/evalx":       true,
}

// randConstructors are the math/rand entry points that do NOT touch the
// unseeded global source; everything else in the package does.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

// DeterminismAnalyzer enforces the reproduction's bit-identical-output
// invariant inside model-affecting packages: no wall-clock reads
// (time.Now/Since/Until), no unseeded global math/rand calls, and no
// iteration-order-sensitive work under `for range` over a map —
// floating-point or string accumulation, or appending to an output
// slice that is never subsequently sorted.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global RNG, and map-iteration-order-" +
		"dependent accumulation in model-affecting packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !determinismScope[pass.BasePath()] {
		return
	}
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkNondetSource(pass, n)
			case *ast.CallExpr:
				checkTransitiveNondet(pass, n)
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil && isMap(t) {
					checkMapRange(pass, n, parents)
				}
			}
			return true
		})
	}
}

// checkTransitiveNondet uses the whole-repo fact store (when present)
// to flag calls into out-of-scope module code that reaches the wall
// clock or the global RNG: the syntactic rules catch direct reads
// inside scoped packages, so a helper package just outside the scope
// list is exactly the hole summaries close. In-scope callees are
// skipped — their own reads are flagged at the source.
func checkTransitiveNondet(pass *Pass, call *ast.CallExpr) {
	if pass.Facts == nil {
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	base := strings.TrimSuffix(fn.Pkg().Path(), "_test")
	if determinismScope[base] {
		return
	}
	facts := pass.Facts.TaintedBy(FuncID(fn))
	if facts&FactReadsClock != 0 {
		pass.Reportf(call.Pos(), "call to %s reaches a wall-clock read (time.Now/Since/Until) outside the determinism scope; model-affecting code must be a pure function of its inputs and seed", fn.Name())
		return
	}
	if facts&FactReadsGlobalRand != 0 {
		pass.Reportf(call.Pos(), "call to %s reaches the unseeded global math/rand source; construct a seeded *rand.Rand and pass it down instead", fn.Name())
	}
}

func checkNondetSource(pass *Pass, sel *ast.SelectorExpr) {
	if name, ok := pkgFunc(pass.Info, sel, "time"); ok {
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; model-affecting code must be a pure function of its inputs and seed", name)
		}
		return
	}
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		name, ok := pkgFunc(pass.Info, sel, path)
		if !ok {
			continue
		}
		if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
			return // type or const reference (rand.Rand, rand.Source)
		}
		if randConstructors[name] {
			return
		}
		pass.Reportf(sel.Pos(), "rand.%s uses the unseeded global source; construct a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead", name)
		return
	}
}

// checkMapRange flags order-sensitive work in the body of a map range:
// float/string accumulation into state declared outside the loop, and
// appends to outer slices that are not sorted afterwards in the same
// function.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				checkAccum(pass, rs, n.Lhs[0], n.Tok.String())
			case token.ASSIGN, token.DEFINE:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					checkSelfAccum(pass, rs, n, lhs, n.Rhs[i], parents)
				}
			}
		}
		return true
	})
}

// checkAccum handles compound assignment (x += v and friends) under a
// map range.
func checkAccum(pass *Pass, rs *ast.RangeStmt, lhs ast.Expr, op string) {
	t := pass.Info.TypeOf(lhs)
	if t == nil || (!isFloat(t) && !isString(t)) {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.Info.ObjectOf(root)
	if obj == nil || declaredWithin(obj, rs) {
		return // loop-local accumulator: reset every iteration, order-free
	}
	kind := "floating-point"
	if isString(t) {
		kind = "string"
	}
	pass.Reportf(lhs.Pos(), "%s accumulation (%s) under map iteration order is nondeterministic; iterate a sorted key slice instead", kind, op)
}

// checkSelfAccum handles x = x + v self-accumulation and
// s = append(s, ...) under a map range.
func checkSelfAccum(pass *Pass, rs *ast.RangeStmt, stmt *ast.AssignStmt, lhs, rhs ast.Expr, parents map[ast.Node]ast.Node) {
	info := pass.Info
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := info.ObjectOf(root)
	if obj == nil || declaredWithin(obj, rs) {
		return
	}
	if call, ok := rhs.(*ast.CallExpr); ok {
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
			if argRoot := rootIdent(call.Args[0]); argRoot != nil && info.ObjectOf(argRoot) == obj {
				if !sortedAfter(pass, rs, obj, parents) {
					pass.Reportf(stmt.Pos(), "append to %q under map iteration order is nondeterministic; sort the result afterwards or iterate sorted keys", root.Name)
				}
			}
		}
		return
	}
	// x = x + v (float or string): same hazard as +=.
	if stmt.Tok != token.ASSIGN {
		return
	}
	t := info.TypeOf(lhs)
	if t == nil || (!isFloat(t) && !isString(t)) {
		return
	}
	if bin, ok := rhs.(*ast.BinaryExpr); ok && usesObject(info, bin, obj) {
		kind := "floating-point"
		if isString(t) {
			kind = "string"
		}
		pass.Reportf(stmt.Pos(), "%s accumulation under map iteration order is nondeterministic; iterate a sorted key slice instead", kind)
	}
}

// isSortCall matches sort/slices calls that impose a deterministic
// order on their argument.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name, ok := pkgFunc(pass.Info, sel, "sort"); ok {
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	}
	if name, ok := pkgFunc(pass.Info, sel, "slices"); ok {
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort call after the
// range statement within the enclosing function — the sanctioned
// "collect then order" pattern for map keys.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, obj types.Object, parents map[ast.Node]ast.Node) bool {
	var encl ast.Node
	for n := ast.Node(rs); n != nil; n = parents[n] {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			encl = fn.Body
		case *ast.FuncLit:
			encl = fn.Body
		}
		if encl != nil {
			break
		}
	}
	if encl == nil {
		return false
	}
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if argRoot := rootIdent(arg); argRoot != nil && pass.Info.ObjectOf(argRoot) == obj {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}
