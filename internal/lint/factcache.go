package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// factCacheSchema versions the on-disk cache layout; bump it whenever
// the cached shape or any analyzer's semantics change so stale entries
// self-invalidate.
const factCacheSchema = 1

// RunOptions configures one driver-level run of the analyzer suite.
type RunOptions struct {
	Root      string // module root directory
	Module    string // module path
	Tests     bool   // analyze _test.go files
	Patterns  []string
	Analyzers []*Analyzer
	// CacheDir holds fact-cache entries (one JSON file per run key).
	// Empty disables caching, as does NoCache.
	CacheDir string
	NoCache  bool
	// WantFacts forces a full analysis (facts are not cached) and
	// returns the computed fact store on the result.
	WantFacts bool
}

// PackageError is one package that failed to parse or type-check.
type PackageError struct {
	Path string
	Err  error
}

// RunResult is the outcome of Run.
type RunResult struct {
	Diags []Diagnostic
	// Broken lists packages whose analysis was refused because they do
	// not type-check; when non-empty the run is unreliable and the
	// driver exits 2.
	Broken []PackageError
	// FromCache reports that the diagnostics were served from a warm
	// fact cache without loading any package.
	FromCache bool
	// Facts is the computed fact store (nil on a cache hit unless
	// WantFacts, which forces computation).
	Facts *Facts
}

// cachedDiag is one diagnostic in its serialized form: the path is
// root-relative with forward slashes so cache entries survive a moved
// checkout (the hash key does not depend on the root's absolute path).
type cachedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cacheEntry is one run's memo: the content fingerprint of every
// package directory the pattern set matched, plus the diagnostics that
// analysis produced.
type cacheEntry struct {
	Schema    int               `json:"schemaVersion"`
	Toolchain string            `json:"toolchain"`
	Snapshot  map[string]string `json:"snapshot"` // rel dir -> content hash
	Diags     []cachedDiag      `json:"diagnostics"`
}

// Run executes the analyzer suite over the packages the patterns
// denote, with whole-repo interprocedural facts, consulting and
// refreshing the on-disk fact cache: when every matched directory's
// content hash is unchanged since the last clean run with the same
// options, the recorded diagnostics are returned without parsing or
// type-checking anything.
func Run(opts RunOptions) (*RunResult, error) {
	if len(opts.Analyzers) == 0 {
		opts.Analyzers = All()
	}
	useCache := !opts.NoCache && opts.CacheDir != "" && !opts.WantFacts

	var dirs []string
	var snap map[string]string
	var cachePath string
	if useCache {
		var err error
		dirs, err = MatchDirs(opts.Root, opts.Patterns)
		if err != nil {
			return nil, err
		}
		snap, err = snapshotDirs(opts.Root, dirs)
		if err != nil {
			return nil, err
		}
		cachePath = filepath.Join(opts.CacheDir, cacheKey(opts)+".json")
		if res := tryCache(cachePath, opts.Root, snap); res != nil {
			return res, nil
		}
	}

	loader := NewLoader(opts.Root, opts.Module, opts.Tests)
	pkgs, err := loader.LoadPatterns(opts.Patterns)
	if err != nil {
		return nil, err
	}
	res := &RunResult{}
	var clean []*Package
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				res.Broken = append(res.Broken, PackageError{Path: pkg.Path, Err: e})
			}
			continue
		}
		clean = append(clean, pkg)
	}
	facts := ComputeFacts(clean)
	for _, pkg := range clean {
		res.Diags = append(res.Diags, RunPackageFacts(pkg, opts.Analyzers, facts)...)
	}
	sortDiagnostics(res.Diags)
	if opts.WantFacts {
		res.Facts = facts
	}
	if useCache && len(res.Broken) == 0 {
		writeCache(cachePath, opts.Root, snap, res.Diags)
	}
	return res, nil
}

// cacheKey fingerprints everything besides file contents that shapes a
// run's diagnostics: module identity, pattern set, flags, the analyzer
// suite, and the toolchain.
func cacheKey(opts RunOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\nmodule=%s\ntests=%t\n", factCacheSchema, opts.Module, opts.Tests)
	fmt.Fprintf(h, "patterns=%s\n", strings.Join(opts.Patterns, "\x00"))
	names := make([]string, len(opts.Analyzers))
	for i, a := range opts.Analyzers {
		names[i] = a.Name
	}
	fmt.Fprintf(h, "analyzers=%s\ngo=%s\n", strings.Join(names, ","), runtime.Version())
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// snapshotDirs fingerprints every matched directory: a hash over the
// names and contents of its .go files. Any edit, addition, or removal
// of a Go file changes the hash; non-Go files are irrelevant to
// analysis and excluded.
func snapshotDirs(root string, dirs []string) (map[string]string, error) {
	snap := make(map[string]string, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			if os.IsNotExist(err) {
				// A named (non-...) pattern may point at a directory that
				// load-time will reject; leave that error to the loader.
				continue
			}
			return nil, err
		}
		h := sha256.New()
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
			h.Write(data)
		}
		snap[filepath.ToSlash(rel)] = hex.EncodeToString(h.Sum(nil))
	}
	return snap, nil
}

// tryCache returns the memoized result when the entry at path matches
// the current snapshot, nil otherwise (missing, unreadable, stale, or
// different schema — all treated as a plain miss).
func tryCache(path, root string, snap map[string]string) *RunResult {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var entry cacheEntry
	if json.Unmarshal(data, &entry) != nil ||
		entry.Schema != factCacheSchema || entry.Toolchain != runtime.Version() {
		return nil
	}
	if len(entry.Snapshot) != len(snap) {
		return nil
	}
	for dir, h := range snap {
		if entry.Snapshot[dir] != h {
			return nil
		}
	}
	res := &RunResult{FromCache: true}
	for _, d := range entry.Diags {
		res.Diags = append(res.Diags, Diagnostic{
			Pos: token.Position{
				Filename: filepath.Join(root, filepath.FromSlash(d.File)),
				Line:     d.Line,
				Column:   d.Col,
			},
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return res
}

// writeCache persists one run's memo atomically (temp file + rename);
// failures are deliberately silent — the cache is an accelerator, never
// a correctness dependency.
func writeCache(path, root string, snap map[string]string, diags []Diagnostic) {
	entry := cacheEntry{
		Schema:    factCacheSchema,
		Toolchain: runtime.Version(),
		Snapshot:  snap,
		Diags:     make([]cachedDiag, 0, len(diags)),
	}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			return
		}
		entry.Diags = append(entry.Diags, cachedDiag{
			File:     filepath.ToSlash(rel),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	if os.MkdirAll(filepath.Dir(path), 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}

// sortDiagnostics orders diags by (file, line, col, analyzer) — the
// byte-stable order the -json schema pins.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
