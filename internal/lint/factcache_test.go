package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeModule materializes files into a fresh temp module and returns
// its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cacheFixtureSrc = `package features

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`

func cacheRun(t *testing.T, root, cacheDir string, noCache bool) *RunResult {
	t.Helper()
	res, err := Run(RunOptions{
		Root:     root,
		Module:   "soteria",
		Patterns: []string{"./..."},
		CacheDir: cacheDir,
		NoCache:  noCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func diagStrings(res *RunResult) []string {
	out := make([]string, len(res.Diags))
	for i, d := range res.Diags {
		out[i] = d.String()
	}
	return out
}

func TestFactCacheWarmHitAndInvalidation(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/features/feat.go": cacheFixtureSrc,
	})
	cacheDir := filepath.Join(root, ".cache")

	cold := cacheRun(t, root, cacheDir, false)
	if cold.FromCache {
		t.Fatal("first run claims a cache hit on an empty cache")
	}
	if len(cold.Diags) != 1 {
		t.Fatalf("seeded module produced %d diagnostics, want 1: %v", len(cold.Diags), diagStrings(cold))
	}

	warm := cacheRun(t, root, cacheDir, false)
	if !warm.FromCache {
		t.Fatal("second run over an unchanged tree missed the cache")
	}
	if fmt.Sprint(diagStrings(warm)) != fmt.Sprint(diagStrings(cold)) {
		t.Fatalf("cached diagnostics differ:\ncold: %v\nwarm: %v", diagStrings(cold), diagStrings(warm))
	}

	// Any content change to a matched directory must invalidate.
	path := filepath.Join(root, "internal", "features", "feat.go")
	if err := os.WriteFile(path, []byte(cacheFixtureSrc+"\nfunc Extra() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := cacheRun(t, root, cacheDir, false)
	if edited.FromCache {
		t.Fatal("run after an edit still served the stale cache")
	}

	// A new file in a matched directory must invalidate too.
	again := cacheRun(t, root, cacheDir, false)
	if !again.FromCache {
		t.Fatal("cache did not re-warm after the edit's full run")
	}
	if err := os.WriteFile(filepath.Join(root, "internal", "features", "extra.go"), []byte("package features\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if res := cacheRun(t, root, cacheDir, false); res.FromCache {
		t.Fatal("run after adding a file still served the stale cache")
	}
}

func TestFactCacheNoCacheBypasses(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/features/feat.go": cacheFixtureSrc,
	})
	cacheDir := filepath.Join(root, ".cache")
	cacheRun(t, root, cacheDir, false) // prime
	if res := cacheRun(t, root, cacheDir, true); res.FromCache {
		t.Fatal("-no-cache run read the cache")
	}
}

func TestFactCacheNeverCachesBrokenRuns(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/features/feat.go": "package features\n\nfunc Broken() { undefined() }\n",
	})
	cacheDir := filepath.Join(root, ".cache")
	first := cacheRun(t, root, cacheDir, false)
	if len(first.Broken) == 0 {
		t.Fatal("type-broken module reported no broken packages")
	}
	second := cacheRun(t, root, cacheDir, false)
	if second.FromCache {
		t.Fatal("broken run was served from cache; broken runs must never be cached")
	}
	if len(second.Broken) == 0 {
		t.Fatal("second run over the broken module lost the broken-package report")
	}
}

func TestRunWantFactsReturnsStore(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/features/feat.go": cacheFixtureSrc,
	})
	res, err := Run(RunOptions{
		Root:      root,
		Module:    "soteria",
		Patterns:  []string{"./..."},
		CacheDir:  filepath.Join(root, ".cache"),
		WantFacts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts == nil {
		t.Fatal("WantFacts run returned no fact store")
	}
	if got := res.Facts.TaintedBy("soteria/internal/features.Stamp"); got&FactReadsClock == 0 {
		t.Fatalf("Stamp facts = %v, want reads-clock", got)
	}
}
