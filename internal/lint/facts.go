package lint

import (
	"sort"
	"strings"
)

// Fact is one bit of a function summary. Facts are computed bottom-up
// over the whole-repo call graph (see summary.go): a function carries a
// fact either because its own body exhibits it or because a callee
// does, so analyzers can ask "does anything this call reaches do X"
// without walking bodies themselves.
type Fact uint16

const (
	// FactReadsClock: the function (or a callee) reads the wall clock
	// via time.Now/Since/Until. internal/obs is exempt — it is the
	// sanctioned observability boundary, proven side-effect-free for
	// decisions by core's obs-equivalence tests.
	FactReadsClock Fact = 1 << iota
	// FactReadsGlobalRand: the function (or a callee) draws from the
	// unseeded global math/rand source.
	FactReadsGlobalRand
	// FactTouchesFastToggle: the function (or a callee) calls a
	// fast-mode toggle/query or enables a fast-mode flag field.
	// Assignments of the literal false (forcing exact mode) are exempt.
	FactTouchesFastToggle
	// FactForwardsPersistError: the function returns an error that may
	// originate from a persist-family call (Save/Load/Encode/Close/…),
	// directly or through callees that themselves forward one.
	FactForwardsPersistError
	// FactCallsBareContext: the function (or a callee) mints a context
	// via context.Background or context.TODO.
	FactCallsBareContext
	// FactAcquiresLock: the function (or a callee) calls Lock/RLock on
	// a sync.Mutex or sync.RWMutex.
	FactAcquiresLock
	// FactReceivesContext: the function's own signature accepts a
	// context.Context parameter (not propagated).
	FactReceivesContext
)

// propagatedFacts flow from callee to caller unconditionally.
// FactForwardsPersistError propagates only into callers that return an
// error themselves; FactReceivesContext never propagates.
const propagatedFacts = FactReadsClock | FactReadsGlobalRand |
	FactTouchesFastToggle | FactCallsBareContext | FactAcquiresLock

var factNames = []struct {
	f    Fact
	name string
}{
	{FactReadsClock, "reads-clock"},
	{FactReadsGlobalRand, "reads-global-rand"},
	{FactTouchesFastToggle, "touches-fast-toggle"},
	{FactForwardsPersistError, "forwards-persist-error"},
	{FactCallsBareContext, "calls-bare-context"},
	{FactAcquiresLock, "acquires-lock"},
	{FactReceivesContext, "receives-context"},
}

func (f Fact) String() string {
	var parts []string
	for _, fn := range factNames {
		if f&fn.f != 0 {
			parts = append(parts, fn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// funcNode is one function's entry in the fact store: its canonical ID,
// defining package (external-test suffix trimmed), summary facts, and
// static call edges into other module functions.
type funcNode struct {
	id           string
	pkg          string
	facts        Fact
	returnsError bool
	callees      []string
}

// Facts is the whole-repo fact store: per-function summaries keyed by
// canonical function ID (see FuncID), built by ComputeFacts over every
// loaded package and queried by the interprocedural analyzers. A nil
// *Facts degrades every query to "no facts", so analyzers fall back to
// their intraprocedural rules when run over a single package.
type Facts struct {
	funcs map[string]*funcNode
}

// TaintedBy returns the full fact set of the function with the given
// ID (zero when unknown or on a nil store).
func (f *Facts) TaintedBy(id string) Fact {
	if f == nil {
		return 0
	}
	if n := f.funcs[id]; n != nil {
		return n.facts
	}
	return 0
}

// Has reports whether the function carries every fact in want.
func (f *Facts) Has(id string, want Fact) bool {
	return f.TaintedBy(id)&want == want
}

// Callees returns the function's static call edges into other module
// functions, sorted (nil when unknown).
func (f *Facts) Callees(id string) []string {
	if f == nil {
		return nil
	}
	if n := f.funcs[id]; n != nil {
		return n.callees
	}
	return nil
}

// PkgOf returns the base package path (external-test suffix trimmed)
// the function is defined in ("" when unknown).
func (f *Facts) PkgOf(id string) string {
	if f == nil {
		return ""
	}
	if n := f.funcs[id]; n != nil {
		return n.pkg
	}
	return ""
}

// FuncIDs returns every known function ID in sorted order (for the
// driver's -facts dump).
func (f *Facts) FuncIDs() []string {
	if f == nil {
		return nil
	}
	ids := make([]string, 0, len(f.funcs))
	for id := range f.funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
