package lint

import (
	"go/ast"
	"strings"
)

// FastMathAnalyzer enforces the containment contract of the opt-in
// relaxed-precision scoring mode (DESIGN.md §7): fast mode is a
// serving-time knob, and the repository's reproducibility guarantees
// require that it can never reach training or persistence by default.
// Three rules:
//
//  1. training/persistence-family functions (names prefixed Train, Fit,
//     Save, Load, Restore, Backward, Step, or State, plus init) must
//     not call a fast-mode toggle or query (SetFastInference,
//     SetFastScoring, FastInference, FastScoring) — models must be
//     produced, persisted, and restored by the bit-exact kernels, with
//     fast mode engaged only afterwards by serving entry points;
//  2. the same functions must not assign a fast-mode flag field (fast,
//     fastInfer, or any field whose name contains "Fast") — flipping
//     the flag without the setter is the same violation in disguise;
//  3. a struct that serializes fields through json tags must not carry
//     an exported field whose name contains "Fast" unless that field is
//     tagged json:"-" — a persisted fast flag would let a saved model
//     restore into relaxed-precision mode, breaking the guarantee that
//     loaded systems start bit-exact.
//
// The check is syntactic containment, not call-graph reachability: it
// proves the named function families never touch the flag directly,
// and the runtime default (flag off at construction, cleared on
// Restore) covers the rest.
var FastMathAnalyzer = &Analyzer{
	Name: "fastmath",
	Doc:  "keep relaxed-precision fast mode out of training and persistence paths",
	Run:  runFastMath,
}

// fastTogglePrefix matches the fast-mode accessor family by name.
func fastToggleName(name string) bool {
	switch name {
	case "SetFastInference", "SetFastScoring", "FastInference", "FastScoring":
		return true
	}
	return false
}

// fastFieldName matches flag fields by convention: the unexported
// spellings used in this repository plus any exported Fast* name.
func fastFieldName(name string) bool {
	return name == "fast" || name == "fastInfer" || strings.Contains(name, "Fast")
}

// trainPersistFamily matches function names that produce, serialize,
// or restore model state.
var trainPersistPrefixes = []string{
	"Train", "Fit", "Save", "Load", "Restore", "Backward", "Step", "State",
}

func trainPersistFamily(name string) bool {
	if name == "init" {
		return true
	}
	for _, p := range trainPersistPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func runFastMath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil && trainPersistFamily(d.Name.Name) {
					checkFastFreeBody(pass, d)
				}
			case *ast.GenDecl:
				checkFastFields(pass, d)
			}
		}
	}
}

// checkFastFreeBody flags fast-mode toggles, queries, and flag-field
// assignments inside one training/persistence-family function.
func checkFastFreeBody(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(n); fastToggleName(name) {
				pass.Reportf(n.Pos(), "%s must not be reached from %s: fast mode is a serving-time knob and stays off for training and persistence", name, fn.Name.Name)
				return true
			}
			checkTransitiveFast(pass, n, fn.Name.Name)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				var name string
				switch e := lhs.(type) {
				case *ast.SelectorExpr:
					name = e.Sel.Name
				case *ast.Ident:
					name = e.Name
				}
				if name != "" && fastFieldName(name) {
					pass.Reportf(lhs.Pos(), "assignment to fast-mode flag %q inside %s: training and persistence paths must not flip relaxed-precision state", name, fn.Name.Name)
				}
			}
		}
		return true
	})
}

// checkTransitiveFast uses the whole-repo fact store (when present) to
// extend rule 1 through the call graph: a training/persistence-family
// function must not call anything that transitively toggles or enables
// fast mode, even when the toggle hides two helpers deep. Direct
// toggle calls are rule 1's domain and skipped here.
func checkTransitiveFast(pass *Pass, call *ast.CallExpr, enclosing string) {
	if pass.Facts == nil {
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fastToggleName(fn.Name()) {
		return
	}
	if pass.Facts.Has(FuncID(fn), FactTouchesFastToggle) {
		pass.Reportf(call.Pos(), "call to %s from %s reaches a fast-mode toggle; training and persistence must stay on the bit-exact kernels end to end", fn.Name(), enclosing)
	}
}

// checkFastFields flags exported Fast* fields in json-serialized
// structs unless explicitly excluded from serialization.
func checkFastFields(pass *Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || !hasSerializedField(st) {
			continue
		}
		for _, field := range st.Fields.List {
			if jsonTagName(field) == "-" {
				continue
			}
			for _, name := range field.Names {
				if ast.IsExported(name.Name) && fastFieldName(name.Name) {
					pass.Reportf(name.Pos(), "serialized struct %s carries fast-mode field %s; fast mode must never be persisted — tag it json:\"-\" or move it out of the persisted state", ts.Name.Name, name.Name)
				}
			}
		}
	}
}

// hasSerializedField reports whether any field of st opts into json
// serialization via a tag naming a key (not "-").
func hasSerializedField(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if tag := jsonTagName(field); tag != "" && tag != "-" {
			return true
		}
	}
	return false
}

// jsonTagName extracts the json key from a field's struct tag ("" when
// untagged).
func jsonTagName(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw := strings.Trim(field.Tag.Value, "`")
	for _, part := range strings.Fields(raw) {
		if !strings.HasPrefix(part, `json:"`) {
			continue
		}
		val := strings.TrimPrefix(part, `json:"`)
		if i := strings.IndexByte(val, '"'); i >= 0 {
			val = val[:i]
		}
		if i := strings.IndexByte(val, ','); i >= 0 {
			val = val[:i]
		}
		return val
	}
	return ""
}
