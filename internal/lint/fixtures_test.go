package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Fixture protocol: every file under testdata/<analyzer>/ is loaded as
// a standalone package and run through that analyzer alone.
//
//   - `//fixture:pkgpath <path>` (anywhere in the file) sets the import
//     path the file is analyzed under, so fixtures can place themselves
//     in or out of an analyzer's scope. Default:
//     soteria/internal/lintfixture.
//   - `// want "substr" ["substr" ...]` on a line declares that exactly
//     those diagnostics (by message substring) are expected on it.
//   - Lines without a want comment must produce no diagnostics.
//
// Suppression directives (//lint:ignore) are honored, so fixtures also
// exercise the ignore machinery.
//
// A SUBDIRECTORY under testdata/<analyzer>/ is a directory fixture: a
// miniature multi-package module exercising the interprocedural mode.
// Every .go file in it carries a `//fixture:file <rel/path>` line
// naming its location inside a synthesized module named "soteria"; the
// harness materializes the module in a temp dir, loads every package,
// computes whole-repo facts, and runs the analyzer facts-on. Want
// comments work as in single-file fixtures, matched per file.

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

const defaultFixturePath = "soteria/internal/lintfixture"

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "soteria" {
		t.Fatalf("unexpected module %q", module)
	}
	return root
}

func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("no fixtures for analyzer %s: %v", a.Name, err)
			}
			n := 0
			for _, e := range ents {
				if e.IsDir() {
					n++
					runDirFixture(t, a, filepath.Join(dir, e.Name()))
					continue
				}
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				n++
				runFixture(t, root, a, filepath.Join(dir, e.Name()))
			}
			if n == 0 {
				t.Fatalf("no fixtures for analyzer %s", a.Name)
			}
		})
	}
}

// wantsIn extracts the want declarations of one fixture source, keyed
// by line number.
func wantsIn(t *testing.T, path string, lines []string) map[int][]string {
	t.Helper()
	want := make(map[int][]string)
	for i, line := range lines {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s", path, i+1, q)
			}
			want[i+1] = append(want[i+1], s)
		}
	}
	return want
}

// fixtureKey addresses one fixture line across a multi-file module.
type fixtureKey struct {
	file string // module-relative, forward slashes
	line int
}

// materializeDirFixture writes a directory fixture into a temp module
// and returns the module root plus the expected diagnostics. wantOnly
// maps each materialized file back to its source for messages.
func materializeDirFixture(t *testing.T, dir string) (string, map[fixtureKey][]string) {
	t.Helper()
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module soteria\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := make(map[fixtureKey][]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		lines := strings.Split(string(src), "\n")
		rel := ""
		for _, line := range lines {
			if i := strings.Index(line, "//fixture:file "); i >= 0 {
				rel = strings.TrimSpace(line[i+len("//fixture:file "):])
			}
		}
		if rel == "" {
			t.Fatalf("%s: directory fixture file lacks a //fixture:file line", path)
		}
		dst := filepath.Join(tmp, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dst, src, 0o644); err != nil {
			return err
		}
		for line, subs := range wantsIn(t, path, lines) {
			want[fixtureKey{rel, line}] = subs
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tmp, want
}

// loadDirFixture loads every package of a materialized fixture module,
// failing the test on type errors.
func loadDirFixture(t *testing.T, tmp string) []*Package {
	t.Helper()
	loader := NewLoader(tmp, "soteria", true)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Errorf("fixture package %s does not type-check: %v", pkg.Path, e)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkgs
}

// runDirFixture materializes one directory fixture, runs the analyzer
// facts-on over the whole module, and matches diagnostics against the
// want comments.
func runDirFixture(t *testing.T, a *Analyzer, dir string) {
	t.Run(filepath.Base(dir), func(t *testing.T) {
		tmp, want := materializeDirFixture(t, dir)
		pkgs := loadDirFixture(t, tmp)
		facts := ComputeFacts(pkgs)
		got := make(map[fixtureKey][]string)
		for _, pkg := range pkgs {
			for _, d := range RunPackageFacts(pkg, []*Analyzer{a}, facts) {
				rel, err := filepath.Rel(tmp, d.Pos.Filename)
				if err != nil {
					t.Fatal(err)
				}
				k := fixtureKey{filepath.ToSlash(rel), d.Pos.Line}
				got[k] = append(got[k], d.Message)
			}
		}
		keys := make(map[fixtureKey]bool)
		for k := range want {
			keys[k] = true
		}
		for k := range got {
			keys[k] = true
		}
		ordered := make([]fixtureKey, 0, len(keys))
		for k := range keys {
			ordered = append(ordered, k)
		}
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].file != ordered[j].file {
				return ordered[i].file < ordered[j].file
			}
			return ordered[i].line < ordered[j].line
		})
		for _, k := range ordered {
			w, g := want[k], got[k]
			if len(g) != len(w) {
				t.Errorf("%s:%d: got %d diagnostics %q, want %d matching %q", k.file, k.line, len(g), g, len(w), w)
				continue
			}
			for _, sub := range w {
				found := false
				for _, msg := range g {
					if strings.Contains(msg, sub) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s:%d: no diagnostic matching %q in %q", k.file, k.line, sub, g)
				}
			}
		}
	})
}

func runFixture(t *testing.T, root string, a *Analyzer, path string) {
	t.Helper()
	t.Run(filepath.Base(path), func(t *testing.T) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgPath := defaultFixturePath
		lines := strings.Split(string(src), "\n")
		for _, line := range lines {
			if i := strings.Index(line, "//fixture:pkgpath "); i >= 0 {
				pkgPath = strings.TrimSpace(line[i+len("//fixture:pkgpath "):])
			}
		}

		loader := NewLoader(root, "soteria", true)
		pkg, err := loader.LoadFile(path, pkgPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range pkg.Errors {
			t.Errorf("fixture does not type-check: %v", e)
		}
		if t.Failed() {
			t.FailNow()
		}

		want := wantsIn(t, path, lines) // line -> expected message substrings

		got := make(map[int][]string)
		for _, d := range RunPackage(pkg, []*Analyzer{a}) {
			got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
		}

		var allLines []int
		seen := map[int]bool{}
		for l := range want {
			if !seen[l] {
				seen[l] = true
				allLines = append(allLines, l)
			}
		}
		for l := range got {
			if !seen[l] {
				seen[l] = true
				allLines = append(allLines, l)
			}
		}
		sort.Ints(allLines)
		for _, l := range allLines {
			w, g := want[l], got[l]
			if len(g) != len(w) {
				t.Errorf("%s:%d: got %d diagnostics %q, want %d matching %q", path, l, len(g), g, len(w), w)
				continue
			}
			for _, sub := range w {
				found := false
				for _, msg := range g {
					if strings.Contains(msg, sub) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s:%d: no diagnostic matching %q in %q", path, l, sub, g)
				}
			}
		}
	})
}
