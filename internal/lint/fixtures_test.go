package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Fixture protocol: every file under testdata/<analyzer>/ is loaded as
// a standalone package and run through that analyzer alone.
//
//   - `//fixture:pkgpath <path>` (anywhere in the file) sets the import
//     path the file is analyzed under, so fixtures can place themselves
//     in or out of an analyzer's scope. Default:
//     soteria/internal/lintfixture.
//   - `// want "substr" ["substr" ...]` on a line declares that exactly
//     those diagnostics (by message substring) are expected on it.
//   - Lines without a want comment must produce no diagnostics.
//
// Suppression directives (//lint:ignore) are honored, so fixtures also
// exercise the ignore machinery.

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

const defaultFixturePath = "soteria/internal/lintfixture"

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "soteria" {
		t.Fatalf("unexpected module %q", module)
	}
	return root
}

func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("no fixtures for analyzer %s: %v", a.Name, err)
			}
			n := 0
			for _, e := range ents {
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				n++
				runFixture(t, root, a, filepath.Join(dir, e.Name()))
			}
			if n == 0 {
				t.Fatalf("no fixtures for analyzer %s", a.Name)
			}
		})
	}
}

func runFixture(t *testing.T, root string, a *Analyzer, path string) {
	t.Helper()
	t.Run(filepath.Base(path), func(t *testing.T) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgPath := defaultFixturePath
		lines := strings.Split(string(src), "\n")
		for _, line := range lines {
			if i := strings.Index(line, "//fixture:pkgpath "); i >= 0 {
				pkgPath = strings.TrimSpace(line[i+len("//fixture:pkgpath "):])
			}
		}

		loader := NewLoader(root, "soteria", true)
		pkg, err := loader.LoadFile(path, pkgPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range pkg.Errors {
			t.Errorf("fixture does not type-check: %v", e)
		}
		if t.Failed() {
			t.FailNow()
		}

		want := make(map[int][]string) // line -> expected message substrings
		for i, line := range lines {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s", path, i+1, q)
				}
				want[i+1] = append(want[i+1], s)
			}
		}

		got := make(map[int][]string)
		for _, d := range RunPackage(pkg, []*Analyzer{a}) {
			got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
		}

		var allLines []int
		seen := map[int]bool{}
		for l := range want {
			if !seen[l] {
				seen[l] = true
				allLines = append(allLines, l)
			}
		}
		for l := range got {
			if !seen[l] {
				seen[l] = true
				allLines = append(allLines, l)
			}
		}
		sort.Ints(allLines)
		for _, l := range allLines {
			w, g := want[l], got[l]
			if len(g) != len(w) {
				t.Errorf("%s:%d: got %d diagnostics %q, want %d matching %q", path, l, len(g), g, len(w), w)
				continue
			}
			for _, sub := range w {
				found := false
				for _, msg := range g {
					if strings.Contains(msg, sub) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s:%d: no diagnostic matching %q in %q", path, l, sub, g)
				}
			}
		}
	})
}
