package lint

import (
	"go/ast"
	"go/types"
)

const nnPath = "soteria/internal/nn"

// HotAllocAnalyzer guards the zero-allocation contract of the neural
// compute kernel (internal/nn): Forward and Backward run once per layer
// per minibatch, so a fresh NewMatrix or Matrix.Clone inside them turns
// into megabytes of garbage per epoch and defeats the package's
// workspace discipline (persistent `ensure` buffers for training,
// Arena slots for inference — see internal/nn/workspace.go). The
// analyzer flags both allocators inside any Forward/Backward body in
// internal/nn; deliberate standalone-eval allocations carry a
// //lint:ignore hotalloc justification in place.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "flag NewMatrix/Matrix.Clone calls inside internal/nn Forward/Backward " +
		"bodies that bypass the workspace arena (use ensure or Arena.take)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if pass.BasePath() != nnPath {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if name != "Forward" && name != "Backward" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch allocKind(pass.Info, call) {
				case "NewMatrix":
					pass.Reportf(call.Pos(), "NewMatrix inside %s allocates on every pass; reuse a persistent workspace buffer (ensure) or an Arena slot, or justify with //lint:ignore hotalloc", name)
				case "Clone":
					pass.Reportf(call.Pos(), "Matrix.Clone inside %s allocates on every pass; copy into a persistent workspace buffer (ensure) or an Arena slot, or justify with //lint:ignore hotalloc", name)
				}
				return true
			})
		}
	}
}

// allocKind classifies call as one of the hot-path allocators defined by
// internal/nn — the package-level NewMatrix constructor or the
// Matrix.Clone method — and returns "" for anything else.
func allocKind(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != nnPath {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	switch fn.Name() {
	case "NewMatrix":
		if sig.Recv() == nil {
			return "NewMatrix"
		}
	case "Clone":
		if recv := sig.Recv(); recv != nil && isNNMatrix(recv.Type()) {
			return "Clone"
		}
	}
	return ""
}

func isNNMatrix(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Matrix" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == nnPath
}
