package lint

import (
	"path/filepath"
	"testing"
)

// TestInterprocRegression pins the gap between the syntactic and
// summary-driven modes on the three upgraded analyzers: each directory
// fixture hides its violation behind wrapper functions, so the old
// single-package mode (RunPackage, nil facts) must find NOTHING while
// the whole-repo mode (RunPackageFacts over computed facts) must find
// exactly the fixture's want set. If the syntactic mode ever starts
// catching these, the fixture no longer guards the interprocedural
// machinery; if the facts mode misses them, the machinery regressed.
func TestInterprocRegression(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{DeterminismAnalyzer, filepath.Join("testdata", "determinism", "interproc")},
		{FastMathAnalyzer, filepath.Join("testdata", "fastmath", "interproc")},
		{PersistErrAnalyzer, filepath.Join("testdata", "persisterr", "interproc")},
		{CtxFlowAnalyzer, filepath.Join("testdata", "ctxflow", "interproc")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			tmp, want := materializeDirFixture(t, tc.dir)
			if len(want) == 0 {
				t.Fatalf("fixture %s declares no wants; it proves nothing", tc.dir)
			}
			pkgs := loadDirFixture(t, tmp)

			var syntactic []Diagnostic
			for _, pkg := range pkgs {
				syntactic = append(syntactic, RunPackage(pkg, []*Analyzer{tc.analyzer})...)
			}
			for _, d := range syntactic {
				t.Errorf("syntactic mode unexpectedly caught %s:%d: %s — the fixture no longer isolates the interprocedural gap", d.Pos.Filename, d.Pos.Line, d.Message)
			}

			facts := ComputeFacts(pkgs)
			caught := make(map[fixtureKey]bool)
			for _, pkg := range pkgs {
				for _, d := range RunPackageFacts(pkg, []*Analyzer{tc.analyzer}, facts) {
					rel, err := filepath.Rel(tmp, d.Pos.Filename)
					if err != nil {
						t.Fatal(err)
					}
					caught[fixtureKey{filepath.ToSlash(rel), d.Pos.Line}] = true
				}
			}
			for k := range want {
				if !caught[k] {
					t.Errorf("facts mode missed the %s violation at %s:%d", tc.analyzer.Name, k.file, k.line)
				}
			}
		})
	}
}
