// Package lint implements soterialint, the repository's pure-stdlib
// static-analysis driver. The reproduction's guarantees — bit-identical
// feature vectors and models across runs, machines, and refactors —
// depend on invariants no compiler enforces: no wall-clock or global
// RNG input to model-affecting code, no iteration-order-sensitive
// accumulation, disciplined use of the internal/par worker pool, and
// checked errors on every persistence path. Each analyzer in this
// package machine-checks one of those invariants so `go test ./...`
// fails when a PR reintroduces a violation, instead of relying on
// reviewer vigilance.
//
// Intentional exceptions are suppressed in place with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a suppression without one is itself reported, so every
// exception stays documented where it lives.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run inspects the package in
// pass and reports violations through pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path the package was loaded as; external
	// test packages carry a "_test" suffix. Analyzers use it to scope
	// themselves (see BasePath).
	PkgPath string
	// Facts is the whole-repo interprocedural fact store, populated when
	// the pass is part of a multi-package run (RunPackageFacts / Run).
	// Nil in single-package mode; every Facts query is nil-safe, so
	// analyzers degrade to their intraprocedural rules.
	Facts *Facts

	report func(Diagnostic)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// BasePath returns the pass's package path with any external-test
// suffix removed, so scope checks treat foo and foo_test alike.
func (p *Pass) BasePath() string {
	return strings.TrimSuffix(p.PkgPath, "_test")
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		ParMisuseAnalyzer,
		PersistErrAnalyzer,
		PackedKeyAnalyzer,
		HotAllocAnalyzer,
		BatchMissAnalyzer,
		ObsHotAnalyzer,
		FastMathAnalyzer,
		LockSafeAnalyzer,
		CtxFlowAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list; unknown names error.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// RunPackage applies every analyzer to one loaded package in
// single-package (intraprocedural) mode: no fact store is attached, so
// summary-driven rules stay silent and only the syntactic rules fire.
// Results are filtered through //lint:ignore suppressions and returned
// sorted by position. Malformed suppressions (missing analyzer or
// reason) are reported under the pseudo-analyzer "ignore".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunPackageFacts(pkg, analyzers, nil)
}

// RunPackageFacts is RunPackage with a whole-repo fact store attached
// to every pass, enabling the interprocedural rules. Run (factcache.go)
// computes facts once across all loaded packages and calls this per
// package.
func RunPackageFacts(pkg *Package, analyzers []*Analyzer, facts *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			Facts:    facts,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	sup, bad := suppressions(pkg)
	diags = append(filterSuppressed(diags, sup), bad...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

const ignoreDirective = "//lint:ignore"

// suppressKey identifies one (file, line, analyzer) suppression target.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions indexes every well-formed //lint:ignore directive in the
// package and reports malformed ones. A directive on line n suppresses
// matching diagnostics on lines n and n+1, so it works both as an
// end-of-line comment and as a standalone comment above the statement.
func suppressions(pkg *Package) (map[suppressKey]bool, []Diagnostic) {
	sup := make(map[suppressKey]bool)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not ours
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "malformed //lint:ignore directive: need \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				valid := true
				for _, n := range names {
					if _, err := ByName(n); err != nil {
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "ignore",
							Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", n),
						})
						valid = false
					}
				}
				if !valid {
					continue
				}
				for _, n := range names {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						sup[suppressKey{pos.Filename, line, n}] = true
					}
				}
			}
		}
	}
	return sup, bad
}

func filterSuppressed(diags []Diagnostic, sup map[suppressKey]bool) []Diagnostic {
	if len(sup) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if sup[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
