package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the tier-1 gate: it runs the full analyzer
// suite over every package in the module (tests included), with
// whole-repo interprocedural facts, and fails on any diagnostic. A new
// violation anywhere in the tree breaks `go test ./...`, not just
// `go run ./cmd/soterialint ./...`.
func TestRepoIsLintClean(t *testing.T) {
	root := moduleRoot(t)
	loader := NewLoader(root, "soteria", true)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var clean []*Package
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
		if len(pkg.Errors) == 0 {
			clean = append(clean, pkg)
		}
	}
	facts := ComputeFacts(clean)
	for _, pkg := range clean {
		for _, d := range RunPackageFacts(pkg, All(), facts) {
			rel, err := filepath.Rel(root, d.Pos.Filename)
			if err != nil {
				rel = d.Pos.Filename
			}
			t.Errorf("%s:%d:%d: %s: %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
}

// TestSeededViolationsAreCaught proves the gate has teeth: a synthetic
// module seeded with one violation per analyzer must produce a
// diagnostic from every analyzer in the suite.
func TestSeededViolationsAreCaught(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("internal/par/par.go", `package par

func For(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func ForChunked(n int, fn func(lo, hi int)) {
	fn(0, n)
}
`)
	write("internal/features/bad.go", `package features

import (
	"strings"
	"time"

	"soteria/internal/par"
)

func violations(xs []float64) (float64, string) {
	_ = time.Now()
	total := 0.0
	par.For(len(xs), func(i int) {
		total += xs[i]
	})
	return total, strings.Join([]string{"1", "2"}, "|")
}
`)
	write("internal/nn/bad.go", `package nn

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

type layer struct{}

func (l *layer) Forward(x *Matrix, train bool) *Matrix {
	return NewMatrix(x.Rows, x.Cols)
}
`)
	write("internal/autoenc/bad.go", `package autoenc

import "soteria/internal/par"

type Detector struct{}

func (d *Detector) ReconstructionError(vec []float64) float64 {
	return float64(len(vec))
}

func scoreAll(d *Detector, vecs [][]float64, res []float64) {
	par.For(len(vecs), func(i int) {
		res[i] = d.ReconstructionError(vecs[i])
	})
}
`)
	write("internal/core/bad.go", `package core

import "os"

func save(path string, data []byte) {
	f, _ := os.Create(path)
	f.Write(data)
	f.Close()
}
`)
	write("internal/obs/obs.go", `package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}
`)
	write("internal/cnn/fastbad.go", `package cnn

type net struct{ fastInfer bool }

func (n *net) SetFastInference(on bool) { n.fastInfer = on }

type Classifier struct{ net *net }

func Train(c *Classifier) {
	c.net.SetFastInference(true)
}
`)
	write("internal/core/lockbad.go", `package core

import "sync"

type registry struct {
	mu sync.Mutex
	m  map[string]int
}

func lookup(r registry, key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[key]
}
`)
	write("cmd/srv/main.go", `package main

import (
	"context"
	"net/http"
)

func main() {
	http.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		_ = doWork(context.Background())
	})
}

func doWork(ctx context.Context) error {
	_ = ctx
	return nil
}
`)
	write("internal/core/obsbad.go", `package core

import (
	"soteria/internal/obs"
	"soteria/internal/par"
)

func observeAll(c *obs.Counter, xs []float64, out []float64) {
	par.For(len(xs), func(i int) {
		out[i] = xs[i]
		c.Inc()
	})
}
`)

	loader := NewLoader(root, "soteria", false)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]int{}
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: seeded module does not type-check: %v", pkg.Path, pkg.Errors)
		}
	}
	facts := ComputeFacts(pkgs)
	for _, pkg := range pkgs {
		for _, d := range RunPackageFacts(pkg, All(), facts) {
			hits[d.Analyzer]++
		}
	}
	for _, a := range All() {
		if hits[a.Name] == 0 {
			t.Errorf("seeded violation for %s not caught (hits: %v)", a.Name, hits)
		}
	}
}

// TestStoreScopeHasTeeth proves persisterr really polices the store
// package: a seeded internal/store file with the record log's classic
// failure modes (discarded Rename after a snapshot, discarded Truncate
// during tail recovery, deferred Close on a write-opened log) must
// produce a diagnostic for each.
func TestStoreScopeHasTeeth(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "internal", "store", "bad.go")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package store

import "os"

func rotate(tmp, dst string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	os.Rename(tmp, dst)
	return nil
}

func recoverTail(f *os.File, good int64) {
	f.Truncate(good)
}

var (
	_ = rotate
	_ = recoverTail
)
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "soteria", false)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: seeded module does not type-check: %v", pkg.Path, pkg.Errors)
		}
		for _, d := range RunPackage(pkg, []*Analyzer{PersistErrAnalyzer}) {
			msgs = append(msgs, d.Message)
		}
	}
	for _, want := range []string{
		"error returned by Rename is discarded",
		"error returned by Truncate is discarded",
		`deferred Close on "f" discards the error`,
	} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %q", want, msgs)
		}
	}
}

// TestFleetScopeHasTeeth proves ctxflow really polices internal/fleet:
// a seeded front-door file that mints fresh contexts inside a proxy
// handler and a ctx-carrying prober must produce a diagnostic for
// each.
func TestFleetScopeHasTeeth(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "internal", "fleet", "bad.go")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package fleet

import (
	"context"
	"net/http"
)

func proxy(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	forward(ctx)
}

func probeRound(ctx context.Context) {
	_ = context.TODO()
}

func forward(ctx context.Context) { _ = ctx }

var (
	_ = proxy
	_ = probeRound
)
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "soteria", false)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: seeded module does not type-check: %v", pkg.Path, pkg.Errors)
		}
		for _, d := range RunPackage(pkg, []*Analyzer{CtxFlowAnalyzer}) {
			msgs = append(msgs, d.Message)
		}
	}
	for _, want := range []string{
		"derive from r.Context()",
		"derive from the ctx parameter",
	} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %q", want, msgs)
		}
	}
}

// TestRegistryScopeHasTeeth proves ctxflow polices internal/registry:
// a seeded registry file whose admin handler mints a fresh context and
// drops it into Submit (with a SubmitCtx sibling in scope), plus a
// ctx-carrying scorer that re-mints, must produce a diagnostic for
// each violation.
func TestRegistryScopeHasTeeth(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "internal", "registry", "bad.go")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package registry

import (
	"context"
	"net/http"
)

func handleActivate(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	_ = ctx
	Submit()
}

func scoreShadow(ctx context.Context) {
	_ = context.TODO()
}

func Submit()                           {}
func SubmitCtx(ctx context.Context)     { _ = ctx }

var (
	_ = handleActivate
	_ = scoreShadow
)
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "soteria", false)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: seeded module does not type-check: %v", pkg.Path, pkg.Errors)
		}
		for _, d := range RunPackage(pkg, []*Analyzer{CtxFlowAnalyzer}) {
			msgs = append(msgs, d.Message)
		}
	}
	for _, want := range []string{
		"derive from r.Context()",
		"derive from the ctx parameter",
		"Submit drops the caller's context; call SubmitCtx",
	} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %q", want, msgs)
		}
	}
}
