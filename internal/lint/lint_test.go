package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	as, err := ByName("determinism, packedkey")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "determinism" || as[1].Name != "packedkey" {
		t.Fatalf("got %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
	if as, err := ByName(""); err != nil || len(as) != 0 {
		t.Fatalf("empty list: got %v, %v", as, err)
	}
}

// Malformed and unknown-analyzer directives are themselves reported and
// do not suppress anything; a well-formed multi-analyzer directive does.
func TestIgnoreDirectives(t *testing.T) {
	root := moduleRoot(t)
	src := `package fixture

import "time"

func a() {
	//lint:ignore
	_ = time.Now()
}

func b() {
	//lint:ignore nosuch the analyzer name is wrong
	_ = time.Now()
}

func c() {
	//lint:ignore determinism,packedkey wall clock feeds a banner only
	_ = time.Now()
}
`
	file := filepath.Join(t.TempDir(), "directives.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader(root, "soteria", false).LoadFile(file, "soteria/internal/features")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("fixture does not type-check: %v", pkg.Errors)
	}
	diags := RunPackage(pkg, All())
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	// Two broken directives report under "ignore"; the two unsuppressed
	// time.Now calls (in a and b) still report under determinism; the
	// suppressed call in c does not.
	if byAnalyzer["ignore"] != 2 {
		t.Errorf("got %d ignore diagnostics, want 2: %v", byAnalyzer["ignore"], diags)
	}
	if byAnalyzer["determinism"] != 2 {
		t.Errorf("got %d determinism diagnostics, want 2: %v", byAnalyzer["determinism"], diags)
	}
	foundMalformed, foundUnknown := false, false
	for _, d := range diags {
		if strings.Contains(d.Message, "malformed //lint:ignore") {
			foundMalformed = true
		}
		if strings.Contains(d.Message, "unknown analyzer") {
			foundUnknown = true
		}
	}
	if !foundMalformed || !foundUnknown {
		t.Errorf("missing malformed/unknown directive reports in %v", diags)
	}
}
