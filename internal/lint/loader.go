package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked unit of analysis: either a
// package's compiled files plus its in-package test files, or the
// external (_test-suffixed) test package of a directory.
type Package struct {
	Path  string // import path; external test packages end in "_test"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errors holds parse and type errors. Analyzer output for a
	// package with errors is unreliable; the driver refuses to
	// report findings over broken input.
	Errors []error
}

// Loader parses and type-checks packages of one module from source,
// with no dependencies outside the standard library. Intra-module
// imports resolve to Root; everything else goes through the compiler's
// export data (with a from-source fallback), so loading stays correct
// even on toolchains that ship no precompiled stdlib.
type Loader struct {
	// Root is the module root directory.
	Root string
	// Module is the module path (the `module` line of go.mod).
	Module string
	// Tests controls whether _test.go files are loaded for analysis.
	Tests bool

	fset    *token.FileSet
	std     types.Importer
	stdSrc  types.Importer
	clean   map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, module string, tests bool) *Loader {
	return &Loader{
		Root:    root,
		Module:  module,
		Tests:   tests,
		fset:    token.NewFileSet(),
		std:     importer.Default(),
		clean:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

// Fset exposes the loader's file set (shared by every loaded package).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer over module-internal paths and the
// standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importClean(path)
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	// Export data unavailable (e.g. cold build cache): fall back to
	// type-checking the standard library from source.
	if l.stdSrc == nil {
		l.stdSrc = importer.ForCompiler(l.fset, "source", nil)
	}
	pkg, srcErr := l.stdSrc.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("import %q: %v (source fallback: %v)", path, err, srcErr)
	}
	return pkg, nil
}

// importClean loads the non-test build of a module-internal package,
// caching the result for every importer.
func (l *Loader) importClean(path string) (*types.Package, error) {
	if pkg, ok := l.clean[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOf(path)
	files, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", path, err)
	}
	l.clean[path] = pkg
	return pkg, nil
}

func (l *Loader) dirOf(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

func (l *Loader) pathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses every buildable Go file in dir into three groups:
// compiled files, in-package test files, and external (pkg_test) test
// files.
func (l *Loader) parseDir(dir string) (base, inTest, extTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var baseName string
	type parsed struct {
		file *ast.File
		test bool
	}
	var all []parsed
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.Tests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		if !buildable(f) {
			continue
		}
		if !isTest && baseName == "" {
			baseName = f.Name.Name
		}
		all = append(all, parsed{f, isTest})
	}
	if baseName == "" { // test-only directory
		for _, p := range all {
			if !strings.HasSuffix(p.file.Name.Name, "_test") {
				baseName = p.file.Name.Name
				break
			}
		}
	}
	for _, p := range all {
		switch {
		case !p.test:
			base = append(base, p.file)
		case p.file.Name.Name == baseName+"_test":
			extTest = append(extTest, p.file)
		default:
			inTest = append(inTest, p.file)
		}
	}
	return base, inTest, extTest, nil
}

// buildable evaluates a file's //go:build constraint against the host
// GOOS/GOARCH and release tags, with every optional tag (race, cgo,
// custom) false — matching how the default `go test ./...` run builds
// the tree.
func buildable(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(buildTag)
		}
	}
	return true
}

func buildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, runtime.Compiler:
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly", "illumos", "ios":
			return true
		}
		return false
	}
	if v, ok := strings.CutPrefix(tag, "go1."); ok {
		minor, err := strconv.Atoi(v)
		if err != nil {
			return false
		}
		parts := strings.SplitN(runtime.Version(), ".", 3)
		if len(parts) >= 2 {
			if cur, err := strconv.Atoi(parts[1]); err == nil {
				return minor <= cur
			}
		}
		return true // devel toolchain: assume newest
	}
	return false
}

// LoadDir loads the package in one directory: the compiled+in-package
// view always, plus the external test package when present. Type errors
// are collected on the returned packages rather than aborting, so the
// caller can report them all.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	base, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base)+len(inTest)+len(extTest) == 0 {
		return nil, nil
	}
	path, err := l.pathOf(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	mainFiles := append(append([]*ast.File(nil), base...), inTest...)
	if len(mainFiles) > 0 {
		pkg := l.check(path, dir, mainFiles, nil)
		out = append(out, pkg)
		if len(extTest) > 0 {
			// The external test package must see the package under
			// test as built *with* its in-package test files, so
			// export_test.go hooks resolve.
			override := map[string]*types.Package{path: pkg.Types}
			out = append(out, l.check(path+"_test", dir, extTest, override))
		}
	} else if len(extTest) > 0 {
		out = append(out, l.check(path+"_test", dir, extTest, nil))
	}
	return out, nil
}

// check type-checks one file group as import path `path`.
func (l *Loader) check(path, dir string, files []*ast.File, override map[string]*types.Package) *Package {
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	var imp types.Importer = l
	if override != nil {
		imp = overrideImporter{next: l, pkgs: override}
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	return pkg
}

type overrideImporter struct {
	next types.Importer
	pkgs map[string]*types.Package
}

func (o overrideImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := o.pkgs[path]; ok {
		return pkg, nil
	}
	return o.next.Import(path)
}

// LoadFile loads a single file as its own package under the given
// import path. Fixture tests use this to run analyzers over testdata
// files as if they lived at a chosen path.
func (l *Loader) LoadFile(file, asPath string) (*Package, error) {
	f, err := parser.ParseFile(l.fset, file, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.check(asPath, filepath.Dir(file), []*ast.File{f}, nil), nil
}

// LoadPatterns resolves a list of ./dir, ./dir/..., or ./... patterns
// relative to the module root and loads every matching package
// directory in deterministic order.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	dirs, err := MatchDirs(l.Root, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkgs, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

// MatchDirs resolves ./dir, ./dir/..., and ./... patterns relative to
// root into the sorted list of package directories they denote, without
// parsing anything — the fact cache uses it to fingerprint a run's
// inputs before deciding whether loading is needed at all.
func MatchDirs(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		start := filepath.Join(root, filepath.FromSlash(pat))
		if !recursive {
			add(start)
			continue
		}
		err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks upward from dir to the nearest go.mod and
// returns the directory and module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
