package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoaderSkipsBuildExcludedFiles proves //go:build constraints are
// honored: a file excluded for this platform must neither contribute
// declarations nor break type-checking of the files that remain.
func TestLoaderSkipsBuildExcludedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/plat/plat.go": `package plat

func Generic() int { return 1 }
`,
		// An impossible constraint: never buildable, and it references
		// an undefined symbol so accidental inclusion fails loudly.
		"internal/plat/never.go": `//go:build neverever

package plat

func FromExcluded() int { return undefinedSymbol }
`,
	})
	loader := NewLoader(root, "soteria", true)
	pkgs, err := loader.LoadPatterns([]string{"./internal/plat"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Errors) > 0 {
		t.Fatalf("excluded file leaked into the type-check: %v", pkg.Errors)
	}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if name == "never.go" {
			t.Fatal("build-excluded never.go was parsed into the package")
		}
	}
	if pkg.Types.Scope().Lookup("Generic") == nil {
		t.Fatal("included declaration missing from the package scope")
	}
	if pkg.Types.Scope().Lookup("FromExcluded") != nil {
		t.Fatal("excluded declaration leaked into the package scope")
	}
}

// TestLoaderExternalTestPackage proves foo_test external test packages
// load as their own unit, importing the non-test view of foo, and that
// fact computation attributes their functions to the base package.
func TestLoaderExternalTestPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/thing/thing.go": `package thing

func Value() int { return 42 }
`,
		"internal/thing/thing_ext_test.go": `package thing_test

import (
	"testing"

	"soteria/internal/thing"
)

func TestValue(t *testing.T) {
	if thing.Value() != 42 {
		t.Fatal("wrong value")
	}
}
`,
	})
	loader := NewLoader(root, "soteria", true)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: %v", pkg.Path, pkg.Errors)
		}
		paths = append(paths, pkg.Path)
	}
	joined := strings.Join(paths, " ")
	if !strings.Contains(joined, "soteria/internal/thing_test") {
		t.Fatalf("external test package not loaded; got %v", paths)
	}
	facts := ComputeFacts(pkgs)
	if got := facts.PkgOf("soteria/internal/thing_test.TestValue"); got != "soteria/internal/thing" {
		t.Fatalf("external test function attributed to %q, want the base package", got)
	}
}

// TestLoaderTypeErrorIsReportedNotFatal proves a package that fails to
// type-check surfaces through Package.Errors (and Run's Broken list)
// instead of panicking or failing the whole load: the driver turns it
// into exit 2.
func TestLoaderTypeErrorIsReportedNotFatal(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/good/good.go": `package good

func Fine() int { return 1 }
`,
		"internal/bad/bad.go": `package bad

func Broken() int { return "not an int" }
`,
	})
	loader := NewLoader(root, "soteria", true)
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("a type error must not fail the whole load: %v", err)
	}
	var goodOK, badErrored bool
	for _, pkg := range pkgs {
		switch pkg.Path {
		case "soteria/internal/good":
			goodOK = len(pkg.Errors) == 0
		case "soteria/internal/bad":
			badErrored = len(pkg.Errors) > 0
		}
	}
	if !goodOK {
		t.Error("healthy sibling package was poisoned by the broken one")
	}
	if !badErrored {
		t.Error("type-broken package reported no errors")
	}

	res, err := Run(RunOptions{Root: root, Module: "soteria", Tests: true, Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Broken) == 0 {
		t.Fatal("Run did not surface the broken package")
	}
}
