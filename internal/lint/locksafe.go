package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafeAnalyzer enforces the two mechanical rules that keep the
// repository's synchronization honest, everywhere in the module:
//
//  1. values containing sync primitives (sync.Mutex, RWMutex,
//     WaitGroup, Once, Cond, Pool, Map, or any sync/atomic value type)
//     must never be copied. A copied mutex guards nothing; a copied
//     atomic counter silently forks. Flagged: by-value parameters,
//     results, and method receivers whose type contains such state,
//     plain copy assignments from an existing value, and `range`
//     clauses whose value variable copies one per iteration.
//     Fresh construction (composite literals, constructor calls) is
//     fine — only copies of already-live values are dangerous.
//  2. a variable or field accessed through sync/atomic functions
//     (atomic.AddUint64(&s.n, …)) must be accessed that way everywhere:
//     mixing atomic and plain loads/stores on the same word is a data
//     race the race detector only catches when the schedule cooperates.
//
// Both rules are type-driven and apply to every package; there is no
// scope list because a copied lock is wrong no matter where it lives.
var LockSafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc:  "forbid copying sync-bearing values and mixing atomic with plain access",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) {
	atomicObjs, atomicArgs := collectAtomicAccess(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkSyncFields(pass, n.Recv, "receiver", n.Name.Name)
				}
				checkSyncFields(pass, n.Type.Params, "parameter", n.Name.Name)
				checkSyncFields(pass, n.Type.Results, "result", n.Name.Name)
			case *ast.FuncLit:
				checkSyncFields(pass, n.Type.Params, "parameter", "func literal")
			case *ast.AssignStmt:
				checkSyncCopy(pass, n)
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.Info.TypeOf(n.Value); syncBearing(t) {
						pass.Reportf(n.Value.Pos(), "range value copies %s, which contains sync state, on every iteration; range over indices or pointers instead", typeName(pass, t))
					}
				}
			}
			return true
		})
	}
	reportPlainAccess(pass, atomicObjs, atomicArgs)
}

// checkSyncFields flags by-value fields (receiver, params, results)
// whose type contains sync state. what selects the message shape.
func checkSyncFields(pass *Pass, fl *ast.FieldList, what, fnName string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || isPointerLike(t) || !syncBearing(t) {
			continue
		}
		if what == "receiver" {
			pass.Reportf(field.Pos(), "method %s has a value receiver of type %s, which contains sync state; copying it on every call breaks the lock — use a pointer receiver", fnName, typeName(pass, t))
			continue
		}
		name := "value"
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		pass.Reportf(field.Pos(), "%s %q of %s is passed by value but its type %s contains sync state; use a pointer", what, name, fnName, typeName(pass, t))
	}
}

// checkSyncCopy flags assignments that duplicate an already-live
// sync-bearing value: the right-hand side names an existing value
// (identifier, selector, index, or dereference) rather than
// constructing a fresh one.
func checkSyncCopy(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if !copiesExisting(rhs) {
			continue
		}
		t := pass.Info.TypeOf(rhs)
		if !syncBearing(t) {
			continue
		}
		pass.Reportf(as.Pos(), "assignment copies a value of type %s, which contains sync state; share it through a pointer instead", typeName(pass, t))
	}
}

// copiesExisting reports whether expr denotes an existing value being
// read (and therefore copied on assignment), as opposed to a composite
// literal, constructor call, or conversion producing a fresh value.
func copiesExisting(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true // *p copies the pointee
	}
	return false
}

// isPointerLike reports whether t shares rather than copies its
// underlying storage on assignment.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// syncBearing reports whether copying a value of type t would copy a
// sync primitive: the type is (or contains, through struct fields or
// array elements) one of the sync package's value types or a
// sync/atomic value type. Pointers, slices, maps, and channels stop
// the recursion — they share, not copy.
func syncBearing(t types.Type) bool {
	return syncBearingRec(t, make(map[types.Type]bool))
}

func syncBearingRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return true
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return true
				}
			}
		}
		return syncBearingRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if syncBearingRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return syncBearingRec(u.Elem(), seen)
	}
	return false
}

// typeName renders t relative to the pass's package for messages.
func typeName(pass *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

// collectAtomicAccess finds every variable or field whose address is
// taken by a sync/atomic function call, returning the accessed objects
// and the exact &x argument nodes (exempted from the plain-access
// sweep).
func collectAtomicAccess(pass *Pass) (map[types.Object]bool, map[ast.Node]bool) {
	objs := make(map[types.Object]bool)
	args := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if _, ok := pkgFunc(pass.Info, sel, "sync/atomic"); !ok {
				return true
			}
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				var obj types.Object
				switch target := ast.Unparen(un.X).(type) {
				case *ast.Ident:
					obj = pass.Info.ObjectOf(target)
				case *ast.SelectorExpr:
					obj = pass.Info.ObjectOf(target.Sel)
				}
				if obj != nil {
					objs[obj] = true
					args[un] = true
				}
			}
			return true
		})
	}
	return objs, args
}

// reportPlainAccess flags every use of an atomically-accessed object
// outside the recorded atomic call arguments.
func reportPlainAccess(pass *Pass, objs map[types.Object]bool, args map[ast.Node]bool) {
	if len(objs) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if args[n] {
				return false // the sanctioned &x inside an atomic call
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil || !objs[obj] {
				return true
			}
			if _, isField := obj.(*types.Var); !isField {
				return true
			}
			if defPos := obj.Pos(); defPos == id.Pos() {
				return true // the declaration itself
			}
			pass.Reportf(id.Pos(), "%q is accessed with sync/atomic elsewhere; this plain access races with it — use the atomic API everywhere", id.Name)
			return true
		})
	}
}
