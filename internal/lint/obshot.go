package lint

import (
	"go/ast"
	"go/types"
)

const obsPath = "soteria/internal/obs"

// ObsHotAnalyzer guards the observability layer's granularity contract
// (DESIGN.md §9): metrics are observed per chunk, per batch, or per
// epoch — never per work item. An obs call inside a par.For /
// ForChunked / ForChunkedGrain body runs once per item on every pool
// worker, turning a lock-free counter into a cross-core cache-line
// fight (and a latency timer into per-item clock reads); inside an
// internal/nn Forward/Backward body it would put the same cost in the
// per-layer kernel, which the determinism analyzer additionally keeps
// clock-free. The sanctioned observation points — par.Overlap stage
// closures, trainer epoch boundaries, batcher serve — sit outside both.
// Deliberate exceptions carry a //lint:ignore obshot justification in
// place.
var ObsHotAnalyzer = &Analyzer{
	Name: "obshot",
	Doc: "flag obs metric calls inside par worker-loop bodies and internal/nn " +
		"Forward/Backward; observe at chunk, batch, or epoch granularity instead",
	Run: runObsHot,
}

func runObsHot(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			parFn, ok := pkgFunc(pass.Info, sel, parPath)
			if !ok {
				return true
			}
			var fnArg ast.Expr
			switch {
			case (parFn == "For" || parFn == "ForChunked") && len(call.Args) == 2:
				fnArg = call.Args[1]
			case parFn == "ForChunkedGrain" && len(call.Args) == 3:
				fnArg = call.Args[2]
			default:
				return true
			}
			lit := resolveFuncLit(pass, f, fnArg)
			if lit == nil {
				return true
			}
			checkObsCalls(pass, lit.Body, "a par."+parFn+" body")
			return true
		})
		if pass.BasePath() == nnPath {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if name := fd.Name.Name; name == "Forward" || name == "Backward" {
					checkObsCalls(pass, fd.Body, name)
				}
			}
		}
	}
}

// checkObsCalls reports every obs metric operation nested anywhere
// inside body (including in nested literals — those still execute once
// per work item).
func checkObsCalls(pass *Pass, body ast.Node, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := obsCall(pass.Info, call)
		if !ok {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s inside %s observes once per work item — contended atomics (and, for timers, clock reads) on the hot path; observe at chunk, batch, or epoch granularity outside the loop, or justify with //lint:ignore obshot",
			name, where)
		return true
	})
}

// obsCall classifies call as a method on one of internal/obs's types
// (Counter, Gauge, Histogram, EWMA, TrainHooks, Registry) and returns
// its display name.
func obsCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name() + "." + fn.Name(), true
}
