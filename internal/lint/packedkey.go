package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

const ngramPath = "soteria/internal/ngram"

// PackedKeyAnalyzer keeps gram-key construction behind the ngram API.
// Packed keys have one layout (15-bit label fields plus a length tag)
// and string keys one grammar ("a|b|c"); hand-rolled bit twiddling or
// string splicing outside internal/ngram silently diverges the moment
// the layout changes, which desynchronizes vocabularies from vectors.
// Flagged outside internal/ngram:
//
//   - bitwise expressions over ngram layout constants (PackBits,
//     MaxPackedLabel, MaxPackedN) — use ngram.Pack/PackAt/Unpack;
//   - strings.Join/Split/Cut with the "|" separator — use
//     ngram.Key/ParseKey;
//   - fmt.Sprintf with "%d|"-style formats that splice gram keys.
//
// Comparisons against the constants (e.g. label range checks) remain
// fine.
var PackedKeyAnalyzer = &Analyzer{
	Name: "packedkey",
	Doc:  "forbid hand-built gram keys outside internal/ngram; use ngram.Pack/ParseKey/Key",
	Run:  runPackedKey,
}

var packedBitwiseOps = map[token.Token]bool{
	token.SHL: true, token.SHR: true, token.AND: true,
	token.OR: true, token.XOR: true, token.AND_NOT: true,
}

var ngramLayoutConsts = map[string]bool{
	"PackBits": true, "MaxPackedLabel": true, "MaxPackedN": true,
}

func runPackedKey(pass *Pass) {
	if pass.BasePath() == ngramPath {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if packedBitwiseOps[n.Op] {
					if c := layoutConstIn(pass, n); c != "" {
						pass.Reportf(n.Pos(), "manual packed-key bit manipulation via ngram.%s; use ngram.Pack/PackAt/Unpack so the key layout stays in one place", c)
						return false
					}
				}
			case *ast.CallExpr:
				checkKeyStrings(pass, n)
			}
			return true
		})
	}
}

// layoutConstIn returns the name of an ngram layout constant referenced
// anywhere inside the expression, or "".
func layoutConstIn(pass *Pass, e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name, ok := pkgFunc(pass.Info, sel, ngramPath); ok && ngramLayoutConsts[name] {
			found = name
		}
		return found == ""
	})
	return found
}

// checkKeyStrings flags string-level gram-key splicing: pipe-separated
// joins, splits, and Sprintf formats.
func checkKeyStrings(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if name, ok := pkgFunc(pass.Info, sel, "strings"); ok && len(call.Args) == 2 {
		if lit := stringLit(call.Args[1]); lit == "|" {
			switch name {
			case "Join":
				pass.Reportf(call.Pos(), `strings.Join with "|" builds a gram key by hand; use ngram.Key`)
			case "Split", "SplitN", "Cut":
				pass.Reportf(call.Pos(), `strings.%s with "|" parses a gram key by hand; use ngram.ParseKey`, name)
			}
		}
		return
	}
	if name, ok := pkgFunc(pass.Info, sel, "fmt"); ok && name == "Sprintf" && len(call.Args) > 0 {
		format := stringLit(call.Args[0])
		if strings.Contains(format, "%d|") || strings.Contains(format, "|%d") {
			pass.Reportf(call.Pos(), "fmt.Sprintf splices a pipe-separated gram key by hand; use ngram.Key")
		}
	}
}

func stringLit(e ast.Expr) string {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}
