package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const parPath = "soteria/internal/par"

// ParMisuseAnalyzer guards the contract of the shared worker pool
// (internal/par): a body handed to par.For/par.ForChunked runs
// concurrently on many goroutines, so it must depend only on its index
// arguments and write only to per-index slots. The analyzer flags three
// misuse patterns: capturing an enclosing loop variable instead of
// using the callback index, writing to shared captured state (bare
// variables, maps, fields, or slices at indices that do not depend on
// the worker's item), and calling t.Fatal-family methods off the test
// goroutine.
var ParMisuseAnalyzer = &Analyzer{
	Name: "parmisuse",
	Doc: "enforce the internal/par contract: bodies depend only on their " +
		"index arguments, write per-index slots, and never t.Fatal off the test goroutine",
	Run: runParMisuse,
}

func runParMisuse(pass *Pass) {
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := pkgFunc(pass.Info, sel, parPath)
			if !ok {
				return true
			}
			// The body is the last argument: For/ForChunked(n, fn),
			// ForChunkedGrain(n, minGrain, fn).
			var fnArg ast.Expr
			switch {
			case (name == "For" || name == "ForChunked") && len(call.Args) == 2:
				fnArg = call.Args[1]
			case name == "ForChunkedGrain" && len(call.Args) == 3:
				fnArg = call.Args[2]
			default:
				return true
			}
			lit := resolveFuncLit(pass, f, fnArg)
			if lit == nil {
				return true
			}
			checkLoopVarCapture(pass, lit, parents, name)
			checkSharedWrites(pass, lit, name)
			checkTestCalls(pass, lit, name)
			return true
		})
	}
}

// resolveFuncLit returns the function literal a par call argument
// denotes: either directly, or through a `body := func(...){...}`
// binding in the same file.
func resolveFuncLit(pass *Pass, f *ast.File, arg ast.Expr) *ast.FuncLit {
	switch e := arg.(type) {
	case *ast.FuncLit:
		return e
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			return nil
		}
		var lit *ast.FuncLit
		ast.Inspect(f, func(n ast.Node) bool {
			if lit != nil {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.Defs[id] != obj || i >= len(as.Rhs) {
					continue
				}
				if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
					lit = fl
				}
			}
			return lit == nil
		})
		return lit
	}
	return nil
}

// checkLoopVarCapture flags references inside the par body to loop
// variables of for/range statements enclosing the body's definition.
// The worker body must address work through its own index arguments;
// coupling it to an enclosing iteration variable is the pre-Go-1.22
// capture hazard and breaks if the pool ever overlaps iterations.
func checkLoopVarCapture(pass *Pass, lit *ast.FuncLit, parents map[ast.Node]ast.Node, parFn string) {
	loopVars := make(map[types.Object]string)
	for n := parents[ast.Node(lit)]; n != nil; n = parents[n] {
		switch loop := n.(type) {
		case *ast.RangeStmt:
			if loop.Tok == token.DEFINE {
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := loop.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if name, captured := loopVars[pass.Info.Uses[id]]; captured {
			pass.Reportf(id.Pos(), "par.%s body captures enclosing loop variable %q; parallel bodies must derive work from their own index arguments", parFn, name)
		}
		return true
	})
}

// checkSharedWrites flags writes from the par body to state captured
// from outside it, unless the destination is a slice/array slot indexed
// by something computed inside the body (the sanctioned per-index-slot
// pattern).
func checkSharedWrites(pass *Pass, lit *ast.FuncLit, parFn string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWriteTarget(pass, lit, lhs, parFn)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, lit, n.X, parFn)
		}
		return true
	})
}

func checkWriteTarget(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, parFn string) {
	info := pass.Info
	for {
		p, ok := lhs.(*ast.ParenExpr)
		if !ok {
			break
		}
		lhs = p.X
	}
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj, ok := info.ObjectOf(root).(*types.Var)
	if !ok || declaredWithin(obj, lit) {
		return // body-local variable (param or local): private to this worker
	}
	switch e := lhs.(type) {
	case *ast.Ident:
		pass.Reportf(lhs.Pos(), "par.%s body assigns to captured variable %q shared by every worker; write to a per-index slot instead", parFn, root.Name)
	case *ast.IndexExpr:
		if t := info.TypeOf(e.X); t != nil && isMap(t) {
			pass.Reportf(lhs.Pos(), "par.%s body writes to captured map %q; map writes race across workers — fill a per-index slice and merge after the pool returns", parFn, root.Name)
			return
		}
		if !indexDependsOnBody(pass, lit, e) {
			pass.Reportf(lhs.Pos(), "par.%s body writes %q at an index that does not depend on the worker's index arguments; workers will collide on the same slot", parFn, root.Name)
		}
	case *ast.SelectorExpr:
		pass.Reportf(lhs.Pos(), "par.%s body writes to field of captured %q shared by every worker; write to a per-index slot instead", parFn, root.Name)
	case *ast.StarExpr:
		pass.Reportf(lhs.Pos(), "par.%s body writes through captured pointer %q shared by every worker", parFn, root.Name)
	}
}

// indexDependsOnBody reports whether any index on the path from the
// written element up to the root identifier references a variable
// declared inside the body (an index argument or something derived
// from one).
func indexDependsOnBody(pass *Pass, lit *ast.FuncLit, e *ast.IndexExpr) bool {
	for {
		dep := false
		ast.Inspect(e.Index, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil && declaredWithin(obj, lit) {
					dep = true
				}
			}
			return !dep
		})
		if dep {
			return true
		}
		inner, ok := e.X.(*ast.IndexExpr)
		if !ok {
			return false
		}
		e = inner
	}
}

var fatalOffGoroutine = map[string]bool{
	"Fatal": true, "Fatalf": true, "FailNow": true,
	"Skip": true, "Skipf": true, "SkipNow": true,
}

// checkTestCalls flags t.Fatal-family calls inside the par body:
// runtime.Goexit from a non-test goroutine deadlocks or silently
// drops the failure; t.Error/t.Errorf are the safe forms.
func checkTestCalls(pass *Pass, lit *ast.FuncLit, parFn string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !fatalOffGoroutine[sel.Sel.Name] {
			return true
		}
		if isTestingType(pass.Info.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(), "%s.%s inside a par.%s body runs off the test goroutine and will not stop the test; use Error/Errorf and return", exprString(sel.X), sel.Sel.Name, parFn)
		}
		return true
	})
}

func isTestingType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "testing" {
		return false
	}
	switch named.Obj().Name() {
	case "T", "B", "F", "TB":
		return true
	}
	return false
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "t"
}
