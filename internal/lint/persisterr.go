package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PersistErrAnalyzer enforces checked errors on persistence paths in
// the packages that read and write models, binaries, and reports
// (core, disasm, store, and every cmd tool): a silently failed Save/
// Encode/Close produces a truncated model file that Load rejects — or
// worse, loads into a subtly different pipeline; a silently failed
// Rename/Truncate leaves the store's record log half-rotated. Three
// rules:
//
//  1. a call statement that discards an error returned by a
//     persist-family function (Close, Flush, Sync, Rename, Truncate,
//     Save*, Load*, Encode*, Decode*, Write*, Persist*, Marshal*,
//     Unmarshal*, ReadFrom) is flagged; assign the error or discard it
//     explicitly with `_ =` plus a //lint:ignore reason when truly
//     irrelevant;
//  2. deferring a non-Close persist call (defer w.Flush()) discards
//     its error and is flagged;
//  3. `defer f.Close()` on a file obtained from os.Create/os.OpenFile
//     is flagged: on write paths the Close error is the signal that
//     buffered data hit the disk, so close explicitly and check.
//
// Deferred Close on read-only files (os.Open) stays idiomatic and is
// not flagged. *strings.Builder and *bytes.Buffer writers are exempt
// (their write errors are documented to be always nil).
var PersistErrAnalyzer = &Analyzer{
	Name: "persisterr",
	Doc:  "forbid discarded errors on save/load/encode/decode/close paths in core, disasm, store, and cmd tools",
	Run:  runPersistErr,
}

func persistErrInScope(base string) bool {
	return base == "soteria" ||
		base == "soteria/internal/core" ||
		base == "soteria/internal/disasm" ||
		base == "soteria/internal/store" ||
		strings.HasPrefix(base, "soteria/cmd/")
}

var persistExact = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "ReadFrom": true,
	"Rename": true, "Truncate": true,
}

var persistPrefixes = []string{
	"Save", "Load", "Encode", "Decode", "Write", "Persist", "Marshal", "Unmarshal",
}

func persistFamily(name string) bool {
	if persistExact[name] {
		return true
	}
	for _, p := range persistPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func runPersistErr(pass *Pass) {
	if !persistErrInScope(pass.BasePath()) {
		return
	}
	for _, f := range pass.Files {
		writers := writeOpenedFiles(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := discardsPersistError(pass, call); ok {
						pass.Reportf(call.Pos(), "error returned by %s is discarded; check it, or discard explicitly with `_ =` and a //lint:ignore reason", name)
					} else if name, ok := discardsForwardedPersistError(pass, call); ok {
						pass.Reportf(call.Pos(), "error returned by %s is discarded, and %s forwards a persistence error (Save/Encode/Close family); check it", name, name)
					}
				}
			case *ast.DeferStmt:
				checkDeferred(pass, n, writers)
			}
			return true
		})
	}
}

// discardsPersistError reports whether call returns an error, belongs
// to the persist family, and is not exempt.
func discardsPersistError(pass *Pass, call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if name == "" || !persistFamily(name) {
		return "", false
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && alwaysNilErrWriter(pass.Info.TypeOf(sel.X)) {
		return "", false
	}
	return name, true
}

// discardsForwardedPersistError is the interprocedural extension of
// discardsPersistError: with whole-repo facts, a call to a function
// whose name is NOT in the persist family but whose summary shows it
// forwards a persistence error (a wrapper around Save/Encode/Close) is
// the same silent truncation one hop removed.
func discardsForwardedPersistError(pass *Pass, call *ast.CallExpr) (string, bool) {
	if pass.Facts == nil {
		return "", false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || persistFamily(fn.Name()) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	if !pass.Facts.Has(FuncID(fn), FactForwardsPersistError) {
		return "", false
	}
	return fn.Name(), true
}

func checkDeferred(pass *Pass, def *ast.DeferStmt, writers map[types.Object]bool) {
	call := def.Call
	name, ok := discardsPersistError(pass, call)
	if !ok {
		if name, ok := discardsForwardedPersistError(pass, call); ok {
			pass.Reportf(call.Pos(), "deferred %s discards a forwarded persistence error; call it explicitly before returning and check the result", name)
		}
		return
	}
	if name != "Close" {
		pass.Reportf(call.Pos(), "deferred %s discards its error; call it explicitly before returning and check the result", name)
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok && writers[pass.Info.ObjectOf(id)] {
		pass.Reportf(call.Pos(), "deferred Close on %q discards the error that signals whether the written data reached disk; close explicitly and check", id.Name)
	}
}

// writeOpenedFiles collects variables bound to os.Create/os.OpenFile
// results anywhere in the file, keyed by object identity.
func writeOpenedFiles(pass *Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, ok := pkgFunc(pass.Info, sel, "os")
		if !ok || (name != "Create" && name != "OpenFile") {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// alwaysNilErrWriter exempts in-memory writers whose Write/WriteString
// errors are documented to always be nil. hash.Hash qualifies by its
// contract: "It never returns an error."
func alwaysNilErrWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "hash.Hash":
		return true
	}
	return false
}
