package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// summarizeBody walks one function body (or package-level initializer
// expression) and records base facts and static call edges on n. Nested
// function literals are included: conservatively, defining a literal
// that does X means the enclosing function may reach X.
func summarizeBody(pkg *Package, body ast.Node, n *funcNode) {
	info := pkg.Info
	sanctioned := n.pkg == obsPath // observability boundary: clock reads allowed
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			summarizeCall(pkg, node, n, sanctioned)
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				name := ""
				switch e := lhs.(type) {
				case *ast.SelectorExpr:
					name = e.Sel.Name
				case *ast.Ident:
					// Only persistent state counts: a local variable
					// named fast (e.g. snapshotting ws.fast) flips
					// nothing that outlives the call.
					if obj := info.ObjectOf(e); obj != nil && obj.Parent() == pkg.Types.Scope() {
						name = e.Name
					}
				}
				if name == "" || !fastFieldName(name) {
					continue
				}
				// Forcing exact mode (assigning the literal false) is
				// always safe and deliberately not a fact: it is how
				// exact-only paths shield themselves.
				if i < len(node.Rhs) && isFalseLiteral(info, node.Rhs[i]) {
					continue
				}
				n.facts |= FactTouchesFastToggle
			}
		}
		return true
	})
}

// summarizeCall records the facts and the call edge of one call site.
func summarizeCall(pkg *Package, call *ast.CallExpr, n *funcNode, sanctioned bool) {
	info := pkg.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !sanctioned {
		if name, ok := pkgFunc(info, sel, "time"); ok {
			switch name {
			case "Now", "Since", "Until":
				n.facts |= FactReadsClock
			}
		}
		for _, path := range []string{"math/rand", "math/rand/v2"} {
			name, ok := pkgFunc(info, sel, path)
			if !ok {
				continue
			}
			if _, isFunc := info.Uses[sel.Sel].(*types.Func); isFunc && !randConstructors[name] {
				n.facts |= FactReadsGlobalRand
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if name, ok := pkgFunc(info, sel, "context"); ok && (name == "Background" || name == "TODO") {
			n.facts |= FactCallsBareContext
		}
	}

	name := calleeName(call)
	if fastToggleName(name) {
		n.facts |= FactTouchesFastToggle
	}
	if n.returnsError && persistFamily(name) {
		if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && returnsError(sig) {
			exempt := false
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && alwaysNilErrWriter(info.TypeOf(sel.X)) {
				exempt = true
			}
			if !exempt {
				n.facts |= FactForwardsPersistError
			}
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if isLockAcquire(fn) {
		n.facts |= FactAcquiresLock
	}
	// Only module-internal edges enter the graph: stdlib bodies are not
	// loaded, so edges into them could never carry facts.
	if moduleOf(fn.Pkg().Path()) == moduleOf(n.pkg) {
		n.callees = append(n.callees, FuncID(fn))
	}
}

// isLockAcquire matches sync.Mutex/RWMutex Lock-family methods.
func isLockAcquire(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && (named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// isFalseLiteral reports whether expr is the constant false.
func isFalseLiteral(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}
