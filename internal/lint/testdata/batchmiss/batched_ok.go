package fixture

import (
	"soteria/internal/autoenc"
	"soteria/internal/cnn"
	"soteria/internal/nn"
	"soteria/internal/par"
)

// The intended shape: one batched forward over all rows outside the
// pool, then cheap per-sample work inside it.
func batchedThenPar(ens *cnn.Ensemble, det *autoenc.Detector, dblX, lblX, x *nn.Matrix, wps int, adv []bool) {
	res := det.ReconstructionErrors(x)
	cls := ens.VoteBatch(dblX, lblX, wps)
	thr := det.Threshold()
	par.For(len(cls), func(i int) {
		adv[i] = res[i] > thr
	})
}

// Serial per-sample loops are out of scope: batchmiss polices only par
// bodies, where the stream of tiny forwards also serializes the pool.
func serialLoop(det *autoenc.Detector, vecs [][]float64) float64 {
	sum := 0.0
	for _, v := range vecs {
		sum += det.ReconstructionError(v)
	}
	return sum
}

// Same-named methods on unrelated types stay out of scope.
type fakeScorer struct{}

func (fakeScorer) ReconstructionError(v []float64) float64 { return float64(len(v)) }

func (fakeScorer) Vote(a, b [][]float64) (int, error) { return 0, nil }

func unrelatedNames(s fakeScorer, vecs [][]float64, res []float64) {
	par.For(len(vecs), func(i int) {
		res[i] = s.ReconstructionError(vecs[i])
		if c, err := s.Vote(nil, nil); err == nil {
			res[i] += float64(c)
		}
	})
}
