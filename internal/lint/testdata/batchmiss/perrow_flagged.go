package fixture

import (
	"soteria/internal/autoenc"
	"soteria/internal/cnn"
	"soteria/internal/nn"
	"soteria/internal/par"
)

// Per-sample scoring inside a par body runs one tiny forward per work
// item; the batched entry points exist precisely so these loops
// disappear into one large GEMM.
func perSampleVote(ens *cnn.Ensemble, dbl, lbl [][][]float64, out []int) {
	par.For(len(dbl), func(i int) {
		cls, err := ens.Vote(dbl[i], lbl[i]) // want "Ensemble.Vote inside a par.For body"
		if err == nil {
			out[i] = cls
		}
	})
}

func perSampleRE(det *autoenc.Detector, vecs [][]float64, res []float64) {
	par.For(len(vecs), func(i int) {
		res[i] = det.ReconstructionError(vecs[i]) // want "Detector.ReconstructionError inside a par.For body"
	})
}

func perChunkProbs(c *cnn.Classifier, rows []*nn.Matrix) {
	par.ForChunked(len(rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = c.Probs(rows[i]) // want "Classifier.Probs inside a par.ForChunked body"
		}
	})
}

func perGrainSample(det *autoenc.Detector, walks [][][]float64, res []float64) {
	par.ForChunkedGrain(len(walks), 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			res[i] = det.SampleError(walks[i]) // want "Detector.SampleError inside a par.ForChunkedGrain body"
		}
	})
}

// Nested literals still execute once per work item.
func nestedLit(det *autoenc.Detector, vecs [][]float64, res []float64) {
	par.For(len(vecs), func(i int) {
		score := func() float64 {
			return det.ReconstructionError(vecs[i]) // want "Detector.ReconstructionError inside a par.For body"
		}
		res[i] = score()
	})
}
