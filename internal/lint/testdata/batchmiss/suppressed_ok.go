package fixture

import (
	"soteria/internal/autoenc"
	"soteria/internal/par"
)

// Standalone-eval paths that deliberately keep per-sample scoring
// document the tradeoff in place; the directive keeps them out of the
// report.
func standaloneEval(det *autoenc.Detector, vecs [][]float64, res []float64) {
	par.For(len(vecs), func(i int) {
		//lint:ignore batchmiss standalone eval keeps the per-sample path as an independent cross-check of the batched kernels
		res[i] = det.ReconstructionError(vecs[i])
	})
}
