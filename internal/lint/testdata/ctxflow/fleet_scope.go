// The fleet front door is part of the serving tier: proxy handlers
// and the prober's ctx-carrying functions must propagate request and
// lifetime contexts instead of minting fresh ones.
//
//fixture:pkgpath soteria/internal/fleet
package lintfixture

import (
	"context"
	"net/http"
)

func proxyHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "derive from r.Context()"
	forward(ctx)
}

func probeRound(ctx context.Context) {
	fresh := context.TODO() // want "derive from the ctx parameter"
	_ = fresh
}

func forward(ctx context.Context) { _ = ctx }

// A handler that forwards the request's own context is clean, as is a
// prober deriving a per-probe timeout from its parameter.
func proxyOK(w http.ResponseWriter, r *http.Request) {
	forward(r.Context())
}

func probeOK(ctx context.Context) {
	child, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	forward(child)
}

var (
	_ = proxyHandler
	_ = probeRound
	_ = proxyOK
	_ = probeOK
)
