// Handlers and ctx-carrying functions must not mint fresh contexts.
//
//fixture:pkgpath soteria/cmd/lintfixture
package lintfixture

import (
	"context"
	"net/http"
)

func handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "derive from r.Context()"
	work(ctx)
}

func workCtx(ctx context.Context, n int) int {
	inner := context.TODO() // want "derive from the ctx parameter"
	_ = inner
	return n
}

// work accepts a context, so callers that hand theirs over are clean.
func work(ctx context.Context) { _ = ctx }

// A handler that derives from the request is clean.
func handleOK(w http.ResponseWriter, r *http.Request) {
	work(r.Context())
}

var _ = handle
var _ = workCtx
var _ = handleOK
