// A handler on the serving tier calling the bare-context wrapper.
//
//fixture:file cmd/srv/main.go
package main

import (
	"net/http"

	"soteria/internal/core"
)

func handler(p *core.Pipeline) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p.Kick() // want "reaches context.Background/TODO"
	}
}

func main() {
	http.Handle("/kick", handler(&core.Pipeline{}))
}
