// A wrapper in internal/core that mints a bare context: callers on the
// serving tier that hold a context and call it are flagged through the
// calls-bare-context summary.
//
//fixture:file internal/core/pipeline.go
package core

import "context"

type Pipeline struct{}

// Kick runs detached work on a fresh background context. It neither
// accepts a context nor has a Ctx sibling, so only the fact store can
// tell callers it re-mints one.
func (p *Pipeline) Kick() {
	p.kickWith(context.Background())
}

func (p *Pipeline) kickWith(ctx context.Context) { _ = ctx }
