// Outside the serving tier (root package, internal/core, cmd tools)
// ctxflow does not apply: a data-prep helper with a context parameter
// may build its own background context for detached work.
package lintfixture

import (
	"context"
	"net/http"
)

func detached(ctx context.Context) context.Context {
	return context.Background()
}

func offTierHandler(w http.ResponseWriter, r *http.Request) {
	_ = context.TODO()
}

var _ = detached
var _ = offTierHandler
