// Calling a function that has a context-accepting sibling drops the
// caller's context.
//
//fixture:pkgpath soteria/cmd/lintfixture2
package lintfixture

import (
	"context"
	"net/http"
)

type queue struct{}

func (q *queue) Submit(n int) int { return n }

func (q *queue) SubmitCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func enqueue(n int) int { return n }

func enqueueCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func serve(w http.ResponseWriter, r *http.Request) {
	var q queue
	q.Submit(1)                 // want "call SubmitCtx"
	enqueue(2)                  // want "call enqueueCtx"
	q.SubmitCtx(r.Context(), 3) // passing it through is clean
	enqueueCtx(r.Context(), 4)  // likewise
}

// Outside a handler or ctx function nothing is checked: there is no
// context in hand to propagate.
func batch() {
	var q queue
	q.Submit(5)
	enqueue(6)
}

var _ = serve
var _ = batch
