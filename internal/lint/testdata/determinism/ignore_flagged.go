//fixture:pkgpath soteria/internal/core

package fixture

import "time"

// Valid //lint:ignore directives suppress on the same line or the line
// below; an unsuppressed control keeps the analyzer honest.
func suppressedInline() {
	_ = time.Now() //lint:ignore determinism startup banner timestamp, never reaches the model
}

func suppressedAbove() {
	//lint:ignore determinism log line only, not model input
	_ = time.Now()
}

func unsuppressed() {
	_ = time.Now() // want "time.Now reads the wall clock"
}
