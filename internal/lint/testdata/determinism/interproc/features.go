// An in-scope package calling the clock-tainted helper: clean to the
// syntactic rules (no direct time.Now here), caught by the fact store.
//
//fixture:file internal/features/features.go
package features

import "soteria/internal/timeutil"

// BuildID folds a wall-clock stamp into a feature artifact — exactly
// the bug class that breaks bit-identical reproduction.
func BuildID(seed int64) int64 {
	return seed ^ timeutil.Stamp() // want "reaches a wall-clock read"
}
