// A helper package OUTSIDE the determinism scope whose innocuous-
// looking API reads the wall clock two hops down. The syntactic rule
// never sees it; the summary-driven rule follows the chain.
//
//fixture:file internal/timeutil/timeutil.go
package timeutil

import "time"

// Stamp returns a run identifier. Nothing in the name says "clock".
func Stamp() int64 { return stampImpl() }

func stampImpl() int64 { return nowUnix() }

func nowUnix() int64 { return time.Now().UnixNano() }
