//fixture:pkgpath soteria/internal/evalx

package fixture

// Order-sensitive accumulation under map iteration: float and string
// accumulators, unsorted output appends, and writes reached through
// nested loops inside the map-range body.
func accumulate(m map[string]float64) (float64, string, []string) {
	sum := 0.0
	names := ""
	var keys []string
	for k, v := range m {
		sum += v               // want "floating-point accumulation"
		names = names + k      // want "string accumulation"
		keys = append(keys, k) // want "append to \"keys\" under map iteration order"
	}
	return sum, names, keys
}

func intoMap(m map[string]float64, totals map[int]float64) {
	for k, v := range m {
		totals[len(k)] += v // want "floating-point accumulation"
	}
}

func nested(ms map[int][]float64, out []float64) {
	for _, vs := range ms {
		for i, v := range vs {
			out[i%len(out)] *= v // want "floating-point accumulation"
		}
	}
}
