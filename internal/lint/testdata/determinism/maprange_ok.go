//fixture:pkgpath soteria/internal/ngram

package fixture

import "sort"

// Integer accumulation is order-free.
func histogram(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] += v
	}
	return out
}

// Collect-then-sort is the sanctioned pattern for map iteration.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedPairs(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// A float accumulator declared inside the range body resets every
// iteration, so its value never depends on map order.
func rowSums(m map[string][]float64, sums map[string]float64) {
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		sums[k] = s
	}
}
