//fixture:pkgpath soteria/internal/nn

package fixture

import "math/rand"

// Global math/rand calls draw from the unseeded shared source.
func noise(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rand.Float64() // want "rand.Float64 uses the unseeded global source"
	}
	rand.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] }) // want "rand.Shuffle uses the unseeded global source"
	_ = rand.Intn(n)                                                           // want "rand.Intn uses the unseeded global source"
	return out
}
