//fixture:pkgpath soteria/internal/malgen

package fixture

import (
	"math/rand"
	"time"
)

// Out of determinism scope: malgen is not a model-affecting package, so
// wall-clock and global-rand use is not flagged here.
func jitter(n int) (time.Time, int) {
	return time.Now(), rand.Intn(n)
}
