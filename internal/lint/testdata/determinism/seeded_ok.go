//fixture:pkgpath soteria/internal/walk

package fixture

import "math/rand"

// A locally seeded *rand.Rand is the sanctioned source of randomness:
// only the package-level global functions are flagged.
func walk(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}
