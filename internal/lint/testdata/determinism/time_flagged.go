//fixture:pkgpath soteria/internal/features

package fixture

import "time"

// Wall-clock reads inside model-affecting code make extraction output
// depend on when it ran.
func stamps() time.Duration {
	start := time.Now()   // want "time.Now reads the wall clock"
	_ = time.Since(start) // want "time.Since reads the wall clock"
	_ = time.Until(start) // want "time.Until reads the wall clock"
	return time.Second
}
