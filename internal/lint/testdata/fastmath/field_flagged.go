package fixture

// Serialized structs must not persist fast-mode state: an exported
// Fast* field rides along with the json-tagged fields whether or not
// it is tagged itself.
type persistedConfig struct {
	Epochs   int  `json:"epochs"`
	FastMode bool `json:"fastMode"` // want "serialized struct persistedConfig carries fast-mode field FastMode"
}

type persistedState struct {
	Weights []float64 `json:"weights"`
	UseFast bool      // want "serialized struct persistedState carries fast-mode field UseFast"
}
