// A fast-mode toggle hidden behind two helper hops: no
// training-family function touches it directly, so the syntactic
// containment rules pass; the summary-driven rule follows the chain
// from the Fit root.
//
//fixture:file internal/nnx/net.go
package nnx

type Net struct {
	fastInfer bool
}

func (n *Net) SetFastInference(on bool) { n.fastInfer = on }

// warm looks like harmless setup; enable is the second hop.
func warm(n *Net)   { enable(n) }
func enable(n *Net) { n.SetFastInference(true) }
