// The training root: calls only the innocuous-looking warm helper.
//
//fixture:file internal/nnx/train.go
package nnx

// Fit is a training-family root; reaching a fast toggle through warm
// is the violation the whole-repo facts expose.
func Fit(n *Net, epochs int) {
	warm(n) // want "reaches a fast-mode toggle"
	for i := 0; i < epochs; i++ {
		_ = i
	}
}
