package fixture

// model mirrors the repository's fast-mode accessor family (each
// fixture file is loaded as its own package).
type model struct {
	fastInfer bool
}

func (m *model) SetFastInference(on bool) { m.fastInfer = on }
func (m *model) FastInference() bool      { return m.fastInfer }

// Serving entry points may toggle fast mode freely, a json:"-" tag
// keeps a flag out of persistence, unexported flags never serialize,
// and structs that serialize nothing carry no contract.
func Serve(m *model) {
	m.SetFastInference(true)
	if m.FastInference() {
		m.fastInfer = true
	}
}

func run(m *model) {
	m.SetFastInference(true)
}

type servingOptions struct {
	Epochs   int  `json:"epochs"`
	FastMode bool `json:"-"`
	fast     bool
}

type runtimeFlags struct {
	FastMode bool
	Verbose  bool
}

// A suppressed exception stays documented in place.
func TrainWarm(m *model) {
	//lint:ignore fastmath benchmark harness trains a throwaway model in fast mode on purpose
	m.SetFastInference(true)
}

var _ = servingOptions{}
var _ = runtimeFlags{}
