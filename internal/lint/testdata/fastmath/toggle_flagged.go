package fixture

// A model stand-in with the repository's fast-mode accessor family.
type model struct {
	fast      bool
	fastInfer bool
}

func (m *model) SetFastInference(on bool) { m.fastInfer = on }
func (m *model) FastInference() bool      { return m.fastInfer }

var global model

// Training/persistence-family functions must not touch the toggles.
func Train(m *model) {
	m.SetFastInference(true) // want "SetFastInference must not be reached from Train"
}

func FitEpoch(m *model) {
	if m.FastInference() { // want "FastInference must not be reached from FitEpoch"
		return
	}
}

func LoadModel(m *model) {
	m.fastInfer = false // want "assignment to fast-mode flag \"fastInfer\" inside LoadModel"
}

func SaveModel(m *model) {
	m.fast = true // want "assignment to fast-mode flag \"fast\" inside SaveModel"
}

func init() {
	global.SetFastInference(true) // want "SetFastInference must not be reached from init"
}
