//fixture:pkgpath soteria/internal/nn

// Self-contained stand-ins for the real nn package: what matters to the
// analyzer is that NewMatrix and Matrix.Clone resolve to objects in
// package path soteria/internal/nn.
package nn

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Clone is itself built on NewMatrix; it is not a Forward/Backward body,
// so the constructor call inside it is fine.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

type leakyLayer struct {
	out *Matrix
}

func (l *leakyLayer) Forward(x *Matrix, train bool) *Matrix {
	if !train {
		return NewMatrix(x.Rows, x.Cols) // want "NewMatrix inside Forward"
	}
	return x.Clone() // want "Matrix.Clone inside Forward"
}

func (l *leakyLayer) Backward(grad *Matrix) *Matrix {
	return NewMatrix(grad.Rows, grad.Cols) // want "NewMatrix inside Backward"
}

// newScratch is a helper, not a hot-path body: allocating here is the
// caller's problem, not this analyzer's.
func (l *leakyLayer) newScratch(rows, cols int) *Matrix {
	return NewMatrix(rows, cols)
}
