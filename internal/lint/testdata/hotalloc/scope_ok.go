// No pkgpath directive: this file analyzes under the default fixture
// path, outside internal/nn, where Forward/Backward carry no workspace
// contract and the analyzer stays silent.
package fixture

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

type outsideLayer struct{}

func (o *outsideLayer) Forward(x *Matrix, train bool) *Matrix {
	return NewMatrix(x.Rows, x.Cols)
}

func (o *outsideLayer) Backward(grad *Matrix) *Matrix {
	return NewMatrix(grad.Rows, grad.Cols)
}
