//fixture:pkgpath soteria/internal/nn

package nn

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

func ensure(slot **Matrix, rows, cols int) *Matrix {
	if *slot == nil || (*slot).Rows != rows || (*slot).Cols != cols {
		*slot = NewMatrix(rows, cols)
	}
	return *slot
}

type wsLayer struct {
	out *Matrix
	dx  *Matrix
}

// The sanctioned pattern: training passes reuse persistent workspace
// buffers through ensure, which amortizes its one NewMatrix across
// every subsequent minibatch.
func (l *wsLayer) Forward(x *Matrix, train bool) *Matrix {
	if !train {
		//lint:ignore hotalloc standalone eval outside a Network allocates by design; the pooled path is PredictInto
		return NewMatrix(x.Rows, x.Cols)
	}
	return ensure(&l.out, x.Rows, x.Cols)
}

func (l *wsLayer) Backward(grad *Matrix) *Matrix {
	return ensure(&l.dx, grad.Rows, grad.Cols)
}
