// Mixing sync/atomic access with plain access on the same word.
package lintfixture

import "sync/atomic"

type stats struct {
	hits   uint64
	misses uint64
}

func record(s *stats) {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddUint64(&s.misses, 1)
}

func snapshot(s *stats) (uint64, uint64) {
	h := atomic.LoadUint64(&s.hits)
	m := s.misses // want "accessed with sync/atomic elsewhere"
	return h, m
}

var _ = record
var _ = snapshot
