// Sync-bearing values passed by value: receivers, params, results.
package lintfixture

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

func (g Guarded) Bump() { // want "value receiver"
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func useGuarded(g Guarded) int { // want "passed by value"
	return g.n
}

func makeGuarded() Guarded { // want "passed by value"
	var g Guarded
	return g
}

// Pointer forms are fine on all three positions.
func (g *Guarded) BumpPtr()        { g.mu.Lock(); g.n++; g.mu.Unlock() }
func useGuardedPtr(g *Guarded) int { return g.n }
func makeGuardedPtr() *Guarded     { return new(Guarded) }

var _ = useGuarded
var _ = makeGuarded
var _ = useGuardedPtr
var _ = makeGuardedPtr
