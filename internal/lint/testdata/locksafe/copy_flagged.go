// Copy assignments and range copies of sync-bearing values.
package lintfixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type table struct {
	rows [4]counter
}

func copies(src *counter, all []counter, tbl *table) {
	fresh := counter{} // constructing a fresh value is fine
	dup := *src        // want "copies a value"
	one := all[0]      // want "copies a value"
	row := tbl.rows[1] // want "copies a value"
	again := fresh     // want "copies a value"
	_, _, _, _ = dup, one, row, again
}

func ranges(all []counter) int {
	total := 0
	for _, c := range all { // want "range value copies"
		total += c.n
	}
	for i := range all { // index form shares, never copies
		total += all[i].n
	}
	return total
}

var _ = copies
var _ = ranges
