// Clean synchronization patterns locksafe must not flag.
package lintfixture

import (
	"sync"
	"sync/atomic"
)

type safeCache struct {
	mu   sync.Mutex
	hits atomic.Uint64
	m    map[string]int
}

// Pointer receiver, pointer params, atomic wrapper types used through
// their methods: all clean.
func (c *safeCache) Get(key string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits.Add(1)
	v, ok := c.m[key]
	return v, ok
}

func newSafeCache() *safeCache {
	return &safeCache{m: make(map[string]int)}
}

// Sharing through pointers is not copying.
func share(c *safeCache) *safeCache {
	alias := c
	return alias
}

var _ = newSafeCache
var _ = share
