package fixture

import (
	"soteria/internal/obs"
	"soteria/internal/par"
)

// The sanctioned pattern: observe at chunk granularity, outside the
// worker-loop body. One histogram observation covers the whole fan-out.
func chunkGranularity(h *obs.Histogram, c *obs.Counter, n int, out []float64) {
	t := h.Start()
	par.For(n, func(i int) {
		out[i] = float64(i)
	})
	h.Stop(t)
	c.Add(uint64(n))
}

// par.Overlap stage closures are chunk-granular by construction — each
// runs once per chunk, not once per sample — so they are the sanctioned
// timing point and deliberately outside the analyzer's scope.
func overlapStages(h *obs.Histogram, n int) {
	par.Overlap(n, 2,
		func(i, slot int) {
			t := h.Start()
			_ = slot
			h.Stop(t)
		},
		func(i, slot int) {
			h.Observe(float64(i))
		})
}

// A Forward method outside internal/nn carries no kernel contract; the
// analyzer stays silent.
type meteredStage struct {
	calls *obs.Counter
}

func (m *meteredStage) Forward(x []float64, train bool) []float64 {
	m.calls.Inc()
	return x
}

// A justified exception is suppressed in place.
func justified(c *obs.Counter, n int, out []float64) {
	par.For(n, func(i int) {
		out[i] = float64(i)
		//lint:ignore obshot one-shot debug counter, removed with the experiment
		c.Inc()
	})
}
