//fixture:pkgpath soteria/internal/nn

// A stand-in for the real nn package: what matters to the analyzer is
// that the Forward/Backward declarations live under the import path
// soteria/internal/nn while the metric calls resolve to internal/obs.
package nn

import "soteria/internal/obs"

type Matrix struct {
	Rows, Cols int
	Data       []float64
}

type countedLayer struct {
	passes  *obs.Counter
	kernelT *obs.Histogram
}

// Forward and Backward run once per layer per minibatch — the compute
// kernel. Metrics here cost atomics and clock reads in the innermost
// training loop; epoch-level TrainHooks are the sanctioned point.
func (l *countedLayer) Forward(x *Matrix, train bool) *Matrix {
	t := l.kernelT.Start() // want "Histogram.Start inside Forward"
	l.passes.Inc()         // want "Counter.Inc inside Forward"
	l.kernelT.Stop(t)      // want "Histogram.Stop inside Forward"
	return x
}

func (l *countedLayer) Backward(grad *Matrix) *Matrix {
	l.passes.Inc() // want "Counter.Inc inside Backward"
	return grad
}

// Other methods in the package are not kernel bodies.
func (l *countedLayer) Summary() uint64 {
	return l.passes.Value()
}
