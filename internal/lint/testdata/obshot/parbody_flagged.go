package fixture

import (
	"soteria/internal/obs"
	"soteria/internal/par"
)

// A metric operation inside a par body runs once per work item on every
// pool worker: the lock-free atomic becomes a cross-core cache-line
// fight, and a timer would read the clock per item.
func perItemCounter(c *obs.Counter, n int, out []float64) {
	par.For(n, func(i int) {
		out[i] = float64(i)
		c.Inc() // want "Counter.Inc inside a par.For body"
	})
}

func perItemHistogram(h *obs.Histogram, vals []float64) {
	par.ForChunked(len(vals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h.Observe(vals[i]) // want "Histogram.Observe inside a par.ForChunked body"
		}
	})
}

func perItemTimer(h *obs.Histogram, n int, out []float64) {
	par.ForChunkedGrain(n, 8, func(lo, hi int) {
		t := h.Start() // want "Histogram.Start inside a par.ForChunkedGrain body"
		for i := lo; i < hi; i++ {
			out[i] = float64(i)
		}
		h.Stop(t) // want "Histogram.Stop inside a par.ForChunkedGrain body"
	})
}

// Nested literals still execute once per work item.
func nestedLit(g *obs.Gauge, n int, out []float64) {
	par.For(n, func(i int) {
		record := func(v float64) {
			g.Set(v) // want "Gauge.Set inside a par.For body"
		}
		out[i] = float64(i)
		record(out[i])
	})
}

// Registering inside the body is just as hot: a mutex acquisition and a
// map lookup per item.
func perItemRegistration(r *obs.Registry, n int) {
	par.For(n, func(i int) {
		r.Counter("items").Inc() // want "Registry.Counter inside a par.For body" "Counter.Inc inside a par.For body"
	})
}
