//fixture:pkgpath soteria/internal/features

package fixture

import (
	"fmt"
	"strings"

	"soteria/internal/ngram"
)

// The sanctioned API: ngram.Pack / ngram.ParseKey, plain comparisons
// against the layout constants, and non-pipe string work.
func sanctioned(labels []int, s string) (uint64, []int, error) {
	for _, l := range labels {
		if l > ngram.MaxPackedLabel {
			return 0, nil, fmt.Errorf("label %d does not pack", l)
		}
	}
	if len(labels) > ngram.MaxPackedN {
		return 0, nil, fmt.Errorf("gram too long")
	}
	parsed, err := ngram.ParseKey(s)
	if err != nil {
		return 0, nil, err
	}
	_ = strings.Join([]string{"a", "b"}, ",")
	_ = fmt.Sprintf("%d-%d", len(labels), len(parsed))
	return ngram.Pack(labels), parsed, nil
}
