//fixture:pkgpath soteria/internal/labeling

package fixture

import (
	"strconv"
	"strings"
)

// Splicing or splitting pipe-separated gram keys by hand bypasses
// ngram's canonical key form.
func keyOf(labels []int) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = strconv.Itoa(l)
	}
	return strings.Join(parts, "|") // want "strings.Join with \"|\""
}

func splitKey(s string) []string {
	return strings.Split(s, "|") // want "strings.Split with \"|\""
}

func headOf(s string) string {
	head, _, _ := strings.Cut(s, "|") // want "strings.Cut with \"|\""
	return head
}
