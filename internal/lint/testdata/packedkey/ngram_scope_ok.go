//fixture:pkgpath soteria/internal/ngram

package fixture

import "soteria/internal/ngram"

// The ngram package itself implements the layout, so bit manipulation
// against its own constants is not flagged there.
func insideNgram(key uint64, j int) int {
	return int(key>>(uint(j)*ngram.PackBits)) & int(ngram.MaxPackedLabel)
}
