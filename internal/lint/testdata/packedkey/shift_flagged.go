//fixture:pkgpath soteria/internal/features

package fixture

import "soteria/internal/ngram"

// Hand-rolled packing/unpacking against ngram's layout constants must go
// through ngram.Pack / ngram.Unpack instead.
func handPack(labels []int) uint64 {
	var key uint64
	for j, lab := range labels {
		key |= uint64(lab) << (uint(j) * ngram.PackBits) // want "manual packed-key bit manipulation"
	}
	return key
}

func handUnpack(key uint64) []int {
	out := make([]int, 0, ngram.MaxPackedN)
	for j := 0; j < ngram.MaxPackedN; j++ {
		out = append(out, int(key>>(uint(j)*ngram.PackBits))&ngram.MaxPackedLabel) // want "manual packed-key bit manipulation"
	}
	return out
}
