//fixture:pkgpath soteria/internal/walk

package fixture

import "fmt"

// A %d|%d format string splices a pipe-separated gram key by hand.
func gramID(a, b, c int) string {
	return fmt.Sprintf("%d|%d|%d", a, b, c) // want "splices a pipe-separated gram key"
}
