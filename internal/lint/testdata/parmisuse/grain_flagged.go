package fixture

import "soteria/internal/par"

// ForChunkedGrain bodies are checked exactly like ForChunked bodies:
// the function argument moves to the third position but the contract is
// the same.
func grainSharedSum(xs []float64) float64 {
	sum := 0.0
	par.ForChunkedGrain(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want "assigns to captured variable \"sum\""
		}
	})
	return sum
}

func grainPerIndex(xs, out []float64) {
	par.ForChunkedGrain(len(xs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
		}
	})
}
