package fixture

import "soteria/internal/par"

// Per-index-slot writes are the sanctioned pattern: every write lands in
// a slot addressed through the worker's own arguments (or locals derived
// from them), so workers never collide.
func good(xs, out []float64, rows [][]float64, wc int) {
	par.For(len(xs), func(i int) {
		out[i] = xs[i] * 2
		for w := 0; w < wc; w++ {
			r := i*wc + w
			rows[r%len(rows)][0] = xs[i]
		}
	})
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] += xs[i]
		}
	}
	par.ForChunked(len(xs), body)
}
