package fixture

import "soteria/internal/par"

// Loop variables of enclosing for/range statements captured inside a
// par.For/ForChunked body race with the outer loop's next iteration.
func perRow(rows [][]float64) {
	for ri := range rows {
		par.For(len(rows[ri]), func(j int) {
			rows[ri][j] *= 2 // want "captures enclosing loop variable \"ri\""
		})
	}
}

func epochs(data []float64) {
	for e := 0; e < 3; e++ {
		par.ForChunked(len(data), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] += float64(e) // want "captures enclosing loop variable \"e\""
			}
		})
	}
}

func scale(mats [][]float64, factors []float64) {
	for _, f := range factors {
		par.For(len(mats), func(i int) {
			row := mats[i]
			for j := range row {
				row[j] *= f // want "captures enclosing loop variable \"f\""
			}
		})
	}
}
