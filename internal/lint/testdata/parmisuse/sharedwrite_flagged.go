package fixture

import "soteria/internal/par"

type stats struct{ total float64 }

// Writes to captured state that are not routed through the worker's own
// index arguments race across workers.
func bad(xs []float64, out []float64, counts map[int]int, st *stats) {
	sum := 0.0
	par.For(len(xs), func(i int) {
		sum += xs[i]     // want "assigns to captured variable \"sum\""
		counts[i%4]++    // want "writes to captured map \"counts\""
		out[0] = xs[i]   // want "does not depend on the worker's index arguments"
		st.total = xs[i] // want "writes to field of captured \"st\""
	})
}

func badPtr(xs []float64, total *float64) {
	par.ForChunked(len(xs), func(lo, hi int) {
		*total = xs[lo] // want "writes through captured pointer \"total\""
	})
}
