package fixture

import (
	"testing"

	"soteria/internal/par"
)

// t.Errorf is goroutine-safe and allowed inside par bodies; t.Fatal is
// fine outside them. Collect-then-Fatal is the sanctioned pattern.
func okErrors(t *testing.T, xs []int) {
	t.Helper()
	if len(xs) == 0 {
		t.Fatal("empty input")
	}
	errs := make([]error, len(xs))
	par.For(len(xs), func(i int) {
		if xs[i] < 0 {
			t.Errorf("negative at %d", i)
		}
		errs[i] = nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
