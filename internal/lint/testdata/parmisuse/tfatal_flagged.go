package fixture

import (
	"testing"

	"soteria/internal/par"
)

// t.Fatal and friends must run on the test goroutine; inside a par body
// they only kill the worker.
func parallelCheck(t *testing.T, xs []int) {
	par.For(len(xs), func(i int) {
		if xs[i] < 0 {
			t.Fatalf("negative at %d", i) // want "t.Fatalf inside a par.For body"
		}
		if xs[i] > 100 {
			t.Skip("out of range") // want "t.Skip inside a par.For body"
		}
	})
}

func chunkCheck(b *testing.B, xs []int) {
	par.ForChunked(len(xs), func(lo, hi int) {
		if lo > hi {
			b.FailNow() // want "b.FailNow inside a par.ForChunked body"
		}
	})
}
