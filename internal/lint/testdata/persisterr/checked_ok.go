//fixture:pkgpath soteria/internal/core

package fixture

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"hash"
	"os"
	"strings"
)

// The sanctioned shapes: checked Close on the write path, explicit
// `_ =` discard when a prior error outranks it, defer Close on a
// read-only file, and always-nil in-memory writers.
func saveGood(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(v); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func loadGood(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}

func render(items []string) string {
	var sb strings.Builder
	var buf bytes.Buffer
	for _, it := range items {
		sb.WriteString(it)
		buf.WriteString(it)
	}
	return sb.String() + buf.String()
}

// hash.Hash's Write is contractually error-free ("It never returns an
// error"), so digest construction stays unflagged.
func digest(parts [][]byte) [32]byte {
	var h hash.Hash = sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}
