//fixture:pkgpath soteria/internal/disasm

package fixture

import (
	"fmt"
	"os"
)

// defer f.Close() on a file opened for writing: the Close error is the
// only signal that buffered data reached the disk.
func export(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on \"f\" discards the error"
	if _, err := f.Write(data); err != nil {
		return err
	}
	return nil
}

func exportAppend(path, line string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on \"f\" discards the error"
	_, err = fmt.Fprintln(f, line)
	return err
}
