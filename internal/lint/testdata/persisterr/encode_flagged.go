//fixture:pkgpath soteria/internal/core

package fixture

import (
	"encoding/json"
	"os"
)

// Discarded errors on the save path: a full disk or closed pipe would
// pass silently and leave a truncated model on disk.
func saveBad(path string, v any) {
	f, _ := os.Create(path)
	enc := json.NewEncoder(f)
	enc.Encode(v) // want "error returned by Encode is discarded"
	f.Close()     // want "error returned by Close is discarded"
}
