//fixture:pkgpath soteria/cmd/fixturetool

package fixture

import (
	"bufio"
	"os"
)

// Deferred Flush always discards its error, and WriteString on a bufio
// writer reports downstream failures that must be checked.
func dump(lines []string) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush() // want "deferred Flush discards its error"
	for _, l := range lines {
		w.WriteString(l) // want "error returned by WriteString is discarded"
	}
}
