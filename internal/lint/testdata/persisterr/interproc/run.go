// Discarding the wrapper's error: invisible to the name-based rule,
// caught by the forwards-persist-error summary.
//
//fixture:file internal/core/run.go
package core

import "os"

func runCheckpoint(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	checkpoint(f) // want "forwards a persistence error"
	return nil
}

// Checking the wrapper's error is clean.
func runCheckpointOK(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return checkpoint(f)
}

var _ = runCheckpoint
var _ = runCheckpointOK
