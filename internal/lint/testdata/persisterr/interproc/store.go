// A persistence error laundered through a wrapper whose name is not in
// the persist family: the syntactic rule keys on callee names, so
// flushState hides the discarded Close error until summaries track it.
//
//fixture:file internal/core/store.go
package core

import "os"

// flushState forwards Close's error under a neutral name.
func flushState(f *os.File) error {
	return f.Close()
}

// checkpoint forwards it one more hop.
func checkpoint(f *os.File) error {
	return flushState(f)
}
