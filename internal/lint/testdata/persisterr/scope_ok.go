//fixture:pkgpath soteria/internal/evalx

package fixture

import "os"

// evalx is outside persisterr's persistence scope, so even a bare Close
// is not flagged here.
func closeQuietly(f *os.File) {
	f.Close()
}
