// Scope contrast: the same discarded Rename/Truncate/Close calls in a
// package outside the persistence scope produce no diagnostics — the
// analyzer polices model/log durability, not every file operation in
// the repo.
//
//fixture:file internal/walk/scratch.go
package walk

import "os"

func scratchCleanup(tmp, dst string, f *os.File) {
	os.Rename(tmp, dst)
	f.Truncate(0)
	f.Close()
}

var _ = scratchCleanup
