// The store package is persistence-critical: its record log survives
// crashes only because every rotation step (write temp, sync, close,
// rename) checks its error. This fixture pins the store scope plus the
// Rename/Truncate family members added for it.
//
//fixture:file internal/store/rotate.go
package store

import "os"

// rotateBad drops every error that decides whether the rotated log is
// durable: the snapshot may be half-written, unsynced, and the rename
// may have failed with the old log already gone.
func rotateBad(tmp, dst string, data []byte) {
	f, _ := os.Create(tmp)
	f.Write(data)       // want "error returned by Write is discarded"
	f.Sync()            // want "error returned by Sync is discarded"
	f.Close()           // want "error returned by Close is discarded"
	os.Rename(tmp, dst) // want "error returned by Rename is discarded"
}

// truncateBad recovers a corrupt tail but discards the truncation
// result, leaving the garbage frame in place on failure.
func truncateBad(f *os.File, good int64) {
	f.Truncate(good) // want "error returned by Truncate is discarded"
}

// appendBad defers Close on an append-opened log file: the deferred
// error is the only signal the appended record reached disk.
func appendBad(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred Close on \"f\" discards the error"
	_, err = f.Write(rec)
	return err
}

// rotateGood is the sanctioned shape: every durability step checked,
// the temp file removed (best effort, not persist-family) on failure.
func rotateGood(tmp, dst string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

var (
	_ = rotateBad
	_ = truncateBad
	_ = appendBad
	_ = rotateGood
)
