package lint

import (
	"go/ast"
	"go/types"
)

// pkgNameOf returns the imported package a qualified identifier refers
// to, or nil when expr is not a package qualifier.
func pkgNameOf(info *types.Info, expr ast.Expr) *types.PkgName {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// pkgFunc matches a call/selector X.Sel where X qualifies the package
// with import path pkgPath, returning the selected name.
func pkgFunc(info *types.Info, sel *ast.SelectorExpr, pkgPath string) (string, bool) {
	pn := pkgNameOf(info, sel.X)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// parentMap records each node's syntactic parent within a file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// rootIdent peels indexing, selection, parens, and derefs off an
// assignable expression down to its base identifier (nil if the base is
// not an identifier, e.g. a call result).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// usesObject reports whether any identifier inside node resolves to obj.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isString reports whether t's underlying type is a string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}
