package malgen

import (
	"fmt"
	"math/rand"

	"soteria/internal/isa"
)

// builder assembles a program from control-flow motifs while keeping an
// exact count of emitted blocks. All motifs lay blocks out so that every
// conditional's Else branch and every call's return continuation is the
// next block in layout — no assembler trampolines — which keeps program
// blocks in 1:1 correspondence with disassembled CFG nodes.
//
// Motifs take an explicit entry label (the label of the first block they
// emit) and a continuation label (where control goes when the motif
// completes); recipes chain motifs by passing each motif's continuation
// label as the next motif's entry.
type builder struct {
	rng    *rand.Rand
	main   []*isa.Block    // main function, layout order
	funcs  []*isa.Function // extra functions (call targets)
	nlabel int

	// Instruction-mix biases, set per family.
	sysFrac   float64  // fraction of filler instructions that are syscalls
	sysRange  [2]int32 // inclusive syscall-number range (family API profile)
	arithOps  []isa.Opcode
	bodyRange [2]int // min/max filler instructions per block
}

func newBuilder(rng *rand.Rand) *builder {
	return &builder{
		rng:       rng,
		sysFrac:   0.1,
		sysRange:  [2]int32{0, 63},
		arithOps:  []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd, isa.OpOr, isa.OpMov, isa.OpMovI},
		bodyRange: [2]int{1, 4},
	}
}

func (b *builder) label(hint string) string {
	b.nlabel++
	return fmt.Sprintf("%s_%d", hint, b.nlabel)
}

// body generates filler straight-line instructions with the family's
// instruction mix.
func (b *builder) body() []isa.Inst {
	n := b.bodyRange[0]
	if d := b.bodyRange[1] - b.bodyRange[0]; d > 0 {
		n += b.rng.Intn(d + 1)
	}
	out := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		if b.rng.Float64() < b.sysFrac {
			span := int(b.sysRange[1]-b.sysRange[0]) + 1
			out = append(out, isa.Inst{Op: isa.OpSys, Imm: b.sysRange[0] + int32(b.rng.Intn(span))})
			continue
		}
		op := b.arithOps[b.rng.Intn(len(b.arithOps))]
		in := isa.Inst{Op: op, R1: uint8(b.rng.Intn(8)), R2: uint8(b.rng.Intn(8))}
		if op == isa.OpMovI {
			in.R2 = 0 // movi has no second register operand
			in.Imm = int32(b.rng.Intn(1 << 12))
		}
		out = append(out, in)
	}
	return out
}

// blocksEmitted counts every block so far, including extra functions.
func (b *builder) blocksEmitted() int {
	n := len(b.main)
	for _, f := range b.funcs {
		n += len(f.Blocks)
	}
	return n
}

// withCmp appends a compare so conditional terminators have defined flags.
func (b *builder) withCmp(body []isa.Inst) []isa.Inst {
	return append(body, isa.Inst{
		Op: isa.OpCmp, R1: uint8(b.rng.Intn(8)), R2: uint8(b.rng.Intn(8)),
	})
}

func (b *builder) condOp() isa.Opcode {
	ops := []isa.Opcode{isa.OpJz, isa.OpJnz, isa.OpJlt, isa.OpJge}
	return ops[b.rng.Intn(len(ops))]
}

// --- Motifs -----------------------------------------------------------

// chain emits n blocks in sequence from entry, ending with a jump to
// cont. Emits n blocks (n >= 1).
func (b *builder) chain(entry string, n int, cont string) {
	lbl := entry
	for i := 0; i < n; i++ {
		to := cont
		next := ""
		if i+1 < n {
			next = b.label("c")
			to = next
		}
		b.main = append(b.main, &isa.Block{Label: lbl, Body: b.body(), Term: isa.TermJump{To: to}})
		lbl = next
	}
}

// loop emits a loop: a header (labeled entry) with a conditional exit to
// cont, a body chain of bodyLen blocks, and a back edge to the header.
// Emits bodyLen+1 blocks (bodyLen >= 1).
//
// Loops must terminate so generated binaries stay executable (the
// paper's practicality requirement). The header compares a counter
// (r15, incremented once per iteration in the first body block) against
// a fresh limit in r13; filler instructions only touch r0-r7, so the
// counter registers are never clobbered.
func (b *builder) loop(entry string, bodyLen int, cont string) {
	first := b.label("lb")
	limit := int32(2 + b.rng.Intn(4))
	header := b.body()
	header = append(header,
		isa.Inst{Op: isa.OpMovI, R1: 12, Imm: 1},
		isa.Inst{Op: isa.OpMovI, R1: 13, Imm: limit},
		isa.Inst{Op: isa.OpCmp, R1: 15, R2: 13},
	)
	b.main = append(b.main, &isa.Block{
		Label: entry,
		Body:  header,
		Term:  isa.TermCond{Op: isa.OpJge, To: cont, Else: first},
	})
	lbl := first
	for i := 0; i < bodyLen; i++ {
		body := b.body()
		if i == 0 {
			body = append(body, isa.Inst{Op: isa.OpAdd, R1: 15, R2: 12})
		}
		to := entry // back edge
		next := ""
		if i+1 < bodyLen {
			next = b.label("lb")
			to = next
		}
		b.main = append(b.main, &isa.Block{Label: lbl, Body: body, Term: isa.TermJump{To: to}})
		lbl = next
	}
}

// dispatch emits a command-dispatch motif: a chain of k conditional
// tests (first labeled entry) each branching to its handler; handlers
// are chains of handlerLen blocks that all jump to cont. The final test
// falls through to the first handler (the default command). Emits
// k*(1+handlerLen) blocks (k >= 1, handlerLen >= 1).
func (b *builder) dispatch(entry string, k, handlerLen int, cont string) {
	tests := make([]string, k)
	handlers := make([]string, k)
	tests[0] = entry
	for i := 1; i < k; i++ {
		tests[i] = b.label("d")
	}
	for i := range handlers {
		handlers[i] = b.label("h")
	}
	for i := 0; i < k; i++ {
		els := handlers[0]
		if i+1 < k {
			els = tests[i+1]
		}
		b.main = append(b.main, &isa.Block{
			Label: tests[i],
			Body:  b.withCmp(b.body()),
			Term:  isa.TermCond{Op: b.condOp(), To: handlers[i], Else: els},
		})
	}
	for i := 0; i < k; i++ {
		b.chain(handlers[i], handlerLen, cont)
	}
}

// branchTree emits a binary if/else tree of the given depth rooted at
// entry; every leaf jumps to cont. Emits 2^(depth+1)-1 blocks.
func (b *builder) branchTree(entry string, depth int, cont string) {
	if depth == 0 {
		b.main = append(b.main, &isa.Block{Label: entry, Body: b.body(), Term: isa.TermJump{To: cont}})
		return
	}
	left := b.label("t")
	right := b.label("t")
	b.main = append(b.main, &isa.Block{
		Label: entry,
		Body:  b.withCmp(b.body()),
		Term:  isa.TermCond{Op: b.condOp(), To: right, Else: left},
	})
	b.branchTree(left, depth-1, cont)
	b.branchTree(right, depth-1, cont)
}

// callSeq emits k call blocks (first labeled entry) in main; call i
// invokes a fresh function whose body is a chain of fnLen blocks ending
// in ret. Control continues at cont. Emits k*(1+fnLen) blocks.
func (b *builder) callSeq(entry string, k, fnLen int, cont string) {
	labels := make([]string, k)
	labels[0] = entry
	for i := 1; i < k; i++ {
		labels[i] = b.label("call")
	}
	for i := 0; i < k; i++ {
		fnEntry := b.emitFunc(fnLen)
		ret := cont
		if i+1 < k {
			ret = labels[i+1]
		}
		b.main = append(b.main, &isa.Block{
			Label: labels[i],
			Body:  b.body(),
			Term:  isa.TermCall{Target: fnEntry, Ret: ret},
		})
	}
}

// emitFunc creates a new function with a chain of n blocks ending in
// ret, returning its entry label. Emits n blocks (n >= 1).
func (b *builder) emitFunc(n int) string {
	name := b.label("fn")
	blocks := make([]*isa.Block, n)
	lbl := name
	for i := 0; i < n; i++ {
		blocks[i] = &isa.Block{Label: lbl, Body: b.body()}
		if i+1 < n {
			lbl = b.label("fb")
			blocks[i].Term = isa.TermJump{To: lbl}
		} else {
			blocks[i].Term = isa.TermRet{}
		}
	}
	b.funcs = append(b.funcs, &isa.Function{Name: name, Blocks: blocks})
	return name
}

// finish emits the final halt block (labeled last) and optionally a
// padding chain so the program reaches exactly target blocks. last is
// the continuation label the final motif already jumps to; when padding
// is needed, the chain is spliced in under that label.
func (b *builder) finish(target int, last string) (*isa.Program, error) {
	pad := target - b.blocksEmitted() - 1
	haltLabel := last
	if pad > 0 {
		haltLabel = b.label("halt")
		b.chain(last, pad, haltLabel)
	}
	b.main = append(b.main, &isa.Block{Label: haltLabel, Term: isa.TermHalt{}})

	p := &isa.Program{
		Funcs: append([]*isa.Function{{Name: "main", Blocks: b.main}}, b.funcs...),
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("malgen: generated invalid program: %w", err)
	}
	return p, nil
}
