// Package malgen generates the synthetic IoT sample corpus that stands
// in for the paper's dataset (13,798 malware binaries from CyberIOC and
// 3,016 benign binaries built from GitHub projects).
//
// Each generated sample is a real SOT-32 program — assembled to an SOTB
// binary and disassembled back into a CFG — so the entire Soteria
// pipeline (disassembly, labeling, walks, n-grams, detection,
// classification) runs on it unmodified. Family separability comes from
// structural motifs: each family's generator wires control flow the way
// that family's real samples do (command-dispatch bots, scanner loops,
// IRC ping loops, library-heavy benign call trees), and node-count
// distributions are anchored to the paper's Table III size statistics.
package malgen

import "fmt"

// Class is the sample class: benign or one of the paper's three IoT
// malware families.
type Class int

// Sample classes, in the paper's order.
const (
	Benign Class = iota
	Gafgyt
	Mirai
	Tsunami
)

// NumClasses is the number of sample classes.
const NumClasses = 4

// Classes lists all classes in canonical order.
var Classes = []Class{Benign, Gafgyt, Mirai, Tsunami}

var classNames = [...]string{"Benign", "Gafgyt", "Mirai", "Tsunami"}

// String returns the class name.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// SizeClass buckets samples by CFG node count, following the paper's
// small / medium / large targeted-sample selection (minimum, median and
// maximum node counts per class).
type SizeClass int

// Size classes.
const (
	Small SizeClass = iota
	Medium
	Large
)

// SizeClasses lists all size classes in canonical order.
var SizeClasses = []SizeClass{Small, Medium, Large}

var sizeNames = [...]string{"Small", "Medium", "Large"}

// String returns the size class name.
func (s SizeClass) String() string {
	if s < 0 || int(s) >= len(sizeNames) {
		return fmt.Sprintf("SizeClass(%d)", int(s))
	}
	return sizeNames[s]
}

// SizeStats anchors a class's node-count distribution: the paper's
// Table III reports the minimum, median and maximum CFG sizes of each
// class, which double as the small/medium/large targeted-sample sizes.
type SizeStats struct {
	Min    int
	Median int
	Max    int
}

// Nodes returns the anchor node count for a size class.
func (s SizeStats) Nodes(sz SizeClass) int {
	switch sz {
	case Small:
		return s.Min
	case Medium:
		return s.Median
	default:
		return s.Max
	}
}

// PaperSizes reproduces Table III's per-class node counts.
var PaperSizes = map[Class]SizeStats{
	Benign:  {Min: 10, Median: 50, Max: 443},
	Gafgyt:  {Min: 13, Median: 64, Max: 133},
	Mirai:   {Min: 12, Median: 48, Max: 235},
	Tsunami: {Min: 15, Median: 46, Max: 79},
}

// PaperCounts reproduces the Table II corpus composition. The malware
// counts follow the paper's 20% test-split sizes (Gafgyt 2,217; Mirai
// 473; Tsunami 52) scaled to full size; the remainder of the 13,798
// collected malware samples are those AVClass could not label
// (singletons), which the paper excludes from classification.
var PaperCounts = map[Class]int{
	Benign:  3016,
	Gafgyt:  11085,
	Mirai:   2365,
	Tsunami: 260,
}

// PaperUnlabeled is the number of collected malware samples AVClass
// leaves unlabeled in our reconstruction (13,798 minus the family
// totals above).
const PaperUnlabeled = 13798 - (11085 + 2365 + 260)
