package malgen

// Family recipes wire motifs the way each family's real samples do.
// These structural signatures are what make the synthetic corpus
// class-separable through Soteria's CFG pipeline, standing in for the
// real behavioural differences between the families:
//
//   - Benign (GitHub utilities): call-heavy library structure, branch
//     trees, long straight-line stretches, few loops, low syscall rate.
//   - Gafgyt (command bots): a large command-dispatch ladder with
//     per-command handlers, flooding loops. Gafgyt is deliberately the
//     most heterogeneous family (three sub-variants), mirroring the
//     paper's observation that Gafgyt carries the largest number of
//     discriminative features and is the only family with detector
//     false positives.
//   - Mirai (scanner/killer): tight scanning loops back to back, a long
//     credential-test conditional ladder, high syscall rate.
//   - Tsunami (IRC bot): a central keep-alive loop alternating with
//     small command dispatches.

// recipe emits motifs for one family into b, consuming at most
// target-1 blocks (one is reserved for the final halt), and returns the
// label the final motif continues to.
type recipe func(b *builder, target int) string

// remaining returns how many blocks the recipe may still emit.
func remaining(b *builder, target int) int {
	return target - b.blocksEmitted() - 1
}

func benignRecipe(b *builder, target int) string {
	b.sysFrac = 0.03
	b.sysRange = [2]int32{0, 15} // file/stdio profile
	b.bodyRange = [2]int{2, 5}
	cur := "entry"
	for {
		rem := remaining(b, target)
		if rem < 2 {
			break
		}
		cont := b.label("m")
		switch pick := b.rng.Intn(10); {
		case pick < 4 && rem >= 4: // call-heavy library structure
			k := 1 + b.rng.Intn(3)
			fnLen := 2 + b.rng.Intn(4)
			for k*(1+fnLen) > rem {
				if fnLen > 2 {
					fnLen--
				} else {
					k--
				}
			}
			if k < 1 {
				b.chain(cur, min(rem, 2), cont)
			} else {
				b.callSeq(cur, k, fnLen, cont)
			}
		case pick < 7 && rem >= 3: // branch tree
			depth := 1
			for (1<<(depth+2))-1 <= rem && depth < 3 {
				depth++
			}
			b.branchTree(cur, depth, cont)
		default: // straight-line stretch
			b.chain(cur, min(rem, 2+b.rng.Intn(5)), cont)
		}
		cur = cont
	}
	return cur
}

func gafgytRecipe(b *builder, target int) string {
	b.sysFrac = 0.15
	b.sysRange = [2]int32{24, 47} // raw-socket flood profile
	b.bodyRange = [2]int{1, 4}
	cur := "entry"
	variant := b.rng.Intn(3)

	// Signature motif: command-dispatch ladder sized to the sample.
	if rem := remaining(b, target); rem >= 6 {
		k := max(2, min(rem/3, 4+b.rng.Intn(8)))
		handlerLen := 1 + b.rng.Intn(2)
		for k*(1+handlerLen) > rem {
			k--
		}
		if k >= 1 {
			cont := b.label("m")
			b.dispatch(cur, k, handlerLen, cont)
			cur = cont
		}
	}
	for {
		rem := remaining(b, target)
		if rem < 2 {
			break
		}
		cont := b.label("m")
		switch variant {
		case 0: // dispatch-heavy: more small dispatches
			if rem >= 6 {
				k := 2 + b.rng.Intn(3)
				for k*2 > rem {
					k--
				}
				b.dispatch(cur, k, 1, cont)
			} else {
				b.chain(cur, min(rem, 1+b.rng.Intn(3)), cont)
			}
		case 1: // flooding loops
			if rem >= 3 {
				b.loop(cur, min(rem-1, 1+b.rng.Intn(4)), cont)
			} else {
				b.chain(cur, min(rem, 2), cont)
			}
		default: // benign-like call mix (the overlap that causes FPs)
			if rem >= 4 {
				fnLen := min(rem-1, 2+b.rng.Intn(3))
				b.callSeq(cur, 1, fnLen, cont)
			} else {
				b.chain(cur, min(rem, 2), cont)
			}
		}
		cur = cont
	}
	return cur
}

func miraiRecipe(b *builder, target int) string {
	b.sysFrac = 0.25
	b.sysRange = [2]int32{32, 55} // telnet-scan profile
	b.bodyRange = [2]int{1, 3}
	cur := "entry"

	// Signature motif: credential-test ladder (dispatch with unit
	// handlers) straight out of the scanner.
	if rem := remaining(b, target); rem >= 6 {
		k := max(3, min(rem/3, 5+b.rng.Intn(6)))
		for k*2 > rem {
			k--
		}
		if k >= 1 {
			cont := b.label("m")
			b.dispatch(cur, k, 1, cont)
			cur = cont
		}
	}
	// Back-to-back tight scanning loops.
	for {
		rem := remaining(b, target)
		if rem < 2 {
			break
		}
		cont := b.label("m")
		if rem >= 3 && b.rng.Intn(10) < 8 {
			b.loop(cur, min(rem-1, 1+b.rng.Intn(3)), cont)
		} else {
			b.chain(cur, min(rem, 1+b.rng.Intn(2)), cont)
		}
		cur = cont
	}
	return cur
}

func tsunamiRecipe(b *builder, target int) string {
	b.sysFrac = 0.2
	b.sysRange = [2]int32{16, 39} // IRC C2 profile
	b.bodyRange = [2]int{2, 4}
	cur := "entry"
	// Central keep-alive loop alternating with small command dispatches.
	useLoop := true
	for {
		rem := remaining(b, target)
		if rem < 2 {
			break
		}
		cont := b.label("m")
		switch {
		case useLoop && rem >= 4:
			b.loop(cur, min(rem-1, 2+b.rng.Intn(3)), cont)
		case !useLoop && rem >= 8:
			k := 2 + b.rng.Intn(2)
			b.dispatch(cur, k, 2, cont)
		default:
			b.chain(cur, min(rem, 2), cont)
		}
		useLoop = !useLoop
		cur = cont
	}
	return cur
}

// recipeFor returns the family recipe.
func recipeFor(c Class) recipe {
	switch c {
	case Gafgyt:
		return gafgytRecipe
	case Mirai:
		return miraiRecipe
	case Tsunami:
		return tsunamiRecipe
	default:
		return benignRecipe
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
