package malgen

import (
	"fmt"
	"math/rand"

	"soteria/internal/disasm"
	"soteria/internal/isa"
)

// Sample is one synthetic corpus entry: the program source, its
// assembled binary, and the CFG recovered by the disassembler — the
// exact artifact chain the paper obtains from CyberIOC + radare2.
type Sample struct {
	ID      string
	Class   Class
	Program *isa.Program
	Binary  *isa.Binary
	CFG     *disasm.CFG
}

// Nodes returns the sample's CFG node count.
func (s *Sample) Nodes() int { return s.CFG.NumNodes() }

// Config parameterizes the generator.
type Config struct {
	// Seed drives all randomness; the same seed reproduces the same
	// corpus sample-for-sample.
	Seed int64
	// Sizes overrides the per-class node-count anchors; nil means the
	// paper's Table III statistics.
	Sizes map[Class]SizeStats
}

// Generator produces synthetic samples. It is not safe for concurrent
// use; derive independent generators with distinct seeds instead.
type Generator struct {
	rng   *rand.Rand
	sizes map[Class]SizeStats
	next  int
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg Config) *Generator {
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = PaperSizes
	}
	return &Generator{rng: rand.New(rand.NewSource(cfg.Seed)), sizes: sizes}
}

// minNodes is the smallest program the recipes can produce (entry work
// plus a halt block).
const minNodes = 5

// Sample generates one sample of class c with a node count drawn from
// the class's size distribution.
func (g *Generator) Sample(c Class) (*Sample, error) {
	return g.SampleSized(c, g.drawNodes(c))
}

// SampleSized generates one sample of class c with exactly nodes CFG
// nodes (clamped to the generator minimum).
func (g *Generator) SampleSized(c Class, nodes int) (*Sample, error) {
	if nodes < minNodes {
		nodes = minNodes
	}
	// Per-sample RNG derived from the master stream keeps samples
	// reproducible regardless of generation order elsewhere.
	g.next++
	id := fmt.Sprintf("%s-%06d", c, g.next)
	rng := rand.New(rand.NewSource(g.rng.Int63()))

	b := newBuilder(rng)
	last := recipeFor(c)(b, nodes)
	prog, err := b.finish(nodes, last)
	if err != nil {
		return nil, fmt.Errorf("malgen: %s: %w", id, err)
	}
	bin, _, err := isa.Assemble(prog, isa.AsmOptions{Data: g.dataSection(c, rng)})
	if err != nil {
		return nil, fmt.Errorf("malgen: %s: assemble: %w", id, err)
	}
	cfg, err := disasm.Disassemble(bin)
	if err != nil {
		return nil, fmt.Errorf("malgen: %s: disassemble: %w", id, err)
	}
	return &Sample{ID: id, Class: c, Program: prog, Binary: bin, CFG: cfg}, nil
}

// Corpus generates counts[c] samples of each class, in class order.
func (g *Generator) Corpus(counts map[Class]int) ([]*Sample, error) {
	total := 0
	for _, n := range counts {
		total += n
	}
	out := make([]*Sample, 0, total)
	for _, c := range Classes {
		for i := 0; i < counts[c]; i++ {
			s, err := g.Sample(c)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// drawNodes samples a node count whose minimum, median and maximum match
// the class anchors, via a piecewise-linear quantile function.
func (g *Generator) drawNodes(c Class) int {
	st, ok := g.sizes[c]
	if !ok {
		st = SizeStats{Min: 10, Median: 50, Max: 150}
	}
	q := g.rng.Float64()
	var v float64
	if q < 0.5 {
		v = float64(st.Min) + (float64(st.Median)-float64(st.Min))*q*2
	} else {
		v = float64(st.Median) + (float64(st.Max)-float64(st.Median))*(q-0.5)*2
	}
	return int(v + 0.5)
}

// dataSection emits family-flavored .data bytes: real malware carries
// family-specific strings (C2 hostnames, credential lists, IRC
// commands), which is the signal byte-level baselines like the
// image-based classifier consume.
func (g *Generator) dataSection(c Class, rng *rand.Rand) []byte {
	var words []string
	switch c {
	case Gafgyt:
		words = []string{"PING", "PONG", "HOLD", "JUNK", "UDP", "TCP", "KILLATTK", "/bin/busybox"}
	case Mirai:
		words = []string{"admin", "root", "888888", "xc3511", "vizxv", "/dev/watchdog", "telnet"}
	case Tsunami:
		words = []string{"NICK", "MODE", "JOIN", "PRIVMSG", "TSUNAMI", "ircd"}
	default:
		words = []string{"usage:", "error:", "version", "GNU", "libc", "help", "output"}
	}
	n := 2 + rng.Intn(len(words))
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		out = append(out, words[rng.Intn(len(words))]...)
		out = append(out, 0)
	}
	return out
}
