package malgen

import (
	"math/rand"
	"testing"

	"soteria/internal/isa"
)

func TestClassStrings(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{Benign, "Benign"}, {Gafgyt, "Gafgyt"}, {Mirai, "Mirai"},
		{Tsunami, "Tsunami"}, {Class(9), "Class(9)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
	if got := Small.String(); got != "Small" {
		t.Errorf("Small.String() = %q", got)
	}
	if got := SizeClass(7).String(); got != "SizeClass(7)" {
		t.Errorf("SizeClass(7).String() = %q", got)
	}
}

func TestSizeStatsNodes(t *testing.T) {
	st := SizeStats{Min: 1, Median: 2, Max: 3}
	if st.Nodes(Small) != 1 || st.Nodes(Medium) != 2 || st.Nodes(Large) != 3 {
		t.Fatalf("SizeStats.Nodes wrong: %+v", st)
	}
}

func TestPaperCountsTotal(t *testing.T) {
	malware := PaperCounts[Gafgyt] + PaperCounts[Mirai] + PaperCounts[Tsunami]
	if malware+PaperUnlabeled != 13798 {
		t.Fatalf("malware total = %d, want 13798", malware+PaperUnlabeled)
	}
	if total := malware + PaperCounts[Benign] + PaperUnlabeled; total != 16814 {
		t.Fatalf("corpus total = %d, want 16814", total)
	}
}

func TestSampleSizedExactNodeCount(t *testing.T) {
	g := NewGenerator(Config{Seed: 7})
	for _, c := range Classes {
		for _, nodes := range []int{10, 25, 64, 133} {
			s, err := g.SampleSized(c, nodes)
			if err != nil {
				t.Fatalf("%s/%d: %v", c, nodes, err)
			}
			if got := s.Nodes(); got != nodes {
				t.Errorf("%s: CFG nodes = %d, want %d", s.ID, got, nodes)
			}
		}
	}
}

func TestSampleSizedPaperAnchors(t *testing.T) {
	g := NewGenerator(Config{Seed: 11})
	for _, c := range Classes {
		for _, sz := range SizeClasses {
			want := PaperSizes[c].Nodes(sz)
			s, err := g.SampleSized(c, want)
			if err != nil {
				t.Fatalf("%s/%s: %v", c, sz, err)
			}
			if got := s.Nodes(); got != want {
				t.Errorf("%s %s: nodes = %d, want %d", c, sz, got, want)
			}
		}
	}
}

func TestSampleMinimumClamped(t *testing.T) {
	g := NewGenerator(Config{Seed: 3})
	s, err := g.SampleSized(Benign, 1)
	if err != nil {
		t.Fatalf("SampleSized: %v", err)
	}
	if s.Nodes() < minNodes {
		t.Fatalf("nodes = %d, want >= %d", s.Nodes(), minNodes)
	}
}

func TestSamplesFullyReachable(t *testing.T) {
	g := NewGenerator(Config{Seed: 5})
	for _, c := range Classes {
		s, err := g.SampleSized(c, 60)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		reach := s.CFG.G.Reachable(s.CFG.EntryNode())
		for id, r := range reach {
			if !r {
				t.Fatalf("%s: node %d unreachable from entry", s.ID, id)
			}
		}
	}
}

func TestSamplesExecutable(t *testing.T) {
	// The practicality requirement: every generated binary must actually
	// run to a clean halt.
	g := NewGenerator(Config{Seed: 13})
	for _, c := range Classes {
		s, err := g.SampleSized(c, 40)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		vm := isa.NewVM(s.Binary)
		if err := vm.Run(200000); err != nil {
			t.Errorf("%s: execution failed: %v", s.ID, err)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 99})
	b := NewGenerator(Config{Seed: 99})
	for i := 0; i < 5; i++ {
		sa, err := a.Sample(Mirai)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Sample(Mirai)
		if err != nil {
			t.Fatal(err)
		}
		ea, _ := sa.Binary.Encode()
		eb, _ := sb.Binary.Encode()
		if string(ea) != string(eb) {
			t.Fatalf("sample %d differs across same-seed generators", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(Config{Seed: 1})
	b := NewGenerator(Config{Seed: 2})
	sa, _ := a.Sample(Gafgyt)
	sb, _ := b.Sample(Gafgyt)
	ea, _ := sa.Binary.Encode()
	eb, _ := sb.Binary.Encode()
	if string(ea) == string(eb) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestDrawNodesWithinAnchors(t *testing.T) {
	g := NewGenerator(Config{Seed: 21})
	for _, c := range Classes {
		st := PaperSizes[c]
		for i := 0; i < 200; i++ {
			n := g.drawNodes(c)
			if n < st.Min || n > st.Max {
				t.Fatalf("%s: drew %d outside [%d, %d]", c, n, st.Min, st.Max)
			}
		}
	}
}

func TestCorpusCountsAndOrder(t *testing.T) {
	g := NewGenerator(Config{Seed: 17})
	corpus, err := g.Corpus(map[Class]int{Benign: 3, Gafgyt: 2, Tsunami: 1})
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if len(corpus) != 6 {
		t.Fatalf("corpus size = %d, want 6", len(corpus))
	}
	wantClasses := []Class{Benign, Benign, Benign, Gafgyt, Gafgyt, Tsunami}
	for i, s := range corpus {
		if s.Class != wantClasses[i] {
			t.Fatalf("corpus[%d].Class = %s, want %s", i, s.Class, wantClasses[i])
		}
	}
}

func TestFamilyStructuralSignal(t *testing.T) {
	// Families must differ structurally at matched size: Mirai (loop
	// heavy) should carry more back edges than Benign (call heavy), and
	// Benign should carry more ret blocks than Mirai.
	g := NewGenerator(Config{Seed: 31})
	backEdges := func(s *Sample) int {
		levels := s.CFG.G.BFSLevels(s.CFG.EntryNode())
		n := 0
		for _, e := range s.CFG.G.Edges() {
			if levels[e[1]] >= 0 && levels[e[1]] <= levels[e[0]] {
				n++
			}
		}
		return n
	}
	miraiBE, benignBE := 0, 0
	for i := 0; i < 10; i++ {
		m, err := g.SampleSized(Mirai, 48)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.SampleSized(Benign, 48)
		if err != nil {
			t.Fatal(err)
		}
		miraiBE += backEdges(m)
		benignBE += backEdges(b)
	}
	if miraiBE <= benignBE {
		t.Fatalf("expected Mirai back edges (%d) > Benign (%d)", miraiBE, benignBE)
	}
}

func TestBuilderMotifBlockCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		emit func(b *builder)
		want int
	}{
		{"chain", func(b *builder) { b.chain("entry", 4, "end") }, 4},
		{"loop", func(b *builder) { b.loop("entry", 3, "end") }, 4},
		{"dispatch", func(b *builder) { b.dispatch("entry", 3, 2, "end") }, 9},
		{"branchTree d2", func(b *builder) { b.branchTree("entry", 2, "end") }, 7},
		{"callSeq", func(b *builder) { b.callSeq("entry", 2, 3, "end") }, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := newBuilder(rng)
			tt.emit(b)
			if got := b.blocksEmitted(); got != tt.want {
				t.Fatalf("blocks = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestGeneratedProgramsSurviveAsmRoundTrip(t *testing.T) {
	// Generated programs rendered to assembly text, re-parsed, and
	// re-assembled must produce byte-identical text sections — ties the
	// corpus generator, formatter, parser, and assembler together.
	g := NewGenerator(Config{Seed: 23})
	for _, c := range Classes {
		s, err := g.SampleSized(c, 35)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := isa.ParseAsm(isa.FormatAsm(s.Program))
		if err != nil {
			t.Fatalf("%s: round trip parse: %v", s.ID, err)
		}
		b2, _, err := isa.Assemble(parsed, isa.AsmOptions{})
		if err != nil {
			t.Fatalf("%s: round trip assemble: %v", s.ID, err)
		}
		orig := s.Binary.Section(".text").Data
		if string(b2.Section(".text").Data) != string(orig) {
			t.Fatalf("%s: text section changed across asm round trip", s.ID)
		}
	}
}

func TestDataSectionFamilyFlavor(t *testing.T) {
	g := NewGenerator(Config{Seed: 41})
	s, err := g.SampleSized(Mirai, 20)
	if err != nil {
		t.Fatal(err)
	}
	data := s.Binary.Section(".data")
	if data == nil || len(data.Data) == 0 {
		t.Fatal("missing .data section")
	}
}
