package ngram_test

import (
	"fmt"

	"soteria/internal/ngram"
)

// A random-walk label trace becomes n-gram counts, and a fitted
// vectorizer turns counts into fixed-size TF-IDF vectors.
func Example() {
	trace := []int{0, 1, 2, 1, 2}
	counts := ngram.Grams(trace, []int{2})
	fmt.Println(counts["1|2"], counts["2|1"], counts["0|1"])

	v := ngram.Fit([]map[string]int{counts}, 3)
	fmt.Println(v.Vocab)
	// Output:
	// 2 1 1
	// [1|2 0|1 2|1]
}
