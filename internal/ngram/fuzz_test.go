package ngram

import "testing"

// FuzzPackRoundTrip checks the packed-key layout: any gram within the
// documented bounds (length in [1, MaxPackedN], labels in
// [0, MaxPackedLabel]) must survive Pack → Unpack unchanged, and the
// packed key's string rendering must match the legacy Key form and
// parse back to the same labels.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint32(0), uint32(0), uint32(0), uint32(0))
	f.Add(uint8(4), uint32(MaxPackedLabel), uint32(MaxPackedLabel), uint32(MaxPackedLabel), uint32(MaxPackedLabel))
	f.Add(uint8(3), uint32(1), uint32(2), uint32(3), uint32(0))
	f.Add(uint8(2), uint32(32767), uint32(12345), uint32(0), uint32(0))

	f.Fuzz(func(t *testing.T, n uint8, l0, l1, l2, l3 uint32) {
		gram := []int{
			int(l0) & MaxPackedLabel,
			int(l1) & MaxPackedLabel,
			int(l2) & MaxPackedLabel,
			int(l3) & MaxPackedLabel,
		}[:1+int(n)%MaxPackedN]

		key := Pack(gram)
		got := Unpack(key, nil)
		if len(got) != len(gram) {
			t.Fatalf("Unpack(Pack(%v)) = %v: length changed", gram, got)
		}
		for i := range gram {
			if got[i] != gram[i] {
				t.Fatalf("Unpack(Pack(%v)) = %v", gram, got)
			}
		}

		s := KeyString(key)
		if legacy := Key(gram); s != legacy {
			t.Fatalf("KeyString(Pack(%v)) = %q, legacy Key = %q", gram, s, legacy)
		}
		parsed, err := ParseKey(s)
		if err != nil {
			t.Fatalf("ParseKey(%q) failed: %v", s, err)
		}
		if Pack(parsed) != key {
			t.Fatalf("ParseKey(%q) = %v does not re-pack to %#x", s, parsed, key)
		}
	})
}

// FuzzParseKey hardens the vocabulary-file parser: arbitrary strings
// must either produce a non-negative label slice that canonically
// round-trips through Key, or return an error — never panic.
func FuzzParseKey(f *testing.F) {
	f.Add("1|2|3")
	f.Add("0")
	f.Add("")
	f.Add("|")
	f.Add("-1|2")
	f.Add("a|b")
	f.Add("99999999999999999999")
	f.Add("1|2|3|4|5|6|7|8")

	f.Fuzz(func(t *testing.T, s string) {
		labels, err := ParseKey(s)
		if err != nil {
			return
		}
		if len(labels) == 0 {
			t.Fatalf("ParseKey(%q) returned no labels and no error", s)
		}
		for _, l := range labels {
			if l < 0 {
				t.Fatalf("ParseKey(%q) accepted negative label %d", s, l)
			}
		}
		// The canonical rendering of an accepted key must parse back to
		// the same labels.
		re, err := ParseKey(Key(labels))
		if err != nil {
			t.Fatalf("canonical form of %q failed to re-parse: %v", s, err)
		}
		if len(re) != len(labels) {
			t.Fatalf("round trip changed length: %v vs %v", re, labels)
		}
		for i := range labels {
			if re[i] != labels[i] {
				t.Fatalf("round trip changed labels: %v vs %v", re, labels)
			}
		}
	})
}
