// Package ngram turns random-walk traces into fixed-size feature
// vectors: n-grams of lengths 2, 3, and 4 are extracted from the label
// sequences, a vocabulary of the top-k most frequent grams is selected
// over the training corpus, and vectors are weighted with TF-IDF — the
// paper's node2vec-inspired representation (section III-B.2).
package ngram

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// DefaultNs are the paper's n-gram lengths.
var DefaultNs = []int{2, 3, 4}

// DefaultTopK is the paper's vocabulary size per labeling scheme.
const DefaultTopK = 500

// Key renders a gram (a short label sequence) as a map key.
func Key(gram []int) string {
	var b strings.Builder
	for i, v := range gram {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Grams counts every n-gram of the given lengths in a trace.
func Grams(trace []int, ns []int) map[string]int {
	counts := make(map[string]int)
	AddGrams(counts, trace, ns)
	return counts
}

// AddGrams accumulates the trace's n-grams into counts.
func AddGrams(counts map[string]int, trace []int, ns []int) {
	for _, n := range ns {
		if n <= 0 {
			continue
		}
		for i := 0; i+n <= len(trace); i++ {
			counts[Key(trace[i:i+n])]++
		}
	}
}

// Vectorizer maps gram-count maps to fixed-size TF-IDF vectors over a
// vocabulary selected at fit time. The zero value is unusable; build one
// with Fit.
type Vectorizer struct {
	// Vocab is the selected grams in a fixed, deterministic order.
	Vocab []string
	// IDF holds the smoothed inverse document frequency per vocab entry.
	IDF []float64
	// Dim is the output vector length (>= len(Vocab); extra dimensions
	// stay zero so vector sizes are stable regardless of corpus size).
	Dim int
	// L2 enables L2 normalization of output vectors. Off by default:
	// normalization erases the out-of-vocabulary mass signal — a sample
	// whose grams mostly fall outside the vocabulary (e.g. a GEA merge)
	// shows up as a depressed in-vocabulary total, which the detector
	// relies on.
	L2 bool

	index map[string]int
	// pindex maps the packed form of each vocab entry to its slot; nil
	// when some entry cannot pack (see Packable), in which case only the
	// string path is available.
	pindex map[uint64]int
}

// idf is the smoothed inverse document frequency shared by every fit
// path (n = corpus size, df = document frequency of the gram).
func idf(n float64, df int) float64 {
	return math.Log(n/(1.0+float64(df))) + 1.0
}

// normalize L2-normalizes the vector in place, accumulating the norm in
// index order so results do not depend on map iteration order (float
// addition is not associative).
func normalize(out []float64) {
	var norm float64
	for _, x := range out {
		norm += x * x
	}
	if norm > 0 {
		inv := 1.0 / math.Sqrt(norm)
		for i := range out {
			out[i] *= inv
		}
	}
}

// Fit selects the top-k grams by document frequency over the corpus
// (ties broken by total frequency, then lexicographically) and computes
// IDF weights. Each corpus entry is one training sample's aggregated
// gram counts. The returned vectorizer always produces vectors of
// length k.
func Fit(corpus []map[string]int, k int) *Vectorizer {
	df := make(map[string]int)
	total := make(map[string]int)
	for _, counts := range corpus {
		for g, c := range counts {
			df[g]++
			total[g] += c
		}
	}
	grams := make([]string, 0, len(df))
	for g := range df {
		grams = append(grams, g)
	}
	sort.Slice(grams, func(i, j int) bool {
		a, b := grams[i], grams[j]
		if df[a] != df[b] {
			return df[a] > df[b]
		}
		if total[a] != total[b] {
			return total[a] > total[b]
		}
		return a < b
	})
	if len(grams) > k {
		grams = grams[:k]
	}
	v := &Vectorizer{
		Vocab: grams,
		IDF:   make([]float64, len(grams)),
		Dim:   k,
		index: make(map[string]int, len(grams)),
	}
	n := float64(len(corpus))
	for i, g := range grams {
		v.index[g] = i
		v.IDF[i] = idf(n, df[g])
	}
	v.buildPackedIndex()
	return v
}

// Vector produces the TF-IDF vector of one sample's gram counts. Term
// frequency is relative to the sample's total gram count (including
// out-of-vocabulary grams), so vector magnitude encodes how much of the
// sample's walk mass the vocabulary captures. With L2 set, the vector
// is additionally L2-normalized.
func (v *Vectorizer) Vector(counts map[string]int) []float64 {
	out := make([]float64, v.Dim)
	totalGrams := 0
	for _, c := range counts {
		totalGrams += c
	}
	if totalGrams == 0 {
		return out
	}
	for g, c := range counts {
		i, ok := v.index[g]
		if !ok {
			continue
		}
		tf := float64(c) / float64(totalGrams)
		out[i] = tf * v.IDF[i]
	}
	if v.L2 {
		normalize(out)
	}
	return out
}

// Contains reports whether a gram is in the vocabulary.
func (v *Vectorizer) Contains(gram string) bool {
	_, ok := v.index[gram]
	return ok
}

// Restore rebuilds a vectorizer from persisted state (the exported
// fields of a fitted Vectorizer).
func Restore(vocab []string, idf []float64, dim int, l2 bool) *Vectorizer {
	v := &Vectorizer{
		Vocab: append([]string(nil), vocab...),
		IDF:   append([]float64(nil), idf...),
		Dim:   dim,
		L2:    l2,
		index: make(map[string]int, len(vocab)),
	}
	for i, g := range v.Vocab {
		v.index[g] = i
	}
	v.buildPackedIndex()
	return v
}
