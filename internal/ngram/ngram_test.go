package ngram

import (
	"math"
	"reflect"
	"testing"
)

func TestKey(t *testing.T) {
	if got := Key([]int{1, 2, 3}); got != "1|2|3" {
		t.Fatalf("Key = %q", got)
	}
	if got := Key([]int{7}); got != "7" {
		t.Fatalf("Key = %q", got)
	}
}

func TestGramsCounts(t *testing.T) {
	trace := []int{1, 2, 1, 2}
	got := Grams(trace, []int{2})
	want := map[string]int{"1|2": 2, "2|1": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Grams = %v, want %v", got, want)
	}
}

func TestGramsMultipleLengths(t *testing.T) {
	trace := []int{0, 1, 2}
	got := Grams(trace, []int{2, 3})
	want := map[string]int{"0|1": 1, "1|2": 1, "0|1|2": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Grams = %v, want %v", got, want)
	}
}

func TestGramsShortTraceAndBadN(t *testing.T) {
	if got := Grams([]int{5}, []int{2, 3}); len(got) != 0 {
		t.Fatalf("Grams on short trace = %v, want empty", got)
	}
	if got := Grams([]int{1, 2, 3}, []int{0, -1}); len(got) != 0 {
		t.Fatalf("Grams with bad n = %v, want empty", got)
	}
}

func TestAddGramsAccumulates(t *testing.T) {
	counts := map[string]int{"1|2": 5}
	AddGrams(counts, []int{1, 2}, []int{2})
	if counts["1|2"] != 6 {
		t.Fatalf("AddGrams did not accumulate: %v", counts)
	}
}

func TestFitSelectsByDocumentFrequency(t *testing.T) {
	corpus := []map[string]int{
		{"a": 1, "b": 9},
		{"a": 1, "c": 1},
		{"a": 1},
	}
	v := Fit(corpus, 2)
	// "a" in 3 docs, "b" and "c" in 1 each; "b" wins on total frequency.
	if !reflect.DeepEqual(v.Vocab, []string{"a", "b"}) {
		t.Fatalf("Vocab = %v", v.Vocab)
	}
	if !v.Contains("a") || v.Contains("c") {
		t.Fatal("Contains wrong")
	}
}

func TestFitTieBreaksLexicographic(t *testing.T) {
	corpus := []map[string]int{{"z": 1, "a": 1}}
	v := Fit(corpus, 2)
	if !reflect.DeepEqual(v.Vocab, []string{"a", "z"}) {
		t.Fatalf("Vocab = %v, want [a z]", v.Vocab)
	}
}

func TestFitVocabSmallerThanK(t *testing.T) {
	v := Fit([]map[string]int{{"a": 1}}, 10)
	if len(v.Vocab) != 1 || v.Dim != 10 {
		t.Fatalf("Vocab = %v, Dim = %d", v.Vocab, v.Dim)
	}
	vec := v.Vector(map[string]int{"a": 3})
	if len(vec) != 10 {
		t.Fatalf("vector length = %d, want 10", len(vec))
	}
	for i := 1; i < 10; i++ {
		if vec[i] != 0 {
			t.Fatalf("padding dimension %d nonzero", i)
		}
	}
}

func TestVectorL2OptIn(t *testing.T) {
	corpus := []map[string]int{
		{"a": 2, "b": 1},
		{"b": 3, "c": 1},
	}
	v := Fit(corpus, 3)
	v.L2 = true
	vec := v.Vector(map[string]int{"a": 4, "b": 2, "unseen": 7})
	var norm float64
	for _, x := range vec {
		norm += x * x
	}
	if math.Abs(norm-1.0) > 1e-9 {
		t.Fatalf("L2 norm^2 = %v, want 1", norm)
	}
}

func TestVectorOOVMassDepressesMagnitude(t *testing.T) {
	// Without L2 normalization, a sample whose grams are mostly outside
	// the vocabulary must have a smaller in-vocabulary magnitude — the
	// adversarial-example signal the detector uses.
	v := Fit([]map[string]int{{"a": 5, "b": 5}}, 2)
	inVocab := v.Vector(map[string]int{"a": 5, "b": 5})
	mixed := v.Vector(map[string]int{"a": 5, "b": 5, "x": 40, "y": 50})
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if sum(mixed) >= sum(inVocab) {
		t.Fatalf("OOV-heavy vector sum %v >= in-vocab sum %v", sum(mixed), sum(inVocab))
	}
}

func TestVectorIgnoresUnseenGrams(t *testing.T) {
	v := Fit([]map[string]int{{"a": 1}}, 5)
	vec := v.Vector(map[string]int{"zz": 100})
	for i, x := range vec {
		if x != 0 {
			t.Fatalf("vec[%d] = %v for all-unseen input", i, x)
		}
	}
}

func TestVectorEmptyInput(t *testing.T) {
	v := Fit([]map[string]int{{"a": 1}}, 5)
	vec := v.Vector(map[string]int{})
	if len(vec) != 5 {
		t.Fatalf("vector length = %d", len(vec))
	}
	for _, x := range vec {
		if x != 0 {
			t.Fatal("empty input should produce zero vector")
		}
	}
}

func TestIDFOrdering(t *testing.T) {
	// A gram in every document must have lower IDF than a rarer one.
	corpus := []map[string]int{
		{"common": 1, "rare": 1},
		{"common": 1},
		{"common": 1},
		{"common": 1},
	}
	v := Fit(corpus, 2)
	var idfCommon, idfRare float64
	for i, g := range v.Vocab {
		switch g {
		case "common":
			idfCommon = v.IDF[i]
		case "rare":
			idfRare = v.IDF[i]
		}
	}
	if idfCommon >= idfRare {
		t.Fatalf("IDF(common)=%v >= IDF(rare)=%v", idfCommon, idfRare)
	}
}

func TestDefaultParameters(t *testing.T) {
	if !reflect.DeepEqual(DefaultNs, []int{2, 3, 4}) {
		t.Fatalf("DefaultNs = %v", DefaultNs)
	}
	if DefaultTopK != 500 {
		t.Fatalf("DefaultTopK = %d", DefaultTopK)
	}
}
