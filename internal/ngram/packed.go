package ngram

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Packed gram keys
//
// Walk-trace labels are permutation indices in [0, |V|), and the
// paper's n-gram lengths never exceed 4, so a whole gram fits in one
// uint64: 15 bits per label (label j of the gram occupies bits
// [15j, 15j+15)) plus the gram length in the top 4 bits. Counting grams
// on packed keys removes the per-occurrence string allocation of the
// legacy map[string]int path — the extraction hot path becomes integer
// hashing only.
//
// Fallback: a CFG with |V| > 2^15 (label values that do not fit 15
// bits) or a configuration with n-gram lengths above 4 cannot pack;
// callers must check Packable and route such samples through the
// string-keyed path (Grams/AddGrams/Vector), which remains fully
// supported and produces identical vectors.
const (
	// PackBits is the width of one label field in a packed key.
	PackBits = 15
	// MaxPackedLabel is the largest label value a packed key can hold.
	MaxPackedLabel = 1<<PackBits - 1
	// MaxPackedN is the largest gram length a packed key can hold.
	MaxPackedN = 4

	packMask = 1<<PackBits - 1
	lenShift = 60
)

// Packable reports whether every gram over labels in [0, maxLabel] with
// the given lengths fits a packed key. Non-positive lengths are ignored
// (the counting loops skip them).
func Packable(maxLabel int, ns []int) bool {
	if maxLabel > MaxPackedLabel {
		return false
	}
	for _, n := range ns {
		if n > MaxPackedN {
			return false
		}
	}
	return true
}

// Pack encodes a gram (len in [1, MaxPackedN], labels in
// [0, MaxPackedLabel]) as a single key.
func Pack(gram []int) uint64 {
	return PackAt(gram, 0, len(gram))
}

// PackAt encodes the length-n window of trace starting at i.
func PackAt(trace []int, i, n int) uint64 {
	k := uint64(n) << lenShift
	for j := 0; j < n; j++ {
		k |= uint64(trace[i+j]) << (uint(j) * PackBits)
	}
	return k
}

// Unpack appends the packed key's labels to buf[:0] and returns it.
func Unpack(key uint64, buf []int) []int {
	n := int(key >> lenShift)
	buf = buf[:0]
	for j := 0; j < n; j++ {
		buf = append(buf, int(key>>(uint(j)*PackBits))&packMask)
	}
	return buf
}

// KeyString renders a packed key in the legacy string form ("a|b|c"),
// the representation used for vocabulary persistence.
func KeyString(key uint64) string {
	return Key(Unpack(key, make([]int, 0, MaxPackedN)))
}

// ParseKey parses the legacy string form of a gram back into labels.
func ParseKey(s string) ([]int, error) {
	parts := strings.Split(s, "|")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("ngram: bad gram key %q: %w", s, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("ngram: negative label in gram key %q", s)
		}
		out[i] = v
	}
	return out, nil
}

// GramCounter accumulates packed-gram occurrence counts. It is the
// allocation-free counterpart of the map[string]int gram maps: resetting
// and refilling a counter with a similar trace reuses the map's buckets,
// so steady-state counting does not allocate. Not safe for concurrent
// use; pool one per worker.
type GramCounter struct {
	counts map[uint64]int
	total  int
}

// NewGramCounter returns an empty counter.
func NewGramCounter() *GramCounter {
	return &GramCounter{counts: make(map[uint64]int)}
}

// Reset empties the counter but keeps its capacity.
func (c *GramCounter) Reset() {
	clear(c.counts)
	c.total = 0
}

// AddTrace counts every n-gram of the given lengths in trace. All
// lengths must satisfy Packable; non-positive lengths are skipped.
func (c *GramCounter) AddTrace(trace []int, ns []int) {
	for _, n := range ns {
		if n <= 0 {
			continue
		}
		for i := 0; i+n <= len(trace); i++ {
			c.counts[PackAt(trace, i, n)]++
			c.total++
		}
	}
}

// Add counts one occurrence of a packed gram.
func (c *GramCounter) Add(key uint64) {
	c.counts[key]++
	c.total++
}

// Merge adds every count of other into c.
func (c *GramCounter) Merge(other *GramCounter) {
	for k, v := range other.counts {
		c.counts[k] += v
	}
	c.total += other.total
}

// Count returns the occurrence count of one packed gram.
func (c *GramCounter) Count(key uint64) int { return c.counts[key] }

// Len returns the number of distinct grams.
func (c *GramCounter) Len() int { return len(c.counts) }

// Total returns the total gram occurrence count (the TF denominator).
func (c *GramCounter) Total() int { return c.total }

// Counts exposes the underlying map (read-only by convention).
func (c *GramCounter) Counts() map[uint64]int { return c.counts }

// Strings renders the counter in the legacy map[string]int form (test
// and debugging helper; allocates freely).
func (c *GramCounter) Strings() map[string]int {
	out := make(map[string]int, len(c.counts))
	for k, v := range c.counts {
		out[KeyString(k)] += v
	}
	return out
}

// FitPacked is Fit over packed-gram corpora. Vocabulary selection is
// identical to the string path — top-k by document frequency, ties by
// total frequency, then by the *string* form of the gram (so a model
// fitted on packed counters selects, orders, and weights exactly the
// grams the legacy path would) — and the resulting vectorizer carries
// both the string index and the packed index.
func FitPacked(corpus []*GramCounter, k int) *Vectorizer {
	df := make(map[uint64]int)
	total := make(map[uint64]int)
	for _, c := range corpus {
		for g, n := range c.counts {
			df[g]++
			total[g] += n
		}
	}
	keys := make([]uint64, 0, len(df))
	strs := make(map[uint64]string, len(df))
	var buf []int
	for g := range df {
		keys = append(keys, g)
		buf = Unpack(g, buf)
		strs[g] = Key(buf)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if df[a] != df[b] {
			return df[a] > df[b]
		}
		if total[a] != total[b] {
			return total[a] > total[b]
		}
		return strs[a] < strs[b]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	v := &Vectorizer{
		Vocab:  make([]string, len(keys)),
		IDF:    make([]float64, len(keys)),
		Dim:    k,
		index:  make(map[string]int, len(keys)),
		pindex: make(map[uint64]int, len(keys)),
	}
	n := float64(len(corpus))
	for i, g := range keys {
		s := strs[g]
		v.Vocab[i] = s
		v.index[s] = i
		v.pindex[g] = i
		v.IDF[i] = idf(n, df[g])
	}
	return v
}

// PackedReady reports whether the vectorizer can serve packed lookups
// (every vocabulary entry parsed into a packable gram).
func (v *Vectorizer) PackedReady() bool { return v.pindex != nil }

// VectorPacked is Vector over a packed-gram counter. It produces
// bit-identical output to Vector on the equivalent string-keyed counts:
// the TF denominator includes out-of-vocabulary grams, each output slot
// is written once (so map iteration order is irrelevant), and the L2
// norm accumulates in index order. Callers must check PackedReady.
func (v *Vectorizer) VectorPacked(c *GramCounter) []float64 {
	return v.VectorPackedInto(nil, c)
}

// VectorPackedInto is VectorPacked with caller-provided storage: dst is
// reused when its capacity suffices (contents are overwritten), and the
// returned slice has length Dim. Output is bit-identical to
// VectorPacked — the buffer is zeroed before the single write per
// occupied slot, so reuse can never leak a previous vector's values.
func (v *Vectorizer) VectorPackedInto(dst []float64, c *GramCounter) []float64 {
	var out []float64
	if cap(dst) < v.Dim {
		out = make([]float64, v.Dim)
	} else {
		out = dst[:v.Dim]
		for i := range out {
			out[i] = 0
		}
	}
	if c.total == 0 {
		return out
	}
	// Same op sequence as Vector (divide, then scale by IDF) so packed
	// and string paths round identically.
	total := float64(c.total)
	for g, n := range c.counts {
		i, ok := v.pindex[g]
		if !ok {
			continue
		}
		tf := float64(n) / total
		out[i] = tf * v.IDF[i]
	}
	if v.L2 {
		normalize(out)
	}
	return out
}

// buildPackedIndex derives the packed index from the string vocabulary,
// leaving pindex nil (packed lookups disabled) when any entry cannot
// pack — the |V| > 2^15 / n > 4 fallback.
func (v *Vectorizer) buildPackedIndex() {
	pindex := make(map[uint64]int, len(v.Vocab))
	for i, s := range v.Vocab {
		gram, err := ParseKey(s)
		if err != nil || len(gram) == 0 || len(gram) > MaxPackedN {
			v.pindex = nil
			return
		}
		for _, lab := range gram {
			if lab > MaxPackedLabel {
				v.pindex = nil
				return
			}
		}
		pindex[Pack(gram)] = i
	}
	v.pindex = pindex
}
