package ngram

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	grams := [][]int{
		{0},
		{1},
		{MaxPackedLabel},
		{0, 0},
		{1, 2},
		{MaxPackedLabel, 0},
		{3, 1, 4},
		{1, 2, 3, 4},
		{MaxPackedLabel, MaxPackedLabel, MaxPackedLabel, MaxPackedLabel},
	}
	var buf []int
	for _, g := range grams {
		k := Pack(g)
		buf = Unpack(k, buf)
		if !reflect.DeepEqual([]int(buf), g) {
			t.Fatalf("roundtrip %v -> %#x -> %v", g, k, buf)
		}
		if KeyString(k) != Key(g) {
			t.Fatalf("KeyString(%v) = %q, want %q", g, KeyString(k), Key(g))
		}
	}
}

func TestPackDistinctGramsDistinctKeys(t *testing.T) {
	// Distinct grams (including same labels at different lengths, and
	// zero-padded prefixes) must map to distinct keys.
	grams := [][]int{
		{0}, {0, 0}, {0, 0, 0}, {0, 0, 0, 0},
		{1}, {1, 0}, {0, 1}, {1, 0, 0}, {0, 0, 1},
		{5, 7}, {7, 5},
	}
	seen := make(map[uint64][]int)
	for _, g := range grams {
		k := Pack(g)
		if prev, ok := seen[k]; ok {
			t.Fatalf("collision: %v and %v both pack to %#x", prev, g, k)
		}
		seen[k] = g
	}
}

func TestPackable(t *testing.T) {
	if !Packable(MaxPackedLabel, []int{2, 3, 4}) {
		t.Fatal("max label with paper lengths must pack")
	}
	if Packable(MaxPackedLabel+1, []int{2}) {
		t.Fatal("label beyond 15 bits must not pack")
	}
	if Packable(10, []int{2, 5}) {
		t.Fatal("gram length above 4 must not pack")
	}
	if !Packable(10, []int{-1, 0, 4}) {
		t.Fatal("non-positive lengths are skipped by counting and must not block packing")
	}
}

func TestParseKey(t *testing.T) {
	got, err := ParseKey("12|0|345")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{12, 0, 345}) {
		t.Fatalf("ParseKey = %v", got)
	}
	for _, bad := range []string{"", "a|b", "1||2", "-1|2"} {
		if _, err := ParseKey(bad); err == nil {
			t.Fatalf("ParseKey(%q) should error", bad)
		}
	}
}

func TestGramCounterMatchesStringGrams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ns := []int{2, 3, 4}
	for trial := 0; trial < 20; trial++ {
		trace := make([]int, 5+rng.Intn(200))
		for i := range trace {
			trace[i] = rng.Intn(300) // multi-digit labels exercise key rendering
		}
		c := NewGramCounter()
		c.AddTrace(trace, ns)
		want := Grams(trace, ns)
		if got := c.Strings(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: packed counts diverge from string counts", trial)
		}
		wantTotal := 0
		for _, n := range want {
			wantTotal += n
		}
		if c.Total() != wantTotal {
			t.Fatalf("trial %d: Total = %d, want %d", trial, c.Total(), wantTotal)
		}
	}
}

func TestGramCounterResetAndMerge(t *testing.T) {
	a := NewGramCounter()
	a.AddTrace([]int{1, 2, 3}, []int{2})
	b := NewGramCounter()
	b.AddTrace([]int{1, 2}, []int{2})
	a.Merge(b)
	if a.Count(Pack([]int{1, 2})) != 2 || a.Count(Pack([]int{2, 3})) != 1 {
		t.Fatalf("merge counts wrong: %v", a.Strings())
	}
	if a.Total() != 3 {
		t.Fatalf("merged Total = %d, want 3", a.Total())
	}
	a.Reset()
	if a.Len() != 0 || a.Total() != 0 {
		t.Fatalf("Reset left state: len=%d total=%d", a.Len(), a.Total())
	}
}

// corpusPair builds the same random corpus in both representations.
func corpusPair(t *testing.T, samples, maxLabel int, ns []int) ([]map[string]int, []*GramCounter) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	strCorpus := make([]map[string]int, samples)
	packCorpus := make([]*GramCounter, samples)
	for i := range strCorpus {
		trace := make([]int, 20+rng.Intn(150))
		for j := range trace {
			trace[j] = rng.Intn(maxLabel + 1)
		}
		strCorpus[i] = Grams(trace, ns)
		c := NewGramCounter()
		c.AddTrace(trace, ns)
		packCorpus[i] = c
	}
	return strCorpus, packCorpus
}

func TestFitPackedMatchesFit(t *testing.T) {
	// Multi-digit labels make numeric and lexicographic gram order
	// disagree, so this exercises the string tie-break FitPacked must
	// reproduce for seed-identical vocabularies.
	ns := []int{2, 3, 4}
	strCorpus, packCorpus := corpusPair(t, 30, 120, ns)
	for _, k := range []int{10, 50, 100000} {
		sv := Fit(strCorpus, k)
		pv := FitPacked(packCorpus, k)
		if !reflect.DeepEqual(sv.Vocab, pv.Vocab) {
			t.Fatalf("k=%d: vocab differs:\nstring: %v\npacked: %v", k, sv.Vocab[:5], pv.Vocab[:5])
		}
		if !reflect.DeepEqual(sv.IDF, pv.IDF) {
			t.Fatalf("k=%d: IDF differs", k)
		}
		if sv.Dim != pv.Dim {
			t.Fatalf("k=%d: dim %d vs %d", k, sv.Dim, pv.Dim)
		}
		if !pv.PackedReady() || !sv.PackedReady() {
			t.Fatalf("k=%d: both vectorizers should be packed-ready", k)
		}
	}
}

func TestVectorPackedMatchesVector(t *testing.T) {
	ns := []int{2, 3}
	strCorpus, packCorpus := corpusPair(t, 20, 90, ns)
	for _, l2 := range []bool{false, true} {
		sv := Fit(strCorpus, 40)
		pv := FitPacked(packCorpus, 40)
		sv.L2, pv.L2 = l2, l2
		for i := range strCorpus {
			c := packCorpus[i]
			want := sv.Vector(strCorpus[i])
			got := pv.VectorPacked(c)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("l2=%v sample %d: packed vector differs from string vector", l2, i)
			}
			// Cross-path: a string-fitted vectorizer must serve packed
			// lookups identically (the Restore scenario).
			if cross := sv.VectorPacked(c); !reflect.DeepEqual(want, cross) {
				t.Fatalf("l2=%v sample %d: string-fitted packed lookup differs", l2, i)
			}
		}
	}
}

func TestVectorPackedEmptyCounter(t *testing.T) {
	_, packCorpus := corpusPair(t, 5, 50, []int{2})
	v := FitPacked(packCorpus, 10)
	out := v.VectorPacked(NewGramCounter())
	if len(out) != 10 {
		t.Fatalf("dim = %d", len(out))
	}
	for _, x := range out {
		if x != 0 {
			t.Fatal("empty counter must produce the zero vector")
		}
	}
}

func TestRestoreBuildsPackedIndex(t *testing.T) {
	_, packCorpus := corpusPair(t, 10, 60, []int{2, 3})
	v := FitPacked(packCorpus, 20)
	r := Restore(v.Vocab, v.IDF, v.Dim, v.L2)
	if !r.PackedReady() {
		t.Fatal("restored vectorizer with packable vocab should be packed-ready")
	}
	for i := range packCorpus {
		if !reflect.DeepEqual(v.VectorPacked(packCorpus[i]), r.VectorPacked(packCorpus[i])) {
			t.Fatalf("sample %d: restored packed vectors differ", i)
		}
	}
}

func TestPackedIndexFallback(t *testing.T) {
	// A vocabulary with an unpackable entry (gram length 5) must disable
	// the packed index while keeping the string path functional.
	corpus := []map[string]int{{"1|2|3|4|5": 3, "1|2": 2}}
	v := Fit(corpus, 5)
	if v.PackedReady() {
		t.Fatal("5-gram vocab must not be packed-ready")
	}
	vec := v.Vector(corpus[0])
	if len(vec) != 5 {
		t.Fatalf("dim = %d", len(vec))
	}
	// Labels beyond 15 bits likewise.
	big := []map[string]int{{Key([]int{MaxPackedLabel + 1, 0}): 1}}
	if Fit(big, 3).PackedReady() {
		t.Fatal("oversized label vocab must not be packed-ready")
	}
}

func TestAddTraceSteadyStateAllocFree(t *testing.T) {
	trace := make([]int, 400)
	rng := rand.New(rand.NewSource(5))
	for i := range trace {
		trace[i] = rng.Intn(200)
	}
	c := NewGramCounter()
	ns := []int{2, 3, 4}
	c.AddTrace(trace, ns) // warm the buckets
	allocs := testing.AllocsPerRun(50, func() {
		c.Reset()
		c.AddTrace(trace, ns)
	})
	if allocs > 0 {
		t.Fatalf("steady-state AddTrace allocates %.1f/op, want 0", allocs)
	}
}
