package nn

import (
	"math/rand"
	"testing"
)

// convInferTestNet mirrors the classifier's conv/pool/dense stack so
// the fused Conv1D+ReLU inference path is exercised end to end.
func convInferTestNet(rng *rand.Rand) *Network {
	c1 := NewConv1D(20, 1, 3, 3, 1, rng)
	c2 := NewConv1D(c1.OutLen(), 3, 3, 3, 1, rng)
	p := NewMaxPool1D(c2.OutLen(), 3, 2, 2)
	return NewNetwork(
		c1, NewReLU(),
		c2, NewReLU(),
		p,
		NewDense(p.OutLen()*3, 4, rng),
	)
}

// TestPredictApplyMatchesPredictInto pins the visitor-based inference
// entry point — including the fused Dense+ReLU and Conv1D+ReLU arena
// paths — bit-identical to PredictInto and to layer-by-layer Forward,
// on both a dense stack and a conv stack.
func TestPredictApplyMatchesPredictInto(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	nets := map[string]*Network{
		"dense": inferTestNet(rng),
		"conv":  convInferTestNet(rng),
	}
	dims := map[string]int{"dense": 12, "conv": 20}
	for name, n := range nets {
		for _, rows := range []int{1, 2, 7} {
			x := randMatrix(rng, rows, dims[name])
			want := n.PredictInto(nil, x)
			ref := x
			for _, l := range n.Layers {
				ref = l.Forward(ref, false)
			}
			var got *Matrix
			n.PredictApply(x, func(y *Matrix) {
				got = NewMatrix(y.Rows, y.Cols)
				copy(got.Data, y.Data)
			})
			if d := maxAbsDiff(got, want); d != 0 {
				t.Errorf("%s rows=%d: PredictApply diverges from PredictInto by %g", name, rows, d)
			}
			if d := maxAbsDiff(got, ref); d != 0 {
				t.Errorf("%s rows=%d: PredictApply diverges from Forward by %g", name, rows, d)
			}
		}
	}
}

// TestSoftmaxInPlaceMatchesSoftmax pins the aliasing-tolerant in-place
// softmax to the allocating reference.
func TestSoftmaxInPlaceMatchesSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	logits := randMatrix(rng, 5, 7)
	want := Softmax(logits)
	got := NewMatrix(logits.Rows, logits.Cols)
	copy(got.Data, logits.Data)
	SoftmaxInPlace(got)
	if d := maxAbsDiff(got, want); d != 0 {
		t.Fatalf("SoftmaxInPlace diverges from Softmax by %g", d)
	}
}

// TestPredictApplyZeroAllocSteadyState guards the visitor entry point:
// with a warm arena, inference allocates nothing — there is no copy-out
// matrix at all.
func TestPredictApplyZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(31))
	n := inferTestNet(rng)
	x := randMatrix(rng, 2, 12)
	sink := 0.0
	visit := func(y *Matrix) { sink += y.Data[0] }
	for i := 0; i < 3; i++ {
		n.PredictApply(x, visit) // warm the arena pool
	}
	if avg := testing.AllocsPerRun(100, func() { n.PredictApply(x, visit) }); avg != 0 {
		t.Fatalf("PredictApply allocates %v objects per call at steady state, want 0", avg)
	}
	_ = sink
}
