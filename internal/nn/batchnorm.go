package nn

import (
	"fmt"
	"math"
)

// BatchNorm normalizes each feature over the batch during training
// (subtract batch mean, divide by batch std) and applies learned scale
// (gamma) and shift (beta); at inference it uses exponential running
// statistics. Momentum follows the common 0.9 convention.
type BatchNorm struct {
	Dim   int
	Eps   float64
	Mom   float64
	Gamma *Param // 1 x Dim
	Beta  *Param // 1 x Dim

	// Running statistics for inference.
	runMean []float64
	runVar  []float64

	// Cached values from the last training forward pass.
	lastXHat *Matrix
	lastStd  []float64
}

// NewBatchNorm creates a batch-normalization layer for Dim features.
func NewBatchNorm(dim int) *BatchNorm {
	b := &BatchNorm{
		Dim:     dim,
		Eps:     1e-5,
		Mom:     0.9,
		Gamma:   newParam(1, dim),
		Beta:    newParam(1, dim),
		runMean: make([]float64, dim),
		runVar:  make([]float64, dim),
	}
	b.Gamma.W.Fill(1)
	for i := range b.runVar {
		b.runVar[i] = 1
	}
	return b
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *Matrix, train bool) *Matrix {
	if x.Cols != b.Dim {
		panic(fmt.Sprintf("nn: BatchNorm expected %d cols, got %d", b.Dim, x.Cols))
	}
	out := NewMatrix(x.Rows, x.Cols)
	if !train || x.Rows < 2 {
		// Inference (or degenerate batch): running statistics.
		for i := 0; i < x.Rows; i++ {
			src, dst := x.Row(i), out.Row(i)
			for j := range src {
				xh := (src[j] - b.runMean[j]) / math.Sqrt(b.runVar[j]+b.Eps)
				dst[j] = b.Gamma.W.Data[j]*xh + b.Beta.W.Data[j]
			}
		}
		b.lastXHat = nil
		return out
	}

	n := float64(x.Rows)
	mean := make([]float64, b.Dim)
	variance := make([]float64, b.Dim)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}

	b.lastXHat = NewMatrix(x.Rows, x.Cols)
	if cap(b.lastStd) < b.Dim {
		b.lastStd = make([]float64, b.Dim)
	}
	b.lastStd = b.lastStd[:b.Dim]
	for j := range variance {
		b.lastStd[j] = math.Sqrt(variance[j] + b.Eps)
	}
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		xh := b.lastXHat.Row(i)
		dst := out.Row(i)
		for j := range src {
			xh[j] = (src[j] - mean[j]) / b.lastStd[j]
			dst[j] = b.Gamma.W.Data[j]*xh[j] + b.Beta.W.Data[j]
		}
	}
	for j := range mean {
		b.runMean[j] = b.Mom*b.runMean[j] + (1-b.Mom)*mean[j]
		b.runVar[j] = b.Mom*b.runVar[j] + (1-b.Mom)*variance[j]
	}
	return out
}

// Backward implements Layer. The gradient follows the standard
// batch-norm derivation, coupling every row of the batch through the
// shared mean and variance.
func (b *BatchNorm) Backward(grad *Matrix) *Matrix {
	if b.lastXHat == nil {
		// Inference-mode backward: per-feature affine map.
		out := grad.Clone()
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j := range row {
				row[j] *= b.Gamma.W.Data[j] / math.Sqrt(b.runVar[j]+b.Eps)
			}
		}
		return out
	}
	n := float64(grad.Rows)
	dGamma := make([]float64, b.Dim)
	dBeta := make([]float64, b.Dim)
	sumDy := make([]float64, b.Dim)
	sumDyXh := make([]float64, b.Dim)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := b.lastXHat.Row(i)
		for j := range g {
			dGamma[j] += g[j] * xh[j]
			dBeta[j] += g[j]
			sumDy[j] += g[j]
			sumDyXh[j] += g[j] * xh[j]
		}
	}
	for j := 0; j < b.Dim; j++ {
		b.Gamma.G.Data[j] += dGamma[j]
		b.Beta.G.Data[j] += dBeta[j]
	}
	out := NewMatrix(grad.Rows, grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := b.lastXHat.Row(i)
		dst := out.Row(i)
		for j := range g {
			dst[j] = b.Gamma.W.Data[j] / b.lastStd[j] *
				(g[j] - sumDy[j]/n - xh[j]*sumDyXh[j]/n)
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

var _ Layer = (*BatchNorm)(nil)
