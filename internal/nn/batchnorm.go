package nn

import (
	"fmt"
	"math"
)

// BatchNorm normalizes each feature over the batch during training
// (subtract batch mean, divide by batch std) and applies learned scale
// (gamma) and shift (beta); at inference it uses exponential running
// statistics. Momentum follows the common 0.9 convention.
type BatchNorm struct {
	Dim   int
	Eps   float64
	Mom   float64
	Gamma *Param // 1 x Dim
	Beta  *Param // 1 x Dim

	// Running statistics for inference.
	runMean []float64
	runVar  []float64

	// Training workspace, reused across minibatches.
	lastXHat *Matrix
	lastStd  []float64
	out      *Matrix
	dx       *Matrix
	mean     []float64
	variance []float64
	sums     []float64 // backward reductions, 4*Dim
}

// NewBatchNorm creates a batch-normalization layer for Dim features.
func NewBatchNorm(dim int) *BatchNorm {
	b := &BatchNorm{
		Dim:     dim,
		Eps:     1e-5,
		Mom:     0.9,
		Gamma:   newParam(1, dim),
		Beta:    newParam(1, dim),
		runMean: make([]float64, dim),
		runVar:  make([]float64, dim),
	}
	b.Gamma.W.Fill(1)
	for i := range b.runVar {
		b.runVar[i] = 1
	}
	return b
}

func (b *BatchNorm) checkIn(x *Matrix) {
	if x.Cols != b.Dim {
		panic(fmt.Sprintf("nn: BatchNorm expected %d cols, got %d", b.Dim, x.Cols))
	}
}

// normRunningInto applies the running-statistics affine map — the
// inference transform — reading only immutable layer state.
func (b *BatchNorm) normRunningInto(out, x *Matrix) *Matrix {
	for i := 0; i < x.Rows; i++ {
		src, dst := x.Row(i), out.Row(i)
		for j := range src {
			xh := (src[j] - b.runMean[j]) / math.Sqrt(b.runVar[j]+b.Eps)
			dst[j] = b.Gamma.W.Data[j]*xh + b.Beta.W.Data[j]
		}
	}
	return out
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *Matrix, train bool) *Matrix {
	b.checkIn(x)
	if !train {
		return b.infer(x, new(Arena))
	}
	out := ensure(&b.out, x.Rows, x.Cols)
	if x.Rows < 2 {
		// Degenerate batch: fall back to running statistics; Backward
		// then takes the per-feature affine branch.
		b.lastXHat = nil
		return b.normRunningInto(out, x)
	}

	n := float64(x.Rows)
	mean := ensureF64(&b.mean, b.Dim)
	variance := ensureF64(&b.variance, b.Dim)
	for j := range mean {
		mean[j], variance[j] = 0, 0
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}

	xHat := ensure(&b.lastXHat, x.Rows, x.Cols)
	std := ensureF64(&b.lastStd, b.Dim)
	for j := range variance {
		std[j] = math.Sqrt(variance[j] + b.Eps)
	}
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		xh := xHat.Row(i)
		dst := out.Row(i)
		for j := range src {
			xh[j] = (src[j] - mean[j]) / std[j]
			dst[j] = b.Gamma.W.Data[j]*xh[j] + b.Beta.W.Data[j]
		}
	}
	for j := range mean {
		b.runMean[j] = b.Mom*b.runMean[j] + (1-b.Mom)*mean[j]
		b.runVar[j] = b.Mom*b.runVar[j] + (1-b.Mom)*variance[j]
	}
	return out
}

func (b *BatchNorm) infer(x *Matrix, ws *Arena) *Matrix {
	b.checkIn(x)
	return b.normRunningInto(ws.take(x.Rows, x.Cols), x)
}

// Backward implements Layer. The gradient follows the standard
// batch-norm derivation, coupling every row of the batch through the
// shared mean and variance.
func (b *BatchNorm) Backward(grad *Matrix) *Matrix {
	out := ensure(&b.dx, grad.Rows, grad.Cols)
	if b.lastXHat == nil {
		// Degenerate-batch backward: per-feature affine map.
		for i := 0; i < grad.Rows; i++ {
			src, dst := grad.Row(i), out.Row(i)
			for j := range src {
				dst[j] = src[j] * b.Gamma.W.Data[j] / math.Sqrt(b.runVar[j]+b.Eps)
			}
		}
		return out
	}
	n := float64(grad.Rows)
	sums := ensureF64(&b.sums, 4*b.Dim)
	for j := range sums {
		sums[j] = 0
	}
	dGamma := sums[:b.Dim]
	dBeta := sums[b.Dim : 2*b.Dim]
	sumDy := sums[2*b.Dim : 3*b.Dim]
	sumDyXh := sums[3*b.Dim:]
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := b.lastXHat.Row(i)
		for j := range g {
			dGamma[j] += g[j] * xh[j]
			dBeta[j] += g[j]
			sumDy[j] += g[j]
			sumDyXh[j] += g[j] * xh[j]
		}
	}
	for j := 0; j < b.Dim; j++ {
		b.Gamma.G.Data[j] += dGamma[j]
		b.Beta.G.Data[j] += dBeta[j]
	}
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		xh := b.lastXHat.Row(i)
		dst := out.Row(i)
		for j := range g {
			dst[j] = b.Gamma.W.Data[j] / b.lastStd[j] *
				(g[j] - sumDy[j]/n - xh[j]*sumDyXh[j]/n)
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

var (
	_ Layer      = (*BatchNorm)(nil)
	_ inferLayer = (*BatchNorm)(nil)
)
