package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainModeGrads runs a train-mode forward/backward for gradient checks
// (batch norm couples rows, so checks must use train mode consistently).
func trainModeLoss(n *Network, l Loss, x, y *Matrix) float64 {
	loss, _ := l.Compute(n.Forward(x, true), y)
	return loss
}

func checkTrainModeGrads(t *testing.T, n *Network, l Loss, x, y *Matrix, tol float64) {
	t.Helper()
	const eps = 1e-6
	for _, p := range n.Params() {
		p.G.Zero()
	}
	pred := n.Forward(x, true)
	_, grad := l.Compute(pred, y)
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	dx := grad

	// Parameter gradients.
	for pi, p := range n.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := trainModeLoss(n, l, x, y)
			p.W.Data[i] = orig - eps
			lm := trainModeLoss(n, l, x, y)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G.Data[i]) > tol {
				t.Fatalf("param %d elem %d: numeric %v vs analytic %v", pi, i, num, p.G.Data[i])
			}
		}
	}
	// Input gradients.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := trainModeLoss(n, l, x, y)
		x.Data[i] = orig - eps
		lm := trainModeLoss(n, l, x, y)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol {
			t.Fatalf("input elem %d: numeric %v vs analytic %v", i, num, dx.Data[i])
		}
	}
}

func TestGradBatchNormTrainMode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := NewBatchNorm(5)
	// Non-trivial gamma/beta.
	bn.Gamma.W.Randomize(rng, 1)
	bn.Beta.W.Randomize(rng, 1)
	// Freeze running-stat updates' effect on the check by reusing the
	// same batch every evaluation (stats update but don't feed forward).
	n := NewNetwork(bn)
	x := randMatrix(rng, 6, 5)
	y := randMatrix(rng, 6, 5)
	checkTrainModeGrads(t, n, MSE{}, x, y, 1e-5)
}

func TestGradBatchNormInStack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewNetwork(NewDense(4, 6, rng), NewBatchNorm(6), NewReLU(), NewDense(6, 3, rng))
	x := randMatrix(rng, 5, 4)
	y := OneHot([]int{0, 1, 2, 0, 1}, 3)
	checkTrainModeGrads(t, n, SoftmaxCrossEntropy{}, x, y, 1e-5)
}

func TestBatchNormNormalizesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bn := NewBatchNorm(3)
	x := randMatrix(rng, 50, 3)
	x.Scale(4)
	out := bn.Forward(x, true)
	for j := 0; j < 3; j++ {
		var mean, sq float64
		for i := 0; i < out.Rows; i++ {
			mean += out.At(i, j)
		}
		mean /= float64(out.Rows)
		for i := 0; i < out.Rows; i++ {
			d := out.At(i, j) - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(out.Rows))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-3 {
			t.Fatalf("feature %d: mean=%v std=%v", j, mean, std)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm(2)
	x := randMatrix(rng, 40, 2)
	for i := 0; i < 50; i++ { // converge running stats
		bn.Forward(x, true)
	}
	single := NewMatrix(1, 2)
	single.Set(0, 0, x.At(0, 0))
	single.Set(0, 1, x.At(0, 1))
	out := bn.Forward(single, false)
	// Inference on one row must not blow up (running stats, not batch).
	if math.IsNaN(out.At(0, 0)) || math.IsInf(out.At(0, 0), 0) {
		t.Fatal("inference produced invalid value")
	}
	// And it approximates the train-mode normalization of that row.
	full := bn.Forward(x, true)
	if math.Abs(out.At(0, 0)-full.At(0, 0)) > 0.2 {
		t.Fatalf("inference %v vs train-mode %v", out.At(0, 0), full.At(0, 0))
	}
}

func TestBatchNormTrainsFaster(t *testing.T) {
	// Smoke test: a net with batch norm must still learn XOR.
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(
		NewDense(2, 8, rng),
		NewBatchNorm(8),
		NewReLU(),
		NewDense(8, 2, rng),
	)
	x := FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := OneHot([]int{0, 1, 1, 0}, 2)
	tr := Trainer{Net: net, Loss: SoftmaxCrossEntropy{}, Opt: NewAdam(0.05)}
	if _, err := tr.Fit(x, y, TrainConfig{Epochs: 300, BatchSize: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	pred := Argmax(net.Forward(x, true)) // batch stats for the tiny batch
	want := []int{0, 1, 1, 0}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("XOR with batchnorm: pred %v", pred)
		}
	}
}

func TestTrainerEarlyStoppingRestoresBest(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(NewDense(3, 16, rng), NewReLU(), NewDense(16, 1, rng))
	// Tiny noisy dataset: prone to overfit, validation loss rises.
	x := randMatrix(rng, 30, 3)
	y := NewMatrix(30, 1)
	for i := 0; i < 30; i++ {
		y.Set(i, 0, x.At(i, 0)+0.3*rng.NormFloat64())
	}
	tr := Trainer{Net: net, Loss: MSE{}, Opt: NewAdam(0.02)}
	losses, err := tr.Fit(x, y, TrainConfig{
		Epochs: 500, BatchSize: 8, Seed: 2,
		ValFraction: 0.3, Patience: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) >= 500 {
		t.Fatalf("early stopping never triggered: %d epochs", len(losses))
	}
}
