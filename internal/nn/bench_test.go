package nn

import (
	"math/rand"
	"testing"
)

// Training-path kernel benchmarks. BenchmarkMatMul1000x2000 is the
// autoencoder's widest forward product at paper scale (a 64-row
// minibatch through the 1000 -> 2000 layer); the AT/BT variants are the
// two backward products of the same layer (weight gradient and input
// gradient), which exercise the transposed-operand paths.

func benchRand(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMatMul1000x2000(b *testing.B) {
	x := benchRand(64, 1000, 1)
	w := benchRand(1000, 2000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, w, false, false)
	}
}

func BenchmarkMatMulGradWeightAT(b *testing.B) {
	x := benchRand(64, 1000, 1)
	g := benchRand(64, 2000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, g, true, false) // x^T @ grad: weight gradient
	}
}

func BenchmarkMatMulGradInputBT(b *testing.B) {
	g := benchRand(64, 2000, 1)
	w := benchRand(1000, 2000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(g, w, false, true) // grad @ W^T: input gradient
	}
}
