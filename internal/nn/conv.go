package nn

import (
	"fmt"
	"math"
	"math/rand"

	"soteria/internal/par"
)

// Conv1D is a 1-D convolution over channels-last sequences. A batch row
// of length L*InCh is interpreted as L positions of InCh channels; the
// output row has OutLen()*OutCh elements, with valid padding and the
// given stride. Implemented with im2col + matmul.
//
// The (batch*outLen) x OutCh matmul product and the batch x
// (outLen*OutCh) output have byte-identical row-major layouts, so the
// GEMM writes straight into the output matrix through a reshaped
// header — no unpacking copy — and the bias is fused into the GEMM
// epilogue.
type Conv1D struct {
	InLen, InCh int
	OutCh       int
	Kernel      int
	Stride      int
	Weight      *Param // (Kernel*InCh) x OutCh
	Bias        *Param // 1 x OutCh

	// Training workspace, reused across minibatches.
	lastCols *Matrix // im2col of last input: (batch*outLen) x (Kernel*InCh)
	lastRows int
	out      *Matrix
	prodHdr  Matrix // reshaped view of out for the GEMM
	colGrad  *Matrix
	dx       *Matrix
}

// NewConv1D creates a convolution layer with He-initialized kernels.
func NewConv1D(inLen, inCh, outCh, kernel, stride int, rng *rand.Rand) *Conv1D {
	if kernel <= 0 || stride <= 0 || inLen < kernel {
		panic(fmt.Sprintf("nn: Conv1D bad geometry: inLen=%d kernel=%d stride=%d", inLen, kernel, stride))
	}
	c := &Conv1D{
		InLen: inLen, InCh: inCh, OutCh: outCh, Kernel: kernel, Stride: stride,
		Weight: newParam(kernel*inCh, outCh),
		Bias:   newParam(1, outCh),
	}
	c.Weight.W.Randomize(rng, math.Sqrt(2.0/float64(kernel*inCh)))
	return c
}

// OutLen returns the output sequence length.
func (c *Conv1D) OutLen() int { return (c.InLen-c.Kernel)/c.Stride + 1 }

func (c *Conv1D) checkIn(x *Matrix) {
	if x.Cols != c.InLen*c.InCh {
		panic(fmt.Sprintf("nn: Conv1D expected %d cols, got %d", c.InLen*c.InCh, x.Cols))
	}
}

// im2col writes every kernel window of x as one row of cols.
func (c *Conv1D) im2col(cols, x *Matrix) {
	outLen := c.OutLen()
	kc := c.Kernel * c.InCh
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		for p := 0; p < outLen; p++ {
			start := p * c.Stride * c.InCh
			copy(cols.Row(b*outLen+p), row[start:start+kc])
		}
	}
}

// Forward implements Layer.
func (c *Conv1D) Forward(x *Matrix, train bool) *Matrix {
	c.checkIn(x)
	if !train {
		return c.infer(x, new(Arena))
	}
	outLen := c.OutLen()
	cols := ensure(&c.lastCols, x.Rows*outLen, c.Kernel*c.InCh)
	c.im2col(cols, x)
	c.lastRows = x.Rows

	out := ensure(&c.out, x.Rows, outLen*c.OutCh)
	c.prodHdr = Matrix{Rows: x.Rows * outLen, Cols: c.OutCh, Data: out.Data}
	gemm(&c.prodHdr, cols, c.Weight.W, false, false, false, c.Bias.W.Data, false, false)
	return out
}

func (c *Conv1D) infer(x *Matrix, ws *Arena) *Matrix {
	return c.inferFused(x, ws, false)
}

// inferFused is the inference convolution with an optional fused ReLU:
// the GEMM epilogue clamps the product while it is cache-hot, saving a
// separate pass over the activation. Fusion is exact — ReLU is a
// comparison, not arithmetic — so outputs are bit-identical to a
// conv-then-ReLU pair.
//
// Unlike the training path there is no im2col: in the channels-last
// layout every kernel window is already a contiguous Kernel*InCh run of
// the input row, and consecutive windows start Stride*InCh apart — so
// each input row IS a valid GEMM A-panel with lda = Stride*InCh, and
// the blocked kernel runs straight over it. Same kernel, same k-order,
// same epilogues as the im2col product: results are bit-identical, the
// window-materialization pass and its arena buffer just disappear.
func (c *Conv1D) inferFused(x *Matrix, ws *Arena, relu bool) *Matrix {
	c.checkIn(x)
	outLen := c.OutLen()
	k := c.Kernel * c.InCh
	n := c.OutCh
	out := ws.take(x.Rows, outLen*n)
	fast := ws.fast
	// The serial branch calls inferRows directly (no closure) so
	// steady-state inference stays allocation-free; only the parallel
	// split pays for its closure, mirroring gemm.
	perRow := outLen * k * n
	if work := x.Rows * perRow; work < parallelThreshold || x.Rows < 2 || par.Workers() == 1 {
		c.inferRows(out, x, 0, x.Rows, relu, fast)
	} else {
		grain := parallelThreshold / perRow
		if grain < 1 {
			grain = 1
		}
		par.ForChunkedGrain(x.Rows, grain, func(blo, bhi int) {
			c.inferRows(out, x, blo, bhi, relu, fast)
		})
	}
	return out
}

// inferRows runs the register-blocked panel kernel over batch rows
// [blo, bhi), one A-panel per input row (bit-identical to the blocked
// kernel — see gemmPanels).
func (c *Conv1D) inferRows(out, x *Matrix, blo, bhi int, relu, fast bool) {
	outLen := c.OutLen()
	k := c.Kernel * c.InCh
	n := c.OutCh
	w, bias := c.Weight.W.Data, c.Bias.W.Data
	lda := c.Stride * c.InCh
	for b := blo; b < bhi; b++ {
		dstRow := out.Data[b*outLen*n : (b+1)*outLen*n]
		srcRow := x.Data[b*x.Cols : (b+1)*x.Cols]
		gemmPanels(dstRow, n, srcRow, lda, w, n, 0, outLen, k, n, bias, relu, fast)
	}
}

// backwardParams accumulates the weight and bias gradients only,
// skipping the column-gradient GEMM and scatter — the cheap form the
// network uses when this is the first layer and the input gradient has
// no consumer.
func (c *Conv1D) backwardParams(grad *Matrix) {
	// grad (batch x outLen*OutCh) reshaped to (batch*outLen) x OutCh is
	// the same flat layout: share its storage instead of copying.
	g := Matrix{Rows: c.lastRows * c.OutLen(), Cols: c.OutCh, Data: grad.Data}
	MatMulAddInto(c.Weight.G, c.lastCols, &g, true, false)
	g.addColSumsInto(c.Bias.G.Data)
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *Matrix) *Matrix {
	c.backwardParams(grad)
	outLen := c.OutLen()
	kc := c.Kernel * c.InCh
	g := Matrix{Rows: c.lastRows * outLen, Cols: c.OutCh, Data: grad.Data}

	// Column gradient scattered back to input positions.
	colGrad := ensure(&c.colGrad, c.lastRows*outLen, kc)
	MatMulInto(colGrad, &g, c.Weight.W, false, true)
	dx := ensureZero(&c.dx, c.lastRows, c.InLen*c.InCh)
	for b := 0; b < c.lastRows; b++ {
		dst := dx.Row(b)
		for p := 0; p < outLen; p++ {
			src := colGrad.Row(b*outLen + p)
			start := p * c.Stride * c.InCh
			for i := 0; i < kc; i++ {
				dst[start+i] += src[i]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// MaxPool1D max-pools a channels-last sequence with the given window and
// stride.
type MaxPool1D struct {
	InLen, Ch      int
	Window, Stride int

	argmax   []int
	lastRows int
	out      *Matrix
	dx       *Matrix
}

// NewMaxPool1D creates a max-pooling layer.
func NewMaxPool1D(inLen, ch, window, stride int) *MaxPool1D {
	if window <= 0 || stride <= 0 || inLen < window {
		panic(fmt.Sprintf("nn: MaxPool1D bad geometry: inLen=%d window=%d stride=%d", inLen, window, stride))
	}
	return &MaxPool1D{InLen: inLen, Ch: ch, Window: window, Stride: stride}
}

// OutLen returns the output sequence length.
func (m *MaxPool1D) OutLen() int { return (m.InLen-m.Window)/m.Stride + 1 }

func (m *MaxPool1D) checkIn(x *Matrix) {
	if x.Cols != m.InLen*m.Ch {
		panic(fmt.Sprintf("nn: MaxPool1D expected %d cols, got %d", m.InLen*m.Ch, x.Cols))
	}
}

// pool writes the pooled sequence into out; when argmax is non-nil it
// also records the winning input index per output element (the
// training path needs it for Backward, the inference path skips it so
// concurrent passes never write layer state).
func (m *MaxPool1D) pool(out, x *Matrix, argmax []int) {
	outLen := m.OutLen()
	if argmax == nil && m.Window == 2 {
		// Inference fast path for the ubiquitous window-2 pool. On AVX
		// the whole row runs in pool2AVX: MAXPD/MAXSD with the same
		// tie/NaN behaviour as the scalar branch below, so winners are
		// identical element by element.
		if useAVX && m.Ch > 0 {
			step := m.Stride * m.Ch
			for b := 0; b < x.Rows; b++ {
				pool2AVX(&out.Row(b)[0], &x.Row(b)[0], outLen, m.Ch, step)
			}
			return
		}
		// Scalar form: compare the two candidate channel vectors
		// slice-to-slice instead of recomputing flat indices per
		// element. Same comparisons, same winners — only the index
		// arithmetic is hoisted.
		for b := 0; b < x.Rows; b++ {
			row := x.Row(b)
			dst := out.Row(b)
			for p := 0; p < outLen; p++ {
				base := p * m.Stride * m.Ch
				lo := row[base : base+m.Ch]
				hi := row[base+m.Ch : base+2*m.Ch]
				d := dst[p*m.Ch : (p+1)*m.Ch]
				for ch, v := range lo {
					if hi[ch] > v {
						v = hi[ch]
					}
					d[ch] = v
				}
			}
		}
		return
	}
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		dst := out.Row(b)
		for p := 0; p < outLen; p++ {
			base := p * m.Stride
			for ch := 0; ch < m.Ch; ch++ {
				bestIdx := base*m.Ch + ch
				best := row[bestIdx]
				for w := 1; w < m.Window; w++ {
					idx := (base+w)*m.Ch + ch
					if row[idx] > best {
						best, bestIdx = row[idx], idx
					}
				}
				dst[p*m.Ch+ch] = best
				if argmax != nil {
					argmax[(b*outLen+p)*m.Ch+ch] = bestIdx
				}
			}
		}
	}
}

// Forward implements Layer.
func (m *MaxPool1D) Forward(x *Matrix, train bool) *Matrix {
	m.checkIn(x)
	if !train {
		return m.infer(x, new(Arena))
	}
	outLen := m.OutLen()
	out := ensure(&m.out, x.Rows, outLen*m.Ch)
	m.argmax = ensureInt(m.argmax, x.Rows*outLen*m.Ch)
	m.lastRows = x.Rows
	m.pool(out, x, m.argmax)
	return out
}

func (m *MaxPool1D) infer(x *Matrix, ws *Arena) *Matrix {
	m.checkIn(x)
	out := ws.take(x.Rows, m.OutLen()*m.Ch)
	m.pool(out, x, nil)
	return out
}

// Backward implements Layer.
func (m *MaxPool1D) Backward(grad *Matrix) *Matrix {
	outLen := m.OutLen()
	dx := ensureZero(&m.dx, m.lastRows, m.InLen*m.Ch)
	for b := 0; b < m.lastRows; b++ {
		src := grad.Row(b)
		dst := dx.Row(b)
		for p := 0; p < outLen; p++ {
			for ch := 0; ch < m.Ch; ch++ {
				dst[m.argmax[(b*outLen+p)*m.Ch+ch]] += src[p*m.Ch+ch]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool1D) Params() []*Param { return nil }

// ensureInt resizes an int slice, reusing capacity.
func ensureInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

var (
	_ Layer      = (*Conv1D)(nil)
	_ Layer      = (*MaxPool1D)(nil)
	_ inferLayer = (*Conv1D)(nil)
	_ inferLayer = (*MaxPool1D)(nil)
)
