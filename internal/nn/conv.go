package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv1D is a 1-D convolution over channels-last sequences. A batch row
// of length L*InCh is interpreted as L positions of InCh channels; the
// output row has OutLen()*OutCh elements, with valid padding and the
// given stride. Implemented with im2col + matmul.
type Conv1D struct {
	InLen, InCh int
	OutCh       int
	Kernel      int
	Stride      int
	Weight      *Param // (Kernel*InCh) x OutCh
	Bias        *Param // 1 x OutCh

	lastCols *Matrix // im2col of last input: (batch*outLen) x (Kernel*InCh)
	lastRows int
}

// NewConv1D creates a convolution layer with He-initialized kernels.
func NewConv1D(inLen, inCh, outCh, kernel, stride int, rng *rand.Rand) *Conv1D {
	if kernel <= 0 || stride <= 0 || inLen < kernel {
		panic(fmt.Sprintf("nn: Conv1D bad geometry: inLen=%d kernel=%d stride=%d", inLen, kernel, stride))
	}
	c := &Conv1D{
		InLen: inLen, InCh: inCh, OutCh: outCh, Kernel: kernel, Stride: stride,
		Weight: newParam(kernel*inCh, outCh),
		Bias:   newParam(1, outCh),
	}
	c.Weight.W.Randomize(rng, math.Sqrt(2.0/float64(kernel*inCh)))
	return c
}

// OutLen returns the output sequence length.
func (c *Conv1D) OutLen() int { return (c.InLen-c.Kernel)/c.Stride + 1 }

// Forward implements Layer.
func (c *Conv1D) Forward(x *Matrix, _ bool) *Matrix {
	if x.Cols != c.InLen*c.InCh {
		panic(fmt.Sprintf("nn: Conv1D expected %d cols, got %d", c.InLen*c.InCh, x.Cols))
	}
	outLen := c.OutLen()
	kc := c.Kernel * c.InCh
	cols := NewMatrix(x.Rows*outLen, kc)
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		for p := 0; p < outLen; p++ {
			start := p * c.Stride * c.InCh
			copy(cols.Row(b*outLen+p), row[start:start+kc])
		}
	}
	c.lastCols = cols
	c.lastRows = x.Rows

	prod := MatMul(cols, c.Weight.W, false, false) // (batch*outLen) x OutCh
	out := NewMatrix(x.Rows, outLen*c.OutCh)
	for b := 0; b < x.Rows; b++ {
		dst := out.Row(b)
		for p := 0; p < outLen; p++ {
			src := prod.Row(b*outLen + p)
			for ch := 0; ch < c.OutCh; ch++ {
				dst[p*c.OutCh+ch] = src[ch] + c.Bias.W.Data[ch]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *Matrix) *Matrix {
	outLen := c.OutLen()
	kc := c.Kernel * c.InCh
	// Reshape grad into (batch*outLen) x OutCh.
	g := NewMatrix(c.lastRows*outLen, c.OutCh)
	for b := 0; b < c.lastRows; b++ {
		src := grad.Row(b)
		for p := 0; p < outLen; p++ {
			copy(g.Row(b*outLen+p), src[p*c.OutCh:(p+1)*c.OutCh])
		}
	}
	c.Weight.G.AddInPlace(MatMul(c.lastCols, g, true, false))
	c.Bias.G.AddInPlace(g.ColSums())

	// Column gradient scattered back to input positions.
	colGrad := MatMul(g, c.Weight.W, false, true) // (batch*outLen) x kc
	dx := NewMatrix(c.lastRows, c.InLen*c.InCh)
	for b := 0; b < c.lastRows; b++ {
		dst := dx.Row(b)
		for p := 0; p < outLen; p++ {
			src := colGrad.Row(b*outLen + p)
			start := p * c.Stride * c.InCh
			for i := 0; i < kc; i++ {
				dst[start+i] += src[i]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// MaxPool1D max-pools a channels-last sequence with the given window and
// stride.
type MaxPool1D struct {
	InLen, Ch      int
	Window, Stride int

	argmax   []int
	lastRows int
}

// NewMaxPool1D creates a max-pooling layer.
func NewMaxPool1D(inLen, ch, window, stride int) *MaxPool1D {
	if window <= 0 || stride <= 0 || inLen < window {
		panic(fmt.Sprintf("nn: MaxPool1D bad geometry: inLen=%d window=%d stride=%d", inLen, window, stride))
	}
	return &MaxPool1D{InLen: inLen, Ch: ch, Window: window, Stride: stride}
}

// OutLen returns the output sequence length.
func (m *MaxPool1D) OutLen() int { return (m.InLen-m.Window)/m.Stride + 1 }

// Forward implements Layer.
func (m *MaxPool1D) Forward(x *Matrix, _ bool) *Matrix {
	if x.Cols != m.InLen*m.Ch {
		panic(fmt.Sprintf("nn: MaxPool1D expected %d cols, got %d", m.InLen*m.Ch, x.Cols))
	}
	outLen := m.OutLen()
	out := NewMatrix(x.Rows, outLen*m.Ch)
	if cap(m.argmax) < x.Rows*outLen*m.Ch {
		m.argmax = make([]int, x.Rows*outLen*m.Ch)
	}
	m.argmax = m.argmax[:x.Rows*outLen*m.Ch]
	m.lastRows = x.Rows
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		dst := out.Row(b)
		for p := 0; p < outLen; p++ {
			base := p * m.Stride
			for ch := 0; ch < m.Ch; ch++ {
				bestIdx := base*m.Ch + ch
				best := row[bestIdx]
				for w := 1; w < m.Window; w++ {
					idx := (base+w)*m.Ch + ch
					if row[idx] > best {
						best, bestIdx = row[idx], idx
					}
				}
				dst[p*m.Ch+ch] = best
				m.argmax[(b*outLen+p)*m.Ch+ch] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool1D) Backward(grad *Matrix) *Matrix {
	outLen := m.OutLen()
	dx := NewMatrix(m.lastRows, m.InLen*m.Ch)
	for b := 0; b < m.lastRows; b++ {
		src := grad.Row(b)
		dst := dx.Row(b)
		for p := 0; p < outLen; p++ {
			for ch := 0; ch < m.Ch; ch++ {
				dst[m.argmax[(b*outLen+p)*m.Ch+ch]] += src[p*m.Ch+ch]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool1D) Params() []*Param { return nil }

var (
	_ Layer = (*Conv1D)(nil)
	_ Layer = (*MaxPool1D)(nil)
)
