package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv2D is a 2-D convolution over channels-last images. A batch row of
// length H*W*InCh is interpreted as an HxW image with InCh channels;
// output rows have OutH()*OutW()*OutCh elements, valid padding, equal
// stride in both dimensions. Implemented with im2col + matmul.
type Conv2D struct {
	H, W, InCh int
	OutCh      int
	Kernel     int
	Stride     int
	Weight     *Param // (Kernel*Kernel*InCh) x OutCh
	Bias       *Param // 1 x OutCh

	lastCols *Matrix
	lastRows int
}

// NewConv2D creates a 2-D convolution with He-initialized kernels.
func NewConv2D(h, w, inCh, outCh, kernel, stride int, rng *rand.Rand) *Conv2D {
	if kernel <= 0 || stride <= 0 || h < kernel || w < kernel {
		panic(fmt.Sprintf("nn: Conv2D bad geometry: %dx%d kernel=%d stride=%d", h, w, kernel, stride))
	}
	c := &Conv2D{
		H: h, W: w, InCh: inCh, OutCh: outCh, Kernel: kernel, Stride: stride,
		Weight: newParam(kernel*kernel*inCh, outCh),
		Bias:   newParam(1, outCh),
	}
	c.Weight.W.Randomize(rng, math.Sqrt(2.0/float64(kernel*kernel*inCh)))
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return (c.H-c.Kernel)/c.Stride + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return (c.W-c.Kernel)/c.Stride + 1 }

func (c *Conv2D) inIdx(y, x, ch int) int { return (y*c.W+x)*c.InCh + ch }

// Forward implements Layer.
func (c *Conv2D) Forward(x *Matrix, _ bool) *Matrix {
	if x.Cols != c.H*c.W*c.InCh {
		panic(fmt.Sprintf("nn: Conv2D expected %d cols, got %d", c.H*c.W*c.InCh, x.Cols))
	}
	oh, ow := c.OutH(), c.OutW()
	kk := c.Kernel * c.Kernel * c.InCh
	cols := NewMatrix(x.Rows*oh*ow, kk)
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		for py := 0; py < oh; py++ {
			for px := 0; px < ow; px++ {
				dst := cols.Row((b*oh+py)*ow + px)
				di := 0
				for ky := 0; ky < c.Kernel; ky++ {
					base := c.inIdx(py*c.Stride+ky, px*c.Stride, 0)
					copy(dst[di:di+c.Kernel*c.InCh], row[base:base+c.Kernel*c.InCh])
					di += c.Kernel * c.InCh
				}
			}
		}
	}
	c.lastCols = cols
	c.lastRows = x.Rows

	prod := MatMul(cols, c.Weight.W, false, false)
	out := NewMatrix(x.Rows, oh*ow*c.OutCh)
	for b := 0; b < x.Rows; b++ {
		dst := out.Row(b)
		for p := 0; p < oh*ow; p++ {
			src := prod.Row(b*oh*ow + p)
			for ch := 0; ch < c.OutCh; ch++ {
				dst[p*c.OutCh+ch] = src[ch] + c.Bias.W.Data[ch]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Matrix) *Matrix {
	oh, ow := c.OutH(), c.OutW()
	kk := c.Kernel * c.Kernel * c.InCh
	g := NewMatrix(c.lastRows*oh*ow, c.OutCh)
	for b := 0; b < c.lastRows; b++ {
		src := grad.Row(b)
		for p := 0; p < oh*ow; p++ {
			copy(g.Row(b*oh*ow+p), src[p*c.OutCh:(p+1)*c.OutCh])
		}
	}
	c.Weight.G.AddInPlace(MatMul(c.lastCols, g, true, false))
	c.Bias.G.AddInPlace(g.ColSums())

	colGrad := MatMul(g, c.Weight.W, false, true)
	dx := NewMatrix(c.lastRows, c.H*c.W*c.InCh)
	for b := 0; b < c.lastRows; b++ {
		dst := dx.Row(b)
		for py := 0; py < oh; py++ {
			for px := 0; px < ow; px++ {
				src := colGrad.Row((b*oh+py)*ow + px)
				si := 0
				for ky := 0; ky < c.Kernel; ky++ {
					base := c.inIdx(py*c.Stride+ky, px*c.Stride, 0)
					for i := 0; i < c.Kernel*c.InCh; i++ {
						dst[base+i] += src[si+i]
					}
					si += c.Kernel * c.InCh
				}
			}
		}
	}
	_ = kk
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// MaxPool2D max-pools channels-last images with a square window.
type MaxPool2D struct {
	H, W, Ch       int
	Window, Stride int

	argmax   []int
	lastRows int
}

// NewMaxPool2D creates a 2-D max-pooling layer.
func NewMaxPool2D(h, w, ch, window, stride int) *MaxPool2D {
	if window <= 0 || stride <= 0 || h < window || w < window {
		panic(fmt.Sprintf("nn: MaxPool2D bad geometry: %dx%d window=%d stride=%d", h, w, window, stride))
	}
	return &MaxPool2D{H: h, W: w, Ch: ch, Window: window, Stride: stride}
}

// OutH returns the output height.
func (m *MaxPool2D) OutH() int { return (m.H-m.Window)/m.Stride + 1 }

// OutW returns the output width.
func (m *MaxPool2D) OutW() int { return (m.W-m.Window)/m.Stride + 1 }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *Matrix, _ bool) *Matrix {
	if x.Cols != m.H*m.W*m.Ch {
		panic(fmt.Sprintf("nn: MaxPool2D expected %d cols, got %d", m.H*m.W*m.Ch, x.Cols))
	}
	oh, ow := m.OutH(), m.OutW()
	out := NewMatrix(x.Rows, oh*ow*m.Ch)
	need := x.Rows * oh * ow * m.Ch
	if cap(m.argmax) < need {
		m.argmax = make([]int, need)
	}
	m.argmax = m.argmax[:need]
	m.lastRows = x.Rows
	idx := func(y, xx, ch int) int { return (y*m.W+xx)*m.Ch + ch }
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		dst := out.Row(b)
		for py := 0; py < oh; py++ {
			for px := 0; px < ow; px++ {
				for ch := 0; ch < m.Ch; ch++ {
					bestIdx := idx(py*m.Stride, px*m.Stride, ch)
					best := row[bestIdx]
					for wy := 0; wy < m.Window; wy++ {
						for wx := 0; wx < m.Window; wx++ {
							i := idx(py*m.Stride+wy, px*m.Stride+wx, ch)
							if row[i] > best {
								best, bestIdx = row[i], i
							}
						}
					}
					o := (py*ow+px)*m.Ch + ch
					dst[o] = best
					m.argmax[(b*oh*ow+py*ow+px)*m.Ch+ch] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *Matrix) *Matrix {
	oh, ow := m.OutH(), m.OutW()
	dx := NewMatrix(m.lastRows, m.H*m.W*m.Ch)
	for b := 0; b < m.lastRows; b++ {
		src := grad.Row(b)
		dst := dx.Row(b)
		for p := 0; p < oh*ow; p++ {
			for ch := 0; ch < m.Ch; ch++ {
				dst[m.argmax[(b*oh*ow+p)*m.Ch+ch]] += src[p*m.Ch+ch]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

var (
	_ Layer = (*Conv2D)(nil)
	_ Layer = (*MaxPool2D)(nil)
)
