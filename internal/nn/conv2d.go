package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv2D is a 2-D convolution over channels-last images. A batch row of
// length H*W*InCh is interpreted as an HxW image with InCh channels;
// output rows have OutH()*OutW()*OutCh elements, valid padding, equal
// stride in both dimensions. Implemented with im2col + matmul; like
// Conv1D, the matmul writes through a reshaped header straight into
// the output matrix with the bias fused into the GEMM epilogue.
type Conv2D struct {
	H, W, InCh int
	OutCh      int
	Kernel     int
	Stride     int
	Weight     *Param // (Kernel*Kernel*InCh) x OutCh
	Bias       *Param // 1 x OutCh

	// Training workspace, reused across minibatches.
	lastCols *Matrix
	lastRows int
	out      *Matrix
	prodHdr  Matrix
	colGrad  *Matrix
	dx       *Matrix
}

// NewConv2D creates a 2-D convolution with He-initialized kernels.
func NewConv2D(h, w, inCh, outCh, kernel, stride int, rng *rand.Rand) *Conv2D {
	if kernel <= 0 || stride <= 0 || h < kernel || w < kernel {
		panic(fmt.Sprintf("nn: Conv2D bad geometry: %dx%d kernel=%d stride=%d", h, w, kernel, stride))
	}
	c := &Conv2D{
		H: h, W: w, InCh: inCh, OutCh: outCh, Kernel: kernel, Stride: stride,
		Weight: newParam(kernel*kernel*inCh, outCh),
		Bias:   newParam(1, outCh),
	}
	c.Weight.W.Randomize(rng, math.Sqrt(2.0/float64(kernel*kernel*inCh)))
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return (c.H-c.Kernel)/c.Stride + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return (c.W-c.Kernel)/c.Stride + 1 }

func (c *Conv2D) inIdx(y, x, ch int) int { return (y*c.W+x)*c.InCh + ch }

func (c *Conv2D) checkIn(x *Matrix) {
	if x.Cols != c.H*c.W*c.InCh {
		panic(fmt.Sprintf("nn: Conv2D expected %d cols, got %d", c.H*c.W*c.InCh, x.Cols))
	}
}

// im2col writes every kernel window of x as one row of cols.
func (c *Conv2D) im2col(cols, x *Matrix) {
	oh, ow := c.OutH(), c.OutW()
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		for py := 0; py < oh; py++ {
			for px := 0; px < ow; px++ {
				dst := cols.Row((b*oh+py)*ow + px)
				di := 0
				for ky := 0; ky < c.Kernel; ky++ {
					base := c.inIdx(py*c.Stride+ky, px*c.Stride, 0)
					copy(dst[di:di+c.Kernel*c.InCh], row[base:base+c.Kernel*c.InCh])
					di += c.Kernel * c.InCh
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Matrix, train bool) *Matrix {
	c.checkIn(x)
	if !train {
		return c.infer(x, new(Arena))
	}
	oh, ow := c.OutH(), c.OutW()
	cols := ensure(&c.lastCols, x.Rows*oh*ow, c.Kernel*c.Kernel*c.InCh)
	c.im2col(cols, x)
	c.lastRows = x.Rows

	out := ensure(&c.out, x.Rows, oh*ow*c.OutCh)
	c.prodHdr = Matrix{Rows: x.Rows * oh * ow, Cols: c.OutCh, Data: out.Data}
	gemm(&c.prodHdr, cols, c.Weight.W, false, false, false, c.Bias.W.Data, false, false)
	return out
}

func (c *Conv2D) infer(x *Matrix, ws *Arena) *Matrix {
	c.checkIn(x)
	oh, ow := c.OutH(), c.OutW()
	cols := ws.take(x.Rows*oh*ow, c.Kernel*c.Kernel*c.InCh)
	c.im2col(cols, x)
	out := ws.take(x.Rows, oh*ow*c.OutCh)
	prod := Matrix{Rows: x.Rows * oh * ow, Cols: c.OutCh, Data: out.Data}
	gemm(&prod, cols, c.Weight.W, false, false, false, c.Bias.W.Data, false, ws.fast)
	return out
}

// backwardParams accumulates the weight and bias gradients only,
// skipping the column-gradient GEMM and scatter — used when this is
// the network's first layer and the input gradient has no consumer.
func (c *Conv2D) backwardParams(grad *Matrix) {
	// Reshaping grad to (batch*oh*ow) x OutCh preserves the flat
	// layout: share its storage instead of copying.
	g := Matrix{Rows: c.lastRows * c.OutH() * c.OutW(), Cols: c.OutCh, Data: grad.Data}
	MatMulAddInto(c.Weight.G, c.lastCols, &g, true, false)
	g.addColSumsInto(c.Bias.G.Data)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Matrix) *Matrix {
	c.backwardParams(grad)
	oh, ow := c.OutH(), c.OutW()
	kk := c.Kernel * c.Kernel * c.InCh
	g := Matrix{Rows: c.lastRows * oh * ow, Cols: c.OutCh, Data: grad.Data}

	colGrad := ensure(&c.colGrad, c.lastRows*oh*ow, kk)
	MatMulInto(colGrad, &g, c.Weight.W, false, true)
	dx := ensureZero(&c.dx, c.lastRows, c.H*c.W*c.InCh)
	for b := 0; b < c.lastRows; b++ {
		dst := dx.Row(b)
		for py := 0; py < oh; py++ {
			for px := 0; px < ow; px++ {
				src := colGrad.Row((b*oh+py)*ow + px)
				si := 0
				for ky := 0; ky < c.Kernel; ky++ {
					base := c.inIdx(py*c.Stride+ky, px*c.Stride, 0)
					for i := 0; i < c.Kernel*c.InCh; i++ {
						dst[base+i] += src[si+i]
					}
					si += c.Kernel * c.InCh
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// MaxPool2D max-pools channels-last images with a square window.
type MaxPool2D struct {
	H, W, Ch       int
	Window, Stride int

	argmax   []int
	lastRows int
	out      *Matrix
	dx       *Matrix
}

// NewMaxPool2D creates a 2-D max-pooling layer.
func NewMaxPool2D(h, w, ch, window, stride int) *MaxPool2D {
	if window <= 0 || stride <= 0 || h < window || w < window {
		panic(fmt.Sprintf("nn: MaxPool2D bad geometry: %dx%d window=%d stride=%d", h, w, window, stride))
	}
	return &MaxPool2D{H: h, W: w, Ch: ch, Window: window, Stride: stride}
}

// OutH returns the output height.
func (m *MaxPool2D) OutH() int { return (m.H-m.Window)/m.Stride + 1 }

// OutW returns the output width.
func (m *MaxPool2D) OutW() int { return (m.W-m.Window)/m.Stride + 1 }

func (m *MaxPool2D) checkIn(x *Matrix) {
	if x.Cols != m.H*m.W*m.Ch {
		panic(fmt.Sprintf("nn: MaxPool2D expected %d cols, got %d", m.H*m.W*m.Ch, x.Cols))
	}
}

// pool writes the pooled image into out; argmax (when non-nil)
// records the winning input index per output element for Backward.
func (m *MaxPool2D) pool(out, x *Matrix, argmax []int) {
	oh, ow := m.OutH(), m.OutW()
	idx := func(y, xx, ch int) int { return (y*m.W+xx)*m.Ch + ch }
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		dst := out.Row(b)
		for py := 0; py < oh; py++ {
			for px := 0; px < ow; px++ {
				for ch := 0; ch < m.Ch; ch++ {
					bestIdx := idx(py*m.Stride, px*m.Stride, ch)
					best := row[bestIdx]
					for wy := 0; wy < m.Window; wy++ {
						for wx := 0; wx < m.Window; wx++ {
							i := idx(py*m.Stride+wy, px*m.Stride+wx, ch)
							if row[i] > best {
								best, bestIdx = row[i], i
							}
						}
					}
					o := (py*ow+px)*m.Ch + ch
					dst[o] = best
					if argmax != nil {
						argmax[(b*oh*ow+py*ow+px)*m.Ch+ch] = bestIdx
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *Matrix, train bool) *Matrix {
	m.checkIn(x)
	if !train {
		return m.infer(x, new(Arena))
	}
	oh, ow := m.OutH(), m.OutW()
	out := ensure(&m.out, x.Rows, oh*ow*m.Ch)
	m.argmax = ensureInt(m.argmax, x.Rows*oh*ow*m.Ch)
	m.lastRows = x.Rows
	m.pool(out, x, m.argmax)
	return out
}

func (m *MaxPool2D) infer(x *Matrix, ws *Arena) *Matrix {
	m.checkIn(x)
	out := ws.take(x.Rows, m.OutH()*m.OutW()*m.Ch)
	m.pool(out, x, nil)
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *Matrix) *Matrix {
	oh, ow := m.OutH(), m.OutW()
	dx := ensureZero(&m.dx, m.lastRows, m.H*m.W*m.Ch)
	for b := 0; b < m.lastRows; b++ {
		src := grad.Row(b)
		dst := dx.Row(b)
		for p := 0; p < oh*ow; p++ {
			for ch := 0; ch < m.Ch; ch++ {
				dst[m.argmax[(b*oh*ow+p)*m.Ch+ch]] += src[p*m.Ch+ch]
			}
		}
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

var (
	_ Layer      = (*Conv2D)(nil)
	_ Layer      = (*MaxPool2D)(nil)
	_ inferLayer = (*Conv2D)(nil)
	_ inferLayer = (*MaxPool2D)(nil)
)
