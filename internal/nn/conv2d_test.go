package nn

import (
	"math/rand"
	"testing"
)

func TestGradConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(6, 6, 2, 3, 3, 1, rng)
	n := NewNetwork(conv)
	x := randMatrix(rng, 2, 6*6*2)
	y := randMatrix(rng, 2, conv.OutH()*conv.OutW()*3)
	checkParamGrads(t, n, MSE{}, x, y, 1e-6)
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradConv2DStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(7, 7, 1, 2, 3, 2, rng)
	n := NewNetwork(conv)
	x := randMatrix(rng, 2, 49)
	y := randMatrix(rng, 2, conv.OutH()*conv.OutW()*2)
	checkParamGrads(t, n, MSE{}, x, y, 1e-6)
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradMaxPool2D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := NewMaxPool2D(6, 6, 2, 2, 2)
	n := NewNetwork(pool)
	x := randMatrix(rng, 2, 6*6*2)
	y := randMatrix(rng, 2, pool.OutH()*pool.OutW()*2)
	checkInputGrads(t, n, MSE{}, x, y, 1e-6)
}

func TestGradImageCNNStack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv1 := NewConv2D(8, 8, 1, 3, 3, 1, rng) // -> 6x6x3
	pool1 := NewMaxPool2D(6, 6, 3, 2, 2)      // -> 3x3x3
	n := NewNetwork(conv1, NewReLU(), pool1, NewDense(27, 2, rng))
	x := randMatrix(rng, 2, 64)
	y := OneHot([]int{0, 1}, 2)
	checkParamGrads(t, n, SoftmaxCrossEntropy{}, x, y, 1e-5)
	checkInputGrads(t, n, SoftmaxCrossEntropy{}, x, y, 1e-5)
}

func TestConv2DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D(3, 3, 1, 1, 2, 1, rng)
	// Identity-ish kernel: top-left weight 1, rest 0, bias 0.
	conv.Weight.W.Zero()
	conv.Weight.W.Data[0] = 1
	conv.Bias.W.Zero()
	x := FromRows([][]float64{{1, 2, 3, 4, 5, 6, 7, 8, 9}})
	out := conv.Forward(x, false)
	// Output picks input at each window's top-left: 1, 2, 4, 5.
	want := []float64{1, 2, 4, 5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPool2DKnownValues(t *testing.T) {
	pool := NewMaxPool2D(2, 2, 1, 2, 2)
	x := FromRows([][]float64{{1, 9, 3, 4}})
	out := pool.Forward(x, false)
	if len(out.Data) != 1 || out.Data[0] != 9 {
		t.Fatalf("MaxPool2D = %v, want [9]", out.Data)
	}
}

func TestTrainImageCNN(t *testing.T) {
	// Classify images by whether the bright quadrant is top-left or
	// bottom-right.
	rng := rand.New(rand.NewSource(6))
	h, w := 8, 8
	mk := func(n int) (*Matrix, []int) {
		x := NewMatrix(n, h*w)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % 2
			labels[i] = c
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					v := 0.05 * rng.Float64()
					if (c == 0 && y < 4 && xx < 4) || (c == 1 && y >= 4 && xx >= 4) {
						v = 0.8 + 0.1*rng.Float64()
					}
					x.Set(i, y*w+xx, v)
				}
			}
		}
		return x, labels
	}
	x, labels := mk(40)
	conv := NewConv2D(h, w, 1, 4, 3, 1, rng) // 6x6x4
	pool := NewMaxPool2D(6, 6, 4, 2, 2)      // 3x3x4
	net := NewNetwork(conv, NewReLU(), pool, NewDense(36, 2, rng))
	tr := Trainer{Net: net, Loss: SoftmaxCrossEntropy{}, Opt: NewAdam(0.01)}
	if _, err := tr.Fit(x, OneHot(labels, 2), TrainConfig{Epochs: 60, BatchSize: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	tx, tl := mk(20)
	pred := Argmax(net.Predict(tx))
	correct := 0
	for i := range pred {
		if pred[i] == tl[i] {
			correct++
		}
	}
	if correct < 18 {
		t.Fatalf("image CNN accuracy %d/20", correct)
	}
}
