package nn

import (
	"fmt"
	"sync"

	"soteria/internal/par"
)

// This file is the compute kernel behind every matrix product in the
// package: a cache-blocked, scalar GEMM with fused epilogues.
//
// Design notes:
//
//   - One kernel. Transposed operands are pre-materialized into
//     row-major scratch (a blocked transpose costs O(M*K) against the
//     kernel's O(M*K*N)), so the inner loops only ever stream
//     contiguous rows. This is what fixes the seed kernel's worst
//     case, grad @ W^T, whose column-strided inner loop walked the
//     weight matrix with Cols-element jumps.
//
//   - Fixed blocking. Tile sizes are constants, independent of core
//     count: a column tile of the output is finished for a k-block of
//     the (shared, read-only) B panel before moving on, keeping the
//     active B rows and the destination segment cache-resident. Because
//     block boundaries and the 4-way k-unroll are fixed, every output
//     element accumulates its k-terms in one canonical order — results
//     are bit-identical regardless of GOMAXPROCS or which pool worker
//     claims which row range.
//
//   - Fused epilogues. The destination is initialized with the bias row
//     (instead of zero) as the first k-block is accumulated, and an
//     optional ReLU is applied to each destination segment right after
//     its final k-block while it is still cache-hot — so xW, +b, and
//     the activation happen in one pass over the output.
//
//   - Zero skipping. A quad of a-values that is entirely zero skips its
//     four B rows. Post-ReLU activations are roughly half zeros, so
//     this recovers a large part of the seed kernel's per-element zero
//     skip at a quarter of the branch cost.
//
//   - Row pairing. Destination rows are processed two at a time, so
//     each loaded B segment feeds eight multiply-adds instead of four;
//     when only one row of a pair has a live a-quad the kernel falls
//     back to that row alone, which keeps the arithmetic (and the
//     zero-skip behaviour on non-finite inputs) identical to the
//     single-row path element by element.
//
//   - Vector micro-kernel. On amd64 with AVX the inner z-loops run in
//     assembly (gemm_amd64.s): four B segments stream through YMM
//     registers into one or two destination rows. The kernels use
//     separate multiply and add instructions — never FMA — and lanes
//     map to adjacent output elements, so every element sees the exact
//     scalar operation sequence and results are bit-identical to the
//     Go loops (and across machines). Without AVX the scalar loops
//     below run instead.
//
// Parallelism splits output rows only (each row's dot products are
// computed entirely by one worker), with a grain that keeps every
// chunk above parallelThreshold multiply-adds.
const (
	// gemmColBlock columns of the destination (and B panel) per tile:
	// a 4 KiB destination row segment.
	gemmColBlock = 512
	// gemmNarrowMax is the widest destination the transposed-B dot
	// kernel handles. Below this width the blocked kernel's per-quad
	// segment slicing and vector-call setup cost more than the
	// arithmetic they feed, so gemmNarrow wins despite staying scalar.
	gemmNarrowMax = 16
	// gemmKBlock k-depth per tile: the four unrolled B row segments plus
	// the destination segment stay within L1.
	gemmKBlock = 128
	// transposeBlock is the square tile of the blocked transpose.
	transposeBlock = 32
)

// f64Pool recycles the scratch that holds pre-transposed operands, so
// steady-state training pays no allocation for the packed panels.
var f64Pool = sync.Pool{New: func() any { return new([]float64) }}

// getF64 hands out the pooled slice through its pool pointer so putF64
// can return the identical pointer — putting a fresh &s would make the
// header escape and cost one heap allocation per release, which the
// narrow-product path would pay on every inference call.
func getF64(n int) (*[]float64, []float64) {
	s := f64Pool.Get().(*[]float64)
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return s, *s
}

func putF64(s *[]float64) {
	f64Pool.Put(s)
}

// transposeInto writes the transpose of the rows x cols matrix in src
// into dst (which must hold rows*cols elements) in square tiles, so
// both source reads and destination writes stay within a few cache
// lines per tile.
func transposeInto(dst, src []float64, rows, cols int) {
	for i0 := 0; i0 < rows; i0 += transposeBlock {
		i1 := i0 + transposeBlock
		if i1 > rows {
			i1 = rows
		}
		for j0 := 0; j0 < cols; j0 += transposeBlock {
			j1 := j0 + transposeBlock
			if j1 > cols {
				j1 = cols
			}
			for i := i0; i < i1; i++ {
				row := src[i*cols : i*cols+cols]
				for j := j0; j < j1; j++ {
					dst[j*rows+i] = row[j]
				}
			}
		}
	}
}

// gemmDims resolves the effective (M, K, N) of op(a) @ op(b) and
// panics on an inner-dimension mismatch.
func gemmDims(a, b *Matrix, aT, bT bool) (m, k, n int) {
	m, k = a.Rows, a.Cols
	if aT {
		m, k = k, m
	}
	br, bc := b.Rows, b.Cols
	if bT {
		br, bc = bc, br
	}
	if k != br {
		panic(fmt.Sprintf("nn: MatMul inner dim mismatch: %d vs %d (aT=%v bT=%v)", k, br, aT, bT))
	}
	return m, k, bc
}

// gemm computes dst = op(a) @ op(b) (+ dst when acc), with an optional
// bias row added to every output row and an optional ReLU applied to
// the result. dst must already have the product's shape and must not
// alias a or b. bias (len N) and relu are ignored when acc is set.
func gemm(dst, a, b *Matrix, aT, bT, acc bool, bias []float64, relu bool) {
	m, k, n := gemmDims(a, b, aT, bT)
	if dst.Rows != m || dst.Cols != n {
		panic(fmt.Sprintf("nn: MatMulInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, m, n))
	}
	if len(dst.Data) > 0 && (sameSlice(dst.Data, a.Data) || sameSlice(dst.Data, b.Data)) {
		panic("nn: MatMulInto dst aliases an operand")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		gemmInit(dst.Data, n, 0, m, acc, bias, relu)
		return
	}

	aData, lda := a.Data, a.Cols
	var scratchA *[]float64
	if aT {
		var s []float64
		scratchA, s = getF64(m * k)
		transposeInto(s, a.Data, a.Rows, a.Cols)
		aData, lda = s, k
	}
	// Narrow products take the register-blocked panel kernel
	// (bit-identical to the blocked one — see gemmNarrow), which wants
	// B in its natural k x n layout.
	if !acc && !bT && n <= gemmNarrowMax {
		bd := b.Data
		if work := m * k * n; work < parallelThreshold || m < 2 || par.Workers() == 1 {
			gemmNarrow(dst.Data, n, aData, lda, bd, n, 0, m, k, n, bias, relu)
		} else {
			grain := parallelThreshold / (k * n)
			if grain < 1 {
				grain = 1
			}
			dd := dst.Data
			par.ForChunkedGrain(m, grain, func(rlo, rhi int) {
				gemmNarrow(dd, n, aData, lda, bd, n, rlo, rhi, k, n, bias, relu)
			})
		}
		if scratchA != nil {
			putF64(scratchA)
		}
		return
	}

	bData, ldb := b.Data, b.Cols
	var scratchB *[]float64
	if bT {
		var s []float64
		scratchB, s = getF64(k * n)
		transposeInto(s, b.Data, b.Rows, b.Cols)
		bData, ldb = s, n
	}

	// The serial branch calls the kernel directly (no closure) so small
	// products — batch-1 inference in particular — allocate nothing.
	if work := m * k * n; work < parallelThreshold || m < 2 || par.Workers() == 1 {
		gemmKernel(dst.Data, n, aData, lda, bData, ldb, 0, m, k, n, acc, bias, relu)
	} else {
		grain := parallelThreshold / (k * n)
		if grain < 1 {
			grain = 1
		}
		dd := dst.Data
		par.ForChunkedGrain(m, grain, func(rlo, rhi int) {
			gemmKernel(dd, n, aData, lda, bData, ldb, rlo, rhi, k, n, acc, bias, relu)
		})
	}

	if scratchA != nil {
		putF64(scratchA)
	}
	if scratchB != nil {
		putF64(scratchB)
	}
}

// gemmInit initializes (or finalizes, for the K == 0 edge case) rows
// [rlo, rhi) of dst without accumulating any product terms.
func gemmInit(dst []float64, ldd, rlo, rhi int, acc bool, bias []float64, relu bool) {
	if acc {
		return
	}
	for i := rlo; i < rhi; i++ {
		row := dst[i*ldd : i*ldd+ldd]
		if bias != nil {
			copy(row, bias)
		} else {
			for z := range row {
				row[z] = 0
			}
		}
		if relu {
			for z, v := range row {
				if v < 0 {
					row[z] = 0
				}
			}
		}
	}
}

// gemmKernel accumulates rows [rlo, rhi) of dst = a @ b for row-major
// panels a (leading dimension lda) and b (leading dimension ldb), with
// the blocking, initialization, and epilogues described at the top of
// the file. Rows are processed in pairs so each loaded B segment is
// shared between two accumulator rows.
func gemmKernel(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, rlo, rhi, k, n int, acc bool, bias []float64, relu bool) {
	for jc := 0; jc < n; jc += gemmColBlock {
		je := jc + gemmColBlock
		if je > n {
			je = n
		}
		for kc := 0; kc < k; kc += gemmKBlock {
			ke := kc + gemmKBlock
			if ke > k {
				ke = k
			}
			i := rlo
			for ; i+2 <= rhi; i += 2 {
				gemmRowPair(dst, ldd, a, lda, b, ldb, i, jc, je, kc, ke, k, acc, bias, relu)
			}
			if i < rhi {
				gemmRow(dst, ldd, a, lda, b, ldb, i, jc, je, kc, ke, k, acc, bias, relu)
			}
		}
	}
}

// gemmRowInit seeds one destination segment before its first k-block:
// the bias row when fused, zero otherwise.
func gemmRowInit(drow, bias []float64, jc, je int) {
	if bias != nil {
		copy(drow, bias[jc:je])
		return
	}
	for z := range drow {
		drow[z] = 0
	}
}

// gemmRowReLU clamps a finished destination segment in place.
func gemmRowReLU(drow []float64) {
	for z, v := range drow {
		if v < 0 {
			drow[z] = 0
		}
	}
}

// gemmRow accumulates the k-block [kc, ke) into the column tile
// [jc, je) of destination row i.
func gemmRow(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, i, jc, je, kc, ke, k int, acc bool, bias []float64, relu bool) {
	arow := a[i*lda : i*lda+k]
	drow := dst[i*ldd+jc : i*ldd+je]
	if kc == 0 && !acc {
		gemmRowInit(drow, bias, jc, je)
	}
	kk := kc
	for ; kk+4 <= ke; kk += 4 {
		a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0 := b[kk*ldb+jc : kk*ldb+je]
		b1 := b[(kk+1)*ldb+jc : (kk+1)*ldb+je]
		b2 := b[(kk+2)*ldb+jc : (kk+2)*ldb+je]
		b3 := b[(kk+3)*ldb+jc : (kk+3)*ldb+je]
		b0 = b0[:len(drow)]
		b1 = b1[:len(drow)]
		b2 = b2[:len(drow)]
		b3 = b3[:len(drow)]
		if useAVX {
			av := [4]float64{a0, a1, a2, a3}
			rowQuadAVX(&drow[0], &b0[0], &b1[0], &b2[0], &b3[0], len(drow), &av)
			continue
		}
		for z := range drow {
			drow[z] += a0*b0[z] + a1*b1[z] + a2*b2[z] + a3*b3[z]
		}
	}
	for ; kk < ke; kk++ {
		av := arow[kk]
		if av == 0 {
			continue
		}
		brow := b[kk*ldb+jc : kk*ldb+je]
		brow = brow[:len(drow)]
		for z := range drow {
			drow[z] += av * brow[z]
		}
	}
	if relu && ke == k && !acc {
		gemmRowReLU(drow)
	}
}

// gemmRowPair accumulates the k-block [kc, ke) into the column tile
// [jc, je) of destination rows i and i+1 together. Every surviving
// element update is the same expression, in the same k order, as
// gemmRow's — pairing only changes how many times a B segment is
// loaded, never what is added to which element.
func gemmRowPair(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, i, jc, je, kc, ke, k int, acc bool, bias []float64, relu bool) {
	arow0 := a[i*lda : i*lda+k]
	arow1 := a[(i+1)*lda : (i+1)*lda+k]
	d0 := dst[i*ldd+jc : i*ldd+je]
	d1 := dst[(i+1)*ldd+jc : (i+1)*ldd+je]
	if kc == 0 && !acc {
		gemmRowInit(d0, bias, jc, je)
		gemmRowInit(d1, bias, jc, je)
	}
	d1 = d1[:len(d0)]
	kk := kc
	for ; kk+4 <= ke; kk += 4 {
		a00, a01, a02, a03 := arow0[kk], arow0[kk+1], arow0[kk+2], arow0[kk+3]
		a10, a11, a12, a13 := arow1[kk], arow1[kk+1], arow1[kk+2], arow1[kk+3]
		live0 := a00 != 0 || a01 != 0 || a02 != 0 || a03 != 0
		live1 := a10 != 0 || a11 != 0 || a12 != 0 || a13 != 0
		if !live0 && !live1 {
			continue
		}
		b0 := b[kk*ldb+jc : kk*ldb+je]
		b1 := b[(kk+1)*ldb+jc : (kk+1)*ldb+je]
		b2 := b[(kk+2)*ldb+jc : (kk+2)*ldb+je]
		b3 := b[(kk+3)*ldb+jc : (kk+3)*ldb+je]
		b0 = b0[:len(d0)]
		b1 = b1[:len(d0)]
		b2 = b2[:len(d0)]
		b3 = b3[:len(d0)]
		switch {
		case live0 && live1:
			if useAVX {
				av := [8]float64{a00, a01, a02, a03, a10, a11, a12, a13}
				pairQuadAVX(&d0[0], &d1[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d0), &av)
				continue
			}
			for z := range d0 {
				bv0, bv1, bv2, bv3 := b0[z], b1[z], b2[z], b3[z]
				d0[z] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
				d1[z] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			}
		case live0:
			if useAVX {
				av := [4]float64{a00, a01, a02, a03}
				rowQuadAVX(&d0[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d0), &av)
				continue
			}
			for z := range d0 {
				d0[z] += a00*b0[z] + a01*b1[z] + a02*b2[z] + a03*b3[z]
			}
		default:
			if useAVX {
				av := [4]float64{a10, a11, a12, a13}
				rowQuadAVX(&d1[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d1), &av)
				continue
			}
			for z := range d1 {
				d1[z] += a10*b0[z] + a11*b1[z] + a12*b2[z] + a13*b3[z]
			}
		}
	}
	for ; kk < ke; kk++ {
		av0, av1 := arow0[kk], arow1[kk]
		if av0 == 0 && av1 == 0 {
			continue
		}
		brow := b[kk*ldb+jc : kk*ldb+je]
		brow = brow[:len(d0)]
		switch {
		case av0 != 0 && av1 != 0:
			for z := range d0 {
				bv := brow[z]
				d0[z] += av0 * bv
				d1[z] += av1 * bv
			}
		case av0 != 0:
			for z := range d0 {
				d0[z] += av0 * brow[z]
			}
		default:
			for z := range d1 {
				d1[z] += av1 * brow[z]
			}
		}
	}
	if relu && ke == k && !acc {
		gemmRowReLU(d0)
		gemmRowReLU(d1)
	}
}

// gemmNarrow computes rows [rlo, rhi) of dst = a @ b (+ bias, ReLU)
// for narrow destinations (n <= gemmNarrowMax). Full 8-wide column
// tiles go through panelQuad8AVX, which keeps the destination tile in
// registers across the entire quad sweep instead of round-tripping it
// through memory per quad the way the blocked kernel does — at these
// widths that round-trip and the per-quad segment slicing dominate
// the arithmetic. Leftover columns, the scalar k remainder, and every
// column when AVX is absent fall through to the blocked machinery.
//
// Bit-identity with gemmKernel: element (i, j) starts from the same
// bias seed and accumulates the same quad-grouped terms in the same
// ascending-k order with the same all-four-zero quad skip, then the
// same zero-skipped scalar remainder, then the same comparison-only
// ReLU. Holding the accumulator in a register instead of memory does
// not change any IEEE-754 operation, gemmKernel's k-blocking cannot
// regroup quads (gemmKBlock is a multiple of 4, so quad boundaries
// fall on the same offsets), and its column tiling and row pairing
// never change what is added to which element — so the two paths
// produce byte-identical output.
func gemmNarrow(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, rlo, rhi, k, n int, bias []float64, relu bool) {
	nq := k >> 2
	jp := 0 // column prefix covered by the panel kernel
	if useAVX && nq > 0 && rhi > rlo {
		jp = n &^ 7
	}
	if jp > 0 {
		// The panel kernel accumulates, so rows are seeded first; the
		// scalar k remainder and the ReLU epilogue run after it, per
		// element in the same order as the blocked kernel.
		for i := rlo; i < rhi; i++ {
			gemmRowInit(dst[i*ldd:i*ldd+jp], bias, 0, jp)
		}
		for j := 0; j < jp; j += 8 {
			panelQuad8AVX(&dst[rlo*ldd+j], ldd, &a[rlo*lda], lda, &b[j], ldb, rhi-rlo, nq)
		}
		for i := rlo; i < rhi; i++ {
			arow := a[i*lda : i*lda+k]
			drow := dst[i*ldd : i*ldd+jp]
			for kk := nq << 2; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b[kk*ldb : kk*ldb+jp]
				for z := range drow {
					drow[z] += av * brow[z]
				}
			}
			if relu {
				gemmRowReLU(drow)
			}
		}
	}
	if jp < n {
		tailBias := bias
		if bias != nil {
			tailBias = bias[jp:]
		}
		gemmKernel(dst[jp:], ldd, a, lda, b[jp:], ldb, rlo, rhi, k, n-jp, false, tailBias, relu)
	}
}

func sameSlice(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// MatMulInto computes op(a) @ op(b) into dst, which must already have
// the product's shape and must not alias either operand. It returns
// dst. Transposed operands are packed into pooled scratch so the hot
// loops always stream contiguous memory; see the file comment for the
// kernel design.
func MatMulInto(dst, a, b *Matrix, aT, bT bool) *Matrix {
	gemm(dst, a, b, aT, bT, false, nil, false)
	return dst
}

// MatMulAddInto accumulates op(a) @ op(b) onto dst (dst += product),
// the fused form of the backward pass's gradient accumulation. dst
// must already have the product's shape and must not alias either
// operand. It returns dst.
func MatMulAddInto(dst, a, b *Matrix, aT, bT bool) *Matrix {
	gemm(dst, a, b, aT, bT, true, nil, false)
	return dst
}

// MatMul computes a@b (with optional transposes) into a new matrix. It
// parallelizes across output rows for large products.
func MatMul(a, b *Matrix, aT, bT bool) *Matrix {
	m, _, n := gemmDims(a, b, aT, bT)
	out := NewMatrix(m, n)
	gemm(out, a, b, aT, bT, false, nil, false)
	return out
}
