package nn

import (
	"fmt"
	"sync"

	"soteria/internal/par"
)

// This file is the compute kernel behind every matrix product in the
// package: a cache-blocked, scalar GEMM with fused epilogues.
//
// Design notes:
//
//   - One kernel. Transposed operands are pre-materialized into
//     row-major scratch (a blocked transpose costs O(M*K) against the
//     kernel's O(M*K*N)), so the inner loops only ever stream
//     contiguous rows. This is what fixes the seed kernel's worst
//     case, grad @ W^T, whose column-strided inner loop walked the
//     weight matrix with Cols-element jumps.
//
//   - Fixed blocking. Tile sizes are constants, independent of core
//     count: a column tile of the output is finished for a k-block of
//     the (shared, read-only) B panel before moving on, keeping the
//     active B rows and the destination segment cache-resident. Because
//     block boundaries and the 4-way k-unroll are fixed, every output
//     element accumulates its k-terms in one canonical order — results
//     are bit-identical regardless of GOMAXPROCS or which pool worker
//     claims which row range.
//
//   - Fused epilogues. The destination is initialized with the bias row
//     (instead of zero) as the first k-block is accumulated, and an
//     optional ReLU is applied to each destination segment right after
//     its final k-block while it is still cache-hot — so xW, +b, and
//     the activation happen in one pass over the output.
//
//   - Zero skipping. A quad of a-values that is entirely zero skips its
//     four B rows. Post-ReLU activations are roughly half zeros, so
//     this recovers a large part of the seed kernel's per-element zero
//     skip at a quarter of the branch cost.
//
//   - Row pairing. The blocked kernel processes destination rows two at
//     a time, so each loaded B segment feeds eight multiply-adds
//     instead of four; when only one row of a pair has a live a-quad
//     the kernel falls back to that row alone, which keeps the
//     arithmetic (and the zero-skip behaviour on non-finite inputs)
//     identical to the single-row path element by element.
//
//   - Two kernel families, one arithmetic. Narrow non-accumulating
//     products (n <= gemmNarrowMax: the conv filter banks and slim
//     heads) run the register-blocked panel kernels (gemmPanels): 8-
//     then 4-column output tiles live in YMM registers across the
//     ENTIRE k sweep, with the bias seed, k%4 remainder, and ReLU
//     fused into the tile — one destination store per tile row. Wide
//     products and accumulations (dst += a@b, the backward pass) run
//     the blocked quad kernel (gemmKernel), whose row pairing shares
//     each streamed B segment between two destination rows. Both
//     families accumulate the same terms in the same ascending-k quad
//     order with the same skip predicate, so they are bit-identical
//     (see gemmPanels).
//
//   - Vector micro-kernel. On amd64 with AVX the inner loops run in
//     assembly (gemm_amd64.s). The default kernels use separate
//     multiply and add instructions — never FMA — and lanes map to
//     adjacent output elements, so every element sees the exact scalar
//     operation sequence and results are bit-identical to the Go loops
//     (and across machines). Without AVX the scalar loops below run
//     instead.
//
//   - Opt-in fast mode. Every kernel entry point takes a fast flag;
//     when set (and the CPU has FMA) the quad and panel kernels switch
//     to fused multiply-add accumulation with a relaxed denormal skip.
//     Fast mode is NOT bit-identical — it is tolerance-tested, reached
//     only through explicit SetFastInference-style opt-ins, and the
//     fastmath analyzer keeps it out of training and persistence.
//
// Parallelism splits output rows only (each row's dot products are
// computed entirely by one worker), with a grain that keeps every
// chunk above parallelThreshold multiply-adds (gemmGrain). Chunk
// boundaries come from par.ForChunkedGrain and depend only on the row
// count, the grain, and the worker count — each row range is statically
// owned by exactly one worker, so sharded results are byte-identical to
// a serial run in both modes.
const (
	// gemmColBlock columns of the destination (and B panel) per tile:
	// a 4 KiB destination row segment.
	gemmColBlock = 512
	// gemmKBlock k-depth per tile: the four unrolled B row segments plus
	// the destination segment stay within L1.
	gemmKBlock = 128
	// transposeBlock is the square tile of the blocked transpose.
	transposeBlock = 32
	// gemmNarrowMax is the widest destination the register-blocked panel
	// kernels serve. Below this width the blocked kernel's per-quad
	// segment slicing and vector-call setup dwarf the arithmetic they
	// feed, so the panel sweep wins outright. At larger widths the
	// blocked kernel's row pairing shares each streamed B segment
	// between two destination rows — cheaper per multiply-add than the
	// panel kernels' per-row broadcast traffic — and wide destination
	// segments amortize its per-quad setup, so it wins there instead
	// (measured: routing the wide Dense products through packed panel
	// tiles cost ~40% on the scoring benchmark).
	gemmNarrowMax = 16
)

// f64Pool recycles the scratch that holds pre-transposed operands, so
// steady-state training pays no allocation for the packed panels.
var f64Pool = sync.Pool{New: func() any { return new([]float64) }}

// getF64 hands out the pooled slice through its pool pointer so putF64
// can return the identical pointer — putting a fresh &s would make the
// header escape and cost one heap allocation per release, which the
// narrow-product path would pay on every inference call.
func getF64(n int) (*[]float64, []float64) {
	s := f64Pool.Get().(*[]float64)
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return s, *s
}

func putF64(s *[]float64) {
	f64Pool.Put(s)
}

// transposeInto writes the transpose of the rows x cols matrix in src
// into dst (which must hold rows*cols elements) in square tiles, so
// both source reads and destination writes stay within a few cache
// lines per tile.
func transposeInto(dst, src []float64, rows, cols int) {
	for i0 := 0; i0 < rows; i0 += transposeBlock {
		i1 := i0 + transposeBlock
		if i1 > rows {
			i1 = rows
		}
		for j0 := 0; j0 < cols; j0 += transposeBlock {
			j1 := j0 + transposeBlock
			if j1 > cols {
				j1 = cols
			}
			for i := i0; i < i1; i++ {
				row := src[i*cols : i*cols+cols]
				for j := j0; j < j1; j++ {
					dst[j*rows+i] = row[j]
				}
			}
		}
	}
}

// gemmDims resolves the effective (M, K, N) of op(a) @ op(b) and
// panics on an inner-dimension mismatch.
func gemmDims(a, b *Matrix, aT, bT bool) (m, k, n int) {
	m, k = a.Rows, a.Cols
	if aT {
		m, k = k, m
	}
	br, bc := b.Rows, b.Cols
	if bT {
		br, bc = bc, br
	}
	if k != br {
		panic(fmt.Sprintf("nn: MatMul inner dim mismatch: %d vs %d (aT=%v bT=%v)", k, br, aT, bT))
	}
	return m, k, bc
}

// gemmGrain returns the minimum row grain handed to ForChunkedGrain
// for a product with the given k and n: enough rows that every
// statically owned chunk clears parallelThreshold multiply-adds, so
// sharding never fans out trivially small bodies.
func gemmGrain(k, n int) int {
	g := parallelThreshold / (k * n)
	if g < 1 {
		g = 1
	}
	return g
}

// gemm computes dst = op(a) @ op(b) (+ dst when acc), with an optional
// bias row added to every output row and an optional ReLU applied to
// the result. dst must already have the product's shape and must not
// alias a or b. bias (len N) and relu are ignored when acc is set.
//
// fast selects the opt-in relaxed-precision kernels (FMA accumulation,
// relaxed zero skipping) when the CPU supports them; default-mode
// callers pass false and get the bit-exact kernels. Sharding is
// identical in both modes: the M dimension is split into deterministic,
// statically owned row ranges (chunk boundaries depend only on m,
// grain, and worker count — see par.ForChunkedGrain), and each output
// row is computed entirely by one worker in one canonical k-order, so
// results never depend on scheduling.
func gemm(dst, a, b *Matrix, aT, bT, acc bool, bias []float64, relu, fast bool) {
	m, k, n := gemmDims(a, b, aT, bT)
	if dst.Rows != m || dst.Cols != n {
		panic(fmt.Sprintf("nn: MatMulInto dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, m, n))
	}
	if len(dst.Data) > 0 && (sameSlice(dst.Data, a.Data) || sameSlice(dst.Data, b.Data)) {
		panic("nn: MatMulInto dst aliases an operand")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		gemmInit(dst.Data, n, 0, m, acc, bias, relu)
		return
	}

	aData, lda := a.Data, a.Cols
	var scratchA *[]float64
	if aT {
		var s []float64
		scratchA, s = getF64(m * k)
		transposeInto(s, a.Data, a.Rows, a.Cols)
		aData, lda = s, k
	}
	bData, ldb := b.Data, b.Cols
	var scratchB *[]float64
	if bT {
		var s []float64
		scratchB, s = getF64(k * n)
		transposeInto(s, b.Data, b.Rows, b.Cols)
		bData, ldb = s, n
	}

	// Narrow non-accumulating products take the register-blocked panel
	// kernels (bit-identical to the blocked machinery — see gemmPanels
	// and gemmNarrowMax); everything else — wide products and every
	// accumulation (dst += a@b, the backward pass) — runs the blocked
	// quad kernel.
	//
	// The serial branch calls the kernel directly (no closure) so small
	// products — batch-1 inference in particular — allocate nothing.
	panels := !acc && n <= gemmNarrowMax
	if work := m * k * n; work < parallelThreshold || m < 2 || par.Workers() == 1 {
		if panels {
			gemmPanels(dst.Data, n, aData, lda, bData, ldb, 0, m, k, n, bias, relu, fast)
		} else {
			gemmKernel(dst.Data, n, aData, lda, bData, ldb, 0, m, k, n, acc, bias, relu, fast)
		}
	} else {
		dd := dst.Data
		par.ForChunkedGrain(m, gemmGrain(k, n), func(rlo, rhi int) {
			if panels {
				gemmPanels(dd, n, aData, lda, bData, ldb, rlo, rhi, k, n, bias, relu, fast)
			} else {
				gemmKernel(dd, n, aData, lda, bData, ldb, rlo, rhi, k, n, acc, bias, relu, fast)
			}
		})
	}

	if scratchA != nil {
		putF64(scratchA)
	}
	if scratchB != nil {
		putF64(scratchB)
	}
}

// gemmInit initializes (or finalizes, for the K == 0 edge case) rows
// [rlo, rhi) of dst without accumulating any product terms.
func gemmInit(dst []float64, ldd, rlo, rhi int, acc bool, bias []float64, relu bool) {
	if acc {
		return
	}
	for i := rlo; i < rhi; i++ {
		row := dst[i*ldd : i*ldd+ldd]
		if bias != nil {
			copy(row, bias)
		} else {
			for z := range row {
				row[z] = 0
			}
		}
		if relu {
			for z, v := range row {
				if v < 0 {
					row[z] = 0
				}
			}
		}
	}
}

// gemmKernel accumulates rows [rlo, rhi) of dst = a @ b for row-major
// panels a (leading dimension lda) and b (leading dimension ldb), with
// the blocking, initialization, and epilogues described at the top of
// the file. Rows are processed in pairs so each loaded B segment is
// shared between two accumulator rows.
func gemmKernel(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, rlo, rhi, k, n int, acc bool, bias []float64, relu, fast bool) {
	for jc := 0; jc < n; jc += gemmColBlock {
		je := jc + gemmColBlock
		if je > n {
			je = n
		}
		for kc := 0; kc < k; kc += gemmKBlock {
			ke := kc + gemmKBlock
			if ke > k {
				ke = k
			}
			i := rlo
			for ; i+2 <= rhi; i += 2 {
				gemmRowPair(dst, ldd, a, lda, b, ldb, i, jc, je, kc, ke, k, acc, bias, relu, fast)
			}
			if i < rhi {
				gemmRow(dst, ldd, a, lda, b, ldb, i, jc, je, kc, ke, k, acc, bias, relu, fast)
			}
		}
	}
}

// gemmRowInit seeds one destination segment before its first k-block:
// the bias row when fused, zero otherwise.
func gemmRowInit(drow, bias []float64, jc, je int) {
	if bias != nil {
		copy(drow, bias[jc:je])
		return
	}
	for z := range drow {
		drow[z] = 0
	}
}

// gemmRowReLU clamps a finished destination segment in place. The AVX
// form is max(+0, v) per element, which passes -0, NaN, and ties
// through unchanged — exactly the scalar comparison.
func gemmRowReLU(drow []float64) {
	if useAVX && len(drow) > 0 {
		reluAVX(&drow[0], len(drow))
		return
	}
	for z, v := range drow {
		if v < 0 {
			drow[z] = 0
		}
	}
}

// gemmRow accumulates the k-block [kc, ke) into the column tile
// [jc, je) of destination row i.
func gemmRow(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, i, jc, je, kc, ke, k int, acc bool, bias []float64, relu, fast bool) {
	arow := a[i*lda : i*lda+k]
	drow := dst[i*ldd+jc : i*ldd+je]
	if kc == 0 && !acc {
		gemmRowInit(drow, bias, jc, je)
	}
	kk := kc
	for ; kk+4 <= ke; kk += 4 {
		a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0 := b[kk*ldb+jc : kk*ldb+je]
		b1 := b[(kk+1)*ldb+jc : (kk+1)*ldb+je]
		b2 := b[(kk+2)*ldb+jc : (kk+2)*ldb+je]
		b3 := b[(kk+3)*ldb+jc : (kk+3)*ldb+je]
		b0 = b0[:len(drow)]
		b1 = b1[:len(drow)]
		b2 = b2[:len(drow)]
		b3 = b3[:len(drow)]
		if useAVX {
			av := [4]float64{a0, a1, a2, a3}
			if fast && useFMA {
				rowQuadFMA(&drow[0], &b0[0], &b1[0], &b2[0], &b3[0], len(drow), &av)
			} else {
				rowQuadAVX(&drow[0], &b0[0], &b1[0], &b2[0], &b3[0], len(drow), &av)
			}
			continue
		}
		for z := range drow {
			drow[z] += a0*b0[z] + a1*b1[z] + a2*b2[z] + a3*b3[z]
		}
	}
	for ; kk < ke; kk++ {
		av := arow[kk]
		if av == 0 {
			continue
		}
		brow := b[kk*ldb+jc : kk*ldb+je]
		brow = brow[:len(drow)]
		for z := range drow {
			drow[z] += av * brow[z]
		}
	}
	if relu && ke == k && !acc {
		gemmRowReLU(drow)
	}
}

// gemmRowPair accumulates the k-block [kc, ke) into the column tile
// [jc, je) of destination rows i and i+1 together. Every surviving
// element update is the same expression, in the same k order, as
// gemmRow's — pairing only changes how many times a B segment is
// loaded, never what is added to which element.
func gemmRowPair(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, i, jc, je, kc, ke, k int, acc bool, bias []float64, relu, fast bool) {
	arow0 := a[i*lda : i*lda+k]
	arow1 := a[(i+1)*lda : (i+1)*lda+k]
	d0 := dst[i*ldd+jc : i*ldd+je]
	d1 := dst[(i+1)*ldd+jc : (i+1)*ldd+je]
	if kc == 0 && !acc {
		gemmRowInit(d0, bias, jc, je)
		gemmRowInit(d1, bias, jc, je)
	}
	d1 = d1[:len(d0)]
	kk := kc
	for ; kk+4 <= ke; kk += 4 {
		a00, a01, a02, a03 := arow0[kk], arow0[kk+1], arow0[kk+2], arow0[kk+3]
		a10, a11, a12, a13 := arow1[kk], arow1[kk+1], arow1[kk+2], arow1[kk+3]
		live0 := a00 != 0 || a01 != 0 || a02 != 0 || a03 != 0
		live1 := a10 != 0 || a11 != 0 || a12 != 0 || a13 != 0
		if !live0 && !live1 {
			continue
		}
		b0 := b[kk*ldb+jc : kk*ldb+je]
		b1 := b[(kk+1)*ldb+jc : (kk+1)*ldb+je]
		b2 := b[(kk+2)*ldb+jc : (kk+2)*ldb+je]
		b3 := b[(kk+3)*ldb+jc : (kk+3)*ldb+je]
		b0 = b0[:len(d0)]
		b1 = b1[:len(d0)]
		b2 = b2[:len(d0)]
		b3 = b3[:len(d0)]
		switch {
		case live0 && live1:
			if useAVX {
				av := [8]float64{a00, a01, a02, a03, a10, a11, a12, a13}
				if fast && useFMA {
					pairQuadFMA(&d0[0], &d1[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d0), &av)
				} else {
					pairQuadAVX(&d0[0], &d1[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d0), &av)
				}
				continue
			}
			for z := range d0 {
				bv0, bv1, bv2, bv3 := b0[z], b1[z], b2[z], b3[z]
				d0[z] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
				d1[z] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			}
		case live0:
			if useAVX {
				av := [4]float64{a00, a01, a02, a03}
				if fast && useFMA {
					rowQuadFMA(&d0[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d0), &av)
				} else {
					rowQuadAVX(&d0[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d0), &av)
				}
				continue
			}
			for z := range d0 {
				d0[z] += a00*b0[z] + a01*b1[z] + a02*b2[z] + a03*b3[z]
			}
		default:
			if useAVX {
				av := [4]float64{a10, a11, a12, a13}
				if fast && useFMA {
					rowQuadFMA(&d1[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d1), &av)
				} else {
					rowQuadAVX(&d1[0], &b0[0], &b1[0], &b2[0], &b3[0], len(d1), &av)
				}
				continue
			}
			for z := range d1 {
				d1[z] += a10*b0[z] + a11*b1[z] + a12*b2[z] + a13*b3[z]
			}
		}
	}
	for ; kk < ke; kk++ {
		av0, av1 := arow0[kk], arow1[kk]
		if av0 == 0 && av1 == 0 {
			continue
		}
		brow := b[kk*ldb+jc : kk*ldb+je]
		brow = brow[:len(d0)]
		switch {
		case av0 != 0 && av1 != 0:
			for z := range d0 {
				bv := brow[z]
				d0[z] += av0 * bv
				d1[z] += av1 * bv
			}
		case av0 != 0:
			for z := range d0 {
				d0[z] += av0 * brow[z]
			}
		default:
			for z := range d1 {
				d1[z] += av1 * brow[z]
			}
		}
	}
	if relu && ke == k && !acc {
		gemmRowReLU(d0)
		gemmRowReLU(d1)
	}
}

// gemmPanels computes rows [rlo, rhi) of dst = a @ b (+ bias, ReLU),
// the non-accumulating kernel behind every inference and forward-pass
// product. Column tiles of 8 and then 4 go through the fully fused
// panel kernels (panelTile8AVX / panelTile4AVX, or their FMA forms in
// fast mode), which seed the tile from the bias, sweep the ENTIRE k
// dimension — quads plus the k%4 single terms — and apply the ReLU
// clamp while the tile stays in registers: one store per tile row, no
// separate seed, remainder, or epilogue passes over memory, and no
// per-k-quad destination traffic at all (the blocked quad kernel
// re-reads and re-writes each destination segment once per quad).
// Only a sub-4-column leftover (n % 4) and the no-AVX build fall
// through to the blocked machinery.
//
// Bit-identity with gemmKernel (default mode): element (i, j) starts
// from the same bias seed and accumulates the same quad-grouped terms
// in the same ascending-k order with the same all-four-zero quad skip,
// then the same zero-skipped scalar remainder, then the same
// comparison-only ReLU. Holding the accumulator in a register instead
// of memory does not change any IEEE-754 operation, gemmKernel's
// k-blocking cannot regroup quads (gemmKBlock is a multiple of 4, so
// quad boundaries fall on the same offsets, and singles only occur
// after the last full quad), and its column tiling and row pairing
// never change what is added to which element — so the two paths
// produce byte-identical output.
func gemmPanels(dst []float64, ldd int, a []float64, lda int, b []float64, ldb int, rlo, rhi, k, n int, bias []float64, relu, fast bool) {
	if rhi <= rlo || n <= 0 {
		return
	}
	if !useAVX || k <= 0 {
		gemmKernel(dst, ldd, a, lda, b, ldb, rlo, rhi, k, n, false, bias, relu, fast)
		return
	}
	tile8, tile4 := panelTile8AVX, panelTile4AVX
	if fast && useFMA {
		tile8, tile4 = panelTile8FMA, panelTile4FMA
	}
	reluFlag := 0
	if relu {
		reluFlag = 1
	}
	rows := rhi - rlo
	d0, a0 := rlo*ldd, rlo*lda
	j := 0
	for ; j+8 <= n; j += 8 {
		tile8(&dst[d0+j], ldd, &a[a0], lda, &b[j], ldb, rows, k, biasAt(bias, j), reluFlag)
	}
	if n-j >= 4 {
		tile4(&dst[d0+j], ldd, &a[a0], lda, &b[j], ldb, rows, k, biasAt(bias, j), reluFlag)
		j += 4
	}
	if j < n {
		tailBias := bias
		if bias != nil {
			tailBias = bias[j:]
		}
		gemmKernel(dst[j:], ldd, a, lda, b[j:], ldb, rlo, rhi, k, n-j, false, tailBias, relu, fast)
	}
}

// biasAt returns a pointer to bias[j], or nil when the product has no
// fused bias (the panel kernels seed the tile with zero in that case).
func biasAt(bias []float64, j int) *float64 {
	if bias == nil {
		return nil
	}
	return &bias[j]
}

func sameSlice(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// MatMulInto computes op(a) @ op(b) into dst, which must already have
// the product's shape and must not alias either operand. It returns
// dst. Transposed operands are packed into pooled scratch so the hot
// loops always stream contiguous memory; see the file comment for the
// kernel design.
func MatMulInto(dst, a, b *Matrix, aT, bT bool) *Matrix {
	gemm(dst, a, b, aT, bT, false, nil, false, false)
	return dst
}

// MatMulAddInto accumulates op(a) @ op(b) onto dst (dst += product),
// the fused form of the backward pass's gradient accumulation. dst
// must already have the product's shape and must not alias either
// operand. It returns dst.
func MatMulAddInto(dst, a, b *Matrix, aT, bT bool) *Matrix {
	gemm(dst, a, b, aT, bT, true, nil, false, false)
	return dst
}

// MatMul computes a@b (with optional transposes) into a new matrix. It
// parallelizes across output rows for large products.
func MatMul(a, b *Matrix, aT, bT bool) *Matrix {
	m, _, n := gemmDims(a, b, aT, bT)
	out := NewMatrix(m, n)
	gemm(out, a, b, aT, bT, false, nil, false, false)
	return out
}
