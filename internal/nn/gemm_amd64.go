//go:build amd64

package nn

// useAVX gates the vector micro-kernels in gemm_amd64.s. The AVX path
// performs the same multiplies and adds, per output element and in the
// same order, as the scalar loops — vector lanes are just adjacent
// output elements, and the kernels use separate multiply and add
// instructions (never FMA, which rounds once instead of twice) — so
// results are bit-identical between the vector and scalar paths and
// therefore across machines.
var useAVX = cpuHasAVX()

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature
// flag plus XGETBV confirmation that the OS preserves YMM state).
func cpuHasAVX() bool

// pairQuadAVX accumulates four B rows into two destination rows:
//
//	d0[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
//	d1[z] += a[4]*b0[z] + a[5]*b1[z] + a[6]*b2[z] + a[7]*b3[z]
//
// for z in [0, n), with the sum reduced left to right exactly like the
// scalar expression.
//
//go:noescape
func pairQuadAVX(d0, d1, b0, b1, b2, b3 *float64, n int, a *[8]float64)

// rowQuadAVX is the one-destination-row form:
//
//	d[z] += a[0]*b0[z] + a[1]*b1[z] + a[2]*b2[z] + a[3]*b3[z]
//
//go:noescape
func rowQuadAVX(d, b0, b1, b2, b3 *float64, n int, a *[4]float64)

// panelQuad8AVX accumulates, for each of rows destination rows (row
// stride ldd), nq column quads into the row's 8-wide tile d[0:8]:
//
//	d[z] += a[4q]*b[4q*ldb+z] + a[4q+1]*b[(4q+1)*ldb+z] +
//	        a[4q+2]*b[(4q+2)*ldb+z] + a[4q+3]*b[(4q+3)*ldb+z]
//
// for q in [0, nq), z in [0, 8), skipping a quad when all four of its
// a values equal zero — the same expression, reduction order, and skip
// predicate as the scalar quad loops (the equality test is an IEEE
// compare, so -0 skips and NaN does not, exactly like Go's ==). The
// a panel advances by lda per row. The destination tile is held in
// registers for the whole quad sweep, which is the point: the blocked
// kernel reloads and restores it per quad.
//
//go:noescape
func panelQuad8AVX(d *float64, ldd int, a *float64, lda int, b *float64, ldb int, rows, nq int)
